// Benchmark harness: one benchmark (or family) per table and figure of the
// paper, so every reported experiment can be regenerated and timed:
//
//	Table 1  – BenchmarkTable1Runs
//	Table 2  – BenchmarkTable2Build, BenchmarkTable2Inclusion,
//	           BenchmarkTable2EndToEnd
//	Table 3  – BenchmarkTable3Liveness
//	§5.3     – BenchmarkSpecEnumerate, BenchmarkSpecEquivalence (Theorem 3)
//	Figures 1–3 – BenchmarkFigureOracle (oracle classification of the
//	           example words), BenchmarkSpecMembership
//
// Ablations: BenchmarkAntichainVsDeterministic compares the two inclusion
// pipelines; BenchmarkOracleVsBrute compares the conflict-graph oracle
// against brute-force serialization search.
package tmcheck_test

import (
	"fmt"
	"math/rand"
	"testing"

	"tmcheck/internal/automata"
	"tmcheck/internal/core"
	"tmcheck/internal/explore"
	"tmcheck/internal/liveness"
	stmruntime "tmcheck/internal/runtime"
	"tmcheck/internal/safety"
	"tmcheck/internal/spec"
	"tmcheck/internal/tm"
	"tmcheck/internal/wordgen"
)

// --- Table 1 ---

func BenchmarkTable1Runs(b *testing.B) {
	systems := make([]*explore.TS, len(explore.Table1Scenarios))
	for i, sc := range explore.Table1Scenarios {
		systems[i] = explore.Build(sc.Alg(), nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, sc := range explore.Table1Scenarios {
			run := systems[j].RunProgram(sc.Schedule, sc.Programs)
			if len(run) == 0 {
				b.Fatal("empty run")
			}
		}
	}
}

// --- Table 2 ---

func table2Systems() []safety.System { return safety.PaperSystems(2, 2) }

func BenchmarkTable2Build(b *testing.B) {
	for _, sys := range table2Systems() {
		sys := sys
		name := sys.Alg.Name()
		if sys.CM != nil {
			name += "+" + sys.CM.Name()
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ts := explore.Build(sys.Alg, sys.CM)
				if ts.NumStates() == 0 {
					b.Fatal("empty system")
				}
			}
		})
	}
}

func BenchmarkTable2Inclusion(b *testing.B) {
	dfas := map[spec.Property]*automata.DFA{
		spec.StrictSerializability: spec.NewDet(spec.StrictSerializability, 2, 2).Enumerate(),
		spec.Opacity:               spec.NewDet(spec.Opacity, 2, 2).Enumerate(),
	}
	for _, sys := range table2Systems() {
		ts := explore.Build(sys.Alg, sys.CM)
		for _, prop := range []spec.Property{spec.StrictSerializability, spec.Opacity} {
			prop := prop
			suffix := "ss"
			if prop == spec.Opacity {
				suffix = "op"
			}
			b.Run(ts.Name()+"/"+suffix, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := safety.CheckAgainstDFA(ts, prop, dfas[prop])
					if res.Holds == (ts.Alg.Name() == "modtl2") {
						b.Fatalf("unexpected verdict for %s", ts.Name())
					}
				}
			})
		}
	}
}

func BenchmarkTable2EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := safety.Table2(table2Systems())
		if len(rows) != 5 {
			b.Fatal("wrong row count")
		}
	}
}

// engineCases are the representative checks the engine comparison runs:
// a passing opacity check, the heaviest passing (2,2) check, and the
// failing modified TL2 where the on-the-fly engine early-exits.
var engineCases = []struct {
	name  string
	sys   func() safety.System
	prop  spec.Property
	holds bool
}{
	{"dstm-op", func() safety.System { return safety.System{Alg: tm.NewDSTM(2, 2)} }, spec.Opacity, true},
	{"tl2-ss", func() safety.System { return safety.System{Alg: tm.NewTL2(2, 2)} }, spec.StrictSerializability, true},
	{"modtl2+polite-ss", func() safety.System { return safety.System{Alg: tm.NewTL2Mod(2, 2), CM: tm.Polite{}} }, spec.StrictSerializability, false},
}

// BenchmarkEngines compares the materialized build-then-check pipeline
// against the on-the-fly product search end to end (construction
// included, single worker). The allocation columns show the memory
// story: on-the-fly never materializes the spec DFA or the TM NFA.
func BenchmarkEngines(b *testing.B) {
	for _, c := range engineCases {
		sys := c.sys()
		for _, engine := range []safety.Engine{safety.EngineMaterialized, safety.EngineOnTheFly} {
			engine := engine
			b.Run(c.name+"/"+engine.String(), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := safety.VerifyOpts(sys.Alg, sys.CM, c.prop, safety.Options{Workers: 1, Engine: engine})
					if err != nil {
						b.Fatal(err)
					}
					if res.Holds != c.holds {
						b.Fatalf("%s/%s: holds = %v, want %v", c.name, engine, res.Holds, c.holds)
					}
				}
			})
		}
	}
}

// --- Table 3 ---

func BenchmarkTable3Liveness(b *testing.B) {
	for _, sys := range liveness.PaperSystems(2, 1) {
		ts := explore.Build(sys.Alg, sys.CM)
		b.Run(ts.Name()+"/obstruction", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				liveness.CheckObstructionFreedom(ts)
			}
		})
		b.Run(ts.Name()+"/livelock", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				liveness.CheckLivelockFreedom(ts)
			}
		})
	}
}

// livenessEngineCases are the representative liveness checks the engine
// comparison runs: a holding property (the on-the-fly engine must reach
// the fixpoint anyway), and two early failures where it stops after a
// fraction of the exploration.
var livenessEngineCases = []struct {
	name  string
	sys   func() (tm.Algorithm, tm.ContentionManager)
	prop  liveness.Prop
	holds bool
}{
	{"dstm+aggressive-obstruction", func() (tm.Algorithm, tm.ContentionManager) { return tm.NewDSTM(2, 1), tm.Aggressive{} }, liveness.ObstructionFreedom, true},
	{"tl2+polite-obstruction", func() (tm.Algorithm, tm.ContentionManager) { return tm.NewTL2(2, 1), tm.Polite{} }, liveness.ObstructionFreedom, false},
	{"dstm+aggressive-livelock", func() (tm.Algorithm, tm.ContentionManager) { return tm.NewDSTM(2, 1), tm.Aggressive{} }, liveness.LivelockFreedom, false},
}

// BenchmarkLivenessEngines compares the materialized build-then-check
// liveness pipeline against the on-the-fly lasso search end to end
// (construction included, single worker). The allocation columns show
// the early-exit win on the failing checks: the lazy engine never
// materializes the states past the violating prefix.
func BenchmarkLivenessEngines(b *testing.B) {
	for _, c := range livenessEngineCases {
		alg, cm := c.sys()
		b.Run(c.name+"/materialized", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ts := explore.BuildWorkers(alg, cm, 1)
				var res liveness.Result
				switch c.prop {
				case liveness.ObstructionFreedom:
					res = liveness.CheckObstructionFreedom(ts)
				default:
					res = liveness.CheckLivelockFreedom(ts)
				}
				if res.Holds != c.holds {
					b.Fatalf("%s: holds = %v, want %v", c.name, res.Holds, c.holds)
				}
			}
		})
		b.Run(c.name+"/onthefly", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := liveness.CheckOnTheFlyOpts(alg, cm, c.prop, liveness.Options{Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				if res.Holds != c.holds {
					b.Fatalf("%s: holds = %v, want %v", c.name, res.Holds, c.holds)
				}
			}
		})
	}
}

// --- §5.3: specification construction and Theorem 3 ---

func BenchmarkSpecEnumerate(b *testing.B) {
	b.Run("nondet/ss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spec.NewNondet(spec.StrictSerializability, 2, 2).Enumerate()
		}
	})
	b.Run("nondet/op", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spec.NewNondet(spec.Opacity, 2, 2).Enumerate()
		}
	})
	b.Run("det/ss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spec.NewDet(spec.StrictSerializability, 2, 2).Enumerate()
		}
	})
	b.Run("det/op", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spec.NewDet(spec.Opacity, 2, 2).Enumerate()
		}
	})
}

func BenchmarkSpecEquivalence(b *testing.B) {
	for _, prop := range []spec.Property{spec.StrictSerializability, spec.Opacity} {
		prop := prop
		name := "ss"
		if prop == spec.Opacity {
			name = "op"
		}
		nd := spec.NewNondet(prop, 2, 2).Enumerate()
		dt := spec.NewDet(prop, 2, 2).Enumerate()
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				equal, _, _ := automata.EquivalentNFADFA(nd, dt)
				if !equal {
					b.Fatal("Theorem 3 violated")
				}
			}
		})
	}
}

func BenchmarkSpecMinimize(b *testing.B) {
	dt := spec.NewDet(spec.Opacity, 2, 2).Enumerate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dt.Minimize()
	}
}

// --- Figures 1–3: word classification ---

var figureWords = []string{
	"(w,1)2, (r,1)1, (r,2)3, c2, (w,2)1, (r,1)3, c1, c3",
	"(w,1)2, (r,2)2, (r,3)3, (r,1)1, c2, (w,2)3, (w,3)1, c1, c3",
	"(w,1)2, (r,1)1, (r,2)3, c2, (w,2)1, (r,1)3, c1",
	"(w,1)2, (r,1)1, c2, (r,2)3, a3, (w,2)1, c1",
	"(w,2)1, (w,1)2, (r,2)2, (r,1)1, c2, c1",
}

func BenchmarkFigureOracle(b *testing.B) {
	words := make([]core.Word, len(figureWords))
	for i, s := range figureWords {
		words[i] = core.MustParseWord(s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range words {
			core.IsStrictlySerializable(w)
			core.IsOpaque(w)
		}
	}
}

func BenchmarkSpecMembership(b *testing.B) {
	nd := spec.NewNondet(spec.Opacity, 3, 3)
	words := make([]core.Word, len(figureWords))
	for i, s := range figureWords {
		words[i] = core.MustParseWord(s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range words {
			nd.Accepts(w)
		}
	}
}

// --- Ablations ---

// BenchmarkAntichainVsDeterministic compares the paper's deterministic
// pipeline (linear product) against direct antichain inclusion in the
// nondeterministic specification, on DSTM/opacity.
func BenchmarkAntichainVsDeterministic(b *testing.B) {
	ts := explore.Build(tm.NewDSTM(2, 2), nil)
	dfa := spec.NewDet(spec.Opacity, 2, 2).Enumerate()
	nfa := spec.NewNondet(spec.Opacity, 2, 2).Enumerate()
	tmNFA := ts.NFA()
	b.Run("deterministic-product", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ok, _ := automata.IncludedInDFA(tmNFA, dfa)
			if !ok {
				b.Fatal("inclusion must hold")
			}
		}
	})
	b.Run("antichain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ok, _ := automata.IncludedInNFA(tmNFA, nfa)
			if !ok {
				b.Fatal("inclusion must hold")
			}
		}
	})
}

// BenchmarkOracleVsBrute compares the conflict-graph oracle against the
// exhaustive serialization search on short random words.
func BenchmarkOracleVsBrute(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	words := make([]core.Word, 64)
	for i := range words {
		words[i] = wordgen.WellFormed(rng, wordgen.Config{Threads: 3, Vars: 3, Len: 9})
	}
	b.Run("conflict-graph", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, w := range words {
				core.IsOpaque(w)
			}
		}
	})
	b.Run("brute-force", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, w := range words {
				core.IsOpaqueBrute(w)
			}
		}
	})
}

// BenchmarkScaling sweeps the instance dimensions, showing how the
// transition systems and the check grow with threads and variables — the
// reason the reduction theorem matters.
func BenchmarkScaling(b *testing.B) {
	// Larger instances grow steeply — (2,3) takes seconds and (3,2) close
	// to a minute — so the regular sweep stops at the sizes the reduction
	// theorems actually require; the (2,3) case runs only without -short.
	for _, dims := range [][2]int{{2, 1}, {2, 2}, {3, 1}, {2, 3}} {
		n, k := dims[0], dims[1]
		expensive := n == 2 && k == 3
		b.Run(benchName(n, k), func(b *testing.B) {
			if expensive && testing.Short() {
				b.Skip("skipping expensive (2,3) instance in -short mode")
			}
			for i := 0; i < b.N; i++ {
				ts := explore.Build(tm.NewDSTM(n, k), nil)
				dfa := spec.NewDet(spec.Opacity, n, k).Enumerate()
				res := safety.CheckAgainstDFA(ts, spec.Opacity, dfa)
				if !res.Holds {
					b.Fatalf("dstm unsafe at (%d,%d)?", n, k)
				}
			}
		})
	}
}

func benchName(n, k int) string {
	return fmt.Sprintf("dstm-%dt%dv", n, k)
}

// --- Extensions beyond the paper ---

// BenchmarkExtensionTMs times the opacity check for the two extension TMs
// (NOrec, encounter-time locking).
func BenchmarkExtensionTMs(b *testing.B) {
	dfa := spec.NewDet(spec.Opacity, 2, 2).Enumerate()
	for _, alg := range []tm.Algorithm{tm.NewNOrec(2, 2), tm.NewETL(2, 2)} {
		ts := explore.Build(alg, nil)
		b.Run(alg.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := safety.CheckAgainstDFA(ts, spec.Opacity, dfa)
				if !res.Holds {
					b.Fatal("extension TM unexpectedly unsafe")
				}
			}
		})
	}
}

// BenchmarkStreettVsLoopSearch compares the two liveness backends.
func BenchmarkStreettVsLoopSearch(b *testing.B) {
	ts := explore.Build(tm.NewDSTM(2, 2), tm.Aggressive{})
	b.Run("loop-search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			liveness.CheckLivelockFreedom(ts)
		}
	})
	b.Run("streett", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			liveness.CheckLivelockFreedomStreett(ts)
		}
	})
}

// BenchmarkMonitor measures the online monitor's per-statement cost.
func BenchmarkMonitor(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	words := make([]core.Word, 32)
	for i := range words {
		words[i] = wordgen.WellFormed(rng, wordgen.Config{Threads: 3, Vars: 3, Len: 64})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := spec.NewMonitor(spec.Opacity, 3, 3)
		m.Feed(words[i%len(words)])
	}
}

// BenchmarkRuntimeSTM measures end-to-end transactional throughput of the
// executable STMs under the transfer workload (including trace recording).
func BenchmarkRuntimeSTM(b *testing.B) {
	for _, mk := range []struct {
		name string
		make func(*stmruntime.Recorder) stmruntime.STM
	}{
		{"tl2", func(r *stmruntime.Recorder) stmruntime.STM { return stmruntime.NewTL2STM(4, r) }},
		{"dstm", func(r *stmruntime.Recorder) stmruntime.STM { return stmruntime.NewDSTMSTM(4, r) }},
		{"glock", func(r *stmruntime.Recorder) stmruntime.STM { return stmruntime.NewGLockSTM(4, r) }},
	} {
		mk := mk
		b.Run(mk.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rec := &stmruntime.Recorder{}
				stm := mk.make(rec)
				if sum := stmruntime.RunTransfers(stm, 4, 4, 25, 10, int64(i), 100); sum != 400 {
					b.Fatalf("sum = %d", sum)
				}
			}
		})
	}
}

// BenchmarkWitness measures witness-order extraction on the figure words.
func BenchmarkWitness(b *testing.B) {
	words := make([]core.Word, len(figureWords))
	for i, s := range figureWords {
		words[i] = core.MustParseWord(s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range words {
			core.SerializationWitness(w, true, core.DeferredUpdate)
		}
	}
}

// BenchmarkCountWords measures the permissiveness DP on the opacity
// specification.
func BenchmarkCountWords(b *testing.B) {
	dfa := spec.NewDet(spec.Opacity, 2, 2).Enumerate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		automata.CountWords(dfa, 12)
	}
}

// BenchmarkRuntimeScalability sweeps goroutine counts on the executable
// TL2, measuring contention behaviour of the real implementation.
func BenchmarkRuntimeScalability(b *testing.B) {
	for _, g := range []int{1, 2, 4, 8} {
		g := g
		b.Run(fmt.Sprintf("tl2-%dgoroutines", g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rec := &stmruntime.Recorder{}
				stm := stmruntime.NewTL2STM(8, rec)
				stmruntime.RunTransfers(stm, 8, g, 50, 20, int64(i), 100)
			}
		})
	}
}
