// From model to machine: run real, executable STM implementations under a
// concurrent workload, record their statement traces, and check the traces
// — online with the deterministic-specification monitor and offline with
// the conflict-graph oracle.
//
// The STMs in internal/runtime operate on real values with real
// synchronization (version-and-lock words for TL2, ownership records for
// DSTM). Their models are verified opaque by the model checker; this
// example closes the loop by checking that the code's actual interleavings
// stay inside the verified language. An earlier version of the TL2
// implementation skipped version revalidation for read-then-written
// variables — this very harness caught it as a non-opaque trace.
//
// Run with:
//
//	go run ./examples/stmtrace
package main

import (
	"fmt"

	"tmcheck/internal/core"
	"tmcheck/internal/runtime"
	"tmcheck/internal/spec"
)

func main() {
	const (
		vars    = 3
		threads = 3
		count   = 15
		initial = 100
		retries = 8
	)
	for _, mk := range []func(*runtime.Recorder) runtime.STM{
		func(r *runtime.Recorder) runtime.STM { return runtime.NewTL2STM(vars, r) },
		func(r *runtime.Recorder) runtime.STM { return runtime.NewDSTMSTM(vars, r) },
		func(r *runtime.Recorder) runtime.STM { return runtime.NewNOrecSTM(vars, r) },
		func(r *runtime.Recorder) runtime.STM { return runtime.NewGLockSTM(vars, r) },
	} {
		rec := &runtime.Recorder{}
		stm := mk(rec)
		sum := runtime.RunTransfers(stm, vars, threads, count, retries, 2026, initial)
		trace := rec.Word()

		stats := traceStats(trace)
		fmt.Printf("=== %s ===\n", stm.Name())
		fmt.Printf("final sum:        %d (want %d) %s\n", sum, vars*initial, check(sum == vars*initial))
		fmt.Printf("trace:            %d statements, %d commits, %d aborts\n",
			len(trace), stats.commits, stats.aborts)

		// Offline: conflict-graph oracle.
		opaque := core.IsOpaque(trace)
		fmt.Printf("oracle opacity:   %v %s\n", opaque, check(opaque))

		// Online: deterministic-specification monitor, statement by
		// statement, as the trace would arrive from a live system.
		mon := spec.NewMonitor(spec.Opacity, threads, vars)
		ok := mon.Feed(trace)
		fmt.Printf("monitor opacity:  %v %s\n", ok, check(ok))
		if !ok {
			s, pos, _ := mon.Violation()
			fmt.Printf("  first violation: %v at statement %d\n", s, pos+1)
		}

		// The witness serialization order, if the trace is opaque.
		if order, hasWitness := core.SerializationWitness(trace, true, core.DeferredUpdate); hasWitness {
			fmt.Printf("witness:          %d transactions serialized consistently\n", len(order))
		}
		fmt.Println()
	}
}

type stats struct{ commits, aborts int }

func traceStats(w core.Word) stats {
	var s stats
	for _, st := range w {
		switch st.Cmd.Op {
		case core.OpCommit:
			s.commits++
		case core.OpAbort:
			s.aborts++
		}
	}
	return s
}

func check(ok bool) string {
	if ok {
		return "✓"
	}
	return "✗"
}
