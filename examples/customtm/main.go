// Verifying your own TM: implement the tm.Algorithm interface and run the
// full pipeline against it.
//
// The TM below is a "global lock" STM: the first access of a transaction
// acquires a single global lock; every read and write then runs under it;
// commit releases it. It is the coarsest possible design — trivially
// opaque, and as non-obstruction-free as the sequential TM. A second
// variant releases the lock after every access (a broken "fine-grained"
// optimization) and loses opacity; the checker produces the interleaving
// that breaks it.
//
// Run with:
//
//	go run ./examples/customtm
package main

import (
	"fmt"

	"tmcheck/internal/core"
	"tmcheck/internal/explore"
	"tmcheck/internal/liveness"
	"tmcheck/internal/safety"
	"tmcheck/internal/spec"
	"tmcheck/internal/tm"
)

// glState is the global-lock TM state: which thread holds the lock (-1 if
// free). It must be a comparable value.
type glState struct {
	Holder int8
}

// GlobalLockTM serializes whole transactions under one lock.
type GlobalLockTM struct {
	n, k int
	// releaseEarly simulates the broken variant: the lock is dropped after
	// every access instead of at commit.
	releaseEarly bool
}

// Name implements tm.Algorithm.
func (g *GlobalLockTM) Name() string {
	if g.releaseEarly {
		return "globallock-early"
	}
	return "globallock"
}

// Threads implements tm.Algorithm.
func (g *GlobalLockTM) Threads() int { return g.n }

// Vars implements tm.Algorithm.
func (g *GlobalLockTM) Vars() int { return g.k }

// Initial implements tm.Algorithm.
func (g *GlobalLockTM) Initial() tm.State { return glState{Holder: -1} }

// Conflict implements tm.Algorithm: the global lock never consults a
// contention manager.
func (g *GlobalLockTM) Conflict(q tm.State, c core.Command, t core.Thread) bool { return false }

// Steps implements tm.Algorithm.
func (g *GlobalLockTM) Steps(q tm.State, c core.Command, t core.Thread) []tm.Step {
	st := q.(glState)
	switch c.Op {
	case core.OpRead, core.OpWrite:
		if st.Holder == int8(t) {
			next := st
			if g.releaseEarly {
				next.Holder = -1
			}
			return []tm.Step{{X: tm.Base(c), R: tm.Resp1, Next: next}}
		}
		if st.Holder == -1 {
			// Acquire, then (atomically, as one extended command here)
			// perform the access.
			next := glState{Holder: int8(t)}
			if g.releaseEarly {
				next.Holder = -1
			}
			return []tm.Step{{X: tm.Base(c), R: tm.Resp1, Next: next}}
		}
		return nil // lock held elsewhere: abort enabled
	case core.OpCommit:
		if st.Holder == int8(t) || st.Holder == -1 {
			return []tm.Step{{X: tm.Base(c), R: tm.Resp1, Next: glState{Holder: -1}}}
		}
		return nil
	}
	return nil
}

// AbortStep implements tm.Algorithm: an aborting holder releases the lock.
func (g *GlobalLockTM) AbortStep(q tm.State, t core.Thread) tm.State {
	st := q.(glState)
	if st.Holder == int8(t) {
		st.Holder = -1
	}
	return st
}

func main() {
	good := &GlobalLockTM{n: 2, k: 2}
	bad := &GlobalLockTM{n: 2, k: 2, releaseEarly: true}

	for _, alg := range []tm.Algorithm{good, bad} {
		fmt.Printf("=== %s ===\n", alg.Name())
		for _, prop := range []spec.Property{spec.StrictSerializability, spec.Opacity} {
			res := safety.Verify(alg, nil, prop)
			if res.Holds {
				fmt.Printf("%-24s HOLDS (%d TM states, %v)\n", prop.String()+":", res.TMStates, res.Elapsed)
			} else {
				fmt.Printf("%-24s FAILS: %s\n", prop.String()+":", res.Counterexample)
			}
		}
		ts := explore.Build(alg, nil)
		of := liveness.CheckObstructionFreedom(ts)
		if of.Holds {
			fmt.Println("obstruction freedom:     HOLDS")
		} else {
			fmt.Printf("obstruction freedom:     FAILS, loop %s\n", of.LoopWord())
		}
		fmt.Println()
	}

	// The whole methodology in one call: (2,2) model checking plus
	// structural-property sampling at three instance sizes, which is what
	// licenses the "all programs" conclusion.
	rep := safety.VerifyViaReduction("globallock",
		func(n, k int) tm.Algorithm { return &GlobalLockTM{n: n, k: k} }, 7)
	fmt.Print(rep)
}
