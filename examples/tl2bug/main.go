// The TL2 validation-ordering bug (§5.4 of the paper).
//
// Published TL2 keeps each variable's version number and lock bit in one
// memory word, so commit-time read-set validation checks both atomically.
// If the two checks are split into separate atomic steps — rvalidate (the
// version check) first, chklock (the lock check) second — a window opens:
// another transaction can commit (bumping versions) and release its locks
// between the two checks, and the stale reader commits anyway.
//
// This example rediscovers the bug automatically: it model checks the
// modified TL2 with the polite contention manager against strict
// serializability, prints the counterexample, replays the unsafe
// interleaving step by step, and shows that unmodified TL2 refuses the
// same word.
//
// Run with:
//
//	go run ./examples/tl2bug
package main

import (
	"fmt"

	"tmcheck/internal/core"
	"tmcheck/internal/explore"
	"tmcheck/internal/safety"
	"tmcheck/internal/spec"
	"tmcheck/internal/tm"
)

func main() {
	modTS := explore.Build(tm.NewTL2Mod(2, 2), tm.Polite{})
	res := safety.Check(modTS, spec.StrictSerializability)
	fmt.Printf("modified TL2 + polite: %d states\n", res.TMStates)
	if res.Holds {
		fmt.Println("unexpectedly safe — the bug did not reproduce")
		return
	}
	fmt.Printf("NOT strictly serializable; counterexample:\n    %s\n\n", res.Counterexample)
	fmt.Printf("oracle agrees: strictly serializable = %v, opaque = %v\n\n",
		core.IsStrictlySerializable(res.Counterexample), core.IsOpaque(res.Counterexample))

	// Replay the window explicitly with per-thread programs: t1 reads v1
	// and writes v2; t2 reads v2 and writes v1. t2 commits fully first,
	// but t1's rvalidate runs BEFORE t2 publishes (versions still clean)
	// and t1's chklock runs AFTER t2 releases its locks — so both checks
	// pass and t1 commits on a stale read of v1.
	prog := explore.Program{
		0: {core.Read(0), core.Write(1), core.Commit()},
		1: {core.Read(1), core.Write(0), core.Commit()},
	}
	schedule := []core.Thread{
		0, 0, // t1: read v1, write v2
		1, 1, // t2: read v2, write v1
		1, 1, 1, // t2: lock v1, rvalidate, chklock
		0, 0, // t1: lock v2, rvalidate        (before t2 publishes!)
		1,    // t2: commit — publishes v1, releases locks
		0, 0, // t1: chklock (nothing locked), commit
	}
	run := modTS.RunProgram(schedule, prog)
	fmt.Println("unsafe run (extended statements):")
	fmt.Printf("    %s\n", explore.FormatRun(run))
	word := modTS.WordOf(run)
	fmt.Printf("emitted word: %s\n", word)
	commits := 0
	for _, s := range word {
		if s.Cmd.Op == core.OpCommit {
			commits++
		}
	}
	fmt.Printf("committed transactions: %d; strictly serializable = %v\n\n",
		commits, core.IsStrictlySerializable(word))

	// The unmodified TL2 — atomic validate — cannot emit this word.
	tl2TS := explore.Build(tm.NewTL2(2, 2), tm.Polite{})
	fmt.Printf("unmodified TL2 accepts the word: %v\n", tl2TS.InLanguage(word))
	safe := safety.Check(tl2TS, spec.Opacity)
	fmt.Printf("unmodified TL2 + polite ensures opacity: %v\n", safe.Holds)
}
