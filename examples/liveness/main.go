// Liveness survey: which TM / contention-manager combinations guarantee
// which liveness properties (§6 of the paper)?
//
// Liveness, unlike safety, depends on the contention manager: the same
// DSTM is obstruction free with the aggressive manager (a transaction
// running alone is never forced to abort itself) but not with the polite
// one (it politely aborts whenever a stale lock is in the way). This
// example checks every registered TM × manager combination on the most
// general program with 2 threads and 1 variable — sufficient by the
// liveness reduction theorem — and prints the verdict matrix with
// counterexample loops.
//
// It runs on the on-the-fly engine: liveness.CheckAllOnTheFly resolves
// all three properties over one lazy exploration, stopping each failing
// property at its first violating lasso instead of materializing the
// full transition system (the same verdicts and loops as the
// materialized liveness.Check* functions, at any worker count).
//
// Run with:
//
//	go run ./examples/liveness
package main

import (
	"fmt"

	"tmcheck/internal/liveness"
	"tmcheck/internal/tm"
)

func main() {
	algs := []string{"seq", "2pl", "dstm", "tl2"}
	cms := []string{"none", "aggressive", "polite", "karma", "timid"}

	fmt.Printf("%-18s %-24s %-40s %s\n", "system", "obstruction freedom", "livelock freedom", "wait freedom")
	for _, a := range algs {
		for _, c := range cms {
			alg, err := tm.NewAlgorithm(a, 2, 1)
			if err != nil {
				panic(err)
			}
			cm, err := tm.NewContentionManager(c)
			if err != nil {
				panic(err)
			}
			row, err := liveness.CheckAllOnTheFly(alg, cm)
			if err != nil {
				panic(err)
			}
			fmt.Printf("%-18s %-24s %-40s %s\n", row.Obstruction.System,
				verdict(row.Obstruction), verdict(row.Livelock), verdict(row.Wait))
		}
	}
	fmt.Println("\nReading the table:")
	fmt.Println(" - seq and 2pl burn a waiting thread's schedule slots as aborts: not obstruction free.")
	fmt.Println(" - dstm+aggressive never aborts itself, so a lone transaction always commits;")
	fmt.Println("   but two writers can steal ownership back and forth forever: no livelock freedom.")
	fmt.Println(" - a polite manager turns every conflict into a self-abort: a lone thread still")
	fmt.Println("   aborts against stale state left by a preempted rival.")
}

func verdict(r liveness.Result) string {
	if r.Holds {
		return "Y"
	}
	return "N [" + r.LoopWord() + "]"
}
