// Golden-output smoke tests for the runnable examples: each example is
// executed exactly as the README instructs (go run ./examples/<name>)
// and its output checked for the stable fragments of its story — the
// verdicts and the counterexample framing, not timings or state counts.
package examples_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runExample executes one example from the module root and returns its
// combined output.
func runExample(t *testing.T, name string) string {
	t.Helper()
	root, err := filepath.Abs("..")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./examples/"+name)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run ./examples/%s failed: %v\n%s", name, err, out)
	}
	return string(out)
}

func TestQuickstartGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("example subprocess skipped in -short")
	}
	out := runExample(t, "quickstart")
	for _, want := range []string{
		"ensures opacity",
		"opacity holds = true",
		"strict serializability holds = false",
		"counterexample:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("quickstart output missing %q:\n%s", want, out)
		}
	}
}

func TestTL2BugGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("example subprocess skipped in -short")
	}
	out := runExample(t, "tl2bug")
	for _, want := range []string{
		"NOT strictly serializable; counterexample:",
		"oracle agrees: strictly serializable = false",
		"committed transactions: 2; strictly serializable = false",
		"unmodified TL2 accepts the word: false",
		"unmodified TL2 + polite ensures opacity: true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tl2bug output missing %q:\n%s", want, out)
		}
	}
}
