// Quickstart: verify a transactional memory in a few lines.
//
// The pipeline is the paper's: express the TM as a transition system,
// unfold it against the most general program with 2 threads and 2
// variables, and check language inclusion in the deterministic opacity
// specification. By the reduction theorem, the (2,2) verdict extends to
// programs of every size for TMs with the structural properties P1–P4.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"tmcheck/internal/safety"
	"tmcheck/internal/spec"
	"tmcheck/internal/tm"
)

func main() {
	// Verify DSTM — ownership stealing, commit-time validation — against
	// opacity.
	res := safety.Verify(tm.NewDSTM(2, 2), nil, spec.Opacity)
	fmt.Printf("%s: %d TM states checked against %d specification states\n",
		res.System, res.TMStates, res.SpecStates)
	if res.Holds {
		fmt.Printf("%s ensures opacity (checked in %v)\n", res.System, res.Elapsed)
	} else {
		fmt.Printf("%s violates opacity: %s\n", res.System, res.Counterexample)
	}

	// Safety without a contention manager implies safety with every
	// manager, but managers can be checked directly too.
	for _, cm := range []tm.ContentionManager{tm.Aggressive{}, tm.Polite{}} {
		res := safety.Verify(tm.NewDSTM(2, 2), cm, spec.Opacity)
		fmt.Printf("%s: opacity holds = %v\n", res.System, res.Holds)
	}

	// A broken TM produces a counterexample trace instead.
	bad := safety.Verify(tm.NewTwoPLNoReadLock(2, 2), nil, spec.StrictSerializability)
	fmt.Printf("\n%s: strict serializability holds = %v\n", bad.System, bad.Holds)
	if !bad.Holds {
		fmt.Printf("counterexample: %s\n", bad.Counterexample)
		fmt.Println("(a reader observes a value, the writer commits behind it, both commit)")
	}
}
