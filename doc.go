// Package tmcheck is a model checker for transactional memories,
// reproducing Guerraoui, Henzinger and Singh, "Model Checking
// Transactional Memories" (PLDI 2008; extended version).
//
// The library verifies safety (strict serializability, opacity) and
// liveness (obstruction freedom, livelock freedom, wait freedom) of TM
// algorithms — sequential, two-phase locking, DSTM, TL2, and user-defined
// ones — by reducing the unbounded verification problem to finite-state
// language inclusion and loop detection, following the paper's reduction
// theorems.
//
// See the packages under internal/ for the components (core framework,
// automata substrate, TM algorithms, specifications, explorer, checkers),
// cmd/tmcheck for the command-line driver, and examples/ for runnable
// walkthroughs. The root package exists for documentation and for the
// module-level benchmark suite in bench_test.go.
package tmcheck
