module tmcheck

go 1.24
