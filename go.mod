module tmcheck

go 1.22
