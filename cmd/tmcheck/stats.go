package main

// Global flags, accepted by every subcommand and position-independent
// (before or after the subcommand):
//
//	-workers N        worker count for the parallel engines (default
//	                  GOMAXPROCS; 1 = exact sequential behavior)
//	-maxstates N      state budget: abort any check that would construct
//	                  more than N states (TM + spec + product) with a
//	                  budget error instead of exhausting memory
//	-timeout D        wall-clock limit for the whole command (e.g. 30s,
//	                  5m); expiry cancels in-flight checks at the same
//	                  points where the state budget is polled
//	-maxmem BYTES     heap cap (e.g. 512m, 2g): checks stop with a
//	                  memory-limit error when the sampled Go heap
//	                  exceeds it
//	-strict-limits    exit nonzero when any keep-going table row hits a
//	                  resource limit (default: report LIMIT rows, exit 0)
//	-stats            print the instrumentation report to stderr
//	-stats-json FILE  write the machine-readable report to FILE ("-" = stdout)
//	-cpuprofile FILE  write a pprof CPU profile of the whole command
//	-memprofile FILE  write a pprof heap profile taken after the command
//
// The JSON report (schema "tmcheck/stats/v1") is deterministic in its
// counter and gauge values for a deterministic command, so reports from
// two commits on the same inputs are directly comparable.

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"tmcheck/internal/guard"
	"tmcheck/internal/obs"
	"tmcheck/internal/parbfs"
	"tmcheck/internal/space"
)

// globalOpts holds the global flags extracted before subcommand
// dispatch.
type globalOpts struct {
	workers      int
	maxStates    int
	timeout      time.Duration
	maxMem       uint64
	strictLimits bool
	stats        bool
	statsJSON    string
	cpuProfile   string
	memProfile   string

	cpuFile *os.File
}

// strictLimits mirrors the -strict-limits flag for the keep-going table
// drivers: limited rows then fail the command instead of only being
// reported.
var strictLimits bool

// extractGlobalFlags splits the global observability flags out of args,
// wherever they appear, and returns the remaining arguments unchanged
// and in order for the subcommand's own flag set.
func extractGlobalFlags(args []string) (globalOpts, []string, error) {
	var g globalOpts
	rest := make([]string, 0, len(args))
	for i := 0; i < len(args); i++ {
		arg := args[i]
		if !strings.HasPrefix(arg, "-") {
			rest = append(rest, arg)
			continue
		}
		name, inline, hasInline := strings.Cut(strings.TrimLeft(arg, "-"), "=")
		value := func() (string, error) {
			if hasInline {
				return inline, nil
			}
			if i+1 >= len(args) {
				return "", fmt.Errorf("flag -%s needs a value", name)
			}
			i++
			return args[i], nil
		}
		var err error
		switch name {
		case "workers":
			var v string
			if v, err = value(); err == nil {
				g.workers, err = strconv.Atoi(v)
				if err != nil || g.workers < 1 {
					err = fmt.Errorf("flag -workers needs a positive integer, got %q", v)
				}
			}
		case "maxstates":
			var v string
			if v, err = value(); err == nil {
				g.maxStates, err = strconv.Atoi(v)
				if err != nil || g.maxStates < 1 {
					err = fmt.Errorf("flag -maxstates needs a positive integer, got %q", v)
				}
			}
		case "timeout":
			var v string
			if v, err = value(); err == nil {
				g.timeout, err = time.ParseDuration(v)
				if err != nil || g.timeout <= 0 {
					err = fmt.Errorf("flag -timeout needs a positive duration (e.g. 30s), got %q", v)
				}
			}
		case "maxmem":
			var v string
			if v, err = value(); err == nil {
				g.maxMem, err = guard.ParseBytes(v)
				if err != nil {
					err = fmt.Errorf("flag -maxmem: %v", err)
				}
			}
		case "strict-limits":
			g.strictLimits = true
		case "stats":
			g.stats = true
		case "stats-json":
			g.statsJSON, err = value()
		case "cpuprofile":
			g.cpuProfile, err = value()
		case "memprofile":
			g.memProfile, err = value()
		default:
			rest = append(rest, arg)
		}
		if err != nil {
			return g, nil, err
		}
	}
	return g, rest, nil
}

// begin installs the worker count and starts CPU profiling when
// requested. Call finish afterwards.
func (g *globalOpts) begin() error {
	if g.workers > 0 {
		parbfs.SetWorkers(g.workers)
	}
	if g.maxStates > 0 {
		space.SetMaxStates(g.maxStates)
	}
	if g.maxMem > 0 {
		guard.SetMaxMem(g.maxMem)
	}
	strictLimits = g.strictLimits
	if g.cpuProfile == "" {
		return nil
	}
	f, err := os.Create(g.cpuProfile)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	g.cpuFile = f
	return nil
}

// finish stops profiling and emits the requested reports for the
// command that just ran.
func (g *globalOpts) finish(command string) error {
	if g.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := g.cpuFile.Close(); err != nil {
			return err
		}
	}
	if g.memProfile != "" {
		f, err := os.Create(g.memProfile)
		if err != nil {
			return err
		}
		runtime.GC()
		err = pprof.WriteHeapProfile(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if g.statsJSON != "" {
		if err := writeStatsJSON(g.statsJSON, command); err != nil {
			return err
		}
	}
	if g.stats {
		fmt.Fprint(os.Stderr, obs.Default().Text())
	}
	return nil
}

func writeStatsJSON(path, command string) error {
	if path == "-" {
		return obs.Default().WriteJSON(os.Stdout, command)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = obs.Default().WriteJSON(f, command)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
