package main

// Global flags, accepted by every subcommand and position-independent
// (before or after the subcommand):
//
//	-workers N        worker count for the parallel engines (default
//	                  GOMAXPROCS; 1 = exact sequential behavior)
//	-maxstates N      state budget: abort any check that would construct
//	                  more than N states (TM + spec + product) with a
//	                  budget error instead of exhausting memory
//	-timeout D        wall-clock limit for the whole command (e.g. 30s,
//	                  5m); expiry cancels in-flight checks at the same
//	                  points where the state budget is polled
//	-maxmem BYTES     heap cap (e.g. 512m, 2g): checks stop with a
//	                  memory-limit error when the sampled Go heap
//	                  exceeds it
//	-strict-limits    exit nonzero when any keep-going table row hits a
//	                  resource limit (default: report LIMIT rows, exit 0)
//	-stats            print the instrumentation report to stderr
//	-stats-json FILE  write the machine-readable report to FILE ("-" = stdout)
//	-cpuprofile FILE  write a pprof CPU profile of the whole command
//	-memprofile FILE  write a pprof heap profile taken after the command
//	-progress         stream live status (level, states, states/sec, heap)
//	                  to stderr while checks run
//	-trace FILE       write a Chrome trace-event JSON timeline of the run
//	                  (load in Perfetto or chrome://tracing)
//	-debug-addr ADDR  serve /vitals, /events (SSE) and /debug/pprof on
//	                  ADDR (e.g. localhost:7077) for the duration of the
//	                  command
//
// The JSON report (schema "tmcheck/stats/v1") is deterministic in its
// counter and gauge values for a deterministic command, so reports from
// two commits on the same inputs are directly comparable. The telemetry
// flags enable the event bus (internal/obs/events.go); with all three
// off the bus stays disabled, the engines' fast paths are untouched,
// and the report bytes are identical to a run without telemetry.
// When a check stops at a resource limit or isolated panic, the last
// bus events are attached to the report as a flight recorder
// ("flight" in the JSON, a "flight recorder" section under -stats).

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"tmcheck/internal/guard"
	"tmcheck/internal/obs"
	"tmcheck/internal/parbfs"
	"tmcheck/internal/space"
)

// globalOpts holds the global flags extracted before subcommand
// dispatch.
type globalOpts struct {
	workers      int
	maxStates    int
	timeout      time.Duration
	maxMem       uint64
	strictLimits bool
	stats        bool
	statsJSON    string
	cpuProfile   string
	memProfile   string
	progress     bool
	traceFile    string
	debugAddr    string

	cpuFile    *os.File
	progressUI *obs.Progress
	traceW     *obs.TraceWriter
	traceF     *os.File
	debugSrv   *obs.DebugServer
}

// strictLimits mirrors the -strict-limits flag for the keep-going table
// drivers: limited rows then fail the command instead of only being
// reported.
var strictLimits bool

// extractGlobalFlags splits the global observability flags out of args,
// wherever they appear, and returns the remaining arguments unchanged
// and in order for the subcommand's own flag set.
func extractGlobalFlags(args []string) (globalOpts, []string, error) {
	var g globalOpts
	rest := make([]string, 0, len(args))
	for i := 0; i < len(args); i++ {
		arg := args[i]
		if !strings.HasPrefix(arg, "-") {
			rest = append(rest, arg)
			continue
		}
		name, inline, hasInline := strings.Cut(strings.TrimLeft(arg, "-"), "=")
		value := func() (string, error) {
			if hasInline {
				return inline, nil
			}
			if i+1 >= len(args) {
				return "", fmt.Errorf("flag -%s needs a value", name)
			}
			i++
			return args[i], nil
		}
		var err error
		switch name {
		case "workers":
			var v string
			if v, err = value(); err == nil {
				g.workers, err = strconv.Atoi(v)
				if err != nil || g.workers < 1 {
					err = fmt.Errorf("flag -workers needs a positive integer, got %q", v)
				}
			}
		case "maxstates":
			var v string
			if v, err = value(); err == nil {
				g.maxStates, err = strconv.Atoi(v)
				if err != nil || g.maxStates < 1 {
					err = fmt.Errorf("flag -maxstates needs a positive integer, got %q", v)
				}
			}
		case "timeout":
			var v string
			if v, err = value(); err == nil {
				g.timeout, err = time.ParseDuration(v)
				if err != nil || g.timeout <= 0 {
					err = fmt.Errorf("flag -timeout needs a positive duration (e.g. 30s), got %q", v)
				}
			}
		case "maxmem":
			var v string
			if v, err = value(); err == nil {
				g.maxMem, err = guard.ParseBytes(v)
				if err != nil {
					err = fmt.Errorf("flag -maxmem: %v", err)
				}
			}
		case "strict-limits":
			g.strictLimits = true
		case "stats":
			g.stats = true
		case "stats-json":
			g.statsJSON, err = value()
		case "cpuprofile":
			g.cpuProfile, err = value()
		case "memprofile":
			g.memProfile, err = value()
		case "progress":
			g.progress = true
		case "trace":
			g.traceFile, err = value()
		case "debug-addr":
			g.debugAddr, err = value()
		default:
			rest = append(rest, arg)
		}
		if err != nil {
			return g, nil, err
		}
	}
	return g, rest, nil
}

// begin installs the worker count, switches on the telemetry surfaces
// that were asked for, and starts CPU profiling when requested. Call
// finish afterwards.
func (g *globalOpts) begin(command string) error {
	if g.workers > 0 {
		parbfs.SetWorkers(g.workers)
	}
	if g.maxStates > 0 {
		space.SetMaxStates(g.maxStates)
	}
	if g.maxMem > 0 {
		guard.SetMaxMem(g.maxMem)
	}
	strictLimits = g.strictLimits
	if g.progress || g.traceFile != "" || g.debugAddr != "" {
		bus := obs.Events()
		bus.SetEnabled(true)
		if g.traceFile != "" {
			f, err := os.Create(g.traceFile)
			if err != nil {
				return err
			}
			g.traceF = f
			g.traceW = obs.StartTrace(f, bus)
		}
		if g.progress {
			g.progressUI = obs.StartProgress(os.Stderr, bus)
		}
		if g.debugAddr != "" {
			srv, err := obs.StartDebugServer(g.debugAddr, bus, obs.Default())
			if err != nil {
				return err
			}
			g.debugSrv = srv
			fmt.Fprintf(os.Stderr, "tmcheck: debug server on http://%s (/vitals, /events, /debug/pprof)\n", srv.Addr)
		}
		// Emitted after the trace writer subscribed, so the run span is
		// the first event on every surface.
		obs.Emit(obs.Event{Kind: obs.EvRunStart, Name: command})
	}
	if g.cpuProfile == "" {
		return nil
	}
	f, err := os.Create(g.cpuProfile)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	g.cpuFile = f
	return nil
}

// finish tears the telemetry surfaces down, stops profiling, and emits
// the requested reports for the command that just ran.
func (g *globalOpts) finish(command string) error {
	if obs.EventsEnabled() {
		obs.Emit(obs.Event{Kind: obs.EvRunDone, Name: command})
	}
	if g.progressUI != nil {
		g.progressUI.Stop()
	}
	if g.traceW != nil {
		err := g.traceW.Close()
		if cerr := g.traceF.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	if g.debugSrv != nil {
		g.debugSrv.Close()
	}
	if g.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := g.cpuFile.Close(); err != nil {
			return err
		}
	}
	if g.memProfile != "" {
		f, err := os.Create(g.memProfile)
		if err != nil {
			return err
		}
		runtime.GC()
		err = pprof.WriteHeapProfile(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if g.statsJSON != "" {
		if err := writeStatsJSON(g.statsJSON, command); err != nil {
			return err
		}
	}
	if g.stats {
		fmt.Fprint(os.Stderr, obs.Default().Text())
		if evs, dropped, limited := obs.Events().Flight(flightDepth); limited {
			fmt.Fprintf(os.Stderr, "flight recorder (last %d event(s), %d dropped):\n%s",
				len(evs), dropped, obs.FormatEvents(evs))
		}
	}
	return nil
}

// flightDepth is how many recent bus events a limited run's report
// carries.
const flightDepth = 64

// statsReport snapshots the registry and attaches the flight-recorder
// dump when a limit or panic was captured on the bus. With telemetry
// off — or a limit-free run — the report is exactly the registry
// snapshot.
func statsReport(command string) obs.Report {
	rep := obs.Default().Snapshot(command)
	rep.AttachFlight(obs.Events(), flightDepth)
	return rep
}

func writeStatsJSON(path, command string) error {
	rep := statsReport(command)
	if path == "-" {
		return encodeReport(os.Stdout, rep)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = encodeReport(f, rep)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func encodeReport(w io.Writer, rep obs.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
