package main

// Local-vs-remote equivalence: the whole point of the daemon split is
// that `tmcheck -remote addr` renders byte-identical output to a local
// run. Timing differs between runs, so rendered durations are
// normalized to a placeholder before comparison; everything else —
// verdicts, state counts, counterexamples, loops, layout — must match
// exactly.

import (
	"bytes"
	"context"
	"regexp"
	"strings"
	"testing"

	"tmcheck/internal/job"
	"tmcheck/internal/jobd"
	"tmcheck/internal/wire"
)

// durToken matches a rendered Go duration (1.23ms, 450µs, 2m3s, ...).
// Longer unit names come first so "ms" is not split as "m"+"s".
var durToken = regexp.MustCompile(`\d+(\.\d+)?(ns|µs|us|ms|s|m|h)`)

func normalizeDurations(s string) string {
	return durToken.ReplaceAllString(s, "DUR")
}

func startDaemon(t *testing.T) string {
	t.Helper()
	srv := jobd.New(jobd.Config{Jobs: 2})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr.String()
}

func renderLocal(t *testing.T, sp job.Spec) string {
	t.Helper()
	res, err := job.Run(context.Background(), sp)
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	var sb strings.Builder
	res.Render(&sb)
	return sb.String()
}

func renderRemote(t *testing.T, addr string, sp job.Spec) string {
	t.Helper()
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Run(context.Background(), sp, nil)
	if err != nil {
		t.Fatalf("remote run: %v", err)
	}
	var sb strings.Builder
	res.Render(&sb)
	return sb.String()
}

// TestRemoteEquivalence runs a table-2 row (dstm opacity) and a failing
// liveness check (dstm+aggressive livelock) both locally and through a
// real daemon, at 1 and 4 workers, and requires the rendered output to
// be byte-identical up to durations.
func TestRemoteEquivalence(t *testing.T) {
	addr := startDaemon(t)
	specs := []struct {
		name string
		sp   job.Spec
	}{
		{"table2-row-dstm-op", job.Spec{Kind: job.KindSafety, TM: "dstm", Prop: "op"}},
		{"failing-liveness-dstm-aggressive", job.Spec{Kind: job.KindLiveness, TM: "dstm", CM: "aggressive"}},
	}
	for _, tc := range specs {
		for _, workers := range []int{1, 4} {
			sp := tc.sp
			sp.Workers = workers
			local := normalizeDurations(renderLocal(t, sp))
			remote := normalizeDurations(renderRemote(t, addr, sp))
			if local != remote {
				t.Errorf("%s workers=%d: local and remote renders differ\n--- local ---\n%s--- remote ---\n%s",
					tc.name, workers, local, remote)
			}
			// Sanity: the run produced real content, not two empty strings.
			if !strings.Contains(local, "verdict") && !strings.Contains(local, "HOLDS") && !strings.Contains(local, "FAILS") {
				t.Errorf("%s workers=%d: suspicious render:\n%s", tc.name, workers, local)
			}
		}
	}
}

// TestRenderSurvivesWire is the strict half: a Result pushed through
// the wire codec renders byte-identical to the original, durations
// included — no normalization allowed. Any lossy field would show here.
func TestRenderSurvivesWire(t *testing.T) {
	for _, sp := range []job.Spec{
		{Kind: job.KindSafety, TM: "dstm", Prop: "op"},
		{Kind: job.KindLiveness, TM: "dstm", CM: "aggressive"},
	} {
		res, err := job.Run(context.Background(), sp)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		c := wire.NewConn(&buf)
		if err := c.Write(1, wire.ResultMsg{Result: res}); err != nil {
			t.Fatal(err)
		}
		_, m, err := c.Read()
		if err != nil {
			t.Fatal(err)
		}
		decoded := m.(wire.ResultMsg).Result

		var want, got strings.Builder
		res.Render(&want)
		decoded.Render(&got)
		if want.String() != got.String() {
			t.Errorf("render changed across the wire\n--- before ---\n%s--- after ---\n%s", want.String(), got.String())
		}
	}
}
