package main

// Acceptance tests for the telemetry layer's non-interference
// guarantee: with the event bus enabled and every surface attached
// (progress renderer, trace writer, a live subscriber), verdicts,
// counterexamples, and the stats report are bit-identical to a run
// with telemetry off — sequentially and with parallel workers.

import (
	"io"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"tmcheck/internal/obs"
	"tmcheck/internal/parbfs"
)

// durRE matches the wall-clock durations the drivers print ("160µs",
// "25.37ms", "1.2s") — the only run-to-run nondeterminism in their
// output.
var durRE = regexp.MustCompile(`[0-9]+(\.[0-9]+)?(ns|µs|ms|s)\b`)

// padRE matches the column padding that varies with duration width.
var padRE = regexp.MustCompile(`  +`)

// normalize scrubs wall-clock durations — and the table padding sized
// to them — from driver output so two runs of a deterministic command
// compare byte-for-byte.
func normalize(out string) string {
	return padRE.ReplaceAllString(durRE.ReplaceAllString(out, "DUR"), " ")
}

// scrubGauges drops the gauges parbfs documents as hash-seed dependent
// (Stats.MaxShardLoad); everything else must match exactly.
func scrubGauges(gauges map[string]int64) map[string]int64 {
	for key := range gauges {
		if strings.HasSuffix(key, ".intern.max_shard_load") {
			delete(gauges, key)
		}
	}
	return gauges
}

// runQuiet runs a subcommand with telemetry off and returns its stdout
// plus the deterministic half of the stats report.
func runQuiet(t *testing.T, command string, args []string) (string, map[string]int64, map[string]int64) {
	t.Helper()
	obs.Default().Reset()
	out := captureStdout(t, func() error { return dispatch(bgCtx, command, args) })
	rep := obs.Default().Snapshot(command)
	return normalize(out), rep.Counters, scrubGauges(rep.Gauges)
}

// runLoud runs the same subcommand with the bus enabled and all three
// telemetry surfaces live: a trace writer, a piped progress renderer,
// and a subscriber draining events as an SSE client would.
func runLoud(t *testing.T, command string, args []string) (string, map[string]int64, map[string]int64) {
	t.Helper()
	bus := obs.Events()
	bus.Reset()
	bus.SetEnabled(true)
	defer func() {
		bus.SetEnabled(false)
		bus.Reset()
	}()

	sub := bus.Subscribe(256)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range sub.C {
		}
	}()

	tw := obs.StartTrace(io.Discard, bus)
	var progOut syncWriter
	prog := obs.StartProgress(&progOut, bus)

	obs.Default().Reset()
	obs.Emit(obs.Event{Kind: obs.EvRunStart, Name: command})
	out := captureStdout(t, func() error { return dispatch(bgCtx, command, args) })
	obs.Emit(obs.Event{Kind: obs.EvRunDone, Name: command})
	rep := obs.Default().Snapshot(command)

	prog.Stop()
	if err := tw.Close(); err != nil {
		t.Fatalf("trace writer: %v", err)
	}
	bus.Unsubscribe(sub)
	<-drained
	return normalize(out), rep.Counters, scrubGauges(rep.Gauges)
}

// syncWriter discards writes; it only exists so the progress renderer
// has a non-TTY, goroutine-safe sink.
type syncWriter struct{}

func (syncWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestTelemetryEquivalence is the PR's acceptance check: for a safety
// table and a liveness check, at workers=1 and workers=4, the verdict
// output and the counter/gauge report are identical with telemetry off
// and with every telemetry surface on.
func TestTelemetryEquivalence(t *testing.T) {
	cases := []struct {
		name    string
		command string
		args    []string
	}{
		{"table2-materialized", "table2", []string{"-engine", "materialized"}},
		{"table2-onthefly", "table2", nil},
		{"liveness-dstm-aggressive", "liveness", []string{"-tm", "dstm", "-cm", "aggressive"}},
	}
	oldWorkers := parbfs.Workers()
	defer parbfs.SetWorkers(oldWorkers)
	for _, workers := range []int{1, 4} {
		parbfs.SetWorkers(workers)
		for _, tc := range cases {
			quietOut, quietCounters, quietGauges := runQuiet(t, tc.command, tc.args)
			loudOut, loudCounters, loudGauges := runLoud(t, tc.command, tc.args)
			if quietOut != loudOut {
				t.Errorf("%s workers=%d: stdout differs with telemetry on\n--- off ---\n%s\n--- on ---\n%s",
					tc.name, workers, quietOut, loudOut)
			}
			if !reflect.DeepEqual(quietCounters, loudCounters) {
				t.Errorf("%s workers=%d: counters differ with telemetry on\noff: %v\non:  %v",
					tc.name, workers, quietCounters, loudCounters)
			}
			if !reflect.DeepEqual(quietGauges, loudGauges) {
				t.Errorf("%s workers=%d: gauges differ with telemetry on\noff: %v\non:  %v",
					tc.name, workers, quietGauges, loudGauges)
			}
		}
	}
	obs.Default().Reset()
}
