package main

import (
	"context"
	"flag"
	"os"
	"strconv"

	"tmcheck/internal/soak"
)

// runChaosSoak drives the hidden chaos-soak subcommand: K seeds of
// deterministic fault plans over real checkpointed local runs and a
// retrying remote run, asserting the verdict-or-typed-error invariant
// (see internal/soak). Exits nonzero on the first violation, so CI can
// gate on it.
func runChaosSoak(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("chaos-soak", flag.ContinueOnError)
	seeds := fs.Int("seeds", 64, "number of consecutive fault-plan seeds to run")
	first := fs.String("first", "1", "first seed")
	dir := fs.String("dir", "", "scratch directory for snapshots and spill files (default: a temp dir)")
	noRemote := fs.Bool("no-remote", false, "skip the in-process daemon + retrying-client case")
	verbose := fs.Bool("v", false, "print one line per seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := strconv.ParseUint(*first, 0, 64)
	if err != nil {
		return err
	}
	return soak.Run(ctx, soak.Config{
		Seeds: *seeds, First: f, Dir: *dir,
		NoRemote: *noRemote, Verbose: *verbose, Out: os.Stderr,
	})
}
