package main

import (
	"os"
	"strings"
	"testing"
)

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errCh := make(chan error, 1)
	go func() { errCh <- f() }()
	runErr := <-errCh
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	// Drain any remainder.
	for {
		m, err := r.Read(buf[n:])
		n += m
		if err != nil || n == len(buf) {
			break
		}
	}
	if runErr != nil {
		t.Fatalf("command failed: %v", runErr)
	}
	return string(buf[:n])
}

func TestRunTable1(t *testing.T) {
	out := captureStdout(t, func() error { return runTable1(nil) })
	for _, want := range []string{
		"Table 1",
		"(rl,1)1, (r,1)1, (wl,2)1, (w,2)1, c1, (wl,2)2",
		"(r,1)1, (o,1)2, (w,1)2, v2, c2, (o,2)1, (w,2)1, a1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q", want)
		}
	}
}

func TestRunTable2(t *testing.T) {
	out := captureStdout(t, func() error { return runTable2(nil) })
	for _, want := range []string{"seq", "modtl2+polite", "counterexample", "Y,", "N,"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output missing %q", want)
		}
	}
}

func TestRunTable3(t *testing.T) {
	out := captureStdout(t, func() error { return runTable3(nil) })
	for _, want := range []string{"dstm+aggressive", "loop a1", "Y,"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 output missing %q", want)
		}
	}
}

func TestRunSpecs(t *testing.T) {
	out := captureStdout(t, func() error { return runSpecs(nil) })
	for _, want := range []string{"Theorem 3", "opacity", "minimal"} {
		if !strings.Contains(out, want) {
			t.Errorf("specs output missing %q", want)
		}
	}
	if strings.Contains(out, "EQUIVALENCE FAILS") {
		t.Error("spec equivalence failed")
	}
}

func TestRunFigures(t *testing.T) {
	out := captureStdout(t, func() error { return runFigures(nil) })
	if !strings.Contains(out, "Figure 2(b)") {
		t.Error("figures output missing Figure 2(b)")
	}
}

func TestRunSafetyVerdicts(t *testing.T) {
	out := captureStdout(t, func() error {
		return runSafety([]string{"-tm", "modtl2", "-cm", "polite", "-prop", "ss"})
	})
	for _, want := range []string{"UNSAFE", "counterexample", "must precede"} {
		if !strings.Contains(out, want) {
			t.Errorf("safety output missing %q:\n%s", want, out)
		}
	}
	out = captureStdout(t, func() error {
		return runSafety([]string{"-tm", "dstm", "-prop", "op"})
	})
	if !strings.Contains(out, "SAFE") {
		t.Errorf("safety output missing SAFE verdict:\n%s", out)
	}
}

func TestRunLiveness(t *testing.T) {
	out := captureStdout(t, func() error {
		return runLiveness([]string{"-tm", "dstm", "-cm", "aggressive"})
	})
	for _, want := range []string{"obstruction freedom", "HOLDS", "livelock freedom", "FAILS"} {
		if !strings.Contains(out, want) {
			t.Errorf("liveness output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWord(t *testing.T) {
	out := captureStdout(t, func() error {
		return runWord([]string{"-w", "(w,2)1, (w,1)2, (r,2)2, (r,1)1, c2, c1"})
	})
	for _, want := range []string{"strictly serializable:  false", "conflict cycle"} {
		if !strings.Contains(out, want) {
			t.Errorf("word output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWordErrors(t *testing.T) {
	if err := runWord([]string{"-w", "(x,1)1"}); err == nil {
		t.Error("bad word should error")
	}
	if err := runWord(nil); err == nil {
		t.Error("missing -w should error")
	}
}

func TestRunCount(t *testing.T) {
	out := captureStdout(t, func() error { return runCount([]string{"-len", "4"}) })
	for _, want := range []string{"πss", "L(dstm)", "permissiveness"} {
		if !strings.Contains(out, want) {
			t.Errorf("count output missing %q", want)
		}
	}
}

func TestRunTrace(t *testing.T) {
	out := captureStdout(t, func() error {
		return runTrace([]string{"-stm", "tl2", "-threads", "2", "-count", "5"})
	})
	for _, want := range []string{"invariant", "opaque = true"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
	if err := runTrace([]string{"-stm", "nope"}); err == nil {
		t.Error("unknown STM should error")
	}
}

func TestRunMethodology(t *testing.T) {
	out := captureStdout(t, func() error {
		return runMethodology([]string{"-tm", "2pl"})
	})
	if !strings.Contains(out, "ALL programs") {
		t.Errorf("methodology output missing conclusion:\n%s", out)
	}
	if err := runMethodology([]string{"-tm", "nope"}); err == nil {
		t.Error("unknown TM should error")
	}
}

func TestRunDot(t *testing.T) {
	out := captureStdout(t, func() error {
		return runDot([]string{"-tm", "seq", "-k", "1"})
	})
	if !strings.Contains(out, "digraph") {
		t.Errorf("dot output missing digraph:\n%s", out)
	}
}

func TestUnknownAlgorithmErrors(t *testing.T) {
	if err := runSafety([]string{"-tm", "nope"}); err == nil {
		t.Error("unknown TM should error")
	}
	if err := runLiveness([]string{"-cm", "nope"}); err == nil {
		t.Error("unknown manager should error")
	}
}
