package main

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"tmcheck/internal/job"
	"tmcheck/internal/obs"
	"tmcheck/internal/space"
)

// bgCtx is the no-deadline context the direct run* call sites use.
var bgCtx = context.Background()

// captureStdoutErr runs f with os.Stdout redirected to a pipe and
// returns what it printed along with f's error.
func captureStdoutErr(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errCh := make(chan error, 1)
	go func() { errCh <- f() }()
	runErr := <-errCh
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	// Drain any remainder.
	for {
		m, err := r.Read(buf[n:])
		n += m
		if err != nil || n == len(buf) {
			break
		}
	}
	return string(buf[:n]), runErr
}

// captureStdout is captureStdoutErr for commands that must succeed.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	out, err := captureStdoutErr(t, f)
	if err != nil {
		t.Fatalf("command failed: %v", err)
	}
	return out
}

func TestRunTable1(t *testing.T) {
	out := captureStdout(t, func() error { return runTable1(bgCtx, nil) })
	for _, want := range []string{
		"Table 1",
		"(rl,1)1, (r,1)1, (wl,2)1, (w,2)1, c1, (wl,2)2",
		"(r,1)1, (o,1)2, (w,1)2, v2, c2, (o,2)1, (w,2)1, a1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q", want)
		}
	}
}

func TestRunTable2(t *testing.T) {
	out := captureStdout(t, func() error { return runTable2(bgCtx, nil) })
	for _, want := range []string{"seq", "modtl2+polite", "counterexample", "Y,", "N,"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output missing %q", want)
		}
	}
}

func TestRunTable3(t *testing.T) {
	out := captureStdout(t, func() error { return runTable3(bgCtx, nil) })
	for _, want := range []string{"dstm+aggressive", "loop a1", "Y,"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 output missing %q", want)
		}
	}
	mat := captureStdout(t, func() error { return runTable3(bgCtx, []string{"-engine", "materialized"}) })
	for _, want := range []string{"dstm+aggressive", "loop a1", "Y,"} {
		if !strings.Contains(mat, want) {
			t.Errorf("table3 -engine materialized output missing %q", want)
		}
	}
	if err := runTable3(bgCtx, []string{"-engine", "nope"}); err == nil {
		t.Error("unknown engine should error")
	}
}

func TestRunSpecs(t *testing.T) {
	out := captureStdout(t, func() error { return runSpecs(nil) })
	for _, want := range []string{"Theorem 3", "opacity", "minimal"} {
		if !strings.Contains(out, want) {
			t.Errorf("specs output missing %q", want)
		}
	}
	if strings.Contains(out, "EQUIVALENCE FAILS") {
		t.Error("spec equivalence failed")
	}
}

func TestRunFigures(t *testing.T) {
	out := captureStdout(t, func() error { return runFigures(nil) })
	if !strings.Contains(out, "Figure 2(b)") {
		t.Error("figures output missing Figure 2(b)")
	}
}

func TestRunSafetyVerdicts(t *testing.T) {
	out := captureStdout(t, func() error {
		return runSafety(bgCtx, []string{"-tm", "modtl2", "-cm", "polite", "-prop", "ss"})
	})
	for _, want := range []string{"UNSAFE", "counterexample", "must precede"} {
		if !strings.Contains(out, want) {
			t.Errorf("safety output missing %q:\n%s", want, out)
		}
	}
	out = captureStdout(t, func() error {
		return runSafety(bgCtx, []string{"-tm", "dstm", "-prop", "op"})
	})
	if !strings.Contains(out, "SAFE") {
		t.Errorf("safety output missing SAFE verdict:\n%s", out)
	}
}

func TestRunLiveness(t *testing.T) {
	out := captureStdout(t, func() error {
		return runLiveness(bgCtx, []string{"-tm", "dstm", "-cm", "aggressive"})
	})
	for _, want := range []string{"obstruction freedom", "HOLDS", "livelock freedom", "FAILS", "onthefly engine", "states expanded"} {
		if !strings.Contains(out, want) {
			t.Errorf("liveness output missing %q:\n%s", want, out)
		}
	}
	if err := runLiveness(bgCtx, []string{"-engine", "nope"}); err == nil {
		t.Error("unknown engine should error")
	}
}

// TestRunLivenessEnginesAgree runs both engines through the CLI and
// checks the per-property verdict lines match verbatim.
func TestRunLivenessEnginesAgree(t *testing.T) {
	verdicts := func(out string) []string {
		var lines []string
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, "HOLDS") || strings.Contains(line, "FAILS") {
				lines = append(lines, line[:strings.Index(line, ":")+1]+" "+verdictTail(line))
			}
		}
		return lines
	}
	otf := captureStdout(t, func() error {
		return runLiveness(bgCtx, []string{"-tm", "tl2", "-cm", "polite"})
	})
	mat := captureStdout(t, func() error {
		return runLiveness(bgCtx, []string{"-tm", "tl2", "-cm", "polite", "-engine", "materialized"})
	})
	got, want := verdicts(otf), verdicts(mat)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("engine verdicts differ:\nonthefly:     %v\nmaterialized: %v", got, want)
	}
}

// verdictTail strips the timing so HOLDS lines compare across engines;
// FAILS lines keep the full loop word.
func verdictTail(line string) string {
	if i := strings.Index(line, "FAILS"); i >= 0 {
		return line[i:]
	}
	return "HOLDS"
}

func TestRunWord(t *testing.T) {
	out := captureStdout(t, func() error {
		return runWord([]string{"-w", "(w,2)1, (w,1)2, (r,2)2, (r,1)1, c2, c1"})
	})
	for _, want := range []string{"strictly serializable:  false", "conflict cycle"} {
		if !strings.Contains(out, want) {
			t.Errorf("word output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWordErrors(t *testing.T) {
	if err := runWord([]string{"-w", "(x,1)1"}); err == nil {
		t.Error("bad word should error")
	}
	if err := runWord(nil); err == nil {
		t.Error("missing -w should error")
	}
}

func TestRunCount(t *testing.T) {
	out := captureStdout(t, func() error { return runCount(bgCtx, []string{"-len", "4"}) })
	for _, want := range []string{"πss", "L(dstm)", "permissiveness"} {
		if !strings.Contains(out, want) {
			t.Errorf("count output missing %q", want)
		}
	}
}

func TestRunTrace(t *testing.T) {
	out := captureStdout(t, func() error {
		return runTrace([]string{"-stm", "tl2", "-threads", "2", "-count", "5"})
	})
	for _, want := range []string{"invariant", "opaque = true"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
	if err := runTrace([]string{"-stm", "nope"}); err == nil {
		t.Error("unknown STM should error")
	}
}

func TestRunMethodology(t *testing.T) {
	out := captureStdout(t, func() error {
		return runMethodology([]string{"-tm", "2pl"})
	})
	if !strings.Contains(out, "ALL programs") {
		t.Errorf("methodology output missing conclusion:\n%s", out)
	}
	if err := runMethodology([]string{"-tm", "nope"}); err == nil {
		t.Error("unknown TM should error")
	}
}

func TestRunDot(t *testing.T) {
	out := captureStdout(t, func() error {
		return runDot(bgCtx, []string{"-tm", "seq", "-k", "1"})
	})
	if !strings.Contains(out, "digraph") {
		t.Errorf("dot output missing digraph:\n%s", out)
	}
}

func TestExtractGlobalFlags(t *testing.T) {
	g, rest, err := job.Extract([]string{
		"table2", "-n", "3", "-stats", "-stats-json", "out.json", "-cpuprofile=cpu.prof",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Stats || g.StatsJSON != "out.json" || g.CPUProfile != "cpu.prof" {
		t.Errorf("flags not extracted: %+v", g)
	}
	if want := []string{"table2", "-n", "3"}; !reflect.DeepEqual(rest, want) {
		t.Errorf("rest = %v, want %v", rest, want)
	}

	// Global flags are position-independent: before the subcommand too.
	g2, rest2, err := job.Extract([]string{"-memprofile", "mem.prof", "table1"})
	if err != nil {
		t.Fatal(err)
	}
	if g2.MemProfile != "mem.prof" || !reflect.DeepEqual(rest2, []string{"table1"}) {
		t.Errorf("prefix extraction failed: %+v rest %v", g2, rest2)
	}

	if _, _, err := job.Extract([]string{"table1", "-stats-json"}); err == nil {
		t.Error("dangling -stats-json should error")
	}

	g3, rest3, err := job.Extract([]string{"-workers", "4", "table2", "-n", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if g3.Workers != 4 || !reflect.DeepEqual(rest3, []string{"table2", "-n", "2"}) {
		t.Errorf("-workers extraction failed: %+v rest %v", g3, rest3)
	}
	for _, bad := range []string{"0", "-2", "x"} {
		if _, _, err := job.Extract([]string{"-workers", bad, "table1"}); err == nil {
			t.Errorf("-workers %s should error", bad)
		}
	}

	g4, rest4, err := job.Extract([]string{"-maxstates", "5000", "safety", "-tm", "tl2"})
	if err != nil {
		t.Fatal(err)
	}
	if g4.MaxStates != 5000 || !reflect.DeepEqual(rest4, []string{"safety", "-tm", "tl2"}) {
		t.Errorf("-maxstates extraction failed: %+v rest %v", g4, rest4)
	}
	for _, bad := range []string{"0", "-5", "many"} {
		if _, _, err := job.Extract([]string{"-maxstates", bad, "table1"}); err == nil {
			t.Errorf("-maxstates %s should error", bad)
		}
	}

	g5, rest5, err := job.Extract([]string{"-timeout", "30s", "-maxmem", "2g", "-strict-limits", "table3"})
	if err != nil {
		t.Fatal(err)
	}
	if g5.Timeout != 30*time.Second || g5.MaxMem != 2<<30 || !g5.StrictLimits {
		t.Errorf("resource flags not extracted: %+v", g5)
	}
	if !reflect.DeepEqual(rest5, []string{"table3"}) {
		t.Errorf("rest = %v, want [table3]", rest5)
	}
	for _, bad := range [][]string{
		{"-timeout", "0s", "table1"},
		{"-timeout", "soon", "table1"},
		{"-maxmem", "lots", "table1"},
	} {
		if _, _, err := job.Extract(bad); err == nil {
			t.Errorf("%v should error", bad)
		}
	}

	g6, rest6, err := job.Extract([]string{"-remote", "127.0.0.1:7078", "table2"})
	if err != nil {
		t.Fatal(err)
	}
	if g6.Remote != "127.0.0.1:7078" || !reflect.DeepEqual(rest6, []string{"table2"}) {
		t.Errorf("-remote extraction failed: %+v rest %v", g6, rest6)
	}
}

// TestMaxStatesBudgetCLI drives the budget end to end: under a tiny
// -maxstates both engines abort the safety command with a budget error
// naming the budget.
func TestMaxStatesBudgetCLI(t *testing.T) {
	old := space.MaxStates()
	space.SetMaxStates(100)
	defer space.SetMaxStates(old)
	for _, engine := range []string{"onthefly", "materialized"} {
		err := runSafety(bgCtx, []string{"-tm", "dstm", "-prop", "op", "-engine", engine})
		if !errors.Is(err, space.ErrBudgetExceeded) {
			t.Errorf("engine %s: want budget error, got %v", engine, err)
		}
	}
}

// TestMaxStatesBudgetLivenessCLI drives -maxstates through the liveness
// paths: the single-system liveness command still fails fast with the
// typed budget error (whose message names the flag to raise), while the
// table3 driver keeps going — limited rows render as LIMIT(states), the
// command exits clean by default and fails only under -strict-limits.
func TestMaxStatesBudgetLivenessCLI(t *testing.T) {
	old := space.MaxStates()
	space.SetMaxStates(50)
	defer space.SetMaxStates(old)
	for _, engine := range []string{"onthefly", "materialized"} {
		err := runLiveness(bgCtx, []string{"-tm", "dstm", "-cm", "aggressive", "-engine", engine})
		if !errors.Is(err, space.ErrBudgetExceeded) {
			t.Errorf("liveness engine %s: want budget error, got %v", engine, err)
		}
		if err == nil || !strings.Contains(err.Error(), "-maxstates") {
			t.Errorf("liveness engine %s: error %q does not name -maxstates", engine, err)
		}
		out, err := captureStdoutErr(t, func() error {
			return runTable3(bgCtx, []string{"-engine", engine})
		})
		if err != nil {
			t.Errorf("table3 engine %s: keep-going run failed: %v", engine, err)
		}
		if !strings.Contains(out, "LIMIT(states)") {
			t.Errorf("table3 engine %s: output missing LIMIT(states):\n%s", engine, out)
		}
		// seq fits in 50 states even materialized, so at least one row
		// must still complete with a real verdict (every (2,1) verdict
		// that resolves is a violation with its loop word).
		if !strings.Contains(out, "N, loop") {
			t.Errorf("table3 engine %s: no completed row alongside the limited ones:\n%s", engine, out)
		}
		strictLimits = true
		_, err = captureStdoutErr(t, func() error {
			return runTable3(bgCtx, []string{"-engine", engine})
		})
		strictLimits = false
		if !errors.Is(err, space.ErrBudgetExceeded) {
			t.Errorf("table3 engine %s -strict-limits: want budget error, got %v", engine, err)
		}
	}
}

// TestTable2KeepGoingCLI runs table2 under a budget that stops the
// larger systems: limited cells render as LIMIT(states), the small
// systems still get verdicts, and -strict-limits flips the exit.
func TestTable2KeepGoingCLI(t *testing.T) {
	old := space.MaxStates()
	space.SetMaxStates(200)
	defer space.SetMaxStates(old)
	for _, engine := range []string{"onthefly", "materialized"} {
		out, err := captureStdoutErr(t, func() error {
			return runTable2(bgCtx, []string{"-engine", engine})
		})
		if err != nil {
			t.Errorf("table2 engine %s: keep-going run failed: %v", engine, err)
		}
		if !strings.Contains(out, "LIMIT(states)") {
			t.Errorf("table2 engine %s: output missing LIMIT(states):\n%s", engine, out)
		}
		strictLimits = true
		_, err = captureStdoutErr(t, func() error {
			return runTable2(bgCtx, []string{"-engine", engine})
		})
		strictLimits = false
		if !errors.Is(err, space.ErrBudgetExceeded) {
			t.Errorf("table2 engine %s -strict-limits: want budget error, got %v", engine, err)
		}
	}
}

// TestTimeoutTable3CLI cancels table3 with an already-expired deadline:
// every row reports LIMIT(time), the command still exits clean, and the
// stats report records the limited rows.
func TestTimeoutTable3CLI(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	obs.Default().Reset()
	defer obs.Default().Reset()
	out, err := captureStdoutErr(t, func() error {
		return dispatch(ctx, "table3", nil)
	})
	if err != nil {
		t.Fatalf("expired table3 run failed: %v", err)
	}
	if !strings.Contains(out, "LIMIT(time)") {
		t.Errorf("output missing LIMIT(time):\n%s", out)
	}
	rep := obs.Default().Snapshot("table3")
	limited := int64(0)
	for key, v := range rep.Counters {
		if strings.Contains(key, ".limit_time") {
			limited += v
		}
	}
	if limited == 0 {
		t.Errorf("stats report has no driver.*.limit_time counters: %v", rep.Counters)
	}
}

// TestStatsReportTable2 is the acceptance check of the observability
// layer: running table2 twice produces reports with identical counter
// and gauge values (times may differ), containing per-TM exploration
// counts, spec enumeration size and time, inclusion pairs visited, and
// the phase wall-clock breakdown. It pins the materialized pipeline,
// whose counters come from the build-then-check stages; the default
// on-the-fly engine is covered by TestStatsReportTable2OnTheFly.
func TestStatsReportTable2(t *testing.T) {
	run := func() obs.Report {
		obs.Default().Reset()
		captureStdout(t, func() error { return dispatch(bgCtx, "table2", []string{"-engine", "materialized"}) })
		return obs.Default().Snapshot("table2")
	}
	rep := run()
	rep2 := run()
	defer obs.Default().Reset()

	if !reflect.DeepEqual(rep.Counters, rep2.Counters) {
		t.Errorf("counters differ between identical runs:\n%v\n%v", rep.Counters, rep2.Counters)
	}
	if !reflect.DeepEqual(rep.Gauges, rep2.Gauges) {
		t.Errorf("gauges differ between identical runs:\n%v\n%v", rep.Gauges, rep2.Gauges)
	}
	for _, key := range []string{
		"explore.seq.states", "explore.2pl.states", "explore.dstm.states",
		"explore.tl2.states", "explore.modtl2+polite.states",
		"explore.dstm.edges", "explore.dstm.eps_steps", "explore.dstm.abort_edges",
		"spec.det.ss.n2k2.states", "spec.det.op.n2k2.states",
		"safety.dstm.ss.pairs", "safety.modtl2+polite.op.pairs",
		"automata.dfa_inclusion.pairs",
	} {
		if rep.Counters[key] <= 0 {
			t.Errorf("counter %q missing or zero in report", key)
		}
	}
	// Table 2's "size" column: dstm explores 2864 states at (2,2).
	if got := rep.Counters["explore.dstm.states"]; got != 2864 {
		t.Errorf("explore.dstm.states = %d, want 2864", got)
	}
	for _, key := range []string{"spec.det.ss.n2k2.enumerate", "spec.det.op.n2k2.enumerate"} {
		if rep.Timers[key].Count != 1 {
			t.Errorf("timer %q = %+v, want one enumeration", key, rep.Timers[key])
		}
	}
	// Phase tree: table2 → safety:<system> → build-tm/build-spec/inclusion.
	if len(rep.Phases) != 1 || rep.Phases[0].Name != "table2" {
		t.Fatalf("phase roots = %+v, want single table2", rep.Phases)
	}
	var names []string
	for _, p := range rep.Phases[0].Children {
		names = append(names, p.Name)
		for _, c := range p.Children {
			names = append(names, c.Name)
		}
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"safety:seq", "safety:modtl2+polite", "build-tm", "build-spec:ss", "inclusion:dstm:op"} {
		if !strings.Contains(joined, want) {
			t.Errorf("phase tree missing %q: %v", want, names)
		}
	}
}

// TestStatsReportTable2OnTheFly checks the vitals of the default
// engine: table2 records per-system on-the-fly counters, and the spec
// states the lazy product constructs never exceed the full enumeration
// (strictly fewer for the restrictive TMs).
func TestStatsReportTable2OnTheFly(t *testing.T) {
	obs.Default().Reset()
	defer obs.Default().Reset()
	captureStdout(t, func() error { return dispatch(bgCtx, "table2", nil) })
	rep := obs.Default().Snapshot("table2")

	for _, key := range []string{
		"safety.seq.ss.otf.product_pairs", "safety.dstm.op.otf.product_pairs",
		"safety.modtl2+polite.ss.otf.product_pairs",
	} {
		if rep.Counters[key] <= 0 {
			t.Errorf("counter %q missing or zero in report", key)
		}
	}
	// The lazy spec never grows past the full enumeration (5614 ss /
	// 2208 op states at (2,2)), and the restrictive seq TM constructs
	// far fewer.
	full := map[string]int64{"ss": 5614, "op": 2208}
	for _, sys := range []string{"seq", "2pl", "dstm", "tl2", "modtl2+polite"} {
		for prop, limit := range full {
			key := "safety." + sys + "." + prop + ".otf.spec_states"
			got, ok := rep.Gauges[key]
			if !ok {
				t.Errorf("gauge %q missing in report", key)
				continue
			}
			if got > limit {
				t.Errorf("%s exceeds the full spec: %d > %d", key, got, limit)
			}
		}
	}
	if got := rep.Gauges["safety.seq.ss.otf.spec_states"]; got >= 100 {
		t.Errorf("seq constructed %d ss spec states, expected a small fraction of 5614", got)
	}
	// The failing modtl2+polite checks record their early-exit depth.
	if got := rep.Gauges["safety.modtl2+polite.ss.otf.early_exit_depth"]; got <= 0 {
		t.Errorf("early_exit_depth missing for modtl2+polite ss, gauges: %v", rep.Gauges)
	}
}

// TestStatsReportLiveness threads the -stats machinery through the
// liveness path, matching the safety pipeline: the materialized engine
// records build-tm and per-check phases plus per-property vitals; the
// on-the-fly engine records its probe counters under the .otf keys.
func TestStatsReportLiveness(t *testing.T) {
	obs.Default().Reset()
	defer obs.Default().Reset()
	captureStdout(t, func() error {
		return dispatch(bgCtx, "liveness", []string{"-tm", "dstm", "-cm", "aggressive", "-engine", "materialized"})
	})
	rep := obs.Default().Snapshot("liveness")
	for _, key := range []string{
		"liveness.dstm+aggressive.obstruction.checks",
		"liveness.dstm+aggressive.livelock.checks",
		"liveness.dstm+aggressive.wait.checks",
		"liveness.dstm+aggressive.obstruction.probes",
	} {
		if rep.Counters[key] <= 0 {
			t.Errorf("counter %q missing or zero in materialized report", key)
		}
	}
	if rep.Gauges["liveness.dstm+aggressive.obstruction.tm_states"] != 192 {
		t.Errorf("tm_states gauge = %d, want 192", rep.Gauges["liveness.dstm+aggressive.obstruction.tm_states"])
	}
	if len(rep.Phases) != 1 || rep.Phases[0].Name != "liveness" {
		t.Fatalf("phase roots = %+v, want single liveness", rep.Phases)
	}
	var names []string
	for _, p := range rep.Phases[0].Children {
		names = append(names, p.Name)
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"build-tm", "check:obstruction", "check:livelock", "check:wait"} {
		if !strings.Contains(joined, want) {
			t.Errorf("materialized phase tree missing %q: %v", want, names)
		}
	}

	obs.Default().Reset()
	captureStdout(t, func() error {
		return dispatch(bgCtx, "liveness", []string{"-tm", "dstm", "-cm", "aggressive"})
	})
	rep = obs.Default().Snapshot("liveness")
	for _, key := range []string{
		"liveness.dstm+aggressive.obstruction.otf.checks",
		"liveness.dstm+aggressive.obstruction.otf.probes",
		"liveness.dstm+aggressive.livelock.otf.probes",
	} {
		if rep.Counters[key] <= 0 {
			t.Errorf("counter %q missing or zero in on-the-fly report", key)
		}
	}
	// Livelock freedom fails early: strictly fewer states expanded than
	// the 192-state fixpoint the HOLDS verdict needs.
	lk := rep.Gauges["liveness.dstm+aggressive.livelock.otf.expanded"]
	ob := rep.Gauges["liveness.dstm+aggressive.obstruction.otf.expanded"]
	if lk <= 0 || ob != 192 || lk >= ob {
		t.Errorf("otf expanded gauges: livelock %d, obstruction %d (want 0 < livelock < 192 = obstruction)", lk, ob)
	}
}

func TestStatsOutputsWritten(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "report.json")
	memPath := filepath.Join(dir, "mem.prof")
	cpuPath := filepath.Join(dir, "cpu.prof")
	g := job.Flags{StatsJSON: jsonPath, MemProfile: memPath, CPUProfile: cpuPath}
	if err := g.Begin("table1"); err != nil {
		t.Fatal(err)
	}
	obs.Default().Reset()
	captureStdout(t, func() error { return dispatch(bgCtx, "table1", nil) })
	if err := g.Finish("table1"); err != nil {
		t.Fatal(err)
	}
	defer obs.Default().Reset()

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("stats JSON does not parse: %v", err)
	}
	if rep.Schema != obs.Schema || rep.Command != "table1" {
		t.Errorf("report header = %q/%q, want %q/table1", rep.Schema, rep.Command, obs.Schema)
	}
	for _, p := range []string{memPath, cpuPath} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err %v)", p, err)
		}
	}
}

func TestUnknownAlgorithmErrors(t *testing.T) {
	if err := runSafety(bgCtx, []string{"-tm", "nope"}); err == nil {
		t.Error("unknown TM should error")
	}
	if err := runLiveness(bgCtx, []string{"-cm", "nope"}); err == nil {
		t.Error("unknown manager should error")
	}
}
