// Command tmcheck is the model checker for transactional memories: it
// regenerates every table and figure of Guerraoui, Henzinger and Singh,
// "Model Checking Transactional Memories", and checks user-selected TMs
// and words against the safety and liveness specifications.
//
// Usage:
//
//	tmcheck table1                 reproduce Table 1 (runs and words)
//	tmcheck table2 [-n 2 -k 2] [-engine onthefly|materialized]
//	                               reproduce Table 2 (safety verdicts)
//	tmcheck table3 [-n 2 -k 1] [-engine onthefly|materialized]
//	                               reproduce Table 3 (liveness verdicts)
//	tmcheck specs  [-n 2 -k 2]     specification sizes and Theorem 3
//	tmcheck figures                analyze the Figure 1 and 2 words
//	tmcheck safety -tm NAME [-cm NAME] [-prop ss|op] [-n 2 -k 2]
//	               [-engine onthefly|materialized]
//	tmcheck liveness -tm NAME [-cm NAME] [-n 2 -k 1]
//	               [-engine onthefly|materialized]
//	tmcheck word -w "(r,1)1, c1" [-n N -k K]
//	tmcheck all                    everything above with defaults
//
// Every command additionally accepts the global flags -workers N,
// -maxstates N, -timeout D, -maxmem BYTES, -strict-limits, -stats,
// -stats-json FILE, -cpuprofile FILE, -memprofile FILE, -progress,
// -trace FILE, -debug-addr ADDR, -remote ADDR, -checkpoint FILE,
// -resume FILE and -spill DIR (see internal/job/flags.go), e.g.:
//
//	tmcheck table2 -stats-json report.json
//	tmcheck -workers 4 table2
//	tmcheck -maxstates 100000 safety -tm tl2 -n 2 -k 3
//	tmcheck table3 -n 3 -k 2 -timeout 5s
//	tmcheck -progress -trace table2.trace.json table2
//	tmcheck -debug-addr localhost:7077 table3 -n 3 -k 2
//	tmcheck -remote 127.0.0.1:7078 table2
//
// -progress streams a throttled live status line to stderr; -trace
// writes a Chrome trace-event timeline (open in Perfetto); -debug-addr
// serves /vitals, an /events SSE stream, and /debug/pprof while the
// command runs. All three feed off the same in-process event bus,
// which stays disabled — at zero cost — when none of them is set.
//
// -workers sets the worker count of the parallel engines (state-space
// exploration, specification enumeration, table-row fan-out); it
// defaults to GOMAXPROCS, and -workers 1 restores the exact sequential
// behavior. Results are bit-identical for every worker count.
//
// -maxstates bounds the total number of states any check constructs
// (TM states + spec states + product pairs); a check that would exceed
// the budget aborts with a budget error instead of exhausting memory.
// The budget is genuinely global: safety, liveness, table2, table3 and
// all honor it in both engines. -timeout and -maxmem bound wall-clock
// and heap the same way, and Ctrl-C (SIGINT/SIGTERM) cancels in-flight
// checks at the same polling points, so a stopped check reports the
// states it reached deterministically.
//
// The table drivers (table2, table3, all) keep going when a row hits a
// limit: the stopped cell renders as LIMIT(states|time|mem|cancelled|
// panic), the remaining rows still run, and the command exits 0 unless
// -strict-limits is set.
// Safety checks default to the on-the-fly engine, which interleaves TM
// exploration with specification stepping and constructs only the spec
// states the product reaches; -engine=materialized restores the classic
// build-then-check pipeline. Liveness checks likewise default to an
// on-the-fly engine that probes the growing exploration prefix for
// violating lassos and stops at the first violation; verdicts and loop
// words are bit-identical to the materialized engine at every -workers
// count.
//
// -remote ADDR submits the verification commands (table2, table3,
// safety, liveness) to a running tmcheckd (cmd/tmcheckd) instead of
// checking in-process: the job spec — including the budget flags —
// travels over the wire protocol, progress frames stream back into the
// local -progress display, and the rendered output is identical to a
// local run up to wall-clock timings. Ctrl-C cancels the remote job at
// the same deterministic barriers as -maxstates and still collects the
// partial result.
//
// -checkpoint FILE makes a materialized-engine run append the interned
// state-space prefix to FILE at every guard barrier, so the work done
// before a SIGKILL, -timeout expiry or blown -maxstates budget is not
// thrown away; -resume FILE (usually the same path) seeds the next run
// from the snapshot, and the resumed run's stdout is byte-identical to
// an uninterrupted one at any -workers count. -spill DIR keeps the
// visited set's key storage in mmap-backed files under DIR, letting
// state spaces larger than RAM stay checkable. All three travel with
// -remote (the daemon maps them into its -snap-dir).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tmcheck/internal/automata"
	"tmcheck/internal/core"
	"tmcheck/internal/explore"
	"tmcheck/internal/guard"
	"tmcheck/internal/job"
	"tmcheck/internal/obs"
	"tmcheck/internal/parbfs"
	"tmcheck/internal/runtime"
	"tmcheck/internal/safety"
	"tmcheck/internal/space"
	"tmcheck/internal/spec"
	"tmcheck/internal/tm"
	"tmcheck/internal/wire"
)

// gflags holds the parsed global flags; strictLimits mirrors its
// StrictLimits field as a package var so tests can flip it directly.
var (
	gflags       job.Flags
	strictLimits bool
)

// buildBudgeted materializes one system at the process-wide worker
// count under ctx plus the process-wide -maxstates/-maxmem limits, so
// every subcommand that builds a full transition system is guarded the
// same way.
func buildBudgeted(ctx context.Context, alg tm.Algorithm, cm tm.ContentionManager) (*explore.TS, error) {
	return explore.BuildGuarded(alg, cm, parbfs.Workers(), guard.Process(ctx, space.MaxStates()))
}

// limitSummary finishes a keep-going table run: limited checks get a
// one-line stderr summary, and -strict-limits turns them into a command
// error (nonzero exit) that still wraps the first typed limit.
func limitSummary(limits []*guard.LimitError) error {
	if len(limits) == 0 {
		return nil
	}
	fmt.Fprintf(os.Stderr, "tmcheck: %d check(s) hit resource limits; first: %v\n", len(limits), limits[0])
	if strictLimits {
		return fmt.Errorf("%d check(s) hit resource limits: %w", len(limits), limits[0])
	}
	return nil
}

// runJob routes one verification job: locally through job.Run, or to
// the tmcheckd named by -remote. Both paths render the same Result the
// same way, so the output bytes match up to wall-clock timings.
func runJob(ctx context.Context, sp job.Spec) error {
	sp.Checkpoint = gflags.Checkpoint
	sp.Resume = gflags.Resume
	sp.Spill = gflags.Spill
	var res *job.Result
	var err error
	if gflags.Remote != "" {
		res, err = runRemote(ctx, sp)
	} else {
		var cfg job.Config
		if cfg, err = gflags.JobConfig(); err == nil {
			res, err = job.RunConfig(ctx, sp, cfg)
		}
	}
	if err != nil {
		return err
	}
	// The note goes to stderr: stdout stays byte-identical to an
	// uninterrupted run, which the resume-equivalence tests pin.
	if n := res.Resumed(); n > 0 {
		fmt.Fprintf(os.Stderr, "tmcheck: resumed from %d states (snapshot %s)\n", n, sp.Resume)
	}
	res.Render(os.Stdout)
	return limitSummary(res.Limits())
}

// runRemote submits sp to the daemon at -remote through the
// self-healing retry loop: a lost connection (or a silent server
// tripping -heartbeat-timeout) reconnects with capped exponential
// backoff up to -retries attempts, and with -checkpoint set the
// resubmission resumes from the snapshot the daemon already persisted.
// The budget flags ride in the spec (the local Install is irrelevant
// remotely), and streamed progress frames are re-emitted onto the
// local bus so -progress and -trace work unchanged.
func runRemote(ctx context.Context, sp job.Spec) (*job.Result, error) {
	sp.Workers = gflags.Workers
	sp.MaxStates = gflags.MaxStates
	sp.Timeout = gflags.Timeout
	sp.MaxMem = gflags.MaxMem
	var onProgress func(wire.Progress)
	if obs.EventsEnabled() {
		onProgress = func(p wire.Progress) {
			obs.Emit(obs.Event{
				Kind:      obs.EvProgress,
				Name:      p.Name,
				Level:     p.Level,
				States:    p.States,
				Frontier:  p.Frontier,
				HeapBytes: p.HeapBytes,
				Detail:    p.Detail,
			})
		}
	}
	res, err := wire.RunRetry(ctx, gflags.Remote, sp, wire.RetryConfig{
		Attempts:         gflags.Retries,
		HeartbeatTimeout: gflags.HeartbeatTimeout,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "tmcheck: "+format+"\n", args...)
		},
	}, onProgress)
	if err != nil {
		return nil, fmt.Errorf("remote %s: %w", gflags.Remote, err)
	}
	if res == nil {
		return nil, fmt.Errorf("remote %s: empty result", gflags.Remote)
	}
	return res, nil
}

func main() {
	g, rest, gerr := job.Extract(os.Args[1:])
	if gerr != nil {
		fmt.Fprintln(os.Stderr, "tmcheck:", gerr)
		os.Exit(2)
	}
	gflags = g
	strictLimits = g.StrictLimits
	if len(rest) < 1 {
		usage()
		os.Exit(2)
	}
	cmd, args := rest[0], rest[1:]
	gflags.Install()
	if err := gflags.Begin(cmd); err != nil {
		fmt.Fprintln(os.Stderr, "tmcheck:", err)
		os.Exit(1)
	}
	// Ctrl-C and SIGTERM cancel every in-flight check at its next guard
	// poll; -timeout turns into a deadline on the same context.
	ctx, stop := gflags.SignalContext(context.Background())
	defer stop()
	err := dispatch(ctx, cmd, args)
	if ferr := gflags.Finish(cmd); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmcheck:", err)
		os.Exit(1)
	}
}

// dispatch runs one subcommand inside a top-level obs phase named
// after it, so every report's phase tree is rooted at the command.
func dispatch(ctx context.Context, cmd string, args []string) error {
	if gflags.Remote != "" {
		switch cmd {
		case "table2", "table3", "safety", "liveness":
		default:
			return fmt.Errorf("-remote supports table2, table3, safety and liveness; %q only runs locally", cmd)
		}
	}
	done := obs.Phase(cmd)
	defer done()
	var err error
	switch cmd {
	case "table1":
		err = runTable1(ctx, args)
	case "table2":
		err = runTable2(ctx, args)
	case "table3":
		err = runTable3(ctx, args)
	case "specs":
		err = runSpecs(args)
	case "figures":
		err = runFigures(args)
	case "safety":
		err = runSafety(ctx, args)
	case "liveness":
		err = runLiveness(ctx, args)
	case "word":
		err = runWord(args)
	case "count":
		err = runCount(ctx, args)
	case "dot":
		err = runDot(ctx, args)
	case "trace":
		err = runTrace(args)
	case "methodology":
		err = runMethodology(args)
	case "chaos-soak":
		// Hidden: the deterministic fault-injection soak the CI chaos
		// smoke runs (see internal/soak).
		err = runChaosSoak(ctx, args)
	case "all":
		err = runAll(ctx)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "tmcheck: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	return err
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: tmcheck <command> [flags]

commands:
  table1     reproduce the paper's Table 1 (example runs and words)
  table2     reproduce Table 2 (safety language inclusion)
  table3     reproduce Table 3 (liveness model checking)
  specs      specification sizes and nondet/det equivalence (Theorem 3)
  figures    analyze the Figure 1 and Figure 2 example words
  safety     check one TM against a safety property
  liveness   check one TM (with a manager) against liveness properties
  word       classify a word under both safety properties
  count      count safe words and TM words per length (permissiveness)
  dot        dump a TM transition system in Graphviz DOT format
  trace      run an executable STM workload and check its recorded trace
  methodology  run the full reduction methodology on one TM
  all        run table1, table2, table3, specs and figures

global flags (any command, before or after it):
  -workers N        parallel-engine workers (default GOMAXPROCS; 1 = sequential)
  -maxstates N      abort any check constructing more than N states
  -timeout D        cancel outstanding checks after D (e.g. 30s, 5m)
  -maxmem BYTES     stop checks when the Go heap exceeds BYTES (e.g. 512m, 2g)
  -strict-limits    exit nonzero when any table row hits a resource limit
  -stats            print the instrumentation report to stderr
  -stats-json FILE  write the machine-readable report to FILE ("-" = stdout)
  -cpuprofile FILE  write a pprof CPU profile
  -memprofile FILE  write a pprof heap profile
  -progress         stream live status (level, states, states/sec, heap) to stderr
  -trace FILE       write a Chrome trace-event timeline (Perfetto-loadable)
  -debug-addr ADDR  serve /vitals, /events (SSE) and /debug/pprof on ADDR
  -remote ADDR      submit table2/table3/safety/liveness to a tmcheckd at ADDR
  -checkpoint FILE  append the explored prefix to FILE at every guard barrier
                    so killed or limited runs can resume (-engine materialized)
  -resume FILE      seed the run from a snapshot (usually the -checkpoint path)
  -spill DIR        keep visited-set keys in mmap-backed files under DIR
  -snap-sync MODE   checkpoint fsync policy: always (default), batch[:N], none
  -strict-persist   fail on snapshot/spill I/O errors instead of degrading
  -retries N        with -remote: connection attempts before giving up (default 5)
  -heartbeat-timeout D  with -remote: declare a silent server dead after D
                    while a job is in flight (default 30s; 0 disables)
  -chaos-seed N     inject a deterministic fault plan (testing; 0 = off)

`)
	fmt.Fprintf(os.Stderr, "algorithms: %s\n", strings.Join(tm.AlgorithmNames(), ", "))
	fmt.Fprintf(os.Stderr, "managers:   %s\n", strings.Join(tm.ManagerNames(), ", "))
}

func runTable1(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("table1", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Println("Table 1: example runs and emitted words")
	fmt.Printf("%-14s %-58s %s\n", "TM/schedule", "run", "word")
	for _, sc := range explore.Table1Scenarios {
		ts, err := buildBudgeted(ctx, sc.Alg(), nil)
		if err != nil {
			return err
		}
		run := ts.RunProgram(sc.Schedule, sc.Programs)
		fmt.Printf("%-14s %-58s %s\n", sc.Name, explore.FormatRun(run), ts.WordOf(run))
	}
	return nil
}

func runTable2(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("table2", flag.ContinueOnError)
	n := fs.Int("n", 2, "threads")
	k := fs.Int("k", 2, "variables")
	ext := fs.Bool("ext", false, "include the extension TMs (norec, etl) and broken variants")
	engineName := fs.String("engine", "onthefly", "safety engine: onthefly or materialized")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return runJob(ctx, job.Spec{
		Kind:    job.KindTable2,
		Engine:  *engineName,
		Threads: *n,
		Vars:    *k,
		Ext:     *ext,
	})
}

func runTable3(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("table3", flag.ContinueOnError)
	n := fs.Int("n", 2, "threads")
	k := fs.Int("k", 1, "variables")
	engineName := fs.String("engine", "onthefly", "liveness engine: onthefly or materialized")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return runJob(ctx, job.Spec{
		Kind:    job.KindTable3,
		Engine:  *engineName,
		Threads: *n,
		Vars:    *k,
	})
}

func runSafety(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("safety", flag.ContinueOnError)
	tmName := fs.String("tm", "dstm", "TM algorithm")
	cmName := fs.String("cm", "", "contention manager (optional)")
	propName := fs.String("prop", "op", "property: ss or op")
	engineName := fs.String("engine", "onthefly", "safety engine: onthefly or materialized")
	n := fs.Int("n", 2, "threads")
	k := fs.Int("k", 2, "variables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return runJob(ctx, job.Spec{
		Kind:    job.KindSafety,
		TM:      *tmName,
		CM:      *cmName,
		Prop:    *propName,
		Engine:  *engineName,
		Threads: *n,
		Vars:    *k,
	})
}

func runLiveness(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("liveness", flag.ContinueOnError)
	tmName := fs.String("tm", "dstm", "TM algorithm")
	cmName := fs.String("cm", "aggressive", "contention manager (optional)")
	engineName := fs.String("engine", "onthefly", "liveness engine: onthefly or materialized")
	n := fs.Int("n", 2, "threads")
	k := fs.Int("k", 1, "variables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return runJob(ctx, job.Spec{
		Kind:    job.KindLiveness,
		TM:      *tmName,
		CM:      *cmName,
		Engine:  *engineName,
		Threads: *n,
		Vars:    *k,
	})
}

func runSpecs(args []string) error {
	fs := flag.NewFlagSet("specs", flag.ContinueOnError)
	n := fs.Int("n", 2, "threads")
	k := fs.Int("k", 2, "variables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Printf("TM specifications for %d threads and %d variables (§5.3)\n", *n, *k)
	for _, prop := range []spec.Property{spec.StrictSerializability, spec.Opacity} {
		nd := spec.NewNondet(prop, *n, *k).Enumerate()
		dt := spec.NewDet(prop, *n, *k).Enumerate()
		min := dt.Minimize()
		fmt.Printf("%-24s nondet %6d states, det %6d states, minimal %6d states\n",
			prop.String()+":", nd.NumStates(), dt.NumStates(), min.NumStates())
		start := time.Now()
		equal, fwd, cex := automata.EquivalentNFADFA(nd, dt)
		elapsed := time.Since(start)
		if equal {
			fmt.Printf("%-24s L(nondet) = L(det) verified by antichain in %v (Theorem 3)\n",
				"", elapsed.Round(time.Millisecond))
		} else {
			side := "nondet \\ det"
			if !fwd {
				side = "det \\ nondet"
			}
			ab := core.Alphabet{Threads: *n, Vars: *k}
			fmt.Printf("%-24s EQUIVALENCE FAILS (%s): %s\n", "", side, ab.DecodeWord(cex))
		}
	}
	return nil
}

func runFigures(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cases := []struct {
		name string
		word string
	}{
		{"Figure 1(a)", "(w,1)2, (r,1)1, (r,2)3, c2, (w,2)1, (r,1)3, c1, c3"},
		{"Figure 1(b)", "(w,1)2, (r,2)2, (r,3)3, (r,1)1, c2, (w,2)3, (w,3)1, c1, c3"},
		{"Figure 2(a)", "(w,1)2, (r,1)1, (r,2)3, c2, (w,2)1, (r,1)3, c1"},
		{"Figure 2(b)", "(w,1)2, (r,1)1, c2, (r,2)3, a3, (w,2)1, c1"},
		{"Table 2 w1", "(w,2)1, (w,1)2, (r,2)2, (r,1)1, c2, c1"},
	}
	fmt.Println("Safety classification of the paper's example words")
	fmt.Printf("%-12s %-62s %-8s %s\n", "figure", "word", "strict", "opaque")
	for _, c := range cases {
		w := core.MustParseWord(c.word)
		fmt.Printf("%-12s %-62s %-8v %v\n", c.name, c.word,
			core.IsStrictlySerializable(w), core.IsOpaque(w))
	}
	return nil
}

func runWord(args []string) error {
	fs := flag.NewFlagSet("word", flag.ContinueOnError)
	in := fs.String("w", "", "word in the paper's notation, e.g. \"(r,1)1, c1\"")
	semName := fs.String("sem", "deferred", "conflict semantics: deferred, direct, or mixed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("word: missing -w")
	}
	w, err := core.ParseWord(*in)
	if err != nil {
		return fmt.Errorf("word: %w", err)
	}
	var sem core.Semantics
	switch *semName {
	case "deferred":
		sem = core.DeferredUpdate
	case "direct":
		sem = core.DirectUpdate
	case "mixed":
		sem = core.MixedInvalidation
	default:
		return fmt.Errorf("word: unknown semantics %q (deferred, direct, mixed)", *semName)
	}
	fmt.Printf("word:                   %s\n", w)
	fmt.Printf("semantics:              %v\n", sem)
	fmt.Printf("threads:                %d, variables: %d\n", len(w.Threads()), len(w.Vars()))
	fmt.Printf("sequential:             %v\n", core.IsSequential(w))
	fmt.Printf("strictly serializable:  %v\n", core.IsStrictlySerializableUnder(w, sem))
	fmt.Printf("opaque:                 %v\n", core.IsOpaqueUnder(w, sem))
	if seq, ok := core.Sequentialize(w, true, sem); ok {
		fmt.Printf("witness serialization:  %s\n", seq)
	} else if g := core.BuildConflictGraphUnder(w, sem); !g.Acyclic() {
		cyc := g.Cycle()
		names := make([]string, len(cyc))
		for i, ti := range cyc {
			x := g.Txs[ti]
			names[i] = fmt.Sprintf("T%d.%d", x.Thread+1, x.Seq+1)
		}
		fmt.Printf("conflict cycle:         %s\n", strings.Join(names, " < "))
	}
	return nil
}

func runAll(ctx context.Context) error {
	if err := runTable1(ctx, nil); err != nil {
		return err
	}
	fmt.Println()
	if err := runTable2(ctx, nil); err != nil {
		return err
	}
	fmt.Println()
	if err := runTable3(ctx, nil); err != nil {
		return err
	}
	fmt.Println()
	if err := runSpecs(nil); err != nil {
		return err
	}
	fmt.Println()
	return runFigures(nil)
}

func runCount(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("count", flag.ContinueOnError)
	n := fs.Int("n", 2, "threads")
	k := fs.Int("k", 2, "variables")
	maxLen := fs.Int("len", 8, "maximum word length")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ssCounts := automata.CountWords(spec.NewDet(spec.StrictSerializability, *n, *k).Enumerate(), *maxLen)
	opCounts := automata.CountWords(spec.NewDet(spec.Opacity, *n, *k).Enumerate(), *maxLen)

	type row struct {
		name   string
		counts []uint64
		exact  bool
	}
	rows := []row{
		{"πss (all strictly serializable words)", ssCounts, true},
		{"πop (all opaque words)", opCounts, true},
	}
	for _, name := range []string{"seq", "2pl", "dstm", "tl2"} {
		alg, err := tm.NewAlgorithm(name, *n, *k)
		if err != nil {
			return err
		}
		ts, err := buildBudgeted(ctx, alg, nil)
		if err != nil {
			return err
		}
		counts, ok := automata.CountWordsNFA(ts.NFA(), *maxLen, 500000)
		rows = append(rows, row{"L(" + name + ")", counts, ok})
	}
	fmt.Printf("Words per length over %d threads, %d variables (permissiveness)\n", *n, *k)
	fmt.Printf("%-40s", "language")
	for l := 0; l <= *maxLen; l++ {
		fmt.Printf(" %9d", l)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-40s", r.name)
		if !r.exact {
			fmt.Println(" (subset construction exceeded bound)")
			continue
		}
		for l := 0; l <= *maxLen; l++ {
			fmt.Printf(" %9d", r.counts[l])
		}
		fmt.Println()
	}
	fmt.Println("\nEvery TM language stays below the corresponding safe-word count;")
	fmt.Println("the gap measures how much concurrency the TM forgoes for safety.")
	return nil
}

func runDot(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("dot", flag.ContinueOnError)
	tmName := fs.String("tm", "seq", "TM algorithm")
	cmName := fs.String("cm", "", "contention manager (optional)")
	n := fs.Int("n", 2, "threads")
	k := fs.Int("k", 1, "variables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	alg, err := tm.NewAlgorithm(*tmName, *n, *k)
	if err != nil {
		return err
	}
	cm, err := tm.NewContentionManager(*cmName)
	if err != nil {
		return err
	}
	ts, err := buildBudgeted(ctx, alg, cm)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: %d states, %d edges\n", ts.Name(), ts.NumStates(), ts.NumEdges())
	return ts.WriteDOT(os.Stdout)
}

func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	stmName := fs.String("stm", "tl2", "executable STM: tl2, dstm, norec, 2pl, or glock")
	k := fs.Int("k", 3, "variables")
	threads := fs.Int("threads", 3, "goroutines")
	count := fs.Int("count", 20, "transfers per goroutine")
	seed := fs.Int64("seed", 1, "workload seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rec := &runtime.Recorder{}
	var stm runtime.STM
	switch *stmName {
	case "tl2":
		stm = runtime.NewTL2STM(*k, rec)
	case "dstm":
		stm = runtime.NewDSTMSTM(*k, rec)
	case "norec":
		stm = runtime.NewNOrecSTM(*k, rec)
	case "2pl":
		stm = runtime.NewTwoPLSTM(*k, rec)
	case "glock":
		stm = runtime.NewGLockSTM(*k, rec)
	default:
		return fmt.Errorf("trace: unknown STM %q (tl2, dstm, norec, 2pl, glock)", *stmName)
	}
	const initial = 100
	sum := runtime.RunTransfers(stm, *k, *threads, *count, 10, *seed, initial)
	trace := rec.Word()
	fmt.Printf("system:    %s (%d goroutines, %d vars, %d transfers each)\n",
		stm.Name(), *threads, *k, *count)
	fmt.Printf("invariant: sum = %d, want %d\n", sum, *k*initial)
	fmt.Printf("trace:     %d statements\n", len(trace))
	fmt.Printf("oracle:    opaque = %v\n", core.IsOpaque(trace))
	mon := spec.NewMonitor(spec.Opacity, *threads, *k)
	if mon.Feed(trace) {
		fmt.Println("monitor:   opaque = true")
	} else {
		s, pos, _ := mon.Violation()
		fmt.Printf("monitor:   VIOLATION at statement %d: %v\n", pos+1, s)
	}
	return nil
}

func runMethodology(args []string) error {
	fs := flag.NewFlagSet("methodology", flag.ContinueOnError)
	tmName := fs.String("tm", "dstm", "TM algorithm")
	seed := fs.Int64("seed", 1, "sampler seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	name := *tmName
	factory := func(n, k int) tm.Algorithm {
		alg, err := tm.NewAlgorithm(name, n, k)
		if err != nil {
			panic(err)
		}
		return alg
	}
	if _, err := tm.NewAlgorithm(name, 2, 2); err != nil {
		return err
	}
	rep := safety.VerifyViaReduction(name, factory, *seed)
	fmt.Print(rep)
	return nil
}
