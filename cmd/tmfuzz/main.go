// Command tmfuzz continuously cross-validates the TM specifications
// against the semantic oracles on randomized and directed words, printing
// throughput and stopping on the first disagreement (or after -n words).
// It is the standalone version of the fuzz used throughout the test suite
// — run it longer when touching the specification code:
//
//	go run ./cmd/tmfuzz -threads 3 -vars 3 -n 1000000
//	go run ./cmd/tmfuzz -directed -seed 7
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"tmcheck/internal/core"
	"tmcheck/internal/spec"
	"tmcheck/internal/wordgen"
)

func main() {
	threads := flag.Int("threads", 3, "threads")
	vars := flag.Int("vars", 2, "variables")
	maxLen := flag.Int("len", 12, "maximum word length")
	count := flag.Int("n", 200000, "words to check (0 = run forever)")
	seed := flag.Int64("seed", time.Now().UnixNano(), "random seed")
	directed := flag.Bool("directed", false, "use directed generators only")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	cfg := wordgen.Config{Threads: *threads, Vars: *vars, Len: *maxLen}
	ndSS := spec.NewNondet(spec.StrictSerializability, *threads, *vars)
	ndOP := spec.NewNondet(spec.Opacity, *threads, *vars)
	dtSS := spec.NewDet(spec.StrictSerializability, *threads, *vars)
	dtOP := spec.NewDet(spec.Opacity, *threads, *vars)

	fmt.Printf("fuzzing specs vs oracles at (%d threads, %d vars), seed %d\n",
		*threads, *vars, *seed)
	start := time.Now()
	checked := 0
	report := func() {
		rate := float64(checked) / time.Since(start).Seconds()
		fmt.Printf("  %d words checked (%.0f/s)\n", checked, rate)
	}
	for *count == 0 || checked < *count {
		var w core.Word
		switch {
		case *directed, rng.Intn(3) == 0:
			w = wordgen.Directed(rng, cfg)
		default:
			cfg.Len = 4 + rng.Intn(*maxLen-3)
			w = wordgen.WellFormed(rng, cfg)
			cfg.Len = *maxLen
		}
		if len(w.Threads()) > *threads {
			continue
		}
		wantSS := core.IsStrictlySerializable(w)
		wantOP := core.IsOpaque(w)
		fail := func(which string, got, want bool) {
			fmt.Fprintf(os.Stderr, "\nDISAGREEMENT (%s): got %v want %v\n  word: %s\n  seed: %d\n",
				which, got, want, w, *seed)
			os.Exit(1)
		}
		if got := ndSS.Accepts(w); got != wantSS {
			fail("nondet πss", got, wantSS)
		}
		if got := dtSS.Accepts(w); got != wantSS {
			fail("det πss", got, wantSS)
		}
		if got := ndOP.Accepts(w); got != wantOP {
			fail("nondet πop", got, wantOP)
		}
		if got := dtOP.Accepts(w); got != wantOP {
			fail("det πop", got, wantOP)
		}
		if wantOP && !wantSS {
			fail("oracle internal (πop ⊆ πss)", true, false)
		}
		checked++
		if checked%50000 == 0 {
			report()
		}
	}
	report()
	fmt.Println("no disagreements")
}
