// Command tmfuzz continuously cross-validates the TM specifications
// against the semantic oracles on randomized and directed words, printing
// throughput and stopping on the first disagreement (or after -n words).
// It is the standalone version of the fuzz used throughout the test suite
// — run it longer when touching the specification code:
//
//	go run ./cmd/tmfuzz -threads 3 -vars 3 -n 1000000
//	go run ./cmd/tmfuzz -directed -seed 7
//	go run ./cmd/tmfuzz -timeout 30s -maxstates 50000000
//	go run ./cmd/tmfuzz -progress -n 0
//
// The budget and telemetry flags are the shared set from
// internal/job/flags.go — -progress, -stats, -stats-json, -cpuprofile,
// -memprofile, -trace and -debug-addr behave exactly as under tmcheck
// and feed the same bus and registry.
//
// -timeout bounds the campaign's wall-clock and -maxstates the total
// number of automaton states the specification runs visit across all
// words (a cumulative campaign budget, not tmcheck's per-check knob);
// -maxmem caps the heap the same way as tmcheck. Ctrl-C, an expired
// timeout, or an exhausted budget stop the campaign gracefully after
// the current word, printing the progress report and a "campaign
// stopped" line (exit 0 — a stopped campaign found no disagreement).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"tmcheck/internal/core"
	"tmcheck/internal/guard"
	"tmcheck/internal/job"
	"tmcheck/internal/obs"
	"tmcheck/internal/spec"
	"tmcheck/internal/wordgen"
)

// fuzzProgressEvery is the telemetry-bus heartbeat: one EvProgress per
// this many checked words (the stderr line itself is time-throttled by
// the renderer).
const fuzzProgressEvery = 512

// config bounds one fuzzing session.
type config struct {
	threads   int
	vars      int
	maxLen    int
	count     int // 0 = run forever
	seed      int64
	directed  bool
	every     int           // progress-report interval in words
	maxStates int           // 0 = unbounded: total spec states visited
	maxMem    uint64        // 0 = uncapped heap
	timeout   time.Duration // 0 = no deadline
	progress  bool          // live status line on stderr
}

func main() {
	var cfg config
	gf := job.Flags{Prog: "tmfuzz"}
	flag.IntVar(&cfg.threads, "threads", 3, "threads")
	flag.IntVar(&cfg.vars, "vars", 2, "variables")
	flag.IntVar(&cfg.maxLen, "len", 12, "maximum word length")
	flag.IntVar(&cfg.count, "n", 200000, "words to check (0 = run forever)")
	flag.Int64Var(&cfg.seed, "seed", time.Now().UnixNano(), "random seed")
	flag.BoolVar(&cfg.directed, "directed", false, "use directed generators only")
	gf.Register(flag.CommandLine)
	flag.Parse()
	cfg.every = 50000
	// No Install (the budgets go into the campaign's own guard), so the
	// fault plan is installed explicitly.
	gf.InstallChaos()
	// The budgets go into the campaign's own guard, not the process-wide
	// knobs (no Install): -maxstates here is cumulative across words.
	cfg.maxStates = gf.MaxStates
	cfg.maxMem = gf.MaxMem
	cfg.timeout = gf.Timeout
	cfg.progress = gf.Progress
	if err := gf.Begin("tmfuzz"); err != nil {
		fmt.Fprintln(os.Stderr, "tmfuzz:", err)
		os.Exit(1)
	}
	ctx, stop := gf.SignalContext(context.Background())
	defer stop()
	err := fuzz(ctx, cfg, os.Stdout)
	if ferr := gf.Finish("tmfuzz"); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// fuzz runs the cross-validation loop, writing progress to out. It
// returns an error describing the first disagreement between a
// specification and the oracles, or nil after cfg.count clean words —
// or earlier when the guard (deadline, cancellation, or the cumulative
// spec-state budget) stops the campaign, which is reported on out and
// is not an error.
func fuzz(ctx context.Context, cfg config, out io.Writer) error {
	rng := rand.New(rand.NewSource(cfg.seed))
	gen := wordgen.Config{Threads: cfg.threads, Vars: cfg.vars, Len: cfg.maxLen}
	ndSS := spec.NewNondet(spec.StrictSerializability, cfg.threads, cfg.vars)
	ndOP := spec.NewNondet(spec.Opacity, cfg.threads, cfg.vars)
	dtSS := spec.NewDet(spec.StrictSerializability, cfg.threads, cfg.vars)
	dtOP := spec.NewDet(spec.Opacity, cfg.threads, cfg.vars)
	g := guard.New(ctx, cfg.maxStates, cfg.maxMem)

	fmt.Fprintf(out, "fuzzing specs vs oracles at (%d threads, %d vars), seed %d\n",
		cfg.threads, cfg.vars, cfg.seed)
	start := time.Now()
	checked := 0
	statesVisited := 0
	events := obs.EventsEnabled()
	report := func() {
		rate := float64(checked) / time.Since(start).Seconds()
		fmt.Fprintf(out, "  %d words checked (%.0f/s)\n", checked, rate)
	}
	for cfg.count == 0 || checked < cfg.count {
		if err := g.Check(statesVisited); err != nil {
			report()
			fmt.Fprintf(out, "campaign stopped: %v\n", err)
			return nil
		}
		var w core.Word
		switch {
		case cfg.directed, rng.Intn(3) == 0:
			w = wordgen.Directed(rng, gen)
		default:
			gen.Len = 4 + rng.Intn(cfg.maxLen-3)
			w = wordgen.WellFormed(rng, gen)
			gen.Len = cfg.maxLen
		}
		if len(w.Threads()) > cfg.threads {
			continue
		}
		wantSS := core.IsStrictlySerializable(w)
		wantOP := core.IsOpaque(w)
		fail := func(which string, got, want bool) error {
			return fmt.Errorf("DISAGREEMENT (%s): got %v want %v\n  word: %s\n  seed: %d",
				which, got, want, w, cfg.seed)
		}
		got, n := ndSS.AcceptsStates(w)
		statesVisited += n
		if got != wantSS {
			return fail("nondet πss", got, wantSS)
		}
		got, n = dtSS.AcceptsStates(w)
		statesVisited += n
		if got != wantSS {
			return fail("det πss", got, wantSS)
		}
		got, n = ndOP.AcceptsStates(w)
		statesVisited += n
		if got != wantOP {
			return fail("nondet πop", got, wantOP)
		}
		got, n = dtOP.AcceptsStates(w)
		statesVisited += n
		if got != wantOP {
			return fail("det πop", got, wantOP)
		}
		if wantOP && !wantSS {
			return fail("oracle internal (πop ⊆ πss)", true, false)
		}
		checked++
		if events && checked%fuzzProgressEvery == 0 {
			obs.Emit(obs.Event{
				Kind: obs.EvProgress, Name: "fuzz",
				States: int64(checked), HeapBytes: obs.SampledHeap(),
			})
		}
		if cfg.every > 0 && checked%cfg.every == 0 {
			report()
		}
	}
	report()
	fmt.Fprintln(out, "no disagreements")
	return nil
}
