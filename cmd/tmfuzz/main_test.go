package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestFuzzSmoke runs a short, fully deterministic bounded fuzz loop:
// with a fixed seed the generated words — and therefore the whole
// session — are reproducible, and on healthy specifications it must
// find no disagreement.
func TestFuzzSmoke(t *testing.T) {
	var out bytes.Buffer
	cfg := config{threads: 2, vars: 2, maxLen: 8, count: 300, seed: 1}
	if err := fuzz(cfg, &out); err != nil {
		t.Fatalf("fuzz found a disagreement: %v", err)
	}
	got := out.String()
	for _, want := range []string{"seed 1", "300 words checked", "no disagreements"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestFuzzSmokeDirected exercises the directed-generator path.
func TestFuzzSmokeDirected(t *testing.T) {
	var out bytes.Buffer
	cfg := config{threads: 3, vars: 2, maxLen: 10, count: 100, seed: 7, directed: true}
	if err := fuzz(cfg, &out); err != nil {
		t.Fatalf("fuzz found a disagreement: %v", err)
	}
	if !strings.Contains(out.String(), "no disagreements") {
		t.Errorf("output missing summary:\n%s", out.String())
	}
}

// TestFuzzDeterministic checks that two sessions with the same seed
// produce byte-identical output apart from the throughput line.
func TestFuzzDeterministic(t *testing.T) {
	run := func() string {
		var out bytes.Buffer
		if err := fuzz(config{threads: 2, vars: 2, maxLen: 8, count: 100, seed: 42}, &out); err != nil {
			t.Fatal(err)
		}
		// Drop the rate-bearing progress lines.
		var kept []string
		for _, line := range strings.Split(out.String(), "\n") {
			if !strings.Contains(line, "/s)") {
				kept = append(kept, line)
			}
		}
		return strings.Join(kept, "\n")
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced different sessions:\n%s\n---\n%s", a, b)
	}
}
