package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestFuzzSmoke runs a short, fully deterministic bounded fuzz loop:
// with a fixed seed the generated words — and therefore the whole
// session — are reproducible, and on healthy specifications it must
// find no disagreement.
func TestFuzzSmoke(t *testing.T) {
	var out bytes.Buffer
	cfg := config{threads: 2, vars: 2, maxLen: 8, count: 300, seed: 1}
	if err := fuzz(context.Background(), cfg, &out); err != nil {
		t.Fatalf("fuzz found a disagreement: %v", err)
	}
	got := out.String()
	for _, want := range []string{"seed 1", "300 words checked", "no disagreements"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestFuzzSmokeDirected exercises the directed-generator path.
func TestFuzzSmokeDirected(t *testing.T) {
	var out bytes.Buffer
	cfg := config{threads: 3, vars: 2, maxLen: 10, count: 100, seed: 7, directed: true}
	if err := fuzz(context.Background(), cfg, &out); err != nil {
		t.Fatalf("fuzz found a disagreement: %v", err)
	}
	if !strings.Contains(out.String(), "no disagreements") {
		t.Errorf("output missing summary:\n%s", out.String())
	}
}

// TestFuzzDeterministic checks that two sessions with the same seed
// produce byte-identical output apart from the throughput line.
func TestFuzzDeterministic(t *testing.T) {
	run := func() string {
		var out bytes.Buffer
		if err := fuzz(context.Background(), config{threads: 2, vars: 2, maxLen: 8, count: 100, seed: 42}, &out); err != nil {
			t.Fatal(err)
		}
		// Drop the rate-bearing progress lines.
		var kept []string
		for _, line := range strings.Split(out.String(), "\n") {
			if !strings.Contains(line, "/s)") {
				kept = append(kept, line)
			}
		}
		return strings.Join(kept, "\n")
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced different sessions:\n%s\n---\n%s", a, b)
	}
}

// TestFuzzBudgetStops drives the campaign into a tiny cumulative
// spec-state budget: it must stop gracefully — progress report, a
// "campaign stopped" line naming the budget, nil error — instead of
// running all requested words.
func TestFuzzBudgetStops(t *testing.T) {
	var out bytes.Buffer
	cfg := config{threads: 2, vars: 2, maxLen: 8, count: 100000, seed: 1, maxStates: 500}
	if err := fuzz(context.Background(), cfg, &out); err != nil {
		t.Fatalf("stopped campaign must not error: %v", err)
	}
	got := out.String()
	for _, want := range []string{"campaign stopped:", "state budget", "-maxstates"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "no disagreements") {
		t.Errorf("stopped campaign claims completion:\n%s", got)
	}
}

// TestFuzzCancelStops checks an already-cancelled context stops the
// campaign before the first word, again without an error exit.
func TestFuzzCancelStops(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	cfg := config{threads: 2, vars: 2, maxLen: 8, count: 100000, seed: 1}
	if err := fuzz(ctx, cfg, &out); err != nil {
		t.Fatalf("cancelled campaign must not error: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "campaign stopped: check cancelled") {
		t.Errorf("output missing cancellation notice:\n%s", got)
	}
	if !strings.Contains(got, "0 words checked") {
		t.Errorf("cancelled-before-start campaign checked words:\n%s", got)
	}
}
