// Command tmcheckd is the verification service: a daemon that accepts
// tmcheck job specs over the wire protocol (internal/wire), runs them
// concurrently on a bounded worker pool, streams throttled progress
// frames, and supports cancel, client disconnect, and graceful drain.
//
// Usage:
//
//	tmcheckd [-addr 127.0.0.1:7078] [-jobs N] [-workers N]
//	         [-maxstates N] [-timeout D] [-maxmem BYTES]
//	         [-progress-every D] [-heartbeat D] [-drain-timeout D]
//	         [-debug-addr ADDR] [-snap-dir DIR] [-snap-sync MODE]
//	         [-strict-persist] [-quiet]
//
// Submit jobs with tmcheck -remote:
//
//	tmcheck -remote 127.0.0.1:7078 table2
//	tmcheck -remote 127.0.0.1:7078 -maxstates 50000 safety -tm tl2
//
// -jobs bounds how many jobs run at once (default GOMAXPROCS); further
// admissions queue for a slot. -workers/-maxstates/-timeout/-maxmem
// are defaults applied to specs that leave the corresponding budget
// unset, so an operator can cap what submissions may spend; explicit
// client flags win. -debug-addr serves the same /vitals, /events (SSE)
// and /debug/pprof surfaces as tmcheck's flag, but fleet-wide and for
// the daemon's lifetime.
//
// -snap-dir opts the daemon into checkpoint/resume: a submitted spec's
// -checkpoint/-resume file names are resolved into that directory
// (base name only — clients never choose server paths) and -spill maps
// to the directory itself. Without -snap-dir such jobs are refused, so
// a daemon never writes snapshot files unless its operator said where.
// A -snap-dir daemon also keeps a crash-recovery journal (jobs.journal)
// there: jobs in flight when the daemon dies — SIGKILL included — are
// reported as orphans on the next start, naming the snapshot that holds
// each one's persisted prefix, and a client resubmitting with -resume
// re-adopts its job (tmcheck -remote does this automatically on
// reconnect). -snap-sync relaxes the per-record checkpoint fsync to
// batched or close-only, and -strict-persist turns snapshot/spill I/O
// degradation into job failure.
//
// SIGINT/SIGTERM drains gracefully: the listener closes, running jobs
// finish (or are cancelled at their next guard barrier once
// -drain-timeout expires) and deliver their results, then the process
// exits 0. Cancelling a job (client cancel, disconnect, or drain
// timeout) stops it at the same deterministic barriers as -maxstates.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tmcheck/internal/guard"
	"tmcheck/internal/jobd"
	"tmcheck/internal/obs"
	"tmcheck/internal/snap"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7078", "listen address")
	jobs := flag.Int("jobs", 0, "concurrent job slots (0 = GOMAXPROCS)")
	workers := flag.Int("workers", 0, "default per-job engine workers for specs that leave it unset")
	maxStates := flag.Int("maxstates", 0, "default per-job state budget for specs that leave it unset")
	timeout := flag.Duration("timeout", 0, "default per-job wall-clock limit for specs that leave it unset")
	maxMemStr := flag.String("maxmem", "", "default per-job heap cap (e.g. 512m) for specs that leave it unset")
	progressEvery := flag.Duration("progress-every", 250*time.Millisecond, "minimum interval between progress frames per job")
	heartbeat := flag.Duration("heartbeat", 30*time.Second, "connection heartbeat interval (0 = off)")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "how long a SIGTERM drain waits before cancelling running jobs")
	debugAddr := flag.String("debug-addr", "", "serve /vitals, /events (SSE) and /debug/pprof on this address")
	snapDir := flag.String("snap-dir", "", "directory for job checkpoint/resume snapshots and spill files (\"\" refuses such jobs)")
	snapSync := flag.String("snap-sync", "", "checkpoint fsync policy for every job: always (default), batch[:N], none")
	strictPersist := flag.Bool("strict-persist", false, "fail jobs on snapshot/spill I/O errors instead of degrading")
	quiet := flag.Bool("quiet", false, "suppress per-connection logging")
	flag.Parse()

	syncMode, syncBatch, err := snap.ParseSyncMode(*snapSync)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmcheckd: -snap-sync: %v\n", err)
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	cfg := jobd.Config{
		Jobs:          *jobs,
		Workers:       *workers,
		MaxStates:     *maxStates,
		Timeout:       *timeout,
		ProgressEvery: *progressEvery,
		Heartbeat:     *heartbeat,
		SnapDir:       *snapDir,
		SnapSync:      syncMode,
		SnapBatch:     syncBatch,
		StrictPersist: *strictPersist,
		Logf:          logf,
	}
	if *maxMemStr != "" {
		mm, err := guard.ParseBytes(*maxMemStr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tmcheckd: -maxmem: %v\n", err)
			os.Exit(2)
		}
		cfg.MaxMem = mm
	}

	srv := jobd.New(cfg)
	bound, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tmcheckd:", err)
		os.Exit(1)
	}
	logger.Printf("tmcheckd: serving on %s", bound)
	if *debugAddr != "" {
		dbg, err := obs.StartDebugServer(*debugAddr, obs.Events(), obs.Default())
		if err != nil {
			fmt.Fprintln(os.Stderr, "tmcheckd:", err)
			srv.Close()
			os.Exit(1)
		}
		defer dbg.Close()
		logger.Printf("tmcheckd: debug server on http://%s (/vitals, /events, /debug/pprof)", dbg.Addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("tmcheckd: drain cut short: %v", err)
	}
}
