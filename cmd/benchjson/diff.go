package main

// The -diff mode compares two committed trajectory files: it aligns
// benchmarks by name, prints the ns/op and allocs/op movement of each,
// and exits nonzero when any common benchmark's ns/op regressed by more
// than -regress-pct percent — the CI tripwire over the BENCH_<n>.json
// series.
//
//	benchjson -diff BENCH_2.json BENCH_3.json
//	benchjson -diff -regress-pct 25 BENCH_2.json BENCH_3.json

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// diffRow is one aligned benchmark comparison. Exactly one of the
// states holds: present in both files (the deltas are meaningful), only
// in the old file (removed), or only in the new one (added).
type diffRow struct {
	Name             string
	OldNs, NewNs     float64
	NsDeltaPct       float64
	OldAllocs        int64
	NewAllocs        int64
	OnlyOld, OnlyNew bool
	Regressed        bool
}

// loadReport reads and validates one trajectory file.
func loadReport(path string) (report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return report{}, err
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return report{}, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != benchSchema {
		return report{}, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, benchSchema)
	}
	return rep, nil
}

// diffReports aligns the two reports by benchmark name. Rows follow the
// new report's order, with removed benchmarks appended in the old
// report's order. A row regresses when it is in both reports and its
// ns/op grew by strictly more than regressPct percent.
func diffReports(oldRep, newRep report, regressPct float64) []diffRow {
	oldByName := make(map[string]entry, len(oldRep.Benchmarks))
	for _, e := range oldRep.Benchmarks {
		oldByName[e.Name] = e
	}
	seen := make(map[string]bool, len(newRep.Benchmarks))
	var rows []diffRow
	for _, ne := range newRep.Benchmarks {
		seen[ne.Name] = true
		oe, ok := oldByName[ne.Name]
		if !ok {
			rows = append(rows, diffRow{Name: ne.Name, NewNs: ne.NsPerOp, NewAllocs: ne.AllocsPerOp, OnlyNew: true})
			continue
		}
		row := diffRow{
			Name:      ne.Name,
			OldNs:     oe.NsPerOp,
			NewNs:     ne.NsPerOp,
			OldAllocs: oe.AllocsPerOp,
			NewAllocs: ne.AllocsPerOp,
		}
		if oe.NsPerOp > 0 {
			row.NsDeltaPct = (ne.NsPerOp - oe.NsPerOp) / oe.NsPerOp * 100
		}
		row.Regressed = row.NsDeltaPct > regressPct
		rows = append(rows, row)
	}
	for _, oe := range oldRep.Benchmarks {
		if !seen[oe.Name] {
			rows = append(rows, diffRow{Name: oe.Name, OldNs: oe.NsPerOp, OldAllocs: oe.AllocsPerOp, OnlyOld: true})
		}
	}
	return rows
}

// runDiff loads both files, prints the comparison table, and returns
// the exit code: 0 when no common benchmark regressed past the
// threshold, 1 otherwise.
func runDiff(w io.Writer, oldPath, newPath string, regressPct float64) (int, error) {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return 0, err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return 0, err
	}
	rows := diffReports(oldRep, newRep, regressPct)
	fmt.Fprintf(w, "benchjson diff: %s -> %s (fail above +%.1f%% ns/op)\n", oldPath, newPath, regressPct)
	fmt.Fprintf(w, "%-44s %14s %14s %8s %14s\n", "benchmark", "old ns/op", "new ns/op", "Δ%", "allocs Δ")
	regressed := 0
	for _, r := range rows {
		switch {
		case r.OnlyNew:
			fmt.Fprintf(w, "%-44s %14s %14.0f %8s %14s  (added)\n", r.Name, "-", r.NewNs, "-", "-")
		case r.OnlyOld:
			fmt.Fprintf(w, "%-44s %14.0f %14s %8s %14s  (removed)\n", r.Name, r.OldNs, "-", "-", "-")
		default:
			mark := ""
			if r.Regressed {
				mark = "  REGRESSION"
				regressed++
			}
			fmt.Fprintf(w, "%-44s %14.0f %14.0f %+7.1f%% %+14d%s\n",
				r.Name, r.OldNs, r.NewNs, r.NsDeltaPct, r.NewAllocs-r.OldAllocs, mark)
		}
	}
	if regressed > 0 {
		fmt.Fprintf(w, "%d benchmark(s) regressed more than %.1f%% ns/op\n", regressed, regressPct)
		return 1, nil
	}
	return 0, nil
}
