package main

// The -diff mode compares two committed trajectory files: it aligns
// benchmarks by name, prints the ns/op and allocs/op movement of each,
// and exits nonzero when any common benchmark's ns/op regressed by more
// than -regress-pct percent — the CI tripwire over the BENCH_<n>.json
// series.
//
//	benchjson -diff BENCH_2.json BENCH_3.json
//	benchjson -diff -regress-pct 25 BENCH_2.json BENCH_3.json

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// diffRow is one aligned benchmark comparison. Exactly one of the
// states holds: present in both files (the deltas are meaningful), only
// in the old file (removed), or only in the new one (added).
type diffRow struct {
	Name             string
	OldNs, NewNs     float64
	NsDeltaPct       float64
	OldAllocs        int64
	NewAllocs        int64
	OldBytes         int64
	NewBytes         int64
	AllocDeltaPct    float64
	OnlyOld, OnlyNew bool
	Regressed        bool
	// AllocRegressed flags allocs/op or bytes/op growth past the
	// -alloc-regress-pct threshold — the tripwire that keeps the
	// zero-allocation core from silently eroding.
	AllocRegressed bool
}

// growPct reports the percent growth from old to new and whether it
// exceeds the threshold. Growth from a zero base always regresses (the
// percentage is undefined and reported as 0); a negative threshold
// disables the check.
func growPct(old, new int64, pct float64) (float64, bool) {
	if pct < 0 {
		if old > 0 {
			return float64(new-old) / float64(old) * 100, false
		}
		return 0, false
	}
	if old <= 0 {
		return 0, new > 0
	}
	delta := float64(new-old) / float64(old) * 100
	return delta, delta > pct
}

// loadReport reads and validates one trajectory file.
func loadReport(path string) (report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return report{}, err
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return report{}, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != benchSchema {
		return report{}, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, benchSchema)
	}
	return rep, nil
}

// diffReports aligns the two reports by benchmark name and returns the
// rows sorted by name, so the table is stable regardless of the order
// either file recorded its benchmarks in — diffs of diffs stay clean.
// A row regresses when it is in both reports and its ns/op grew by
// strictly more than regressPct percent; it alloc-regresses when
// allocs/op or bytes/op grew past allocRegressPct (negative disables
// that gate).
func diffReports(oldRep, newRep report, regressPct, allocRegressPct float64) []diffRow {
	oldByName := make(map[string]entry, len(oldRep.Benchmarks))
	for _, e := range oldRep.Benchmarks {
		oldByName[e.Name] = e
	}
	seen := make(map[string]bool, len(newRep.Benchmarks))
	var rows []diffRow
	for _, ne := range newRep.Benchmarks {
		seen[ne.Name] = true
		oe, ok := oldByName[ne.Name]
		if !ok {
			rows = append(rows, diffRow{Name: ne.Name, NewNs: ne.NsPerOp, NewAllocs: ne.AllocsPerOp, OnlyNew: true})
			continue
		}
		row := diffRow{
			Name:      ne.Name,
			OldNs:     oe.NsPerOp,
			NewNs:     ne.NsPerOp,
			OldAllocs: oe.AllocsPerOp,
			NewAllocs: ne.AllocsPerOp,
			OldBytes:  oe.BytesPerOp,
			NewBytes:  ne.BytesPerOp,
		}
		if oe.NsPerOp > 0 {
			row.NsDeltaPct = (ne.NsPerOp - oe.NsPerOp) / oe.NsPerOp * 100
		}
		row.Regressed = row.NsDeltaPct > regressPct
		allocPct, allocBad := growPct(oe.AllocsPerOp, ne.AllocsPerOp, allocRegressPct)
		_, bytesBad := growPct(oe.BytesPerOp, ne.BytesPerOp, allocRegressPct)
		row.AllocDeltaPct = allocPct
		row.AllocRegressed = allocBad || bytesBad
		rows = append(rows, row)
	}
	for _, oe := range oldRep.Benchmarks {
		if !seen[oe.Name] {
			rows = append(rows, diffRow{Name: oe.Name, OldNs: oe.NsPerOp, OldAllocs: oe.AllocsPerOp, OnlyOld: true})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// runDiff loads both files, prints the comparison table, and returns
// the exit code: 0 when no common benchmark regressed past either
// threshold (ns/op, or allocs/bytes per op), 1 otherwise.
func runDiff(w io.Writer, oldPath, newPath string, regressPct, allocRegressPct float64) (int, error) {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return 0, err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return 0, err
	}
	rows := diffReports(oldRep, newRep, regressPct, allocRegressPct)
	fmt.Fprintf(w, "benchjson diff: %s -> %s (fail above +%.1f%% ns/op, +%.1f%% allocs/bytes)\n",
		oldPath, newPath, regressPct, allocRegressPct)
	fmt.Fprintf(w, "%-44s %14s %14s %8s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "Δ%", "allocs Δ", "allocΔ%")
	regressed, allocRegressed := 0, 0
	for _, r := range rows {
		switch {
		case r.OnlyNew:
			fmt.Fprintf(w, "%-44s %14s %14.0f %8s %14s %8s  (added)\n", r.Name, "-", r.NewNs, "-", "-", "-")
		case r.OnlyOld:
			fmt.Fprintf(w, "%-44s %14.0f %14s %8s %14s %8s  (removed)\n", r.Name, r.OldNs, "-", "-", "-", "-")
		default:
			mark := ""
			if r.Regressed {
				mark += "  REGRESSION"
				regressed++
			}
			if r.AllocRegressed {
				mark += "  ALLOC-REGRESSION"
				allocRegressed++
			}
			fmt.Fprintf(w, "%-44s %14.0f %14.0f %+7.1f%% %+14d %+7.1f%%%s\n",
				r.Name, r.OldNs, r.NewNs, r.NsDeltaPct, r.NewAllocs-r.OldAllocs, r.AllocDeltaPct, mark)
		}
	}
	if regressed > 0 {
		fmt.Fprintf(w, "%d benchmark(s) regressed more than %.1f%% ns/op\n", regressed, regressPct)
	}
	if allocRegressed > 0 {
		fmt.Fprintf(w, "%d benchmark(s) regressed more than %.1f%% allocs/op or bytes/op\n", allocRegressed, allocRegressPct)
	}
	if regressed > 0 || allocRegressed > 0 {
		return 1, nil
	}
	return 0, nil
}
