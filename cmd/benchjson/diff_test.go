package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func benchFile(t *testing.T, dir, name string, entries []entry) string {
	t.Helper()
	rep := report{Schema: benchSchema, Benchmarks: entries}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffReportsAlignment(t *testing.T) {
	oldRep := report{Benchmarks: []entry{
		{Name: "A", NsPerOp: 100, AllocsPerOp: 10},
		{Name: "B", NsPerOp: 200, AllocsPerOp: 20},
		{Name: "Gone", NsPerOp: 50},
	}}
	newRep := report{Benchmarks: []entry{
		{Name: "A", NsPerOp: 105, AllocsPerOp: 12}, // +5% ns: within threshold (+20% allocs: within 25)
		{Name: "B", NsPerOp: 260, AllocsPerOp: 18}, // +30%: regression
		{Name: "Fresh", NsPerOp: 70},
	}}
	rows := diffReports(oldRep, newRep, 10, 25)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	byName := map[string]diffRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if r := byName["A"]; r.Regressed || r.AllocRegressed || r.NsDeltaPct < 4.9 || r.NsDeltaPct > 5.1 || r.NewAllocs-r.OldAllocs != 2 {
		t.Errorf("row A wrong: %+v", r)
	}
	if r := byName["B"]; !r.Regressed || r.NewAllocs-r.OldAllocs != -2 {
		t.Errorf("row B should regress: %+v", r)
	}
	if r := byName["Fresh"]; !r.OnlyNew || r.Regressed {
		t.Errorf("row Fresh should be added-only: %+v", r)
	}
	if r := byName["Gone"]; !r.OnlyOld || r.Regressed {
		t.Errorf("row Gone should be removed-only: %+v", r)
	}
	// Rows come back sorted by name.
	if rows[3].Name != "Gone" {
		t.Errorf("rows out of order: %v", rows)
	}
}

// TestDiffReportsStableOrder pins the sorted output: however the input
// files ordered their benchmarks, the diff rows come back sorted by
// name, so committed diff output is reproducible across bench runs.
func TestDiffReportsStableOrder(t *testing.T) {
	oldRep := report{Benchmarks: []entry{
		{Name: "Zeta", NsPerOp: 10},
		{Name: "Mid", NsPerOp: 10},
		{Name: "Removed", NsPerOp: 10},
	}}
	newRep := report{Benchmarks: []entry{
		{Name: "Mid", NsPerOp: 10},
		{Name: "Added", NsPerOp: 10},
		{Name: "Zeta", NsPerOp: 10},
	}}
	rows := diffReports(oldRep, newRep, 10, 25)
	want := []string{"Added", "Mid", "Removed", "Zeta"}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for i, name := range want {
		if rows[i].Name != name {
			t.Errorf("rows[%d] = %q, want %q", i, rows[i].Name, name)
		}
	}
	// Shuffling the inputs changes nothing.
	oldRep.Benchmarks[0], oldRep.Benchmarks[2] = oldRep.Benchmarks[2], oldRep.Benchmarks[0]
	newRep.Benchmarks[0], newRep.Benchmarks[1] = newRep.Benchmarks[1], newRep.Benchmarks[0]
	again := diffReports(oldRep, newRep, 10, 25)
	for i := range want {
		if again[i].Name != want[i] {
			t.Errorf("shuffled input: rows[%d] = %q, want %q", i, again[i].Name, want[i])
		}
	}
}

func TestDiffRegressionThresholdBoundary(t *testing.T) {
	oldRep := report{Benchmarks: []entry{{Name: "X", NsPerOp: 100}}}
	newRep := report{Benchmarks: []entry{{Name: "X", NsPerOp: 110}}}
	// Exactly at the threshold is not a regression; strictly above is.
	if rows := diffReports(oldRep, newRep, 10, 25); rows[0].Regressed {
		t.Errorf("+10%% at threshold 10 should pass: %+v", rows[0])
	}
	if rows := diffReports(oldRep, newRep, 9.9, 25); !rows[0].Regressed {
		t.Errorf("+10%% at threshold 9.9 should fail: %+v", rows[0])
	}
}

func TestDiffAllocRegression(t *testing.T) {
	oldRep := report{Benchmarks: []entry{
		{Name: "A", NsPerOp: 100, AllocsPerOp: 100, BytesPerOp: 1000},
		{Name: "B", NsPerOp: 100, AllocsPerOp: 100, BytesPerOp: 1000},
		{Name: "Zero", NsPerOp: 100, AllocsPerOp: 0, BytesPerOp: 0},
	}}
	newRep := report{Benchmarks: []entry{
		{Name: "A", NsPerOp: 100, AllocsPerOp: 140, BytesPerOp: 1000}, // +40% allocs
		{Name: "B", NsPerOp: 100, AllocsPerOp: 100, BytesPerOp: 1300}, // +30% bytes
		{Name: "Zero", NsPerOp: 100, AllocsPerOp: 3, BytesPerOp: 48},  // growth from zero
	}}
	rows := diffReports(oldRep, newRep, 10, 25)
	byName := map[string]diffRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	for _, name := range []string{"A", "B", "Zero"} {
		if r := byName[name]; !r.AllocRegressed || r.Regressed {
			t.Errorf("row %s should alloc-regress only: %+v", name, r)
		}
	}
	if r := byName["A"]; r.AllocDeltaPct < 39.9 || r.AllocDeltaPct > 40.1 {
		t.Errorf("row A alloc delta wrong: %+v", r)
	}
	// A negative threshold disables the allocation gate entirely.
	for _, r := range diffReports(oldRep, newRep, 10, -1) {
		if r.AllocRegressed {
			t.Errorf("alloc gate disabled, row still regressed: %+v", r)
		}
	}
}

func TestRunDiffExitCodes(t *testing.T) {
	dir := t.TempDir()
	oldPath := benchFile(t, dir, "old.json", []entry{{Name: "A", NsPerOp: 100}})
	badPath := benchFile(t, dir, "bad.json", []entry{{Name: "A", NsPerOp: 200}})
	okPath := benchFile(t, dir, "ok.json", []entry{{Name: "A", NsPerOp: 101}})

	var out strings.Builder
	code, err := runDiff(&out, oldPath, badPath, 10, 25)
	if err != nil || code != 1 {
		t.Errorf("100%% regression: code %d err %v, want 1 nil", code, err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("output misses REGRESSION marker:\n%s", out.String())
	}

	out.Reset()
	code, err = runDiff(&out, oldPath, okPath, 10, 25)
	if err != nil || code != 0 {
		t.Errorf("1%% movement: code %d err %v, want 0 nil", code, err)
	}

	out.Reset()
	allocPath := benchFile(t, dir, "alloc.json", []entry{{Name: "A", NsPerOp: 100, AllocsPerOp: 7}})
	code, err = runDiff(&out, oldPath, allocPath, 10, 25)
	if err != nil || code != 1 {
		t.Errorf("alloc growth from zero: code %d err %v, want 1 nil", code, err)
	}
	if !strings.Contains(out.String(), "ALLOC-REGRESSION") {
		t.Errorf("output misses ALLOC-REGRESSION marker:\n%s", out.String())
	}

	if _, err := runDiff(&out, oldPath, filepath.Join(dir, "missing.json"), 10, 25); err == nil {
		t.Error("missing file should error")
	}

	wrongSchema := filepath.Join(dir, "wrong.json")
	if err := os.WriteFile(wrongSchema, []byte(`{"schema":"nope/v0"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runDiff(&out, oldPath, wrongSchema, 10, 25); err == nil {
		t.Error("wrong schema should error")
	}
}
