// Command benchjson records the benchmark baseline of the checker: it
// runs the key Table 2, engine-comparison and scaling benchmarks
// in-process (the same workloads as bench_test.go's BenchmarkTable2Build,
// BenchmarkTable2EndToEnd, BenchmarkEngines, BenchmarkLivenessEngines
// and BenchmarkScaling) and writes a
// BENCH_<n>.json file with ns/op per benchmark, so the perf trajectory
// across commits is committed next to the code it measures.
//
// Usage:
//
//	benchjson [-o FILE] [-workers N] [-full]
//	benchjson -diff [-regress-pct P] [-alloc-regress-pct P] OLD.json NEW.json
//
// Without -o the tool picks the next free BENCH_<n>.json in the current
// directory. -workers pins the parallel-engine worker count (default
// GOMAXPROCS); the recorded file notes the setting, along with the
// host's runtime.NumCPU() and the effective GOMAXPROCS, so baselines
// from different machines stay interpretable. -full adds the expensive
// (2,3) scaling instance.
//
// -diff compares two recorded files instead of running anything: it
// prints the per-benchmark ns/op and allocs/op movement and exits
// nonzero when any benchmark present in both regressed its ns/op by
// more than -regress-pct percent (default 10) or its allocs/op or
// bytes/op by more than -alloc-regress-pct percent (default 25;
// negative disables the allocation gate).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"tmcheck/internal/explore"
	"tmcheck/internal/liveness"
	"tmcheck/internal/parbfs"
	"tmcheck/internal/safety"
	"tmcheck/internal/spec"
	"tmcheck/internal/tm"
)

// benchSchema identifies the trajectory file layout.
const benchSchema = "tmcheck/bench/v1"

// report is the trajectory file schema ("tmcheck/bench/v1").
type report struct {
	Schema     string  `json:"schema"`
	Note       string  `json:"note,omitempty"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	NumCPU     int     `json:"num_cpu"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Workers    int     `json:"workers"`
	Benchmarks []entry `json:"benchmarks"`
}

type entry struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func main() {
	out := flag.String("o", "", "output file (default: next free BENCH_<n>.json)")
	workers := flag.Int("workers", 0, "parallel-engine workers (default GOMAXPROCS)")
	full := flag.Bool("full", false, "include the expensive (2,3) scaling instance")
	note := flag.String("note", "", "free-form annotation recorded in the file")
	diffMode := flag.Bool("diff", false, "compare two recorded files: benchjson -diff OLD.json NEW.json")
	regressPct := flag.Float64("regress-pct", 10, "with -diff: fail when any ns/op regressed by more than this percent")
	allocRegressPct := flag.Float64("alloc-regress-pct", 25, "with -diff: fail when any allocs/op or bytes/op regressed by more than this percent (negative disables)")
	flag.Parse()

	if *diffMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two files: benchjson -diff OLD.json NEW.json")
			os.Exit(2)
		}
		code, err := runDiff(os.Stdout, flag.Arg(0), flag.Arg(1), *regressPct, *allocRegressPct)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		os.Exit(code)
	}

	if *workers > 0 {
		parbfs.SetWorkers(*workers)
	}
	rep := report{
		Schema:     benchSchema,
		Note:       *note,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    parbfs.Workers(),
	}
	for _, bm := range benchmarks(*full) {
		fmt.Fprintf(os.Stderr, "running %s...\n", bm.name)
		r := testing.Benchmark(bm.fn)
		rep.Benchmarks = append(rep.Benchmarks, entry{
			Name:        bm.name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}

	path := *out
	if path == "" {
		path = nextFree()
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(rep)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(rep.Benchmarks))
}

// nextFree returns the first BENCH_<n>.json that does not exist yet.
func nextFree() string {
	for n := 0; ; n++ {
		path := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}

type namedBench struct {
	name string
	fn   func(b *testing.B)
}

// benchmarks mirrors the bench_test.go workloads that track the
// checker's end-to-end performance.
func benchmarks(full bool) []namedBench {
	var bms []namedBench
	for _, sys := range safety.PaperSystems(2, 2) {
		sys := sys
		name := sys.Alg.Name()
		if sys.CM != nil {
			name += "+" + sys.CM.Name()
		}
		bms = append(bms, namedBench{
			name: "Table2Build/" + name,
			fn: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ts := explore.Build(sys.Alg, sys.CM)
					if ts.NumStates() == 0 {
						b.Fatal("empty system")
					}
				}
			},
		})
	}
	bms = append(bms, namedBench{
		name: "Table2EndToEnd",
		fn: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows := safety.Table2(safety.PaperSystems(2, 2))
				if len(rows) != 5 {
					b.Fatal("wrong row count")
				}
			}
		},
	})
	engineCases := []struct {
		name string
		sys  safety.System
		prop spec.Property
	}{
		{"dstm-op", safety.System{Alg: tm.NewDSTM(2, 2)}, spec.Opacity},
		{"tl2-ss", safety.System{Alg: tm.NewTL2(2, 2)}, spec.StrictSerializability},
		{"modtl2+polite-ss", safety.System{Alg: tm.NewTL2Mod(2, 2), CM: tm.Polite{}}, spec.StrictSerializability},
	}
	for _, c := range engineCases {
		c := c
		for _, engine := range []safety.Engine{safety.EngineMaterialized, safety.EngineOnTheFly} {
			engine := engine
			bms = append(bms, namedBench{
				name: "Engines/" + c.name + "/" + engine.String(),
				fn: func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := safety.VerifyOpts(c.sys.Alg, c.sys.CM, c.prop, safety.Options{Workers: 1, Engine: engine}); err != nil {
							b.Fatal(err)
						}
					}
				},
			})
		}
	}
	livenessCases := []struct {
		name string
		alg  tm.Algorithm
		cm   tm.ContentionManager
		prop liveness.Prop
	}{
		{"dstm+aggressive-obstruction", tm.NewDSTM(2, 1), tm.Aggressive{}, liveness.ObstructionFreedom},
		{"tl2+polite-obstruction", tm.NewTL2(2, 1), tm.Polite{}, liveness.ObstructionFreedom},
		{"dstm+aggressive-livelock", tm.NewDSTM(2, 1), tm.Aggressive{}, liveness.LivelockFreedom},
	}
	for _, c := range livenessCases {
		c := c
		bms = append(bms,
			namedBench{
				name: "LivenessEngines/" + c.name + "/materialized",
				fn: func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						ts := explore.BuildWorkers(c.alg, c.cm, 1)
						if c.prop == liveness.ObstructionFreedom {
							liveness.CheckObstructionFreedom(ts)
						} else {
							liveness.CheckLivelockFreedom(ts)
						}
					}
				},
			},
			namedBench{
				name: "LivenessEngines/" + c.name + "/onthefly",
				fn: func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := liveness.CheckOnTheFlyOpts(c.alg, c.cm, c.prop, liveness.Options{Workers: 1}); err != nil {
							b.Fatal(err)
						}
					}
				},
			})
	}
	dims := [][2]int{{2, 1}, {2, 2}, {3, 1}}
	if full {
		dims = append(dims, [2]int{2, 3})
	}
	for _, d := range dims {
		n, k := d[0], d[1]
		bms = append(bms, namedBench{
			name: fmt.Sprintf("Scaling/dstm-%dt%dv", n, k),
			fn: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ts := explore.Build(tm.NewDSTM(n, k), nil)
					dfa := spec.NewDet(spec.Opacity, n, k).Enumerate()
					res := safety.CheckAgainstDFA(ts, spec.Opacity, dfa)
					if !res.Holds {
						b.Fatalf("dstm unsafe at (%d,%d)?", n, k)
					}
				}
			},
		})
	}
	return bms
}
