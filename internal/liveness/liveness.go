// Package liveness model checks liveness properties of TM algorithms
// combined with specific contention managers (the paper's §6). Unlike
// safety, liveness depends on the manager: the checks run on the
// transition system of the managed TM applied to the most general program
// — by the liveness reduction theorem (Theorem 5), two threads and one
// variable suffice for TMs with the structural properties P5 and P6.
//
// A violation is a lasso: a reachable loop in the transition system whose
// labels form the looping word bω of a counterexample a·bω.
//
//   - Obstruction freedom fails iff some loop consists of statements of a
//     single thread, contains an abort, and contains no commit (the
//     single-Streett-pair shortcut of §6).
//   - Livelock freedom fails iff some loop contains no commit and every
//     thread with a statement in the loop has an abort in it.
//   - Wait freedom fails iff some loop contains an abort of a thread and
//     no commit of that same thread (other threads may commit); since
//     wait freedom implies livelock freedom, any livelock violation is
//     also a wait-freedom violation.
//
// Two engines run the same search. The on-the-fly engine (onthefly.go)
// unfolds the managed TM lazily through internal/space and probes the
// closed prefix for lassos at BFS level barriers, stopping at the first
// violation; the materialized checks below replay the identical probe
// schedule over the level prefixes of a built *explore.TS. Because the
// numbering is canonical and the probe is a pure function of the prefix,
// verdicts and lasso words are bit-identical across engines and worker
// counts.
package liveness

import (
	"time"

	"tmcheck/internal/explore"
	"tmcheck/internal/guard"
	"tmcheck/internal/obs"
	"tmcheck/internal/parbfs"
	"tmcheck/internal/space"
	"tmcheck/internal/tm"
)

// Prop selects a liveness property.
type Prop uint8

// The three liveness properties of §2.
const (
	ObstructionFreedom Prop = iota
	LivelockFreedom
	WaitFreedom
)

// Props lists the three properties in the order the drivers check them.
var Props = []Prop{ObstructionFreedom, LivelockFreedom, WaitFreedom}

// String names the property.
func (p Prop) String() string {
	switch p {
	case ObstructionFreedom:
		return "obstruction freedom"
	case LivelockFreedom:
		return "livelock freedom"
	default:
		return "wait freedom"
	}
}

// Key is the short identifier used in metric names and reports.
func (p Prop) Key() string {
	switch p {
	case ObstructionFreedom:
		return "obstruction"
	case LivelockFreedom:
		return "livelock"
	default:
		return "wait"
	}
}

// Result reports one liveness check.
type Result struct {
	// System names the TM (and contention manager, if any).
	System string
	// Prop is the property checked.
	Prop Prop
	// Threads and Vars are the instance bounds.
	Threads, Vars int
	// TMStates is the number of states constructed when the check
	// concluded: the full transition system for the materialized engine,
	// possibly fewer for an on-the-fly check that found its violation
	// before the fixpoint.
	TMStates int
	// Holds reports whether the property holds (no violating loop).
	Holds bool
	// Stem is a path of edges from the initial state to the loop, and Loop
	// the violating loop itself, when the property fails. The looping word
	// is the paper's b in a·bω.
	Stem, Loop []explore.Edge
	// Elapsed is the wall-clock time of the check.
	Elapsed time.Duration
	// BuildElapsed is the wall-clock time spent exploring the managed
	// TM transition system, when the checking entry point built it
	// (zero when the caller passed a pre-built system, and zero for the
	// on-the-fly engine, whose exploration is interleaved with the
	// search and charged to Elapsed). BuildElapsed + Elapsed then adds
	// up to the check's total wall-clock.
	BuildElapsed time.Duration
	// Engine identifies the pipeline that produced this result.
	Engine space.Engine
	// Expanded is the number of states whose successors had been
	// explored when the verdict was reached — the prefix the violating
	// probe ran on, or the full state count when the property holds.
	// Identical across engines and worker counts.
	Expanded int
	// Probes counts the lasso probes the geometric schedule ran before
	// the check concluded.
	Probes int
	// Resumed is the number of TM states seeded from a snapshot before
	// the row explored anything (zero for a fresh build); like
	// BuildElapsed it is charged to the row's first check.
	Resumed int
	// Limit is non-nil when the check stopped at a resource limit
	// before resolving this property; Holds is then meaningless and the
	// keep-going table drivers render the cell as LIMIT(kind). A
	// violation found before the limit tripped keeps its Result (Limit
	// nil) — only unresolved properties are limited.
	Limit *guard.LimitError
}

// LoopWord renders the looping part of the counterexample in the paper's
// Table 3 notation (extended statements, e.g. "a1, (r,1)1, (o,1)1, a2,
// (o,1)2").
func (r Result) LoopWord() string { return explore.FormatRun(r.Loop) }

// edgeRef identifies an edge by its source state and index.
type edgeRef struct {
	from int32
	idx  int
}

func isCommit(e explore.Edge) bool { return e.X.Kind == tm.XCommit }
func isAbort(e explore.Edge) bool  { return e.X.Kind == tm.XAbort }

// CheckObstructionFreedom looks for a loop of one thread's statements that
// aborts without committing.
func CheckObstructionFreedom(ts *explore.TS) Result { return checkTS(ts, ObstructionFreedom) }

// CheckLivelockFreedom looks for a commit-free loop in which every
// participating thread aborts.
func CheckLivelockFreedom(ts *explore.TS) Result { return checkTS(ts, LivelockFreedom) }

// CheckWaitFreedom looks for a loop that aborts some thread t without ever
// committing t — other threads may commit inside the loop.
func CheckWaitFreedom(ts *explore.TS) Result { return checkTS(ts, WaitFreedom) }

// checkTS is the materialized engine: it replays the on-the-fly probe
// schedule over the canonical BFS level prefixes of the built system.
// Running the same pure lasso search on the same prefix sequence is what
// makes the two engines' verdicts and lasso words bit-identical (the
// first due prefix containing a violation determines the counterexample,
// not the full graph) — TestLivenessEngineAgreement asserts it.
func checkTS(ts *explore.TS, p Prop) Result {
	start := time.Now()
	res := newResult(ts, p)
	threads := ts.Alg.Threads()
	total := len(ts.Out)
	// cum[L] counts the states in BFS levels 0..L; level L occupies the
	// id range [cum[L-1], cum[L]) under the canonical numbering.
	sizes := ts.LevelSizes()
	cum := make([]int, len(sizes))
	c := 0
	for i, n := range sizes {
		c += n
		cum[i] = c
	}
	lastProbed := 0
	last := len(cum) - 1
	for k := 0; k <= last; k++ {
		// The barrier sequence of ScanLevels: (cum[k], cum[k+1]) per
		// level boundary, then a final (total, total).
		expanded := cum[k] // cum[last] == total, so the last pair is (total, total)
		interned := total
		if k < last {
			interned = cum[k+1]
		}
		final := expanded == interned
		if !final && !probeDue(expanded, lastProbed) {
			continue
		}
		lastProbed = expanded
		res.Probes++
		view := ts.Out
		if !final {
			view = make([][]explore.Edge, interned)
			copy(view, ts.Out[:expanded])
		}
		if stem, loop := lassoSearch(view, threads, p); loop != nil {
			res.Holds = false
			res.Stem, res.Loop = stem, loop
			res.Expanded = expanded
			break
		}
	}
	if res.Holds {
		res.Expanded = total
	}
	res.Elapsed = time.Since(start)
	res.record()
	return res
}

func newResult(ts *explore.TS, p Prop) Result {
	return Result{
		System:   ts.Name(),
		Prop:     p,
		Threads:  ts.Alg.Threads(),
		Vars:     ts.Alg.Vars(),
		TMStates: ts.NumStates(),
		Holds:    true,
		Engine:   space.EngineMaterialized,
	}
}

// record writes the per-system verdict counters and timings into the
// obs registry, keyed "liveness.<system>.<prop>.*".
func (r Result) record() {
	if !obs.Enabled() {
		return
	}
	key := "liveness." + r.System + "." + r.Prop.Key()
	obs.Inc(key+".checks", 1)
	obs.SetGauge(key+".tm_states", int64(r.TMStates))
	obs.SetGauge(key+".expanded", int64(r.Expanded))
	if r.Probes > 0 {
		obs.Inc(key+".probes", int64(r.Probes))
	}
	if !r.Holds {
		obs.SetGauge(key+".loop_len", int64(len(r.Loop)))
		obs.SetGauge(key+".stem_len", int64(len(r.Stem)))
	}
	obs.AddTime(key+".check", r.Elapsed)
}

// Table3Row pairs the obstruction- and livelock-freedom verdicts for one
// system, as in the paper's Table 3, plus the wait-freedom verdict.
type Table3Row struct {
	Obstruction Result
	Livelock    Result
	Wait        Result
}

// System is a TM algorithm with an optional contention manager.
type System struct {
	Alg tm.Algorithm
	CM  tm.ContentionManager
}

// PaperSystems returns the four systems of the paper's Table 3 at (n, k):
// sequential and 2PL without a manager, DSTM with the aggressive manager,
// and TL2 with the polite manager.
func PaperSystems(n, k int) []System {
	return []System{
		{Alg: tm.NewSeq(n, k)},
		{Alg: tm.NewTwoPL(n, k)},
		{Alg: tm.NewDSTM(n, k), CM: tm.Aggressive{}},
		{Alg: tm.NewTL2(n, k), CM: tm.Polite{}},
	}
}

// Table3 reproduces the paper's Table 3 on the given systems with the
// materialized engine, ignoring any state budget (Table3Materialized is
// the budget-aware driver behind cmd/tmcheck).
//
// With the process-wide worker count above one, the rows run
// concurrently over a bounded pool (each row's exploration and checks
// stay sequential inside the row); results are identical to the
// sequential driver.
func Table3(systems []System) []Table3Row {
	if workers := parbfs.Workers(); workers > 1 && len(systems) > 1 {
		return table3Par(systems, workers)
	}
	return table3Seq(systems)
}

// table3Par fans the rows out over the worker pool. Per-row obs phases
// are skipped — the phase stack assumes a single-threaded spine — but
// the counters and the returned rows match table3Seq.
func table3Par(systems []System, workers int) []Table3Row {
	done := obs.Phase("liveness:table3-parallel")
	defer done()
	rows := make([]Table3Row, len(systems))
	parbfs.For(len(systems), workers, func(i int) {
		sys := systems[i]
		buildStart := time.Now()
		ts := explore.BuildWorkers(sys.Alg, sys.CM, 1)
		buildElapsed := time.Since(buildStart)
		row := Table3Row{
			Obstruction: CheckObstructionFreedom(ts),
			Livelock:    CheckLivelockFreedom(ts),
			Wait:        CheckWaitFreedom(ts),
		}
		row.Obstruction.BuildElapsed = buildElapsed
		rows[i] = row
	})
	return rows
}

func table3Seq(systems []System) []Table3Row {
	var rows []Table3Row
	for _, sys := range systems {
		name := sys.Alg.Name()
		if sys.CM != nil {
			name += "+" + sys.CM.Name()
		}
		doneSys := obs.Phase("liveness:" + name)
		doneBuild := obs.Phase("build-tm")
		buildStart := time.Now()
		ts := explore.Build(sys.Alg, sys.CM)
		buildElapsed := time.Since(buildStart)
		doneBuild()
		row := Table3Row{
			Obstruction: checkInPhase(ts, ObstructionFreedom, CheckObstructionFreedom),
			Livelock:    checkInPhase(ts, LivelockFreedom, CheckLivelockFreedom),
			Wait:        checkInPhase(ts, WaitFreedom, CheckWaitFreedom),
		}
		// The shared exploration is charged to the first check; the
		// build and check times of a row then add up to its wall-clock.
		row.Obstruction.BuildElapsed = buildElapsed
		rows = append(rows, row)
		doneSys()
	}
	return rows
}

// checkInPhase runs one liveness check inside a named obs phase.
func checkInPhase(ts *explore.TS, p Prop, check func(*explore.TS) Result) Result {
	done := obs.Phase("check:" + p.Key())
	defer done()
	return check(ts)
}
