// Package liveness model checks liveness properties of TM algorithms
// combined with specific contention managers (the paper's §6). Unlike
// safety, liveness depends on the manager: the checks run on the explicit
// transition system of the managed TM applied to the most general program
// — by the liveness reduction theorem (Theorem 5), two threads and one
// variable suffice for TMs with the structural properties P5 and P6.
//
// A violation is a lasso: a reachable loop in the transition system whose
// labels form the looping word bω of a counterexample a·bω.
//
//   - Obstruction freedom fails iff some loop consists of statements of a
//     single thread, contains an abort, and contains no commit (the
//     single-Streett-pair shortcut of §6).
//   - Livelock freedom fails iff some loop contains no commit and every
//     thread with a statement in the loop has an abort in it.
//   - Wait freedom fails iff some loop contains an abort of a thread and
//     no commit of that same thread (other threads may commit); since
//     wait freedom implies livelock freedom, any livelock violation is
//     also a wait-freedom violation.
package liveness

import (
	"time"

	"tmcheck/internal/core"
	"tmcheck/internal/explore"
	"tmcheck/internal/obs"
	"tmcheck/internal/parbfs"
	"tmcheck/internal/tm"
)

// Prop selects a liveness property.
type Prop uint8

// The three liveness properties of §2.
const (
	ObstructionFreedom Prop = iota
	LivelockFreedom
	WaitFreedom
)

// String names the property.
func (p Prop) String() string {
	switch p {
	case ObstructionFreedom:
		return "obstruction freedom"
	case LivelockFreedom:
		return "livelock freedom"
	default:
		return "wait freedom"
	}
}

// Key is the short identifier used in metric names and reports.
func (p Prop) Key() string {
	switch p {
	case ObstructionFreedom:
		return "obstruction"
	case LivelockFreedom:
		return "livelock"
	default:
		return "wait"
	}
}

// Result reports one liveness check.
type Result struct {
	// System names the TM (and contention manager, if any).
	System string
	// Prop is the property checked.
	Prop Prop
	// Threads and Vars are the instance bounds.
	Threads, Vars int
	// TMStates is the size of the transition system.
	TMStates int
	// Holds reports whether the property holds (no violating loop).
	Holds bool
	// Stem is a path of edges from the initial state to the loop, and Loop
	// the violating loop itself, when the property fails. The looping word
	// is the paper's b in a·bω.
	Stem, Loop []explore.Edge
	// Elapsed is the wall-clock time of the check.
	Elapsed time.Duration
	// BuildElapsed is the wall-clock time spent exploring the managed
	// TM transition system, when the checking entry point built it
	// (zero when the caller passed a pre-built system). BuildElapsed +
	// Elapsed then adds up to the check's total wall-clock.
	BuildElapsed time.Duration
}

// LoopWord renders the looping part of the counterexample in the paper's
// Table 3 notation (extended statements, e.g. "a1, (r,1)1, (o,1)1, a2,
// (o,1)2").
func (r Result) LoopWord() string { return explore.FormatRun(r.Loop) }

// edgeRef identifies an edge by its source state and index.
type edgeRef struct {
	from int32
	idx  int
}

// graphView is a filtered view of a transition system: only edges passing
// keep participate.
type graphView struct {
	ts   *explore.TS
	keep func(explore.Edge) bool
}

// sccs computes strongly connected components over the filtered edges with
// an iterative Tarjan algorithm, returning the component id per state
// (only components with at least one internal edge can host loops, but all
// are returned).
func (g graphView) sccs() []int32 {
	n := len(g.ts.Out)
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]int32, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}
	var stack []int32
	var next int32
	var compCount int32

	type frame struct {
		v  int32
		ei int
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		var call []frame
		call = append(call, frame{v: int32(root)})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			advanced := false
			for f.ei < len(g.ts.Out[f.v]) {
				e := g.ts.Out[f.v][f.ei]
				f.ei++
				if !g.keep(e) {
					continue
				}
				w := e.To
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
					advanced = true
					break
				} else if onStack[w] {
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
			}
			if advanced {
				continue
			}
			// f.v is done.
			if low[f.v] == index[f.v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = compCount
					if w == f.v {
						break
					}
				}
				compCount++
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := &call[len(call)-1]
				if low[f.v] < low[p.v] {
					low[p.v] = low[f.v]
				}
			}
		}
	}
	return comp
}

// pathWithin finds a (possibly empty) path of kept edges from src to dst
// staying inside the given component, by BFS.
func (g graphView) pathWithin(comp []int32, cid int32, src, dst int32) []explore.Edge {
	if src == dst {
		return nil
	}
	type pred struct {
		prev int32
		ref  edgeRef
	}
	preds := map[int32]pred{src: {prev: -1}}
	queue := []int32{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for i, e := range g.ts.Out[v] {
			if !g.keep(e) || comp[e.To] != cid {
				continue
			}
			if _, seen := preds[e.To]; seen {
				continue
			}
			preds[e.To] = pred{prev: v, ref: edgeRef{from: v, idx: i}}
			if e.To == dst {
				// Reconstruct.
				var rev []explore.Edge
				cur := dst
				for cur != src {
					p := preds[cur]
					rev = append(rev, g.ts.Out[p.ref.from][p.ref.idx])
					cur = p.prev
				}
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev
			}
			queue = append(queue, e.To)
		}
	}
	return nil // unreachable within the component (should not happen in an SCC)
}

// stemTo finds a path of arbitrary edges from the initial state to dst.
func stemTo(ts *explore.TS, dst int32) []explore.Edge {
	if dst == 0 {
		return nil
	}
	type pred struct {
		prev int32
		ref  edgeRef
	}
	preds := map[int32]pred{0: {prev: -1}}
	queue := []int32{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for i, e := range ts.Out[v] {
			if _, seen := preds[e.To]; seen {
				continue
			}
			preds[e.To] = pred{prev: v, ref: edgeRef{from: v, idx: i}}
			if e.To == dst {
				var rev []explore.Edge
				cur := dst
				for cur != 0 {
					p := preds[cur]
					rev = append(rev, ts.Out[p.ref.from][p.ref.idx])
					cur = p.prev
				}
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev
			}
			queue = append(queue, e.To)
		}
	}
	return nil
}

func isCommit(e explore.Edge) bool { return e.X.Kind == tm.XCommit }
func isAbort(e explore.Edge) bool  { return e.X.Kind == tm.XAbort }

// CheckObstructionFreedom looks for a loop of one thread's statements that
// aborts without committing.
func CheckObstructionFreedom(ts *explore.TS) Result {
	start := time.Now()
	res := newResult(ts, ObstructionFreedom)
	for t := core.Thread(0); int(t) < ts.Alg.Threads(); t++ {
		g := graphView{ts: ts, keep: func(e explore.Edge) bool {
			return e.T == t && !isCommit(e)
		}}
		if stem, loop := findAbortLoop(g, []core.Thread{t}); loop != nil {
			res.Holds = false
			res.Stem, res.Loop = stem, loop
			break
		}
	}
	res.Elapsed = time.Since(start)
	res.record()
	return res
}

// CheckLivelockFreedom looks for a commit-free loop in which every
// participating thread aborts.
func CheckLivelockFreedom(ts *explore.TS) Result {
	start := time.Now()
	res := newResult(ts, LivelockFreedom)
	n := ts.Alg.Threads()
	// Enumerate nonempty thread subsets; smaller subsets first so the
	// counterexample involves as few threads as possible.
	subsets := allSubsets(n)
	for _, sub := range subsets {
		set := sub
		g := graphView{ts: ts, keep: func(e explore.Edge) bool {
			return set.Has(e.T) && !isCommit(e)
		}}
		if stem, loop := findAbortLoop(g, set.Threads()); loop != nil {
			res.Holds = false
			res.Stem, res.Loop = stem, loop
			break
		}
	}
	res.Elapsed = time.Since(start)
	res.record()
	return res
}

// CheckWaitFreedom looks for a loop that aborts some thread t without ever
// committing t — other threads may commit inside the loop.
func CheckWaitFreedom(ts *explore.TS) Result {
	start := time.Now()
	res := newResult(ts, WaitFreedom)
	for t := core.Thread(0); int(t) < ts.Alg.Threads(); t++ {
		th := t
		g := graphView{ts: ts, keep: func(e explore.Edge) bool {
			return !(isCommit(e) && e.T == th)
		}}
		if stem, loop := findAbortLoopOf(g, th); loop != nil {
			res.Holds = false
			res.Stem, res.Loop = stem, loop
			break
		}
	}
	res.Elapsed = time.Since(start)
	res.record()
	return res
}

func newResult(ts *explore.TS, p Prop) Result {
	return Result{
		System:   ts.Name(),
		Prop:     p,
		Threads:  ts.Alg.Threads(),
		Vars:     ts.Alg.Vars(),
		TMStates: ts.NumStates(),
		Holds:    true,
	}
}

// record writes the per-system verdict counters and timings into the
// obs registry, keyed "liveness.<system>.<prop>.*".
func (r Result) record() {
	if !obs.Enabled() {
		return
	}
	key := "liveness." + r.System + "." + r.Prop.Key()
	obs.Inc(key+".checks", 1)
	obs.SetGauge(key+".tm_states", int64(r.TMStates))
	if !r.Holds {
		obs.SetGauge(key+".loop_len", int64(len(r.Loop)))
		obs.SetGauge(key+".stem_len", int64(len(r.Stem)))
	}
	obs.AddTime(key+".check", r.Elapsed)
}

// findAbortLoop searches the filtered graph for a loop containing an abort
// of every thread in need. It returns the stem and the loop, or nils.
func findAbortLoop(g graphView, need []core.Thread) (stem, loop []explore.Edge) {
	comp := g.sccs()
	// Collect abort edges per component per needed thread.
	type compKey struct {
		cid int32
		t   core.Thread
	}
	aborts := map[compKey]edgeRef{}
	for v := range g.ts.Out {
		for i, e := range g.ts.Out[v] {
			if !g.keep(e) || !isAbort(e) {
				continue
			}
			if comp[v] != comp[e.To] {
				continue
			}
			k := compKey{cid: comp[v], t: e.T}
			if _, ok := aborts[k]; !ok {
				aborts[k] = edgeRef{from: int32(v), idx: i}
			}
		}
	}
	// Find a component containing abort edges for every needed thread.
	numComps := int32(0)
	for _, c := range comp {
		if c >= numComps {
			numComps = c + 1
		}
	}
	for cid := int32(0); cid < numComps; cid++ {
		refs := make([]edgeRef, 0, len(need))
		ok := true
		for _, t := range need {
			r, has := aborts[compKey{cid: cid, t: t}]
			if !has {
				ok = false
				break
			}
			refs = append(refs, r)
		}
		if !ok {
			continue
		}
		return buildLoop(g, comp, cid, refs)
	}
	return nil, nil
}

// findAbortLoopOf searches for a loop containing an abort of thread t
// (edges of other threads may participate freely).
func findAbortLoopOf(g graphView, t core.Thread) (stem, loop []explore.Edge) {
	comp := g.sccs()
	for v := range g.ts.Out {
		for i, e := range g.ts.Out[v] {
			if !g.keep(e) || !isAbort(e) || e.T != t {
				continue
			}
			if comp[v] != comp[e.To] {
				continue
			}
			return buildLoop(g, comp, comp[v], []edgeRef{{from: int32(v), idx: i}})
		}
	}
	return nil, nil
}

// buildLoop stitches the required edges into a loop inside component cid
// and prepends a stem from the initial state.
func buildLoop(g graphView, comp []int32, cid int32, refs []edgeRef) (stem, loop []explore.Edge) {
	for i, r := range refs {
		e := g.ts.Out[r.from][r.idx]
		loop = append(loop, e)
		next := refs[(i+1)%len(refs)]
		loop = append(loop, g.pathWithin(comp, cid, e.To, next.from)...)
	}
	stem = stemTo(g.ts, refs[0].from)
	return stem, loop
}

// allSubsets enumerates the nonempty subsets of {0..n-1} ordered by size.
func allSubsets(n int) []core.ThreadSet {
	var subs []core.ThreadSet
	for mask := 1; mask < 1<<n; mask++ {
		subs = append(subs, core.ThreadSet(mask))
	}
	// Order by population count, stable.
	for i := 1; i < len(subs); i++ {
		for j := i; j > 0 && subs[j].Len() < subs[j-1].Len(); j-- {
			subs[j], subs[j-1] = subs[j-1], subs[j]
		}
	}
	return subs
}

// Table3Row pairs the obstruction- and livelock-freedom verdicts for one
// system, as in the paper's Table 3, plus the wait-freedom verdict.
type Table3Row struct {
	Obstruction Result
	Livelock    Result
	Wait        Result
}

// System is a TM algorithm with an optional contention manager.
type System struct {
	Alg tm.Algorithm
	CM  tm.ContentionManager
}

// PaperSystems returns the four systems of the paper's Table 3 at (n, k):
// sequential and 2PL without a manager, DSTM with the aggressive manager,
// and TL2 with the polite manager.
func PaperSystems(n, k int) []System {
	return []System{
		{Alg: tm.NewSeq(n, k)},
		{Alg: tm.NewTwoPL(n, k)},
		{Alg: tm.NewDSTM(n, k), CM: tm.Aggressive{}},
		{Alg: tm.NewTL2(n, k), CM: tm.Polite{}},
	}
}

// Table3 reproduces the paper's Table 3 on the given systems.
//
// With the process-wide worker count above one, the rows run
// concurrently over a bounded pool (each row's exploration and checks
// stay sequential inside the row); results are identical to the
// sequential driver.
func Table3(systems []System) []Table3Row {
	if workers := parbfs.Workers(); workers > 1 && len(systems) > 1 {
		return table3Par(systems, workers)
	}
	return table3Seq(systems)
}

// table3Par fans the rows out over the worker pool. Per-row obs phases
// are skipped — the phase stack assumes a single-threaded spine — but
// the counters and the returned rows match table3Seq.
func table3Par(systems []System, workers int) []Table3Row {
	done := obs.Phase("liveness:table3-parallel")
	defer done()
	rows := make([]Table3Row, len(systems))
	parbfs.For(len(systems), workers, func(i int) {
		sys := systems[i]
		buildStart := time.Now()
		ts := explore.BuildWorkers(sys.Alg, sys.CM, 1)
		buildElapsed := time.Since(buildStart)
		row := Table3Row{
			Obstruction: CheckObstructionFreedom(ts),
			Livelock:    CheckLivelockFreedom(ts),
			Wait:        CheckWaitFreedom(ts),
		}
		row.Obstruction.BuildElapsed = buildElapsed
		rows[i] = row
	})
	return rows
}

func table3Seq(systems []System) []Table3Row {
	var rows []Table3Row
	for _, sys := range systems {
		name := sys.Alg.Name()
		if sys.CM != nil {
			name += "+" + sys.CM.Name()
		}
		doneSys := obs.Phase("liveness:" + name)
		doneBuild := obs.Phase("build-tm")
		buildStart := time.Now()
		ts := explore.Build(sys.Alg, sys.CM)
		buildElapsed := time.Since(buildStart)
		doneBuild()
		row := Table3Row{
			Obstruction: checkInPhase(ts, ObstructionFreedom, CheckObstructionFreedom),
			Livelock:    checkInPhase(ts, LivelockFreedom, CheckLivelockFreedom),
			Wait:        checkInPhase(ts, WaitFreedom, CheckWaitFreedom),
		}
		// The shared exploration is charged to the first check; the
		// build and check times of a row then add up to its wall-clock.
		row.Obstruction.BuildElapsed = buildElapsed
		rows = append(rows, row)
		doneSys()
	}
	return rows
}

// checkInPhase runs one liveness check inside a named obs phase.
func checkInPhase(ts *explore.TS, p Prop, check func(*explore.TS) Result) Result {
	done := obs.Phase("check:" + p.Key())
	defer done()
	return check(ts)
}
