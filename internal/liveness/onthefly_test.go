package liveness

import (
	"errors"
	"reflect"
	"testing"

	"tmcheck/internal/explore"
	"tmcheck/internal/guard"
	"tmcheck/internal/space"
)

// TestLivenessEngineAgreement is the cross-engine contract of the
// on-the-fly engine: for every paper system and property, verdicts,
// lasso words, and even the raw stem/loop edge sequences must be
// bit-identical to the materialized checks at every worker count
// (run race-enabled in CI, so the parallel scans are exercised too).
func TestLivenessEngineAgreement(t *testing.T) {
	for _, sys := range PaperSystems(2, 1) {
		ts := explore.Build(sys.Alg, sys.CM)
		name := ts.Name()
		for _, p := range Props {
			mat := checkTS(ts, p)
			for _, workers := range []int{1, 2, 4} {
				res, err := checkLazy(sys.Alg, sys.CM, []Prop{p}, workers, nil, false)
				if err != nil {
					t.Fatalf("%s %s workers=%d: %v", name, p.Key(), workers, err)
				}
				otf := res[0]
				if otf.Holds != mat.Holds {
					t.Errorf("%s %s workers=%d: holds = %v, materialized %v",
						name, p.Key(), workers, otf.Holds, mat.Holds)
				}
				if otf.LoopWord() != mat.LoopWord() {
					t.Errorf("%s %s workers=%d: loop %q, materialized %q",
						name, p.Key(), workers, otf.LoopWord(), mat.LoopWord())
				}
				if !reflect.DeepEqual(otf.Stem, mat.Stem) || !reflect.DeepEqual(otf.Loop, mat.Loop) {
					t.Errorf("%s %s workers=%d: stem/loop edges differ from materialized",
						name, p.Key(), workers)
				}
				if otf.Expanded != mat.Expanded {
					t.Errorf("%s %s workers=%d: expanded = %d, materialized %d",
						name, p.Key(), workers, otf.Expanded, mat.Expanded)
				}
				if otf.Engine != space.EngineOnTheFly || mat.Engine != space.EngineMaterialized {
					t.Errorf("%s %s: engines mislabeled (%v, %v)", name, p.Key(), otf.Engine, mat.Engine)
				}
			}
		}
	}
}

// TestCheckAllOnTheFlySharesExploration checks that the shared-scan
// driver resolves each property exactly as three independent checks do.
func TestCheckAllOnTheFlySharesExploration(t *testing.T) {
	for _, sys := range PaperSystems(2, 1) {
		row, err := CheckAllOnTheFly(sys.Alg, sys.CM)
		if err != nil {
			t.Fatal(err)
		}
		for _, pair := range []struct {
			got  Result
			prop Prop
		}{
			{row.Obstruction, ObstructionFreedom},
			{row.Livelock, LivelockFreedom},
			{row.Wait, WaitFreedom},
		} {
			single, err := CheckOnTheFlyOpts(sys.Alg, sys.CM, pair.prop, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if pair.got.Holds != single.Holds || pair.got.LoopWord() != single.LoopWord() {
				t.Errorf("%s %s: shared scan (%v, %q) differs from single check (%v, %q)",
					single.System, pair.prop.Key(),
					pair.got.Holds, pair.got.LoopWord(), single.Holds, single.LoopWord())
			}
			if pair.got.Expanded != single.Expanded {
				t.Errorf("%s %s: shared scan expanded %d, single %d",
					single.System, pair.prop.Key(), pair.got.Expanded, single.Expanded)
			}
		}
	}
}

// TestLivenessBudgetBothEngines drives both engines into a tiny state
// budget: the typed *space.BudgetError must surface through errors.Is
// from the sequential and the parallel scans alike, before any probe
// can run (budget is checked ahead of the barrier hook).
func TestLivenessBudgetBothEngines(t *testing.T) {
	sys := PaperSystems(2, 1)[2] // dstm+aggressive
	for _, workers := range []int{1, 4} {
		if _, err := checkLazy(sys.Alg, sys.CM, Props, workers, guard.New(nil, 2, 0), false); !errors.Is(err, space.ErrBudgetExceeded) {
			t.Errorf("onthefly workers=%d: err = %v, want budget error", workers, err)
		}
		if _, err := explore.BuildBudget(sys.Alg, sys.CM, workers, 2); !errors.Is(err, space.ErrBudgetExceeded) {
			t.Errorf("materialized workers=%d: err = %v, want budget error", workers, err)
		}
	}
	var be *space.BudgetError
	_, err := CheckOnTheFlyOpts(sys.Alg, sys.CM, LivelockFreedom, Options{Workers: 1, MaxStates: 2})
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *space.BudgetError", err)
	}
	if be.Budget != 2 || be.Visited <= 2 {
		t.Errorf("budget error = %+v, want Budget 2 and Visited > 2", be)
	}
}

// TestTable3DriversBudget checks that both table drivers honor the
// process-wide -maxstates knob instead of silently ignoring it — the
// bug this engine was built to fix.
func TestTable3DriversBudget(t *testing.T) {
	prev := space.MaxStates()
	defer space.SetMaxStates(prev)
	space.SetMaxStates(2)
	if _, err := Table3OnTheFly(PaperSystems(2, 1)); !errors.Is(err, space.ErrBudgetExceeded) {
		t.Errorf("Table3OnTheFly: err = %v, want budget error", err)
	}
	if _, err := Table3Materialized(PaperSystems(2, 1)); !errors.Is(err, space.ErrBudgetExceeded) {
		t.Errorf("Table3Materialized: err = %v, want budget error", err)
	}
}

// TestTable3EnginesAgree compares full Table 3 rows across the two
// unbudgeted drivers.
func TestTable3EnginesAgree(t *testing.T) {
	systems := PaperSystems(2, 1)
	otf, err := Table3OnTheFly(systems)
	if err != nil {
		t.Fatal(err)
	}
	mat := Table3(systems)
	if len(otf) != len(mat) {
		t.Fatalf("row counts differ: %d vs %d", len(otf), len(mat))
	}
	for i := range otf {
		for _, pair := range []struct {
			name     string
			got, ref Result
		}{
			{"obstruction", otf[i].Obstruction, mat[i].Obstruction},
			{"livelock", otf[i].Livelock, mat[i].Livelock},
			{"wait", otf[i].Wait, mat[i].Wait},
		} {
			if pair.got.Holds != pair.ref.Holds || pair.got.LoopWord() != pair.ref.LoopWord() {
				t.Errorf("%s %s: onthefly (%v, %q) vs materialized (%v, %q)",
					pair.ref.System, pair.name,
					pair.got.Holds, pair.got.LoopWord(), pair.ref.Holds, pair.ref.LoopWord())
			}
		}
	}
}

// TestProbeSchedule pins the geometric schedule both engines share.
func TestProbeSchedule(t *testing.T) {
	if !probeDue(1, 0) {
		t.Error("first barrier must probe")
	}
	if probeDue(3, 2) {
		t.Error("3 states since probe at 2: not due yet")
	}
	if !probeDue(4, 2) {
		t.Error("doubling since the last probe is due")
	}
}
