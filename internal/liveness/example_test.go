package liveness_test

import (
	"fmt"

	"tmcheck/internal/explore"
	"tmcheck/internal/liveness"
	"tmcheck/internal/tm"
)

func ExampleCheckObstructionFreedom() {
	// DSTM with the aggressive contention manager never aborts a
	// transaction running alone, so it is obstruction free; with the
	// polite manager it is not.
	aggr := explore.Build(tm.NewDSTM(2, 1), tm.Aggressive{})
	fmt.Println("dstm+aggressive:", liveness.CheckObstructionFreedom(aggr).Holds)

	pol := explore.Build(tm.NewDSTM(2, 1), tm.Polite{})
	res := liveness.CheckObstructionFreedom(pol)
	fmt.Println("dstm+polite:", res.Holds, "loop:", res.LoopWord())
	// Output:
	// dstm+aggressive: true
	// dstm+polite: false loop: a1
}

func ExampleCheckLivelockFreedom() {
	// Two writers stealing ownership from each other forever: no TM in the
	// paper is livelock free.
	ts := explore.Build(tm.NewDSTM(2, 1), tm.Aggressive{})
	res := liveness.CheckLivelockFreedom(ts)
	fmt.Println("livelock free:", res.Holds)
	fmt.Println("loop:", res.LoopWord())
	// Output:
	// livelock free: false
	// loop: a2, (o,1)2, a1, (o,1)1
}

func ExampleCheckOnTheFly() {
	// The on-the-fly engine explores the managed TM lazily and stops at
	// the first violating lasso; verdicts and loop words are identical
	// to the materialized checks above for every -workers count.
	res, err := liveness.CheckOnTheFly(tm.NewDSTM(2, 1), tm.Polite{}, liveness.ObstructionFreedom)
	if err != nil {
		panic(err)
	}
	fmt.Println("dstm+polite:", res.Holds, "loop:", res.LoopWord())
	fmt.Printf("expanded %d of %d constructed states\n", res.Expanded, res.TMStates)
	// Output:
	// dstm+polite: false loop: a1
	// expanded 7 of 21 constructed states
}
