package liveness

import (
	"testing"

	"tmcheck/internal/explore"
	"tmcheck/internal/tm"
)

// The general Streett engine and the bespoke loop searches must agree on
// every system we can build.
func TestStreettBackendAgreesWithLoopSearch(t *testing.T) {
	var systems []System
	for _, name := range []string{"seq", "2pl", "dstm", "tl2", "norec", "etl"} {
		for _, cmName := range []string{"", "aggressive", "polite", "karma", "timid"} {
			alg, err := tm.NewAlgorithm(name, 2, 1)
			if err != nil {
				t.Fatal(err)
			}
			cm, err := tm.NewContentionManager(cmName)
			if err != nil {
				t.Fatal(err)
			}
			systems = append(systems, System{Alg: alg, CM: cm})
		}
	}
	for _, sys := range systems {
		ts := explore.Build(sys.Alg, sys.CM)
		loopOF := CheckObstructionFreedom(ts)
		strOF := CheckObstructionFreedomStreett(ts)
		if loopOF.Holds != strOF.Holds {
			t.Errorf("%s: obstruction freedom loop=%v streett=%v",
				ts.Name(), loopOF.Holds, strOF.Holds)
		}
		loopLF := CheckLivelockFreedom(ts)
		strLF := CheckLivelockFreedomStreett(ts)
		if loopLF.Holds != strLF.Holds {
			t.Errorf("%s: livelock freedom loop=%v streett=%v",
				ts.Name(), loopLF.Holds, strLF.Holds)
		}
		// Witnesses from the Streett engine must have the right shape.
		if !strOF.Holds {
			validateObstructionLoop(t, ts.Name(), strOF)
		}
		if !strLF.Holds {
			validateLivelockLoop(t, ts.Name(), strLF)
		}
	}
}

func validateObstructionLoop(t *testing.T, name string, res Result) {
	t.Helper()
	if len(res.Loop) == 0 {
		t.Errorf("%s: empty obstruction loop", name)
		return
	}
	th := res.Loop[0].T
	hasAbort := false
	for _, e := range res.Loop {
		if e.T != th {
			t.Errorf("%s: obstruction loop mixes threads: %q", name, explore.FormatRun(res.Loop))
			return
		}
		if e.X.Kind == tm.XCommit {
			t.Errorf("%s: obstruction loop has a commit", name)
		}
		if e.X.Kind == tm.XAbort {
			hasAbort = true
		}
	}
	if !hasAbort {
		t.Errorf("%s: obstruction loop lacks an abort", name)
	}
}

func validateLivelockLoop(t *testing.T, name string, res Result) {
	t.Helper()
	if len(res.Loop) == 0 {
		t.Errorf("%s: empty livelock loop", name)
		return
	}
	stmts := map[int]bool{}
	aborts := map[int]bool{}
	for _, e := range res.Loop {
		if e.X.Kind == tm.XCommit {
			t.Errorf("%s: livelock loop has a commit", name)
		}
		stmts[int(e.T)] = true
		if e.X.Kind == tm.XAbort {
			aborts[int(e.T)] = true
		}
	}
	for th := range stmts {
		if !aborts[th] {
			t.Errorf("%s: thread %d participates without aborting: %q",
				name, th+1, explore.FormatRun(res.Loop))
		}
	}
}

// Agreement must also hold at (2,2) and (3,1), where the graphs are larger
// and the subset-enumeration shortcut of the loop search differs most from
// the polynomial Streett decomposition.
func TestStreettBackendLargerInstances(t *testing.T) {
	for _, dims := range [][2]int{{2, 2}, {3, 1}} {
		for _, sys := range PaperSystems(dims[0], dims[1]) {
			ts := explore.Build(sys.Alg, sys.CM)
			if a, b := CheckObstructionFreedom(ts), CheckObstructionFreedomStreett(ts); a.Holds != b.Holds {
				t.Errorf("%s at %v: obstruction loop=%v streett=%v", ts.Name(), dims, a.Holds, b.Holds)
			}
			if a, b := CheckLivelockFreedom(ts), CheckLivelockFreedomStreett(ts); a.Holds != b.Holds {
				t.Errorf("%s at %v: livelock loop=%v streett=%v", ts.Name(), dims, a.Holds, b.Holds)
			}
		}
	}
}
