package liveness

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"tmcheck/internal/core"
	"tmcheck/internal/guard"
	"tmcheck/internal/space"
	"tmcheck/internal/tm"
)

// panicAfter wraps a TM algorithm and panics on the Nth Steps call,
// modelling a buggy TM implementation crashing mid-exploration.
type panicAfter struct {
	tm.Algorithm
	calls *atomic.Int64
	after int64
}

func (p panicAfter) Name() string { return "panicky" }

func (p panicAfter) Steps(q tm.State, c core.Command, t core.Thread) []tm.Step {
	if p.calls.Add(1) > p.after {
		panic("injected TM fault")
	}
	return p.Algorithm.Steps(q, c, t)
}

// cells flattens a row for assertions.
func cells(row Table3Row) []Result {
	return []Result{row.Obstruction, row.Livelock, row.Wait}
}

// TestTable3ResilientMatchesFailFast checks the keep-going driver is a
// strict generalization: without limits it reproduces the fail-fast
// drivers' rows exactly, in both engines, with no Limit set.
func TestTable3ResilientMatchesFailFast(t *testing.T) {
	systems := PaperSystems(2, 1)
	otfWant, err := Table3OnTheFly(systems)
	if err != nil {
		t.Fatal(err)
	}
	matWant := Table3(systems)
	for _, tc := range []struct {
		engine space.Engine
		want   []Table3Row
	}{
		{space.EngineOnTheFly, otfWant},
		{space.EngineMaterialized, matWant},
	} {
		got := Table3Resilient(context.Background(), systems, tc.engine)
		if len(got) != len(tc.want) {
			t.Fatalf("engine %v: %d rows, want %d", tc.engine, len(got), len(tc.want))
		}
		for i := range got {
			gs, ws := cells(got[i]), cells(tc.want[i])
			for j := range gs {
				g, w := gs[j], ws[j]
				if g.Limit != nil {
					t.Errorf("engine %v: %s %v unexpectedly limited: %v", tc.engine, g.System, g.Prop, g.Limit)
				}
				if g.Holds != w.Holds || g.LoopWord() != w.LoopWord() || g.TMStates != w.TMStates {
					t.Errorf("engine %v: %s %v = (%v, %q, %d states), fail-fast (%v, %q, %d states)",
						tc.engine, g.System, g.Prop, g.Holds, g.LoopWord(), g.TMStates,
						w.Holds, w.LoopWord(), w.TMStates)
				}
			}
		}
	}
}

// TestTable3ResilientKeepsGoing runs the paper systems under a budget
// that stops dstm and tl2: the small systems still resolve, the
// stopped cells carry a typed states limit — and with the on-the-fly
// engine, violations the probes found before the stop keep their full
// Results (partial rows, the heart of keep-going liveness).
func TestTable3ResilientKeepsGoing(t *testing.T) {
	prev := space.MaxStates()
	defer space.SetMaxStates(prev)
	space.SetMaxStates(50)
	for _, engine := range []space.Engine{space.EngineOnTheFly, space.EngineMaterialized} {
		rows := Table3Resilient(context.Background(), PaperSystems(2, 1), engine)
		if len(rows) != 4 {
			t.Fatalf("engine %v: %d rows, want 4", engine, len(rows))
		}
		resolved, limited := 0, 0
		for _, row := range rows {
			for _, r := range cells(row) {
				if r.Limit == nil {
					resolved++
					continue
				}
				limited++
				if r.Limit.Kind != guard.KindStates {
					t.Errorf("engine %v: %s %v limited by %v, want states", engine, r.System, r.Prop, r.Limit.Kind)
				}
			}
		}
		if resolved == 0 || limited == 0 {
			t.Errorf("engine %v: resolved %d, limited %d — keep-going needs both", engine, resolved, limited)
		}
	}
	// The partial-row guarantee is on-the-fly only: dstm+aggressive blows
	// the 50-state budget before obstruction freedom's fixpoint, but its
	// livelock violation is found by an earlier probe and must survive
	// with its loop word.
	rows := Table3Resilient(context.Background(), PaperSystems(2, 1), space.EngineOnTheFly)
	dstm := rows[2]
	if dstm.Obstruction.Limit == nil {
		t.Fatalf("dstm obstruction = %+v, want limited", dstm.Obstruction)
	}
	if dstm.Livelock.Limit != nil || dstm.Livelock.Holds || dstm.Livelock.LoopWord() == "" {
		t.Errorf("dstm livelock = %+v, want the pre-limit violation kept", dstm.Livelock)
	}
}

// TestTable3ResilientIsolatesPanicTM registers a deliberately crashing
// TM through the public registry and checks both engines isolate the
// panic into LimitError{Kind: panic} cells while healthy rows resolve.
func TestTable3ResilientIsolatesPanicTM(t *testing.T) {
	if err := tm.RegisterAlgorithm("panicky-liveness", func(n, k int) tm.Algorithm {
		return panicAfter{Algorithm: tm.NewDSTM(n, k), calls: new(atomic.Int64), after: 20}
	}); err != nil {
		t.Fatal(err)
	}
	broken, err := tm.NewAlgorithm("panicky-liveness", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	systems := []System{{Alg: tm.NewSeq(2, 1)}, {Alg: broken, CM: tm.Aggressive{}}}
	for _, engine := range []space.Engine{space.EngineOnTheFly, space.EngineMaterialized} {
		rows := Table3Resilient(context.Background(), systems, engine)
		if len(rows) != 2 {
			t.Fatalf("engine %v: %d rows, want 2", engine, len(rows))
		}
		for _, r := range cells(rows[0]) {
			if r.Limit != nil {
				t.Errorf("engine %v: healthy seq limited: %v", engine, r.Limit)
			}
		}
		for _, r := range cells(rows[1]) {
			if r.Limit == nil || r.Limit.Kind != guard.KindPanic {
				t.Fatalf("engine %v: broken TM limit = %v, want isolated panic", engine, r.Limit)
			}
			if r.Limit.Value == nil || len(r.Limit.Stack) == 0 {
				t.Errorf("engine %v: panic limit lost value or stack", engine)
			}
		}
	}
}

// TestCheckOnTheFlyOptsCtx threads a cancelled context through the
// one-shot liveness entry point: the typed cancellation surfaces.
func TestCheckOnTheFlyOptsCtx(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := CheckOnTheFlyOpts(tm.NewDSTM(2, 1), tm.Aggressive{}, LivelockFreedom, Options{Ctx: ctx})
	var le *guard.LimitError
	if !errors.As(err, &le) || le.Kind != guard.KindCancelled {
		t.Fatalf("err = %v, want cancellation limit", err)
	}
	if res.Limit == nil || res.Limit.Kind != guard.KindCancelled {
		t.Errorf("partial result limit = %v, want cancelled", res.Limit)
	}
}
