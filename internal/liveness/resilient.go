package liveness

import (
	"context"
	"errors"
	"time"

	"tmcheck/internal/explore"
	"tmcheck/internal/guard"
	"tmcheck/internal/obs"
	"tmcheck/internal/parbfs"
	"tmcheck/internal/space"
)

// Table3Resilient is the keep-going Table 3 driver of cmd/tmcheck:
// every row runs under ctx (deadline and Ctrl-C) plus the process-wide
// -maxstates and -maxmem limits, and a row that hits a limit — or
// panics inside the TM algorithm — reports what it learned instead of
// aborting the table. With the on-the-fly engine a limited row keeps
// the violations its probes found before the stop and marks only the
// unresolved properties with Result.Limit; with the materialized
// engine a limited build marks all three.
func Table3Resilient(ctx context.Context, systems []System, engine space.Engine) []Table3Row {
	return Table3ResilientOpts(systems, engine, Options{Ctx: ctx})
}

// Table3ResilientOpts is Table3Resilient with explicit options: unset
// budgets resolve from the process-wide knobs (so the CLI path is
// unchanged), while a fully-specified Options scopes every limit to
// this table — the tmcheckd path, which also sets NoPhases because it
// runs tables concurrently.
func Table3ResilientOpts(systems []System, engine space.Engine, opts Options) []Table3Row {
	workers := opts.Workers
	if workers <= 0 {
		workers = parbfs.Workers()
	}
	if workers > 1 && len(systems) > 1 {
		if !opts.NoPhases {
			phase := "liveness:table3-onthefly-parallel"
			if engine == space.EngineMaterialized {
				phase = "liveness:table3-parallel"
			}
			done := obs.Phase(phase)
			defer done()
		}
		rows := make([]Table3Row, len(systems))
		parbfs.For(len(systems), workers, func(i int) {
			rows[i] = table3ResilientRow(systems[i], engine, false, opts)
		})
		return rows
	}
	rows := make([]Table3Row, 0, len(systems))
	for _, sys := range systems {
		rows = append(rows, table3ResilientRow(sys, engine, !opts.NoPhases, opts))
	}
	return rows
}

// table3ResilientRow runs one guarded row with the selected engine.
func table3ResilientRow(sys System, engine space.Engine, phase bool, opts Options) Table3Row {
	g := opts.guard()
	if engine == space.EngineOnTheFly {
		res, err := checkLazy(sys.Alg, sys.CM, Props, 1, g, phase)
		if err != nil && len(res) != 3 {
			// No partials to keep (a non-limit error): every cell limited.
			return limitedRow(sys, space.EngineOnTheFly, 0, err)
		}
		row := Table3Row{Obstruction: res[0], Livelock: res[1], Wait: res[2]}
		recordDriverRow3(row)
		return row
	}
	buildStart := time.Now()
	ts, err := explore.BuildProviderGuarded(sys.Alg, sys.CM, 1, g, opts.Persist)
	buildElapsed := time.Since(buildStart)
	if err != nil {
		row := limitedRow(sys, space.EngineMaterialized, buildElapsed, err)
		recordDriverRow3(row)
		return row
	}
	row := Table3Row{
		Obstruction: CheckObstructionFreedom(ts),
		Livelock:    CheckLivelockFreedom(ts),
		Wait:        CheckWaitFreedom(ts),
	}
	row.Obstruction.BuildElapsed = buildElapsed
	row.Obstruction.Resumed = ts.Resumed
	recordDriverRow3(row)
	return row
}

// limitedRow marks all three properties of one system limited.
func limitedRow(sys System, engine space.Engine, elapsed time.Duration, err error) Table3Row {
	var le *guard.LimitError
	if !errors.As(err, &le) {
		le = &guard.LimitError{Kind: guard.KindPanic, Value: err}
	}
	cell := func(p Prop) Result {
		return Result{
			System:   systemName(sys.Alg, sys.CM),
			Prop:     p,
			Threads:  sys.Alg.Threads(),
			Vars:     sys.Alg.Vars(),
			TMStates: le.Visited,
			Engine:   engine,
			Limit:    le,
		}
	}
	row := Table3Row{
		Obstruction: cell(ObstructionFreedom),
		Livelock:    cell(LivelockFreedom),
		Wait:        cell(WaitFreedom),
	}
	row.Obstruction.Elapsed = elapsed
	return row
}

// recordDriverRow3 writes one keep-going row's vitals under
// "driver.table3.<system>.<prop>.*": a limit_<label> counter when the
// cell was stopped, plus its elapsed time and the states it reached.
func recordDriverRow3(row Table3Row) {
	if !obs.Enabled() {
		return
	}
	for _, r := range []Result{row.Obstruction, row.Livelock, row.Wait} {
		key := "driver.table3." + r.System + "." + r.Prop.Key()
		if r.Limit != nil {
			obs.Inc(key+".limit_"+r.Limit.Kind.Label(), 1)
		} else {
			obs.Inc(key+".completed", 1)
		}
		obs.SetGauge(key+".states", int64(r.TMStates))
		obs.AddTime(key+".elapsed", r.Elapsed)
	}
}
