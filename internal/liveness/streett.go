package liveness

import (
	"time"

	"tmcheck/internal/core"
	"tmcheck/internal/explore"
)

// The paper observes (§6) that obstruction freedom is formally a Streett
// condition and livelock freedom a close relative. This file provides the
// machinery both liveness engines share: a Streett-satisfaction search
// based on the classical recursive SCC decomposition (find an SCC; any
// pair with its E-edges present but F-edges absent is unsatisfiable
// there, so delete those E-edges and recurse), plus the per-property
// restriction/pair/required-class predicates.
//
// The search operates on a bare adjacency slice rather than a *explore.TS
// so it can run on the closed prefixes the on-the-fly engine exposes at
// its level barriers (states beyond the expanded boundary simply have no
// outgoing edges yet): a loop found in a prefix uses only real edges, so
// it is a real violation of the full system.
//
// Violations are phrased as runs to FIND:
//
//   - obstruction freedom is violated by a run that eventually uses only
//     one thread's non-commit edges and visits that thread's aborts
//     infinitely — a required-class search on a restricted graph;
//   - livelock freedom is violated by a run with finitely many commits
//     that satisfies the Streett pairs (statements of t ⇒ aborts of t) for
//     every thread — a Streett satisfaction on the commit-free graph;
//   - wait freedom is violated by a run that aborts some thread t
//     infinitely while never committing t (other threads may commit).

// StreettPair is an edge-level Streett pair: a run satisfies it when
// visiting E infinitely implies visiting F infinitely.
type StreettPair struct {
	E func(explore.Edge) bool
	F func(explore.Edge) bool
}

// obstructionStreett is the §6 single-pair shortcut for one thread:
// restrict the graph to t's non-commit edges and require an abort of t.
func obstructionStreett(t core.Thread) (restrict func(explore.Edge) bool, require []func(explore.Edge) bool) {
	restrict = func(e explore.Edge) bool { return e.T == t && !isCommit(e) }
	require = []func(explore.Edge) bool{
		func(e explore.Edge) bool { return isAbort(e) && e.T == t },
	}
	return restrict, require
}

// livelockStreett phrases livelock freedom over all threads: on the
// commit-free graph, the pairs (statements of t ⇒ aborts of t) for every
// thread, with at least one abort overall.
func livelockStreett(threads int) (restrict func(explore.Edge) bool, pairs []StreettPair, require []func(explore.Edge) bool) {
	restrict = func(e explore.Edge) bool { return !isCommit(e) }
	for t := core.Thread(0); int(t) < threads; t++ {
		th := t
		pairs = append(pairs, StreettPair{
			E: func(e explore.Edge) bool { return e.T == th },
			F: func(e explore.Edge) bool { return e.T == th && isAbort(e) },
		})
	}
	require = []func(explore.Edge) bool{isAbort}
	return restrict, pairs, require
}

// waitStreett phrases wait freedom for one thread: forbid only t's own
// commits and require an abort of t (other threads may commit freely).
func waitStreett(t core.Thread) (restrict func(explore.Edge) bool, require []func(explore.Edge) bool) {
	restrict = func(e explore.Edge) bool { return !(isCommit(e) && e.T == t) }
	require = []func(explore.Edge) bool{
		func(e explore.Edge) bool { return isAbort(e) && e.T == t },
	}
	return restrict, require
}

// FindStreettRun looks for an infinite run of the graph that eventually
// uses only edges passing restrict, satisfies every Streett pair, and
// visits at least one edge of every required class infinitely often. It
// returns the stem and loop of a witness lasso, or nil loops when no
// such run exists. The search is a pure deterministic function of the
// adjacency, so identical prefixes yield identical lassos — the
// cross-engine equality the on-the-fly liveness engine relies on.
func FindStreettRun(out [][]explore.Edge, restrict func(explore.Edge) bool, pairs []StreettPair, require []func(explore.Edge) bool) (stem, loop []explore.Edge) {
	// live marks the edges currently allowed; the recursion disables
	// E-edges of failing pairs.
	type edgeKey struct {
		from int32
		idx  int
	}
	disabled := map[edgeKey]bool{}
	allowed := func(from int32, idx int, e explore.Edge) bool {
		return restrict(e) && !disabled[edgeKey{from, idx}]
	}

	// search returns a witness within the given state set (nil = all).
	var search func(states []int32) (stem, loop []explore.Edge)
	search = func(states []int32) ([]explore.Edge, []explore.Edge) {
		inScope := map[int32]bool{}
		if states == nil {
			for s := range out {
				inScope[int32(s)] = true
			}
		} else {
			for _, s := range states {
				inScope[s] = true
			}
		}
		comp, comps := sccWithFilter(out, inScope, allowed)
		for cid, members := range comps {
			// Edges fully inside this SCC.
			type cedge struct {
				from int32
				idx  int
			}
			var inside []cedge
			for _, s := range members {
				for i, e := range out[s] {
					if allowed(s, i, e) && comp[e.To] == int32(cid) && inScope[e.To] {
						inside = append(inside, cedge{s, i})
					}
				}
			}
			if len(inside) == 0 {
				continue // trivial SCC, no cycle
			}
			// Check the Streett pairs within this SCC.
			var failing []int
			for pi, p := range pairs {
				hasE, hasF := false, false
				for _, ce := range inside {
					e := out[ce.from][ce.idx]
					if p.E(e) {
						hasE = true
					}
					if p.F(e) {
						hasF = true
					}
				}
				if hasE && !hasF {
					failing = append(failing, pi)
				}
			}
			if len(failing) > 0 {
				// Disable the failing pairs' E-edges inside this SCC and
				// recurse on its states.
				var disabledHere []edgeKey
				for _, ce := range inside {
					e := out[ce.from][ce.idx]
					for _, pi := range failing {
						if pairs[pi].E(e) {
							k := edgeKey{ce.from, ce.idx}
							if !disabled[k] {
								disabled[k] = true
								disabledHere = append(disabledHere, k)
							}
							break
						}
					}
				}
				st, lp := search(members)
				if lp != nil {
					return st, lp
				}
				for _, k := range disabledHere {
					delete(disabled, k)
				}
				continue
			}
			// Pairs satisfied. Check the required classes.
			reqEdges := make([]edgeRef, 0, len(require)+len(pairs))
			ok := true
			for _, rc := range require {
				found := false
				for _, ce := range inside {
					if rc(out[ce.from][ce.idx]) {
						reqEdges = append(reqEdges, edgeRef{from: ce.from, idx: ce.idx})
						found = true
						break
					}
				}
				if !found {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// Include one F-edge for every pair whose E-edges occur here,
			// so the loop itself satisfies the pairs — unless an already
			// chosen edge covers the pair (keeps the stitched loop short:
			// a required abort doubles as its own thread's F-edge).
			for _, p := range pairs {
				hasE, covered := false, false
				for _, r := range reqEdges {
					if p.F(out[r.from][r.idx]) {
						covered = true
						break
					}
				}
				if covered {
					continue
				}
				for _, ce := range inside {
					if p.E(out[ce.from][ce.idx]) {
						hasE = true
						break
					}
				}
				if !hasE {
					continue
				}
				for _, ce := range inside {
					if p.F(out[ce.from][ce.idx]) {
						reqEdges = append(reqEdges, edgeRef{from: ce.from, idx: ce.idx})
						break
					}
				}
			}
			if len(reqEdges) == 0 {
				// Any cycle will do; take the first inside edge.
				reqEdges = append(reqEdges, edgeRef{from: inside[0].from, idx: inside[0].idx})
			}
			return buildStreettLoop(out, inScope, allowed, comp, int32(cid), reqEdges)
		}
		return nil, nil
	}
	return search(nil)
}

// sccWithFilter computes SCCs over the filtered, index-aware edge set,
// returning the component of each state and the member lists of
// components that contain at least one state.
func sccWithFilter(out [][]explore.Edge, inScope map[int32]bool, allowed func(int32, int, explore.Edge) bool) ([]int32, [][]int32) {
	n := len(out)
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]int32, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}
	var stack []int32
	var next, compCount int32
	var comps [][]int32

	type frame struct {
		v  int32
		ei int
	}
	for root := 0; root < n; root++ {
		if !inScope[int32(root)] || index[root] != unvisited {
			continue
		}
		call := []frame{{v: int32(root)}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			advanced := false
			for f.ei < len(out[f.v]) {
				i := f.ei
				e := out[f.v][i]
				f.ei++
				if !allowed(f.v, i, e) || !inScope[e.To] {
					continue
				}
				w := e.To
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
					advanced = true
					break
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[f.v] == index[f.v] {
				var members []int32
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = compCount
					members = append(members, w)
					if w == f.v {
						break
					}
				}
				comps = append(comps, members)
				compCount++
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := &call[len(call)-1]
				if low[f.v] < low[p.v] {
					low[p.v] = low[f.v]
				}
			}
		}
	}
	return comp, comps
}

// buildStreettLoop stitches the required edges into a loop within the SCC
// and finds a stem from the initial state.
func buildStreettLoop(out [][]explore.Edge, inScope map[int32]bool, allowed func(int32, int, explore.Edge) bool, comp []int32, cid int32, refs []edgeRef) (stem, loop []explore.Edge) {
	path := func(src, dst int32) []explore.Edge {
		if src == dst {
			return nil
		}
		type pred struct {
			prev int32
			ref  edgeRef
		}
		preds := map[int32]pred{src: {prev: -1}}
		queue := []int32{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for i, e := range out[v] {
				if !allowed(v, i, e) || comp[e.To] != cid || !inScope[e.To] {
					continue
				}
				if _, seen := preds[e.To]; seen {
					continue
				}
				preds[e.To] = pred{prev: v, ref: edgeRef{from: v, idx: i}}
				if e.To == dst {
					var rev []explore.Edge
					cur := dst
					for cur != src {
						p := preds[cur]
						rev = append(rev, out[p.ref.from][p.ref.idx])
						cur = p.prev
					}
					for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
						rev[i], rev[j] = rev[j], rev[i]
					}
					return rev
				}
				queue = append(queue, e.To)
			}
		}
		return nil
	}
	for i, r := range refs {
		e := out[r.from][r.idx]
		loop = append(loop, e)
		next := refs[(i+1)%len(refs)]
		loop = append(loop, path(e.To, next.from)...)
	}
	stem = stemTo(out, refs[0].from)
	return stem, loop
}

// stemTo finds a path of arbitrary edges from the initial state to dst.
func stemTo(out [][]explore.Edge, dst int32) []explore.Edge {
	if dst == 0 {
		return nil
	}
	type pred struct {
		prev int32
		ref  edgeRef
	}
	preds := map[int32]pred{0: {prev: -1}}
	queue := []int32{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for i, e := range out[v] {
			if _, seen := preds[e.To]; seen {
				continue
			}
			preds[e.To] = pred{prev: v, ref: edgeRef{from: v, idx: i}}
			if e.To == dst {
				var rev []explore.Edge
				cur := dst
				for cur != 0 {
					p := preds[cur]
					rev = append(rev, out[p.ref.from][p.ref.idx])
					cur = p.prev
				}
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev
			}
			queue = append(queue, e.To)
		}
	}
	return nil
}

// CheckObstructionFreedomStreett runs the obstruction-freedom search as
// a single full-graph Streett query (no probe schedule) — an
// independent backend the probe-based CheckObstructionFreedom is
// cross-validated against in the tests.
func CheckObstructionFreedomStreett(ts *explore.TS) Result {
	start := time.Now()
	res := newResult(ts, ObstructionFreedom)
	for t := core.Thread(0); int(t) < ts.Alg.Threads(); t++ {
		restrict, require := obstructionStreett(t)
		if stem, loop := FindStreettRun(ts.Out, restrict, nil, require); loop != nil {
			res.Holds = false
			res.Stem, res.Loop = stem, loop
			break
		}
	}
	res.Elapsed = time.Since(start)
	res.record()
	return res
}

// CheckLivelockFreedomStreett is the single full-graph Streett query for
// livelock freedom; see CheckObstructionFreedomStreett.
func CheckLivelockFreedomStreett(ts *explore.TS) Result {
	start := time.Now()
	res := newResult(ts, LivelockFreedom)
	restrict, pairs, require := livelockStreett(ts.Alg.Threads())
	if stem, loop := FindStreettRun(ts.Out, restrict, pairs, require); loop != nil {
		res.Holds = false
		res.Stem, res.Loop = stem, loop
	}
	res.Elapsed = time.Since(start)
	res.record()
	return res
}

// CheckWaitFreedomStreett is the single full-graph Streett query for
// wait freedom; see CheckObstructionFreedomStreett.
func CheckWaitFreedomStreett(ts *explore.TS) Result {
	start := time.Now()
	res := newResult(ts, WaitFreedom)
	for t := core.Thread(0); int(t) < ts.Alg.Threads(); t++ {
		restrict, require := waitStreett(t)
		if stem, loop := FindStreettRun(ts.Out, restrict, nil, require); loop != nil {
			res.Holds = false
			res.Stem, res.Loop = stem, loop
			break
		}
	}
	res.Elapsed = time.Since(start)
	res.record()
	return res
}
