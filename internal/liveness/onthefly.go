package liveness

import (
	"context"
	"errors"
	"strconv"
	"time"

	"tmcheck/internal/core"
	"tmcheck/internal/explore"
	"tmcheck/internal/guard"
	"tmcheck/internal/obs"
	"tmcheck/internal/parbfs"
	"tmcheck/internal/space"
	"tmcheck/internal/tm"
)

// This file is the on-the-fly liveness engine: instead of materializing
// the full managed-TM transition system and then hunting for lassos, it
// drives the lazy explore.Space scan and probes the closed prefix for
// violating loops at BFS level barriers. Any loop (plus its stem) found
// in a prefix uses only real edges of the full system, so reporting it
// immediately is sound; a property can only be declared to HOLD at the
// fixpoint, which the final barrier always probes.
//
// Determinism across engines and worker counts: the scan numbering is
// canonical, the barrier sequence is a function of BFS level sizes only
// (see explore.Barrier), probeDue picks barriers from that sequence
// alone, and the lasso search is a pure function of the prefix — so the
// first violating (prefix, lasso) pair is identical everywhere, and the
// materialized checkTS replays the exact same schedule.

// probeDue is the geometric probe schedule shared by both engines:
// probe the first barrier, then again whenever the expanded prefix has
// at least doubled since the last probe. Total probe cost stays within
// a constant factor of one full-graph search while shallow violations
// are still found early. A function of the expanded counts only, so
// both engines probe identical prefixes.
func probeDue(expanded, lastProbed int) bool {
	return lastProbed == 0 || expanded >= 2*lastProbed
}

// lassoSearch runs one property's violation search on a (possibly
// prefix) adjacency through the shared Streett predicates of
// streett.go. It is a pure deterministic function of its arguments —
// the cornerstone of the cross-engine bit-identity.
func lassoSearch(out [][]explore.Edge, threads int, p Prop) (stem, loop []explore.Edge) {
	switch p {
	case ObstructionFreedom:
		for t := core.Thread(0); int(t) < threads; t++ {
			restrict, require := obstructionStreett(t)
			if stem, loop := FindStreettRun(out, restrict, nil, require); loop != nil {
				return stem, loop
			}
		}
	case LivelockFreedom:
		restrict, pairs, require := livelockStreett(threads)
		return FindStreettRun(out, restrict, pairs, require)
	case WaitFreedom:
		for t := core.Thread(0); int(t) < threads; t++ {
			restrict, require := waitStreett(t)
			if stem, loop := FindStreettRun(out, restrict, nil, require); loop != nil {
				return stem, loop
			}
		}
	}
	return nil, nil
}

// Options configures CheckOnTheFlyOpts.
type Options struct {
	// Workers is the exploration worker count; <= 0 takes the
	// process-wide parbfs.Workers(). One worker runs the sequential
	// scan. Verdicts and lasso words are identical for every value.
	Workers int
	// MaxStates bounds the states interned; <= 0 takes the process-wide
	// space.MaxStates(), where 0 means unbounded. A blown budget fails
	// the check with a *space.BudgetError.
	MaxStates int
	// MaxMem is the heap cap in bytes; 0 takes the process-wide
	// guard.MaxMem(), where 0 means uncapped.
	MaxMem uint64
	// Ctx carries the check's deadline and cancellation; nil means no
	// deadline. The scan consults it at the same points where it checks
	// the state budget.
	Ctx context.Context
	// NoPhases suppresses the obs phase spans (the phase stack assumes a
	// single-threaded spine); counters and bus events still record.
	// Front-ends running checks concurrently (tmcheckd) set it.
	NoPhases bool
	// Persist supplies checkpoint/resume and disk-spill wiring for the
	// TM exploration (see explore.PersistProvider); nil runs plain.
	// Honored by the materialized Table 3 driver only — the on-the-fly
	// engine does not intern a resumable prefix.
	Persist explore.PersistProvider
}

// guard builds one check's guard from the options, resolving unset
// budgets from the process-wide knobs.
func (opts Options) guard() *guard.Guard {
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = space.MaxStates()
	}
	maxMem := opts.MaxMem
	if maxMem == 0 {
		maxMem = guard.MaxMem()
	}
	return guard.New(opts.Ctx, maxStates, maxMem)
}

// CheckOnTheFly checks one liveness property with the on-the-fly engine
// at the process-wide worker count and state budget (the -workers and
// -maxstates flags of cmd/tmcheck).
func CheckOnTheFly(alg tm.Algorithm, cm tm.ContentionManager, p Prop) (Result, error) {
	return CheckOnTheFlyOpts(alg, cm, p, Options{})
}

// CheckOnTheFlyOpts is CheckOnTheFly with explicit options.
func CheckOnTheFlyOpts(alg tm.Algorithm, cm tm.ContentionManager, p Prop, opts Options) (Result, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = parbfs.Workers()
	}
	res, err := checkLazy(alg, cm, []Prop{p}, workers, opts.guard(), !opts.NoPhases)
	if err != nil {
		if len(res) == 1 {
			// Partial outcome: the property may have resolved (a real
			// violation) before the limit tripped, or carries the limit
			// in Result.Limit. The error still reports the stop.
			return res[0], err
		}
		return Result{}, err
	}
	return res[0], nil
}

// CheckAllOnTheFly checks all three properties over a single shared
// exploration: each property resolves (fails) at its own probe, and the
// scan stops early once every property has a violation. Results equal
// three independent CheckOnTheFly calls.
func CheckAllOnTheFly(alg tm.Algorithm, cm tm.ContentionManager) (Table3Row, error) {
	return CheckAllOnTheFlyOpts(alg, cm, Options{})
}

// CheckAllOnTheFlyOpts is CheckAllOnTheFly with explicit options.
func CheckAllOnTheFlyOpts(alg tm.Algorithm, cm tm.ContentionManager, opts Options) (Table3Row, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = parbfs.Workers()
	}
	res, err := checkLazy(alg, cm, Props, workers, opts.guard(), !opts.NoPhases)
	if err != nil {
		if len(res) == 3 {
			// Partial outcome: resolved properties keep their violations,
			// unresolved ones carry the limit in Result.Limit.
			return Table3Row{Obstruction: res[0], Livelock: res[1], Wait: res[2]}, err
		}
		return Table3Row{}, err
	}
	return Table3Row{Obstruction: res[0], Livelock: res[1], Wait: res[2]}, nil
}

// errAllResolved stops the lazy scan once every property has found its
// violation — exploring further could not change any verdict.
var errAllResolved = errors.New("liveness: all properties resolved")

// checkLazy is the engine core: one lazy exploration, probing every
// unresolved property at the scheduled barriers. phase=false suppresses
// the obs span for callers off the single-threaded spine.
//
// When the guard stops the scan, properties already resolved keep their
// violation Results; the unresolved ones carry the *guard.LimitError in
// Result.Limit. The partial results are returned together with the
// error, so keep-going drivers render exactly what was learned.
func checkLazy(alg tm.Algorithm, cm tm.ContentionManager, props []Prop, workers int, g *guard.Guard, phase bool) ([]Result, error) {
	name := systemName(alg, cm)
	if phase {
		done := obs.Phase("liveness-otf:" + name)
		defer done()
	}
	start := time.Now()
	events := obs.EventsEnabled()
	if events {
		obs.Emit(obs.Event{Kind: obs.EvCheckStart, Name: "liveness-otf:" + name})
	}
	threads := alg.Threads()
	results := make([]Result, len(props))
	resolved := make([]bool, len(props))
	remaining := len(props)
	probes := 0
	lastProbed := 0
	finalStates := 1
	emitDone := func(detail string) {
		if events {
			obs.Emit(obs.Event{
				Kind: obs.EvCheckDone, Name: "liveness-otf:" + name,
				States: int64(finalStates), DurNS: time.Since(start).Nanoseconds(),
				Detail: detail,
			})
		}
	}
	var pad [][]explore.Edge
	barrier := func(out [][]explore.Edge, interned, expanded int) error {
		finalStates = interned
		final := expanded == interned
		if !final && !probeDue(expanded, lastProbed) {
			return nil
		}
		lastProbed = expanded
		probes++
		view := out
		if len(view) < interned {
			// The sequential scan hands over only the expanded prefix; pad
			// the discovered-but-unexpanded tail with edgeless states so
			// every edge target is in range. The parallel engine's
			// adjacency already has that shape (nil tails), so both
			// engines probe the identical view.
			pad = append(pad[:0], out...)
			for len(pad) < interned {
				pad = append(pad, nil)
			}
			view = pad
		} else {
			view = view[:interned]
		}
		for i, p := range props {
			if resolved[i] {
				continue
			}
			stem, loop := lassoSearch(view, threads, p)
			if loop == nil {
				continue
			}
			resolved[i] = true
			remaining--
			results[i] = Result{
				System: name, Prop: p, Threads: threads, Vars: alg.Vars(),
				TMStates: interned, Holds: false, Stem: stem, Loop: loop,
				Elapsed: time.Since(start), Engine: space.EngineOnTheFly,
				Expanded: expanded, Probes: probes,
			}
			if events {
				obs.Emit(obs.Event{
					Kind: obs.EvViolation, Name: name + ":" + p.Key(),
					States: int64(interned),
					Detail: "lasso found: stem " + strconv.Itoa(len(stem)) +
						", loop " + strconv.Itoa(len(loop)),
				})
			}
		}
		if remaining == 0 {
			return errAllResolved
		}
		return nil
	}
	if err := explore.ScanLevelsGuarded(alg, cm, workers, g, barrier); err != nil && !errors.Is(err, errAllResolved) {
		var le *guard.LimitError
		if !errors.As(err, &le) {
			emitDone("ERROR: " + err.Error())
			return nil, err
		}
		// Limited scan: resolved properties keep their violations, the
		// rest are marked limited at the states reached.
		for i, p := range props {
			if resolved[i] {
				continue
			}
			results[i] = Result{
				System: name, Prop: p, Threads: threads, Vars: alg.Vars(),
				TMStates: finalStates,
				Elapsed:  time.Since(start), Engine: space.EngineOnTheFly,
				Expanded: lastProbed, Probes: probes, Limit: le,
			}
		}
		for i := range results {
			results[i].recordOTF()
		}
		emitDone("LIMIT: " + le.Error())
		return results, err
	}
	for i, p := range props {
		if resolved[i] {
			continue
		}
		results[i] = Result{
			System: name, Prop: p, Threads: threads, Vars: alg.Vars(),
			TMStates: finalStates, Holds: true,
			Elapsed: time.Since(start), Engine: space.EngineOnTheFly,
			Expanded: finalStates, Probes: probes,
		}
	}
	for i := range results {
		results[i].recordOTF()
	}
	violated := 0
	for i := range results {
		if !results[i].Holds {
			violated++
		}
	}
	emitDone(strconv.Itoa(len(props)-violated) + "/" + strconv.Itoa(len(props)) + " hold")
	return results, nil
}

// recordOTF writes the on-the-fly vitals into the obs registry, keyed
// "liveness.<system>.<prop>.otf.*": states constructed and expanded at
// the verdict (compare against the materialized "liveness.<system>.
// <prop>.tm_states" to see the early-exit win), probes run, and the
// search wall-clock (exploration and probing are interleaved, so the
// whole check is one timer).
func (r Result) recordOTF() {
	if !obs.Enabled() {
		return
	}
	key := "liveness." + r.System + "." + r.Prop.Key() + ".otf"
	obs.Inc(key+".checks", 1)
	obs.SetGauge(key+".tm_states", int64(r.TMStates))
	obs.SetGauge(key+".expanded", int64(r.Expanded))
	obs.Inc(key+".probes", int64(r.Probes))
	if r.Limit != nil {
		obs.Inc(key+".limited", 1)
	} else if !r.Holds {
		obs.SetGauge(key+".loop_len", int64(len(r.Loop)))
		obs.SetGauge(key+".stem_len", int64(len(r.Stem)))
	}
	obs.AddTime(key+".search", r.Elapsed)
}

// Table3OnTheFly is Table3 with the on-the-fly engine and the
// process-wide state budget. Each row runs the sequential scan; with
// the process-wide worker count above one, the rows fan out over the
// pool instead (the coarser parallelism, exactly as Table2OnTheFly) —
// so rows are bit-identical for every worker count. A budget error on
// any row aborts the table.
func Table3OnTheFly(systems []System) ([]Table3Row, error) {
	maxStates := space.MaxStates()
	if workers := parbfs.Workers(); workers > 1 && len(systems) > 1 {
		return table3OnTheFlyPar(systems, workers, maxStates)
	}
	var rows []Table3Row
	for _, sys := range systems {
		res, err := checkLazy(sys.Alg, sys.CM, Props, 1, guard.Process(nil, maxStates), true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{Obstruction: res[0], Livelock: res[1], Wait: res[2]})
	}
	return rows, nil
}

// table3OnTheFlyPar fans the rows out over the worker pool; per-row obs
// phases are skipped (the phase stack assumes a single-threaded spine)
// but counters and rows match the sequential driver.
func table3OnTheFlyPar(systems []System, workers, maxStates int) ([]Table3Row, error) {
	done := obs.Phase("liveness:table3-onthefly-parallel")
	defer done()
	rows := make([]Table3Row, len(systems))
	errs := make([]error, len(systems))
	parbfs.For(len(systems), workers, func(i int) {
		sys := systems[i]
		res, err := checkLazy(sys.Alg, sys.CM, Props, 1, guard.Process(nil, maxStates), false)
		if err != nil {
			errs[i] = err
			return
		}
		rows[i] = Table3Row{Obstruction: res[0], Livelock: res[1], Wait: res[2]}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// Table3Materialized is Table3 through the materialized engine. Without
// a global -maxstates budget it is exactly Table3 (shared per-row
// exploration, row fan-out at workers > 1). With a budget set, each
// row's exploration goes through explore.BuildBudget instead, and a
// typed *space.BudgetError aborts the table, matching the on-the-fly
// driver's contract.
func Table3Materialized(systems []System) ([]Table3Row, error) {
	maxStates := space.MaxStates()
	if maxStates <= 0 {
		return Table3(systems), nil
	}
	workers := parbfs.Workers()
	if workers > 1 && len(systems) > 1 {
		done := obs.Phase("liveness:table3-parallel")
		defer done()
		rows := make([]Table3Row, len(systems))
		errs := make([]error, len(systems))
		parbfs.For(len(systems), workers, func(i int) {
			rows[i], errs[i] = table3RowBudget(systems[i], 1, maxStates)
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return rows, nil
	}
	var rows []Table3Row
	for _, sys := range systems {
		row, err := table3RowBudget(sys, workers, maxStates)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// table3RowBudget materializes one system under the state budget and
// runs the three checks on it.
func table3RowBudget(sys System, workers, maxStates int) (Table3Row, error) {
	buildStart := time.Now()
	ts, err := explore.BuildBudget(sys.Alg, sys.CM, workers, maxStates)
	if err != nil {
		return Table3Row{}, err
	}
	row := Table3Row{
		Obstruction: CheckObstructionFreedom(ts),
		Livelock:    CheckLivelockFreedom(ts),
		Wait:        CheckWaitFreedom(ts),
	}
	row.Obstruction.BuildElapsed = time.Since(buildStart)
	return row, nil
}

// systemName names the system without constructing anything.
func systemName(alg tm.Algorithm, cm tm.ContentionManager) string {
	if cm == nil {
		return alg.Name()
	}
	return alg.Name() + "+" + cm.Name()
}
