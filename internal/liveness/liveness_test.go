package liveness

import (
	"testing"

	"tmcheck/internal/explore"
	"tmcheck/internal/tm"
)

// TestTheorem6Table3 reproduces the paper's Table 3 and Theorem 6: DSTM
// with the aggressive manager is obstruction free, everything else is not;
// no system is livelock free (hence none is wait free).
func TestTheorem6Table3(t *testing.T) {
	rows := Table3(PaperSystems(2, 1))
	names := []string{"seq", "2pl", "dstm+aggressive", "tl2+polite"}
	wantObstruction := []bool{false, false, true, false}
	for i, row := range rows {
		if row.Obstruction.System != names[i] {
			t.Errorf("row %d system = %q, want %q", i, row.Obstruction.System, names[i])
		}
		if row.Obstruction.Holds != wantObstruction[i] {
			t.Errorf("%s: obstruction freedom = %v, want %v (loop %q)",
				names[i], row.Obstruction.Holds, wantObstruction[i], row.Obstruction.LoopWord())
		}
		if row.Livelock.Holds {
			t.Errorf("%s: livelock freedom should fail", names[i])
		}
		if row.Wait.Holds {
			t.Errorf("%s: wait freedom should fail", names[i])
		}
		t.Logf("%-16s size=%-5d obstruction=%v (loop %q) livelock=%v (loop %q)",
			names[i], row.Obstruction.TMStates,
			row.Obstruction.Holds, row.Obstruction.LoopWord(),
			row.Livelock.Holds, row.Livelock.LoopWord())
	}
}

// The seq, 2PL, and TL2+polite obstruction-freedom counterexamples in the
// paper are the single-abort loop "a1" (one thread aborting forever while
// another holds the resource). Check the loop shape: all statements from
// one thread, at least one abort, no commit.
func TestObstructionLoopShape(t *testing.T) {
	for _, sys := range []System{
		{Alg: tm.NewSeq(2, 1)},
		{Alg: tm.NewTwoPL(2, 1)},
		{Alg: tm.NewTL2(2, 1), CM: tm.Polite{}},
	} {
		ts := explore.Build(sys.Alg, sys.CM)
		res := CheckObstructionFreedom(ts)
		if res.Holds {
			t.Errorf("%s: expected an obstruction-freedom violation", ts.Name())
			continue
		}
		if len(res.Loop) == 0 {
			t.Errorf("%s: missing loop", ts.Name())
			continue
		}
		thread := res.Loop[0].T
		hasAbort := false
		for _, e := range res.Loop {
			if e.T != thread {
				t.Errorf("%s: loop mixes threads: %q", ts.Name(), res.LoopWord())
			}
			if e.X.Kind == tm.XCommit {
				t.Errorf("%s: loop contains a commit: %q", ts.Name(), res.LoopWord())
			}
			if e.X.Kind == tm.XAbort {
				hasAbort = true
			}
		}
		if !hasAbort {
			t.Errorf("%s: loop lacks an abort: %q", ts.Name(), res.LoopWord())
		}
	}
}

// The paper's minimal counterexamples are a single abort; our search finds
// loops of the same length for seq and 2PL.
func TestMinimalAbortLoops(t *testing.T) {
	for _, sys := range []System{
		{Alg: tm.NewSeq(2, 1)},
		{Alg: tm.NewTwoPL(2, 1)},
	} {
		ts := explore.Build(sys.Alg, sys.CM)
		res := CheckObstructionFreedom(ts)
		if res.Holds {
			t.Fatalf("%s: expected violation", ts.Name())
		}
		if len(res.Loop) != 1 || res.Loop[0].X.Kind != tm.XAbort {
			t.Errorf("%s: loop = %q, want a single abort", ts.Name(), res.LoopWord())
		}
	}
}

// DSTM+aggressive's livelock loop must abort every participating thread
// and never commit — the shape of the paper's w2.
func TestDSTMAggressiveLivelockLoop(t *testing.T) {
	ts := explore.Build(tm.NewDSTM(2, 1), tm.Aggressive{})
	res := CheckLivelockFreedom(ts)
	if res.Holds {
		t.Fatal("dstm+aggressive should not be livelock free")
	}
	abortsOf := map[int]bool{}
	statementsOf := map[int]bool{}
	for _, e := range res.Loop {
		statementsOf[int(e.T)] = true
		if e.X.Kind == tm.XAbort {
			abortsOf[int(e.T)] = true
		}
		if e.X.Kind == tm.XCommit {
			t.Errorf("loop contains a commit: %q", res.LoopWord())
		}
	}
	for th := range statementsOf {
		if !abortsOf[th] {
			t.Errorf("thread %d has statements but no abort in loop %q", th+1, res.LoopWord())
		}
	}
	// The paper's w2 uses both threads: a one-thread livelock loop would
	// contradict obstruction freedom.
	if len(statementsOf) < 2 {
		t.Errorf("expected a two-thread livelock loop, got %q", res.LoopWord())
	}
}

// The stem must lead from the initial state to the loop: replaying
// stem+loop edge targets must be consistent.
func TestStemConnectsToLoop(t *testing.T) {
	ts := explore.Build(tm.NewTwoPL(2, 1), nil)
	res := CheckObstructionFreedom(ts)
	if res.Holds {
		t.Fatal("expected violation")
	}
	// Verify the stem is a valid path from state 0 and ends where the loop
	// begins, and that the loop returns to its start.
	cur := int32(0)
	for _, e := range res.Stem {
		found := false
		for _, e2 := range ts.Out[cur] {
			if e2 == e {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("stem edge %v not found from state %d", e, cur)
		}
		cur = e.To
	}
	loopStart := cur
	for _, e := range res.Loop {
		found := false
		for _, e2 := range ts.Out[cur] {
			if e2 == e {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("loop edge %v not found from state %d", e, cur)
		}
		cur = e.To
	}
	if cur != loopStart {
		t.Fatalf("loop does not close: start %d, end %d", loopStart, cur)
	}
}

// Wait freedom must fail even for systems that are obstruction free: a
// wait-free TM would need every transaction to commit eventually, but
// DSTM+aggressive can abort one thread whenever another keeps committing.
func TestWaitFreedomStrictlyStronger(t *testing.T) {
	ts := explore.Build(tm.NewDSTM(2, 1), tm.Aggressive{})
	obstruction := CheckObstructionFreedom(ts)
	wait := CheckWaitFreedom(ts)
	if !obstruction.Holds {
		t.Error("dstm+aggressive should be obstruction free")
	}
	if wait.Holds {
		t.Error("dstm+aggressive should not be wait free")
	}
}

// Liveness verdicts are stable at (2,2): the reduction theorem says (2,1)
// suffices, and adding a variable must not rescue any property.
func TestLivenessAtTwoVars(t *testing.T) {
	rows := Table3(PaperSystems(2, 2))
	wantObstruction := []bool{false, false, true, false}
	for i, row := range rows {
		if row.Obstruction.Holds != wantObstruction[i] {
			t.Errorf("%s at (2,2): obstruction freedom = %v, want %v",
				row.Obstruction.System, row.Obstruction.Holds, wantObstruction[i])
		}
		if row.Livelock.Holds {
			t.Errorf("%s at (2,2): livelock freedom should fail", row.Livelock.System)
		}
	}
}

// A sequential TM with a single thread is trivially obstruction free,
// livelock free and wait free: nothing ever aborts.
func TestSingleThreadIsLive(t *testing.T) {
	ts := explore.Build(tm.NewSeq(1, 1), nil)
	if res := CheckObstructionFreedom(ts); !res.Holds {
		t.Errorf("single-thread seq: obstruction freedom fails with %q", res.LoopWord())
	}
	if res := CheckLivelockFreedom(ts); !res.Holds {
		t.Errorf("single-thread seq: livelock freedom fails with %q", res.LoopWord())
	}
	if res := CheckWaitFreedom(ts); !res.Holds {
		t.Errorf("single-thread seq: wait freedom fails with %q", res.LoopWord())
	}
}

// Verdicts must be consistent between (2,1) and (2,2) for every registered
// TM × manager combination: the liveness reduction theorem says (2,1)
// suffices, so adding a variable must never change a verdict.
func TestVerdictsStableAcrossInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("builds many systems")
	}
	for _, name := range []string{"seq", "2pl", "dstm", "tl2", "norec", "etl"} {
		for _, cmName := range []string{"", "aggressive", "polite", "karma", "timid"} {
			verdicts := make([]bool, 2)
			for i, k := range []int{1, 2} {
				alg, err := tm.NewAlgorithm(name, 2, k)
				if err != nil {
					t.Fatal(err)
				}
				cm, err := tm.NewContentionManager(cmName)
				if err != nil {
					t.Fatal(err)
				}
				ts := explore.Build(alg, cm)
				verdicts[i] = CheckObstructionFreedom(ts).Holds
			}
			if verdicts[0] != verdicts[1] {
				t.Errorf("%s+%s: obstruction freedom differs between k=1 (%v) and k=2 (%v)",
					name, cmName, verdicts[0], verdicts[1])
			}
		}
	}
}

// Program-restricted liveness: DSTM is not obstruction free in general,
// but a read-only workload never conflicts, so every liveness property
// holds there — the checkers run unchanged on the restricted system.
func TestDSTMReadOnlyWorkloadIsLive(t *testing.T) {
	ts := explore.BuildRestricted(tm.NewDSTM(2, 2), nil,
		[]explore.ThreadProgram{explore.ReadOnlyProgram{}, explore.ReadOnlyProgram{}})
	if res := CheckObstructionFreedom(ts); !res.Holds {
		t.Errorf("read-only DSTM: obstruction freedom fails with %q", res.LoopWord())
	}
	if res := CheckLivelockFreedom(ts); !res.Holds {
		t.Errorf("read-only DSTM: livelock freedom fails with %q", res.LoopWord())
	}
	if res := CheckWaitFreedom(ts); !res.Holds {
		t.Errorf("read-only DSTM: wait freedom fails with %q", res.LoopWord())
	}
	// One writer is already enough to break it again.
	mixed := explore.BuildRestricted(tm.NewDSTM(2, 1), tm.Polite{},
		[]explore.ThreadProgram{explore.ReadOnlyProgram{}, nil})
	if res := CheckObstructionFreedom(mixed); res.Holds {
		t.Error("reader+writer DSTM+polite should not be obstruction free")
	}
}

func TestPropString(t *testing.T) {
	if ObstructionFreedom.String() != "obstruction freedom" ||
		LivelockFreedom.String() != "livelock freedom" ||
		WaitFreedom.String() != "wait freedom" {
		t.Error("Prop names wrong")
	}
}
