package liveness

import (
	"reflect"
	"testing"
)

// TestTable3ParallelMatchesSequential drives the concurrent Table 3
// path explicitly and checks the rows — verdicts and counterexample
// loops — against the sequential driver.
func TestTable3ParallelMatchesSequential(t *testing.T) {
	systems := PaperSystems(2, 1)
	seq := table3Seq(systems)
	par := table3Par(systems, 4)
	if len(par) != len(seq) {
		t.Fatalf("row count: parallel %d, sequential %d", len(par), len(seq))
	}
	for i := range seq {
		for _, c := range []struct {
			name     string
			seq, par Result
		}{
			{"obstruction", seq[i].Obstruction, par[i].Obstruction},
			{"livelock", seq[i].Livelock, par[i].Livelock},
			{"wait", seq[i].Wait, par[i].Wait},
		} {
			if c.par.Holds != c.seq.Holds || c.par.TMStates != c.seq.TMStates {
				t.Errorf("row %d %s: parallel (%v,%d) != sequential (%v,%d)",
					i, c.name, c.par.Holds, c.par.TMStates,
					c.seq.Holds, c.seq.TMStates)
			}
			if !reflect.DeepEqual(c.par.Loop, c.seq.Loop) ||
				!reflect.DeepEqual(c.par.Stem, c.seq.Stem) {
				t.Errorf("row %d %s: counterexample lassos diverge", i, c.name)
			}
		}
	}
}
