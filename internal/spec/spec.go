// Package spec implements the paper's TM specifications for safety (§5):
// finite-state transition systems whose languages are exactly the strictly
// serializable (πss) respectively opaque (πop) words over a bounded number
// of threads and variables.
//
// Two constructions are provided, mirroring the paper:
//
//   - the nondeterministic specifications Σss and Σop (Algorithm 5,
//     nondetSpec), in which every transaction nondeterministically guesses
//     its serialization point via an internal ε(t) transition;
//   - the deterministic specifications Σdss and Σdop (Algorithm 6,
//     detSpec), which track weak and strong predecessor sets instead of
//     guessing.
//
// The nondeterministic construction is the natural one and is validated
// against the brute-force oracles of internal/core; the deterministic one
// is validated against the nondeterministic one by antichain language
// equivalence (the paper's Theorem 3). Safety checking of a TM then
// reduces to language inclusion of the TM's transition system in the
// deterministic specification.
package spec

// Property selects the safety property a specification captures.
type Property uint8

// The two safety properties of §2.
const (
	StrictSerializability Property = iota
	Opacity
)

// String names the property as in the paper.
func (p Property) String() string {
	if p == Opacity {
		return "opacity"
	}
	return "strict serializability"
}

// Key is the short identifier used in metric names and reports: "ss"
// for strict serializability, "op" for opacity.
func (p Property) Key() string {
	if p == Opacity {
		return "op"
	}
	return "ss"
}

// Thread statuses shared by both specifications. The paper uses
// {started, invalid, serialized, finished} for the nondeterministic
// specification and {started, invalid, pending, finished} for the
// deterministic one; serialized and pending occupy the same slot.
const (
	stFinished uint8 = iota
	stStarted
	stInvalid
	stSerialized // nondeterministic spec: ε taken
	stPending    // deterministic spec: must serialize before a past commit
	// stInvalidSer marks a thread of the nondeterministic specification
	// that serialized (took its ε) and then became unable to commit. For
	// opacity its serialization standing still matters: it remains in the
	// serialized set, so later committers record it as a predecessor and
	// keep extending its prohibited read set.
	stInvalidSer
)
