package spec

import (
	"fmt"
	"reflect"
	"testing"

	"tmcheck/internal/automata"
)

// dims are the instance sizes the reduction theorems need; the
// equivalence must hold on every one of them.
var parDims = []struct{ n, k int }{{2, 1}, {2, 2}}

// TestDetEnumerateWorkersEquivalent checks that the parallel DFA
// enumeration is bit-identical — same numbering, same transitions — to
// the sequential one, for both properties at (2,1) and (2,2).
func TestDetEnumerateWorkersEquivalent(t *testing.T) {
	for _, prop := range []Property{StrictSerializability, Opacity} {
		for _, d := range parDims {
			t.Run(fmt.Sprintf("%s-n%dk%d", prop.Key(), d.n, d.k), func(t *testing.T) {
				seq := NewDet(prop, d.n, d.k).EnumerateWorkers(1)
				for _, workers := range []int{2, 4} {
					par := NewDet(prop, d.n, d.k).EnumerateWorkers(workers)
					if par.NumStates() != seq.NumStates() {
						t.Fatalf("workers=%d: %d states, sequential has %d",
							workers, par.NumStates(), seq.NumStates())
					}
					for s := 0; s < seq.NumStates(); s++ {
						for l := 0; l < seq.Alphabet(); l++ {
							if par.Succ(s, l) != seq.Succ(s, l) {
								t.Fatalf("workers=%d: δ(%d,%d) = %d, sequential %d",
									workers, s, l, par.Succ(s, l), seq.Succ(s, l))
							}
						}
					}
				}
			})
		}
	}
}

// TestNondetEnumerateWorkersEquivalent is the same cross-check for the
// nondeterministic specification's NFA, including ε-edge order.
func TestNondetEnumerateWorkersEquivalent(t *testing.T) {
	for _, prop := range []Property{StrictSerializability, Opacity} {
		for _, d := range parDims {
			t.Run(fmt.Sprintf("%s-n%dk%d", prop.Key(), d.n, d.k), func(t *testing.T) {
				seq := NewNondet(prop, d.n, d.k).EnumerateWorkers(1)
				for _, workers := range []int{2, 4} {
					par := NewNondet(prop, d.n, d.k).EnumerateWorkers(workers)
					if !nfasEqual(par, seq) {
						t.Fatalf("workers=%d: NFA diverges from sequential enumeration", workers)
					}
				}
			})
		}
	}
}

func nfasEqual(a, b *automata.NFA) bool {
	if a.NumStates() != b.NumStates() || a.Alphabet() != b.Alphabet() {
		return false
	}
	for s := 0; s < a.NumStates(); s++ {
		for l := 0; l < a.Alphabet(); l++ {
			if !reflect.DeepEqual(a.Succ(s, l), b.Succ(s, l)) {
				return false
			}
		}
		if !reflect.DeepEqual(a.EpsSucc(s), b.EpsSucc(s)) {
			return false
		}
	}
	return true
}
