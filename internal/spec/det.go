package spec

import (
	"fmt"
	"time"

	"tmcheck/internal/automata"
	"tmcheck/internal/core"
	"tmcheck/internal/guard"
	"tmcheck/internal/obs"
	"tmcheck/internal/parbfs"
	"tmcheck/internal/space"
	"tmcheck/internal/tm"
)

// DState is a state of the deterministic specification (Algorithm 6):
// per-thread status, read/write sets, prohibited read/write sets, weak
// predecessor set, and strong predecessor set.
type DState struct {
	Status [tm.MaxThreads]uint8
	RS     [tm.MaxThreads]core.VarSet
	WS     [tm.MaxThreads]core.VarSet
	PRS    [tm.MaxThreads]core.VarSet
	PWS    [tm.MaxThreads]core.VarSet
	WP     [tm.MaxThreads]core.ThreadSet
	SP     [tm.MaxThreads]core.ThreadSet
}

// Det is the deterministic TM specification Σdss / Σdop: instead of
// guessing serialization points, it tracks weak predecessors (u must
// serialize before t if both commit) and strong predecessors (u must
// serialize before t outright), together with prohibited read and write
// sets. The status "pending" marks a transaction with a commit-dependent
// predecessor: it must serialize before a transaction that has already
// committed.
type Det struct {
	Prop    Property
	Threads int
	Vars    int
}

// NewDet returns Σdss (prop = StrictSerializability) or Σdop
// (prop = Opacity) for n threads and k variables.
func NewDet(prop Property, n, k int) *Det {
	tm.CheckBounds(n, k)
	return &Det{Prop: prop, Threads: n, Vars: k}
}

// Initial returns q_init: all statuses finished, all sets empty.
func (sp *Det) Initial() DState { return DState{} }

func resetDet(q *DState, t core.Thread, n int) {
	q.Status[t] = stFinished
	q.RS[t] = 0
	q.WS[t] = 0
	q.PRS[t] = 0
	q.PWS[t] = 0
	q.WP[t] = 0
	q.SP[t] = 0
	for u := 0; u < n; u++ {
		if u != int(t) {
			q.WP[u] = q.WP[u].Remove(t)
			q.SP[u] = q.SP[u].Remove(t)
		}
	}
}

// begin starts a fresh transaction for thread t when its status is
// finished: every thread with a pending transaction — and, transitively,
// the strong predecessors of pending threads — must serialize before t,
// because pending transactions serialize before commits that have already
// happened. It returns the set U ∪ U′ of acquired strong predecessors.
//
// Deviation from the printed algorithm (see DESIGN.md): under opacity,
// invalid threads are collected alongside pending ones. An invalid thread
// is pinned before a past commit just like a pending one (every path to
// invalid passes through a predecessor set); although it can never commit,
// its remaining reads must stay consistent with that pin, so later
// committers must learn about it through the new transaction's predecessor
// sets. The printed rule collects only pending threads, which lets a
// doomed transaction read a value committed after its pin.
func (sp *Det) begin(q *DState, t core.Thread) core.ThreadSet {
	if q.Status[t] != stFinished {
		return 0
	}
	var u, uPrime core.ThreadSet
	for x := 0; x < sp.Threads; x++ {
		if q.Status[x] == stPending ||
			(sp.Prop == Opacity && q.Status[x] == stInvalid) {
			u = u.Add(core.Thread(x))
			uPrime = uPrime.Union(q.SP[x])
		}
	}
	q.WP[t] = q.WP[t].Union(u)
	q.SP[t] = q.SP[t].Union(u).Union(uPrime)
	q.Status[t] = stStarted
	return u.Union(uPrime)
}

// addStrictPreds records that every member of ms strictly precedes
// receiver, and eagerly detects the resulting contradictions: a member m
// that must also come after the receiver if m commits (receiver ∈ wp(m))
// can never commit and becomes invalid on the spot.
//
// Deviation from the printed algorithm (see DESIGN.md): the printed
// detSpec defers this contradiction to m's commit-time closure check,
// which is sound only while the constraint graph persists — but the
// weak-predecessor edge may have been contributed by a transaction that
// later aborts and is reset, erasing the evidence. Opacity makes read
// obligations of aborted transactions permanent, so the contradiction
// must be recorded the moment it forms. (The printed write rule already
// performs the mirror-image eager check.) Found by the 4-thread fuzzer.
func (sp *Det) addStrictPreds(q *DState, receiver int, ms core.ThreadSet) {
	q.SP[receiver] = q.SP[receiver].Union(ms)
	for _, m := range ms.Threads() {
		if q.WP[m].Has(core.Thread(receiver)) {
			q.Status[m] = stInvalid
		}
	}
}

// Step is the detSpec procedure: it returns the successor state, or
// ok = false when the statement is not allowed (the procedure's ⊥).
func (sp *Det) Step(q DState, s core.Stmt) (DState, bool) {
	t := s.T
	ti := int(t)
	switch s.Cmd.Op {
	case core.OpRead:
		v := s.Cmd.V
		if q.WS[ti].Has(v) {
			return q, true // not a global read
		}
		// newSP accumulates the strong predecessors t acquires by this
		// read, to be propagated transitively below.
		var newSP core.ThreadSet
		if sp.Prop == Opacity {
			// Reading v is impossible when v is prohibited for t directly
			// or for a transaction t must serialize before.
			for u := 0; u < sp.Threads; u++ {
				if !q.PRS[u].Has(v) {
					continue
				}
				if u == ti || q.SP[u].Has(t) {
					return q, false
				}
				// Threads prohibited from reading v serialize before v's
				// committed writer; t, reading v after that commit, gains
				// them as strong predecessors.
				newSP = newSP.Add(core.Thread(u))
			}
		}
		newSP = newSP.Union(sp.begin(&q, t))
		q.RS[ti] = q.RS[ti].Add(v)
		if q.PRS[ti].Has(v) {
			q.Status[ti] = stInvalid
		}
		for u := 0; u < sp.Threads; u++ {
			if q.WS[u].Has(v) {
				q.WP[u] = q.WP[u].Add(t)
			}
			if q.PRS[u].Has(v) {
				q.WP[ti] = q.WP[ti].Add(core.Thread(u))
			}
		}
		if sp.Prop == StrictSerializability {
			return q, true
		}
		for u := 0; u < sp.Threads; u++ {
			if u == ti || q.SP[u].Has(t) {
				sp.addStrictPreds(&q, u, newSP)
			}
		}
		for u := 0; u < sp.Threads; u++ {
			if u != ti && q.SP[ti].Has(core.Thread(u)) {
				q.PWS[u] = q.PWS[u].Add(v)
				if q.WS[u].Has(v) {
					q.Status[u] = stInvalid
				}
			}
		}
		return q, true

	case core.OpWrite:
		v := s.Cmd.V
		sp.begin(&q, t)
		q.WS[ti] = q.WS[ti].Add(v)
		if q.PWS[ti].Has(v) {
			q.Status[ti] = stInvalid
		}
		for u := 0; u < sp.Threads; u++ {
			if u == ti {
				continue
			}
			if q.RS[u].Has(v) {
				q.WP[ti] = q.WP[ti].Add(core.Thread(u))
				if sp.Prop == Opacity && q.SP[u].Has(t) {
					q.Status[ti] = stInvalid
				}
			}
			if q.PWS[u].Has(v) {
				q.WP[ti] = q.WP[ti].Add(core.Thread(u))
			}
		}
		return q, true

	case core.OpCommit:
		if q.WP[ti].Has(t) {
			return q, false
		}
		if q.Status[ti] == stInvalid {
			return q, false
		}
		var uClose core.ThreadSet
		if sp.Prop == Opacity {
			// The closure of weak predecessors under strong predecessors:
			// if it contains t itself, t would have to serialize before
			// its own commit's predecessors — impossible.
			uClose = q.WP[ti]
			for u := 0; u < sp.Threads; u++ {
				if q.WP[ti].Has(core.Thread(u)) {
					uClose = uClose.Union(q.SP[u])
				}
			}
			if uClose.Has(t) {
				return q, false
			}
		}
		wsT, rsT := q.WS[ti], q.RS[ti]
		prsT, pwsT := q.PRS[ti], q.PWS[ti]
		wpT := q.WP[ti]
		// Deviation from the printed algorithm (see DESIGN.md): under
		// opacity the pending/prohibited-set updates must reach the whole
		// closure U — the weak predecessors AND their strict predecessors
		// — not just wp(t). A member m ∈ sp(u) with u ∈ wp(t) satisfies
		// m < u unconditionally and u < t firmly now that t commits, so m
		// is pinned before this commit exactly like u. The printed rule
		// updates only wp(t); transitive predecessors then miss their
		// prohibited reads, which a fuzz soak exposed at three threads
		// (invisible at two, where the closure beyond wp(t) can only
		// contain t itself).
		members := wpT
		if sp.Prop == Opacity {
			members = uClose
		}
		for u := 0; u < sp.Threads; u++ {
			if u == ti || !members.Has(core.Thread(u)) {
				continue
			}
			// u must serialize before the now-committed t. A thread that is
			// already invalid stays invalid — pending must not resurrect
			// its chance to commit.
			if q.WS[u].Intersects(wsT) {
				q.Status[u] = stInvalid
			} else if q.Status[u] != stInvalid {
				q.Status[u] = stPending
			}
			q.PRS[u] = q.PRS[u].Union(prsT).Union(wsT)
			q.PWS[u] = q.PWS[u].Union(pwsT).Union(wsT).Union(rsT)
			// Weak predecessors propagate: anything that had to serialize
			// after t (t in its wp set, or a write-write conflict with t)
			// must now also serialize after u, since u precedes t.
			for u2 := 0; u2 < sp.Threads; u2++ {
				if q.WP[u2].Has(t) {
					q.WP[u2] = q.WP[u2].Add(core.Thread(u))
				}
				if q.WS[u2].Intersects(wsT) {
					q.WP[u2] = q.WP[u2].Add(core.Thread(u))
				}
			}
		}
		if sp.Prop == Opacity {
			for u := 0; u < sp.Threads; u++ {
				if u == ti || q.SP[u].Has(t) {
					sp.addStrictPreds(&q, u, uClose)
				}
			}
		}
		resetDet(&q, t, sp.Threads)
		return q, true

	case core.OpAbort:
		// Deviation from the printed algorithm (see DESIGN.md): under
		// opacity the aborting thread's constraints do not all die with
		// it. Its strict predecessors are pinned before it outright, and
		// the chain continues through it: anything that must follow t if
		// it commits (t ∈ wp(z)) must then also follow t's strict
		// predecessors, and anything t strictly precedes (t ∈ sp(z))
		// inherits them as strict predecessors. The commit rule performs
		// exactly this propagation ("for all u′ such that t ∈ wp(u′):
		// wp(u′) ∪= {u}"); the printed abort rule resets without it,
		// losing obligations carried only by the aborted transaction —
		// the 4-thread fuzz soak found words slipping through. Note that
		// wp(t) itself rightly evaporates: those edges were conditional
		// on t committing.
		if sp.Prop == Opacity {
			spT := q.SP[ti]
			for z := 0; z < sp.Threads; z++ {
				if z == ti {
					continue
				}
				if q.WP[z].Has(t) {
					q.WP[z] = q.WP[z].Union(spT)
				}
				if q.SP[z].Has(t) {
					sp.addStrictPreds(&q, z, spT)
				}
			}
		}
		resetDet(&q, t, sp.Threads)
		return q, true
	}
	return q, false
}

// Accepts reports whether w ∈ L(Σd) by direct simulation.
func (sp *Det) Accepts(w core.Word) bool {
	ok, _ := sp.AcceptsStates(w)
	return ok
}

// AcceptsStates is Accepts also reporting the number of specification
// states visited by the simulation (the initial state plus one per
// consumed letter) — the unit the fuzzer charges against its state
// budget.
func (sp *Det) AcceptsStates(w core.Word) (bool, int) {
	q := sp.Initial()
	visited := 1
	for _, s := range w {
		var ok bool
		q, ok = sp.Step(q, s)
		if !ok {
			return false, visited
		}
		visited++
	}
	return true, visited
}

// Enumerate builds the explicit DFA of the specification over the
// instance alphabet, with the process-wide worker count. The
// enumeration size and time are recorded under
// "spec.det.<prop>.n<n>k<k>.*" in the obs registry.
func (sp *Det) Enumerate() *automata.DFA {
	return sp.EnumerateWorkers(parbfs.Workers())
}

// EnumerateWorkers is Enumerate with an explicit worker count. The
// resulting DFA — state numbering and edges — is identical for every
// worker count (see internal/parbfs).
func (sp *Det) EnumerateWorkers(workers int) *automata.DFA {
	dfa, err := sp.EnumerateBudget(workers, 0) // unbounded: only a panic can fail it
	if err != nil {
		panic(err)
	}
	return dfa
}

// EnumerateBudget is EnumerateWorkers with a state budget: when
// maxStates > 0 and the specification has more reachable states, the
// enumeration stops with a *space.BudgetError instead of materializing
// it (the parallel engine checks at level barriers, so it may overshoot
// by one BFS level). maxStates <= 0 means unbounded.
func (sp *Det) EnumerateBudget(workers, maxStates int) (*automata.DFA, error) {
	return sp.EnumerateGuarded(workers, guard.New(nil, maxStates, 0))
}

// EnumerateGuarded is the fully guarded enumeration: the guard's
// context, state budget, and heap watchdog are consulted per state in
// the sequential path and at level barriers in the parallel one, and a
// panicking specification is isolated into a *guard.LimitError.
func (sp *Det) EnumerateGuarded(workers int, g *guard.Guard) (dfa *automata.DFA, err error) {
	start := time.Now()
	ab := core.Alphabet{Threads: sp.Threads, Vars: sp.Vars}
	dfa = automata.NewDFA(ab.Size())
	err = guard.Capture(func() error {
		if workers <= 1 {
			return sp.enumerateSeq(dfa, g)
		}
		return sp.enumeratePar(dfa, ab, workers, g)
	})
	if err != nil {
		return nil, err
	}
	if obs.Enabled() {
		key := fmt.Sprintf("spec.det.%s.n%dk%d", sp.Prop.Key(), sp.Threads, sp.Vars)
		obs.Inc(key+".enumerations", 1)
		obs.Inc(key+".states", int64(dfa.NumStates()))
		obs.AddTime(key+".enumerate", time.Since(start))
	}
	return dfa, nil
}

// enumerateSeq is the sequential scan-order enumeration: a Scan of the
// lazy view to its fixpoint, materializing each defined transition into
// the DFA. The numbering is first-sight scan order, exactly as the
// pre-Space enumerator hand-rolled it.
func (sp *Det) enumerateSeq(dfa *automata.DFA, g *guard.Guard) error {
	lz := NewLazy(sp)
	_, err := space.ScanGuarded(lz, g, func(from space.State, l space.Letter, to space.State) {
		for dfa.NumStates() <= int(to) {
			dfa.AddState() // state 0 is pre-allocated by NewDFA
		}
		dfa.SetEdge(int(from), int(l), int(to))
	})
	return err
}

// enumeratePar is the frontier-parallel enumeration via the shared
// parbfs engine; the canonical per-level numbering makes the DFA
// bit-identical to enumerateSeq.
func (sp *Det) enumeratePar(dfa *automata.DFA, ab core.Alphabet, workers int, g *guard.Guard) error {
	var states []DState
	// letters[id] records which letters had an enabled Step from state
	// id, aligned with that state's emissions.
	var letters [][]int16
	var control func(states int) error
	if g.Active() {
		control = g.Check
	}
	_, err := parbfs.RunControlled(sp.Initial(), workers, control,
		func(id int, emit func(DState)) {
			q := states[id]
			var ls []int16
			for l := 0; l < ab.Size(); l++ {
				if q2, ok := sp.Step(q, ab.Decode(l)); ok {
					ls = append(ls, int16(l))
					emit(q2)
				}
			}
			letters[id] = ls
		},
		func(id int, q DState) {
			if id > 0 {
				dfa.AddState() // state 0 is pre-allocated by NewDFA
			}
			states = append(states, q)
			letters = append(letters, nil)
		},
		func(id int, succ []int32) {
			for j, l := range letters[id] {
				dfa.SetEdge(id, int(l), int(succ[j]))
			}
			letters[id] = nil
		},
	)
	return err
}
