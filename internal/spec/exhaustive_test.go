package spec

import (
	"testing"

	"tmcheck/internal/core"
)

// Exhaustive validation on a small instance: for EVERY word of length ≤ 6
// over 2 threads and 1 variable, the deterministic specification, the
// nondeterministic specification and the conflict-graph oracle agree.
// Rejected prefixes are pruned (all three languages are prefix closed, a
// fact checked as we go).
func TestExhaustiveAgreement21(t *testing.T) {
	const maxLen = 6
	ab := core.Alphabet{Threads: 2, Vars: 1}
	for _, prop := range []Property{StrictSerializability, Opacity} {
		det := NewDet(prop, 2, 1)
		nd := NewNondet(prop, 2, 1)
		oracle := oracleFor(prop)
		words := 0
		var rec func(w core.Word, detState DState, detAlive bool)
		rec = func(w core.Word, detState DState, detAlive bool) {
			if len(w) == maxLen {
				return
			}
			for l := 0; l < ab.Size(); l++ {
				s := ab.Decode(l)
				w2 := append(w[:len(w):len(w)], s)
				words++
				want := oracle(w2)
				var nextDet DState
				gotDet := false
				if detAlive {
					var ok bool
					nextDet, ok = det.Step(detState, s)
					gotDet = ok
				}
				if gotDet != want {
					t.Fatalf("%v: det=%v oracle=%v on %q", prop, gotDet, want, w2)
				}
				if gotNd := nd.Accepts(w2); gotNd != want {
					t.Fatalf("%v: nondet=%v oracle=%v on %q", prop, gotNd, want, w2)
				}
				if want {
					rec(w2, nextDet, true)
				}
				// Rejected words need no recursion: all three languages
				// are prefix closed, so every extension is rejected too —
				// spot-check the oracle's prefix closure here.
				if !want && len(w2) < maxLen {
					probe := append(w2[:len(w2):len(w2)], core.St(core.Commit(), 0))
					if oracle(probe) {
						t.Fatalf("%v: oracle not prefix closed at %q", prop, probe)
					}
				}
			}
		}
		rec(nil, det.Initial(), true)
		if words < 10000 {
			t.Fatalf("%v: only %d words explored — enumeration broken?", prop, words)
		}
		t.Logf("%v: %d words checked exhaustively", prop, words)
	}
}

// Exhaustive agreement at (2,2) up to length 4 — wider alphabet, shorter
// words.
func TestExhaustiveAgreement22(t *testing.T) {
	const maxLen = 4
	ab := core.Alphabet{Threads: 2, Vars: 2}
	for _, prop := range []Property{StrictSerializability, Opacity} {
		det := NewDet(prop, 2, 2)
		oracle := oracleFor(prop)
		var rec func(w core.Word)
		rec = func(w core.Word) {
			if len(w) == maxLen {
				return
			}
			for l := 0; l < ab.Size(); l++ {
				w2 := append(w[:len(w):len(w)], ab.Decode(l))
				got := det.Accepts(w2)
				want := oracle(w2)
				if got != want {
					t.Fatalf("%v: det=%v oracle=%v on %q", prop, got, want, w2)
				}
				if want {
					rec(w2)
				}
			}
		}
		rec(nil)
	}
}
