package spec

import (
	"fmt"

	"tmcheck/internal/core"
)

// Monitor is an online safety monitor: feed it the statements of an
// execution one at a time and it reports, in O(1) amortized time per
// statement, whether the execution so far still satisfies the property.
// It runs the deterministic specification directly on its state — no
// automaton enumeration — so it works for any thread/variable bounds the
// state arrays accommodate, and is suitable for checking live traces (for
// example the recorder output of internal/runtime).
//
// Once a statement is rejected the monitor latches: Violation reports the
// offending statement and position, and further statements are ignored.
type Monitor struct {
	spec    *Det
	state   DState
	n       int
	pos     int
	violPos int
	violSt  core.Stmt
	dead    bool
}

// NewMonitor returns a monitor for the given property over at most n
// threads and k variables.
func NewMonitor(prop Property, n, k int) *Monitor {
	return &Monitor{spec: NewDet(prop, n, k), state: DState{}, n: n, violPos: -1}
}

// Step feeds one statement. It returns true while the execution remains
// within the property.
func (m *Monitor) Step(s core.Stmt) bool {
	if m.dead {
		return false
	}
	if int(s.T) >= m.spec.Threads || (s.Cmd.IsAccess() && int(s.Cmd.V) >= m.spec.Vars) {
		panic(fmt.Sprintf("spec: statement %v outside monitor bounds (%d threads, %d vars)",
			s, m.spec.Threads, m.spec.Vars))
	}
	next, ok := m.spec.Step(m.state, s)
	if !ok {
		m.dead = true
		m.violPos = m.pos
		m.violSt = s
		return false
	}
	m.state = next
	m.pos++
	return true
}

// Feed runs Step over a whole word, returning true if all of it is
// accepted.
func (m *Monitor) Feed(w core.Word) bool {
	for _, s := range w {
		if !m.Step(s) {
			return false
		}
	}
	return true
}

// OK reports whether no violation has occurred.
func (m *Monitor) OK() bool { return !m.dead }

// Position returns the number of accepted statements.
func (m *Monitor) Position() int { return m.pos }

// Violation returns the first rejected statement and its position, or
// ok = false if none occurred.
func (m *Monitor) Violation() (s core.Stmt, pos int, ok bool) {
	if !m.dead {
		return core.Stmt{}, 0, false
	}
	return m.violSt, m.violPos, true
}

// Reset returns the monitor to its initial state.
func (m *Monitor) Reset() {
	m.state = DState{}
	m.pos = 0
	m.dead = false
	m.violPos = -1
	m.violSt = core.Stmt{}
}
