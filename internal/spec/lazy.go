package spec

import (
	"sync"

	"tmcheck/internal/core"
	"tmcheck/internal/space"
)

// stepUnknown marks a memo row entry whose Step has not been computed
// yet (space.None marks a computed "no transition").
const stepUnknown space.State = -2

// Lazy is the deterministic specification as an implicit space.Space:
// states are interned DStates, successors are computed by Det.Step on
// demand and memoized per (state, letter). The on-the-fly safety engine
// steps it from the product search, so only the spec states the product
// actually reaches are ever constructed — on TM products that is a
// small fraction of the full enumeration (the gap the obs counter
// "spec_states" vs. a full Enumerate measures).
type Lazy struct {
	Det *Det
	ab  core.Alphabet

	shared bool
	mu     sync.RWMutex // guards rows in shared mode
	in     *space.Interner[DState]
	rows   [][]space.State // rows[id][letter]: stepUnknown, space.None, or successor id
}

// NewLazy returns the lazy view of the specification for
// single-goroutine consumers.
func NewLazy(d *Det) *Lazy { return newLazy(d, false) }

// NewLazySync is NewLazy with concurrency-safe memoization, for the
// parallel on-the-fly product search.
func NewLazySync(d *Det) *Lazy { return newLazy(d, true) }

func newLazy(d *Det, shared bool) *Lazy {
	lz := &Lazy{Det: d, ab: core.Alphabet{Threads: d.Threads, Vars: d.Vars}, shared: shared}
	if shared {
		lz.in = space.NewSyncInterner[DState]()
	} else {
		lz.in = space.NewInterner[DState]()
	}
	lz.in.Intern(d.Initial())
	return lz
}

// AlphabetSize returns the instance alphabet size n·(2k+2).
func (lz *Lazy) AlphabetSize() int { return lz.ab.Size() }

// Init implements space.Space.
func (lz *Lazy) Init() space.State { return 0 }

// NumStates implements space.Space: the number of spec states
// constructed so far.
func (lz *Lazy) NumStates() int { return lz.in.Len() }

// Succ implements space.Space, enumerating the defined transitions in
// letter order. The specification is deterministic, so there is exactly
// one emission per defined letter and never an ε.
func (lz *Lazy) Succ(s space.State, emit func(l space.Letter, to space.State)) {
	for l := 0; l < lz.ab.Size(); l++ {
		if to := lz.Step(s, l); to != space.None {
			emit(space.Letter(l), to)
		}
	}
}

// Step returns the successor of the already-interned spec state s under
// letter l, or space.None when the specification refuses the statement
// (the detSpec ⊥ — in the product search this is exactly a safety
// violation). Results are memoized; the underlying Det.Step runs at
// most once per (state, letter).
func (lz *Lazy) Step(s space.State, l int) space.State {
	if lz.shared {
		return lz.stepSync(s, l)
	}
	for len(lz.rows) < lz.in.Len() {
		lz.rows = append(lz.rows, nil)
	}
	row := lz.rows[s]
	if row == nil {
		row = newRow(lz.ab.Size())
		lz.rows[s] = row
	}
	if r := row[l]; r != stepUnknown {
		return r
	}
	id := lz.compute(s, l)
	row[l] = id
	return id
}

func (lz *Lazy) stepSync(s space.State, l int) space.State {
	lz.mu.RLock()
	cached := stepUnknown
	if int(s) < len(lz.rows) && lz.rows[s] != nil {
		cached = lz.rows[s][l]
	}
	lz.mu.RUnlock()
	if cached != stepUnknown {
		return cached
	}
	// Compute outside the lock: Det.Step is pure on the DState value, so
	// racing computations of the same cell agree and the double write is
	// harmless.
	id := lz.compute(s, l)
	lz.mu.Lock()
	for len(lz.rows) < lz.in.Len() {
		lz.rows = append(lz.rows, nil)
	}
	row := lz.rows[s]
	if row == nil {
		row = newRow(lz.ab.Size())
		lz.rows[s] = row
	}
	row[l] = id
	lz.mu.Unlock()
	return id
}

// compute runs the actual Det.Step and interns the successor.
func (lz *Lazy) compute(s space.State, l int) space.State {
	q2, ok := lz.Det.Step(lz.in.At(s), lz.ab.Decode(l))
	if !ok {
		return space.None
	}
	return lz.in.Intern(q2)
}

func newRow(size int) []space.State {
	row := make([]space.State, size)
	for i := range row {
		row[i] = stepUnknown
	}
	return row
}
