package spec

import (
	"math/rand"
	"testing"

	"tmcheck/internal/core"
	"tmcheck/internal/wordgen"
)

func TestMonitorAcceptsAndRejects(t *testing.T) {
	m := NewMonitor(Opacity, 3, 3)
	good := core.MustParseWord("(r,1)1, (w,2)1, c1, (w,1)2, c2")
	if !m.Feed(good) || !m.OK() {
		t.Fatal("monitor rejected an opaque word")
	}
	if m.Position() != len(good) {
		t.Errorf("Position = %d", m.Position())
	}

	m.Reset()
	bad := core.MustParseWord("(w,1)2, (r,1)1, (r,2)3, c2, (w,2)1, (r,1)3, c1")
	if m.Feed(bad) {
		t.Fatal("monitor accepted the Figure 2(a) word")
	}
	s, pos, ok := m.Violation()
	if !ok {
		t.Fatal("Violation not reported")
	}
	// The violation is at the inconsistent read (r,1)3 (position 5) or the
	// closing commit, depending on where the deterministic spec detects
	// it; it must certainly be within the word.
	if pos < 0 || pos >= len(bad) || bad[pos] != s {
		t.Errorf("violation = %v at %d", s, pos)
	}
	// Latches.
	if m.Step(core.St(core.Commit(), 0)) || m.OK() {
		t.Error("monitor must latch after a violation")
	}
}

func TestMonitorMatchesOracleOnline(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for i := 0; i < 300; i++ {
		w := wordgen.WellFormed(rng, wordgen.Config{Threads: 3, Vars: 2, Len: 10})
		m := NewMonitor(Opacity, 3, 2)
		got := m.Feed(w)
		if want := core.IsOpaque(w); got != want {
			t.Fatalf("monitor = %v, oracle = %v on %q", got, want, w)
		}
		// The violation position is the first non-opaque prefix boundary.
		if !got {
			_, pos, _ := m.Violation()
			if core.IsOpaque(w[:pos+1]) {
				t.Fatalf("prefix through violation still opaque: %q @ %d", w, pos)
			}
			if pos > 0 && !core.IsOpaque(w[:pos]) {
				t.Fatalf("violation reported late: %q @ %d", w, pos)
			}
		}
	}
}

func TestMonitorBoundsPanic(t *testing.T) {
	m := NewMonitor(Opacity, 2, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-bounds thread")
		}
	}()
	m.Step(core.St(core.Read(0), 3))
}

func TestMonitorResetClearsViolation(t *testing.T) {
	m := NewMonitor(StrictSerializability, 2, 2)
	bad := core.MustParseWord("(w,2)1, (w,1)2, (r,2)2, (r,1)1, c2, c1")
	if m.Feed(bad) {
		t.Fatal("expected rejection")
	}
	m.Reset()
	if !m.OK() || m.Position() != 0 {
		t.Error("Reset did not clear state")
	}
	if _, _, ok := m.Violation(); ok {
		t.Error("Reset did not clear violation")
	}
	if !m.Feed(core.MustParseWord("(r,1)1, c1")) {
		t.Error("monitor rejects after reset")
	}
}
