package spec

import (
	"math/rand"
	"testing"

	"tmcheck/internal/wordgen"
)

// Directed fuzz: generators that construct the straddling, pending-chain
// and empty-commit patterns where the specification corners live. These
// patterns found every specification bug during development; random
// well-formed words hit them rarely.
func TestDirectedFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for _, dims := range [][2]int{{2, 2}, {3, 2}, {3, 3}} {
		n, k := dims[0], dims[1]
		cfg := wordgen.Config{Threads: n, Vars: k, Len: 10}
		for _, prop := range []Property{StrictSerializability, Opacity} {
			nd := NewNondet(prop, n, k)
			dt := NewDet(prop, n, k)
			oracle := oracleFor(prop)
			for i := 0; i < 1500; i++ {
				w := wordgen.Directed(rng, cfg)
				if len(w.Threads()) > n {
					continue // PendingChain may widen the thread count
				}
				want := oracle(w)
				if got := nd.Accepts(w); got != want {
					t.Fatalf("nondet %v (%d,%d): got %v want %v on %q", prop, n, k, got, want, w)
				}
				if got := dt.Accepts(w); got != want {
					t.Fatalf("det %v (%d,%d): got %v want %v on %q", prop, n, k, got, want, w)
				}
			}
		}
	}
}

// Concatenations of directed fragments probe deeper histories: several
// straddles and chains glued together, possibly exceeding the per-pattern
// length.
func TestDirectedFuzzConcatenated(t *testing.T) {
	rng := rand.New(rand.NewSource(607))
	cfg := wordgen.Config{Threads: 3, Vars: 2, Len: 8}
	nd := NewNondet(Opacity, 3, 2)
	dt := NewDet(Opacity, 3, 2)
	for i := 0; i < 800; i++ {
		w := wordgen.Directed(rng, cfg)
		w = append(w, wordgen.Directed(rng, cfg)...)
		want := oracleFor(Opacity)(w)
		if got := nd.Accepts(w); got != want {
			t.Fatalf("nondet: got %v want %v on %q", got, want, w)
		}
		if got := dt.Accepts(w); got != want {
			t.Fatalf("det: got %v want %v on %q", got, want, w)
		}
	}
}
