package spec

import (
	"math/rand"
	"testing"

	"tmcheck/internal/core"
	"tmcheck/internal/wordgen"
)

func oracleFor(p Property) func(core.Word) bool {
	if p == Opacity {
		return core.IsOpaque
	}
	return core.IsStrictlySerializable
}

func TestNondetPaperExamples(t *testing.T) {
	ss := NewNondet(StrictSerializability, 3, 3)
	op := NewNondet(Opacity, 3, 3)
	for _, tc := range []struct {
		name   string
		word   string
		wantSS bool
		wantOp bool
	}{
		{"fig1a", "(w,1)2, (r,1)1, (r,2)3, c2, (w,2)1, (r,1)3, c1, c3", false, false},
		{"fig1b", "(w,1)2, (r,2)2, (r,3)3, (r,1)1, c2, (w,2)3, (w,3)1, c1, c3", false, false},
		{"fig2a", "(w,1)2, (r,1)1, (r,2)3, c2, (w,2)1, (r,1)3, c1", true, false},
		{"fig2b", "(w,1)2, (r,1)1, c2, (r,2)3, a3, (w,2)1, c1", true, false},
		{"table2-w1", "(w,2)1, (w,1)2, (r,2)2, (r,1)1, c2, c1", false, false},
		{"serial", "(r,1)1, (w,2)1, c1, (w,1)2, c2", true, true},
		{"abort-only", "(r,1)1, a1, (r,1)2, c2", true, true},
	} {
		w := core.MustParseWord(tc.word)
		if got := ss.Accepts(w); got != tc.wantSS {
			t.Errorf("%s: Σss accepts = %v, want %v", tc.name, got, tc.wantSS)
		}
		if got := op.Accepts(w); got != tc.wantOp {
			t.Errorf("%s: Σop accepts = %v, want %v", tc.name, got, tc.wantOp)
		}
	}
}

// Figure 3: the four conditions C1–C4 under which the specification for
// strict serializability disallows a commit. Thread 1 runs transaction x,
// thread 2 runs transaction y; in each scenario both commits cannot
// coexist.
func TestNondetFigure3Conditions(t *testing.T) {
	ss := NewNondet(StrictSerializability, 2, 2)
	for _, tc := range []struct {
		name string
		word string
		want bool
	}{
		// C1: x must serialize before y (its earlier read of v2 precedes
		// y's commit of v2), yet x reads v1 after y commits v1 — the read
		// lands after y under every serialization guess.
		{"C1", "(r,2)1, (w,1)2, (w,2)2, c2, (r,1)1, c1", false},
		// C2: x serializes before y, x writes v, y reads v before x
		// commits, both commit: y read the pre-x value yet must follow x.
		{"C2", "(w,1)1, (r,1)2, (w,2)2, c1, c2", true}, // y can serialize before x
		{"C2-forced", "(r,2)1, (w,1)1, (r,1)2, (w,2)2, c2, c1", false},
		// C3: both write v; y commits first; x's commit must follow y but
		// x read nothing — ww order only. Serializable by ordering x after
		// y unless something pins x before y.
		{"C3", "(w,1)1, (w,1)2, c2, c1", true},
		{"C3-forced", "(w,1)1, (r,2)1, (w,1)2, (w,2)2, c2, c1", false},
		// C4: x reads v, then y (writing v) commits, then x commits while
		// also conflicting the other way.
		{"C4", "(r,1)1, (w,1)2, c2, c1", true},
		{"C4-forced", "(r,1)1, (w,2)1, (w,1)2, (r,2)2, c2, c1", false},
	} {
		w := core.MustParseWord(tc.word)
		if got := ss.Accepts(w); got != tc.want {
			t.Errorf("%s: Σss accepts %q = %v, want %v", tc.name, tc.word, got, tc.want)
		}
		// The oracle must agree — the scenarios are definitional.
		if got := core.IsStrictlySerializable(w); got != tc.want {
			t.Errorf("%s: oracle disagrees with expectation %v", tc.name, tc.want)
		}
	}
}

func TestNondetAgainstOracle22(t *testing.T) {
	testNondetAgainstOracle(t, 2, 2, 1500, 10)
}

func TestNondetAgainstOracle32(t *testing.T) {
	testNondetAgainstOracle(t, 3, 2, 600, 9)
}

func TestNondetAgainstOracle23(t *testing.T) {
	testNondetAgainstOracle(t, 2, 3, 600, 10)
}

func testNondetAgainstOracle(t *testing.T, n, k, iters, maxLen int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(100*n + k)))
	cfg := wordgen.Config{Threads: n, Vars: k, Len: maxLen}
	for _, prop := range []Property{StrictSerializability, Opacity} {
		spec := NewNondet(prop, n, k)
		oracle := oracleFor(prop)
		for i := 0; i < iters; i++ {
			cfg.Len = 3 + rng.Intn(maxLen-2)
			w := wordgen.WellFormed(rng, cfg)
			got := spec.Accepts(w)
			want := oracle(w)
			if got != want {
				t.Fatalf("%v (n=%d,k=%d): spec=%v oracle=%v on %q", prop, n, k, got, want, w)
			}
		}
	}
}

func TestNondetEnumerateSizes(t *testing.T) {
	// Paper §5.3: Σss has 12345 states and Σop 9202 for (2,2). The exact
	// counts depend on encoding details; reproduce and report.
	ss := NewNondet(StrictSerializability, 2, 2).Enumerate()
	op := NewNondet(Opacity, 2, 2).Enumerate()
	// This implementation normalizes away dead state fields, so both
	// automata come out smaller than the paper's (and their relative order
	// differs); EXPERIMENTS.md records the comparison.
	t.Logf("Σss states = %d (paper, unnormalized: 12345)", ss.NumStates())
	t.Logf("Σop states = %d (paper, unnormalized: 9202)", op.NumStates())
	if ss.NumStates() < 1000 || op.NumStates() < 1000 {
		t.Errorf("suspiciously small specifications: ss=%d op=%d", ss.NumStates(), op.NumStates())
	}
}

func TestNondetEnumerateMatchesAccepts(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ab := core.Alphabet{Threads: 2, Vars: 2}
	for _, prop := range []Property{StrictSerializability, Opacity} {
		spec := NewNondet(prop, 2, 2)
		nfa := spec.Enumerate()
		for i := 0; i < 300; i++ {
			w := wordgen.WellFormed(rng, wordgen.Config{Threads: 2, Vars: 2, Len: 3 + rng.Intn(8)})
			if got, want := nfa.Accepts(ab.EncodeWord(w)), spec.Accepts(w); got != want {
				t.Fatalf("%v: enumerated NFA=%v, direct=%v on %q", prop, got, want, w)
			}
		}
	}
}

func TestNondetPrefixClosed(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, prop := range []Property{StrictSerializability, Opacity} {
		spec := NewNondet(prop, 2, 2)
		for i := 0; i < 150; i++ {
			w := wordgen.WellFormed(rng, wordgen.Config{Threads: 2, Vars: 2, Len: 8})
			if spec.Accepts(w) {
				for j := range w {
					if !spec.Accepts(w[:j]) {
						t.Fatalf("%v: not prefix closed at %d on %q", prop, j, w)
					}
				}
			}
		}
	}
}

func TestOpacityImpliesSSViaSpecs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ss := NewNondet(StrictSerializability, 2, 2)
	op := NewNondet(Opacity, 2, 2)
	for i := 0; i < 300; i++ {
		w := wordgen.WellFormed(rng, wordgen.Config{Threads: 2, Vars: 2, Len: 3 + rng.Intn(7)})
		if op.Accepts(w) && !ss.Accepts(w) {
			t.Fatalf("πop ⊄ πss on %q", w)
		}
	}
}
