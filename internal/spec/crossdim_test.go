package spec

import (
	"math/rand"
	"testing"

	"tmcheck/internal/automata"
	"tmcheck/internal/core"
	"tmcheck/internal/wordgen"
)

// Cross-dimension validation: the specifications are defined for any
// (n, k); their agreement with the oracles must not be a (2,2) accident.

func TestSpecsAgainstOracle33(t *testing.T) { testBothSpecs(t, 3, 3, 800, 13) }
func TestSpecsAgainstOracle42(t *testing.T) { testBothSpecs(t, 4, 2, 800, 13) }

func testBothSpecs(t *testing.T, n, k, iters, maxLen int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(1000*n + k)))
	for _, prop := range []Property{StrictSerializability, Opacity} {
		nd := NewNondet(prop, n, k)
		dt := NewDet(prop, n, k)
		oracle := oracleFor(prop)
		for i := 0; i < iters; i++ {
			w := wordgen.WellFormed(rng, wordgen.Config{Threads: n, Vars: k, Len: 4 + rng.Intn(maxLen-3)})
			want := oracle(w)
			if got := nd.Accepts(w); got != want {
				t.Fatalf("nondet %v (%d,%d): got %v want %v on %q", prop, n, k, got, want, w)
			}
			if got := dt.Accepts(w); got != want {
				t.Fatalf("det %v (%d,%d): got %v want %v on %q", prop, n, k, got, want, w)
			}
		}
	}
}

// The word that distinguishes the two possible readings of strict
// equivalence's real-time clause (see BuildConflictGraph): thread 3 is
// pending (pinned before thread 1's commit), thread 2's unfinished
// transaction starts after that commit and reads thread 3's write. Under
// the adopted (Guerraoui–Kapalka-consistent) reading, the unfinished
// transaction cannot float ahead of the earlier commit, so the word is
// NOT opaque; under the discarded reading it would be. The specifications
// and the oracle must agree on the adopted reading.
func TestRealTimeClauseDistinguishingWord(t *testing.T) {
	w := core.MustParseWord("(r,2)1, c3, (w,1)3, (r,2)3, (w,2)1, (r,2)3, c1, (w,1)3, (r,1)2, c3")
	if core.IsOpaque(w) {
		t.Error("oracle: distinguishing word must not be opaque under the adopted reading")
	}
	if NewNondet(Opacity, 3, 2).Accepts(w) {
		t.Error("Σop accepts the distinguishing word")
	}
	if NewDet(Opacity, 3, 2).Accepts(w) {
		t.Error("Σdop accepts the distinguishing word")
	}
}

// Theorem 3 holds at other small instances too.
func TestEquivalenceOtherInstances(t *testing.T) {
	for _, dims := range [][2]int{{2, 1}, {3, 1}, {1, 2}} {
		n, k := dims[0], dims[1]
		for _, prop := range []Property{StrictSerializability, Opacity} {
			nd := NewNondet(prop, n, k).Enumerate()
			dt := NewDet(prop, n, k).Enumerate()
			equal, fwd, cex := automata.EquivalentNFADFA(nd, dt)
			if !equal {
				ab := core.Alphabet{Threads: n, Vars: k}
				t.Errorf("%v at (%d,%d): specs differ (fwd=%v): %q",
					prop, n, k, fwd, ab.DecodeWord(cex))
			}
		}
	}
}

// The paper reports that the nondeterministic specifications were "too
// large to be automatically determinized" (§5.3) — the motivation for
// hand-building the deterministic ones. With the normalized state encoding
// here, subset construction succeeds in well under a second, giving a
// third, fully mechanical route to the deterministic specification; its
// minimization and the hand-built specification's minimization must be the
// same canonical automaton (minimal DFAs are unique up to isomorphism).
func TestDeterminizationSucceedsAndCanonicalizes(t *testing.T) {
	for _, prop := range []Property{StrictSerializability, Opacity} {
		nfa := NewNondet(prop, 2, 2).Enumerate()
		subset, err := nfa.DeterminizeBounded(2000000)
		if err != nil {
			t.Fatalf("%v: determinization blew up: %v", prop, err)
		}
		fromNondet := subset.Minimize()
		fromDet := NewDet(prop, 2, 2).Enumerate().Minimize()
		if fromNondet.NumStates() != fromDet.NumStates() {
			t.Errorf("%v: canonical sizes differ: %d (via subset construction) vs %d (hand-built)",
				prop, fromNondet.NumStates(), fromDet.NumStates())
		}
		t.Logf("%v: canonical minimal DFA has %d states (subset construction: %d states pre-minimization)",
			prop, fromDet.NumStates(), subset.NumStates())
	}
}

// Regression: the word the 4-thread fuzz soak found against the printed
// deterministic specification. An aborting reader (thread 4) straddles a
// commit, pinning the pending thread 1 into a cycle; the reader's reset
// then erased the weak-predecessor evidence, and thread 1's commit slipped
// through. The eager contradiction check in addStrictPreds records the
// doom before the reset.
func TestRegressionAbortedReaderObligationPersists(t *testing.T) {
	w := core.MustParseWord(
		"c3, (r,1)1, (w,1)3, (w,1)2, (r,2)4, c3, (w,2)1, (r,1)4, a4, c3, (r,1)3, c1, (w,2)1")
	if core.IsOpaque(w) {
		t.Fatal("oracle should reject the soak word")
	}
	if NewNondet(Opacity, 4, 2).Accepts(w) {
		t.Error("Σop accepts the soak word")
	}
	if NewDet(Opacity, 4, 2).Accepts(w) {
		t.Error("Σdop accepts the soak word")
	}
}

// Second soak regression: a four-transaction cycle threaded through an
// aborting reader. The abort must flush the dying thread's strict
// predecessors into the threads chained after it, or the cycle's evidence
// is erased with the reset.
func TestRegressionAbortFlushesStrictPredecessors(t *testing.T) {
	w := core.MustParseWord(
		"c2, (w,1)3, (r,2)2, (w,2)4, (r,1)1, c4, (r,2)1, (w,2)4, a1, (r,1)3, c3, (w,2)1, (r,1)2")
	if core.IsOpaque(w) {
		t.Fatal("oracle should reject the soak word")
	}
	if NewNondet(Opacity, 4, 2).Accepts(w) {
		t.Error("Σop accepts the soak word")
	}
	if NewDet(Opacity, 4, 2).Accepts(w) {
		t.Error("Σdop accepts the soak word")
	}
}

// Third soak regression: a transitive predecessor (reachable only through
// the strict-predecessor sets of the weak predecessors) missed its
// prohibited-read update at commit time.
func TestRegressionCommitUpdatesFullClosure(t *testing.T) {
	for _, in := range []string{
		"(r,3)1, (w,3)2, (r,2)1, (w,1)3, c2, (r,1)2, c3, a2, (w,2)3, (w,2)2, (r,1)1, (r,2)2, (r,2)1",
		"c2, (w,3)2, (r,2)1, (r,3)4, c2, (w,1)1, (w,3)3, (r,1)2, c1, a2, a1, c2, (w,2)4, c4",
	} {
		w := core.MustParseWord(in)
		n := len(w.Threads())
		if n < 3 {
			n = 3
		}
		if core.IsOpaque(w) {
			t.Fatalf("oracle should reject %q", in)
		}
		if NewNondet(Opacity, 4, 3).Accepts(w) {
			t.Errorf("Σop accepts %q", in)
		}
		if NewDet(Opacity, 4, 3).Accepts(w) {
			t.Errorf("Σdop accepts %q", in)
		}
	}
}
