package spec

import (
	"fmt"
	"time"

	"tmcheck/internal/automata"
	"tmcheck/internal/core"
	"tmcheck/internal/obs"
	"tmcheck/internal/parbfs"
	"tmcheck/internal/tm"
)

// NState is a state of the nondeterministic specification (Algorithm 5):
// per-thread status, read set, write set, prohibited read set, prohibited
// write set, and serialization-predecessor set.
type NState struct {
	Status [tm.MaxThreads]uint8
	RS     [tm.MaxThreads]core.VarSet
	WS     [tm.MaxThreads]core.VarSet
	PRS    [tm.MaxThreads]core.VarSet
	PWS    [tm.MaxThreads]core.VarSet
	SP     [tm.MaxThreads]core.ThreadSet
}

// Nondet is the nondeterministic TM specification Σss / Σop for a bounded
// instance: a transition system over statements plus internal ε(t)
// serialization guesses.
type Nondet struct {
	Prop    Property
	Threads int
	Vars    int
}

// NewNondet returns Σss (prop = StrictSerializability) or Σop
// (prop = Opacity) for n threads and k variables.
func NewNondet(prop Property, n, k int) *Nondet {
	tm.CheckBounds(n, k)
	return &Nondet{Prop: prop, Threads: n, Vars: k}
}

// Initial returns q_init: all statuses finished, all sets empty.
func (sp *Nondet) Initial() NState { return NState{} }

// resetThread implements the paper's ResetState(q, t).
func resetNondet(q *NState, t core.Thread, n int) {
	q.Status[t] = stFinished
	q.RS[t] = 0
	q.WS[t] = 0
	q.PRS[t] = 0
	q.PWS[t] = 0
	q.SP[t] = 0
	for u := 0; u < n; u++ {
		if u != int(t) {
			q.SP[u] = q.SP[u].Remove(t)
		}
	}
}

// normalize clears state fields that can never be read again, so that
// behaviourally identical states coincide. This is language preserving:
//
//   - sp(t) of a started thread is overwritten at ε before any rule reads
//     it (every consumer of sp(u) requires u to be serialized or
//     committing, and commit requires serialized status);
//   - an invalid thread can neither commit nor serialize again, so its pws
//     and sp are dead; under strict serializability its reads are never
//     checked either, so rs, ws and prs are also dead and the two invalid
//     flavours collapse into one. Under opacity rs, ws and prs stay live:
//     future commits extend prs from rs, reads are checked against prs,
//     and ws distinguishes local reads from global ones.
//
// The randomized oracle tests exercise exactly this claim.
func (sp *Nondet) normalize(q NState) NState {
	for u := 0; u < sp.Threads; u++ {
		switch q.Status[u] {
		case stStarted:
			q.SP[u] = 0
		case stInvalid, stInvalidSer:
			q.PWS[u] = 0
			q.SP[u] = 0
			if sp.Prop == StrictSerializability {
				q.Status[u] = stInvalid
				q.RS[u] = 0
				q.WS[u] = 0
				q.PRS[u] = 0
			}
		}
	}
	return q
}

// markInvalid dooms thread u's commit, preserving the serialization
// standing of a thread that already took its ε.
func markInvalid(q *NState, u int) {
	if q.Status[u] == stSerialized || q.Status[u] == stInvalidSer {
		q.Status[u] = stInvalidSer
	} else {
		q.Status[u] = stInvalid
	}
}

// serializedSet collects the threads that have serialized — including
// those that have since become unable to commit, whose place in the
// serialization order still constrains others.
func (sp *Nondet) serializedSet(q NState) core.ThreadSet {
	var s core.ThreadSet
	for u := 0; u < sp.Threads; u++ {
		if q.Status[u] == stSerialized || q.Status[u] == stInvalidSer {
			s = s.Add(core.Thread(u))
		}
	}
	return s
}

// Step is the nondetSpec procedure for a statement: it returns the
// successor state, or ok = false when the statement is not allowed (the
// procedure's ⊥). Successor states are normalized.
func (sp *Nondet) Step(q NState, s core.Stmt) (NState, bool) {
	q2, ok := sp.step(q, s)
	if !ok {
		return q2, false
	}
	return sp.normalize(q2), true
}

func (sp *Nondet) step(q NState, s core.Stmt) (NState, bool) {
	t := s.T
	ti := int(t)
	switch s.Cmd.Op {
	case core.OpRead:
		v := s.Cmd.V
		if q.WS[ti].Has(v) {
			return q, true // not a global read
		}
		if q.Status[ti] == stFinished {
			q.SP[ti] = sp.serializedSet(q)
			q.Status[ti] = stStarted
		}
		q.RS[ti] = q.RS[ti].Add(v)
		if sp.Prop == Opacity {
			if q.PRS[ti].Has(v) {
				return q, false
			}
			for u := 0; u < sp.Threads; u++ {
				if u == ti {
					continue
				}
				if q.Status[u] == stSerialized && !q.SP[u].Has(t) {
					if q.WS[u].Has(v) {
						markInvalid(&q, u)
					} else {
						q.PWS[u] = q.PWS[u].Add(v)
					}
				}
			}
		} else {
			if q.Status[ti] == stSerialized && q.PRS[ti].Has(v) {
				markInvalid(&q, ti)
			}
		}
		return q, true

	case core.OpWrite:
		v := s.Cmd.V
		if q.Status[ti] == stFinished {
			q.SP[ti] = sp.serializedSet(q)
			q.Status[ti] = stStarted
		} else if q.Status[ti] == stSerialized && q.PWS[ti].Has(v) {
			markInvalid(&q, ti)
		}
		q.WS[ti] = q.WS[ti].Add(v)
		return q, true

	case core.OpCommit:
		if q.Status[ti] == stStarted || q.Status[ti] == stInvalid ||
			q.Status[ti] == stInvalidSer {
			return q, false
		}
		for u := 0; u < sp.Threads; u++ {
			if u == ti {
				continue
			}
			if q.SP[ti].Has(core.Thread(u)) {
				q.PRS[u] = q.PRS[u].Union(q.WS[ti])
				q.PWS[u] = q.PWS[u].Union(q.RS[ti]).Union(q.WS[ti])
				if q.WS[u].Intersects(q.WS[ti].Union(q.RS[ti])) {
					markInvalid(&q, u)
				}
			} else {
				if q.WS[ti].Intersects(q.RS[u]) {
					// u read a variable this commit overwrites, yet u is
					// not a serialization predecessor of t: u's ε — taken
					// or still to come — orders u after t, contradicting
					// the read. Deviation from the printed algorithm (see
					// DESIGN.md): for opacity this run cannot represent
					// the word at all, because even an aborting or
					// unfinished u must serialize before t; the branches
					// where u serialized before t's ε carry the word. The
					// printed nondetSpec marks u invalid, which blocks u's
					// commit (enough for strict serializability) but not
					// the doomed transaction's later inconsistent reads.
					if sp.Prop == Opacity {
						return q, false
					}
					markInvalid(&q, u)
				}
			}
		}
		resetNondet(&q, t, sp.Threads)
		return q, true

	case core.OpAbort:
		resetNondet(&q, t, sp.Threads)
		return q, true
	}
	return q, false
}

// Eps is the nondetSpec procedure for the internal statement (ε, t): the
// nondeterministic guess that thread t's transaction serializes now.
// Successor states are normalized.
func (sp *Nondet) Eps(q NState, t core.Thread) (NState, bool) {
	q2, ok := sp.eps(q, t)
	if !ok {
		return q2, false
	}
	return sp.normalize(q2), true
}

func (sp *Nondet) eps(q NState, t core.Thread) (NState, bool) {
	ti := int(t)
	if q.Status[ti] != stStarted {
		return q, false
	}
	// Following the paper's order of assignments, the status flips to
	// serialized before sp(t) is recomputed, so t lands in its own sp set;
	// the commit rule only ever consults sp(t) for other threads.
	q.Status[ti] = stSerialized
	q.SP[ti] = sp.serializedSet(q)
	if sp.Prop == Opacity {
		for u := 0; u < sp.Threads; u++ {
			if u == ti {
				continue
			}
			switch q.Status[u] {
			case stStarted:
				if q.RS[u].Intersects(q.WS[ti]) {
					markInvalid(&q, ti)
				}
				q.PWS[ti] = q.PWS[ti].Union(q.RS[u])
			case stSerialized:
				if q.WS[u].Intersects(q.RS[ti]) {
					markInvalid(&q, u)
				}
				q.PWS[u] = q.PWS[u].Union(q.RS[ti])
			}
		}
	}
	return q, true
}

// Accepts reports whether w ∈ L(Σ) by subset simulation with ε-closure.
func (sp *Nondet) Accepts(w core.Word) bool {
	ok, _ := sp.AcceptsStates(w)
	return ok
}

// AcceptsStates is Accepts also reporting the number of specification
// states inserted into subset sets during the simulation (ε-closure
// members included) — the unit the fuzzer charges against its state
// budget.
func (sp *Nondet) AcceptsStates(w core.Word) (bool, int) {
	visited := 0
	cur := map[NState]bool{}
	add := func(set map[NState]bool, q NState) {
		if set[q] {
			return
		}
		set[q] = true
		visited++
		// ε-closure: follow every enabled ε(t), recursively.
		var stack []NState
		stack = append(stack, q)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for t := 0; t < sp.Threads; t++ {
				if y, ok := sp.Eps(x, core.Thread(t)); ok && !set[y] {
					set[y] = true
					visited++
					stack = append(stack, y)
				}
			}
		}
	}
	add(cur, sp.Initial())
	for _, s := range w {
		next := map[NState]bool{}
		for q := range cur {
			if q2, ok := sp.Step(q, s); ok {
				add(next, q2)
			}
		}
		if len(next) == 0 {
			return false, visited
		}
		cur = next
	}
	return true, visited
}

// Enumerate builds the explicit NFA of the specification over the instance
// alphabet, with ε(t) guesses as ε-transitions, using the process-wide
// worker count. The enumeration size and time are recorded under
// "spec.nondet.<prop>.n<n>k<k>.*" in the obs registry.
func (sp *Nondet) Enumerate() *automata.NFA {
	return sp.EnumerateWorkers(parbfs.Workers())
}

// EnumerateWorkers is Enumerate with an explicit worker count. The
// resulting NFA — state numbering and edge order — is identical for
// every worker count (see internal/parbfs).
func (sp *Nondet) EnumerateWorkers(workers int) *automata.NFA {
	start := time.Now()
	ab := core.Alphabet{Threads: sp.Threads, Vars: sp.Vars}
	nfa := automata.NewNFA(ab.Size())
	if workers <= 1 {
		sp.enumerateSeq(nfa, ab)
	} else {
		sp.enumeratePar(nfa, ab, workers)
	}
	if obs.Enabled() {
		key := fmt.Sprintf("spec.nondet.%s.n%dk%d", sp.Prop.Key(), sp.Threads, sp.Vars)
		obs.Inc(key+".enumerations", 1)
		obs.Inc(key+".states", int64(nfa.NumStates()))
		obs.AddTime(key+".enumerate", time.Since(start))
	}
	return nfa
}

// enumerateSeq is the sequential scan-order enumeration.
func (sp *Nondet) enumerateSeq(nfa *automata.NFA, ab core.Alphabet) {
	index := map[NState]int{sp.Initial(): 0}
	states := []NState{sp.Initial()}
	intern := func(q NState) (int, bool) {
		if id, ok := index[q]; ok {
			return id, false
		}
		id := nfa.AddState()
		index[q] = id
		states = append(states, q)
		return id, true
	}
	for qi := 0; qi < len(states); qi++ {
		q := states[qi]
		for l := 0; l < ab.Size(); l++ {
			if q2, ok := sp.Step(q, ab.Decode(l)); ok {
				id, _ := intern(q2)
				nfa.AddEdge(qi, l, id)
			}
		}
		for t := 0; t < sp.Threads; t++ {
			if q2, ok := sp.Eps(q, core.Thread(t)); ok {
				id, _ := intern(q2)
				nfa.AddEps(qi, id)
			}
		}
	}
}

// enumeratePar is the frontier-parallel enumeration via the shared
// parbfs engine; the canonical per-level numbering makes the NFA
// bit-identical to enumerateSeq. Emissions enumerate letters first and
// ε(t) guesses second, exactly like the sequential loop; markers[id]
// remembers which was which (letter l, or -(t+1) for an ε by thread t).
func (sp *Nondet) enumeratePar(nfa *automata.NFA, ab core.Alphabet, workers int) {
	var states []NState
	var markers [][]int16
	parbfs.Run(sp.Initial(), workers,
		func(id int, emit func(NState)) {
			q := states[id]
			var ms []int16
			for l := 0; l < ab.Size(); l++ {
				if q2, ok := sp.Step(q, ab.Decode(l)); ok {
					ms = append(ms, int16(l))
					emit(q2)
				}
			}
			for t := 0; t < sp.Threads; t++ {
				if q2, ok := sp.Eps(q, core.Thread(t)); ok {
					ms = append(ms, int16(-(t + 1)))
					emit(q2)
				}
			}
			markers[id] = ms
		},
		func(id int, q NState) {
			if id > 0 {
				nfa.AddState() // state 0 is pre-allocated by NewNFA
			}
			states = append(states, q)
			markers = append(markers, nil)
		},
		func(id int, succ []int32) {
			for j, m := range markers[id] {
				if m >= 0 {
					nfa.AddEdge(id, int(m), int(succ[j]))
				} else {
					nfa.AddEps(id, int(succ[j]))
				}
			}
			markers[id] = nil
		},
	)
}
