package spec_test

import (
	"fmt"

	"tmcheck/internal/core"
	"tmcheck/internal/spec"
)

func ExampleMonitor() {
	// Feed a live trace to the online opacity monitor.
	m := spec.NewMonitor(spec.Opacity, 2, 2)
	trace := core.MustParseWord("(r,1)1, (w,1)2, c2, (r,2)1")
	for i, s := range trace {
		if !m.Step(s) {
			fmt.Printf("violation at statement %d: %v\n", i+1, s)
			return
		}
	}
	fmt.Println("trace is opaque so far")
	// Output: trace is opaque so far
}

func ExampleNondet_Accepts() {
	// The nondeterministic specification decides opacity by guessing
	// serialization points.
	op := spec.NewNondet(spec.Opacity, 3, 2)
	w := core.MustParseWord("(w,1)2, (r,1)1, c2, (r,2)3, a3, (w,2)1, c1")
	fmt.Println("opaque:", op.Accepts(w))
	// Output: opaque: false
}

func ExampleDet_Accepts() {
	ss := spec.NewDet(spec.StrictSerializability, 2, 2)
	w := core.MustParseWord("(w,2)1, (w,1)2, (r,2)2, (r,1)1, c2, c1")
	fmt.Println("strictly serializable:", ss.Accepts(w))
	// Output: strictly serializable: false
}
