package spec

import (
	"math/rand"
	"testing"

	"tmcheck/internal/automata"
	"tmcheck/internal/core"
	"tmcheck/internal/wordgen"
)

func TestDetPaperExamples(t *testing.T) {
	ss := NewDet(StrictSerializability, 3, 3)
	op := NewDet(Opacity, 3, 3)
	for _, tc := range []struct {
		name   string
		word   string
		wantSS bool
		wantOp bool
	}{
		{"fig1a", "(w,1)2, (r,1)1, (r,2)3, c2, (w,2)1, (r,1)3, c1, c3", false, false},
		{"fig1b", "(w,1)2, (r,2)2, (r,3)3, (r,1)1, c2, (w,2)3, (w,3)1, c1, c3", false, false},
		{"fig2a", "(w,1)2, (r,1)1, (r,2)3, c2, (w,2)1, (r,1)3, c1", true, false},
		{"fig2b", "(w,1)2, (r,1)1, c2, (r,2)3, a3, (w,2)1, c1", true, false},
		{"table2-w1", "(w,2)1, (w,1)2, (r,2)2, (r,1)1, c2, c1", false, false},
		{"serial", "(r,1)1, (w,2)1, c1, (w,1)2, c2", true, true},
	} {
		w := core.MustParseWord(tc.word)
		if got := ss.Accepts(w); got != tc.wantSS {
			t.Errorf("%s: Σdss accepts = %v, want %v", tc.name, got, tc.wantSS)
		}
		if got := op.Accepts(w); got != tc.wantOp {
			t.Errorf("%s: Σdop accepts = %v, want %v", tc.name, got, tc.wantOp)
		}
	}
}

func TestDetAgainstOracle22(t *testing.T) { testDetAgainstOracle(t, 2, 2, 2000, 10) }
func TestDetAgainstOracle32(t *testing.T) { testDetAgainstOracle(t, 3, 2, 800, 9) }
func TestDetAgainstOracle23(t *testing.T) { testDetAgainstOracle(t, 2, 3, 800, 10) }

func testDetAgainstOracle(t *testing.T, n, k, iters, maxLen int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(200*n + k)))
	cfg := wordgen.Config{Threads: n, Vars: k, Len: maxLen}
	for _, prop := range []Property{StrictSerializability, Opacity} {
		spec := NewDet(prop, n, k)
		oracle := oracleFor(prop)
		for i := 0; i < iters; i++ {
			cfg.Len = 3 + rng.Intn(maxLen-2)
			w := wordgen.WellFormed(rng, cfg)
			got := spec.Accepts(w)
			want := oracle(w)
			if got != want {
				t.Fatalf("%v (n=%d,k=%d): det spec=%v oracle=%v on %q", prop, n, k, got, want, w)
			}
		}
	}
}

// Theorem 3: the languages of the nondeterministic and deterministic
// specifications coincide on (2,2), established by antichain equivalence.
func TestTheorem3Equivalence22(t *testing.T) {
	for _, prop := range []Property{StrictSerializability, Opacity} {
		nd := NewNondet(prop, 2, 2).Enumerate()
		dt := NewDet(prop, 2, 2).Enumerate()
		equal, fwd, cex := automata.EquivalentNFADFA(nd, dt)
		if !equal {
			ab := core.Alphabet{Threads: 2, Vars: 2}
			side := "nondet \\ det"
			if !fwd {
				side = "det \\ nondet"
			}
			t.Errorf("%v: specifications differ (%s): %q", prop, side, ab.DecodeWord(cex))
		}
	}
}

func TestDetEnumerateSizes(t *testing.T) {
	ss := NewDet(StrictSerializability, 2, 2).Enumerate()
	op := NewDet(Opacity, 2, 2).Enumerate()
	t.Logf("Σdss states = %d (paper: 3520)", ss.NumStates())
	t.Logf("Σdop states = %d (paper: 2272)", op.NumStates())
	t.Logf("Σdss minimized = %d", ss.Minimize().NumStates())
	t.Logf("Σdop minimized = %d", op.Minimize().NumStates())
	if ss.NumStates() < 100 || op.NumStates() < 100 {
		t.Errorf("suspiciously small deterministic specifications: ss=%d op=%d",
			ss.NumStates(), op.NumStates())
	}
}

func TestDetPrefixClosedAndDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, prop := range []Property{StrictSerializability, Opacity} {
		spec := NewDet(prop, 2, 2)
		for i := 0; i < 150; i++ {
			w := wordgen.WellFormed(rng, wordgen.Config{Threads: 2, Vars: 2, Len: 8})
			if spec.Accepts(w) {
				for j := range w {
					if !spec.Accepts(w[:j]) {
						t.Fatalf("%v: not prefix closed at %d on %q", prop, j, w)
					}
				}
			}
		}
	}
}
