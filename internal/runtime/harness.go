package runtime

import (
	"math/rand"
	"sync"
	"time"

	"tmcheck/internal/core"
	"tmcheck/internal/obs"
)

// TxScript is one transaction's intended commands (reads and writes; the
// commit is implicit at the end). Values written are derived from the
// workload.
type TxScript []core.Command

// Workload assigns each thread a sequence of transactions.
type Workload map[core.Thread][]TxScript

// RunSequential executes the workload single-threadedly under the given
// schedule: each schedule entry runs the named thread's next pending
// command (or begins/commits transactions as needed). Aborted transactions
// are not retried. It returns the recorded word via the STM's recorder.
//
// This gives deterministic, repeatable interleavings at command
// granularity — the STM's internal steps still interleave only as the
// implementation dictates.
func RunSequential(stm STM, rec *Recorder, schedule []core.Thread, w Workload) {
	type threadState struct {
		txIdx  int
		cmdIdx int
		tx     Tx
	}
	states := map[core.Thread]*threadState{}
	for _, t := range schedule {
		st := states[t]
		if st == nil {
			st = &threadState{}
			states[t] = st
		}
		scripts := w[t]
		if st.txIdx >= len(scripts) {
			continue
		}
		script := scripts[st.txIdx]
		if st.tx == nil {
			st.tx = stm.Begin(t)
		}
		var err error
		if st.cmdIdx < len(script) {
			cmd := script[st.cmdIdx]
			switch cmd.Op {
			case core.OpRead:
				_, err = st.tx.Read(cmd.V)
			case core.OpWrite:
				err = st.tx.Write(cmd.V, int(cmd.V)+st.txIdx)
			}
			st.cmdIdx++
		} else {
			err = st.tx.Commit()
			st.tx = nil
			st.txIdx++
			st.cmdIdx = 0
		}
		if err != nil {
			// The transaction died; move on to the next one.
			st.tx = nil
			st.txIdx++
			st.cmdIdx = 0
		}
	}
	// Abandon any transactions still open (they stay unfinished in the
	// word).
	_ = states
}

// Transfer is the classic invariant workload: move amounts between two
// accounts so that the sum is preserved; run concurrently it exposes
// non-serializable STMs immediately.
type Transfer struct {
	From, To core.Var
	Amount   int
}

// RunTransfers executes count random transfers per goroutine over
// `threads` goroutines against the STM, retrying aborted transactions up
// to `retries` times. It returns the sum of all variables afterwards. The
// initial balance is written by thread 0 before the race begins.
//
// Per-algorithm commit/abort/retry counts and per-attempt latency
// buckets are recorded under "stm.<name>.*" in the obs registry.
// Unlike the checker counters these depend on the actual goroutine
// interleaving and vary between runs.
func RunTransfers(stm STM, k, threads, count, retries int, seed int64, initial int) int {
	key := "stm." + stm.Name()
	// Seed the accounts.
	init := stm.Begin(0)
	for v := 0; v < k; v++ {
		if err := init.Write(core.Var(v), initial); err != nil {
			panic("seeding aborted")
		}
	}
	if err := init.Commit(); err != nil {
		panic("seeding aborted")
	}

	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(t core.Thread, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < count; i++ {
				from := core.Var(rng.Intn(k))
				to := core.Var(rng.Intn(k))
				if from == to {
					continue
				}
				amount := 1 + rng.Intn(5)
				for attempt := 0; attempt <= retries; attempt++ {
					if attempt > 0 {
						obs.Inc(key+".retries", 1)
					}
					attemptStart := time.Now()
					ok := tryTransfer(stm, t, from, to, amount)
					obs.Observe(key+".attempt", time.Since(attemptStart))
					if ok {
						obs.Inc(key+".commits", 1)
						break
					}
					obs.Inc(key+".aborts", 1)
				}
			}
		}(core.Thread(g), seed+int64(g))
	}
	wg.Wait()

	// Read the final sum in one transaction (retrying; it is read-only).
	for {
		tx := stm.Begin(0)
		sum := 0
		ok := true
		for v := 0; v < k; v++ {
			val, err := tx.Read(core.Var(v))
			if err != nil {
				ok = false
				break
			}
			sum += val
		}
		if ok && tx.Commit() == nil {
			return sum
		}
	}
}

func tryTransfer(stm STM, t core.Thread, from, to core.Var, amount int) bool {
	tx := stm.Begin(t)
	a, err := tx.Read(from)
	if err != nil {
		return false
	}
	b, err := tx.Read(to)
	if err != nil {
		return false
	}
	if err := tx.Write(from, a-amount); err != nil {
		return false
	}
	if err := tx.Write(to, b+amount); err != nil {
		return false
	}
	return tx.Commit() == nil
}
