package runtime

import (
	"math/rand"
	"testing"

	"tmcheck/internal/core"
)

func TestTwoPLSTMBasic(t *testing.T) {
	rec := &Recorder{}
	stm := NewTwoPLSTM(2, rec)
	tx := stm.Begin(0)
	if err := tx.Write(0, 7); err != nil {
		t.Fatal(err)
	}
	if v, err := tx.Read(0); err != nil || v != 7 {
		t.Fatalf("own read = %d, %v", v, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := stm.Begin(1)
	if v, err := tx2.Read(0); err != nil || v != 7 {
		t.Fatalf("read = %d, %v", v, err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if !core.IsOpaque(rec.Word()) {
		t.Errorf("trace not opaque: %q", rec.Word())
	}
}

func TestTwoPLSTMSharedLocksCoexist(t *testing.T) {
	rec := &Recorder{}
	stm := NewTwoPLSTM(1, rec)
	tx1 := stm.Begin(0)
	tx2 := stm.Begin(1)
	if _, err := tx1.Read(0); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Read(0); err != nil {
		t.Fatal(err)
	}
	// A writer cannot enter while two readers hold the lock.
	tx3 := stm.Begin(2)
	if err := tx3.Write(0, 1); err != ErrAborted {
		t.Fatalf("write err = %v, want ErrAborted", err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoPLSTMExclusiveBlocksReaders(t *testing.T) {
	rec := &Recorder{}
	stm := NewTwoPLSTM(1, rec)
	tx1 := stm.Begin(0)
	if err := tx1.Write(0, 3); err != nil {
		t.Fatal(err)
	}
	tx2 := stm.Begin(1)
	if _, err := tx2.Read(0); err != ErrAborted {
		t.Fatalf("read err = %v, want ErrAborted", err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoPLSTMUpgrade(t *testing.T) {
	rec := &Recorder{}
	stm := NewTwoPLSTM(1, rec)
	tx := stm.Begin(0)
	if _, err := tx.Read(0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(0, 9); err != nil {
		t.Fatal(err) // sole reader upgrades
	}
	// Upgrade is refused when another reader shares the lock.
	tx2 := stm.Begin(1)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx3 := stm.Begin(0)
	if _, err := tx2.Read(0); err != nil {
		t.Fatal(err)
	}
	if _, err := tx3.Read(0); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Write(0, 1); err != ErrAborted {
		t.Fatalf("upgrade err = %v, want ErrAborted", err)
	}
	tx3.Abort()
}

func TestTwoPLSTMRollback(t *testing.T) {
	rec := &Recorder{}
	stm := NewTwoPLSTM(1, rec)
	seed := stm.Begin(0)
	if err := seed.Write(0, 42); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	tx := stm.Begin(1)
	if err := tx.Write(0, 99); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	check := stm.Begin(0)
	if v, err := check.Read(0); err != nil || v != 42 {
		t.Fatalf("rollback failed: %d, %v", v, err)
	}
	if err := check.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoPLSTMConcurrentTransfers(t *testing.T) {
	rec := &Recorder{}
	stm := NewTwoPLSTM(4, rec)
	sum := RunTransfers(stm, 4, 4, 25, 10, 13, 100)
	if sum != 400 {
		t.Errorf("sum = %d, want 400", sum)
	}
	if !core.IsOpaque(rec.Word()) {
		t.Errorf("trace (%d statements) not opaque", len(rec.Word()))
	}
}

func TestTwoPLSTMRandomInterleavingsOpaque(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for iter := 0; iter < 150; iter++ {
		rec := &Recorder{}
		stm := NewTwoPLSTM(2, rec)
		RunSequential(stm, rec, randomSchedule(rng, 30), randomWorkload(rng))
		if w := rec.Word(); !core.IsOpaque(w) {
			t.Fatalf("non-opaque 2PL trace %q (iteration %d)", w, iter)
		}
	}
}
