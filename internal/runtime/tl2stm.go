package runtime

import (
	"sync"
	"sync/atomic"

	"tmcheck/internal/core"
)

// TL2STM is an executable transactional locking 2: a global version clock,
// and per variable a version-and-lock word plus the value. Reads validate
// the version-and-lock word against the transaction's read version; commit
// locks the write set, increments the clock, revalidates the read set, and
// publishes. This is the published algorithm whose model (internal/tm.TL2)
// is verified opaque.
type TL2STM struct {
	clock atomic.Int64
	vars  []tl2Var
	rec   *Recorder
}

type tl2Var struct {
	mu      sync.Mutex
	version int64
	locked  bool
	value   int
}

// NewTL2STM returns a TL2 STM over k variables recording into rec.
func NewTL2STM(k int, rec *Recorder) *TL2STM {
	return &TL2STM{vars: make([]tl2Var, k), rec: rec}
}

// Name implements STM.
func (s *TL2STM) Name() string { return "tl2" }

// Begin implements STM.
func (s *TL2STM) Begin(t core.Thread) Tx {
	return &tl2Tx{stm: s, t: t, rv: s.clock.Load(), writes: map[core.Var]int{}}
}

type tl2Tx struct {
	stm    *TL2STM
	t      core.Thread
	rv     int64
	reads  []core.Var
	writes map[core.Var]int
	dead   bool
}

func (tx *tl2Tx) abortNow() error {
	if !tx.dead {
		tx.dead = true
		tx.stm.rec.Record(core.St(core.Abort(), tx.t))
	}
	return ErrAborted
}

// Read implements Tx: it returns the buffered value for own writes, and
// otherwise samples the variable's version-and-lock word atomically — a
// locked or too-new variable aborts the transaction, as in published TL2.
func (tx *tl2Tx) Read(v core.Var) (int, error) {
	if tx.dead {
		return 0, ErrAborted
	}
	checkVar(v, len(tx.stm.vars))
	if val, ok := tx.writes[v]; ok {
		tx.stm.rec.Record(core.St(core.Read(v), tx.t))
		return val, nil
	}
	slot := &tx.stm.vars[v]
	slot.mu.Lock()
	if slot.locked || slot.version > tx.rv {
		slot.mu.Unlock()
		return 0, tx.abortNow()
	}
	val := slot.value
	// The read's linearization point is inside the critical section, so
	// record it there.
	tx.stm.rec.Record(core.St(core.Read(v), tx.t))
	slot.mu.Unlock()
	tx.reads = append(tx.reads, v)
	return val, nil
}

// Write implements Tx: TL2 buffers writes until commit.
func (tx *tl2Tx) Write(v core.Var, val int) error {
	if tx.dead {
		return ErrAborted
	}
	checkVar(v, len(tx.stm.vars))
	tx.writes[v] = val
	tx.stm.rec.Record(core.St(core.Write(v), tx.t))
	return nil
}

// Commit implements Tx: lock the write set in variable order, bump the
// global clock, revalidate the read set (version and lock word), publish,
// release.
func (tx *tl2Tx) Commit() error {
	if tx.dead {
		return ErrAborted
	}
	if len(tx.writes) == 0 {
		// Read-only fast path: every read was validated against rv at read
		// time; nothing can have invalidated the snapshot it chose.
		tx.dead = true
		tx.stm.rec.Record(core.St(core.Commit(), tx.t))
		return nil
	}
	// Lock the write set in ascending order (deadlock freedom); fail on
	// any lock held by another transaction.
	var locked []core.Var
	release := func() {
		for _, v := range locked {
			slot := &tx.stm.vars[v]
			slot.mu.Lock()
			slot.locked = false
			slot.mu.Unlock()
		}
	}
	for v := core.Var(0); int(v) < len(tx.stm.vars); v++ {
		if _, ok := tx.writes[v]; !ok {
			continue
		}
		slot := &tx.stm.vars[v]
		slot.mu.Lock()
		if slot.locked {
			slot.mu.Unlock()
			release()
			return tx.abortNow()
		}
		slot.locked = true
		slot.mu.Unlock()
		locked = append(locked, v)
	}
	wv := tx.stm.clock.Add(1)
	// Revalidate the read set. Variables we also write are locked by us,
	// so only the version check applies to them — but it does apply: a
	// global read followed by a later write of the same variable is still
	// a read that must not be stale. (Skipping those entries is a real TL2
	// implementation bug; the trace checker found it in an earlier version
	// of this file via a non-opaque recorded word.)
	for _, v := range tx.reads {
		_, own := tx.writes[v]
		slot := &tx.stm.vars[v]
		slot.mu.Lock()
		bad := slot.version > tx.rv || (!own && slot.locked)
		slot.mu.Unlock()
		if bad {
			release()
			return tx.abortNow()
		}
	}
	// Publish and release. The first publication is the commit's
	// linearization point; record the commit there, while every write lock
	// is still held.
	tx.stm.rec.Record(core.St(core.Commit(), tx.t))
	for _, v := range locked {
		slot := &tx.stm.vars[v]
		slot.mu.Lock()
		slot.value = tx.writes[v]
		slot.version = wv
		slot.locked = false
		slot.mu.Unlock()
	}
	tx.dead = true
	return nil
}

// Abort implements Tx.
func (tx *tl2Tx) Abort() {
	if !tx.dead {
		tx.abortNow() //nolint:errcheck // the error is the point
	}
}
