package runtime

import (
	"sync"

	"tmcheck/internal/core"
)

// NOrecSTM is an executable NOrec (Dalessandro, Spear, Scott, PPoPP 2010):
// no per-variable metadata at all — one global sequence lock plus
// value-based validation. A transaction snapshots the global version; on
// every change it revalidates its read set BY VALUE (rereading the
// variables and comparing to what it saw); commits serialize on the
// sequence lock.
type NOrecSTM struct {
	mu   sync.Mutex // protects version and vars; models the seqlock
	ver  int64      // odd while a commit is writing back
	vars []int
	rec  *Recorder
}

// NewNOrecSTM returns a NOrec STM over k variables recording into rec.
func NewNOrecSTM(k int, rec *Recorder) *NOrecSTM {
	return &NOrecSTM{vars: make([]int, k), rec: rec}
}

// Name implements STM.
func (s *NOrecSTM) Name() string { return "norec" }

// Begin implements STM.
func (s *NOrecSTM) Begin(t core.Thread) Tx {
	s.mu.Lock()
	snap := s.ver
	s.mu.Unlock()
	return &norecTx{stm: s, t: t, snap: snap, writes: map[core.Var]int{}, reads: map[core.Var]int{}}
}

type norecTx struct {
	stm    *NOrecSTM
	t      core.Thread
	snap   int64
	reads  map[core.Var]int // value observed per variable
	order  []core.Var
	writes map[core.Var]int
	dead   bool
}

func (tx *norecTx) abortNow() error {
	if !tx.dead {
		tx.dead = true
		tx.stm.rec.Record(core.St(core.Abort(), tx.t))
	}
	return ErrAborted
}

// revalidateLocked re-reads the read set by value under the lock; on
// success it advances the snapshot to the current version.
func (tx *norecTx) revalidateLocked() bool {
	for _, v := range tx.order {
		if tx.stm.vars[v] != tx.reads[v] {
			return false
		}
	}
	tx.snap = tx.stm.ver
	return true
}

// Read implements Tx: value-based validation — if the global version moved
// since the snapshot, the whole read set revalidates by value before the
// new read is admitted.
func (tx *norecTx) Read(v core.Var) (int, error) {
	if tx.dead {
		return 0, ErrAborted
	}
	checkVar(v, len(tx.stm.vars))
	if val, ok := tx.writes[v]; ok {
		tx.stm.rec.Record(core.St(core.Read(v), tx.t))
		return val, nil
	}
	tx.stm.mu.Lock()
	if tx.stm.ver != tx.snap && !tx.revalidateLocked() {
		tx.stm.mu.Unlock()
		return 0, tx.abortNow()
	}
	val := tx.stm.vars[v]
	tx.stm.rec.Record(core.St(core.Read(v), tx.t))
	tx.stm.mu.Unlock()
	if _, seen := tx.reads[v]; !seen {
		tx.reads[v] = val
		tx.order = append(tx.order, v)
	}
	return val, nil
}

// Write implements Tx: NOrec buffers writes.
func (tx *norecTx) Write(v core.Var, val int) error {
	if tx.dead {
		return ErrAborted
	}
	checkVar(v, len(tx.stm.vars))
	tx.writes[v] = val
	tx.stm.rec.Record(core.St(core.Write(v), tx.t))
	return nil
}

// Commit implements Tx: read-only transactions with a valid snapshot are
// already serialized; writers take the sequence lock, revalidate by value,
// and write back.
func (tx *norecTx) Commit() error {
	if tx.dead {
		return ErrAborted
	}
	tx.stm.mu.Lock()
	if tx.stm.ver != tx.snap && !tx.revalidateLocked() {
		tx.stm.mu.Unlock()
		return tx.abortNow()
	}
	if len(tx.writes) > 0 {
		for v, val := range tx.writes {
			tx.stm.vars[v] = val
		}
		tx.stm.ver++
	}
	tx.stm.rec.Record(core.St(core.Commit(), tx.t))
	tx.stm.mu.Unlock()
	tx.dead = true
	return nil
}

// Abort implements Tx.
func (tx *norecTx) Abort() {
	if !tx.dead {
		tx.abortNow() //nolint:errcheck // the error is the point
	}
}
