package runtime

import (
	"sync"

	"tmcheck/internal/core"
)

// TwoPLSTM is executable two-phase locking with try-locks: reads take
// shared locks, writes take exclusive locks (upgrading a held shared
// lock), all released at commit or abort. A lock that cannot be acquired
// immediately aborts the transaction — the non-blocking discipline the
// model in internal/tm uses, which avoids deadlock by construction.
type TwoPLSTM struct {
	vars []tplVar
	rec  *Recorder
}

type tplVar struct {
	mu      sync.Mutex
	value   int
	writer  *tplTx          // exclusive holder, or nil
	readers map[*tplTx]bool // shared holders
}

// NewTwoPLSTM returns a 2PL STM over k variables recording into rec.
func NewTwoPLSTM(k int, rec *Recorder) *TwoPLSTM {
	s := &TwoPLSTM{vars: make([]tplVar, k), rec: rec}
	for i := range s.vars {
		s.vars[i].readers = map[*tplTx]bool{}
	}
	return s
}

// Name implements STM.
func (s *TwoPLSTM) Name() string { return "2pl" }

// Begin implements STM.
func (s *TwoPLSTM) Begin(t core.Thread) Tx {
	return &tplTx{stm: s, t: t, undo: map[core.Var]int{}}
}

type tplTx struct {
	stm    *TwoPLSTM
	t      core.Thread
	shared []core.Var
	excl   []core.Var
	undo   map[core.Var]int // original values of written variables
	dead   bool
}

func (tx *tplTx) abortNow() error {
	if !tx.dead {
		tx.dead = true
		// Roll back in-place writes, then release all locks.
		for _, v := range tx.excl {
			slot := &tx.stm.vars[v]
			slot.mu.Lock()
			if old, ok := tx.undo[v]; ok {
				slot.value = old
			}
			slot.writer = nil
			slot.mu.Unlock()
		}
		tx.releaseShared()
		tx.stm.rec.Record(core.St(core.Abort(), tx.t))
	}
	return ErrAborted
}

func (tx *tplTx) releaseShared() {
	for _, v := range tx.shared {
		slot := &tx.stm.vars[v]
		slot.mu.Lock()
		delete(slot.readers, tx)
		slot.mu.Unlock()
	}
	tx.shared = nil
}

func (tx *tplTx) holdsShared(v core.Var) bool {
	for _, x := range tx.shared {
		if x == v {
			return true
		}
	}
	return false
}

func (tx *tplTx) holdsExcl(v core.Var) bool {
	for _, x := range tx.excl {
		if x == v {
			return true
		}
	}
	return false
}

// Read implements Tx: acquire (or reuse) a shared lock, then read in
// place. Direct update under exclusive locks means reads always see
// consistent committed-or-own values.
func (tx *tplTx) Read(v core.Var) (int, error) {
	if tx.dead {
		return 0, ErrAborted
	}
	checkVar(v, len(tx.stm.vars))
	slot := &tx.stm.vars[v]
	slot.mu.Lock()
	if !tx.holdsExcl(v) && !tx.holdsShared(v) {
		if slot.writer != nil && slot.writer != tx {
			slot.mu.Unlock()
			return 0, tx.abortNow()
		}
		slot.readers[tx] = true
		tx.shared = append(tx.shared, v)
	}
	val := slot.value
	tx.stm.rec.Record(core.St(core.Read(v), tx.t))
	slot.mu.Unlock()
	return val, nil
}

// Write implements Tx: acquire (or upgrade to) the exclusive lock and
// write in place, remembering the old value for rollback.
func (tx *tplTx) Write(v core.Var, val int) error {
	if tx.dead {
		return ErrAborted
	}
	checkVar(v, len(tx.stm.vars))
	slot := &tx.stm.vars[v]
	slot.mu.Lock()
	if !tx.holdsExcl(v) {
		if slot.writer != nil && slot.writer != tx {
			slot.mu.Unlock()
			return tx.abortNow()
		}
		// Upgrade: no other shared holders allowed.
		for r := range slot.readers {
			if r != tx {
				slot.mu.Unlock()
				return tx.abortNow()
			}
		}
		slot.writer = tx
		delete(slot.readers, tx)
		tx.excl = append(tx.excl, v)
		if _, ok := tx.undo[v]; !ok {
			tx.undo[v] = slot.value
		}
	}
	slot.value = val
	tx.stm.rec.Record(core.St(core.Write(v), tx.t))
	slot.mu.Unlock()
	return nil
}

// Commit implements Tx: writes already happened in place; release all
// locks.
func (tx *tplTx) Commit() error {
	if tx.dead {
		return ErrAborted
	}
	tx.stm.rec.Record(core.St(core.Commit(), tx.t))
	for _, v := range tx.excl {
		slot := &tx.stm.vars[v]
		slot.mu.Lock()
		slot.writer = nil
		slot.mu.Unlock()
	}
	tx.releaseShared()
	tx.dead = true
	return nil
}

// Abort implements Tx.
func (tx *tplTx) Abort() {
	if !tx.dead {
		tx.abortNow() //nolint:errcheck // the error is the point
	}
}
