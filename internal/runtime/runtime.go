// Package runtime provides executable software transactional memories —
// real data structures operating on real values, not transition-system
// models — together with a trace recorder that emits the statement words
// of the formal framework. Running workloads against these STMs and
// checking the recorded words against the specifications (or the oracles)
// connects the verified models of internal/tm to code of the shape people
// actually deploy:
//
//   - TL2STM is transactional locking 2 with per-variable version-and-lock
//     words and a global version clock, as published;
//   - DSTMSTM is DSTM with ownership records and commit-time validation;
//   - GLockSTM is the trivial global-lock STM (always opaque, never
//     obstruction free).
//
// All three implement the STM interface. Transactions follow the usual
// speculative discipline: Read/Write may fail with ErrAborted, after which
// the transaction must be dropped (and may be retried as a fresh one).
//
// The recorded trace contains one statement per successful read/write, one
// commit per successful commit, and one abort per aborted transaction —
// exactly the successful statements of a run in the paper's sense.
package runtime

import (
	"errors"
	"fmt"
	"sync"

	"tmcheck/internal/core"
)

// ErrAborted is returned by transaction operations when the transaction
// has been aborted (by a conflict or by the STM's validation) and must be
// abandoned.
var ErrAborted = errors.New("stm: transaction aborted")

// STM is an executable transactional memory over k integer variables.
type STM interface {
	// Name identifies the implementation.
	Name() string
	// Begin starts a transaction for the given thread.
	Begin(t core.Thread) Tx
}

// Tx is a live transaction. After any method returns ErrAborted the
// transaction is dead: the abort has been recorded and no further calls
// are allowed.
type Tx interface {
	// Read returns the variable's value as of the transaction's snapshot.
	Read(v core.Var) (int, error)
	// Write buffers (or performs, depending on the STM) a write.
	Write(v core.Var, val int) error
	// Commit attempts to make the transaction's effects global.
	Commit() error
	// Abort voluntarily abandons the transaction (idempotent).
	Abort()
}

// Recorder collects the global word of successful statements across
// threads. It is safe for concurrent use; the order of statements is the
// order in which the STM's internal critical sections complete, which is a
// linearization of the actual execution.
type Recorder struct {
	mu sync.Mutex
	w  core.Word
}

// Record appends a statement.
func (r *Recorder) Record(s core.Stmt) {
	r.mu.Lock()
	r.w = append(r.w, s)
	r.mu.Unlock()
}

// Word returns a copy of the recorded word.
func (r *Recorder) Word() core.Word {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.w.Clone()
}

// Reset clears the recorded word.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.w = nil
	r.mu.Unlock()
}

// checkVar panics on out-of-range variables — a programming error in the
// workload, not a TM behaviour.
func checkVar(v core.Var, k int) {
	if int(v) >= k {
		panic(fmt.Sprintf("stm: variable %d out of range [0,%d)", v, k))
	}
}
