package runtime

import (
	"sync"

	"tmcheck/internal/core"
)

// GLockSTM is the baseline: one global mutex held for the whole
// transaction. Trivially opaque (transactions are truly sequential) and a
// useful control for the trace checker — its recorded words must always be
// sequential.
type GLockSTM struct {
	mu   sync.Mutex
	vars []int
	rec  *Recorder
}

// NewGLockSTM returns a global-lock STM over k variables recording into
// rec.
func NewGLockSTM(k int, rec *Recorder) *GLockSTM {
	return &GLockSTM{vars: make([]int, k), rec: rec}
}

// Name implements STM.
func (s *GLockSTM) Name() string { return "glock" }

// Begin implements STM: it blocks until the global lock is available.
func (s *GLockSTM) Begin(t core.Thread) Tx {
	s.mu.Lock()
	return &glockTx{stm: s, t: t}
}

type glockTx struct {
	stm  *GLockSTM
	t    core.Thread
	dead bool
}

// Read implements Tx.
func (tx *glockTx) Read(v core.Var) (int, error) {
	if tx.dead {
		return 0, ErrAborted
	}
	checkVar(v, len(tx.stm.vars))
	tx.stm.rec.Record(core.St(core.Read(v), tx.t))
	return tx.stm.vars[v], nil
}

// Write implements Tx.
func (tx *glockTx) Write(v core.Var, val int) error {
	if tx.dead {
		return ErrAborted
	}
	checkVar(v, len(tx.stm.vars))
	tx.stm.rec.Record(core.St(core.Write(v), tx.t))
	tx.stm.vars[v] = val
	return nil
}

// Commit implements Tx: writes were performed in place under the lock, so
// committing just releases it.
func (tx *glockTx) Commit() error {
	if tx.dead {
		return ErrAborted
	}
	tx.stm.rec.Record(core.St(core.Commit(), tx.t))
	tx.dead = true
	tx.stm.mu.Unlock()
	return nil
}

// Abort implements Tx. Note the direct-update caveat: the global lock
// makes rollback unnecessary for isolation, but aborting loses the
// in-place writes' rollback — this STM is meant for committing workloads
// and the trace checker, not as a serious design.
func (tx *glockTx) Abort() {
	if tx.dead {
		return
	}
	tx.stm.rec.Record(core.St(core.Abort(), tx.t))
	tx.dead = true
	tx.stm.mu.Unlock()
}
