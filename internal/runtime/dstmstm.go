package runtime

import (
	"sync"
	"sync/atomic"

	"tmcheck/internal/core"
)

// DSTMSTM is an executable DSTM: per-variable ownership records with
// deferred update, eager write-write conflict resolution by stealing (the
// aggressive policy the model checker proves obstruction free), and
// commit-time read validation.
//
// Simplification relative to hardware DSTM: the validate-and-commit
// sequence runs under a global commit mutex rather than a multi-word CAS;
// this preserves the algorithm's conflict structure (what aborts whom and
// when) while keeping the code short. Reads and writes remain fine
// grained.
type DSTMSTM struct {
	commitMu sync.Mutex
	vars     []dstmVar
	rec      *Recorder
	nextID   atomic.Int64
}

type dstmVar struct {
	mu      sync.Mutex
	value   int     // last committed value
	owner   *dstmTx // current writer, or nil
	version int64   // bumped on every commit that writes the variable
}

// NewDSTMSTM returns a DSTM over k variables recording into rec.
func NewDSTMSTM(k int, rec *Recorder) *DSTMSTM {
	return &DSTMSTM{vars: make([]dstmVar, k), rec: rec}
}

// Name implements STM.
func (s *DSTMSTM) Name() string { return "dstm" }

// Begin implements STM.
func (s *DSTMSTM) Begin(t core.Thread) Tx {
	tx := &dstmTx{stm: s, t: t, id: s.nextID.Add(1), writes: map[core.Var]int{}}
	tx.reads = map[core.Var]int64{}
	return tx
}

type dstmTx struct {
	stm     *DSTMSTM
	t       core.Thread
	id      int64
	aborted atomic.Bool // set by lock thieves
	reads   map[core.Var]int64
	writes  map[core.Var]int
	owned   []core.Var
	dead    bool
}

func (tx *dstmTx) abortNow() error {
	if !tx.dead {
		tx.dead = true
		tx.releaseOwnership()
		tx.stm.rec.Record(core.St(core.Abort(), tx.t))
	}
	return ErrAborted
}

func (tx *dstmTx) releaseOwnership() {
	for _, v := range tx.owned {
		slot := &tx.stm.vars[v]
		slot.mu.Lock()
		if slot.owner == tx {
			slot.owner = nil
		}
		slot.mu.Unlock()
	}
	tx.owned = nil
}

// validateReads checks that every variable read so far still carries the
// version it was read at. DSTM performs this validation on every new open
// — that, not just commit-time validation, is what makes it opaque: a
// transaction never acts on an inconsistent snapshot.
func (tx *dstmTx) validateReads() bool {
	for v, ver := range tx.reads {
		slot := &tx.stm.vars[v]
		slot.mu.Lock()
		stale := slot.version != ver
		slot.mu.Unlock()
		if stale {
			return false
		}
	}
	return true
}

// Read implements Tx: own writes read the buffered value; global reads
// validate the read set (DSTM validates on every open), then snapshot the
// committed value and remember its version for commit-time validation.
// Reading a variable owned by another writer is allowed — DSTM readers are
// invisible and see the old committed value.
func (tx *dstmTx) Read(v core.Var) (int, error) {
	if tx.dead || tx.aborted.Load() {
		return 0, tx.abortNow()
	}
	checkVar(v, len(tx.stm.vars))
	if !tx.validateReads() {
		return 0, tx.abortNow()
	}
	if val, ok := tx.writes[v]; ok {
		tx.stm.rec.Record(core.St(core.Read(v), tx.t))
		return val, nil
	}
	slot := &tx.stm.vars[v]
	slot.mu.Lock()
	val := slot.value
	ver := slot.version
	tx.stm.rec.Record(core.St(core.Read(v), tx.t))
	slot.mu.Unlock()
	if _, seen := tx.reads[v]; !seen {
		tx.reads[v] = ver
	}
	return val, nil
}

// Write implements Tx: acquire ownership of the variable, aggressively
// aborting the current owner, then buffer the value.
func (tx *dstmTx) Write(v core.Var, val int) error {
	if tx.dead || tx.aborted.Load() {
		return tx.abortNow()
	}
	checkVar(v, len(tx.stm.vars))
	if !tx.validateReads() {
		return tx.abortNow()
	}
	if _, own := tx.writes[v]; !own {
		slot := &tx.stm.vars[v]
		slot.mu.Lock()
		if slot.owner != nil && slot.owner != tx {
			// Aggressive contention management: steal, aborting the owner.
			slot.owner.aborted.Store(true)
		}
		slot.owner = tx
		slot.mu.Unlock()
		tx.owned = append(tx.owned, v)
	}
	tx.writes[v] = val
	tx.stm.rec.Record(core.St(core.Write(v), tx.t))
	return nil
}

// Commit implements Tx: validate the read set (versions unchanged, no
// variable we read is owned by an active writer we did not abort), then
// publish the write buffer.
func (tx *dstmTx) Commit() error {
	if tx.dead || tx.aborted.Load() {
		return tx.abortNow()
	}
	tx.stm.commitMu.Lock()
	if tx.aborted.Load() {
		tx.stm.commitMu.Unlock()
		return tx.abortNow()
	}
	// Validate: every read variable still has the version we read, and any
	// current owner of a read variable is aborted (DSTM's validate aborts
	// owners of the read set).
	for v, ver := range tx.reads {
		slot := &tx.stm.vars[v]
		slot.mu.Lock()
		stale := slot.version != ver
		if !stale && slot.owner != nil && slot.owner != tx {
			slot.owner.aborted.Store(true)
			slot.owner = nil
		}
		slot.mu.Unlock()
		if stale {
			tx.stm.commitMu.Unlock()
			return tx.abortNow()
		}
	}
	// Publish.
	tx.stm.rec.Record(core.St(core.Commit(), tx.t))
	for v, val := range tx.writes {
		slot := &tx.stm.vars[v]
		slot.mu.Lock()
		slot.value = val
		slot.version++
		if slot.owner == tx {
			slot.owner = nil
		}
		slot.mu.Unlock()
	}
	tx.owned = nil
	tx.dead = true
	tx.stm.commitMu.Unlock()
	return nil
}

// Abort implements Tx.
func (tx *dstmTx) Abort() {
	if !tx.dead {
		tx.abortNow() //nolint:errcheck // the error is the point
	}
}
