package runtime

import (
	"math/rand"
	"sync"
	"testing"

	"tmcheck/internal/core"
)

func TestNOrecBasic(t *testing.T) {
	rec := &Recorder{}
	stm := NewNOrecSTM(2, rec)
	tx := stm.Begin(0)
	if err := tx.Write(0, 11); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := stm.Begin(1)
	if v, err := tx2.Read(0); err != nil || v != 11 {
		t.Fatalf("read = %d, %v", v, err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if !core.IsOpaque(rec.Word()) {
		t.Errorf("trace not opaque: %q", rec.Word())
	}
}

func TestNOrecValueValidationAborts(t *testing.T) {
	rec := &Recorder{}
	stm := NewNOrecSTM(2, rec)
	tx1 := stm.Begin(0)
	if _, err := tx1.Read(0); err != nil { // sees 0
		t.Fatal(err)
	}
	// Another transaction changes the value.
	tx2 := stm.Begin(1)
	if err := tx2.Write(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	// tx1's next read triggers revalidation: the value changed, abort.
	if _, err := tx1.Read(1); err != ErrAborted {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
}

func TestNOrecABAIsAccepted(t *testing.T) {
	// Value-based validation: if the value returns to what was read, the
	// transaction survives — NOrec's semantic difference from TL2. (The
	// resulting word may fall outside conflict-based opacity; NOrec is
	// correct by value semantics, which the word-level framework cannot
	// see. This is exactly why the model in internal/tm abstracts NOrec
	// with modified sets — conservatively, without ABA acceptance.)
	rec := &Recorder{}
	stm := NewNOrecSTM(2, rec)
	tx1 := stm.Begin(0)
	if v, _ := tx1.Read(0); v != 0 {
		t.Fatal("expected 0")
	}
	// v goes 0 → 3 → 0.
	for _, val := range []int{3, 0} {
		tx2 := stm.Begin(1)
		if err := tx2.Write(0, val); err != nil {
			t.Fatal(err)
		}
		if err := tx2.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// tx1 revalidates by value: 0 again, so it survives and commits.
	if _, err := tx1.Read(1); err != nil {
		t.Fatalf("ABA read aborted: %v", err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatalf("ABA commit aborted: %v", err)
	}
}

// With globally unique write values, value-based validation coincides with
// version-based validation, and every recorded trace must be opaque.
func TestNOrecUniqueValueTracesOpaque(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 100; iter++ {
		rec := &Recorder{}
		stm := NewNOrecSTM(2, rec)
		next := 1
		var txs [2]Tx
		for step := 0; step < 25; step++ {
			th := core.Thread(rng.Intn(2))
			if txs[th] == nil {
				txs[th] = stm.Begin(th)
			}
			var err error
			switch rng.Intn(4) {
			case 0, 1:
				_, err = txs[th].Read(core.Var(rng.Intn(2)))
			case 2:
				err = txs[th].Write(core.Var(rng.Intn(2)), next)
				next++
			case 3:
				err = txs[th].Commit()
				txs[th] = nil
			}
			if err != nil {
				txs[th] = nil
			}
		}
		if w := rec.Word(); !core.IsOpaque(w) {
			t.Fatalf("iteration %d: non-opaque trace %q", iter, w)
		}
	}
}

func TestNOrecConcurrentInvariant(t *testing.T) {
	rec := &Recorder{}
	stm := NewNOrecSTM(4, rec)
	sum := RunTransfers(stm, 4, 4, 25, 10, 7, 50)
	if sum != 200 {
		t.Errorf("sum = %d, want 200", sum)
	}
}

// The sequence lock must serialize writers even under contention.
func TestNOrecWritersExcludeEachOther(t *testing.T) {
	rec := &Recorder{}
	stm := NewNOrecSTM(1, rec)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(t core.Thread) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tx := stm.Begin(t)
				v, err := tx.Read(0)
				if err != nil {
					continue
				}
				if tx.Write(0, v+1) != nil {
					continue
				}
				if tx.Commit() != nil {
					continue
				}
			}
		}(core.Thread(g))
	}
	wg.Wait()
	// The final value equals the number of successful increments: read it
	// and compare against the recorded commit count of writers.
	tx := stm.Begin(0)
	v, err := tx.Read(0)
	if err != nil || tx.Commit() != nil {
		t.Fatal("final read aborted")
	}
	// Every committed read-modify-write bumped the counter exactly once
	// (the sequence lock serializes them), so the final value equals the
	// number of commits minus the final read-only one.
	commits := 0
	for _, s := range rec.Word() {
		if s.Cmd.Op == core.OpCommit {
			commits++
		}
	}
	if v != commits-1 {
		t.Errorf("counter = %d, want %d committed increments", v, commits-1)
	}
}
