package runtime

import (
	"math/rand"
	"testing"

	"tmcheck/internal/core"
)

func TestTL2BasicTransaction(t *testing.T) {
	rec := &Recorder{}
	stm := NewTL2STM(2, rec)
	tx := stm.Begin(0)
	if v, err := tx.Read(0); err != nil || v != 0 {
		t.Fatalf("Read = %d, %v", v, err)
	}
	if err := tx.Write(1, 42); err != nil {
		t.Fatal(err)
	}
	if v, err := tx.Read(1); err != nil || v != 42 {
		t.Fatalf("own-write read = %d, %v", v, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// The committed value is visible to the next transaction.
	tx2 := stm.Begin(1)
	if v, err := tx2.Read(1); err != nil || v != 42 {
		t.Fatalf("post-commit read = %d, %v", v, err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	want := core.MustParseWord("(r,1)1, (w,2)1, (r,2)1, c1, (r,2)2, c2")
	if got := rec.Word(); !got.Equal(want) {
		t.Errorf("word = %q, want %q", got, want)
	}
}

func TestTL2StaleReadAborts(t *testing.T) {
	rec := &Recorder{}
	stm := NewTL2STM(2, rec)
	tx1 := stm.Begin(0)
	if _, err := tx1.Read(0); err != nil {
		t.Fatal(err)
	}
	// Another transaction commits a write to variable 1.
	tx2 := stm.Begin(1)
	if err := tx2.Write(1, 7); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	// tx1's read of the now-newer variable must abort (version > rv).
	if _, err := tx1.Read(1); err != ErrAborted {
		t.Fatalf("stale read: err = %v, want ErrAborted", err)
	}
	w := rec.Word()
	if w[len(w)-1] != core.St(core.Abort(), 0) {
		t.Errorf("abort not recorded: %q", w)
	}
}

func TestTL2WriteConflictAborts(t *testing.T) {
	rec := &Recorder{}
	stm := NewTL2STM(1, rec)
	tx1 := stm.Begin(0)
	tx2 := stm.Begin(1)
	if err := tx1.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Write(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	// tx2's read version predates tx1's commit; committing its blind write
	// succeeds (TL2 validates only the read set), which is serializable.
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if !core.IsOpaque(rec.Word()) {
		t.Errorf("word not opaque: %q", rec.Word())
	}
}

func TestTL2ReadSetRevalidationAtCommit(t *testing.T) {
	rec := &Recorder{}
	stm := NewTL2STM(2, rec)
	tx1 := stm.Begin(0)
	if _, err := tx1.Read(0); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Write(1, 9); err != nil {
		t.Fatal(err)
	}
	// A competing commit bumps variable 0's version.
	tx2 := stm.Begin(1)
	if err := tx2.Write(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	// tx1 wrote variable 1, so it revalidates its read of variable 0 at
	// commit — and must abort.
	if err := tx1.Commit(); err != ErrAborted {
		t.Fatalf("commit err = %v, want ErrAborted", err)
	}
	if !core.IsOpaque(rec.Word()) {
		t.Errorf("word not opaque: %q", rec.Word())
	}
}

func TestDSTMBasicAndSteal(t *testing.T) {
	rec := &Recorder{}
	stm := NewDSTMSTM(2, rec)
	tx1 := stm.Begin(0)
	if err := tx1.Write(0, 3); err != nil {
		t.Fatal(err)
	}
	// tx2 steals ownership of variable 0; tx1 is doomed.
	tx2 := stm.Begin(1)
	if err := tx2.Write(0, 4); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != ErrAborted {
		t.Fatalf("victim commit err = %v, want ErrAborted", err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	tx3 := stm.Begin(0)
	if v, err := tx3.Read(0); err != nil || v != 4 {
		t.Fatalf("read = %d, %v; want 4", v, err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
	if !core.IsOpaque(rec.Word()) {
		t.Errorf("word not opaque: %q", rec.Word())
	}
}

func TestDSTMOpenValidationPreventsInconsistentSnapshot(t *testing.T) {
	rec := &Recorder{}
	stm := NewDSTMSTM(2, rec)
	tx1 := stm.Begin(0)
	if _, err := tx1.Read(0); err != nil {
		t.Fatal(err)
	}
	// Another transaction commits writes to both variables.
	tx2 := stm.Begin(1)
	if err := tx2.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Write(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	// tx1's next open must abort rather than observe the new value of
	// variable 1 alongside the old value of variable 0.
	if _, err := tx1.Read(1); err != ErrAborted {
		t.Fatalf("read err = %v, want ErrAborted", err)
	}
	if !core.IsOpaque(rec.Word()) {
		t.Errorf("word not opaque: %q", rec.Word())
	}
}

func TestGLockSequentialWords(t *testing.T) {
	rec := &Recorder{}
	stm := NewGLockSTM(2, rec)
	for i := 0; i < 3; i++ {
		tx := stm.Begin(core.Thread(i % 2))
		if _, err := tx.Read(0); err != nil {
			t.Fatal(err)
		}
		if err := tx.Write(1, i); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	w := rec.Word()
	if !core.IsSequential(w) {
		t.Errorf("global-lock word not sequential: %q", w)
	}
	if !core.IsOpaque(w) {
		t.Errorf("global-lock word not opaque: %q", w)
	}
}

func TestDeadTransactionsRefuseWork(t *testing.T) {
	rec := &Recorder{}
	stm := NewTL2STM(1, rec)
	tx := stm.Begin(0)
	tx.Abort()
	if _, err := tx.Read(0); err != ErrAborted {
		t.Errorf("Read after abort: %v", err)
	}
	if err := tx.Write(0, 1); err != ErrAborted {
		t.Errorf("Write after abort: %v", err)
	}
	if err := tx.Commit(); err != ErrAborted {
		t.Errorf("Commit after abort: %v", err)
	}
	// Abort is idempotent: exactly one abort statement recorded.
	aborts := 0
	for _, s := range rec.Word() {
		if s.Cmd.Op == core.OpAbort {
			aborts++
		}
	}
	if aborts != 1 {
		t.Errorf("%d aborts recorded, want 1", aborts)
	}
}

// Random sequential interleavings: every recorded word of the real STMs
// must be opaque — the runtime counterpart of Theorem 4.
func TestRandomInterleavingsAreOpaque(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 150; iter++ {
		workload := randomWorkload(rng)
		schedule := randomSchedule(rng, 30)
		for _, mk := range []func(*Recorder) STM{
			func(r *Recorder) STM { return NewTL2STM(2, r) },
			func(r *Recorder) STM { return NewDSTMSTM(2, r) },
		} {
			rec := &Recorder{}
			stm := mk(rec)
			RunSequential(stm, rec, schedule, workload)
			if w := rec.Word(); !core.IsOpaque(w) {
				t.Fatalf("%s produced non-opaque word %q (iteration %d)", stm.Name(), w, iter)
			}
		}
	}
}

func randomWorkload(rng *rand.Rand) Workload {
	w := Workload{}
	for t := core.Thread(0); t < 2; t++ {
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			var script TxScript
			steps := 1 + rng.Intn(3)
			for j := 0; j < steps; j++ {
				v := core.Var(rng.Intn(2))
				if rng.Intn(2) == 0 {
					script = append(script, core.Read(v))
				} else {
					script = append(script, core.Write(v))
				}
			}
			w[t] = append(w[t], script)
		}
	}
	return w
}

func randomSchedule(rng *rand.Rand, n int) []core.Thread {
	s := make([]core.Thread, n)
	for i := range s {
		s[i] = core.Thread(rng.Intn(2))
	}
	return s
}

// Concurrent bank transfers: the sum of all accounts is invariant, and the
// recorded trace is opaque. This is the classic end-to-end STM test, run
// against real goroutines.
func TestConcurrentTransfers(t *testing.T) {
	const (
		k       = 4
		threads = 4
		count   = 25
		initial = 100
	)
	for _, mk := range []func(*Recorder) STM{
		func(r *Recorder) STM { return NewTL2STM(k, r) },
		func(r *Recorder) STM { return NewDSTMSTM(k, r) },
		func(r *Recorder) STM { return NewGLockSTM(k, r) },
	} {
		rec := &Recorder{}
		stm := mk(rec)
		sum := RunTransfers(stm, k, threads, count, 10, 99, initial)
		if sum != k*initial {
			t.Errorf("%s: sum = %d, want %d", stm.Name(), sum, k*initial)
		}
		w := rec.Word()
		if !core.IsOpaque(w) {
			t.Errorf("%s: recorded word (%d statements) not opaque", stm.Name(), len(w))
		}
	}
}

func TestSTMNamesAndRecorderReset(t *testing.T) {
	rec := &Recorder{}
	for _, tc := range []struct {
		stm  STM
		want string
	}{
		{NewTL2STM(1, rec), "tl2"},
		{NewDSTMSTM(1, rec), "dstm"},
		{NewNOrecSTM(1, rec), "norec"},
		{NewTwoPLSTM(1, rec), "2pl"},
		{NewGLockSTM(1, rec), "glock"},
	} {
		if got := tc.stm.Name(); got != tc.want {
			t.Errorf("Name = %q, want %q", got, tc.want)
		}
	}
	rec.Record(core.St(core.Commit(), 0))
	if len(rec.Word()) != 1 {
		t.Fatal("record failed")
	}
	rec.Reset()
	if len(rec.Word()) != 0 {
		t.Error("Reset did not clear")
	}
}

func TestAbortMethodsIdempotent(t *testing.T) {
	for _, mk := range []func(*Recorder) STM{
		func(r *Recorder) STM { return NewTL2STM(1, r) },
		func(r *Recorder) STM { return NewDSTMSTM(1, r) },
		func(r *Recorder) STM { return NewNOrecSTM(1, r) },
		func(r *Recorder) STM { return NewTwoPLSTM(1, r) },
	} {
		rec := &Recorder{}
		stm := mk(rec)
		tx := stm.Begin(0)
		if err := tx.Write(0, 1); err != nil {
			t.Fatalf("%s: %v", stm.Name(), err)
		}
		tx.Abort()
		tx.Abort() // second abort is a no-op
		aborts := 0
		for _, s := range rec.Word() {
			if s.Cmd.Op == core.OpAbort {
				aborts++
			}
		}
		if aborts != 1 {
			t.Errorf("%s: %d aborts recorded, want 1", stm.Name(), aborts)
		}
	}
}

func TestCheckVarPanics(t *testing.T) {
	rec := &Recorder{}
	stm := NewTL2STM(1, rec)
	tx := stm.Begin(0)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range variable should panic")
		}
	}()
	tx.Read(5) //nolint:errcheck // panics
}
