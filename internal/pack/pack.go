// Package pack is the zero-allocation substrate of the state-space
// core: fixed-width bit-packed state keys and an open-addressing hash
// table that interns them.
//
// A TM-algorithm product state (TM state × pending commands × manager
// state) fits in a handful of machine words once each field is written
// at its exact bit width — a (2,2) TL2 product state is 34 bits, the
// worst bounded instance (4 threads, 16 variables) is 300 bits, under
// MaxWords×64. The Writer/Reader pair are LSB-first bit cursors over a
// caller-provided word buffer; the Map stores the packed words
// directly in one dense flat slice (stride = words per key) and probes
// linearly, so interning a state touches no pointers, no interface
// values, and no per-entry heap cells.
package pack

import "math/bits"

// MaxWords is the largest key width (in 64-bit words) the packed state
// path supports: 5×64 = 320 bits covers the worst bounded TM product
// (TL2/ETL at 4 threads and 16 variables needs 300).
const MaxWords = 5

// Writer is an LSB-first bit cursor over a word buffer. The zero
// Writer over a zeroed buffer is ready to use; Put appends fields at
// increasing bit offsets.
type Writer struct {
	W   []uint64
	off uint
}

// Put appends the low width bits of v at the cursor. width must be in
// [0,64] and the buffer must have room; the caller guarantees both
// (widths are fixed per instance at construction time).
func (w *Writer) Put(v uint64, width uint) {
	if width == 0 {
		return
	}
	i, sh := w.off>>6, w.off&63
	w.W[i] |= v << sh
	if sh+width > 64 {
		w.W[i+1] |= v >> (64 - sh)
	}
	w.off += width
}

// Bits returns the number of bits written so far.
func (w *Writer) Bits() int { return int(w.off) }

// Reset points the cursor at the start of buf. Hot paths keep one
// Writer alive and Reset it per key, so taking its address for an
// interface call never allocates.
func (w *Writer) Reset(buf []uint64) { w.W, w.off = buf, 0 }

// Reader is the matching LSB-first bit cursor for decoding.
type Reader struct {
	W   []uint64
	off uint
}

// Reset points the cursor at the start of buf.
func (r *Reader) Reset(buf []uint64) { r.W, r.off = buf, 0 }

// Get reads the next width bits. width must be in [1,64].
func (r *Reader) Get(width uint) uint64 {
	i, sh := r.off>>6, r.off&63
	v := r.W[i] >> sh
	if sh+width > 64 {
		v |= r.W[i+1] << (64 - sh)
	}
	r.off += width
	if width == 64 {
		return v
	}
	return v & (1<<width - 1)
}

// Hash mixes the kw words of a key into a 64-bit hash. It is a fixed
// (seedless) multiply-xor mixer: canonical numbering never depends on
// hash values, so determinism across processes is free and useful.
func Hash(key []uint64) uint64 {
	const m = 0x9e3779b97f4a7c15
	h := uint64(len(key)) * m
	for _, w := range key {
		h ^= w
		h *= m
		h ^= h >> 29
	}
	h ^= h >> 32
	return h
}

// GrowFunc reallocates a flat key slice to capacity ≥ need words,
// preserving its contents and length. The disk-spill layer
// (internal/snap) supplies mmap-backed growers so visited sets larger
// than RAM stay addressable; the returned slice replaces cur, which
// must not be used afterwards.
type GrowFunc func(need int, cur []uint64) []uint64

// Map is an open-addressing hash table from fixed-width keys to int32
// values, preserving insertion order: KeyAt/ValAt index entries
// densely in first-Put order. Key storage is one flat []uint64 at
// stride kw — no per-entry allocation, no interface boxing.
//
// The zero Map is not ready; use NewMap. Map is not safe for
// concurrent use; callers lock (the parallel engines shard instead).
type Map struct {
	kw       int
	mask     uint64
	slots    []int32 // entry index + 1; 0 = empty
	keys     []uint64
	vals     []int32
	growKeys GrowFunc // nil: plain append growth
}

// SetKeyBacking installs a custom allocator for the flat key storage.
// All subsequent key-array growth goes through grow instead of append's
// heap doubling; existing keys migrate on the first growth. The slot
// and value arrays (4 bytes per entry each) stay on the heap.
func (m *Map) SetKeyBacking(grow GrowFunc) { m.growKeys = grow }

// appendKey appends one key to the dense storage, honoring the custom
// backing when one is installed.
func (m *Map) appendKey(key []uint64) {
	if m.growKeys != nil {
		if need := len(m.keys) + len(key); need > cap(m.keys) {
			m.keys = m.growKeys(need, m.keys)
		}
	}
	m.keys = append(m.keys, key...)
}

// NewMap returns an empty map for keys of kw words, sized for about
// hint entries.
func NewMap(kw, hint int) *Map {
	if kw < 1 {
		kw = 1
	}
	n := uint64(16)
	for int(n)*3 < hint*4 { // capacity ≥ 4/3·hint keeps load ≤ 0.75
		n <<= 1
	}
	return &Map{kw: kw, mask: n - 1, slots: make([]int32, n)}
}

// Words returns the key width in words.
func (m *Map) Words() int { return m.kw }

// Len returns the number of entries.
func (m *Map) Len() int { return len(m.vals) }

// KeyAt returns the i-th inserted key, aliasing the map's storage; the
// caller must not modify it and must copy it before the next Put (a
// grow may move the backing array).
func (m *Map) KeyAt(i int32) []uint64 {
	off := int(i) * m.kw
	return m.keys[off : off+m.kw : off+m.kw]
}

// ValAt returns the i-th inserted value.
func (m *Map) ValAt(i int32) int32 { return m.vals[i] }

// SetValAt overwrites the i-th inserted value.
func (m *Map) SetValAt(i, v int32) { m.vals[i] = v }

func (m *Map) equalAt(e int32, key []uint64) bool {
	off := int(e) * m.kw
	for j, w := range key {
		if m.keys[off+j] != w {
			return false
		}
	}
	return true
}

// Get returns the value stored for key.
func (m *Map) Get(key []uint64) (int32, bool) {
	i := Hash(key) & m.mask
	for {
		s := m.slots[i]
		if s == 0 {
			return 0, false
		}
		if m.equalAt(s-1, key) {
			return m.vals[s-1], true
		}
		i = (i + 1) & m.mask
	}
}

// GetOrPut returns the existing value for key, or inserts val and
// reports the insertion. The key is copied into the map's storage.
func (m *Map) GetOrPut(key []uint64, val int32) (int32, bool) {
	i := Hash(key) & m.mask
	for {
		s := m.slots[i]
		if s == 0 {
			break
		}
		if m.equalAt(s-1, key) {
			return m.vals[s-1], false
		}
		i = (i + 1) & m.mask
	}
	e := int32(len(m.vals))
	m.appendKey(key)
	m.vals = append(m.vals, val)
	m.slots[i] = e + 1
	if uint64(len(m.vals))*4 > (m.mask+1)*3 {
		m.grow()
	}
	return val, true
}

// Put inserts or overwrites the value for key.
func (m *Map) Put(key []uint64, val int32) {
	i := Hash(key) & m.mask
	for {
		s := m.slots[i]
		if s == 0 {
			break
		}
		if m.equalAt(s-1, key) {
			m.vals[s-1] = val
			return
		}
		i = (i + 1) & m.mask
	}
	e := int32(len(m.vals))
	m.appendKey(key)
	m.vals = append(m.vals, val)
	m.slots[i] = e + 1
	if uint64(len(m.vals))*4 > (m.mask+1)*3 {
		m.grow()
	}
}

// grow doubles the slot array and rehashes every entry (the dense
// key/value storage is untouched).
func (m *Map) grow() {
	n := (m.mask + 1) << 1
	m.mask = n - 1
	if uint64(cap(m.slots)) >= n {
		m.slots = m.slots[:n]
		clear(m.slots)
	} else {
		m.slots = make([]int32, n)
	}
	for e := int32(0); int(e) < len(m.vals); e++ {
		i := Hash(m.KeyAt(e)) & m.mask
		for m.slots[i] != 0 {
			i = (i + 1) & m.mask
		}
		m.slots[i] = e + 1
	}
}

// Reset empties the map keeping all capacity, so per-level candidate
// tables are reused allocation-free across BFS levels.
func (m *Map) Reset() {
	clear(m.slots)
	m.keys = m.keys[:0]
	m.vals = m.vals[:0]
}

// Intern returns the dense id of key, assigning the next one
// (== Len() before the call) on first sight — the open-addressing
// replacement for the interning maps of the state-space engines.
func (m *Map) Intern(key []uint64) (id int32, fresh bool) {
	return m.GetOrPut(key, int32(len(m.vals)))
}

// WordsFor returns the number of 64-bit words needed for a key of the
// given bit width (at least 1).
func WordsFor(bitWidth int) int {
	if bitWidth <= 0 {
		return 1
	}
	return (bitWidth + 63) / 64
}

// BitsFor returns the width in bits needed to store values 0..n-1
// (0 for n ≤ 1: a single possible value needs no bits).
func BitsFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
