package pack

import (
	"math/rand"
	"testing"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		var widths []uint
		var vals []uint64
		total := 0
		for total < MaxWords*64-64 {
			w := uint(rng.Intn(64) + 1)
			widths = append(widths, w)
			var v uint64
			if w == 64 {
				v = rng.Uint64()
			} else {
				v = rng.Uint64() & (1<<w - 1)
			}
			vals = append(vals, v)
			total += int(w)
		}
		var buf [MaxWords]uint64
		wr := Writer{W: buf[:]}
		for i, w := range widths {
			wr.Put(vals[i], w)
		}
		if wr.Bits() != total {
			t.Fatalf("Bits() = %d, want %d", wr.Bits(), total)
		}
		rd := Reader{W: buf[:]}
		for i, w := range widths {
			if got := rd.Get(w); got != vals[i] {
				t.Fatalf("trial %d field %d (width %d): got %#x, want %#x", trial, i, w, got, vals[i])
			}
		}
	}
}

func TestWriterZeroWidth(t *testing.T) {
	var buf [1]uint64
	wr := Writer{W: buf[:]}
	wr.Put(0, 0)
	wr.Put(5, 3)
	wr.Put(99, 0)
	wr.Put(1, 1)
	rd := Reader{W: buf[:]}
	if got := rd.Get(3); got != 5 {
		t.Fatalf("after zero-width put: got %d, want 5", got)
	}
	if got := rd.Get(1); got != 1 {
		t.Fatalf("second field: got %d, want 1", got)
	}
}

func TestMapInternDenseIDs(t *testing.T) {
	for _, kw := range []int{1, 2, 5} {
		m := NewMap(kw, 0)
		rng := rand.New(rand.NewSource(int64(kw)))
		keys := make([][]uint64, 0, 3000)
		seen := map[[MaxWords]uint64]int32{}
		for i := 0; i < 3000; i++ {
			k := make([]uint64, kw)
			// Small value range forces duplicates.
			for j := range k {
				k[j] = uint64(rng.Intn(40))
			}
			keys = append(keys, k)
			var arr [MaxWords]uint64
			copy(arr[:], k)
			id, fresh := m.Intern(k)
			if want, ok := seen[arr]; ok {
				if fresh || id != want {
					t.Fatalf("kw=%d: re-intern gave (%d,%v), want (%d,false)", kw, id, fresh, want)
				}
			} else {
				if !fresh || int(id) != len(seen) {
					t.Fatalf("kw=%d: first intern gave (%d,%v), want (%d,true)", kw, id, fresh, len(seen))
				}
				seen[arr] = id
			}
		}
		if m.Len() != len(seen) {
			t.Fatalf("kw=%d: Len=%d, want %d", kw, m.Len(), len(seen))
		}
		// Every distinct key must be retrievable, and KeyAt must invert.
		for arr, id := range seen {
			got, ok := m.Get(arr[:kw])
			if !ok || got != id {
				t.Fatalf("kw=%d: Get = (%d,%v), want (%d,true)", kw, got, ok, id)
			}
			stored := m.KeyAt(id)
			for j := 0; j < kw; j++ {
				if stored[j] != arr[j] {
					t.Fatalf("kw=%d: KeyAt(%d) mismatch", kw, id)
				}
			}
		}
		_ = keys
	}
}

func TestMapPutOverwriteAndReset(t *testing.T) {
	m := NewMap(2, 4)
	k1 := []uint64{1, 2}
	k2 := []uint64{3, 4}
	m.Put(k1, 10)
	m.Put(k2, 20)
	m.Put(k1, 11)
	if v, ok := m.Get(k1); !ok || v != 11 {
		t.Fatalf("overwrite: got (%d,%v)", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	m.Reset()
	if m.Len() != 0 {
		t.Fatalf("after Reset: Len = %d", m.Len())
	}
	if _, ok := m.Get(k1); ok {
		t.Fatal("after Reset: stale key still present")
	}
	m.Put(k1, 7)
	if v, ok := m.Get(k1); !ok || v != 7 {
		t.Fatalf("reuse after Reset: got (%d,%v)", v, ok)
	}
}

func TestGetOrPutMinUpdatePattern(t *testing.T) {
	// The parallel engine's candidate tables use GetOrPut + SetValAt to
	// keep the minimum discovery key; exercise that pattern.
	m := NewMap(1, 0)
	idx, fresh := m.GetOrPut([]uint64{42}, int32(m.Len()))
	if !fresh || idx != 0 {
		t.Fatalf("first GetOrPut: (%d,%v)", idx, fresh)
	}
	idx2, fresh2 := m.GetOrPut([]uint64{42}, int32(m.Len()))
	if fresh2 || idx2 != 0 {
		t.Fatalf("second GetOrPut: (%d,%v)", idx2, fresh2)
	}
}

func TestBitsForWordsFor(t *testing.T) {
	cases := []struct{ n, want int }{{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {16, 4}, {17, 5}}
	for _, c := range cases {
		if got := BitsFor(c.n); got != c.want {
			t.Errorf("BitsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	if WordsFor(0) != 1 || WordsFor(64) != 1 || WordsFor(65) != 2 || WordsFor(300) != 5 {
		t.Errorf("WordsFor wrong: %d %d %d %d", WordsFor(0), WordsFor(64), WordsFor(65), WordsFor(300))
	}
}

func TestMapGrowKeepsEntries(t *testing.T) {
	m := NewMap(1, 0)
	for i := 0; i < 10000; i++ {
		m.Put([]uint64{uint64(i)}, int32(i))
	}
	for i := 0; i < 10000; i++ {
		if v, ok := m.Get([]uint64{uint64(i)}); !ok || v != int32(i) {
			t.Fatalf("after grow: Get(%d) = (%d,%v)", i, v, ok)
		}
	}
}
