// Package job is the run-orchestration layer of the checker: a
// serializable Spec naming what to verify (system, property or table,
// engine, worker count, resource budgets), a Run that drives the
// safety and liveness engines through internal/guard and returns a
// typed Result, and the shared CLI plumbing (flags.go) the tmcheck and
// tmfuzz binaries build on.
//
// The package exists so that every front-end — the single-shot CLI,
// the tmcheckd daemon, tests — runs checks through exactly one code
// path: cmd/tmcheck renders a local Result, tmcheck -remote renders
// the same Result decoded from the wire, and the bytes match because
// the renderers (render.go) consume only Result fields.
package job

import (
	"fmt"
	"time"

	"tmcheck/internal/space"
	"tmcheck/internal/spec"
	"tmcheck/internal/tm"
)

// Kind selects what a job verifies.
type Kind uint8

const (
	// KindSafety checks one TM against one safety property
	// (tmcheck safety).
	KindSafety Kind = iota
	// KindLiveness checks one managed TM against all three liveness
	// properties (tmcheck liveness).
	KindLiveness
	// KindTable2 reproduces the paper's Table 2 over the registry
	// (tmcheck table2) with the keep-going driver.
	KindTable2
	// KindTable3 reproduces Table 3 (tmcheck table3), keep-going.
	KindTable3
)

// String names the kind as the CLI subcommand that submits it.
func (k Kind) String() string {
	switch k {
	case KindSafety:
		return "safety"
	case KindLiveness:
		return "liveness"
	case KindTable2:
		return "table2"
	case KindTable3:
		return "table3"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind parses a subcommand name into a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "safety":
		return KindSafety, nil
	case "liveness":
		return KindLiveness, nil
	case "table2":
		return KindTable2, nil
	case "table3":
		return KindTable3, nil
	}
	return 0, fmt.Errorf("unknown job kind %q (want safety, liveness, table2 or table3)", s)
}

// Spec is one verification job, serializable over internal/wire. The
// zero values of the resource fields mean "resolve from the
// process-wide knobs" (the CLI's -workers/-maxstates/-maxmem), so a
// Spec built from CLI flags runs exactly as the flags dictate, and a
// daemon fills its own defaults before running.
type Spec struct {
	// Kind selects the job shape.
	Kind Kind
	// TM and CM name the algorithm and optional contention manager for
	// KindSafety and KindLiveness ("" CM means no manager). The table
	// kinds ignore them — they run the paper's fixed registry.
	TM, CM string
	// Prop is the safety property key for KindSafety: "ss" or "op".
	Prop string
	// Engine is "onthefly" or "materialized"; "" means onthefly (the
	// CLI default).
	Engine string
	// Threads and Vars are the instance bounds; 0 takes the paper's
	// default for the kind — (2,2) for safety and table2, (2,1) for
	// liveness and table3.
	Threads, Vars int
	// Ext includes the extension TMs (norec, etl) and broken variants
	// in a table2 job.
	Ext bool
	// Workers is the parallel-engine worker count; <= 0 resolves to the
	// process-wide parbfs.Workers().
	Workers int
	// MaxStates bounds the states any check constructs; <= 0 resolves
	// to the process-wide space.MaxStates() (0 there means unlimited).
	MaxStates int
	// Timeout bounds the job's wall-clock; 0 means no deadline beyond
	// the caller's context.
	Timeout time.Duration
	// MaxMem is the heap cap in bytes; 0 resolves to the process-wide
	// guard.MaxMem().
	MaxMem uint64
	// Checkpoint names a snapshot file the run appends the interned
	// state-space prefix to at every guard barrier, so a killed or
	// limited run loses no exploration ("" disables). Requires the
	// materialized engine and a bit-packable system.
	Checkpoint string
	// Resume names a snapshot file whose interned prefix seeds the run;
	// usually the same path as Checkpoint ("" starts fresh).
	Resume string
	// Spill names a directory for mmap-backed visited-set key storage,
	// letting state spaces larger than RAM page out ("" keeps keys on
	// the heap). Like Checkpoint, it requires the materialized engine.
	Spill string
}

// Normalize fills the kind-dependent defaults in place, exactly as the
// CLI flag defaults would: instance bounds, the default TM for the
// single-system kinds, and the engine name.
func (s *Spec) Normalize() {
	if s.Engine == "" {
		s.Engine = "onthefly"
	}
	defN, defK := 2, 2
	if s.Kind == KindLiveness || s.Kind == KindTable3 {
		defK = 1
	}
	if s.Threads <= 0 {
		s.Threads = defN
	}
	if s.Vars <= 0 {
		s.Vars = defK
	}
	if (s.Kind == KindSafety || s.Kind == KindLiveness) && s.TM == "" {
		s.TM = "dstm"
	}
	if s.Kind == KindSafety && s.Prop == "" {
		s.Prop = "op"
	}
}

// Validate checks the Spec against the TM and contention-manager
// registries and the engine and property vocabularies, so a bad job is
// refused before any state is constructed. It reports the same errors
// the CLI flags would.
func (s Spec) Validate() error {
	if _, err := space.ParseEngine(engineName(s.Engine)); err != nil {
		return err
	}
	if s.Threads < 1 || s.Vars < 1 {
		return fmt.Errorf("job: invalid instance (%d threads, %d variables)", s.Threads, s.Vars)
	}
	if (s.Checkpoint != "" || s.Resume != "" || s.Spill != "") && engineName(s.Engine) != "materialized" {
		return fmt.Errorf("job: -checkpoint/-resume/-spill require -engine materialized (got %q): only the materialized build interns the canonical prefix a snapshot records", engineName(s.Engine))
	}
	switch s.Kind {
	case KindSafety:
		if s.Prop != "ss" && s.Prop != "op" {
			return fmt.Errorf("job: unknown safety property %q (want ss or op)", s.Prop)
		}
		fallthrough
	case KindLiveness:
		if _, err := tm.NewAlgorithm(s.TM, s.Threads, s.Vars); err != nil {
			return err
		}
		if _, err := tm.NewContentionManager(s.CM); err != nil {
			return err
		}
	case KindTable2, KindTable3:
		// The tables run the fixed registry; nothing else to resolve.
	default:
		return fmt.Errorf("job: unknown kind %d", uint8(s.Kind))
	}
	return nil
}

// engineName maps the empty engine to its default without mutating.
func engineName(e string) string {
	if e == "" {
		return "onthefly"
	}
	return e
}

// engine parses the spec's engine field (after Normalize).
func (s Spec) engine() (space.Engine, error) {
	return space.ParseEngine(engineName(s.Engine))
}

// property maps the spec's Prop key onto the spec-package property.
func (s Spec) property() spec.Property {
	if s.Prop == "ss" {
		return spec.StrictSerializability
	}
	return spec.Opacity
}
