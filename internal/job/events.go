package job

import "tmcheck/internal/obs"

// Events bridges the process-wide obs event bus to a front-end: it
// enables the bus, subscribes with a buffer of buf events, and feeds
// each event to fn on a dedicated goroutine. The returned stop
// function unsubscribes and waits for the consumer to drain. Slow
// consumers drop events (the bus never blocks an engine); fn must not
// call back into the bus.
func Events(buf int, fn func(obs.Event)) (stop func()) {
	bus := obs.Events()
	bus.SetEnabled(true)
	sub := bus.Subscribe(buf)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for e := range sub.C {
			fn(e)
		}
	}()
	return func() {
		bus.Unsubscribe(sub)
		<-done
	}
}
