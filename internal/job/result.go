package job

import (
	"errors"
	"fmt"
	"time"

	"tmcheck/internal/guard"
	"tmcheck/internal/liveness"
	"tmcheck/internal/safety"
	"tmcheck/internal/spec"
)

// Limit is the wire-serializable mirror of *guard.LimitError. Err
// reconstructs a LimitError whose Error() string and errors.Is
// behavior match the original, so a budget error crossing the wire
// still satisfies errors.Is(err, space.ErrBudgetExceeded).
type Limit struct {
	// Kind is the guard.Kind that tripped.
	Kind uint8
	// Budget and Visited mirror the state-budget fields.
	Budget, Visited int
	// ElapsedNS mirrors LimitError.Elapsed.
	ElapsedNS int64
	// MaxMemBytes and HeapBytes mirror the memory-watchdog fields.
	MaxMemBytes, HeapBytes uint64
	// Panic is the formatted panic value (KindPanic); the stack does
	// not cross the wire.
	Panic string
	// Snapshot is the checkpoint file holding the progress made before
	// the limit tripped ("" when the run was not checkpointing).
	Snapshot string
}

// LimitFrom captures a *guard.LimitError for serialization; nil in,
// nil out.
func LimitFrom(le *guard.LimitError) *Limit {
	if le == nil {
		return nil
	}
	l := &Limit{
		Kind:        uint8(le.Kind),
		Budget:      le.Budget,
		Visited:     le.Visited,
		ElapsedNS:   le.Elapsed.Nanoseconds(),
		MaxMemBytes: le.MaxMemBytes,
		HeapBytes:   le.HeapBytes,
		Snapshot:    le.Snapshot,
	}
	if le.Kind == guard.KindPanic {
		l.Panic = fmt.Sprint(le.Value)
	}
	return l
}

// Err reconstructs the typed limit error; nil receiver yields nil.
// LimitError messages are deterministic functions of the fields, so
// the reconstructed Error() equals the original's.
func (l *Limit) Err() *guard.LimitError {
	if l == nil {
		return nil
	}
	le := &guard.LimitError{
		Kind:        guard.Kind(l.Kind),
		Budget:      l.Budget,
		Visited:     l.Visited,
		Elapsed:     time.Duration(l.ElapsedNS),
		MaxMemBytes: l.MaxMemBytes,
		HeapBytes:   l.HeapBytes,
		Snapshot:    l.Snapshot,
	}
	if le.Kind == guard.KindPanic {
		le.Value = l.Panic
	}
	return le
}

// Check is one verdict row of a Result — the serializable projection
// of a safety.Result or liveness.Result that the renderers consume.
type Check struct {
	// System names the TM (and manager) as "alg" or "alg+cm".
	System string
	// Prop is the property key: ss, op, obstruction, livelock, wait.
	Prop string
	// Engine is "onthefly" or "materialized".
	Engine string
	// Threads and Vars are the instance bounds.
	Threads, Vars int
	// TMStates and SpecStates are the constructed sizes.
	TMStates, SpecStates int
	// Holds is the verdict (meaningless when Limit is set).
	Holds bool
	// Counterexample is the violating word in the paper's notation
	// (safety), LoopWord the looping word bω (liveness).
	Counterexample, LoopWord string
	// ElapsedNS, BuildTMNS and BuildSpecNS are the stage wall-clocks.
	ElapsedNS, BuildTMNS, BuildSpecNS int64
	// Pairs and CexLen mirror the inclusion stats; FrontierPeak,
	// Expanded and Probes the on-the-fly vitals.
	Pairs, CexLen, FrontierPeak, Expanded, Probes int
	// Resumed is the number of TM states seeded from a -resume snapshot
	// before this check explored anything (0 for a fresh build).
	Resumed int
	// Limit is set when the check stopped at a resource limit.
	Limit *Limit
}

// Result is what Run returns: the normalized Spec it ran and one Check
// per verdict, in the fixed driver order — SS then OP per system for
// table2, obstruction/livelock/wait per system for table3.
type Result struct {
	Spec   Spec
	Checks []Check
}

// Resumed reports the largest snapshot seed across the checks — the
// "resumed from N states" note the CLI prints to stderr (stdout stays
// byte-identical to an uninterrupted run).
func (r *Result) Resumed() int {
	max := 0
	for i := range r.Checks {
		if r.Checks[i].Resumed > max {
			max = r.Checks[i].Resumed
		}
	}
	return max
}

// Limits collects the reconstructed limit errors of all limited
// checks, in check order — the input of the CLI's keep-going summary.
func (r *Result) Limits() []*guard.LimitError {
	var out []*guard.LimitError
	for i := range r.Checks {
		if le := r.Checks[i].Limit.Err(); le != nil {
			out = append(out, le)
		}
	}
	return out
}

// checkFromSafety projects one safety.Result.
func checkFromSafety(r safety.Result) Check {
	c := Check{
		System:       r.System,
		Prop:         r.Prop.Key(),
		Engine:       r.Engine.String(),
		Threads:      r.Threads,
		Vars:         r.Vars,
		TMStates:     r.TMStates,
		SpecStates:   r.SpecStates,
		Holds:        r.Holds,
		ElapsedNS:    r.Elapsed.Nanoseconds(),
		BuildTMNS:    r.BuildTMElapsed.Nanoseconds(),
		BuildSpecNS:  r.BuildSpecElapsed.Nanoseconds(),
		Pairs:        r.Inclusion.PairsVisited,
		CexLen:       r.Inclusion.CexLen,
		FrontierPeak: r.FrontierPeak,
		Resumed:      r.Resumed,
		Limit:        LimitFrom(r.Limit),
	}
	if len(r.Counterexample) > 0 {
		c.Counterexample = r.Counterexample.String()
	}
	return c
}

// checkFromLiveness projects one liveness.Result. The loop word is
// rendered here (edges do not cross the wire); BuildTMNS carries the
// materialized build time when the entry point built the system.
func checkFromLiveness(r liveness.Result) Check {
	c := Check{
		System:    r.System,
		Prop:      r.Prop.Key(),
		Engine:    r.Engine.String(),
		Threads:   r.Threads,
		Vars:      r.Vars,
		TMStates:  r.TMStates,
		Holds:     r.Holds,
		ElapsedNS: r.Elapsed.Nanoseconds(),
		BuildTMNS: r.BuildElapsed.Nanoseconds(),
		Expanded:  r.Expanded,
		Probes:    r.Probes,
		Resumed:   r.Resumed,
		Limit:     LimitFrom(r.Limit),
	}
	if len(r.Loop) > 0 {
		c.LoopWord = r.LoopWord()
	}
	return c
}

// safetyProp maps a Check.Prop key back onto the spec property.
func safetyProp(key string) spec.Property {
	if key == "ss" {
		return spec.StrictSerializability
	}
	return spec.Opacity
}

// AsLimit unwraps the typed limit behind err, or nil.
func AsLimit(err error) *guard.LimitError {
	var le *guard.LimitError
	if errors.As(err, &le) {
		return le
	}
	return nil
}

// ReconstructError rebuilds the error a remote Run returned from its
// serialized message and optional typed limit, preserving errors.Is
// for the guard sentinels: when the message is exactly the limit's
// deterministic rendering the original *guard.LimitError comes back;
// a wrapped message keeps its prefix around the typed error.
func ReconstructError(msg string, l *Limit) error {
	if msg == "" {
		return nil
	}
	if le := l.Err(); le != nil {
		les := le.Error()
		if msg == les {
			return le
		}
		if len(msg) > len(les) && msg[len(msg)-len(les):] == les {
			return &wrappedLimit{prefix: msg[:len(msg)-len(les)], le: le}
		}
	}
	return errors.New(msg)
}

// wrappedLimit reattaches a non-limit prefix around a reconstructed
// limit error while keeping the errors.Is chain intact.
type wrappedLimit struct {
	prefix string
	le     *guard.LimitError
}

func (w *wrappedLimit) Error() string { return w.prefix + w.le.Error() }
func (w *wrappedLimit) Unwrap() error { return w.le }
