package job

import (
	"fmt"
	"io"
	"time"

	"tmcheck/internal/core"
	"tmcheck/internal/guard"
	"tmcheck/internal/liveness"
	"tmcheck/internal/safety"
)

// render.go turns a Result back into the CLI's exact output. The
// renderers consume only Result fields, so a Result decoded from the
// wire renders byte-for-byte what the local run printed — the property
// the tmcheck-vs-tmcheck-remote equivalence test pins.

// Render writes the job's verdict report to w in the CLI's format.
func (r *Result) Render(w io.Writer) {
	switch r.Spec.Kind {
	case KindSafety:
		r.renderSafety(w)
	case KindLiveness:
		r.renderLiveness(w)
	case KindTable2:
		r.renderTable2(w)
	case KindTable3:
		r.renderTable3(w)
	}
}

// round renders a stored nanosecond count the way the CLI rounds
// durations.
func round(ns int64) time.Duration {
	return time.Duration(ns).Round(10 * time.Microsecond)
}

// verdictOf formats one table2 cell.
func verdictOf(c Check) string {
	if c.Limit != nil {
		return fmt.Sprintf("LIMIT(%s)", guard.Kind(c.Limit.Kind).Label())
	}
	if c.Holds {
		return fmt.Sprintf("Y, %v", round(c.ElapsedNS))
	}
	return fmt.Sprintf("N, %v", round(c.ElapsedNS))
}

// fprintCex prints a safety counterexample line when the check found
// one.
func fprintCex(w io.Writer, c Check) {
	if c.Limit == nil && !c.Holds {
		fmt.Fprintf(w, "    counterexample (%v): %s\n", safetyProp(c.Prop), c.Counterexample)
	}
}

// liveVerdictOf formats one table3 cell.
func liveVerdictOf(c Check) string {
	if c.Limit != nil {
		return fmt.Sprintf("LIMIT(%s)", guard.Kind(c.Limit.Kind).Label())
	}
	if c.Holds {
		return fmt.Sprintf("Y, %v", round(c.ElapsedNS))
	}
	return fmt.Sprintf("N, loop %s", c.LoopWord)
}

// livenessProp maps a Check.Prop key back onto the liveness property.
func livenessProp(key string) liveness.Prop {
	switch key {
	case "obstruction":
		return liveness.ObstructionFreedom
	case "livelock":
		return liveness.LivelockFreedom
	}
	return liveness.WaitFreedom
}

func (r *Result) renderTable2(w io.Writer) {
	fmt.Fprintf(w, "Table 2: safety verdicts on the most general program (%d threads, %d variables)\n",
		r.Spec.Threads, r.Spec.Vars)
	fmt.Fprintf(w, "%-15s %8s  %-22s %-22s\n", "TM", "size", "L(A) ⊆ L(Σss)", "L(A) ⊆ L(Σop)")
	for i := 0; i+1 < len(r.Checks); i += 2 {
		ss, op := r.Checks[i], r.Checks[i+1]
		fmt.Fprintf(w, "%-15s %8d  %-22s %-22s\n", ss.System, ss.TMStates,
			verdictOf(ss), verdictOf(op))
		fprintCex(w, ss)
		if ss.Holds || op.Holds {
			fprintCex(w, op)
		}
	}
}

func (r *Result) renderTable3(w io.Writer) {
	fmt.Fprintf(w, "Table 3: liveness verdicts on the most general program (%d threads, %d variables)\n",
		r.Spec.Threads, r.Spec.Vars)
	fmt.Fprintf(w, "%-18s %6s  %-30s %-30s\n", "TM algorithm", "size", "obstruction freedom", "livelock freedom")
	for i := 0; i+2 < len(r.Checks); i += 3 {
		ob, lk := r.Checks[i], r.Checks[i+1]
		fmt.Fprintf(w, "%-18s %6d  %-30s %-30s\n", ob.System, ob.TMStates,
			liveVerdictOf(ob), liveVerdictOf(lk))
	}
	fmt.Fprintln(w, "(wait freedom fails for every system; it implies livelock freedom)")
	if r.Spec.Engine == "onthefly" {
		fmt.Fprintln(w, "(size = states constructed at the obstruction verdict; -engine materialized reports full systems)")
	}
}

func (r *Result) renderSafety(w io.Writer) {
	if len(r.Checks) == 0 {
		return
	}
	c := r.Checks[0]
	fmt.Fprintf(w, "system:         %s\n", c.System)
	fmt.Fprintf(w, "property:       %v (%d threads, %d variables)\n", safetyProp(c.Prop), c.Threads, c.Vars)
	fmt.Fprintf(w, "engine:         %s\n", c.Engine)
	fmt.Fprintf(w, "TM states:      %d\n", c.TMStates)
	fmt.Fprintf(w, "spec states:    %d\n", c.SpecStates)
	if c.Engine == "onthefly" {
		fmt.Fprintf(w, "product pairs:  %d\n", c.Pairs)
		fmt.Fprintf(w, "peak frontier:  %d\n", c.FrontierPeak)
	} else {
		fmt.Fprintf(w, "build TM:       %v\n", round(c.BuildTMNS))
		fmt.Fprintf(w, "build spec:     %v\n", round(c.BuildSpecNS))
	}
	if c.Holds {
		fmt.Fprintf(w, "verdict:        SAFE (inclusion holds, %v)\n", round(c.ElapsedNS))
	} else {
		fmt.Fprintf(w, "verdict:        UNSAFE (%v)\n", round(c.ElapsedNS))
		fmt.Fprintf(w, "counterexample: %s\n", c.Counterexample)
		fmt.Fprintln(w)
		fmt.Fprint(w, safety.Explain(c.toSafetyResult()))
	}
}

// toSafetyResult rebuilds the slice of a safety.Result that
// safety.Explain consumes, reparsing the counterexample word from its
// paper notation (which round-trips exactly).
func (c Check) toSafetyResult() safety.Result {
	res := safety.Result{
		System:  c.System,
		Prop:    safetyProp(c.Prop),
		Threads: c.Threads,
		Vars:    c.Vars,
		Holds:   c.Holds,
	}
	if c.Counterexample != "" {
		if wd, err := core.ParseWord(c.Counterexample); err == nil {
			res.Counterexample = wd
		}
	}
	return res
}

func (r *Result) renderLiveness(w io.Writer) {
	if len(r.Checks) == 0 {
		return
	}
	if r.Spec.Engine == "onthefly" {
		constructed := 0
		for _, c := range r.Checks {
			if c.TMStates > constructed {
				constructed = c.TMStates
			}
		}
		fmt.Fprintf(w, "system: %s (%s engine, %d states constructed)\n",
			r.Checks[0].System, r.Spec.Engine, constructed)
	} else {
		fmt.Fprintf(w, "system: %s (%d states, built in %v)\n",
			r.Checks[0].System, r.Checks[0].TMStates, round(r.Checks[0].BuildTMNS))
	}
	for _, c := range r.Checks {
		if c.Holds {
			fmt.Fprintf(w, "%-22s HOLDS (%v)\n", livenessProp(c.Prop).String()+":", round(c.ElapsedNS))
		} else {
			fmt.Fprintf(w, "%-22s FAILS, loop: %s\n", livenessProp(c.Prop).String()+":", c.LoopWord)
		}
		if r.Spec.Engine == "onthefly" {
			fmt.Fprintf(w, "%-22s %d of %d states expanded, %d probes\n",
				"", c.Expanded, c.TMStates, c.Probes)
		}
	}
}
