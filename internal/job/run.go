package job

import (
	"context"
	"time"

	"tmcheck/internal/explore"
	"tmcheck/internal/guard"
	"tmcheck/internal/liveness"
	"tmcheck/internal/obs"
	"tmcheck/internal/pack"
	"tmcheck/internal/parbfs"
	"tmcheck/internal/safety"
	"tmcheck/internal/snap"
	"tmcheck/internal/space"
	"tmcheck/internal/tm"
)

// Config adjusts how Run drives the engines without changing any
// verdict.
type Config struct {
	// NoPhases suppresses the obs phase spans. The phase stack assumes
	// a single-threaded pipeline spine, so concurrent front-ends (the
	// tmcheckd worker pool) run jobs with NoPhases set; counters,
	// gauges and bus events still record normally.
	NoPhases bool
	// SnapSync and SnapBatch set the checkpoint fsync policy
	// (-snap-sync): per record (default), batched every SnapBatch
	// records, or only at close. A looser mode trades a wider crash
	// window for fewer fsyncs; verdicts are unaffected.
	SnapSync  snap.SyncMode
	SnapBatch int
	// StrictPersist makes snapshot and spill I/O errors fail the run
	// (-strict-persist). The default degrades gracefully: the check
	// continues unpersisted with a loud DEGRADED warning.
	StrictPersist bool
}

// Run executes one job under ctx and returns its Result. The single
// check kinds (safety, liveness) fail fast: a resource limit surfaces
// as the typed error, exactly as the CLI subcommands always have. The
// table kinds keep going: limited cells carry Check.Limit and the
// call still succeeds — render them and feed Result.Limits into the
// -strict-limits policy.
func Run(ctx context.Context, sp Spec) (*Result, error) {
	return RunConfig(ctx, sp, Config{})
}

// RunConfig is Run with an explicit Config.
func RunConfig(ctx context.Context, sp Spec, cfg Config) (*Result, error) {
	sp.Normalize()
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if sp.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, sp.Timeout)
		defer cancel()
	}
	engine, err := sp.engine()
	if err != nil {
		return nil, err
	}
	var prov explore.PersistProvider
	if sp.Checkpoint != "" || sp.Resume != "" || sp.Spill != "" {
		store, err := snap.OpenRunOpts(sp.Resume, sp.Checkpoint, sp.Threads, sp.Vars,
			snap.Options{Sync: cfg.SnapSync, BatchEvery: cfg.SnapBatch, Strict: cfg.StrictPersist})
		if err != nil {
			return nil, err
		}
		if store != nil {
			defer store.Close()
		}
		var spill *snap.Spill
		if sp.Spill != "" {
			spill = snap.NewSpill(sp.Spill)
			spill.SetStrict(cfg.StrictPersist)
			defer spill.Close()
		}
		prov = persistProvider(store, spill)
	}
	res := &Result{Spec: sp}
	switch sp.Kind {
	case KindSafety:
		err = runSafety(ctx, sp, cfg, engine, prov, res)
	case KindLiveness:
		err = runLiveness(ctx, sp, cfg, engine, prov, res)
	case KindTable2:
		err = runTable2(ctx, sp, cfg, engine, prov, res)
	case KindTable3:
		err = runTable3(ctx, sp, cfg, engine, prov, res)
	}
	annotateSnapshot(res, err, sp.Checkpoint)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// persistProvider composes the snapshot store and the spill arena into
// the per-system provider the engines consult: the store contributes
// the resume prefix and the append sink, the spill contributes
// mmap-backed key storage. Each invocation hands out fresh spill
// regions, so concurrent table rows never share an arena.
func persistProvider(store *snap.Store, spill *snap.Spill) explore.PersistProvider {
	if store == nil && spill == nil {
		return nil
	}
	return func(alg tm.Algorithm, cm tm.ContentionManager) (*explore.Persist, error) {
		p := &explore.Persist{}
		if store != nil {
			var err error
			if p, err = store.Persist(alg, cm); err != nil {
				return nil, err
			}
		}
		if spill != nil {
			p.Grow = spill.Grow()
			p.GrowShard = func(int) pack.GrowFunc { return spill.Grow() }
		}
		return p, nil
	}
}

// annotateSnapshot stamps the checkpoint path onto every limit the run
// reports — the keep-going table cells and the fail-fast error alike —
// so a LIMIT(kind) verdict tells the user where the saved progress
// lives and how to pick it back up.
func annotateSnapshot(res *Result, err error, path string) {
	if path == "" {
		return
	}
	if res != nil {
		for i := range res.Checks {
			if res.Checks[i].Limit != nil {
				res.Checks[i].Limit.Snapshot = path
			}
		}
	}
	if le := AsLimit(err); le != nil {
		le.Snapshot = path
	}
}

// phaseFn opens an obs phase unless the config suppresses them.
func phaseFn(cfg Config, name string) func() {
	if cfg.NoPhases {
		return func() {}
	}
	return obs.Phase(name)
}

// system resolves the spec's TM and manager from the registries.
func system(sp Spec) (tm.Algorithm, tm.ContentionManager, error) {
	alg, err := tm.NewAlgorithm(sp.TM, sp.Threads, sp.Vars)
	if err != nil {
		return nil, nil, err
	}
	cm, err := tm.NewContentionManager(sp.CM)
	if err != nil {
		return nil, nil, err
	}
	return alg, cm, nil
}

func runSafety(ctx context.Context, sp Spec, cfg Config, engine space.Engine, prov explore.PersistProvider, res *Result) error {
	alg, cm, err := system(sp)
	if err != nil {
		return err
	}
	r, err := safety.VerifyOpts(alg, cm, sp.property(), safety.Options{
		Workers:   sp.Workers,
		MaxStates: sp.MaxStates,
		MaxMem:    sp.MaxMem,
		Engine:    engine,
		Ctx:       ctx,
		NoPhases:  cfg.NoPhases,
		Persist:   prov,
	})
	if err != nil {
		return err
	}
	res.Checks = []Check{checkFromSafety(r)}
	return nil
}

func runLiveness(ctx context.Context, sp Spec, cfg Config, engine space.Engine, prov explore.PersistProvider, res *Result) error {
	alg, cm, err := system(sp)
	if err != nil {
		return err
	}
	if engine == space.EngineOnTheFly {
		row, err := liveness.CheckAllOnTheFlyOpts(alg, cm, liveness.Options{
			Workers:   sp.Workers,
			MaxStates: sp.MaxStates,
			MaxMem:    sp.MaxMem,
			Ctx:       ctx,
			NoPhases:  cfg.NoPhases,
		})
		if err != nil {
			return err
		}
		res.Checks = []Check{
			checkFromLiveness(row.Obstruction),
			checkFromLiveness(row.Livelock),
			checkFromLiveness(row.Wait),
		}
		return nil
	}
	workers := sp.Workers
	if workers <= 0 {
		workers = parbfs.Workers()
	}
	maxStates := sp.MaxStates
	if maxStates <= 0 {
		maxStates = space.MaxStates()
	}
	maxMem := sp.MaxMem
	if maxMem == 0 {
		maxMem = guard.MaxMem()
	}
	buildStart := time.Now()
	buildDone := phaseFn(cfg, "build-tm")
	ts, err := explore.BuildProviderGuarded(alg, cm, workers, guard.New(ctx, maxStates, maxMem), prov)
	buildDone()
	if err != nil {
		return err
	}
	buildElapsed := time.Since(buildStart)
	checks := make([]Check, 0, 3)
	for _, c := range []struct {
		prop  liveness.Prop
		check func(*explore.TS) liveness.Result
	}{
		{liveness.ObstructionFreedom, liveness.CheckObstructionFreedom},
		{liveness.LivelockFreedom, liveness.CheckLivelockFreedom},
		{liveness.WaitFreedom, liveness.CheckWaitFreedom},
	} {
		checkDone := phaseFn(cfg, "check:"+c.prop.Key())
		checks = append(checks, checkFromLiveness(c.check(ts)))
		checkDone()
	}
	checks[0].BuildTMNS = buildElapsed.Nanoseconds()
	checks[0].Resumed = ts.Resumed
	res.Checks = checks
	return nil
}

func runTable2(ctx context.Context, sp Spec, cfg Config, engine space.Engine, prov explore.PersistProvider, res *Result) error {
	systems := safety.PaperSystems(sp.Threads, sp.Vars)
	if sp.Ext {
		for _, name := range []string{"norec", "etl", "2pl-noreadlock", "dstm-novalidate"} {
			alg, err := tm.NewAlgorithm(name, sp.Threads, sp.Vars)
			if err != nil {
				return err
			}
			systems = append(systems, safety.System{Alg: alg})
		}
	}
	rows := safety.Table2ResilientOpts(systems, engine, safety.Options{
		Workers:   sp.Workers,
		MaxStates: sp.MaxStates,
		MaxMem:    sp.MaxMem,
		Ctx:       ctx,
		NoPhases:  cfg.NoPhases,
		Persist:   prov,
	})
	for _, row := range rows {
		res.Checks = append(res.Checks, checkFromSafety(row.SS), checkFromSafety(row.OP))
	}
	return nil
}

func runTable3(ctx context.Context, sp Spec, cfg Config, engine space.Engine, prov explore.PersistProvider, res *Result) error {
	systems := liveness.PaperSystems(sp.Threads, sp.Vars)
	rows := liveness.Table3ResilientOpts(systems, engine, liveness.Options{
		Workers:   sp.Workers,
		MaxStates: sp.MaxStates,
		MaxMem:    sp.MaxMem,
		Ctx:       ctx,
		NoPhases:  cfg.NoPhases,
		Persist:   prov,
	})
	for _, row := range rows {
		res.Checks = append(res.Checks,
			checkFromLiveness(row.Obstruction),
			checkFromLiveness(row.Livelock),
			checkFromLiveness(row.Wait),
		)
	}
	return nil
}
