package job

// Global flags shared by the tmcheck and tmfuzz binaries, accepted by
// every tmcheck subcommand and position-independent (before or after
// the subcommand):
//
//	-workers N        worker count for the parallel engines (default
//	                  GOMAXPROCS; 1 = exact sequential behavior)
//	-maxstates N      state budget: abort any check that would construct
//	                  more than N states (TM + spec + product) with a
//	                  budget error instead of exhausting memory
//	-timeout D        wall-clock limit for the whole command (e.g. 30s,
//	                  5m); expiry cancels in-flight checks at the same
//	                  points where the state budget is polled
//	-maxmem BYTES     heap cap (e.g. 512m, 2g): checks stop with a
//	                  memory-limit error when the sampled Go heap
//	                  exceeds it
//	-strict-limits    exit nonzero when any keep-going table row hits a
//	                  resource limit (default: report LIMIT rows, exit 0)
//	-stats            print the instrumentation report to stderr
//	-stats-json FILE  write the machine-readable report to FILE ("-" = stdout)
//	-cpuprofile FILE  write a pprof CPU profile of the whole command
//	-memprofile FILE  write a pprof heap profile taken after the command
//	-progress         stream live status (level, states, states/sec, heap)
//	                  to stderr while checks run
//	-trace FILE       write a Chrome trace-event JSON timeline of the run
//	                  (load in Perfetto or chrome://tracing)
//	-debug-addr ADDR  serve /vitals, /events (SSE) and /debug/pprof on
//	                  ADDR (e.g. localhost:7077) for the duration of the
//	                  command
//	-remote ADDR      submit the job to a running tmcheckd at ADDR
//	                  instead of checking in-process (tmcheck only)
//	-checkpoint FILE  append the interned state-space prefix to FILE at
//	                  every guard barrier, so a killed, timed-out or
//	                  budget-limited run can be resumed (requires
//	                  -engine materialized)
//	-resume FILE      seed the run from the snapshot in FILE; usually
//	                  the same path as -checkpoint. The resumed run's
//	                  stdout is byte-identical to an uninterrupted one
//	-spill DIR        keep the visited set's key storage in mmap-backed
//	                  files under DIR instead of the heap, so state
//	                  spaces larger than RAM stay checkable
//	-snap-sync MODE   checkpoint fsync policy: always (per record, the
//	                  default), batch[:N] (every N records, default 8),
//	                  none (only at close); looser modes widen the
//	                  crash window but never change a verdict
//	-strict-persist   fail the run on snapshot/spill I/O errors instead
//	                  of degrading to an unpersisted run with a
//	                  DEGRADED warning
//	-retries N        with -remote, total connection attempts before
//	                  giving up (default 5); reconnects resume the job
//	                  from its server-side snapshot when -checkpoint
//	                  was given
//	-heartbeat-timeout D  with -remote, declare the server dead after D
//	                  without any traffic while a job is in flight
//	                  (default 30s; 0 disables)
//	-chaos-seed N     deterministic fault injection: derive a fault
//	                  plan from seed N and inject it at the snapshot,
//	                  spill, wire and engine seams (testing only;
//	                  0 = disabled)
//
// The JSON report (schema "tmcheck/stats/v1") is deterministic in its
// counter and gauge values for a deterministic command, so reports from
// two commits on the same inputs are directly comparable. The telemetry
// flags enable the event bus (internal/obs/events.go); with all three
// off the bus stays disabled, the engines' fast paths are untouched,
// and the report bytes are identical to a run without telemetry.
// When a check stops at a resource limit or isolated panic, the last
// bus events are attached to the report as a flight recorder
// ("flight" in the JSON, a "flight recorder" section under -stats).

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"tmcheck/internal/chaos"
	"tmcheck/internal/guard"
	"tmcheck/internal/obs"
	"tmcheck/internal/parbfs"
	"tmcheck/internal/snap"
	"tmcheck/internal/space"
)

// Flags holds the global flags every front-end shares: resource
// budgets, the telemetry surfaces, profiling, and the remote-submit
// address. Fill it with Extract (position-independent parsing, the
// tmcheck style) or Register (a flag.FlagSet, the tmfuzz style), then
// drive the lifecycle: Install to set the process-wide knobs, Begin
// before the command, Finish after.
type Flags struct {
	Workers          int
	MaxStates        int
	Timeout          time.Duration
	MaxMem           uint64
	StrictLimits     bool
	Stats            bool
	StatsJSON        string
	CPUProfile       string
	MemProfile       string
	Progress         bool
	TraceFile        string
	DebugAddr        string
	Remote           string
	Checkpoint       string
	Resume           string
	Spill            string
	SnapSync         string
	StrictPersist    bool
	Retries          int
	HeartbeatTimeout time.Duration
	ChaosSeed        uint64

	// Prog names the binary in stderr messages; "" means "tmcheck".
	Prog string

	cpuFile    *os.File
	progressUI *obs.Progress
	traceW     *obs.TraceWriter
	traceF     *os.File
	debugSrv   *obs.DebugServer
}

// Extract splits the global flags out of args, wherever they appear,
// and returns the remaining arguments unchanged and in order for the
// subcommand's own flag set.
func Extract(args []string) (Flags, []string, error) {
	g := Flags{Retries: 5, HeartbeatTimeout: 30 * time.Second}
	rest := make([]string, 0, len(args))
	for i := 0; i < len(args); i++ {
		arg := args[i]
		if !strings.HasPrefix(arg, "-") {
			rest = append(rest, arg)
			continue
		}
		name, inline, hasInline := strings.Cut(strings.TrimLeft(arg, "-"), "=")
		value := func() (string, error) {
			if hasInline {
				return inline, nil
			}
			if i+1 >= len(args) {
				return "", fmt.Errorf("flag -%s needs a value", name)
			}
			i++
			return args[i], nil
		}
		var err error
		switch name {
		case "workers":
			var v string
			if v, err = value(); err == nil {
				g.Workers, err = strconv.Atoi(v)
				if err != nil || g.Workers < 1 {
					err = fmt.Errorf("flag -workers needs a positive integer, got %q", v)
				}
			}
		case "maxstates":
			var v string
			if v, err = value(); err == nil {
				g.MaxStates, err = strconv.Atoi(v)
				if err != nil || g.MaxStates < 1 {
					err = fmt.Errorf("flag -maxstates needs a positive integer, got %q", v)
				}
			}
		case "timeout":
			var v string
			if v, err = value(); err == nil {
				g.Timeout, err = time.ParseDuration(v)
				if err != nil || g.Timeout <= 0 {
					err = fmt.Errorf("flag -timeout needs a positive duration (e.g. 30s), got %q", v)
				}
			}
		case "maxmem":
			var v string
			if v, err = value(); err == nil {
				g.MaxMem, err = guard.ParseBytes(v)
				if err != nil {
					err = fmt.Errorf("flag -maxmem: %v", err)
				}
			}
		case "strict-limits":
			g.StrictLimits = true
		case "stats":
			g.Stats = true
		case "stats-json":
			g.StatsJSON, err = value()
		case "cpuprofile":
			g.CPUProfile, err = value()
		case "memprofile":
			g.MemProfile, err = value()
		case "progress":
			g.Progress = true
		case "trace":
			g.TraceFile, err = value()
		case "debug-addr":
			g.DebugAddr, err = value()
		case "remote":
			g.Remote, err = value()
		case "checkpoint":
			g.Checkpoint, err = value()
		case "resume":
			g.Resume, err = value()
		case "spill":
			g.Spill, err = value()
		case "snap-sync":
			var v string
			if v, err = value(); err == nil {
				if _, _, err = snap.ParseSyncMode(v); err == nil {
					g.SnapSync = v
				}
			}
		case "strict-persist":
			g.StrictPersist = true
		case "retries":
			var v string
			if v, err = value(); err == nil {
				g.Retries, err = strconv.Atoi(v)
				if err != nil || g.Retries < 1 {
					err = fmt.Errorf("flag -retries needs a positive integer, got %q", v)
				}
			}
		case "heartbeat-timeout":
			var v string
			if v, err = value(); err == nil {
				g.HeartbeatTimeout, err = time.ParseDuration(v)
				if err != nil || g.HeartbeatTimeout < 0 {
					err = fmt.Errorf("flag -heartbeat-timeout needs a non-negative duration (e.g. 30s, 0 to disable), got %q", v)
				}
			}
		case "chaos-seed":
			var v string
			if v, err = value(); err == nil {
				g.ChaosSeed, err = strconv.ParseUint(v, 0, 64)
				if err != nil {
					err = fmt.Errorf("flag -chaos-seed needs an unsigned integer, got %q", v)
				}
			}
		default:
			rest = append(rest, arg)
		}
		if err != nil {
			return g, nil, err
		}
	}
	return g, rest, nil
}

// Register declares the shared budget and telemetry flags on fs — the
// front door for binaries that parse a single flat flag set (tmfuzz).
// The remote and strict-limits flags stay tmcheck-specific.
func (g *Flags) Register(fs *flag.FlagSet) {
	fs.IntVar(&g.MaxStates, "maxstates", 0, "state budget: stop after this many states in total (0 = unbounded)")
	fs.DurationVar(&g.Timeout, "timeout", 0, "stop after this long (0 = no deadline)")
	fs.Var(bytesFlag{&g.MaxMem}, "maxmem", "heap cap, e.g. 512m or 2g (0 = uncapped)")
	fs.BoolVar(&g.Progress, "progress", false, "stream a live status line to stderr")
	fs.BoolVar(&g.Stats, "stats", false, "print the instrumentation report to stderr")
	fs.StringVar(&g.StatsJSON, "stats-json", "", "write the machine-readable report to `file` (\"-\" = stdout)")
	fs.StringVar(&g.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to `file`")
	fs.StringVar(&g.MemProfile, "memprofile", "", "write a pprof heap profile to `file`")
	fs.StringVar(&g.TraceFile, "trace", "", "write a Chrome trace-event timeline to `file`")
	fs.StringVar(&g.DebugAddr, "debug-addr", "", "serve /vitals, /events and /debug/pprof on `addr`")
	fs.Uint64Var(&g.ChaosSeed, "chaos-seed", 0, "deterministic fault-injection `seed` (testing only; 0 = disabled)")
}

// bytesFlag adapts guard.ParseBytes to the flag.Value interface.
type bytesFlag struct{ v *uint64 }

func (b bytesFlag) String() string {
	if b.v == nil || *b.v == 0 {
		return "0"
	}
	return strconv.FormatUint(*b.v, 10)
}

func (b bytesFlag) Set(s string) error {
	n, err := guard.ParseBytes(s)
	if err != nil {
		return err
	}
	*b.v = n
	return nil
}

// Install publishes the resource flags to the process-wide knobs the
// engines' default paths read: parbfs.Workers, space.MaxStates,
// guard.MaxMem. Front-ends that scope budgets per job (tmcheckd, or
// tmfuzz's cumulative spec-state budget) skip Install and put the
// fields in the Spec or guard themselves.
func (g *Flags) Install() {
	if g.Workers > 0 {
		parbfs.SetWorkers(g.Workers)
	}
	if g.MaxStates > 0 {
		space.SetMaxStates(g.MaxStates)
	}
	if g.MaxMem > 0 {
		guard.SetMaxMem(g.MaxMem)
	}
	g.InstallChaos()
}

// InstallChaos installs the deterministic fault plan when -chaos-seed
// was given, announcing the armed sites on stderr so a failing run is
// attributable. Front-ends that skip Install (tmfuzz) call this
// directly.
func (g *Flags) InstallChaos() {
	if g.ChaosSeed == 0 {
		return
	}
	p := chaos.NewPlan(g.ChaosSeed)
	chaos.Install(p)
	fmt.Fprintf(os.Stderr, "%s: %s\n", g.prog(), p)
}

// JobConfig resolves the per-run persistence policy the -snap-sync and
// -strict-persist flags selected into a job Config.
func (g *Flags) JobConfig() (Config, error) {
	mode, batch, err := snap.ParseSyncMode(g.SnapSync)
	if err != nil {
		return Config{}, err
	}
	return Config{SnapSync: mode, SnapBatch: batch, StrictPersist: g.StrictPersist}, nil
}

// prog names the binary for stderr messages.
func (g *Flags) prog() string {
	if g.Prog == "" {
		return "tmcheck"
	}
	return g.Prog
}

// SignalContext derives the command context: cancelled on SIGINT or
// SIGTERM, and bounded by -timeout when one was given. The returned
// stop releases both.
func (g *Flags) SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	if g.Timeout <= 0 {
		return ctx, stop
	}
	ctx, cancel := context.WithTimeout(ctx, g.Timeout)
	return ctx, func() {
		cancel()
		stop()
	}
}

// Begin switches on the telemetry surfaces that were asked for and
// starts CPU profiling when requested. Call Finish afterwards.
func (g *Flags) Begin(command string) error {
	if g.Progress || g.TraceFile != "" || g.DebugAddr != "" {
		bus := obs.Events()
		bus.SetEnabled(true)
		if g.TraceFile != "" {
			f, err := os.Create(g.TraceFile)
			if err != nil {
				return err
			}
			g.traceF = f
			g.traceW = obs.StartTrace(f, bus)
		}
		if g.Progress {
			g.progressUI = obs.StartProgress(os.Stderr, bus)
		}
		if g.DebugAddr != "" {
			srv, err := obs.StartDebugServer(g.DebugAddr, bus, obs.Default())
			if err != nil {
				return err
			}
			g.debugSrv = srv
			fmt.Fprintf(os.Stderr, "%s: debug server on http://%s (/vitals, /events, /debug/pprof)\n", g.prog(), srv.Addr)
		}
		// Emitted after the trace writer subscribed, so the run span is
		// the first event on every surface.
		obs.Emit(obs.Event{Kind: obs.EvRunStart, Name: command})
	}
	if g.CPUProfile == "" {
		return nil
	}
	f, err := os.Create(g.CPUProfile)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	g.cpuFile = f
	return nil
}

// Finish tears the telemetry surfaces down, stops profiling, and emits
// the requested reports for the command that just ran.
func (g *Flags) Finish(command string) error {
	if obs.EventsEnabled() {
		obs.Emit(obs.Event{Kind: obs.EvRunDone, Name: command})
	}
	if g.progressUI != nil {
		g.progressUI.Stop()
	}
	if g.traceW != nil {
		err := g.traceW.Close()
		if cerr := g.traceF.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	if g.debugSrv != nil {
		g.debugSrv.Close()
	}
	if g.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := g.cpuFile.Close(); err != nil {
			return err
		}
	}
	if g.MemProfile != "" {
		f, err := os.Create(g.MemProfile)
		if err != nil {
			return err
		}
		runtime.GC()
		err = pprof.WriteHeapProfile(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if g.StatsJSON != "" {
		if err := WriteStatsJSON(g.StatsJSON, command); err != nil {
			return err
		}
	}
	if g.Stats {
		fmt.Fprint(os.Stderr, obs.Default().Text())
		if evs, dropped, limited := obs.Events().Flight(flightDepth); limited {
			fmt.Fprintf(os.Stderr, "flight recorder (last %d event(s), %d dropped):\n%s",
				len(evs), dropped, obs.FormatEvents(evs))
		}
	}
	return nil
}

// flightDepth is how many recent bus events a limited run's report
// carries.
const flightDepth = 64

// StatsReport snapshots the registry and attaches the flight-recorder
// dump when a limit or panic was captured on the bus. With telemetry
// off — or a limit-free run — the report is exactly the registry
// snapshot.
func StatsReport(command string) obs.Report {
	rep := obs.Default().Snapshot(command)
	rep.AttachFlight(obs.Events(), flightDepth)
	return rep
}

// WriteStatsJSON writes the stats report for command to path ("-" =
// stdout), pretty-printed.
func WriteStatsJSON(path, command string) error {
	rep := StatsReport(command)
	if path == "-" {
		return encodeReport(os.Stdout, rep)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = encodeReport(f, rep)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func encodeReport(w io.Writer, rep obs.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
