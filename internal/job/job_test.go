package job

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"tmcheck/internal/guard"
	"tmcheck/internal/obs"
	"tmcheck/internal/tm"
)

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindSafety, KindLiveness, KindTable2, KindTable3} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if _, err := ParseKind("table4"); err == nil {
		t.Error("ParseKind(table4) should error")
	}
	if s := Kind(9).String(); s != "kind(9)" {
		t.Errorf("Kind(9).String() = %q", s)
	}
}

func TestNormalizeDefaults(t *testing.T) {
	cases := []struct {
		kind             Kind
		wantN, wantK     int
		wantTM, wantProp string
	}{
		{KindSafety, 2, 2, "dstm", "op"},
		{KindLiveness, 2, 1, "dstm", ""},
		{KindTable2, 2, 2, "", ""},
		{KindTable3, 2, 1, "", ""},
	}
	for _, c := range cases {
		s := Spec{Kind: c.kind}
		s.Normalize()
		if s.Engine != "onthefly" {
			t.Errorf("%v: engine = %q, want onthefly", c.kind, s.Engine)
		}
		if s.Threads != c.wantN || s.Vars != c.wantK {
			t.Errorf("%v: instance = (%d,%d), want (%d,%d)", c.kind, s.Threads, s.Vars, c.wantN, c.wantK)
		}
		if s.TM != c.wantTM || s.Prop != c.wantProp {
			t.Errorf("%v: tm/prop = %q/%q, want %q/%q", c.kind, s.TM, s.Prop, c.wantTM, c.wantProp)
		}
	}
	// Explicit values survive.
	s := Spec{Kind: KindSafety, TM: "tl2", Prop: "ss", Engine: "materialized", Threads: 3, Vars: 1}
	s.Normalize()
	if s.TM != "tl2" || s.Prop != "ss" || s.Engine != "materialized" || s.Threads != 3 || s.Vars != 1 {
		t.Errorf("Normalize overwrote explicit fields: %+v", s)
	}
}

// TestValidateWholeRegistry exhaustively validates the single-system
// kinds over every registered algorithm × every manager (and no
// manager) — the daemon's admission check must accept exactly what the
// CLI would.
func TestValidateWholeRegistry(t *testing.T) {
	managers := append([]string{""}, tm.ManagerNames()...)
	for _, alg := range tm.AlgorithmNames() {
		for _, cm := range managers {
			for _, prop := range []string{"ss", "op"} {
				s := Spec{Kind: KindSafety, TM: alg, CM: cm, Prop: prop}
				s.Normalize()
				if err := s.Validate(); err != nil {
					t.Errorf("safety %s+%s %s: %v", alg, cm, prop, err)
				}
			}
			s := Spec{Kind: KindLiveness, TM: alg, CM: cm}
			s.Normalize()
			if err := s.Validate(); err != nil {
				t.Errorf("liveness %s+%s: %v", alg, cm, err)
			}
		}
	}
	for _, kind := range []Kind{KindTable2, KindTable3} {
		for _, engine := range []string{"onthefly", "materialized", ""} {
			s := Spec{Kind: kind, Engine: engine}
			s.Normalize()
			if err := s.Validate(); err != nil {
				t.Errorf("%v engine %q: %v", kind, engine, err)
			}
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		s    Spec
		want string
	}{
		{"bad engine", Spec{Kind: KindTable2, Engine: "quantum", Threads: 2, Vars: 2}, "quantum"},
		{"bad instance", Spec{Kind: KindTable2, Threads: -1, Vars: 2}, "invalid instance"},
		{"bad prop", Spec{Kind: KindSafety, TM: "dstm", Prop: "xx", Threads: 2, Vars: 2}, "unknown safety property"},
		{"bad tm", Spec{Kind: KindSafety, TM: "nope", Prop: "op", Threads: 2, Vars: 2}, "nope"},
		{"bad cm", Spec{Kind: KindLiveness, TM: "dstm", CM: "nope", Threads: 2, Vars: 1}, "nope"},
		{"bad kind", Spec{Kind: Kind(9), Threads: 2, Vars: 2}, "unknown kind"},
	}
	for _, c := range cases {
		err := c.s.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

// TestLimitRoundTrip pins that a limit error surviving serialization
// reconstructs the same message and errors.Is behavior for every kind.
func TestLimitRoundTrip(t *testing.T) {
	cases := []struct {
		le       *guard.LimitError
		sentinel error
	}{
		{&guard.LimitError{Kind: guard.KindStates, Budget: 100, Visited: 101, Elapsed: time.Second}, guard.ErrStates},
		{&guard.LimitError{Kind: guard.KindTime, Elapsed: 3 * time.Second}, guard.ErrTimeout},
		{&guard.LimitError{Kind: guard.KindMemory, MaxMemBytes: 1 << 30, HeapBytes: 2 << 30}, guard.ErrMemory},
		{&guard.LimitError{Kind: guard.KindCancelled, Elapsed: time.Millisecond}, guard.ErrCancelled},
		{&guard.LimitError{Kind: guard.KindPanic, Value: "index out of range"}, guard.ErrPanic},
	}
	for _, c := range cases {
		got := LimitFrom(c.le).Err()
		if got.Error() != c.le.Error() {
			t.Errorf("kind %v: message %q != original %q", c.le.Kind, got.Error(), c.le.Error())
		}
		if !errors.Is(got, c.sentinel) {
			t.Errorf("kind %v: reconstructed error lost errors.Is(%v)", c.le.Kind, c.sentinel)
		}
	}
	if LimitFrom(nil) != nil {
		t.Error("LimitFrom(nil) != nil")
	}
	var nilLimit *Limit
	if nilLimit.Err() != nil {
		t.Error("(*Limit)(nil).Err() != nil")
	}
}

func TestReconstructError(t *testing.T) {
	le := &guard.LimitError{Kind: guard.KindStates, Budget: 50, Visited: 51}
	l := LimitFrom(le)

	// Exact message: the typed error comes back.
	err := ReconstructError(le.Error(), l)
	if !errors.Is(err, guard.ErrStates) || err.Error() != le.Error() {
		t.Errorf("exact reconstruction broken: %v", err)
	}
	// Wrapped message: prefix survives, errors.Is still works.
	wrapped := "3 check(s) hit resource limits: " + le.Error()
	err = ReconstructError(wrapped, l)
	if err.Error() != wrapped {
		t.Errorf("wrapped message = %q, want %q", err.Error(), wrapped)
	}
	if !errors.Is(err, guard.ErrStates) {
		t.Error("wrapped reconstruction lost errors.Is")
	}
	// Plain message without a limit: opaque error.
	err = ReconstructError("dial tcp: no route", nil)
	if err == nil || err.Error() != "dial tcp: no route" {
		t.Errorf("plain reconstruction = %v", err)
	}
	if ReconstructError("", nil) != nil {
		t.Error("empty message should reconstruct nil")
	}
}

// TestAsLimit unwraps through fmt wrapping.
func TestAsLimit(t *testing.T) {
	le := &guard.LimitError{Kind: guard.KindTime, Elapsed: time.Second}
	if got := AsLimit(errors.New("plain")); got != nil {
		t.Errorf("AsLimit(plain) = %v", got)
	}
	if got := AsLimit(le); got != le {
		t.Errorf("AsLimit(direct) = %v", got)
	}
	wrapped := &wrappedLimit{prefix: "x: ", le: le}
	if got := AsLimit(wrapped); got != le {
		t.Errorf("AsLimit(wrapped) = %v", got)
	}
}

// TestRunSafety drives one real check end to end through the job
// layer: dstm is opaque at (2,2).
func TestRunSafety(t *testing.T) {
	res, err := Run(context.Background(), Spec{Kind: KindSafety, TM: "dstm"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checks) != 1 {
		t.Fatalf("got %d checks, want 1", len(res.Checks))
	}
	c := res.Checks[0]
	if c.System != "dstm" || c.Prop != "op" || !c.Holds || c.TMStates != 2864 {
		t.Errorf("check = %+v, want dstm/op holding with 2864 states", c)
	}
	var sb strings.Builder
	res.Render(&sb)
	out := sb.String()
	for _, want := range []string{"system:         dstm", "verdict:        SAFE", "TM states:      2864"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestRunSafetyBudget checks a Spec-scoped budget stops the check with
// the typed limit error without touching the process-wide knobs.
func TestRunSafetyBudget(t *testing.T) {
	_, err := Run(context.Background(), Spec{Kind: KindSafety, TM: "dstm", MaxStates: 100})
	if !errors.Is(err, guard.ErrStates) {
		t.Errorf("want state-budget error, got %v", err)
	}
}

// TestRunLiveness drives the liveness path: dstm+aggressive holds
// obstruction freedom and fails livelock freedom at (2,1).
func TestRunLiveness(t *testing.T) {
	res, err := Run(context.Background(), Spec{Kind: KindLiveness, TM: "dstm", CM: "aggressive"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checks) != 3 {
		t.Fatalf("got %d checks, want 3", len(res.Checks))
	}
	if !res.Checks[0].Holds || res.Checks[0].Prop != "obstruction" {
		t.Errorf("obstruction check = %+v", res.Checks[0])
	}
	if res.Checks[1].Holds || res.Checks[1].LoopWord == "" {
		t.Errorf("livelock check should fail with a loop: %+v", res.Checks[1])
	}
	var sb strings.Builder
	res.Render(&sb)
	out := sb.String()
	for _, want := range []string{"obstruction freedom:   HOLDS", "livelock freedom:      FAILS, loop:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestRunValidateFailsFirst refuses bad specs before constructing any
// state.
func TestRunValidateFailsFirst(t *testing.T) {
	if _, err := Run(context.Background(), Spec{Kind: KindSafety, TM: "nope"}); err == nil {
		t.Error("unknown TM should fail")
	}
	if _, err := Run(context.Background(), Spec{Kind: Kind(7)}); err == nil {
		t.Error("unknown kind should fail")
	}
}

// TestEventsForwarding subscribes through job.Events and checks an
// emitted bus event reaches the callback, then stop unsubscribes
// cleanly.
func TestEventsForwarding(t *testing.T) {
	got := make(chan obs.Event, 1)
	stop := Events(16, func(e obs.Event) {
		select {
		case got <- e:
		default:
		}
	})
	obs.Emit(obs.Event{Kind: obs.EvProgress, Name: "test", States: 42})
	select {
	case e := <-got:
		if e.Name != "test" || e.States != 42 {
			t.Errorf("forwarded event = %+v", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("event not forwarded")
	}
	stop()
	// The bus must be usable (and quiet) after stop.
	obs.Emit(obs.Event{Kind: obs.EvProgress, Name: "after-stop"})
}
