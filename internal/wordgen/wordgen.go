// Package wordgen produces pseudo-random statement words for property-based
// testing. The generator is deterministic for a given seed, so failures
// reproduce.
package wordgen

import (
	"math/rand"

	"tmcheck/internal/core"
)

// Config bounds the shape of generated words.
type Config struct {
	Threads int // number of threads (≥ 1)
	Vars    int // number of variables (≥ 1)
	Len     int // exact number of statements
	// CommitBias, AbortBias ∈ [0,1] weight how often a finishing statement
	// is attempted relative to reads/writes. Zero values default to 0.2 and
	// 0.1 respectively.
	CommitBias float64
	AbortBias  float64
}

func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = 2
	}
	if c.Vars <= 0 {
		c.Vars = 2
	}
	if c.CommitBias == 0 {
		c.CommitBias = 0.2
	}
	if c.AbortBias == 0 {
		c.AbortBias = 0.1
	}
	return c
}

// Random generates an arbitrary word: any statement may follow any other,
// including degenerate shapes (aborts of empty transactions, repeated
// commits). Useful for fuzzing parsers and projections.
func Random(rng *rand.Rand, cfg Config) core.Word {
	cfg = cfg.withDefaults()
	w := make(core.Word, 0, cfg.Len)
	for i := 0; i < cfg.Len; i++ {
		t := core.Thread(rng.Intn(cfg.Threads))
		w = append(w, core.St(randomCommand(rng, cfg), t))
	}
	return w
}

func randomCommand(rng *rand.Rand, cfg Config) core.Command {
	r := rng.Float64()
	switch {
	case r < cfg.CommitBias:
		return core.Commit()
	case r < cfg.CommitBias+cfg.AbortBias:
		return core.Abort()
	default:
		v := core.Var(rng.Intn(cfg.Vars))
		if rng.Intn(2) == 0 {
			return core.Read(v)
		}
		return core.Write(v)
	}
}

// WellFormed generates a word in which every thread issues statements in
// transaction shape: accesses followed by an optional commit or abort, then
// possibly a new transaction. This is the shape TM algorithms emit.
func WellFormed(rng *rand.Rand, cfg Config) core.Word {
	cfg = cfg.withDefaults()
	inTx := make([]bool, cfg.Threads)
	w := make(core.Word, 0, cfg.Len)
	for i := 0; i < cfg.Len; i++ {
		t := rng.Intn(cfg.Threads)
		c := randomCommand(rng, cfg)
		// An abort or commit of a thread outside a transaction would form a
		// trivial transaction; allow commits (an empty committed
		// transaction is legal) but re-roll aborts to keep words closer to
		// realistic TM output.
		if c.Op == core.OpAbort && !inTx[t] {
			c = core.Read(core.Var(rng.Intn(cfg.Vars)))
		}
		switch c.Op {
		case core.OpCommit, core.OpAbort:
			inTx[t] = false
		default:
			inTx[t] = true
		}
		w = append(w, core.St(c, core.Thread(t)))
	}
	return w
}

// Sequential generates a sequential word: transactions run one after the
// other with no interleaving. Such words are always opaque.
func Sequential(rng *rand.Rand, cfg Config) core.Word {
	cfg = cfg.withDefaults()
	var w core.Word
	for len(w) < cfg.Len {
		t := core.Thread(rng.Intn(cfg.Threads))
		n := 1 + rng.Intn(3)
		for i := 0; i < n && len(w) < cfg.Len; i++ {
			v := core.Var(rng.Intn(cfg.Vars))
			if rng.Intn(2) == 0 {
				w = append(w, core.St(core.Read(v), t))
			} else {
				w = append(w, core.St(core.Write(v), t))
			}
		}
		if len(w) < cfg.Len {
			if rng.Float64() < 0.8 {
				w = append(w, core.St(core.Commit(), t))
			} else {
				w = append(w, core.St(core.Abort(), t))
			}
		}
	}
	return w
}
