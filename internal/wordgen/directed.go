package wordgen

import (
	"math/rand"

	"tmcheck/internal/core"
)

// Directed generators: word shapes that probe the corners where the
// specifications and the two readings of the definitions diverge. Random
// well-formed words hit these patterns rarely; the generators hit them
// every time, with randomized parameters.

// Straddle produces a reader whose transaction brackets another thread's
// commit: t reads some variables, u commits writes overlapping them, t
// keeps reading (possibly the overwritten variables) and finishes
// randomly. These words exercise the doomed-transaction rules (DESIGN.md
// decisions 6 and 7).
func Straddle(rng *rand.Rand, cfg Config) core.Word {
	cfg = cfg.withDefaults()
	reader := core.Thread(rng.Intn(cfg.Threads))
	writer := core.Thread(rng.Intn(cfg.Threads))
	for writer == reader {
		writer = core.Thread(rng.Intn(cfg.Threads))
	}
	var w core.Word
	// Phase 1: the reader samples variables.
	nRead := 1 + rng.Intn(2)
	for i := 0; i < nRead; i++ {
		w = append(w, core.St(core.Read(core.Var(rng.Intn(cfg.Vars))), reader))
	}
	// Phase 2: the writer commits writes over some of them.
	nWrite := 1 + rng.Intn(2)
	for i := 0; i < nWrite; i++ {
		w = append(w, core.St(core.Write(core.Var(rng.Intn(cfg.Vars))), writer))
	}
	w = append(w, core.St(core.Commit(), writer))
	// Phase 3: the reader continues — rereads, writes, and finishes (or
	// not).
	nMore := rng.Intn(3)
	for i := 0; i < nMore; i++ {
		v := core.Var(rng.Intn(cfg.Vars))
		if rng.Intn(2) == 0 {
			w = append(w, core.St(core.Read(v), reader))
		} else {
			w = append(w, core.St(core.Write(v), reader))
		}
	}
	switch rng.Intn(3) {
	case 0:
		w = append(w, core.St(core.Commit(), reader))
	case 1:
		w = append(w, core.St(core.Abort(), reader))
	}
	return w
}

// PendingChain produces the pattern behind the real-time-clause divergence
// (DESIGN.md decision 0): a thread becomes pending (pinned before a
// commit), the committer finishes, and a third thread starts afterwards
// and touches the pending thread's writes.
func PendingChain(rng *rand.Rand, cfg Config) core.Word {
	cfg = cfg.withDefaults()
	if cfg.Threads < 3 {
		cfg.Threads = 3
	}
	pend, committer, late := core.Thread(0), core.Thread(1), core.Thread(2)
	v1 := core.Var(rng.Intn(cfg.Vars))
	v2 := core.Var(rng.Intn(cfg.Vars))
	var w core.Word
	// The pending thread writes v1 and reads v2.
	w = append(w,
		core.St(core.Write(v1), pend),
		core.St(core.Read(v2), pend),
	)
	// The committer writes v2 (read by the pending thread) and commits:
	// the pending thread is now pinned before this commit.
	w = append(w,
		core.St(core.Write(v2), committer),
		core.St(core.Commit(), committer),
	)
	// The late thread starts afterwards and reads the pending thread's
	// written variable, then optionally more.
	w = append(w, core.St(core.Read(v1), late))
	if rng.Intn(2) == 0 {
		w = append(w, core.St(core.Read(core.Var(rng.Intn(cfg.Vars))), late))
	}
	// Random endings for the pending and late threads.
	if rng.Intn(2) == 0 {
		w = append(w, core.St(core.Commit(), pend))
	}
	if rng.Intn(3) == 0 {
		w = append(w, core.St(core.Commit(), late))
	}
	return w
}

// EmptyCommitNoise interleaves a well-formed word with empty committed
// transactions, which reset spec state in ways plain generators rarely
// produce.
func EmptyCommitNoise(rng *rand.Rand, cfg Config) core.Word {
	base := WellFormed(rng, cfg)
	var w core.Word
	for _, s := range base {
		if rng.Float64() < 0.15 {
			w = append(w, core.St(core.Commit(), core.Thread(rng.Intn(cfg.withDefaults().Threads))))
		}
		w = append(w, s)
	}
	return w
}

// Directed draws from all directed generators with equal probability.
func Directed(rng *rand.Rand, cfg Config) core.Word {
	switch rng.Intn(3) {
	case 0:
		return Straddle(rng, cfg)
	case 1:
		return PendingChain(rng, cfg)
	default:
		return EmptyCommitNoise(rng, cfg)
	}
}
