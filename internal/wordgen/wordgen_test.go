package wordgen

import (
	"math/rand"
	"testing"

	"tmcheck/internal/core"
)

func TestRandomRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := Config{Threads: 3, Vars: 2, Len: 20}
	for i := 0; i < 100; i++ {
		w := Random(rng, cfg)
		if len(w) != cfg.Len {
			t.Fatalf("len = %d, want %d", len(w), cfg.Len)
		}
		for _, s := range w {
			if int(s.T) >= cfg.Threads {
				t.Fatalf("thread %d out of range in %q", s.T, w)
			}
			if s.Cmd.IsAccess() && int(s.Cmd.V) >= cfg.Vars {
				t.Fatalf("variable %d out of range in %q", s.Cmd.V, w)
			}
		}
	}
}

func TestWellFormedShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := Config{Threads: 2, Vars: 2, Len: 15}
	for i := 0; i < 200; i++ {
		w := WellFormed(rng, cfg)
		// No abort of an empty transaction: every abort must follow at
		// least one access of the same thread within the transaction.
		open := map[core.Thread]int{}
		for _, s := range w {
			switch s.Cmd.Op {
			case core.OpAbort:
				if open[s.T] == 0 {
					t.Fatalf("abort of empty transaction in %q", w)
				}
				open[s.T] = 0
			case core.OpCommit:
				open[s.T] = 0
			default:
				open[s.T]++
			}
		}
	}
}

func TestSequentialIsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := Config{Threads: 3, Vars: 3, Len: 18}
	for i := 0; i < 200; i++ {
		w := Sequential(rng, cfg)
		if !core.IsSequential(w) {
			t.Fatalf("not sequential: %q", w)
		}
		if !core.IsOpaque(w) {
			t.Fatalf("sequential word not opaque: %q", w)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	cfg := Config{Threads: 2, Vars: 2, Len: 10}
	w1 := WellFormed(rand.New(rand.NewSource(7)), cfg)
	w2 := WellFormed(rand.New(rand.NewSource(7)), cfg)
	if !w1.Equal(w2) {
		t.Errorf("same seed produced %q and %q", w1, w2)
	}
}

func TestDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := WellFormed(rng, Config{Len: 8})
	if len(w) != 8 {
		t.Fatalf("len = %d", len(w))
	}
	for _, s := range w {
		if int(s.T) >= 2 {
			t.Fatalf("default thread bound violated in %q", w)
		}
	}
}
