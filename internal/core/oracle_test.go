package core

import (
	"math/rand"
	"testing"
)

// The paper's worked examples (Figures 1 and 2, Table 2) pin down the
// oracle's behaviour.

func TestFigure1aNotStrictlySerializable(t *testing.T) {
	// Figure 1(a): x = t1 reads v1 then writes v2; y = t2 writes v1;
	// z = t3 reads v2 then v1. All commit. x→y→z→x is a conflict cycle.
	w := MustParseWord("(w,1)2, (r,1)1, (r,2)3, c2, (w,2)1, (r,1)3, c1, c3")
	if IsStrictlySerializable(w) {
		t.Error("Figure 1(a) word must not be strictly serializable")
	}
	if IsOpaque(w) {
		t.Error("Figure 1(a) word must not be opaque (πop ⊆ πss)")
	}
}

func TestFigure1aWithoutFinalCommitIsSerializable(t *testing.T) {
	// The paper: "if one of the transactions had not committed, the word
	// would have been strictly serializable."
	w := MustParseWord("(w,1)2, (r,1)1, (r,2)3, c2, (w,2)1, (r,1)3, c1")
	if !IsStrictlySerializable(w) {
		t.Error("dropping c3 must make the word strictly serializable")
	}
}

func TestFigure1bNotStrictlySerializable(t *testing.T) {
	w := MustParseWord("(w,1)2, (r,2)2, (r,3)3, (r,1)1, c2, (w,2)3, (w,3)1, c1, c3")
	if IsStrictlySerializable(w) {
		t.Error("Figure 1(b) word must not be strictly serializable")
	}
}

func TestFigure2aOpacity(t *testing.T) {
	// Figure 2(a): like 1(a) but z never commits. Strictly serializable,
	// yet not opaque: the unfinished z still observes an inconsistent
	// snapshot.
	w := MustParseWord("(w,1)2, (r,1)1, (r,2)3, c2, (w,2)1, (r,1)3, c1")
	if !IsStrictlySerializable(w) {
		t.Error("Figure 2(a) word must be strictly serializable")
	}
	if IsOpaque(w) {
		t.Error("Figure 2(a) word must not be opaque")
	}
}

func TestFigure2bOpacity(t *testing.T) {
	// Figure 2(b): z aborts, yet its read forces a serialization cycle.
	w := MustParseWord("(w,1)2, (r,1)1, c2, (r,2)3, a3, (w,2)1, c1")
	if !IsStrictlySerializable(w) {
		t.Error("Figure 2(b) word must be strictly serializable")
	}
	if IsOpaque(w) {
		t.Error("Figure 2(b) word must not be opaque")
	}
}

func TestTable2CounterexampleNotSerializable(t *testing.T) {
	// w1 from Table 2, the counterexample against modified TL2.
	w := MustParseWord("(w,2)1, (w,1)2, (r,2)2, (r,1)1, c2, c1")
	if IsStrictlySerializable(w) {
		t.Error("Table 2 counterexample must not be strictly serializable")
	}
	if IsOpaque(w) {
		t.Error("Table 2 counterexample must not be opaque")
	}
}

func TestSimpleSerializableWords(t *testing.T) {
	for _, in := range []string{
		"",
		"(r,1)1, (w,2)1, c1, (w,1)2, c2",
		"(r,1)1, (w,2)1, a2, c1, (w,1)2, c2",
		"(r,1)1, (w,1)2, c1, c2", // read before writer's commit: t1 < t2
		"(r,1)1, (r,1)2, c1, c2", // two readers never conflict
		"(w,1)1, (w,1)2, c1, c2", // write-write resolved by commit order
		"c1, c2",                 // empty transactions
		"(r,1)1, (w,1)1, c1",     // read own write
		"(w,1)1, (r,1)1, c1",     // local read after own write
		"(r,1)1, a1, (w,1)2, c2", // aborted reader
		"(w,1)2, (r,1)1, c2, a1", // reader aborts after writer commits
		"(r,1)1, (w,2)2, c2, (r,2)1, c1",
	} {
		w := MustParseWord(in)
		if !IsStrictlySerializable(w) {
			t.Errorf("IsStrictlySerializable(%q) = false, want true", in)
		}
		if !IsOpaque(w) {
			t.Errorf("IsOpaque(%q) = false, want true", in)
		}
	}
}

func TestNonSerializableWords(t *testing.T) {
	for _, in := range []string{
		// Classic write skew on reads: each reads what the other commits
		// over.
		"(w,2)1, (w,1)2, (r,2)2, (r,1)1, c2, c1",
		// Read of v1 before y's commit, read of v2 after: x straddles two
		// versions published by y.
		"(r,1)1, (w,1)2, (w,2)2, c2, (r,2)1, c1",
	} {
		w := MustParseWord(in)
		if IsStrictlySerializable(w) {
			t.Errorf("IsStrictlySerializable(%q) = true, want false", in)
		}
	}
}

func TestInconsistentReadBetweenTwoCommits(t *testing.T) {
	// x reads v1 (old), then y commits writes to v1 and v2, then x reads v2
	// (new). Not serializable once x commits.
	w := MustParseWord("(r,1)1, (w,1)2, (w,2)2, c2, (r,2)1, c1")
	if IsStrictlySerializable(w) {
		t.Error("want not strictly serializable")
	}
	// Without x's commit, strict serializability holds but opacity fails.
	prefix := w[:len(w)-1]
	if !IsStrictlySerializable(prefix) {
		t.Error("prefix must be strictly serializable")
	}
	if IsOpaque(prefix) {
		t.Error("prefix must not be opaque")
	}
}

func TestOpacityRequiresRealTimeOrder(t *testing.T) {
	// Non-overlapping committing transactions must serialize in real-time
	// order even without conflicts.
	w := MustParseWord("(r,1)1, c1, (w,2)2, c2")
	if !IsOpaque(w) {
		t.Error("want opaque")
	}
}

func TestConflictPairsExamples(t *testing.T) {
	// Global read vs. commit of a writer.
	w := MustParseWord("(r,1)1, (w,1)2, c2, c1")
	pairs := ConflictPairs(w)
	// (r,1)1 at 0 conflicts with c2 at 2; the two commits do not conflict
	// because only t2 writes.
	if len(pairs) != 1 || pairs[0] != (ConflictPair{I: 0, J: 2}) {
		t.Errorf("ConflictPairs = %v", pairs)
	}

	// Commit-commit conflict requires a common written variable.
	w2 := MustParseWord("(w,1)1, (w,1)2, c1, c2")
	pairs2 := ConflictPairs(w2)
	if len(pairs2) != 1 || pairs2[0] != (ConflictPair{I: 2, J: 3}) {
		t.Errorf("ConflictPairs = %v", pairs2)
	}

	// A read following the thread's own write is not global: no conflict.
	w3 := MustParseWord("(w,1)1, (r,1)1, (w,1)2, c2, c1")
	pairs3 := ConflictPairs(w3)
	if len(pairs3) != 1 || pairs3[0] != (ConflictPair{I: 3, J: 4}) {
		t.Errorf("ConflictPairs = %v", pairs3)
	}

	// Statements within one transaction never conflict.
	w4 := MustParseWord("(r,1)1, (w,1)1, c1")
	if got := ConflictPairs(w4); len(got) != 0 {
		t.Errorf("ConflictPairs = %v", got)
	}
}

func TestStrictEquivalenceBasics(t *testing.T) {
	w := MustParseWord("(r,1)1, (w,1)2, c1, c2")
	// Identity.
	if !StrictlyEquivalent(w, w) {
		t.Error("word must be strictly equivalent to itself")
	}
	// Different thread projection.
	w2 := MustParseWord("(r,1)1, c1, c2")
	if StrictlyEquivalent(w, w2) || StrictlyEquivalent(w2, w) {
		t.Error("different thread projections must not be equivalent")
	}
	// A sequential rearrangement that respects the conflict (read before
	// writer's commit).
	seq := MustParseWord("(r,1)1, c1, (w,1)2, c2")
	if !StrictlyEquivalent(seq, w) {
		t.Errorf("%q should be strictly equivalent to %q", seq, w)
	}
	// The opposite order breaks the conflict order.
	bad := MustParseWord("(w,1)2, c2, (r,1)1, c1")
	if StrictlyEquivalent(bad, w) {
		t.Errorf("%q should not be strictly equivalent to %q", bad, w)
	}
}

func TestStrictEquivalencePrecedence(t *testing.T) {
	// x (t1) commits before y (t2) begins; a candidate placing y first
	// violates condition (iii) when x is finishing.
	w := MustParseWord("(r,1)1, c1, (r,2)2, c2")
	rev := MustParseWord("(r,2)2, c2, (r,1)1, c1")
	if StrictlyEquivalent(rev, w) {
		t.Error("reversing non-overlapping committed transactions must fail")
	}
	if !StrictlyEquivalent(w, w) {
		t.Error("identity must hold")
	}
}

func TestConflictGraphCycleExtraction(t *testing.T) {
	w := MustParseWord("(w,2)1, (w,1)2, (r,2)2, (r,1)1, c2, c1")
	g := BuildConflictGraph(w)
	if g.Acyclic() {
		t.Fatal("graph should be cyclic")
	}
	cyc := g.Cycle()
	if len(cyc) < 2 {
		t.Fatalf("Cycle = %v", cyc)
	}
	// Every consecutive pair (and the wrap-around) must be an edge.
	for i := range cyc {
		a, b := cyc[i], cyc[(i+1)%len(cyc)]
		if !g.HasEdge(a, b) {
			t.Errorf("missing edge %d->%d in cycle %v", a, b, cyc)
		}
	}
}

func TestConflictGraphAcyclicHasNoCycle(t *testing.T) {
	w := MustParseWord("(r,1)1, c1, (w,1)2, c2")
	g := BuildConflictGraph(w)
	if !g.Acyclic() {
		t.Fatal("graph should be acyclic")
	}
	if cyc := g.Cycle(); cyc != nil {
		t.Errorf("Cycle = %v on acyclic graph", cyc)
	}
}

func TestOpacityImpliesSerializabilityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		w := randomWellFormed(rng, 10)
		if IsOpaque(w) && !IsStrictlySerializable(w) {
			t.Fatalf("opaque but not strictly serializable: %q", w)
		}
	}
}

func TestOraclePrefixClosedRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		w := randomWellFormed(rng, 10)
		if IsOpaque(w) {
			for j := range w {
				if !IsOpaque(w[:j]) {
					t.Fatalf("opacity not prefix closed at %d: %q", j, w)
				}
			}
		}
		if IsStrictlySerializable(w) {
			for j := range w {
				if !IsStrictlySerializable(w[:j]) {
					t.Fatalf("πss not prefix closed at %d: %q", j, w)
				}
			}
		}
	}
}

func TestBruteForceAgreesWithConflictGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 600; i++ {
		w := randomWellFormed(rng, 9)
		if got, want := IsStrictlySerializableBrute(w), IsStrictlySerializable(w); got != want {
			t.Fatalf("πss disagreement on %q: brute=%v graph=%v", w, got, want)
		}
		if got, want := IsOpaqueBrute(w), IsOpaque(w); got != want {
			t.Fatalf("πop disagreement on %q: brute=%v graph=%v", w, got, want)
		}
	}
}

func TestSequentialWordsAreOpaque(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		w := randomSequential(rng, 12)
		if !IsSequential(w) {
			t.Fatalf("generator produced non-sequential word %q", w)
		}
		if !IsOpaque(w) {
			t.Fatalf("sequential word not opaque: %q", w)
		}
	}
}

// randomWellFormed emits words whose per-thread shape is
// (access* (commit|abort))*, over 3 threads and 3 variables.
func randomWellFormed(rng *rand.Rand, n int) Word {
	inTx := make([]bool, 3)
	var w Word
	for len(w) < n {
		t := rng.Intn(3)
		switch r := rng.Float64(); {
		case r < 0.2 && inTx[t]:
			w = append(w, St(Commit(), Thread(t)))
			inTx[t] = false
		case r < 0.3 && inTx[t]:
			w = append(w, St(Abort(), Thread(t)))
			inTx[t] = false
		default:
			v := Var(rng.Intn(3))
			if rng.Intn(2) == 0 {
				w = append(w, St(Read(v), Thread(t)))
			} else {
				w = append(w, St(Write(v), Thread(t)))
			}
			inTx[t] = true
		}
	}
	return w
}

func randomSequential(rng *rand.Rand, n int) Word {
	var w Word
	for len(w) < n {
		t := Thread(rng.Intn(3))
		steps := 1 + rng.Intn(3)
		for i := 0; i < steps && len(w) < n-1; i++ {
			v := Var(rng.Intn(3))
			if rng.Intn(2) == 0 {
				w = append(w, St(Read(v), t))
			} else {
				w = append(w, St(Write(v), t))
			}
		}
		if rng.Float64() < 0.8 {
			w = append(w, St(Commit(), t))
		} else {
			w = append(w, St(Abort(), t))
		}
	}
	return w
}
