package core

import (
	"math/rand"
	"testing"
)

func TestWitnessOnSerializableWord(t *testing.T) {
	w := MustParseWord("(r,1)1, (w,1)2, c1, c2")
	seq, ok := Sequentialize(w, false, DeferredUpdate)
	if !ok {
		t.Fatal("expected a witness")
	}
	if !IsSequential(seq) {
		t.Fatalf("witness %q not sequential", seq)
	}
	// The witness must be strictly equivalent to com(w) per the paper's
	// definition (witness as subject).
	if !StrictlyEquivalent(seq, Com(w)) {
		t.Fatalf("witness %q not strictly equivalent to %q", seq, Com(w))
	}
	// The reader serializes first here.
	want := MustParseWord("(r,1)1, c1, (w,1)2, c2")
	if !seq.Equal(want) {
		t.Errorf("witness = %q, want %q", seq, want)
	}
}

func TestWitnessAbsentOnCycle(t *testing.T) {
	w := MustParseWord("(w,2)1, (w,1)2, (r,2)2, (r,1)1, c2, c1")
	if _, ok := SerializationWitness(w, false, DeferredUpdate); ok {
		t.Error("non-serializable word must have no witness")
	}
	if _, ok := Sequentialize(w, false, DeferredUpdate); ok {
		t.Error("non-serializable word must not sequentialize")
	}
}

func TestWitnessMatchesOracleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 400; i++ {
		w := randomWellFormed(rng, 10)
		_, okSS := SerializationWitness(w, false, DeferredUpdate)
		if okSS != IsStrictlySerializable(w) {
			t.Fatalf("πss witness/oracle mismatch on %q", w)
		}
		_, okOp := SerializationWitness(w, true, DeferredUpdate)
		if okOp != IsOpaque(w) {
			t.Fatalf("πop witness/oracle mismatch on %q", w)
		}
	}
}

func TestWitnessIsStrictlyEquivalentRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	checked := 0
	for i := 0; i < 300; i++ {
		w := randomWellFormed(rng, 9)
		if seq, ok := Sequentialize(w, true, DeferredUpdate); ok {
			checked++
			if !IsSequential(seq) {
				t.Fatalf("witness %q not sequential for %q", seq, w)
			}
			if !StrictlyEquivalent(seq, w) {
				t.Fatalf("witness %q not strictly equivalent to %q", seq, w)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no opaque samples — generator broken?")
	}
}

func TestWitnessDirectSemantics(t *testing.T) {
	w := MustParseWord("(w,1)1, (r,1)2, c2, c1")
	ordDef, ok := SerializationWitness(w, false, DeferredUpdate)
	if !ok {
		t.Fatal("deferred witness expected")
	}
	ordDir, ok := SerializationWitness(w, false, DirectUpdate)
	if !ok {
		t.Fatal("direct witness expected")
	}
	// Deferred: reader (transaction 1) first; direct: writer (0) first.
	if ordDef[0] != 1 || ordDir[0] != 0 {
		t.Errorf("orders: deferred %v, direct %v", ordDef, ordDir)
	}
}
