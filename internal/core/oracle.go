package core

// Oracles for the safety properties πss (strict serializability) and πop
// (opacity). Two independent decision procedures are provided:
//
//  1. A conflict-graph procedure (ConflictGraph + acyclicity), the classical
//     characterization the paper recalls in §5. It runs in time quadratic in
//     the word length and is the default oracle.
//  2. A brute-force enumeration over all candidate sequential words
//     (existsEquivalentSequentialBrute), checking strict equivalence
//     directly from the definition. Exponential; used to cross-validate the
//     conflict-graph procedure in tests.
//
// Both decide membership of a *whole word*; the specifications in
// internal/spec decide the same languages online, statement by statement.

// ConflictGraph is a precedence digraph over the transactions of a word:
// an edge x→y means every strictly equivalent sequential word must order x
// before y.
type ConflictGraph struct {
	Txs  []*Transaction
	Adj  [][]int // adjacency by transaction index
	edge map[[2]int]bool
}

// BuildConflictGraph constructs the precedence digraph of w with edges from
//
//   - program order: consecutive transactions of one thread,
//   - conflicts: for a conflicting pair (i, j) with i < j, tx(i) → tx(j),
//   - real time: x → y when x is committing or aborting and x <w y.
//
// The real-time rule pins every transaction — commit­ting, aborting or
// unfinished — after each finished transaction that completed before it
// started. The paper's prose statement of condition (iii) is ambiguous
// about which side the "committing or aborting" qualifier binds to under
// the πss/πop substitution; this reading is the one consistent with (a)
// the standard opacity definition of Guerraoui and Kapalka (real-time
// order constrains all transactions relative to completed ones) and (b)
// the paper's own deterministic specification, whose transaction-begin
// rule makes every pending transaction a predecessor of each newly started
// one — i.e. new transactions cannot be serialized before commits that
// precede their start. Under the opposite reading ("only a *finishing*
// later transaction is pinned"), an unfinished transaction could float
// ahead of earlier commits, and both of the paper's specifications would
// be wrong at three threads; see the spec tests for the distinguishing
// word.
func BuildConflictGraph(w Word) *ConflictGraph {
	txs := Transactions(w)
	owner := TxOf(w, txs)
	g := &ConflictGraph{
		Txs:  txs,
		Adj:  make([][]int, len(txs)),
		edge: map[[2]int]bool{},
	}
	add := func(a, b int) {
		if a == b || g.edge[[2]int{a, b}] {
			return
		}
		g.edge[[2]int{a, b}] = true
		g.Adj[a] = append(g.Adj[a], b)
	}
	for _, p := range ConflictPairs(w) {
		add(owner[p.I].Index, owner[p.J].Index)
	}
	for i, x := range txs {
		for j, y := range txs {
			if i == j {
				continue
			}
			if x.Thread == y.Thread && x.Seq < y.Seq {
				add(i, j)
			}
			if x.Status != TxUnfinished && x.Precedes(y) {
				add(i, j)
			}
		}
	}
	return g
}

// HasEdge reports whether the graph contains the edge a→b.
func (g *ConflictGraph) HasEdge(a, b int) bool { return g.edge[[2]int{a, b}] }

// Acyclic reports whether the precedence digraph has no cycle.
func (g *ConflictGraph) Acyclic() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, len(g.Txs))
	var visit func(int) bool
	visit = func(u int) bool {
		color[u] = gray
		for _, v := range g.Adj[u] {
			switch color[v] {
			case gray:
				return false
			case white:
				if !visit(v) {
					return false
				}
			}
		}
		color[u] = black
		return true
	}
	for u := range g.Txs {
		if color[u] == white && !visit(u) {
			return false
		}
	}
	return true
}

// Cycle returns one cycle of transaction indices if the graph is cyclic,
// or nil otherwise. The returned slice lists the cycle's vertices in order;
// the last vertex has an edge back to the first.
func (g *ConflictGraph) Cycle() []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, len(g.Txs))
	parent := make([]int, len(g.Txs))
	for i := range parent {
		parent[i] = -1
	}
	var cyc []int
	var visit func(int) bool
	visit = func(u int) bool {
		color[u] = gray
		for _, v := range g.Adj[u] {
			switch color[v] {
			case gray:
				// Found a back edge u→v; walk parents from u back to v.
				cyc = []int{}
				for x := u; x != v; x = parent[x] {
					cyc = append(cyc, x)
				}
				cyc = append(cyc, v)
				// Reverse so the cycle reads v … u.
				for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
					cyc[i], cyc[j] = cyc[j], cyc[i]
				}
				return false
			case white:
				parent[v] = u
				if !visit(v) {
					return false
				}
			}
		}
		color[u] = black
		return true
	}
	for u := range g.Txs {
		if color[u] == white && !visit(u) {
			return cyc
		}
	}
	return nil
}

// IsStrictlySerializable reports w ∈ πss: there is a sequential word
// strictly equivalent to com(w).
func IsStrictlySerializable(w Word) bool {
	return BuildConflictGraph(Com(w)).Acyclic()
}

// IsOpaque reports w ∈ πop: there is a sequential word strictly equivalent
// to w itself, so aborting and unfinished transactions also serialize.
func IsOpaque(w Word) bool {
	return BuildConflictGraph(w).Acyclic()
}

// existsEquivalentSequentialBrute decides, by exhaustive enumeration of
// transaction orderings, whether some sequential word is strictly
// equivalent to w. Exponential in the number of transactions; meant for
// cross-validation on short words.
func existsEquivalentSequentialBrute(w Word) bool {
	txs := Transactions(w)
	n := len(txs)
	if n == 0 {
		return true
	}
	order := make([]int, 0, n)
	usedSeq := map[Thread]int{} // next admissible Seq per thread
	taken := make([]bool, n)
	var rec func() bool
	rec = func() bool {
		if len(order) == n {
			// Materialize the candidate sequential word and check, directly
			// against the definition, that it is strictly equivalent to w
			// (the candidate is the subject of the definition).
			var w2 Word
			for _, ti := range order {
				w2 = append(w2, txs[ti].Statements(w)...)
			}
			return StrictlyEquivalent(w2, w)
		}
		for i, x := range txs {
			if taken[i] || usedSeq[x.Thread] != x.Seq {
				continue
			}
			taken[i] = true
			usedSeq[x.Thread]++
			order = append(order, i)
			if rec() {
				return true
			}
			order = order[:len(order)-1]
			usedSeq[x.Thread]--
			taken[i] = false
		}
		return false
	}
	return rec()
}

// IsStrictlySerializableBrute is the exhaustive counterpart of
// IsStrictlySerializable, used to cross-validate it.
func IsStrictlySerializableBrute(w Word) bool {
	return existsEquivalentSequentialBrute(Com(w))
}

// IsOpaqueBrute is the exhaustive counterpart of IsOpaque.
func IsOpaqueBrute(w Word) bool {
	return existsEquivalentSequentialBrute(w)
}
