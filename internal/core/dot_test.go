package core

import (
	"strings"
	"testing"
)

func TestConflictGraphDOT(t *testing.T) {
	w := MustParseWord("(w,2)1, (w,1)2, (r,2)2, (r,1)1, c2, c1")
	g := BuildConflictGraph(w)
	var b strings.Builder
	if err := g.WriteDOT(&b, "w1"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`digraph "w1"`,
		"T1.1",
		"T2.1",
		"color=red", // the cycle is highlighted
		"fillcolor=mistyrose",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestConflictGraphDOTAcyclic(t *testing.T) {
	w := MustParseWord("(r,1)1, c1, (w,1)2, a2, (r,2)3")
	g := BuildConflictGraph(w)
	var b strings.Builder
	if err := g.WriteDOT(&b, "ok"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "fillcolor") {
		t.Errorf("acyclic graph should not highlight a cycle:\n%s", out)
	}
	// Status coloring: aborting gray, unfinished blue.
	if !strings.Contains(out, "color=gray") || !strings.Contains(out, "color=blue") {
		t.Errorf("status colors missing:\n%s", out)
	}
}
