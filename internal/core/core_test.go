package core

import (
	"testing"
)

func TestCommandConstructors(t *testing.T) {
	if c := Read(1); c.Op != OpRead || c.V != 1 {
		t.Errorf("Read(1) = %+v", c)
	}
	if c := Write(0); c.Op != OpWrite || c.V != 0 {
		t.Errorf("Write(0) = %+v", c)
	}
	if c := Commit(); c.Op != OpCommit || c.V != 0 {
		t.Errorf("Commit() = %+v", c)
	}
	if c := Abort(); c.Op != OpAbort || c.V != 0 {
		t.Errorf("Abort() = %+v", c)
	}
}

func TestCommandIsAccess(t *testing.T) {
	for _, tc := range []struct {
		c    Command
		want bool
	}{
		{Read(0), true},
		{Write(1), true},
		{Commit(), false},
		{Abort(), false},
	} {
		if got := tc.c.IsAccess(); got != tc.want {
			t.Errorf("IsAccess(%v) = %v, want %v", tc.c, got, tc.want)
		}
	}
}

func TestStmtString(t *testing.T) {
	for _, tc := range []struct {
		s    Stmt
		want string
	}{
		{St(Read(0), 1), "(r,1)2"},
		{St(Write(1), 0), "(w,2)1"},
		{St(Commit(), 0), "c1"},
		{St(Abort(), 1), "a2"},
	} {
		if got := tc.s.String(); got != tc.want {
			t.Errorf("String(%+v) = %q, want %q", tc.s, got, tc.want)
		}
	}
}

func TestWordString(t *testing.T) {
	w := MustParseWord("(r,1)1, (w,2)1, c1")
	if got := w.String(); got != "(r,1)1, (w,2)1, c1" {
		t.Errorf("String = %q", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	inputs := []string{
		"(r,1)1, (w,2)1, c1, (w,1)2, c2",
		"(w,2)1, (w,1)2, (r,2)2, (r,1)1, c2, c1",
		"a1",
		"c1, c2, a1",
	}
	for _, in := range inputs {
		w, err := ParseWord(in)
		if err != nil {
			t.Fatalf("ParseWord(%q): %v", in, err)
		}
		w2, err := ParseWord(w.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", w.String(), err)
		}
		if !w.Equal(w2) {
			t.Errorf("round trip changed %q to %q", in, w2)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"(x,1)1",
		"(r,0)1",
		"(r,1)0",
		"(r,1",
		"q1",
		"c0",
		"(r)1",
		"(r,1,2)1",
	} {
		if _, err := ParseWord(in); err == nil {
			t.Errorf("ParseWord(%q) succeeded, want error", in)
		}
	}
}

func TestParseEmptyWord(t *testing.T) {
	w, err := ParseWord("")
	if err != nil {
		t.Fatalf("ParseWord(\"\"): %v", err)
	}
	if len(w) != 0 {
		t.Errorf("empty input parsed to %v", w)
	}
}

func TestThreadProjection(t *testing.T) {
	w := MustParseWord("(r,1)1, (w,2)2, c1, a2, (r,1)2")
	p1 := w.ThreadProjection(0)
	if p1.String() != "(r,1)1, c1" {
		t.Errorf("w|1 = %q", p1)
	}
	p2 := w.ThreadProjection(1)
	if p2.String() != "(w,2)2, a2, (r,1)2" {
		t.Errorf("w|2 = %q", p2)
	}
	if p3 := w.ThreadProjection(2); len(p3) != 0 {
		t.Errorf("w|3 = %v, want empty", p3)
	}
}

func TestThreadsAndVars(t *testing.T) {
	w := MustParseWord("(r,2)3, (w,1)1, c3, c1")
	ts := w.Threads()
	if len(ts) != 2 || ts[0] != 0 || ts[1] != 2 {
		t.Errorf("Threads = %v", ts)
	}
	vs := w.Vars()
	if len(vs) != 2 || vs[0] != 0 || vs[1] != 1 {
		t.Errorf("Vars = %v", vs)
	}
}

func TestTransactionsDecomposition(t *testing.T) {
	w := MustParseWord("(r,1)1, (w,2)1, c1, (w,1)2, a2, (r,1)1, (r,2)2")
	txs := Transactions(w)
	if len(txs) != 4 {
		t.Fatalf("got %d transactions, want 4", len(txs))
	}
	x := txs[0]
	if x.Thread != 0 || x.Status != TxCommitting || len(x.Positions) != 3 {
		t.Errorf("tx0 = %+v", x)
	}
	y := txs[1]
	if y.Thread != 1 || y.Status != TxAborting || len(y.Positions) != 2 {
		t.Errorf("tx1 = %+v", y)
	}
	z := txs[2]
	if z.Thread != 0 || z.Status != TxUnfinished || z.Seq != 1 {
		t.Errorf("tx2 = %+v", z)
	}
	u := txs[3]
	if u.Thread != 1 || u.Status != TxUnfinished || u.Seq != 1 {
		t.Errorf("tx3 = %+v", u)
	}
}

func TestTransactionAccessors(t *testing.T) {
	w := MustParseWord("(w,1)1, (r,1)1, (r,2)1, (w,2)1, c1")
	txs := Transactions(w)
	if len(txs) != 1 {
		t.Fatalf("got %d transactions", len(txs))
	}
	x := txs[0]
	if x.First() != 0 || x.Last() != 4 {
		t.Errorf("First/Last = %d/%d", x.First(), x.Last())
	}
	if got := x.Writes(w); !got.Has(0) || !got.Has(1) || got.Len() != 2 {
		t.Errorf("Writes = %v", got)
	}
	// The read of variable 1 follows a write of variable 1 in the same
	// transaction, so only variable 2 is globally read.
	if got := x.GlobalReads(w); got.Has(0) || !got.Has(1) || got.Len() != 1 {
		t.Errorf("GlobalReads = %v", got)
	}
	if got := x.Statements(w); !got.Equal(w) {
		t.Errorf("Statements = %v", got)
	}
}

func TestPrecedes(t *testing.T) {
	w := MustParseWord("(r,1)1, c1, (r,1)2, c2")
	txs := Transactions(w)
	if !txs[0].Precedes(txs[1]) {
		t.Error("tx0 should precede tx1")
	}
	if txs[1].Precedes(txs[0]) {
		t.Error("tx1 should not precede tx0")
	}
	// Overlapping transactions precede in neither direction.
	w2 := MustParseWord("(r,1)1, (r,1)2, c1, c2")
	txs2 := Transactions(w2)
	if txs2[0].Precedes(txs2[1]) || txs2[1].Precedes(txs2[0]) {
		t.Error("overlapping transactions must not precede each other")
	}
}

func TestCom(t *testing.T) {
	w := MustParseWord("(r,1)1, (w,2)1, a2, c1, (w,1)2, c2, (r,2)1")
	// Thread 2's first transaction is the lone abort a2 (aborting); its
	// second commits. Thread 1's first transaction commits; its last read is
	// unfinished.
	got := Com(w)
	want := MustParseWord("(r,1)1, (w,2)1, c1, (w,1)2, c2")
	if !got.Equal(want) {
		t.Errorf("Com = %q, want %q", got, want)
	}
}

func TestComEmpty(t *testing.T) {
	if got := Com(nil); len(got) != 0 {
		t.Errorf("Com(nil) = %v", got)
	}
	w := MustParseWord("(r,1)1, a1")
	if got := Com(w); len(got) != 0 {
		t.Errorf("Com of all-aborting word = %v", got)
	}
}

func TestIsSequential(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want bool
	}{
		{"(r,1)1, c1, (w,1)2, c2", true},
		{"(r,1)1, (w,1)2, c1, c2", false},
		{"(r,1)1, c1, (r,1)1, c1", true},
		{"", true},
		{"(r,1)1", true},
		// The definition orders x before y when x's *last statement so far*
		// precedes y's first, so an unfinished transaction whose statements
		// all come first still yields a sequential word.
		{"(r,1)1, (r,1)2, c2", true},
		// ... but interleaving breaks it.
		{"(r,1)2, (r,1)1, (w,1)2, c2", false},
	} {
		w := MustParseWord(tc.in)
		if got := IsSequential(w); got != tc.want {
			t.Errorf("IsSequential(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestVarSetOps(t *testing.T) {
	var vs VarSet
	if !vs.Empty() || vs.Len() != 0 {
		t.Error("zero VarSet should be empty")
	}
	vs = vs.Add(3).Add(1).Add(3)
	if vs.Len() != 2 || !vs.Has(1) || !vs.Has(3) || vs.Has(0) {
		t.Errorf("vs = %v", vs)
	}
	if got := vs.Remove(1); got.Has(1) || !got.Has(3) {
		t.Errorf("Remove = %v", got)
	}
	other := VarSet(0).Add(3).Add(5)
	if got := vs.Union(other); got.Len() != 3 {
		t.Errorf("Union = %v", got)
	}
	if got := vs.Intersect(other); got.Len() != 1 || !got.Has(3) {
		t.Errorf("Intersect = %v", got)
	}
	if !vs.Intersects(other) {
		t.Error("Intersects should be true")
	}
	if vs.Intersects(VarSet(0).Add(0)) {
		t.Error("Intersects should be false")
	}
	if got := vs.String(); got != "{2,4}" {
		t.Errorf("String = %q", got)
	}
	lst := vs.Vars()
	if len(lst) != 2 || lst[0] != 1 || lst[1] != 3 {
		t.Errorf("Vars = %v", lst)
	}
}

func TestThreadSetOps(t *testing.T) {
	var ts ThreadSet
	ts = ts.Add(0).Add(2)
	if ts.Len() != 2 || !ts.Has(0) || !ts.Has(2) || ts.Has(1) {
		t.Errorf("ts = %v", ts)
	}
	if got := ts.Remove(0); got.Has(0) {
		t.Errorf("Remove = %v", got)
	}
	if got := ts.Union(ThreadSet(0).Add(1)); got.Len() != 3 {
		t.Errorf("Union = %v", got)
	}
	if ts.Intersects(ThreadSet(0).Add(1)) {
		t.Error("Intersects should be false")
	}
	if got := ts.String(); got != "{1,3}" {
		t.Errorf("String = %q", got)
	}
	lst := ts.Threads()
	if len(lst) != 2 || lst[0] != 0 || lst[1] != 2 {
		t.Errorf("Threads = %v", lst)
	}
	if !ThreadSet(0).Empty() {
		t.Error("zero ThreadSet should be empty")
	}
}

func TestWordClone(t *testing.T) {
	w := MustParseWord("(r,1)1, c1")
	c := w.Clone()
	c[0] = St(Write(1), 1)
	if w[0] != St(Read(0), 0) {
		t.Error("Clone shares storage with original")
	}
}

func TestAlphabetWordHelpers(t *testing.T) {
	ab := Alphabet{Threads: 2, Vars: 2}
	w := MustParseWord("(r,1)1, (w,2)2, c1, a2")
	ls := ab.EncodeWord(w)
	if len(ls) != len(w) {
		t.Fatalf("EncodeWord length %d", len(ls))
	}
	if !ab.DecodeWord(ls).Equal(w) {
		t.Errorf("DecodeWord round trip failed")
	}
	if got := len(ab.Statements()); got != ab.Size() {
		t.Errorf("Statements = %d, want %d", got, ab.Size())
	}
	cmds := ab.Commands()
	// 2 reads + 2 writes + commit.
	if len(cmds) != 5 || cmds[len(cmds)-1].Op != OpCommit {
		t.Errorf("Commands = %v", cmds)
	}
}

func TestSemanticsString(t *testing.T) {
	if DeferredUpdate.String() != "deferred update" ||
		DirectUpdate.String() != "direct update" ||
		MixedInvalidation.String() != "mixed invalidation" {
		t.Error("Semantics names wrong")
	}
}

func TestWordEqualLengthMismatch(t *testing.T) {
	a := MustParseWord("(r,1)1")
	b := MustParseWord("(r,1)1, c1")
	if a.Equal(b) || b.Equal(a) {
		t.Error("words of different length must differ")
	}
}
