package core

// Conflicts under deferred-update semantics (paper §2): a statement s1 of
// transaction x and a statement s2 of transaction y ≠ x conflict in w if
//
//	(i)  s1 is a global read of some variable v, s2 is a commit, and y
//	     writes to v; or
//	(ii) s1 and s2 are both commits, and x and y write to a common variable.
//
// The relation is symmetric in (s1, s2); what strict equivalence preserves
// is the order of the two positions within the word.

// ConflictPair records two conflicting statement positions i < j of a word.
type ConflictPair struct {
	I, J int
}

// conflictIndex precomputes per-position conflict-relevant facts.
type conflictIndex struct {
	txs   []*Transaction
	owner []*Transaction
	// globalReadVar[i] is the variable globally read at position i, or -1.
	globalReadVar []int
}

func indexConflicts(w Word) *conflictIndex {
	txs := Transactions(w)
	owner := TxOf(w, txs)
	grv := make([]int, len(w))
	for i := range grv {
		grv[i] = -1
	}
	// Recompute global reads positionally: a read of v at position p is
	// global if no earlier write of v exists in the same transaction.
	for _, x := range txs {
		var written VarSet
		for _, p := range x.Positions {
			switch w[p].Cmd.Op {
			case OpRead:
				if !written.Has(w[p].Cmd.V) {
					grv[p] = int(w[p].Cmd.V)
				}
			case OpWrite:
				written = written.Add(w[p].Cmd.V)
			}
		}
	}
	return &conflictIndex{txs: txs, owner: owner, globalReadVar: grv}
}

// positionsConflict reports whether statements at positions i and j of w
// conflict. The order of i and j is immaterial.
func (ci *conflictIndex) positionsConflict(w Word, i, j int) bool {
	xi, xj := ci.owner[i], ci.owner[j]
	if xi == nil || xj == nil || xi == xj {
		return false
	}
	si, sj := w[i], w[j]
	// Case (i): global read vs. commit of a writer, either orientation.
	if v := ci.globalReadVar[i]; v >= 0 && sj.Cmd.Op == OpCommit && xj.Writes(w).Has(Var(v)) {
		return true
	}
	if v := ci.globalReadVar[j]; v >= 0 && si.Cmd.Op == OpCommit && xi.Writes(w).Has(Var(v)) {
		return true
	}
	// Case (ii): two commits of transactions writing a common variable.
	if si.Cmd.Op == OpCommit && sj.Cmd.Op == OpCommit &&
		xi.Writes(w).Intersects(xj.Writes(w)) {
		return true
	}
	return false
}

// ConflictPairs returns every conflicting pair of positions (i, j), i < j,
// of w.
func ConflictPairs(w Word) []ConflictPair {
	ci := indexConflicts(w)
	var out []ConflictPair
	for i := 0; i < len(w); i++ {
		for j := i + 1; j < len(w); j++ {
			if ci.positionsConflict(w, i, j) {
				out = append(out, ConflictPair{I: i, J: j})
			}
		}
	}
	return out
}

// StrictlyEquivalent reports whether w is strictly equivalent to w2, where
// w2 is the word being serialized and w the candidate (πss and πop ask for
// a sequential w strictly equivalent to com(w2) respectively w2): the
// words have the same thread projections, the order of every conflicting
// pair agrees (conflict-pair-hood depends only on thread projections, so
// the condition is symmetric), and for every finishing transaction x of
// w2, x <w2 y implies ¬(y <w x) — a completed transaction precedes, in
// real time, everything that starts after it, and the candidate must not
// reverse that. See BuildConflictGraph for why the real-time clause is
// anchored at the finished transaction.
func StrictlyEquivalent(w, w2 Word) bool {
	if len(w) != len(w2) {
		return false
	}
	// (i) Thread projections must agree; build the positional correspondence
	// while checking.
	pos2 := make([]int, len(w)) // position in w2 of w's statement i
	next := map[Thread][]int{}
	for j, s := range w2 {
		next[s.T] = append(next[s.T], j)
	}
	used := map[Thread]int{}
	for i, s := range w {
		lst := next[s.T]
		k := used[s.T]
		if k >= len(lst) || w2[lst[k]] != s {
			return false
		}
		pos2[i] = lst[k]
		used[s.T] = k + 1
	}
	for t, lst := range next {
		if used[t] != len(lst) {
			return false
		}
	}
	// (ii) Conflict order preserved.
	for _, p := range ConflictPairs(w) {
		if pos2[p.I] > pos2[p.J] {
			return false
		}
	}
	// (iii) Real-time precedence of w2's finishing transactions preserved.
	txs := Transactions(w)
	txs2 := Transactions(w2)
	// Same thread projections imply the same per-thread transaction
	// decomposition; match transactions by (thread, per-thread sequence).
	byKey := map[[2]int]*Transaction{}
	for _, x := range txs {
		byKey[[2]int{int(x.Thread), x.Seq}] = x
	}
	for _, x2 := range txs2 {
		if x2.Status == TxUnfinished {
			continue
		}
		x := byKey[[2]int{int(x2.Thread), x2.Seq}]
		for _, y2 := range txs2 {
			if y2 == x2 || !x2.Precedes(y2) {
				continue
			}
			y := byKey[[2]int{int(y2.Thread), y2.Seq}]
			if y.Precedes(x) {
				return false
			}
		}
	}
	return true
}
