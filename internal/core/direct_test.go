package core

import (
	"math/rand"
	"testing"
)

func TestDeferredUnderMatchesDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 300; i++ {
		w := randomWellFormed(rng, 10)
		if got, want := IsStrictlySerializableUnder(w, DeferredUpdate), IsStrictlySerializable(w); got != want {
			t.Fatalf("πss mismatch on %q", w)
		}
		if got, want := IsOpaqueUnder(w, DeferredUpdate), IsOpaque(w); got != want {
			t.Fatalf("πop mismatch on %q", w)
		}
	}
}

func TestDirectConflictsAreStatementLevel(t *testing.T) {
	// Deferred update: a read before the writer's commit reads the old
	// value, so the reader can serialize first. Direct update: the read
	// follows the write physically, so the writer serializes first.
	w := MustParseWord("(w,1)1, (r,1)2, c2, c1")
	// Deferred: t2 read old v1 (conflict with c1 at pos 3), so t2 before
	// t1: serializable.
	if !IsStrictlySerializableUnder(w, DeferredUpdate) {
		t.Error("deferred: want serializable")
	}
	// Direct: t1's write precedes t2's read → t1 before t2; t2's commit
	// precedes nothing binding; still serializable, but with the opposite
	// witness order. Check via the graphs' edges.
	gDef := BuildConflictGraphUnder(w, DeferredUpdate)
	gDir := BuildConflictGraphUnder(w, DirectUpdate)
	// Transactions: 0 = t1's, 1 = t2's.
	if !gDef.HasEdge(1, 0) || gDef.HasEdge(0, 1) {
		t.Errorf("deferred edges wrong")
	}
	if !gDir.HasEdge(0, 1) || gDir.HasEdge(1, 0) {
		t.Errorf("direct edges wrong")
	}
}

func TestDirectUpdateDistinguishingWord(t *testing.T) {
	// t1 writes v1; t2 reads v1 (dirty under direct update) and writes v2;
	// t1 then reads v2 after t2 commits. Deferred: t2 read old v1 → t2
	// before t1; t1 read new v2 → t2 before t1: consistent, serializable.
	// Direct: t2 read t1's v1 → t1 before t2; t1 read t2's committed v2 →
	// t2 before t1: cycle.
	w := MustParseWord("(w,1)1, (r,1)2, (w,2)2, c2, (r,2)1, c1")
	if !IsStrictlySerializableUnder(w, DeferredUpdate) {
		t.Error("deferred: want serializable")
	}
	if IsStrictlySerializableUnder(w, DirectUpdate) {
		t.Error("direct: want not serializable")
	}
}

func TestDirectWriteWriteOrder(t *testing.T) {
	// Two writes to the same variable conflict at the statements under
	// direct update, regardless of commits.
	w := MustParseWord("(w,1)1, (w,1)2, c2, c1")
	pairs := ConflictPairsUnder(w, DirectUpdate)
	found := false
	for _, p := range pairs {
		if p.I == 0 && p.J == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("missing w-w statement conflict, pairs = %v", pairs)
	}
	// Deferred update: only the commits conflict.
	pairsDef := ConflictPairsUnder(w, DeferredUpdate)
	if len(pairsDef) != 1 || pairsDef[0] != (ConflictPair{I: 2, J: 3}) {
		t.Errorf("deferred pairs = %v", pairsDef)
	}
}

func TestDirectOpacityImpliesDirectSerializability(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for i := 0; i < 300; i++ {
		w := randomWellFormed(rng, 10)
		if IsOpaqueUnder(w, DirectUpdate) && !IsStrictlySerializableUnder(w, DirectUpdate) {
			t.Fatalf("direct πop ⊄ πss on %q", w)
		}
	}
}

// Direct-update conflicts refine deferred-update ones in the absence of
// reads racing commits: on sequential words both semantics agree
// (everything is trivially serializable).
func TestSemanticsAgreeOnSequentialWords(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for i := 0; i < 200; i++ {
		w := randomSequential(rng, 12)
		if !IsOpaqueUnder(w, DirectUpdate) {
			t.Fatalf("sequential word not direct-opaque: %q", w)
		}
		if !IsOpaqueUnder(w, DeferredUpdate) {
			t.Fatalf("sequential word not deferred-opaque: %q", w)
		}
	}
}

func TestMixedInvalidationSeparatesFromDeferred(t *testing.T) {
	// Under deferred update, a read between a writer's write and its
	// commit can still serialize before the writer. Under mixed
	// invalidation, the read conflicts with the WRITE statement itself, so
	// a read after the write is pinned after the writer.
	//
	// x (t1) writes v1 then v2 and commits; y (t2) reads v1 AFTER the
	// write but BEFORE the commit, then reads v2 after the commit. Under
	// deferred semantics: y's v1-read is before the commit (y before x),
	// y's v2-read after it (y after x) — a cycle, not serializable. Under
	// mixed: both reads follow x's writes/commit, so y sits after x.
	w := MustParseWord("(w,1)1, (r,1)2, (w,2)1, c1, (r,2)2, c2")
	if IsStrictlySerializableUnder(w, DeferredUpdate) {
		t.Error("deferred: expected non-serializable")
	}
	if !IsStrictlySerializableUnder(w, MixedInvalidation) {
		t.Error("mixed: expected serializable")
	}
}

func TestMixedEagerReadWriteOrder(t *testing.T) {
	// A read BEFORE a committing writer's write is pinned before the
	// writer under mixed invalidation, at the statement, not the commit.
	w := MustParseWord("(r,1)2, (w,1)1, c1, c2")
	g := BuildConflictGraphUnder(w, MixedInvalidation)
	// Transaction 0 is t2's (first statement), 1 is t1's.
	if !g.HasEdge(0, 1) {
		t.Error("reader should precede the committing writer")
	}
	if !IsStrictlySerializableUnder(w, MixedInvalidation) {
		t.Error("word should be serializable under mixed invalidation")
	}
}

func TestMixedIgnoresAbortedWriters(t *testing.T) {
	// An aborting writer's writes invalidate nobody.
	w := MustParseWord("(w,1)1, (r,1)2, a1, c2")
	pairs := ConflictPairsUnder(w, MixedInvalidation)
	if len(pairs) != 0 {
		t.Errorf("aborting writer should not conflict: %v", pairs)
	}
}

func TestMixedOpacityImpliesMixedSerializability(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for i := 0; i < 300; i++ {
		w := randomWellFormed(rng, 10)
		if IsOpaqueUnder(w, MixedInvalidation) && !IsStrictlySerializableUnder(w, MixedInvalidation) {
			t.Fatalf("mixed πop ⊄ πss on %q", w)
		}
	}
}
