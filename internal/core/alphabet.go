package core

import "fmt"

// Alphabet fixes a number of threads and variables and enumerates the
// statement alphabet Ŝ = Ĉ × T as consecutive integers, the letter domain
// of the automata layer. For each thread the commands are laid out as
// read(0..k-1), write(0..k-1), commit, abort.
type Alphabet struct {
	Threads int
	Vars    int
}

// Size returns |Ŝ| = n·(2k+2).
func (a Alphabet) Size() int { return a.Threads * (2*a.Vars + 2) }

// Encode maps a statement to its letter.
func (a Alphabet) Encode(s Stmt) int {
	base := int(s.T) * (2*a.Vars + 2)
	switch s.Cmd.Op {
	case OpRead:
		return base + int(s.Cmd.V)
	case OpWrite:
		return base + a.Vars + int(s.Cmd.V)
	case OpCommit:
		return base + 2*a.Vars
	case OpAbort:
		return base + 2*a.Vars + 1
	default:
		panic(fmt.Sprintf("core: cannot encode op %v", s.Cmd.Op))
	}
}

// Decode maps a letter back to its statement.
func (a Alphabet) Decode(l int) Stmt {
	per := 2*a.Vars + 2
	t := Thread(l / per)
	r := l % per
	switch {
	case r < a.Vars:
		return St(Read(Var(r)), t)
	case r < 2*a.Vars:
		return St(Write(Var(r-a.Vars)), t)
	case r == 2*a.Vars:
		return St(Commit(), t)
	default:
		return St(Abort(), t)
	}
}

// EncodeWord maps a word to its letter sequence.
func (a Alphabet) EncodeWord(w Word) []int {
	out := make([]int, len(w))
	for i, s := range w {
		out[i] = a.Encode(s)
	}
	return out
}

// DecodeWord maps a letter sequence back to a word.
func (a Alphabet) DecodeWord(ls []int) Word {
	out := make(Word, len(ls))
	for i, l := range ls {
		out[i] = a.Decode(l)
	}
	return out
}

// Statements enumerates all statements of the alphabet in letter order.
func (a Alphabet) Statements() []Stmt {
	out := make([]Stmt, a.Size())
	for l := range out {
		out[l] = a.Decode(l)
	}
	return out
}

// Commands enumerates the command set C (reads, writes, commit — not
// abort) for this alphabet's variables, the commands a program may issue.
func (a Alphabet) Commands() []Command {
	var out []Command
	for v := 0; v < a.Vars; v++ {
		out = append(out, Read(Var(v)))
	}
	for v := 0; v < a.Vars; v++ {
		out = append(out, Write(Var(v)))
	}
	out = append(out, Commit())
	return out
}
