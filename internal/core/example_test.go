package core_test

import (
	"fmt"

	"tmcheck/internal/core"
)

func ExampleParseWord() {
	w, err := core.ParseWord("(r,1)1, (w,2)1, c1, (w,1)2, c2")
	if err != nil {
		panic(err)
	}
	fmt.Println(len(w), "statements over", len(w.Threads()), "threads")
	// Output: 5 statements over 2 threads
}

func ExampleIsOpaque() {
	// Figure 2(b) of the paper: the aborting transaction of thread 3 read
	// an inconsistent snapshot, so the word is strictly serializable but
	// not opaque.
	w := core.MustParseWord("(w,1)2, (r,1)1, c2, (r,2)3, a3, (w,2)1, c1")
	fmt.Println("strictly serializable:", core.IsStrictlySerializable(w))
	fmt.Println("opaque:", core.IsOpaque(w))
	// Output:
	// strictly serializable: true
	// opaque: false
}

func ExampleSequentialize() {
	// The reader serializes before the writer whose commit came first.
	w := core.MustParseWord("(r,1)1, (w,1)2, c1, c2")
	seq, ok := core.Sequentialize(w, false, core.DeferredUpdate)
	fmt.Println(ok, seq)
	// Output: true (r,1)1, c1, (w,1)2, c2
}

func ExampleBuildConflictGraph() {
	// The modified-TL2 counterexample: both transactions read what the
	// other commits over, so the conflict graph has a cycle.
	w := core.MustParseWord("(w,2)1, (w,1)2, (r,2)2, (r,1)1, c2, c1")
	g := core.BuildConflictGraph(w)
	fmt.Println("acyclic:", g.Acyclic())
	fmt.Println("cycle length:", len(g.Cycle()))
	// Output:
	// acyclic: false
	// cycle length: 2
}

func ExampleTransactions() {
	w := core.MustParseWord("(r,1)1, (w,1)2, a2, c1, (r,2)2")
	for _, x := range core.Transactions(w) {
		fmt.Printf("thread %d: %d statements, %s\n", x.Thread+1, len(x.Positions), x.Status)
	}
	// Output:
	// thread 1: 2 statements, committing
	// thread 2: 2 statements, aborting
	// thread 2: 1 statements, unfinished
}
