// Package core defines the formal framework of Guerraoui, Henzinger and
// Singh, "Model Checking Transactional Memories" (PLDI 2008): commands,
// statements, words, transactions, conflicts under deferred-update
// semantics, strict equivalence, and reference (oracle) decision procedures
// for the safety properties strict serializability and opacity.
//
// The package is deliberately self-contained and value-oriented: a Word is a
// plain slice of statements, and every analysis is a pure function of it.
// Higher layers (internal/tm, internal/spec, internal/explore) build
// transition systems whose emitted letters are exactly the statements
// defined here.
package core

import (
	"fmt"
	"strings"
)

// Thread identifies a thread. Threads are numbered 0..n-1.
type Thread uint8

// Var identifies a shared variable. Variables are numbered 0..k-1.
type Var uint8

// Op is the kind of a command or finishing statement.
type Op uint8

// The four statement kinds of the framework. Read and Write carry a
// variable; Commit and Abort do not. The paper's command set C is
// {commit} ∪ ({read,write} × V); the extended statement alphabet Ĉ adds
// abort.
const (
	OpRead Op = iota
	OpWrite
	OpCommit
	OpAbort
)

// String returns the short mnemonic used throughout the paper's tables.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "r"
	case OpWrite:
		return "w"
	case OpCommit:
		return "c"
	case OpAbort:
		return "a"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Command is an element of Ĉ = C ∪ {abort}. V is meaningful only when Op is
// OpRead or OpWrite; it must be zero otherwise so that Command values are
// directly comparable.
type Command struct {
	Op Op
	V  Var
}

// Read returns the command (read, v).
func Read(v Var) Command { return Command{Op: OpRead, V: v} }

// Write returns the command (write, v).
func Write(v Var) Command { return Command{Op: OpWrite, V: v} }

// Commit returns the commit command.
func Commit() Command { return Command{Op: OpCommit} }

// Abort returns the abort pseudo-command.
func Abort() Command { return Command{Op: OpAbort} }

// IsAccess reports whether the command reads or writes a variable.
func (c Command) IsAccess() bool { return c.Op == OpRead || c.Op == OpWrite }

// String renders the command in the paper's notation, e.g. "(r,1)" or "c".
// Variables are printed 1-based to match the paper's examples.
func (c Command) String() string {
	switch c.Op {
	case OpRead, OpWrite:
		return fmt.Sprintf("(%s,%d)", c.Op, c.V+1)
	default:
		return c.Op.String()
	}
}

// Stmt is a statement: a command attributed to a thread (an element of
// Ŝ = Ĉ × T).
type Stmt struct {
	Cmd Command
	T   Thread
}

// St builds a statement from a command and thread.
func St(c Command, t Thread) Stmt { return Stmt{Cmd: c, T: t} }

// String renders the statement in the paper's notation, e.g. "(r,1)2" for a
// read of variable 1 by thread 2. Threads are printed 1-based.
func (s Stmt) String() string {
	return fmt.Sprintf("%s%d", s.Cmd, s.T+1)
}

// Word is a finite sequence of statements (an element of Ŝ*).
type Word []Stmt

// String renders the word as a comma-separated statement list.
func (w Word) String() string {
	parts := make([]string, len(w))
	for i, s := range w {
		parts[i] = s.String()
	}
	return strings.Join(parts, ", ")
}

// Clone returns a copy of w that shares no storage with it.
func (w Word) Clone() Word {
	c := make(Word, len(w))
	copy(c, w)
	return c
}

// Threads returns the set of threads with at least one statement in w,
// in ascending order.
func (w Word) Threads() []Thread {
	seen := map[Thread]bool{}
	var out []Thread
	for _, s := range w {
		if !seen[s.T] {
			seen[s.T] = true
			out = append(out, s.T)
		}
	}
	sortThreads(out)
	return out
}

// Vars returns the set of variables accessed (read or written) in w, in
// ascending order.
func (w Word) Vars() []Var {
	seen := map[Var]bool{}
	var out []Var
	for _, s := range w {
		if s.Cmd.IsAccess() && !seen[s.Cmd.V] {
			seen[s.Cmd.V] = true
			out = append(out, s.Cmd.V)
		}
	}
	sortVars(out)
	return out
}

// ThreadProjection returns w|t, the subsequence of statements of thread t.
func (w Word) ThreadProjection(t Thread) Word {
	var out Word
	for _, s := range w {
		if s.T == t {
			out = append(out, s)
		}
	}
	return out
}

// Equal reports whether two words are identical statement-for-statement.
func (w Word) Equal(v Word) bool {
	if len(w) != len(v) {
		return false
	}
	for i := range w {
		if w[i] != v[i] {
			return false
		}
	}
	return true
}

func sortThreads(ts []Thread) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func sortVars(vs []Var) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// VarSet is a bitset of variables; bit v is set when variable v is a member.
// With at most a handful of variables in any model-checking instance, a
// uint16 is ample.
type VarSet uint16

// Has reports membership of v.
func (vs VarSet) Has(v Var) bool { return vs&(1<<v) != 0 }

// Add returns vs ∪ {v}.
func (vs VarSet) Add(v Var) VarSet { return vs | 1<<v }

// Remove returns vs \ {v}.
func (vs VarSet) Remove(v Var) VarSet { return vs &^ (1 << v) }

// Union returns vs ∪ o.
func (vs VarSet) Union(o VarSet) VarSet { return vs | o }

// Intersect returns vs ∩ o.
func (vs VarSet) Intersect(o VarSet) VarSet { return vs & o }

// Intersects reports whether vs ∩ o ≠ ∅.
func (vs VarSet) Intersects(o VarSet) bool { return vs&o != 0 }

// Empty reports whether the set is empty.
func (vs VarSet) Empty() bool { return vs == 0 }

// Len returns the number of members.
func (vs VarSet) Len() int {
	n := 0
	for x := vs; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Vars lists the members in ascending order.
func (vs VarSet) Vars() []Var {
	var out []Var
	for v := Var(0); v < 16; v++ {
		if vs.Has(v) {
			out = append(out, v)
		}
	}
	return out
}

// String renders the set as {v1,v2,...} with 1-based variable names.
func (vs VarSet) String() string {
	parts := []string{}
	for _, v := range vs.Vars() {
		parts = append(parts, fmt.Sprintf("%d", v+1))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// ThreadSet is a bitset of threads, analogous to VarSet.
type ThreadSet uint16

// Has reports membership of t.
func (ts ThreadSet) Has(t Thread) bool { return ts&(1<<t) != 0 }

// Add returns ts ∪ {t}.
func (ts ThreadSet) Add(t Thread) ThreadSet { return ts | 1<<t }

// Remove returns ts \ {t}.
func (ts ThreadSet) Remove(t Thread) ThreadSet { return ts &^ (1 << t) }

// Union returns ts ∪ o.
func (ts ThreadSet) Union(o ThreadSet) ThreadSet { return ts | o }

// Intersects reports whether ts ∩ o ≠ ∅.
func (ts ThreadSet) Intersects(o ThreadSet) bool { return ts&o != 0 }

// Empty reports whether the set is empty.
func (ts ThreadSet) Empty() bool { return ts == 0 }

// Len returns the number of members.
func (ts ThreadSet) Len() int {
	n := 0
	for x := ts; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Threads lists the members in ascending order.
func (ts ThreadSet) Threads() []Thread {
	var out []Thread
	for t := Thread(0); t < 16; t++ {
		if ts.Has(t) {
			out = append(out, t)
		}
	}
	return out
}

// String renders the set as {t1,t2,...} with 1-based thread names.
func (ts ThreadSet) String() string {
	parts := []string{}
	for _, t := range ts.Threads() {
		parts = append(parts, fmt.Sprintf("%d", t+1))
	}
	return "{" + strings.Join(parts, ",") + "}"
}
