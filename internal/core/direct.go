package core

// The paper (§2) defines conflicts for deferred-update semantics — writes
// become visible at commit — and notes that "our methodology can be
// adapted for direct update semantics by changing the definition of a
// conflict". This file provides that adaptation point: a Semantics value
// selects the conflict relation, and the conflict-pair, conflict-graph and
// oracle machinery is available under either.
//
// Under direct update, a write is globally visible the moment it executes
// (aborts roll back), so the order of any two same-variable accesses of
// different transactions where at least one is a write is observable:
// conflicts are the classical read-write, write-read and write-write
// pairs on the statements themselves, and commits do not conflict.
//
// The finite-state specifications of internal/spec are derived from the
// deferred-update relation; re-deriving them for direct update would be a
// research exercise the paper only gestures at, so direct-update support
// here is at the level of word classification (oracles), which suffices to
// sample-check direct-update TMs.

// Semantics selects a conflict relation.
type Semantics uint8

// The conflict disciplines of the TM literature. DeferredUpdate is the
// paper's definition (writes publish at commit). DirectUpdate makes every
// same-variable access pair with a write observable. MixedInvalidation is
// the Scott-style middle ground the paper's §5 alludes to ("stronger
// notions of safety ... by modifying the semantics of conflict"): a
// committing writer invalidates overlapping readers at the WRITE statement
// (eager write-read), while write-write conflicts stay at the commits
// (lazy).
const (
	DeferredUpdate Semantics = iota
	DirectUpdate
	MixedInvalidation
)

// String names the semantics.
func (s Semantics) String() string {
	switch s {
	case DirectUpdate:
		return "direct update"
	case MixedInvalidation:
		return "mixed invalidation"
	default:
		return "deferred update"
	}
}

// positionsConflictMixed reports a mixed-invalidation conflict between
// positions i and j of w: either a global read of v against a committing
// transaction's write of v (the statements themselves, not the commit —
// eager), or two commits of transactions writing a common variable
// (lazy, as under deferred update).
func (ci *conflictIndex) positionsConflictMixed(w Word, i, j int) bool {
	xi, xj := ci.owner[i], ci.owner[j]
	if xi == nil || xj == nil || xi == xj {
		return false
	}
	si, sj := w[i], w[j]
	// Eager write-read: global read vs a committing writer's write
	// statement of the same variable.
	if v := ci.globalReadVar[i]; v >= 0 && sj.Cmd.Op == OpWrite &&
		int(sj.Cmd.V) == v && xj.Status == TxCommitting {
		return true
	}
	if v := ci.globalReadVar[j]; v >= 0 && si.Cmd.Op == OpWrite &&
		int(si.Cmd.V) == v && xi.Status == TxCommitting {
		return true
	}
	// Lazy write-write: as under deferred update.
	if si.Cmd.Op == OpCommit && sj.Cmd.Op == OpCommit &&
		xi.Writes(w).Intersects(xj.Writes(w)) {
		return true
	}
	return false
}

// positionsConflictDirect reports a direct-update conflict between
// positions i and j of w: same variable, different transactions, at least
// one write.
func (ci *conflictIndex) positionsConflictDirect(w Word, i, j int) bool {
	xi, xj := ci.owner[i], ci.owner[j]
	if xi == nil || xj == nil || xi == xj {
		return false
	}
	si, sj := w[i], w[j]
	if !si.Cmd.IsAccess() || !sj.Cmd.IsAccess() || si.Cmd.V != sj.Cmd.V {
		return false
	}
	return si.Cmd.Op == OpWrite || sj.Cmd.Op == OpWrite
}

// ConflictPairsUnder is ConflictPairs with a selectable conflict relation.
func ConflictPairsUnder(w Word, sem Semantics) []ConflictPair {
	ci := indexConflicts(w)
	conflicts := ci.positionsConflict
	switch sem {
	case DirectUpdate:
		conflicts = ci.positionsConflictDirect
	case MixedInvalidation:
		conflicts = ci.positionsConflictMixed
	}
	var out []ConflictPair
	for i := 0; i < len(w); i++ {
		for j := i + 1; j < len(w); j++ {
			if conflicts(w, i, j) {
				out = append(out, ConflictPair{I: i, J: j})
			}
		}
	}
	return out
}

// BuildConflictGraphUnder is BuildConflictGraph with a selectable conflict
// relation.
func BuildConflictGraphUnder(w Word, sem Semantics) *ConflictGraph {
	txs := Transactions(w)
	owner := TxOf(w, txs)
	g := &ConflictGraph{
		Txs:  txs,
		Adj:  make([][]int, len(txs)),
		edge: map[[2]int]bool{},
	}
	add := func(a, b int) {
		if a == b || g.edge[[2]int{a, b}] {
			return
		}
		g.edge[[2]int{a, b}] = true
		g.Adj[a] = append(g.Adj[a], b)
	}
	for _, p := range ConflictPairsUnder(w, sem) {
		add(owner[p.I].Index, owner[p.J].Index)
	}
	for i, x := range txs {
		for j, y := range txs {
			if i == j {
				continue
			}
			if x.Thread == y.Thread && x.Seq < y.Seq {
				add(i, j)
			}
			if x.Status != TxUnfinished && x.Precedes(y) {
				add(i, j)
			}
		}
	}
	return g
}

// IsStrictlySerializableUnder decides πss with the selected conflict
// relation.
func IsStrictlySerializableUnder(w Word, sem Semantics) bool {
	return BuildConflictGraphUnder(Com(w), sem).Acyclic()
}

// IsOpaqueUnder decides πop with the selected conflict relation.
func IsOpaqueUnder(w Word, sem Semantics) bool {
	return BuildConflictGraphUnder(w, sem).Acyclic()
}
