package core

// SerializationWitness returns, for a serializable word, the witness
// order: transaction indices (into Transactions of the analyzed word) in
// an order whose induced sequential word is strictly equivalent to the
// input. For πss the analyzed word is com(w); for πop it is w itself.
// ok is false when no witness exists (the word is not serializable).
//
// The witness is a topological order of the precedence digraph, choosing
// the smallest available transaction index first, so it is deterministic.
func SerializationWitness(w Word, prop bool /* true = opacity */, sem Semantics) (order []int, ok bool) {
	target := w
	if !prop {
		target = Com(w)
	}
	g := BuildConflictGraphUnder(target, sem)
	n := len(g.Txs)
	indeg := make([]int, n)
	for _, adj := range g.Adj {
		for _, v := range adj {
			indeg[v]++
		}
	}
	// Kahn's algorithm with smallest-index-first selection.
	used := make([]bool, n)
	for len(order) < n {
		pick := -1
		for i := 0; i < n; i++ {
			if !used[i] && indeg[i] == 0 {
				pick = i
				break
			}
		}
		if pick < 0 {
			return nil, false // cycle
		}
		used[pick] = true
		order = append(order, pick)
		for _, v := range g.Adj[pick] {
			indeg[v]--
		}
	}
	return order, true
}

// Sequentialize materializes the witness: it returns the sequential word
// obtained by concatenating the analyzed word's transactions in witness
// order. For πss the analyzed word is com(w).
func Sequentialize(w Word, prop bool, sem Semantics) (Word, bool) {
	target := w
	if !prop {
		target = Com(w)
	}
	order, ok := SerializationWitness(w, prop, sem)
	if !ok {
		return nil, false
	}
	txs := Transactions(target)
	var out Word
	for _, i := range order {
		out = append(out, txs[i].Statements(target)...)
	}
	return out, true
}
