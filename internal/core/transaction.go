package core

// TxStatus classifies a transaction within a word.
type TxStatus uint8

// A transaction is committing if its last statement is a commit, aborting if
// its last statement is an abort, and unfinished otherwise.
const (
	TxCommitting TxStatus = iota
	TxAborting
	TxUnfinished
)

// String names the status.
func (s TxStatus) String() string {
	switch s {
	case TxCommitting:
		return "committing"
	case TxAborting:
		return "aborting"
	case TxUnfinished:
		return "unfinished"
	default:
		return "invalid"
	}
}

// Transaction is a maximal run of statements of one thread between an
// initiating statement and a finishing statement (or the end of the word).
// Positions index into the word the transaction was extracted from.
type Transaction struct {
	Thread    Thread
	Status    TxStatus
	Positions []int // indices into the source word, ascending
	Index     int   // ordinal among all transactions, by first statement
	Seq       int   // ordinal among transactions of the same thread
}

// First returns the position of the transaction's first statement.
func (x *Transaction) First() int { return x.Positions[0] }

// Last returns the position of the transaction's last statement.
func (x *Transaction) Last() int { return x.Positions[len(x.Positions)-1] }

// Statements materializes the transaction's statements from the source word.
func (x *Transaction) Statements(w Word) Word {
	out := make(Word, len(x.Positions))
	for i, p := range x.Positions {
		out[i] = w[p]
	}
	return out
}

// Writes returns the set of variables written by the transaction in w.
func (x *Transaction) Writes(w Word) VarSet {
	var vs VarSet
	for _, p := range x.Positions {
		if w[p].Cmd.Op == OpWrite {
			vs = vs.Add(w[p].Cmd.V)
		}
	}
	return vs
}

// GlobalReads returns the set of variables globally read by the transaction:
// variables v with a read of v not preceded (within the transaction) by a
// write of v.
func (x *Transaction) GlobalReads(w Word) VarSet {
	var reads, written VarSet
	for _, p := range x.Positions {
		switch w[p].Cmd.Op {
		case OpRead:
			if !written.Has(w[p].Cmd.V) {
				reads = reads.Add(w[p].Cmd.V)
			}
		case OpWrite:
			written = written.Add(w[p].Cmd.V)
		}
	}
	return reads
}

// Precedes reports x <w y: the last statement of x occurs before the first
// statement of y in the source word.
func (x *Transaction) Precedes(y *Transaction) bool {
	return x.Last() < y.First()
}

// Transactions decomposes w into its transactions, ordered by first
// statement. Each statement of w belongs to exactly one transaction.
func Transactions(w Word) []*Transaction {
	open := map[Thread]*Transaction{} // current unfinished transaction per thread
	seq := map[Thread]int{}
	var txs []*Transaction
	for i, s := range w {
		x := open[s.T]
		if x == nil {
			x = &Transaction{Thread: s.T, Status: TxUnfinished, Seq: seq[s.T]}
			seq[s.T]++
			open[s.T] = x
			txs = append(txs, x)
		}
		x.Positions = append(x.Positions, i)
		switch s.Cmd.Op {
		case OpCommit:
			x.Status = TxCommitting
			delete(open, s.T)
		case OpAbort:
			x.Status = TxAborting
			delete(open, s.T)
		}
	}
	for i, x := range txs {
		x.Index = i
	}
	return txs
}

// TxOf maps each position of w to the transaction containing it.
func TxOf(w Word, txs []*Transaction) []*Transaction {
	owner := make([]*Transaction, len(w))
	for _, x := range txs {
		for _, p := range x.Positions {
			owner[p] = x
		}
	}
	return owner
}

// Com returns com(w): the subsequence of w consisting of every statement
// that is part of a committing transaction.
func Com(w Word) Word {
	txs := Transactions(w)
	owner := TxOf(w, txs)
	var out Word
	for i := range w {
		if owner[i] != nil && owner[i].Status == TxCommitting {
			out = append(out, w[i])
		}
	}
	return out
}

// IsSequential reports whether every pair of transactions in w is ordered:
// for all transactions x ≠ y, either x <w y or y <w x.
func IsSequential(w Word) bool {
	txs := Transactions(w)
	for i := 0; i < len(txs); i++ {
		for j := i + 1; j < len(txs); j++ {
			if !txs[i].Precedes(txs[j]) && !txs[j].Precedes(txs[i]) {
				return false
			}
		}
	}
	return true
}
