package core

import (
	"fmt"
	"io"
)

// WriteDOT renders the conflict graph in Graphviz DOT format: one node per
// transaction (labeled Tthread.seq and colored by status), conflict and
// precedence edges, with the transactions of a detected cycle highlighted.
func (g *ConflictGraph) WriteDOT(w io.Writer, name string) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n", name); err != nil {
		return err
	}
	fmt.Fprintf(w, "  rankdir=LR;\n  node [shape=box, fontsize=10];\n")
	inCycle := map[int]bool{}
	for _, v := range g.Cycle() {
		inCycle[v] = true
	}
	for i, x := range g.Txs {
		color := "black"
		switch x.Status {
		case TxAborting:
			color = "gray"
		case TxUnfinished:
			color = "blue"
		}
		style := ""
		if inCycle[i] {
			style = ", style=filled, fillcolor=mistyrose"
		}
		fmt.Fprintf(w, "  t%d [label=\"T%d.%d (%s)\", color=%s%s];\n",
			i, x.Thread+1, x.Seq+1, x.Status, color, style)
	}
	for u, adj := range g.Adj {
		for _, v := range adj {
			attr := ""
			if inCycle[u] && inCycle[v] {
				attr = " [color=red]"
			}
			fmt.Fprintf(w, "  t%d -> t%d%s;\n", u, v, attr)
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
