package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genWord is a quick.Generator producing well-formed words over up to 3
// threads and 3 variables.
type genWord struct {
	W Word
}

// Generate implements quick.Generator.
func (genWord) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 1 + rng.Intn(3)
	k := 1 + rng.Intn(3)
	length := rng.Intn(12)
	inTx := make([]bool, n)
	var w Word
	for len(w) < length {
		t := rng.Intn(n)
		r := rng.Float64()
		switch {
		case r < 0.2 && inTx[t]:
			w = append(w, St(Commit(), Thread(t)))
			inTx[t] = false
		case r < 0.3 && inTx[t]:
			w = append(w, St(Abort(), Thread(t)))
			inTx[t] = false
		default:
			v := Var(rng.Intn(k))
			if rng.Intn(2) == 0 {
				w = append(w, St(Read(v), Thread(t)))
			} else {
				w = append(w, St(Write(v), Thread(t)))
			}
			inTx[t] = true
		}
	}
	return reflect.ValueOf(genWord{W: w})
}

var quickCfg = &quick.Config{MaxCount: 400}

func TestQuickVarSetAlgebra(t *testing.T) {
	if err := quick.Check(func(a, b, c uint16) bool {
		x, y, z := VarSet(a), VarSet(b), VarSet(c)
		if x.Union(y) != y.Union(x) {
			return false
		}
		if x.Union(y).Union(z) != x.Union(y.Union(z)) {
			return false
		}
		if x.Union(x) != x || x.Intersect(x) != x {
			return false
		}
		if x.Intersect(y.Union(z)) != x.Intersect(y).Union(x.Intersect(z)) {
			return false
		}
		if x.Intersects(y) != !x.Intersect(y).Empty() {
			return false
		}
		return true
	}, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickVarSetAddRemove(t *testing.T) {
	if err := quick.Check(func(a uint16, vRaw uint8) bool {
		x := VarSet(a)
		v := Var(vRaw % 16)
		if !x.Add(v).Has(v) {
			return false
		}
		if x.Remove(v).Has(v) {
			return false
		}
		if x.Add(v).Remove(v).Has(v) {
			return false
		}
		// Adding a present element preserves Len.
		if x.Has(v) && x.Add(v).Len() != x.Len() {
			return false
		}
		if !x.Has(v) && x.Add(v).Len() != x.Len()+1 {
			return false
		}
		return true
	}, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickThreadSetMirrorsVarSet(t *testing.T) {
	if err := quick.Check(func(a, b uint16, tRaw uint8) bool {
		x, y := ThreadSet(a), ThreadSet(b)
		tr := Thread(tRaw % 16)
		if x.Union(y) != y.Union(x) {
			return false
		}
		if !x.Add(tr).Has(tr) || x.Remove(tr).Has(tr) {
			return false
		}
		if len(x.Threads()) != x.Len() {
			return false
		}
		return true
	}, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickAlphabetRoundTrip(t *testing.T) {
	for _, ab := range []Alphabet{{1, 1}, {2, 2}, {3, 2}, {2, 4}, {4, 3}} {
		for l := 0; l < ab.Size(); l++ {
			s := ab.Decode(l)
			if got := ab.Encode(s); got != l {
				t.Fatalf("alphabet %+v: Encode(Decode(%d)) = %d", ab, l, got)
			}
		}
		// Distinct letters decode to distinct statements.
		seen := map[Stmt]bool{}
		for l := 0; l < ab.Size(); l++ {
			s := ab.Decode(l)
			if seen[s] {
				t.Fatalf("alphabet %+v: duplicate statement %v", ab, s)
			}
			seen[s] = true
		}
	}
}

func TestQuickThreadProjectionPartitions(t *testing.T) {
	if err := quick.Check(func(g genWord) bool {
		w := g.W
		total := 0
		for _, th := range w.Threads() {
			total += len(w.ThreadProjection(th))
		}
		return total == len(w)
	}, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickTransactionsPartitionPositions(t *testing.T) {
	if err := quick.Check(func(g genWord) bool {
		w := g.W
		txs := Transactions(w)
		covered := make([]bool, len(w))
		for _, x := range txs {
			for _, p := range x.Positions {
				if covered[p] {
					return false // a position in two transactions
				}
				covered[p] = true
			}
		}
		for _, c := range covered {
			if !c {
				return false // uncovered position
			}
		}
		return true
	}, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickComIdempotent(t *testing.T) {
	if err := quick.Check(func(g genWord) bool {
		c := Com(g.W)
		return Com(c).Equal(c)
	}, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickComKeepsOnlyCommitting(t *testing.T) {
	if err := quick.Check(func(g genWord) bool {
		c := Com(g.W)
		for _, x := range Transactions(c) {
			if x.Status != TxCommitting {
				return false
			}
		}
		return true
	}, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickStrictEquivalenceReflexive(t *testing.T) {
	if err := quick.Check(func(g genWord) bool {
		return StrictlyEquivalent(g.W, g.W)
	}, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickOpacityImpliesSerializability(t *testing.T) {
	if err := quick.Check(func(g genWord) bool {
		return !IsOpaque(g.W) || IsStrictlySerializable(g.W)
	}, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickOraclePrefixClosed(t *testing.T) {
	if err := quick.Check(func(g genWord) bool {
		w := g.W
		if IsOpaque(w) {
			for j := range w {
				if !IsOpaque(w[:j]) {
					return false
				}
			}
		}
		if IsStrictlySerializable(w) {
			for j := range w {
				if !IsStrictlySerializable(w[:j]) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickSerializabilityIgnoresNonCommitted(t *testing.T) {
	// πss is a property of com(w): dropping aborting and unfinished
	// transactions does not change the verdict.
	if err := quick.Check(func(g genWord) bool {
		return IsStrictlySerializable(g.W) == IsStrictlySerializable(Com(g.W))
	}, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickConflictPairsAreOrdered(t *testing.T) {
	if err := quick.Check(func(g genWord) bool {
		for _, p := range ConflictPairs(g.W) {
			if p.I >= p.J || p.J >= len(g.W) || p.I < 0 {
				return false
			}
		}
		return true
	}, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickParseRoundTrip(t *testing.T) {
	if err := quick.Check(func(g genWord) bool {
		w2, err := ParseWord(g.W.String())
		return err == nil && w2.Equal(g.W)
	}, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickConflictGraphEdgesWithinRange(t *testing.T) {
	if err := quick.Check(func(g genWord) bool {
		gr := BuildConflictGraph(g.W)
		n := len(gr.Txs)
		for u, adj := range gr.Adj {
			for _, v := range adj {
				if v < 0 || v >= n || v == u {
					return false
				}
			}
		}
		return true
	}, quickCfg); err != nil {
		t.Error(err)
	}
}
