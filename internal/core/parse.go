package core

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseWord parses the paper's word notation, e.g.
//
//	(w,2)1, (w,1)2, (r,2)2, (r,1)1, c2, c1
//
// Statements are comma-separated at the top level. Reads and writes are
// written "(r,v)t" / "(w,v)t"; commits "ct"; aborts "at". Variables and
// threads are 1-based in the notation and converted to the package's
// 0-based identifiers.
func ParseWord(s string) (Word, error) {
	var w Word
	toks := splitStatements(s)
	for _, tok := range toks {
		st, err := ParseStmt(tok)
		if err != nil {
			return nil, fmt.Errorf("statement %q: %w", tok, err)
		}
		w = append(w, st)
	}
	return w, nil
}

// MustParseWord is ParseWord for trusted literals; it panics on error.
func MustParseWord(s string) Word {
	w, err := ParseWord(s)
	if err != nil {
		panic(err)
	}
	return w
}

// ParseStmt parses a single statement in the paper's notation.
func ParseStmt(tok string) (Stmt, error) {
	tok = strings.TrimSpace(tok)
	if tok == "" {
		return Stmt{}, fmt.Errorf("empty statement")
	}
	if strings.HasPrefix(tok, "(") {
		close := strings.Index(tok, ")")
		if close < 0 {
			return Stmt{}, fmt.Errorf("missing ')'")
		}
		inner := tok[1:close]
		rest := strings.TrimSpace(tok[close+1:])
		parts := strings.Split(inner, ",")
		if len(parts) != 2 {
			return Stmt{}, fmt.Errorf("want (op,var), got %q", inner)
		}
		op := strings.TrimSpace(parts[0])
		v, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil || v < 1 {
			return Stmt{}, fmt.Errorf("bad variable %q", parts[1])
		}
		t, err := strconv.Atoi(rest)
		if err != nil || t < 1 {
			return Stmt{}, fmt.Errorf("bad thread %q", rest)
		}
		switch op {
		case "r":
			return St(Read(Var(v-1)), Thread(t-1)), nil
		case "w":
			return St(Write(Var(v-1)), Thread(t-1)), nil
		default:
			return Stmt{}, fmt.Errorf("bad op %q", op)
		}
	}
	op := tok[:1]
	t, err := strconv.Atoi(strings.TrimSpace(tok[1:]))
	if err != nil || t < 1 {
		return Stmt{}, fmt.Errorf("bad thread %q", tok[1:])
	}
	switch op {
	case "c":
		return St(Commit(), Thread(t-1)), nil
	case "a":
		return St(Abort(), Thread(t-1)), nil
	default:
		return Stmt{}, fmt.Errorf("bad op %q", op)
	}
}

// splitStatements splits on commas that are not inside parentheses.
func splitStatements(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	tail := strings.TrimSpace(s[start:])
	if tail != "" {
		out = append(out, tail)
	}
	// Drop empty fragments produced by trailing commas.
	var clean []string
	for _, f := range out {
		if strings.TrimSpace(f) != "" {
			clean = append(clean, f)
		}
	}
	return clean
}
