package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersGaugesTimers(t *testing.T) {
	r := New()
	r.Inc("a.count", 2)
	r.Inc("a.count", 3)
	r.SetGauge("a.gauge", 7)
	r.SetGauge("a.gauge", 4)
	r.MaxGauge("a.max", 5)
	r.MaxGauge("a.max", 3)
	r.AddTime("a.timer", 2*time.Millisecond)
	r.AddTime("a.timer", 3*time.Millisecond)

	rep := r.Snapshot("test")
	if rep.Counters["a.count"] != 5 {
		t.Errorf("counter = %d, want 5", rep.Counters["a.count"])
	}
	if rep.Gauges["a.gauge"] != 4 {
		t.Errorf("gauge = %d, want 4 (last write wins)", rep.Gauges["a.gauge"])
	}
	if rep.Gauges["a.max"] != 5 {
		t.Errorf("max gauge = %d, want 5", rep.Gauges["a.max"])
	}
	tm := rep.Timers["a.timer"]
	if tm.Count != 2 || tm.TotalNS != (5*time.Millisecond).Nanoseconds() {
		t.Errorf("timer = %+v, want count 2 total 5ms", tm)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	r.Observe("lat", 500*time.Nanosecond) // ≤1µs
	r.Observe("lat", 2*time.Microsecond)  // ≤4µs
	r.Observe("lat", 2*time.Microsecond)  // ≤4µs
	r.Observe("lat", 2*time.Second)       // +Inf
	h := r.Snapshot("").Histograms["lat"]
	if h.Count != 4 {
		t.Fatalf("count = %d, want 4", h.Count)
	}
	want := map[int64]int64{1_000: 1, 4_000: 2, -1: 1}
	if len(h.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want 3 non-empty", h.Buckets)
	}
	for _, b := range h.Buckets {
		if want[b.LeNS] != b.Count {
			t.Errorf("bucket le=%d count=%d, want %d", b.LeNS, b.Count, want[b.LeNS])
		}
	}
}

func TestPhaseNesting(t *testing.T) {
	r := New()
	outer := r.StartPhase("outer")
	inner := r.StartPhase("inner")
	inner()
	sibling := r.StartPhase("sibling")
	sibling()
	outer()
	rep := r.Snapshot("")
	if len(rep.Phases) != 1 || rep.Phases[0].Name != "outer" {
		t.Fatalf("roots = %+v, want single outer", rep.Phases)
	}
	kids := rep.Phases[0].Children
	if len(kids) != 2 || kids[0].Name != "inner" || kids[1].Name != "sibling" {
		t.Fatalf("children = %+v, want inner then sibling", kids)
	}
	if rep.Phases[0].ElapsedNS < kids[0].ElapsedNS {
		t.Error("outer phase shorter than nested child")
	}
}

func TestDisabledRecordsNothing(t *testing.T) {
	r := New()
	r.SetEnabled(false)
	r.Inc("c", 1)
	r.SetGauge("g", 1)
	r.AddTime("t", time.Second)
	r.Observe("h", time.Second)
	done := r.StartPhase("p")
	done()
	rep := r.Snapshot("")
	if len(rep.Counters)+len(rep.Gauges)+len(rep.Timers)+len(rep.Histograms)+len(rep.Phases) != 0 {
		t.Errorf("disabled registry recorded: %+v", rep)
	}
}

func TestJSONDeterministicUpToTimes(t *testing.T) {
	record := func() *Registry {
		r := New()
		r.Inc("z.last", 1)
		r.Inc("a.first", 42)
		r.SetGauge("m.gauge", 9)
		done := r.StartPhase("phase")
		done()
		return r
	}
	var b1, b2 bytes.Buffer
	if err := record().WriteJSON(&b1, "cmd"); err != nil {
		t.Fatal(err)
	}
	if err := record().WriteJSON(&b2, "cmd"); err != nil {
		t.Fatal(err)
	}
	// Strip the measured fields, then the bytes must match exactly.
	strip := func(b []byte) Report {
		var rep Report
		if err := json.Unmarshal(b, &rep); err != nil {
			t.Fatal(err)
		}
		rep.Phases = nil
		return rep
	}
	r1, r2 := strip(b1.Bytes()), strip(b2.Bytes())
	j1, _ := json.Marshal(r1)
	j2, _ := json.Marshal(r2)
	if string(j1) != string(j2) {
		t.Errorf("reports differ:\n%s\n%s", j1, j2)
	}
	// Key order in the raw bytes is sorted: a.first before z.last.
	s := b1.String()
	if strings.Index(s, "a.first") > strings.Index(s, "z.last") {
		t.Error("JSON counter keys not sorted")
	}
}

func TestTextReportSections(t *testing.T) {
	r := New()
	r.Inc("explore.seq.states", 3)
	r.AddTime("explore.seq.build", time.Millisecond)
	r.Observe("stm.tl2.attempt", time.Microsecond)
	done := r.StartPhase("table2")
	done()
	txt := r.Text()
	for _, want := range []string{"phases:", "table2", "counters:", "explore.seq.states", "timers:", "histograms:", "stm.tl2.attempt"} {
		if !strings.Contains(txt, want) {
			t.Errorf("text report missing %q:\n%s", want, txt)
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Inc("shared", 1)
				r.Observe("lat", time.Duration(i))
				r.MaxGauge("peak", int64(i))
			}
		}()
	}
	wg.Wait()
	rep := r.Snapshot("")
	if rep.Counters["shared"] != 8000 {
		t.Errorf("shared counter = %d, want 8000", rep.Counters["shared"])
	}
	if rep.Histograms["lat"].Count != 8000 {
		t.Errorf("histogram count = %d, want 8000", rep.Histograms["lat"].Count)
	}
	if rep.Gauges["peak"] != 999 {
		t.Errorf("peak gauge = %d, want 999", rep.Gauges["peak"])
	}
}

func TestReset(t *testing.T) {
	r := New()
	r.Inc("c", 1)
	done := r.StartPhase("p")
	done()
	r.Reset()
	rep := r.Snapshot("")
	if len(rep.Counters) != 0 || len(rep.Phases) != 0 {
		t.Errorf("reset registry still holds data: %+v", rep)
	}
}
