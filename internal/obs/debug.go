package obs

// The -debug-addr surface: a small HTTP server exposing the live run —
// net/http/pprof for profiles, /vitals for a JSON snapshot of the
// registry plus the bus's live view, and /events for a Server-Sent
// Events stream of the bus. This is exactly the observation surface a
// long-running verification daemon (tmcheckd, see ROADMAP) will mount
// per job, so it lives here rather than in cmd/tmcheck.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Vitals is the /vitals response: the live in-flight view and the full
// registry snapshot at request time.
type Vitals struct {
	Schema string       `json:"schema"`
	Live   LiveSnapshot `json:"live"`
	Report Report       `json:"report"`
}

// VitalsSchema identifies the /vitals JSON layout.
const VitalsSchema = "tmcheck/vitals/v1"

// DebugServer is a running debug HTTP server.
type DebugServer struct {
	// Addr is the bound address (with the real port when ":0" was asked).
	Addr string

	srv *http.Server
	ln  net.Listener
}

// StartDebugServer binds addr (e.g. "localhost:7077" or ":0") and
// serves the debug surface for the given bus and registry in a
// background goroutine.
func StartDebugServer(addr string, bus *Bus, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug server: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "tmcheck debug surface\n\n"+
			"  /vitals        live JSON snapshot (registry + in-flight run)\n"+
			"  /events        Server-Sent Events stream of the telemetry bus\n"+
			"  /debug/pprof/  Go profiling endpoints\n")
	})
	mux.HandleFunc("/vitals", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(Vitals{Schema: VitalsSchema, Live: bus.Live(), Report: reg.Snapshot("")})
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		serveSSE(w, r, bus)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &DebugServer{Addr: ln.Addr().String(), srv: &http.Server{Handler: mux}, ln: ln}
	go s.srv.Serve(ln)
	return s, nil
}

// Close stops accepting connections and closes the listener.
func (s *DebugServer) Close() error { return s.srv.Close() }

// serveSSE streams bus events as Server-Sent Events: the flight
// recorder's recent history first (so a late subscriber sees context),
// then live events until the client disconnects.
func serveSSE(w http.ResponseWriter, r *http.Request, bus *Bus) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	sub := bus.Subscribe(256)
	defer bus.Unsubscribe(sub)

	write := func(e Event) bool {
		b, err := json.Marshal(e)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	seen := uint64(0)
	for _, e := range bus.Recent(64) {
		if !write(e) {
			return
		}
		seen = e.Seq
	}
	// Heartbeat comments keep idle connections alive through proxies.
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		case e, ok := <-sub.C:
			if !ok {
				return
			}
			if e.Seq <= seen {
				continue // already replayed from the flight recorder
			}
			if !write(e) {
				return
			}
		}
	}
}
