// Package obs is the zero-dependency instrumentation layer of the
// checker pipeline: counters, gauges, duration timers, latency
// histograms, and span-style phases with nesting, collected in a
// Registry that renders both a human-readable text report and
// deterministic JSON.
//
// The pipeline packages (explore, spec, automata, safety, liveness,
// runtime) record into the process-wide default registry under dotted
// names, e.g. "explore.dstm.states" or "safety.tl2.op.pairs". Counter
// and gauge values are deterministic for a deterministic computation;
// timers and histograms carry wall-clock measurements and naturally
// vary between runs. cmd/tmcheck surfaces the registry through the
// global -stats and -stats-json flags.
//
// All operations are safe for concurrent use and cheap enough to stay
// always-on: hot loops record aggregated totals once rather than
// incrementing per step. Disabling the registry turns every record
// operation into an immediate return.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Timer accumulates durations under one name.
type Timer struct {
	// Count is the number of recorded durations.
	Count int64
	// Total is their sum.
	Total time.Duration
}

// histBounds are the upper bounds of the latency histogram buckets, in
// nanoseconds; a final implicit +Inf bucket catches the rest.
var histBounds = []int64{
	1_000,       // 1µs
	4_000,       // 4µs
	16_000,      // 16µs
	64_000,      // 64µs
	256_000,     // 256µs
	1_000_000,   // 1ms
	4_000_000,   // 4ms
	16_000_000,  // 16ms
	64_000_000,  // 64ms
	256_000_000, // 256ms
	1_000_000_000,
}

// Hist is a fixed-bucket latency histogram.
type Hist struct {
	// Count and Total mirror Timer over the observed durations.
	Count int64
	Total time.Duration
	// BucketCounts[i] counts observations ≤ histBounds[i]; the last
	// entry is the +Inf bucket.
	BucketCounts []int64
}

// Span is one phase of a run: a named interval with nested children.
type Span struct {
	Name     string
	Elapsed  time.Duration
	Children []*Span

	start time.Time
}

// Registry collects all instruments of one run.
type Registry struct {
	enabled atomic.Bool

	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]int64
	timers   map[string]*Timer
	hists    map[string]*Hist
	roots    []*Span
	stack    []*Span
}

// New returns an enabled, empty registry.
func New() *Registry {
	r := &Registry{}
	r.enabled.Store(true)
	r.init()
	return r
}

func (r *Registry) init() {
	r.counters = map[string]int64{}
	r.gauges = map[string]int64{}
	r.timers = map[string]*Timer{}
	r.hists = map[string]*Hist{}
	r.roots = nil
	r.stack = nil
}

// SetEnabled switches recording on or off. While off, every record
// operation returns immediately.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry records.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Reset drops everything recorded so far.
func (r *Registry) Reset() {
	r.mu.Lock()
	r.init()
	r.mu.Unlock()
}

// Inc adds delta to the named counter.
func (r *Registry) Inc(name string, delta int64) {
	if !r.Enabled() {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// SetGauge sets the named gauge to v (last write wins).
func (r *Registry) SetGauge(name string, v int64) {
	if !r.Enabled() {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// MaxGauge raises the named gauge to v if v exceeds its current value.
func (r *Registry) MaxGauge(name string, v int64) {
	if !r.Enabled() {
		return
	}
	r.mu.Lock()
	if cur, ok := r.gauges[name]; !ok || v > cur {
		r.gauges[name] = v
	}
	r.mu.Unlock()
}

// AddTime records one duration under the named timer.
func (r *Registry) AddTime(name string, d time.Duration) {
	if !r.Enabled() {
		return
	}
	r.mu.Lock()
	t := r.timers[name]
	if t == nil {
		t = &Timer{}
		r.timers[name] = t
	}
	t.Count++
	t.Total += d
	r.mu.Unlock()
}

// Observe records one duration into the named latency histogram.
func (r *Registry) Observe(name string, d time.Duration) {
	if !r.Enabled() {
		return
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &Hist{BucketCounts: make([]int64, len(histBounds)+1)}
		r.hists[name] = h
	}
	h.Count++
	h.Total += d
	ns := d.Nanoseconds()
	idx := len(histBounds) // +Inf
	for i, b := range histBounds {
		if ns <= b {
			idx = i
			break
		}
	}
	h.BucketCounts[idx]++
	r.mu.Unlock()
}

// StartPhase opens a named phase nested under the currently open one
// (if any) and returns the function that closes it. Phases are meant
// for the single-threaded pipeline spine; concurrent workers should
// record counters and histograms instead.
func (r *Registry) StartPhase(name string) func() {
	if !r.Enabled() {
		return func() {}
	}
	s := &Span{Name: name, start: time.Now()}
	r.mu.Lock()
	if len(r.stack) > 0 {
		p := r.stack[len(r.stack)-1]
		p.Children = append(p.Children, s)
	} else {
		r.roots = append(r.roots, s)
	}
	r.stack = append(r.stack, s)
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		s.Elapsed = time.Since(s.start)
		// Pop down to and including s, tolerating out-of-order closes.
		for i := len(r.stack) - 1; i >= 0; i-- {
			if r.stack[i] == s {
				r.stack = r.stack[:i]
				break
			}
		}
		r.mu.Unlock()
	}
}

// std is the process-wide default registry the pipeline records into.
var std = New()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// Enabled reports whether the default registry records.
func Enabled() bool { return std.Enabled() }

// Inc adds delta to a counter of the default registry.
func Inc(name string, delta int64) { std.Inc(name, delta) }

// SetGauge sets a gauge of the default registry.
func SetGauge(name string, v int64) { std.SetGauge(name, v) }

// MaxGauge raises a gauge of the default registry.
func MaxGauge(name string, v int64) { std.MaxGauge(name, v) }

// AddTime records a duration under a timer of the default registry.
func AddTime(name string, d time.Duration) { std.AddTime(name, d) }

// Observe records a duration into a histogram of the default registry.
func Observe(name string, d time.Duration) { std.Observe(name, d) }

// Phase opens a phase on the default registry; call the returned
// function to close it. With the event bus enabled the phase is
// mirrored as EvPhaseStart/EvPhaseEnd events, which the -trace writer
// renders as nested spans on the pipeline track.
func Phase(name string) func() {
	done := std.StartPhase(name)
	if !events.Enabled() {
		return done
	}
	events.Emit(Event{Kind: EvPhaseStart, Name: name})
	start := time.Now()
	return func() {
		done()
		events.Emit(Event{Kind: EvPhaseEnd, Name: name, DurNS: time.Since(start).Nanoseconds()})
	}
}
