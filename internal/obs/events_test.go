package obs

import (
	"strings"
	"testing"
	"time"
)

// TestEventSinkDisabledZeroAlloc is the fast-path contract: with the
// bus disabled (the default — no telemetry flag set), Emit must not
// allocate, so the engines can call it unconditionally from hot loops.
func TestEventSinkDisabledZeroAlloc(t *testing.T) {
	b := NewBus(16)
	if b.Enabled() {
		t.Fatal("fresh bus should start disabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		b.Emit(Event{Kind: EvLevelDone, Name: "dstm:op", Level: 3, States: 1234, Frontier: 56, DurNS: 1000})
	})
	if allocs != 0 {
		t.Errorf("disabled Emit allocates %.1f/op, want 0", allocs)
	}
	// The package-level helpers ride the same path.
	if EventsEnabled() {
		t.Fatal("process-wide bus unexpectedly enabled in tests")
	}
	allocs = testing.AllocsPerRun(1000, func() {
		Emit(Event{Kind: EvProgress, Name: "space.scan", States: 99})
	})
	if allocs != 0 {
		t.Errorf("disabled package Emit allocates %.1f/op, want 0", allocs)
	}
}

func TestDisabledBusRecordsNothing(t *testing.T) {
	b := NewBus(8)
	b.Emit(Event{Kind: EvRunStart, Name: "x"})
	if got := b.Recent(10); len(got) != 0 {
		t.Errorf("disabled bus recorded %d events", len(got))
	}
	if lv := b.Live(); lv.Events != 0 {
		t.Errorf("disabled bus live view counts %d events", lv.Events)
	}
}

func TestBusRingKeepsMostRecent(t *testing.T) {
	b := NewBus(4)
	b.SetEnabled(true)
	for i := 0; i < 6; i++ {
		b.Emit(Event{Kind: EvProgress, States: int64(i + 1)})
	}
	got := b.Recent(10)
	if len(got) != 4 {
		t.Fatalf("Recent returned %d events, want ring size 4", len(got))
	}
	for i, e := range got {
		if want := uint64(i + 3); e.Seq != want {
			t.Errorf("event %d: seq %d, want %d (oldest-first)", i, e.Seq, want)
		}
	}
	if got := b.Recent(2); len(got) != 2 || got[1].Seq != 6 {
		t.Errorf("Recent(2) = %v, want the last two", got)
	}
}

func TestBusSubscribeNonBlockingDrop(t *testing.T) {
	b := NewBus(8)
	b.SetEnabled(true)
	sub := b.Subscribe(1)
	for i := 0; i < 3; i++ {
		b.Emit(Event{Kind: EvProgress, States: int64(i)})
	}
	if sub.Dropped() != 2 {
		t.Errorf("sub dropped %d, want 2 (capacity 1, 3 events)", sub.Dropped())
	}
	if b.Dropped() != 2 {
		t.Errorf("bus dropped %d, want 2", b.Dropped())
	}
	e := <-sub.C
	if e.Seq != 1 {
		t.Errorf("delivered seq %d, want the first event", e.Seq)
	}
	b.Unsubscribe(sub)
	if _, ok := <-sub.C; ok {
		t.Error("channel should be closed after Unsubscribe")
	}
	// Emitting after Unsubscribe must not panic or count drops.
	before := b.Dropped()
	b.Emit(Event{Kind: EvProgress})
	if b.Dropped() != before {
		t.Error("removed subscriber still counted a drop")
	}
}

func TestFlightRecorderGatedOnLimit(t *testing.T) {
	b := NewBus(8)
	b.SetEnabled(true)
	b.Emit(Event{Kind: EvLevelDone, States: 10})
	if evs, _, limited := b.Flight(8); limited || evs != nil {
		t.Errorf("flight before any limit: limited=%v evs=%v", limited, evs)
	}
	b.Emit(Event{Kind: EvLimitHit, Detail: "states: budget exceeded"})
	evs, _, limited := b.Flight(8)
	if !limited || len(evs) != 2 {
		t.Fatalf("flight after limit: limited=%v, %d events, want true/2", limited, len(evs))
	}
	if evs[len(evs)-1].Kind != EvLimitHit {
		t.Errorf("last flight event is %v, want limit_hit", evs[len(evs)-1].Kind)
	}
	b.Reset()
	if b.SawLimit() {
		t.Error("Reset should clear the limit marker")
	}
	if got := b.Recent(8); len(got) != 0 {
		t.Errorf("Reset left %d events in the ring", len(got))
	}
}

func TestPanicEventTriggersFlight(t *testing.T) {
	b := NewBus(8)
	b.SetEnabled(true)
	b.Emit(Event{Kind: EvPanicRecovered, Detail: "boom"})
	if !b.SawLimit() {
		t.Error("panic_recovered should arm the flight recorder")
	}
}

func TestLiveSnapshotFolding(t *testing.T) {
	b := NewBus(16)
	b.SetEnabled(true)
	b.Emit(Event{Kind: EvRunStart, Name: "table2"})
	b.Emit(Event{Kind: EvCheckStart, Name: "otf:dstm:op"})
	b.Emit(Event{Kind: EvLevelDone, Name: "otf:dstm:op", Level: 7, States: 500, Frontier: 80, HeapBytes: 1 << 20})
	lv := b.Live()
	if lv.Run != "table2" || lv.Check != "otf:dstm:op" || lv.Level != 7 ||
		lv.States != 500 || lv.Frontier != 80 || lv.HeapBytes != 1<<20 {
		t.Errorf("live snapshot wrong: %+v", lv)
	}
	if lv.Events != 3 || lv.StartNS == 0 || lv.UpdatedNS < lv.StartNS {
		t.Errorf("live bookkeeping wrong: %+v", lv)
	}
	b.Emit(Event{Kind: EvProgress, Name: "fuzz", States: 900})
	if lv := b.Live(); lv.States != 900 {
		t.Errorf("progress did not advance states: %+v", lv)
	}
	// A fresh run resets the per-run fields.
	b.Emit(Event{Kind: EvRunStart, Name: "table3"})
	if lv := b.Live(); lv.Run != "table3" || lv.Check != "" || lv.States != 0 {
		t.Errorf("run start did not reset: %+v", lv)
	}
}

func TestEventKindJSONNames(t *testing.T) {
	for k := EvRunStart; k <= EvPanicRecovered; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
		j, err := k.MarshalJSON()
		if err != nil || string(j) != `"`+s+`"` {
			t.Errorf("kind %v marshals to %s (err %v)", k, j, err)
		}
	}
}

func TestSampledHeap(t *testing.T) {
	if h := SampledHeap(); h == 0 {
		t.Error("SampledHeap returned 0")
	}
	// Within the refresh window the cached value is reused.
	a := SampledHeap()
	b := SampledHeap()
	if a != b {
		t.Errorf("back-to-back samples differ: %d vs %d", a, b)
	}
}

func TestFormatEvents(t *testing.T) {
	base := time.Now().UnixNano()
	text := FormatEvents([]Event{
		{Kind: EvLevelDone, Name: "dstm", Level: 2, States: 100, Frontier: 10,
			HeapBytes: 2 << 20, DurNS: int64(3 * time.Millisecond), TimeNS: base},
		{Kind: EvLimitHit, Detail: "states: budget exceeded", TimeNS: base + int64(time.Second)},
	})
	for _, want := range []string{"level_done", "dstm", "states=100", "limit_hit", "budget exceeded", "+1s"} {
		if !strings.Contains(text, want) {
			t.Errorf("FormatEvents output misses %q:\n%s", want, text)
		}
	}
	if FormatEvents(nil) != "" {
		t.Error("FormatEvents(nil) should be empty")
	}
}

func TestGroupThousandsAndRate(t *testing.T) {
	cases := map[int64]string{0: "0", 999: "999", 1000: "1,000", 1234567: "1,234,567", -4321: "-4,321"}
	for n, want := range cases {
		if got := groupThousands(n); got != want {
			t.Errorf("groupThousands(%d) = %q, want %q", n, got, want)
		}
	}
	if got := formatRate(850); got != "850" {
		t.Errorf("formatRate(850) = %q", got)
	}
	if got := formatRate(12_300); got != "12.3k" {
		t.Errorf("formatRate(12300) = %q", got)
	}
	if got := formatRate(4_500_000); got != "4.5M" {
		t.Errorf("formatRate(4.5e6) = %q", got)
	}
}

func TestLevelName(t *testing.T) {
	for level, want := range map[int32]string{0: "L0", 7: "L7", 42: "L42", 1234: "L1234"} {
		if got := levelName(level); got != want {
			t.Errorf("levelName(%d) = %q, want %q", level, got, want)
		}
	}
}
