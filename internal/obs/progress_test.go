package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe bytes.Buffer for the renderer tests.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestProgressPipedWritesFinalLine(t *testing.T) {
	bus := NewBus(16)
	bus.SetEnabled(true)
	var out syncBuffer
	p := StartProgress(&out, bus)
	if p.tty {
		t.Fatal("a plain buffer must not be detected as a TTY")
	}
	bus.Emit(Event{Kind: EvRunStart, Name: "table2"})
	bus.Emit(Event{Kind: EvLevelDone, Name: "otf:dstm:op", Level: 5, States: 12345, HeapBytes: 3 << 20})
	p.Stop()
	got := out.String()
	for _, want := range []string{"table2", "otf:dstm:op", "level 5", "12,345 states", "heap 3.0MiB"} {
		if !strings.Contains(got, want) {
			t.Errorf("final status line misses %q:\n%q", want, got)
		}
	}
	if strings.Contains(got, "\r") {
		t.Errorf("piped output contains carriage returns:\n%q", got)
	}
}

func TestProgressSilentWithoutEvents(t *testing.T) {
	bus := NewBus(16)
	bus.SetEnabled(true)
	var out syncBuffer
	p := StartProgress(&out, bus)
	time.Sleep(20 * time.Millisecond)
	p.Stop()
	if got := out.String(); got != "" {
		t.Errorf("renderer wrote %q with no events", got)
	}
}

func TestProgressFormatRateAndDrops(t *testing.T) {
	p := &Progress{rate: 12_500}
	lv := LiveSnapshot{Run: "table3", Check: "dstm+aggressive", States: 1000,
		StartNS: 1, UpdatedNS: 1 + int64(2*time.Second), Dropped: 4}
	line := p.format(lv)
	for _, want := range []string{"table3", "dstm+aggressive", "1,000 states", "12.5k st/s", "2s", "4 dropped"} {
		if !strings.Contains(line, want) {
			t.Errorf("line misses %q: %q", want, line)
		}
	}
}
