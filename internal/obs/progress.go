package obs

// The -progress renderer: a throttled live status line driven by the
// bus's live snapshot (no subscription — reading the snapshot on a
// ticker can never drop events or stall the publisher). On a TTY it
// rewrites a single line in place; piped, it prints a plain line at a
// slower cadence so logs stay readable.

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"time"
)

// Progress renders live run status from a Bus until stopped.
type Progress struct {
	w        io.Writer
	bus      *Bus
	tty      bool
	interval time.Duration

	stop chan struct{}
	done chan struct{}

	mu         sync.Mutex
	lastLine   string
	prevStates int64
	prevNS     int64
	rate       float64
}

// StartProgress launches a renderer writing to w (TTY-detected when w
// is an *os.File): every 100ms on a TTY, every 2s piped. Call Stop to
// finish; on a TTY the status line is cleared, piped the last status is
// left as a final line.
func StartProgress(w io.Writer, bus *Bus) *Progress {
	p := &Progress{w: w, bus: bus, stop: make(chan struct{}), done: make(chan struct{})}
	if f, ok := w.(*os.File); ok {
		if fi, err := f.Stat(); err == nil && fi.Mode()&os.ModeCharDevice != 0 {
			p.tty = true
		}
	}
	p.interval = 2 * time.Second
	if p.tty {
		p.interval = 100 * time.Millisecond
	}
	go p.loop()
	return p
}

func (p *Progress) loop() {
	defer close(p.done)
	tick := time.NewTicker(p.interval)
	defer tick.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-tick.C:
			p.render(false)
		}
	}
}

// Stop halts the renderer and flushes or clears the status line: on a
// TTY the in-place line is erased; piped, one final complete status
// line is left in the log (even when the run ended between ticks).
func (p *Progress) Stop() {
	close(p.stop)
	<-p.done
	lv := p.bus.Live()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.tty {
		if p.lastLine != "" {
			fmt.Fprint(p.w, "\r\x1b[K")
		}
	} else if lv.Events > 0 {
		if line := p.format(lv); line != p.lastLine {
			fmt.Fprintln(p.w, line)
		}
	}
	p.lastLine = ""
}

// render formats the current live snapshot and writes it when changed.
func (p *Progress) render(force bool) {
	lv := p.bus.Live()
	if lv.Events == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	// states/sec over the window since the previous render.
	if p.prevNS != 0 && lv.UpdatedNS > p.prevNS && lv.States >= p.prevStates {
		dt := float64(lv.UpdatedNS-p.prevNS) / float64(time.Second)
		if dt > 0.01 {
			p.rate = float64(lv.States-p.prevStates) / dt
		}
	}
	p.prevStates, p.prevNS = lv.States, lv.UpdatedNS

	line := p.format(lv)
	if line == p.lastLine && !force {
		return
	}
	p.lastLine = line
	if p.tty {
		fmt.Fprintf(p.w, "\r\x1b[K%s", line)
	} else {
		fmt.Fprintln(p.w, line)
	}
}

// format renders one status line, e.g.
//
//	table2 · tl2:op · level 14 · 35,821 states · 120k st/s · heap 89.2MiB · 2.1s
func (p *Progress) format(lv LiveSnapshot) string {
	line := lv.Run
	if line == "" {
		line = "run"
	}
	if lv.Check != "" {
		line += " · " + lv.Check
	}
	if lv.Level > 0 {
		line += " · level " + strconv.Itoa(int(lv.Level))
	}
	line += " · " + groupThousands(lv.States) + " states"
	if p.rate >= 1 {
		line += " · " + formatRate(p.rate) + " st/s"
	}
	if lv.HeapBytes > 0 {
		line += " · heap " + formatEventBytes(lv.HeapBytes)
	}
	if lv.StartNS > 0 && lv.UpdatedNS >= lv.StartNS {
		line += " · " + time.Duration(lv.UpdatedNS-lv.StartNS).Round(100*time.Millisecond).String()
	}
	if lv.Dropped > 0 {
		line += fmt.Sprintf(" · %d dropped", lv.Dropped)
	}
	return line
}

// groupThousands renders 1234567 as "1,234,567".
func groupThousands(n int64) string {
	s := strconv.FormatInt(n, 10)
	neg := false
	if len(s) > 0 && s[0] == '-' {
		neg, s = true, s[1:]
	}
	if len(s) <= 3 {
		if neg {
			return "-" + s
		}
		return s
	}
	var out []byte
	lead := len(s) % 3
	if lead > 0 {
		out = append(out, s[:lead]...)
	}
	for i := lead; i < len(s); i += 3 {
		if len(out) > 0 {
			out = append(out, ',')
		}
		out = append(out, s[i:i+3]...)
	}
	if neg {
		return "-" + string(out)
	}
	return string(out)
}

// formatRate renders a per-second rate compactly: 850, 12.3k, 4.5M.
func formatRate(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.1fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk", r/1e3)
	}
	return fmt.Sprintf("%.0f", r)
}
