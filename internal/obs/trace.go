package obs

// The -trace writer: converts the bus's event stream into Chrome
// trace-event JSON ({"traceEvents": [...]}) loadable in Perfetto or
// chrome://tracing.
//
// Track layout:
//
//   - tid 1 ("pipeline") carries the run and the registry's phase spans
//     (B/E events — the phase stack is single-threaded, so they nest);
//   - each check and each explored system gets its own named track with
//     one complete (X) span per check and per BFS level, the level spans
//     annotated with cumulative states, frontier and heap;
//   - parallel workers appear on tracks 1000+w with one X span per
//     level expansion;
//   - violations, limits, and recovered panics are instant (i) events;
//   - cumulative states are also emitted as a counter (C) track, so
//     Perfetto plots the state-growth curve.
//
// The writer consumes its subscription on its own goroutine and
// streams; a dropped event (slow disk) loses that span but never stalls
// the engines. Close unsubscribes, drains, and writes the footer.

import (
	"encoding/json"
	"io"
	"sync"
)

// traceEvent is one Chrome trace-event object.
type traceEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	TS    int64          `json:"ts"` // microseconds
	Dur   int64          `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int64          `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// TraceWriter streams bus events into Chrome trace-event JSON.
type TraceWriter struct {
	w   io.Writer
	bus *Bus
	sub *Sub

	mu      sync.Mutex
	err     error
	baseNS  int64
	wrote   bool
	tids    map[string]int64
	nextTid int64
	done    chan struct{}
}

const (
	tracePid      = 1
	traceSpineTid = 1
	workerTidBase = 1000
)

// StartTrace subscribes to the bus and starts streaming trace JSON to
// w. Call Close when the run ends.
func StartTrace(w io.Writer, bus *Bus) *TraceWriter {
	t := &TraceWriter{
		w: w, bus: bus, sub: bus.Subscribe(4096),
		tids: map[string]int64{}, nextTid: 10,
		done: make(chan struct{}),
	}
	t.head()
	go t.loop()
	return t
}

// head writes the JSON prologue and the track-naming metadata.
func (t *TraceWriter) head() {
	t.write([]byte(`{"traceEvents":[` + "\n"))
	t.event(traceEvent{Name: "thread_name", Ph: "M", Pid: tracePid, Tid: traceSpineTid,
		Args: map[string]any{"name": "pipeline"}})
}

func (t *TraceWriter) loop() {
	defer close(t.done)
	for e := range t.sub.C {
		t.consume(e)
	}
}

// Close stops the writer: it unsubscribes (which closes the stream),
// drains the remaining events, and writes the footer. The first write
// error, if any, is returned.
func (t *TraceWriter) Close() error {
	t.bus.Unsubscribe(t.sub)
	<-t.done
	if n := t.sub.Dropped(); n > 0 {
		t.event(traceEvent{Name: "events dropped", Ph: "i", Pid: tracePid,
			Tid: traceSpineTid, Scope: "g", Args: map[string]any{"dropped": n}})
	}
	t.write([]byte("\n]}\n"))
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// ts converts an event wall-clock to microseconds since the first event.
func (t *TraceWriter) ts(ns int64) int64 {
	t.mu.Lock()
	if t.baseNS == 0 {
		t.baseNS = ns
	}
	base := t.baseNS
	t.mu.Unlock()
	us := (ns - base) / 1000
	if us < 0 {
		us = 0
	}
	return us
}

// tidFor assigns (and names, on first sight) a stable track for a check
// or system name.
func (t *TraceWriter) tidFor(name string) int64 {
	t.mu.Lock()
	tid, ok := t.tids[name]
	if !ok {
		tid = t.nextTid
		t.nextTid++
		t.tids[name] = tid
	}
	t.mu.Unlock()
	if !ok {
		t.event(traceEvent{Name: "thread_name", Ph: "M", Pid: tracePid, Tid: tid,
			Args: map[string]any{"name": name}})
	}
	return tid
}

// consume converts one bus event into trace events.
func (t *TraceWriter) consume(e Event) {
	ts := t.ts(e.TimeNS)
	switch e.Kind {
	case EvRunStart:
		t.event(traceEvent{Name: "process_name", Ph: "M", Pid: tracePid, Tid: traceSpineTid,
			Args: map[string]any{"name": "tmcheck " + e.Name}})
		t.event(traceEvent{Name: "run:" + e.Name, Ph: "B", TS: ts, Pid: tracePid, Tid: traceSpineTid})
	case EvRunDone:
		t.event(traceEvent{Name: "run:" + e.Name, Ph: "E", TS: ts, Pid: tracePid, Tid: traceSpineTid})
	case EvPhaseStart:
		t.event(traceEvent{Name: e.Name, Ph: "B", TS: ts, Pid: tracePid, Tid: traceSpineTid})
	case EvPhaseEnd:
		t.event(traceEvent{Name: e.Name, Ph: "E", TS: ts, Pid: tracePid, Tid: traceSpineTid})
	case EvCheckStart:
		t.event(traceEvent{Name: e.Name, Ph: "B", TS: ts, Pid: tracePid, Tid: t.tidFor(e.Name)})
	case EvCheckDone:
		args := map[string]any{}
		if e.Detail != "" {
			args["verdict"] = e.Detail
		}
		if e.States > 0 {
			args["states"] = e.States
		}
		t.event(traceEvent{Name: e.Name, Ph: "E", TS: ts, Pid: tracePid, Tid: t.tidFor(e.Name), Args: args})
	case EvLevelDone:
		dur := e.DurNS / 1000
		start := ts - dur
		if start < 0 {
			start, dur = 0, ts
		}
		tid := t.tidFor(e.Name)
		args := map[string]any{"states": e.States, "frontier": e.Frontier}
		if e.HeapBytes > 0 {
			args["heap_bytes"] = e.HeapBytes
		}
		t.event(traceEvent{Name: levelName(e.Level), Ph: "X", TS: start, Dur: dur,
			Pid: tracePid, Tid: tid, Args: args})
		t.event(traceEvent{Name: "states:" + e.Name, Ph: "C", TS: ts, Pid: tracePid, Tid: tid,
			Args: map[string]any{"states": e.States}})
	case EvProgress:
		if e.States > 0 {
			t.event(traceEvent{Name: "states:" + e.Name, Ph: "C", TS: ts, Pid: tracePid,
				Tid: t.tidFor(e.Name), Args: map[string]any{"states": e.States}})
		}
	case EvWorkerSpan:
		dur := e.DurNS / 1000
		start := ts - dur
		if start < 0 {
			start, dur = 0, ts
		}
		name := e.Name
		if name == "" {
			name = "expand"
		}
		t.event(traceEvent{Name: name, Ph: "X", TS: start, Dur: dur, Pid: tracePid,
			Tid: workerTidBase + int64(e.Worker), Args: map[string]any{"items": e.States}})
	case EvViolation:
		t.event(traceEvent{Name: "violation:" + e.Name, Ph: "i", TS: ts, Pid: tracePid,
			Tid: t.tidFor(e.Name), Scope: "g", Args: map[string]any{"detail": e.Detail}})
	case EvLimitHit:
		t.event(traceEvent{Name: "limit", Ph: "i", TS: ts, Pid: tracePid, Tid: traceSpineTid,
			Scope: "g", Args: map[string]any{"detail": e.Detail, "states": e.States}})
	case EvPanicRecovered:
		t.event(traceEvent{Name: "panic recovered", Ph: "i", TS: ts, Pid: tracePid, Tid: traceSpineTid,
			Scope: "g", Args: map[string]any{"detail": e.Detail}})
	}
}

// levelName renders "L<level>" without fmt on the streaming path.
func levelName(level int32) string {
	buf := [12]byte{'L'}
	n := 1
	if level == 0 {
		return "L0"
	}
	var digits [10]byte
	d := 0
	for v := level; v > 0; v /= 10 {
		digits[d] = byte('0' + v%10)
		d++
	}
	for d > 0 {
		d--
		buf[n] = digits[d]
		n++
	}
	return string(buf[:n])
}

// event marshals and writes one trace event, comma-separating after the
// first.
func (t *TraceWriter) event(e traceEvent) {
	b, err := json.Marshal(e)
	if err != nil {
		t.fail(err)
		return
	}
	t.mu.Lock()
	pre := []byte(",\n")
	if !t.wrote {
		pre = nil
		t.wrote = true
	}
	t.mu.Unlock()
	if pre != nil {
		t.write(pre)
	}
	t.write(b)
}

func (t *TraceWriter) write(b []byte) {
	if _, err := t.w.Write(b); err != nil {
		t.fail(err)
	}
}

func (t *TraceWriter) fail(err error) {
	t.mu.Lock()
	if t.err == nil {
		t.err = err
	}
	t.mu.Unlock()
}
