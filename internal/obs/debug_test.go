package obs

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

func startTestServer(t *testing.T) (*DebugServer, *Bus, *Registry) {
	t.Helper()
	bus := NewBus(64)
	bus.SetEnabled(true)
	reg := New()
	reg.SetEnabled(true)
	srv, err := StartDebugServer("127.0.0.1:0", bus, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, bus, reg
}

func TestDebugServerVitals(t *testing.T) {
	srv, bus, reg := startTestServer(t)
	reg.Inc("guard.mem.samples", 3)
	bus.Emit(Event{Kind: EvRunStart, Name: "table2"})
	bus.Emit(Event{Kind: EvLevelDone, Name: "dstm:op", Level: 4, States: 77})

	resp, err := http.Get("http://" + srv.Addr + "/vitals")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /vitals: %s", resp.Status)
	}
	var v Vitals
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("/vitals is not JSON: %v", err)
	}
	if v.Schema != VitalsSchema {
		t.Errorf("schema %q, want %q", v.Schema, VitalsSchema)
	}
	if v.Live.Run != "table2" || v.Live.States != 77 || v.Live.Level != 4 {
		t.Errorf("live view wrong: %+v", v.Live)
	}
	if v.Report.Schema != Schema || v.Report.Counters["guard.mem.samples"] != 3 {
		t.Errorf("registry snapshot wrong: %+v", v.Report)
	}
}

func TestDebugServerIndexAndPprof(t *testing.T) {
	srv, _, _ := startTestServer(t)
	for path, want := range map[string]string{
		"/":                         "/vitals",
		"/debug/pprof/":             "profiles",
		"/debug/pprof/heap?debug=1": "heap",
	} {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body := make([]byte, 4096)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %s", path, resp.Status)
		}
		if !strings.Contains(string(body[:n]), want) {
			t.Errorf("GET %s body misses %q", path, want)
		}
	}
	resp, err := http.Get("http://" + srv.Addr + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope: %s, want 404", resp.Status)
	}
}

func TestDebugServerSSEReplaysAndStreams(t *testing.T) {
	srv, bus, _ := startTestServer(t)
	bus.Emit(Event{Kind: EvRunStart, Name: "table3"})
	bus.Emit(Event{Kind: EvLevelDone, Name: "dstm+aggressive", Level: 1, States: 8})

	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get("http://" + srv.Addr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("content type %q", ct)
	}

	type sse struct {
		kind  string
		event Event
	}
	lines := make(chan sse, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var e Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
				continue
			}
			lines <- sse{kind: e.Kind.String(), event: e}
		}
	}()

	read := func(wantKind string) Event {
		t.Helper()
		select {
		case got := <-lines:
			if got.kind != wantKind {
				t.Fatalf("got %s event, want %s (%+v)", got.kind, wantKind, got.event)
			}
			return got.event
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for %s event", wantKind)
			return Event{}
		}
	}
	// The two pre-connection events replay from the ring...
	read("run_start")
	replayed := read("level_done")
	// ...and a live event follows without duplicating the replayed ones.
	bus.Emit(Event{Kind: EvViolation, Name: "dstm+aggressive:livelock", Detail: "lasso"})
	live := read("violation")
	if live.Seq <= replayed.Seq {
		t.Errorf("live event seq %d not after replayed %d", live.Seq, replayed.Seq)
	}
}
