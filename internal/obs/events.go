package obs

// This file is the live half of the observability layer: a structured
// event bus that the engines publish typed progress events into while a
// run is in flight. The after-the-run registry (obs.go) answers "what
// did the run do"; the bus answers "what is it doing right now" — it
// feeds the -progress renderer, the -trace Chrome-trace writer, the
// -debug-addr /events SSE stream, and the flight recorder that attaches
// the recent event history to the stats report when a check stops at a
// resource limit.
//
// The bus is built for the engines' hot paths:
//
//   - disabled (the default), Emit is one atomic load and returns — no
//     allocation, no lock (TestEventSinkDisabledZeroAlloc asserts 0
//     allocs/op);
//   - enabled, Emit writes the event into a bounded ring buffer and
//     offers it to each subscriber with a non-blocking channel send: a
//     slow consumer drops events (counted per subscriber and bus-wide)
//     but never stalls the publisher.
//
// Events carry no pointers into engine state, so publishing is safe
// from any goroutine at any time.

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind classifies a bus event.
type EventKind uint8

const (
	// EvRunStart and EvRunDone bracket one CLI command (Name is the
	// subcommand).
	EvRunStart EventKind = iota
	EvRunDone
	// EvCheckStart and EvCheckDone bracket one verification check (Name
	// is "system:property"); EvCheckDone carries the verdict in Detail
	// and the check wall-clock in DurNS.
	EvCheckStart
	EvCheckDone
	// EvPhaseStart and EvPhaseEnd mirror the registry's phase spans on
	// the single-threaded pipeline spine.
	EvPhaseStart
	EvPhaseEnd
	// EvLevelDone fires at every BFS level barrier of a scan: Level is
	// the completed level, States the cumulative states interned,
	// Frontier the states discovered but not yet expanded, HeapBytes the
	// sampled Go heap, and DurNS the time since the previous barrier.
	EvLevelDone
	// EvProgress is a periodic heartbeat from engines without level
	// structure (the sequential product search, spec enumeration,
	// tmfuzz): States is the cumulative unit count.
	EvProgress
	// EvWorkerSpan reports one parallel worker's activity window: Worker
	// is the worker index, States the items it processed, DurNS the span.
	EvWorkerSpan
	// EvViolation fires when a check finds a counterexample or violating
	// lasso (Detail describes it).
	EvViolation
	// EvLimitHit fires when a guard trips: Detail carries the limit
	// kind and message, States the states reached.
	EvLimitHit
	// EvPanicRecovered fires when a panic in user-supplied TM code is
	// isolated; Detail carries the recovered value.
	EvPanicRecovered
)

// String names the kind as rendered in JSON, traces and SSE streams.
func (k EventKind) String() string {
	switch k {
	case EvRunStart:
		return "run_start"
	case EvRunDone:
		return "run_done"
	case EvCheckStart:
		return "check_start"
	case EvCheckDone:
		return "check_done"
	case EvPhaseStart:
		return "phase_start"
	case EvPhaseEnd:
		return "phase_end"
	case EvLevelDone:
		return "level_done"
	case EvProgress:
		return "progress"
	case EvWorkerSpan:
		return "worker_span"
	case EvViolation:
		return "violation"
	case EvLimitHit:
		return "limit_hit"
	case EvPanicRecovered:
		return "panic_recovered"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON renders the kind as its string name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON parses a kind from its string name, so consumers of the
// /events SSE stream and of a report's flight dump can round-trip
// events through encoding/json.
func (k *EventKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i := EvRunStart; i <= EvPanicRecovered; i++ {
		if i.String() == s {
			*k = i
			return nil
		}
	}
	return fmt.Errorf("unknown event kind %q", s)
}

// Event is one bus event: a flat value struct (no pointers, no
// interfaces) so publishing allocates nothing and snapshots are plain
// copies. Unused fields stay zero and are omitted from JSON.
type Event struct {
	// Seq is the bus-assigned publication number (1-based).
	Seq uint64 `json:"seq"`
	// TimeNS is the wall-clock publication time in Unix nanoseconds.
	// For span-shaped events (EvLevelDone, EvWorkerSpan, EvPhaseEnd,
	// EvCheckDone) it marks the END of the span and DurNS its length.
	TimeNS int64     `json:"time_ns"`
	Kind   EventKind `json:"kind"`
	// Name identifies what the event is about: the subcommand, the
	// system, "system:property", or the phase name.
	Name      string `json:"name,omitempty"`
	Level     int32  `json:"level,omitempty"`
	Worker    int32  `json:"worker,omitempty"`
	States    int64  `json:"states,omitempty"`
	Frontier  int64  `json:"frontier,omitempty"`
	HeapBytes uint64 `json:"heap_bytes,omitempty"`
	DurNS     int64  `json:"dur_ns,omitempty"`
	Detail    string `json:"detail,omitempty"`
}

// Sub is one bus subscription. Receive from C; events the consumer is
// too slow to take are dropped (never blocking the publisher) and
// counted. C is closed by Unsubscribe.
type Sub struct {
	C       <-chan Event
	ch      chan Event
	dropped atomic.Uint64
}

// Dropped returns the number of events dropped on this subscription.
func (s *Sub) Dropped() uint64 { return s.dropped.Load() }

// LiveSnapshot is the bus's always-current view of the in-flight run,
// maintained from the event stream so /vitals and the -progress
// renderer need no subscription of their own.
type LiveSnapshot struct {
	Run       string `json:"run,omitempty"`
	Check     string `json:"check,omitempty"`
	Level     int32  `json:"level"`
	States    int64  `json:"states"`
	Frontier  int64  `json:"frontier"`
	HeapBytes uint64 `json:"heap_bytes"`
	// StartNS is the EvRunStart time; UpdatedNS the latest event time.
	StartNS   int64  `json:"start_ns"`
	UpdatedNS int64  `json:"updated_ns"`
	Events    uint64 `json:"events"`
	Dropped   uint64 `json:"dropped"`
}

// Bus is a bounded, non-blocking event sink: a ring buffer of the most
// recent events (the flight recorder) plus fan-out to subscribers.
type Bus struct {
	enabled atomic.Bool
	seq     atomic.Uint64
	dropped atomic.Uint64
	limited atomic.Bool

	mu    sync.Mutex
	ring  []Event
	count uint64 // total events written to the ring
	subs  []*Sub
	live  LiveSnapshot
}

// defaultRing is the flight-recorder depth of the process-wide bus.
const defaultRing = 512

// NewBus returns a disabled bus whose flight recorder keeps the last
// ring events (minimum 1).
func NewBus(ring int) *Bus {
	if ring < 1 {
		ring = 1
	}
	return &Bus{ring: make([]Event, ring)}
}

// events is the process-wide bus, published into by the engines and
// enabled by the CLI telemetry flags (-progress, -trace, -debug-addr).
var events = NewBus(defaultRing)

// Events returns the process-wide bus.
func Events() *Bus { return events }

// EventsEnabled reports whether the process-wide bus accepts events.
// Engines hoist this out of hot loops.
func EventsEnabled() bool { return events.Enabled() }

// Emit publishes an event on the process-wide bus.
func Emit(e Event) { events.Emit(e) }

// SetEnabled switches the bus on or off. While off, Emit is a single
// atomic load.
func (b *Bus) SetEnabled(on bool) { b.enabled.Store(on) }

// Enabled reports whether the bus accepts events.
func (b *Bus) Enabled() bool { return b.enabled.Load() }

// Dropped returns the total events dropped across all subscribers.
func (b *Bus) Dropped() uint64 { return b.dropped.Load() }

// SawLimit reports whether an EvLimitHit or EvPanicRecovered event was
// published since the last Reset — the flight recorder's dump trigger.
func (b *Bus) SawLimit() bool { return b.limited.Load() }

// Reset clears the ring, the live view, and the drop and limit markers
// (subscriptions stay). For tests and long-running servers between jobs.
func (b *Bus) Reset() {
	b.mu.Lock()
	clear(b.ring)
	b.count = 0
	b.live = LiveSnapshot{}
	b.mu.Unlock()
	b.dropped.Store(0)
	b.limited.Store(false)
}

// Emit publishes e: assigns Seq and TimeNS (when zero), records it in
// the ring, updates the live view, and offers it to every subscriber
// without blocking. Disabled, it returns immediately and allocates
// nothing.
func (b *Bus) Emit(e Event) {
	if !b.enabled.Load() {
		return
	}
	e.Seq = b.seq.Add(1)
	if e.TimeNS == 0 {
		e.TimeNS = time.Now().UnixNano()
	}
	if e.Kind == EvLimitHit || e.Kind == EvPanicRecovered {
		b.limited.Store(true)
	}
	b.mu.Lock()
	b.ring[b.count%uint64(len(b.ring))] = e
	b.count++
	b.applyLive(e)
	for _, s := range b.subs {
		select {
		case s.ch <- e:
		default:
			s.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
	b.mu.Unlock()
}

// applyLive folds one event into the live snapshot (b.mu held).
func (b *Bus) applyLive(e Event) {
	lv := &b.live
	lv.Events++
	lv.UpdatedNS = e.TimeNS
	switch e.Kind {
	case EvRunStart:
		lv.Run, lv.StartNS = e.Name, e.TimeNS
		lv.Check, lv.Level, lv.States, lv.Frontier = "", 0, 0, 0
	case EvCheckStart:
		lv.Check, lv.Level = e.Name, 0
	case EvLevelDone:
		if e.Name != "" && lv.Check == "" {
			lv.Check = e.Name
		}
		lv.Level, lv.States, lv.Frontier = e.Level, e.States, e.Frontier
		if e.HeapBytes > 0 {
			lv.HeapBytes = e.HeapBytes
		}
	case EvProgress:
		if e.Name != "" && lv.Check == "" {
			lv.Check = e.Name
		}
		if e.States > 0 {
			lv.States = e.States
		}
		if e.HeapBytes > 0 {
			lv.HeapBytes = e.HeapBytes
		}
	}
}

// Live returns the current live snapshot, with the bus-wide drop count
// filled in.
func (b *Bus) Live() LiveSnapshot {
	b.mu.Lock()
	lv := b.live
	b.mu.Unlock()
	lv.Dropped = b.dropped.Load()
	return lv
}

// Recent returns up to n of the most recent events, oldest first.
func (b *Bus) Recent(n int) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	size := uint64(len(b.ring))
	have := b.count
	if have > size {
		have = size
	}
	if uint64(n) < have {
		have = uint64(n)
	}
	out := make([]Event, 0, have)
	for i := b.count - have; i < b.count; i++ {
		out = append(out, b.ring[i%size])
	}
	return out
}

// Flight returns the flight-recorder dump — the last n events plus the
// bus-wide drop count — and whether a limit or panic event triggered it.
// Callers attach the dump to the stats report only when limited is true.
func (b *Bus) Flight(n int) (evs []Event, dropped uint64, limited bool) {
	if !b.SawLimit() {
		return nil, b.Dropped(), false
	}
	return b.Recent(n), b.Dropped(), true
}

// Subscribe registers a consumer with the given channel capacity
// (minimum 1). The bus never blocks on it: a full channel drops.
func (b *Bus) Subscribe(buf int) *Sub {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan Event, buf)
	s := &Sub{C: ch, ch: ch}
	b.mu.Lock()
	b.subs = append(b.subs, s)
	b.mu.Unlock()
	return s
}

// Unsubscribe removes the subscription and closes its channel (safe:
// sends only happen under the same lock that removes it).
func (b *Bus) Unsubscribe(s *Sub) {
	b.mu.Lock()
	for i, x := range b.subs {
		if x == s {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			close(s.ch)
			break
		}
	}
	b.mu.Unlock()
}

// heapSample caches runtime.ReadMemStats so per-level events can carry
// a heap figure without paying the full stats collection at every
// barrier: the sample refreshes at most every 50ms.
var heapSample struct {
	lastNS atomic.Int64
	bytes  atomic.Uint64
}

// SampledHeap returns the Go heap in use, sampled at most every 50ms.
func SampledHeap() uint64 {
	now := time.Now().UnixNano()
	last := heapSample.lastNS.Load()
	if last != 0 && now-last < 50*int64(time.Millisecond) {
		return heapSample.bytes.Load()
	}
	if !heapSample.lastNS.CompareAndSwap(last, now) {
		return heapSample.bytes.Load() // another goroutine is sampling
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	heapSample.bytes.Store(ms.HeapAlloc)
	return ms.HeapAlloc
}

// formatEventBytes renders a byte count with a binary suffix. It
// duplicates guard.FormatBytes because obs sits below guard in the
// import graph.
func formatEventBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// FormatEvents renders events as indented text lines for the -stats
// flight-recorder section, one event per line with a relative
// timestamp.
func FormatEvents(evs []Event) string {
	if len(evs) == 0 {
		return ""
	}
	base := evs[0].TimeNS
	var b strings.Builder
	for _, e := range evs {
		fmt.Fprintf(&b, "  +%-10s %-15s", time.Duration(e.TimeNS-base).Round(time.Microsecond), e.Kind)
		if e.Name != "" {
			fmt.Fprintf(&b, " %s", e.Name)
		}
		if e.Kind == EvLevelDone {
			fmt.Fprintf(&b, " level=%d", e.Level)
		}
		if e.States > 0 {
			fmt.Fprintf(&b, " states=%d", e.States)
		}
		if e.Frontier > 0 {
			fmt.Fprintf(&b, " frontier=%d", e.Frontier)
		}
		if e.HeapBytes > 0 {
			fmt.Fprintf(&b, " heap=%s", formatEventBytes(e.HeapBytes))
		}
		if e.DurNS > 0 {
			fmt.Fprintf(&b, " dur=%v", time.Duration(e.DurNS).Round(time.Microsecond))
		}
		if e.Detail != "" {
			fmt.Fprintf(&b, " %s", e.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
