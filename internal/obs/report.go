package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Schema identifies the JSON report layout; bump on incompatible
// changes so downstream tooling (BENCH_*.json trackers) can dispatch.
const Schema = "tmcheck/stats/v1"

// Report is the machine-readable snapshot of a registry. Counter and
// gauge values are deterministic across runs on the same inputs;
// timers, histogram totals, and phase elapsed times are wall-clock
// measurements. encoding/json marshals the maps in sorted key order,
// so the rendered bytes are stable up to the measured times.
type Report struct {
	Schema  string `json:"schema"`
	Command string `json:"command,omitempty"`

	Counters   map[string]int64           `json:"counters"`
	Gauges     map[string]int64           `json:"gauges"`
	Timers     map[string]TimerReport     `json:"timers"`
	Histograms map[string]HistogramReport `json:"histograms"`
	Phases     []PhaseReport              `json:"phases"`

	// Flight is the flight-recorder dump: the most recent telemetry bus
	// events, attached by AttachFlight only when the bus was enabled AND
	// a limit or panic event was captured — so every LIMIT(kind) cell
	// ships with its recent history, while limit-free reports stay
	// byte-identical whether telemetry ran or not.
	Flight        []Event `json:"flight,omitempty"`
	FlightDropped uint64  `json:"flight_dropped,omitempty"`
}

// AttachFlight copies the bus's flight-recorder dump (up to n events)
// into the report when a limit or panic event was captured; otherwise
// the report is left untouched.
func (rep *Report) AttachFlight(b *Bus, n int) {
	if evs, dropped, limited := b.Flight(n); limited {
		rep.Flight, rep.FlightDropped = evs, dropped
	}
}

// TimerReport is one timer's JSON form.
type TimerReport struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
}

// BucketReport is one histogram bucket: observations ≤ LeNS
// nanoseconds not counted by an earlier bucket. LeNS = -1 marks the
// +Inf bucket. Buckets with zero count are omitted.
type BucketReport struct {
	LeNS  int64 `json:"le_ns"`
	Count int64 `json:"count"`
}

// HistogramReport is one latency histogram's JSON form.
type HistogramReport struct {
	Count   int64          `json:"count"`
	TotalNS int64          `json:"total_ns"`
	Buckets []BucketReport `json:"buckets"`
}

// PhaseReport is one phase of the run with its nested children.
type PhaseReport struct {
	Name      string        `json:"name"`
	ElapsedNS int64         `json:"elapsed_ns"`
	Children  []PhaseReport `json:"children,omitempty"`
}

// Snapshot captures the registry's current contents. Phases still open
// report the time elapsed so far.
func (r *Registry) Snapshot(command string) Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := Report{
		Schema:     Schema,
		Command:    command,
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Timers:     map[string]TimerReport{},
		Histograms: map[string]HistogramReport{},
	}
	for k, v := range r.counters {
		rep.Counters[k] = v
	}
	for k, v := range r.gauges {
		rep.Gauges[k] = v
	}
	for k, t := range r.timers {
		rep.Timers[k] = TimerReport{Count: t.Count, TotalNS: t.Total.Nanoseconds()}
	}
	for k, h := range r.hists {
		hr := HistogramReport{Count: h.Count, TotalNS: h.Total.Nanoseconds()}
		for i, c := range h.BucketCounts {
			if c == 0 {
				continue
			}
			le := int64(-1)
			if i < len(histBounds) {
				le = histBounds[i]
			}
			hr.Buckets = append(hr.Buckets, BucketReport{LeNS: le, Count: c})
		}
		rep.Histograms[k] = hr
	}
	for _, s := range r.roots {
		rep.Phases = append(rep.Phases, snapshotSpan(s))
	}
	return rep
}

func snapshotSpan(s *Span) PhaseReport {
	d := s.Elapsed
	if d == 0 && !s.start.IsZero() {
		d = time.Since(s.start)
	}
	p := PhaseReport{Name: s.Name, ElapsedNS: d.Nanoseconds()}
	for _, c := range s.Children {
		p.Children = append(p.Children, snapshotSpan(c))
	}
	return p
}

// WriteJSON writes the indented JSON report for the registry.
func (r *Registry) WriteJSON(w io.Writer, command string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot(command))
}

// Text renders the human-readable report: the phase tree first, then
// counters, gauges, timers, and histograms, each section sorted by
// name.
func (r *Registry) Text() string {
	rep := r.Snapshot("")
	var b strings.Builder
	if len(rep.Phases) > 0 {
		fmt.Fprintf(&b, "phases:\n")
		for _, p := range rep.Phases {
			writePhase(&b, p, 1)
		}
	}
	writeSection(&b, "counters", rep.Counters, func(v int64) string {
		return fmt.Sprintf("%d", v)
	})
	writeSection(&b, "gauges", rep.Gauges, func(v int64) string {
		return fmt.Sprintf("%d", v)
	})
	writeSection(&b, "timers", rep.Timers, func(t TimerReport) string {
		return fmt.Sprintf("%v over %d call(s)",
			time.Duration(t.TotalNS).Round(time.Microsecond), t.Count)
	})
	writeSection(&b, "histograms", rep.Histograms, histText)
	return b.String()
}

func writePhase(b *strings.Builder, p PhaseReport, depth int) {
	fmt.Fprintf(b, "%s%-*s %v\n", strings.Repeat("  ", depth),
		46-2*depth, p.Name,
		time.Duration(p.ElapsedNS).Round(time.Microsecond))
	for _, c := range p.Children {
		writePhase(b, c, depth+1)
	}
}

func writeSection[V any](b *strings.Builder, title string, m map[string]V, render func(V) string) {
	if len(m) == 0 {
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(b, "%s:\n", title)
	for _, k := range keys {
		fmt.Fprintf(b, "  %-44s %s\n", k, render(m[k]))
	}
}

func histText(h HistogramReport) string {
	parts := make([]string, 0, len(h.Buckets)+1)
	parts = append(parts, fmt.Sprintf("%d obs, total %v",
		h.Count, time.Duration(h.TotalNS).Round(time.Microsecond)))
	for _, bk := range h.Buckets {
		le := "+Inf"
		if bk.LeNS >= 0 {
			le = time.Duration(bk.LeNS).String()
		}
		parts = append(parts, fmt.Sprintf("≤%s:%d", le, bk.Count))
	}
	return strings.Join(parts, "  ")
}
