package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// traceFile mirrors the Chrome trace-event container for unmarshalling.
type traceFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   int64          `json:"ts"`
		Dur  int64          `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int64          `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestTraceWriterProducesLoadableJSON(t *testing.T) {
	bus := NewBus(64)
	bus.SetEnabled(true)
	var buf bytes.Buffer
	tw := StartTrace(&buf, bus)

	base := time.Now().UnixNano()
	ms := int64(time.Millisecond)
	bus.Emit(Event{Kind: EvRunStart, Name: "table2", TimeNS: base})
	bus.Emit(Event{Kind: EvPhaseStart, Name: "table2", TimeNS: base + ms})
	bus.Emit(Event{Kind: EvCheckStart, Name: "otf:dstm:op", TimeNS: base + 2*ms})
	bus.Emit(Event{Kind: EvLevelDone, Name: "otf:dstm:op", Level: 0, States: 10,
		Frontier: 9, DurNS: ms, TimeNS: base + 3*ms})
	bus.Emit(Event{Kind: EvLevelDone, Name: "otf:dstm:op", Level: 1, States: 40,
		Frontier: 30, HeapBytes: 1 << 20, DurNS: ms, TimeNS: base + 4*ms})
	bus.Emit(Event{Kind: EvWorkerSpan, Worker: 3, States: 17, DurNS: ms, TimeNS: base + 4*ms})
	bus.Emit(Event{Kind: EvViolation, Name: "otf:dstm:op", Detail: "cex", TimeNS: base + 5*ms})
	bus.Emit(Event{Kind: EvCheckDone, Name: "otf:dstm:op", Detail: "UNSAFE", States: 40,
		DurNS: 3 * ms, TimeNS: base + 5*ms})
	bus.Emit(Event{Kind: EvProgress, Name: "space.scan", States: 123, TimeNS: base + 6*ms})
	bus.Emit(Event{Kind: EvLimitHit, Detail: "states: budget", States: 40, TimeNS: base + 6*ms})
	bus.Emit(Event{Kind: EvPhaseEnd, Name: "table2", DurNS: 6 * ms, TimeNS: base + 7*ms})
	bus.Emit(Event{Kind: EvRunDone, Name: "table2", TimeNS: base + 7*ms})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	phases := map[string]bool{}
	var checkTid, levelTid int64
	levels := map[string]bool{}
	workerSpan := false
	for _, e := range tf.TraceEvents {
		phases[e.Ph] = true
		if e.Ph == "B" && e.Name == "otf:dstm:op" {
			checkTid = e.Tid
		}
		if e.Ph == "X" && strings.HasPrefix(e.Name, "L") {
			levels[e.Name] = true
			levelTid = e.Tid
		}
		if e.Ph == "X" && e.Tid == workerTidBase+3 {
			workerSpan = true
			if e.Args["items"] != float64(17) {
				t.Errorf("worker span items = %v, want 17", e.Args["items"])
			}
		}
		if e.TS < 0 || e.Dur < 0 {
			t.Errorf("negative timestamp in %+v", e)
		}
	}
	for _, ph := range []string{"M", "B", "E", "X", "i", "C"} {
		if !phases[ph] {
			t.Errorf("trace has no %q events (got %v)", ph, phases)
		}
	}
	if !levels["L0"] || !levels["L1"] {
		t.Errorf("per-level spans missing: %v", levels)
	}
	if !workerSpan {
		t.Error("per-worker span missing")
	}
	if checkTid < 10 || levelTid != checkTid {
		t.Errorf("check (tid %d) and its levels (tid %d) should share a named track >= 10", checkTid, levelTid)
	}
}

// TestTraceWriterSpansNestOnSpine asserts B/E pairing for the spine:
// every B has a matching later E with the same name and tid 1.
func TestTraceWriterSpineBalanced(t *testing.T) {
	bus := NewBus(64)
	bus.SetEnabled(true)
	var buf bytes.Buffer
	tw := StartTrace(&buf, bus)
	bus.Emit(Event{Kind: EvRunStart, Name: "all"})
	bus.Emit(Event{Kind: EvPhaseStart, Name: "outer"})
	bus.Emit(Event{Kind: EvPhaseStart, Name: "inner"})
	bus.Emit(Event{Kind: EvPhaseEnd, Name: "inner"})
	bus.Emit(Event{Kind: EvPhaseEnd, Name: "outer"})
	bus.Emit(Event{Kind: EvRunDone, Name: "all"})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	depth := 0
	for _, e := range tf.TraceEvents {
		if e.Tid != traceSpineTid {
			continue
		}
		switch e.Ph {
		case "B":
			depth++
		case "E":
			depth--
		}
		if depth < 0 {
			t.Fatalf("unbalanced E before B at %+v", e)
		}
	}
	if depth != 0 {
		t.Errorf("spine spans unbalanced: depth %d at end", depth)
	}
}

func TestTraceWriterReportsWriteError(t *testing.T) {
	bus := NewBus(8)
	bus.SetEnabled(true)
	tw := StartTrace(failWriter{}, bus)
	bus.Emit(Event{Kind: EvRunStart, Name: "x"})
	if err := tw.Close(); err == nil {
		t.Error("Close should surface the write error")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errWrite }

var errWrite = errors.New("sink failed")
