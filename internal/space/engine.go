package space

import "fmt"

// Engine selects how a check is executed. It is the vocabulary of the
// -engine flag of cmd/tmcheck, shared by the safety and liveness
// checkers: both offer a classic materialize-then-check pipeline and a
// lazy search that drives the Space successor generators directly and
// stops early.
type Engine uint8

const (
	// EngineMaterialized is the classic build-then-check pipeline: the
	// full transition system (and, for safety, the full specification
	// DFA) is constructed before any property is examined. Its peak
	// memory is the full system even when a counterexample is shallow.
	EngineMaterialized Engine = iota
	// EngineOnTheFly interleaves exploration with checking: states are
	// constructed only as the search reaches them and the check stops at
	// the first violation. It is the default engine of cmd/tmcheck.
	EngineOnTheFly
)

// String names the engine as accepted by the -engine flag.
func (e Engine) String() string {
	if e == EngineOnTheFly {
		return "onthefly"
	}
	return "materialized"
}

// ParseEngine parses an -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "onthefly":
		return EngineOnTheFly, nil
	case "materialized":
		return EngineMaterialized, nil
	}
	return EngineMaterialized, fmt.Errorf("unknown engine %q (want onthefly or materialized)", s)
}
