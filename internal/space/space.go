// Package space defines the lazy state-space abstraction shared by the
// checker pipeline: an implicit transition system whose states are
// constructed on demand and canonically numbered on first sight.
//
// Before this abstraction the pipeline was strictly "build then check":
// explore materialized the full TM transition system, spec enumerated
// the full deterministic specification, and only then did the safety
// check walk their product. The Space interface turns every layer into
// a successor generator instead — the materialized structures become
// one possible consumer (a Scan to the fixpoint), and the on-the-fly
// safety engine becomes another that interleaves TM exploration with
// specification stepping and stops at the first counterexample, never
// constructing the parts of either system the product does not reach.
//
// The package also owns the state-budget vocabulary: a typed
// BudgetError for searches that would exceed a state cap (so callers
// degrade gracefully instead of OOMing), and the process-wide MaxStates
// knob surfaced as the -maxstates flag of cmd/tmcheck.
package space

import (
	"sync"
	"sync/atomic"

	"tmcheck/internal/guard"
	"tmcheck/internal/obs"
)

// State identifies an interned state of a Space: a dense id assigned in
// canonical discovery order, with the initial state always 0.
type State = int32

// None is the absent state, returned by deterministic successor lookups
// when no transition exists.
const None State = -1

// Letter is a letter of the emission alphabet, or Eps for an internal
// (non-emitting) transition.
type Letter = int16

// Eps marks an internal transition that emits no letter.
const Eps Letter = -1

// Space is an implicit transition system: an initial state, a successor
// generator, and a canonical interning of every state it has
// constructed so far. Implementations intern lazily — calling Succ may
// discover and number fresh states — and number states densely in
// first-sight order, so a scan loop "for id := 0; id < NumStates();
// id++" drives the space to its reachable fixpoint.
type Space interface {
	// Init returns the initial state's id (always 0 by the numbering
	// convention; provided so consumers need not assume it).
	Init() State
	// Succ enumerates the outgoing transitions of the already-interned
	// state s in a deterministic order, calling emit once per
	// transition with the emitted letter (Eps for internal steps) and
	// the interned successor.
	Succ(s State, emit func(l Letter, to State))
	// NumStates returns the number of states interned so far. It grows
	// as Succ discovers fresh successors.
	NumStates() int
}

// Scan drives sp to its reachable fixpoint: every interned state is
// expanded exactly once, in id order, and edge is called for each
// transition (from, letter, to). Since interning is canonical this is
// exactly the sequential scan-order BFS the materialized builders used
// to hand-roll.
//
// A positive maxStates bounds the number of states constructed: the
// scan stops with a *BudgetError as soon as the interned count exceeds
// it. maxStates <= 0 means unbounded. Scan returns the number of states
// interned when it stopped.
func Scan(sp Space, maxStates int, edge func(from State, l Letter, to State)) (int, error) {
	return ScanGuarded(sp, guard.New(nil, maxStates, 0), edge)
}

// scanProgressEvery is the heartbeat granularity of ScanGuarded on the
// telemetry bus: one EvProgress per this many expanded states.
const scanProgressEvery = 8192

// ScanGuarded is Scan consulting a full resource guard instead of a
// bare state budget: the scan stops with the guard's *guard.LimitError
// as soon as the context is done, the state budget is exceeded, or the
// heap watchdog trips, checked once per expanded state. A nil or
// limitless guard costs nothing per state.
func ScanGuarded(sp Space, g *guard.Guard, edge func(from State, l Letter, to State)) (int, error) {
	var from State
	emit := func(l Letter, to State) { edge(from, l, to) }
	active := g.Active()
	events := obs.EventsEnabled()
	for from = 0; int(from) < sp.NumStates(); from++ {
		if active {
			if err := g.Check(sp.NumStates()); err != nil {
				return sp.NumStates(), err
			}
		}
		if events && from > 0 && from%scanProgressEvery == 0 {
			obs.Emit(obs.Event{
				Kind: obs.EvProgress, Name: "space.scan",
				States: int64(sp.NumStates()), Frontier: int64(sp.NumStates() - int(from)),
				HeapBytes: obs.SampledHeap(),
			})
		}
		sp.Succ(from, emit)
	}
	return sp.NumStates(), nil
}

// Interner canonically numbers the states of an implicit space: each
// distinct state value receives a dense id in first-Intern order. A
// plain Interner (NewInterner) is single-goroutine and lock-free on the
// hot path; a shared one (NewSyncInterner) may be used from concurrent
// expansions, as the parallel on-the-fly product search does.
type Interner[S comparable] struct {
	shared bool
	mu     sync.RWMutex
	index  map[S]State
	states []S
}

// NewInterner returns an empty single-goroutine interner.
func NewInterner[S comparable]() *Interner[S] {
	return &Interner[S]{index: map[S]State{}}
}

// NewSyncInterner returns an empty interner safe for concurrent use.
func NewSyncInterner[S comparable]() *Interner[S] {
	return &Interner[S]{shared: true, index: map[S]State{}}
}

// Intern returns the canonical id of s, assigning the next dense id on
// first sight.
func (in *Interner[S]) Intern(s S) State {
	id, _ := in.InternFresh(s)
	return id
}

// InternFresh is Intern reporting whether the state was newly interned.
func (in *Interner[S]) InternFresh(s S) (State, bool) {
	if in.shared {
		in.mu.RLock()
		id, ok := in.index[s]
		in.mu.RUnlock()
		if ok {
			return id, false
		}
		in.mu.Lock()
		defer in.mu.Unlock()
		if id, ok := in.index[s]; ok {
			return id, false
		}
		id = State(len(in.states))
		in.index[s] = id
		in.states = append(in.states, s)
		return id, true
	}
	if id, ok := in.index[s]; ok {
		return id, false
	}
	id := State(len(in.states))
	in.index[s] = id
	in.states = append(in.states, s)
	return id, true
}

// At returns the state value with the given id.
func (in *Interner[S]) At(id State) S {
	if in.shared {
		in.mu.RLock()
		defer in.mu.RUnlock()
	}
	return in.states[id]
}

// Len returns the number of states interned so far.
func (in *Interner[S]) Len() int {
	if in.shared {
		in.mu.RLock()
		defer in.mu.RUnlock()
	}
	return len(in.states)
}

// Snapshot returns the interned states in id order. The returned slice
// aliases the interner's storage up to its current length; callers must
// not modify it. Meant for materializing consumers that take over the
// states once interning is complete.
func (in *Interner[S]) Snapshot() []S {
	if in.shared {
		in.mu.RLock()
		defer in.mu.RUnlock()
		return in.states[:len(in.states):len(in.states)]
	}
	return in.states[:len(in.states):len(in.states)]
}

// ErrBudgetExceeded is the sentinel matched by errors.Is for every
// states-kind limit error, so callers can test the class without
// unwrapping. It is guard.ErrStates under its historical name.
var ErrBudgetExceeded = guard.ErrStates

// BudgetError reports that a search or construction stopped because it
// would have exceeded its state budget. It is a graceful refusal, not a
// crash: the process keeps running and the caller can retry with a
// larger budget or a lazier engine.
//
// The type is now an alias of the structured guard.LimitError, whose
// zero Kind is guard.KindStates: existing literals constructing
// &BudgetError{Budget: b, Visited: v} keep meaning "state budget
// exceeded", while the guard layer adds the wall-clock, memory,
// cancellation and panic kinds under the same type.
type BudgetError = guard.LimitError

// maxStates is the process-wide state budget; 0 means unlimited.
var maxStates atomic.Int64

// MaxStates returns the process-wide state budget installed by
// SetMaxStates (the -maxstates flag of cmd/tmcheck), or 0 for
// unlimited.
func MaxStates() int { return int(maxStates.Load()) }

// SetMaxStates installs the process-wide state budget. n <= 0 resets to
// unlimited.
func SetMaxStates(n int) {
	if n < 0 {
		n = 0
	}
	maxStates.Store(int64(n))
}
