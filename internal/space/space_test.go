package space

import (
	"errors"
	"sync"
	"testing"
)

// gridSpace is a toy implicit space: states are (x, y) points on a
// bounded grid, with a "right" edge emitting letter 0 and a "down" edge
// emitting Eps.
type gridSpace struct {
	w, h int
	in   *Interner[[2]int]
}

func newGrid(w, h int, shared bool) *gridSpace {
	g := &gridSpace{w: w, h: h}
	if shared {
		g.in = NewSyncInterner[[2]int]()
	} else {
		g.in = NewInterner[[2]int]()
	}
	g.in.Intern([2]int{0, 0})
	return g
}

func (g *gridSpace) Init() State    { return 0 }
func (g *gridSpace) NumStates() int { return g.in.Len() }
func (g *gridSpace) Succ(s State, emit func(Letter, State)) {
	p := g.in.At(s)
	if p[0]+1 < g.w {
		emit(0, g.in.Intern([2]int{p[0] + 1, p[1]}))
	}
	if p[1]+1 < g.h {
		emit(Eps, g.in.Intern([2]int{p[0], p[1] + 1}))
	}
}

func TestScanReachesFixpoint(t *testing.T) {
	g := newGrid(4, 3, false)
	edges := 0
	n, err := Scan(g, 0, func(from State, l Letter, to State) { edges++ })
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Errorf("states = %d, want 12", n)
	}
	// Each of the 12 cells has a right edge unless in the last column
	// (3*3 rows missing... rather: right edges = 3*3, down edges = 4*2).
	if want := 3*3 + 4*2; edges != want {
		t.Errorf("edges = %d, want %d", edges, want)
	}
}

func TestScanCanonicalNumbering(t *testing.T) {
	// Scan order from (0,0): BFS-as-scan interning means ids follow
	// first-sight order along the scan, identical on every run.
	g1 := newGrid(3, 3, false)
	var order1 []State
	Scan(g1, 0, func(_ State, _ Letter, to State) { order1 = append(order1, to) })
	g2 := newGrid(3, 3, true)
	var order2 []State
	Scan(g2, 0, func(_ State, _ Letter, to State) { order2 = append(order2, to) })
	if len(order1) != len(order2) {
		t.Fatalf("edge counts differ: %d vs %d", len(order1), len(order2))
	}
	for i := range order1 {
		if order1[i] != order2[i] {
			t.Fatalf("numbering diverges at edge %d: %d vs %d", i, order1[i], order2[i])
		}
	}
}

func TestScanBudget(t *testing.T) {
	g := newGrid(10, 10, false)
	n, err := Scan(g, 5, func(State, Letter, State) {})
	if err == nil {
		t.Fatal("want budget error")
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("errors.Is(err, ErrBudgetExceeded) = false for %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error %v is not a *BudgetError", err)
	}
	if be.Budget != 5 || be.Visited <= 5 {
		t.Errorf("budget error reports budget=%d visited=%d", be.Budget, be.Visited)
	}
	if n != be.Visited {
		t.Errorf("Scan returned %d states, error says %d", n, be.Visited)
	}
}

func TestInternerDenseIDs(t *testing.T) {
	in := NewInterner[string]()
	if id := in.Intern("a"); id != 0 {
		t.Errorf("first id = %d", id)
	}
	if id, fresh := in.InternFresh("b"); id != 1 || !fresh {
		t.Errorf("second intern = (%d, %v)", id, fresh)
	}
	if id, fresh := in.InternFresh("a"); id != 0 || fresh {
		t.Errorf("re-intern = (%d, %v)", id, fresh)
	}
	if in.Len() != 2 || in.At(1) != "b" {
		t.Errorf("len=%d at(1)=%q", in.Len(), in.At(1))
	}
	snap := in.Snapshot()
	if len(snap) != 2 || snap[0] != "a" {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestSyncInternerConcurrent(t *testing.T) {
	in := NewSyncInterner[int]()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				id := in.Intern(i % 100)
				if got := in.At(id); got != i%100 {
					t.Errorf("At(%d) = %d, want %d", id, got, i%100)
					return
				}
			}
		}()
	}
	wg.Wait()
	if in.Len() != 100 {
		t.Errorf("len = %d, want 100", in.Len())
	}
}

func TestMaxStatesKnob(t *testing.T) {
	defer SetMaxStates(0)
	if MaxStates() != 0 {
		t.Fatalf("default MaxStates = %d", MaxStates())
	}
	SetMaxStates(1234)
	if MaxStates() != 1234 {
		t.Errorf("MaxStates = %d", MaxStates())
	}
	SetMaxStates(-7)
	if MaxStates() != 0 {
		t.Errorf("negative reset: MaxStates = %d", MaxStates())
	}
}
