// Package tm expresses transactional memories as TM algorithms in the
// formalism of Guerraoui, Henzinger and Singh (§3): a TM algorithm has a
// set of states, an extended command set D ⊇ C, a conflict function φ, a
// pending function γ, and a transition relation that executes each program
// command as a sequence of atomically executed extended commands.
//
// The package provides the sequential TM, two-phase locking, DSTM, TL2,
// the "modified TL2" of §5.4 (validate split into rvalidate followed by
// chklock, the ordering shown unsafe), deliberately buggy variants used to
// exercise counterexample generation, and contention managers with the
// product construction of §3.1.
//
// The generic parts of the formalism — pending-command bookkeeping, the
// abort rule (abort is possible exactly when a command is abort enabled or
// the conflict function is true), and the contention-manager product — live
// in internal/explore, which unfolds an Algorithm into an explicit
// transition system.
package tm

import (
	"fmt"

	"tmcheck/internal/core"
)

// MaxThreads bounds the number of threads a TM-algorithm state can track.
// The reduction theorems need only 2; a little headroom supports the
// structural-property experiments.
const MaxThreads = 4

// XKind enumerates the extended command kinds used by the TMs in this
// package. The base kinds mirror core commands; the rest are TM specific.
type XKind uint8

// Extended command kinds. XRead/XWrite/XCommit/XAbort are the base
// commands; the others are the TM-specific extended commands of §3.3.
const (
	XRead XKind = iota
	XWrite
	XCommit
	XAbort
	XRLock     // 2PL: acquire shared lock
	XWLock     // 2PL: acquire exclusive lock
	XOwn       // DSTM: acquire ownership
	XValidate  // DSTM, TL2: validate read set
	XLock      // TL2: lock a write-set variable
	XRValidate // modified TL2: version check only
	XChkLock   // modified TL2: read-set lock check only
)

// String returns the mnemonic used in the paper's Table 1.
func (k XKind) String() string {
	switch k {
	case XRead:
		return "r"
	case XWrite:
		return "w"
	case XCommit:
		return "c"
	case XAbort:
		return "a"
	case XRLock:
		return "rl"
	case XWLock:
		return "wl"
	case XOwn:
		return "o"
	case XValidate:
		return "v"
	case XLock:
		return "l"
	case XRValidate:
		return "rv"
	case XChkLock:
		return "k"
	default:
		return fmt.Sprintf("x(%d)", uint8(k))
	}
}

// XCmd is an extended command; V is meaningful only for variable-indexed
// kinds and must be zero otherwise.
type XCmd struct {
	Kind XKind
	V    core.Var
}

// String renders the extended command, e.g. "(rl,1)" or "v".
func (x XCmd) String() string {
	switch x.Kind {
	case XRead, XWrite, XRLock, XWLock, XOwn, XLock:
		return fmt.Sprintf("(%s,%d)", x.Kind, x.V+1)
	default:
		return x.Kind.String()
	}
}

// HasVar reports whether the extended command kind carries a variable.
func (x XCmd) HasVar() bool {
	switch x.Kind {
	case XRead, XWrite, XRLock, XWLock, XOwn, XLock:
		return true
	default:
		return false
	}
}

// Base returns the extended command implementing a program command
// directly (d = c in the paper's notation).
func Base(c core.Command) XCmd {
	switch c.Op {
	case core.OpRead:
		return XCmd{Kind: XRead, V: c.V}
	case core.OpWrite:
		return XCmd{Kind: XWrite, V: c.V}
	case core.OpCommit:
		return XCmd{Kind: XCommit}
	default:
		return XCmd{Kind: XAbort}
	}
}

// Resp is the TM algorithm's response to an extended command execution.
type Resp uint8

// Responses: RespPending (⊥) means more extended commands follow for the
// same program command; Resp0 accompanies aborts; Resp1 completes the
// command.
const (
	RespPending Resp = iota
	Resp0
	Resp1
)

// String renders the response as in the paper (⊥, 0, 1).
func (r Resp) String() string {
	switch r {
	case RespPending:
		return "⊥"
	case Resp0:
		return "0"
	default:
		return "1"
	}
}

// State is a TM-algorithm state. Implementations must be comparable value
// types (they are used as map keys by the explorer).
type State any

// Step is a non-abort transition option from a state for a given pending
// command and thread: execute extended command X with response R, moving
// to state Next.
type Step struct {
	X    XCmd
	R    Resp
	Next State
}

// Algorithm is a TM algorithm without its generic bookkeeping. Steps must
// not enumerate abort transitions; the explorer derives them (an abort is
// possible when Steps is empty — the command is abort enabled — or when
// Conflict is true, following §3's rules).
type Algorithm interface {
	// Name identifies the TM (e.g. "tl2").
	Name() string
	// Threads and Vars return the instance bounds n and k.
	Threads() int
	Vars() int
	// Initial returns q_init.
	Initial() State
	// Steps enumerates the transitions (d, r, q') with d ∈ D for program
	// command c by thread t from state q.
	Steps(q State, c core.Command, t core.Thread) []Step
	// Conflict is the conflict function φ(q, (c, t)): true when the TM
	// would consult a contention manager before executing c.
	Conflict(q State, c core.Command, t core.Thread) bool
	// AbortStep returns the successor state after thread t aborts in q.
	AbortStep(q State, t core.Thread) State
}

// CheckBounds panics unless 1 ≤ n ≤ MaxThreads and 1 ≤ k ≤ 16; the TM
// constructors share it.
func CheckBounds(n, k int) {
	if n < 1 || n > MaxThreads {
		panic(fmt.Sprintf("tm: thread count %d out of range [1,%d]", n, MaxThreads))
	}
	if k < 1 || k > 16 {
		panic(fmt.Sprintf("tm: variable count %d out of range [1,16]", k))
	}
}
