package tm

import (
	"testing"

	"tmcheck/internal/core"
)

// --- NOrec ---

func TestNOrecCommitSequence(t *testing.T) {
	m := NewNOrec(2, 2)
	q := m.Initial()
	q = m.Steps(q, core.Write(0), 0)[0].Next
	// Writer commit: lock, validate, publish.
	steps := m.Steps(q, core.Commit(), 0)
	if len(steps) != 1 || steps[0].X.Kind != XLock {
		t.Fatalf("want global lock step, got %+v", steps)
	}
	q = steps[0].Next
	if got := q.(NOrecState).GlobalLock; got != 0 {
		t.Fatalf("lock holder = %d", got)
	}
	steps = m.Steps(q, core.Commit(), 0)
	if len(steps) != 1 || steps[0].X.Kind != XValidate {
		t.Fatalf("want validate, got %+v", steps)
	}
	q = steps[0].Next
	steps = m.Steps(q, core.Commit(), 0)
	if len(steps) != 1 || steps[0].R != Resp1 {
		t.Fatalf("want publish, got %+v", steps)
	}
	if got := steps[0].Next.(NOrecState).GlobalLock; got != uint8(MaxThreads) {
		t.Errorf("lock not released: %d", got)
	}
}

func TestNOrecReadOnlyFastPath(t *testing.T) {
	m := NewNOrec(2, 1)
	q := m.Initial()
	q = m.Steps(q, core.Read(0), 0)[0].Next
	steps := m.Steps(q, core.Commit(), 0)
	if len(steps) != 1 || steps[0].X.Kind != XCommit || steps[0].R != Resp1 {
		t.Fatalf("read-only commit should be immediate, got %+v", steps)
	}
}

func TestNOrecGlobalLockBlocksEverything(t *testing.T) {
	m := NewNOrec(2, 2)
	q := m.Initial()
	q = m.Steps(q, core.Write(0), 0)[0].Next
	q = m.Steps(q, core.Commit(), 0)[0].Next // t1 holds the commit lock
	// t2 can neither read nor commit writes while the lock is held.
	if got := m.Steps(q, core.Read(1), 1); got != nil {
		t.Errorf("read during commit should wait (abort enabled), got %+v", got)
	}
	q2 := m.Steps(q, core.Write(1), 1)[0].Next // buffering is fine
	if got := m.Steps(q2, core.Commit(), 1); got != nil {
		t.Errorf("second committer should be blocked, got %+v", got)
	}
	if !m.Conflict(q2, core.Commit(), 1) {
		t.Error("blocked commit should be a conflict")
	}
}

func TestNOrecSnapshotInvalidation(t *testing.T) {
	m := NewNOrec(2, 2)
	q := m.Initial()
	q = m.Steps(q, core.Read(0), 1)[0].Next // t2 snapshots v1
	// t1 commits a write to v1.
	q = m.Steps(q, core.Write(0), 0)[0].Next
	q = m.Steps(q, core.Commit(), 0)[0].Next
	q = m.Steps(q, core.Commit(), 0)[0].Next
	q = m.Steps(q, core.Commit(), 0)[0].Next
	st := q.(NOrecState)
	if !st.MS[1].Has(0) {
		t.Fatalf("modified set not propagated: %+v", st)
	}
	// t2's snapshot is dead: reads and commits are abort enabled.
	if got := m.Steps(q, core.Read(1), 1); got != nil {
		t.Errorf("read on dead snapshot should fail, got %+v", got)
	}
	if got := m.Steps(q, core.Commit(), 1); got != nil {
		t.Errorf("commit on dead snapshot should fail, got %+v", got)
	}
}

func TestNOrecAbortReleasesGlobalLock(t *testing.T) {
	m := NewNOrec(2, 1)
	q := m.Initial()
	q = m.Steps(q, core.Write(0), 0)[0].Next
	q = m.Steps(q, core.Commit(), 0)[0].Next
	q2 := m.AbortStep(q, 0)
	if got := q2.(NOrecState).GlobalLock; got != uint8(MaxThreads) {
		t.Errorf("abort did not release the commit lock: %d", got)
	}
}

// --- ETL ---

func TestETLWriteLocksAtEncounter(t *testing.T) {
	e := NewETL(2, 2)
	q := e.Initial()
	steps := e.Steps(q, core.Write(0), 0)
	if len(steps) != 1 || steps[0].X.Kind != XWLock || steps[0].R != RespPending {
		t.Fatalf("want encounter-time lock, got %+v", steps)
	}
	st := steps[0].Next.(ETLState)
	if !st.LS[0].Has(0) || !st.WS[0].Has(0) {
		t.Errorf("lock/write set not updated: %+v", st)
	}
	// The pending write completes.
	steps = e.Steps(steps[0].Next, core.Write(0), 0)
	if len(steps) != 1 || steps[0].R != Resp1 {
		t.Fatalf("continuation = %+v", steps)
	}
}

func TestETLStealAborts(t *testing.T) {
	e := NewETL(2, 1)
	q := e.Initial()
	q = e.Steps(q, core.Write(0), 0)[0].Next // t1 locks v1
	if !e.Conflict(q, core.Write(0), 1) {
		t.Error("competing write should conflict")
	}
	steps := e.Steps(q, core.Write(0), 1)
	if len(steps) != 1 {
		t.Fatalf("steal = %+v", steps)
	}
	st := steps[0].Next.(ETLState)
	if st.Status[0] != tl2Aborted {
		t.Errorf("victim not aborted: %+v", st)
	}
}

func TestETLCommitValidatesOnly(t *testing.T) {
	e := NewETL(2, 2)
	q := e.Initial()
	q = e.Steps(q, core.Write(0), 0)[0].Next
	q = e.Steps(q, core.Write(0), 0)[0].Next // write completes
	// Commit: no lock steps (already held) — validate then publish.
	steps := e.Steps(q, core.Commit(), 0)
	if len(steps) != 1 || steps[0].X.Kind != XValidate {
		t.Fatalf("want validate, got %+v", steps)
	}
	q = steps[0].Next
	steps = e.Steps(q, core.Commit(), 0)
	if len(steps) != 1 || steps[0].R != Resp1 {
		t.Fatalf("want publish, got %+v", steps)
	}
}

func TestETLReadBlockedByLockAndVersion(t *testing.T) {
	e := NewETL(2, 2)
	q := e.Initial()
	q = e.Steps(q, core.Write(0), 1)[0].Next // t2 locks v1
	if got := e.Steps(q, core.Read(0), 0); got != nil {
		t.Errorf("read of locked variable should fail, got %+v", got)
	}
	// After t2 commits, an active t1 has v1 in its modified set.
	q = e.Steps(q, core.Write(0), 1)[0].Next
	q = e.Steps(q, core.Read(1), 0)[0].Next // t1 becomes active
	q = e.Steps(q, core.Commit(), 1)[0].Next
	q = e.Steps(q, core.Commit(), 1)[0].Next
	if got := e.Steps(q, core.Read(0), 0); got != nil {
		t.Errorf("stale read should fail, got %+v", got)
	}
}
