package tm

import (
	"tmcheck/internal/core"
)

// TwoPLState is the two-phase-locking state: per-thread shared (read) and
// exclusive (write) lock sets.
type TwoPLState struct {
	RS [MaxThreads]core.VarSet // shared locks held
	WS [MaxThreads]core.VarSet // exclusive locks held
}

// TwoPL is the two-phase locking TM of Algorithm 2. A read first acquires
// a shared lock (extended command rlock, response ⊥) unless a lock is
// already held; a write acquires an exclusive lock (wlock). Lock
// acquisition fails — leaving the command abort enabled — when another
// thread holds a conflicting lock. All locks release at commit or abort.
// The conflict function is constantly false.
type TwoPL struct {
	n, k int
}

// NewTwoPL returns the 2PL TM for n threads and k variables.
func NewTwoPL(n, k int) *TwoPL {
	CheckBounds(n, k)
	return &TwoPL{n: n, k: k}
}

// Name implements Algorithm.
func (p *TwoPL) Name() string { return "2pl" }

// Threads implements Algorithm.
func (p *TwoPL) Threads() int { return p.n }

// Vars implements Algorithm.
func (p *TwoPL) Vars() int { return p.k }

// Initial implements Algorithm: all lock sets empty.
func (p *TwoPL) Initial() State { return TwoPLState{} }

// Conflict implements Algorithm: φ is constantly false.
func (p *TwoPL) Conflict(q State, c core.Command, t core.Thread) bool { return false }

// Steps implements Algorithm (the get2PL procedure).
func (p *TwoPL) Steps(q State, c core.Command, t core.Thread) []Step {
	st := q.(TwoPLState)
	ti := int(t)
	switch c.Op {
	case core.OpRead:
		v := c.V
		if st.RS[ti].Has(v) || st.WS[ti].Has(v) {
			return []Step{{X: Base(c), R: Resp1, Next: st}}
		}
		// Acquire a shared lock unless another thread holds an exclusive
		// lock on v.
		for u := 0; u < p.n; u++ {
			if u != ti && st.WS[u].Has(v) {
				return nil
			}
		}
		next := st
		next.RS[ti] = next.RS[ti].Add(v)
		return []Step{{X: XCmd{Kind: XRLock, V: v}, R: RespPending, Next: next}}
	case core.OpWrite:
		v := c.V
		if st.WS[ti].Has(v) {
			return []Step{{X: Base(c), R: Resp1, Next: st}}
		}
		// Acquire an exclusive lock unless any other thread holds any lock
		// on v. A thread holding only its own shared lock upgrades.
		for u := 0; u < p.n; u++ {
			if u != ti && (st.WS[u].Has(v) || st.RS[u].Has(v)) {
				return nil
			}
		}
		next := st
		next.WS[ti] = next.WS[ti].Add(v)
		return []Step{{X: XCmd{Kind: XWLock, V: v}, R: RespPending, Next: next}}
	case core.OpCommit:
		next := st
		next.RS[ti] = 0
		next.WS[ti] = 0
		return []Step{{X: Base(c), R: Resp1, Next: next}}
	default:
		return nil
	}
}

// AbortStep implements Algorithm: all locks of t release.
func (p *TwoPL) AbortStep(q State, t core.Thread) State {
	st := q.(TwoPLState)
	st.RS[t] = 0
	st.WS[t] = 0
	return st
}
