package tm

import (
	"tmcheck/internal/core"

	"tmcheck/internal/pack"
)

// TwoPLState is the two-phase-locking state: per-thread shared (read) and
// exclusive (write) lock sets.
type TwoPLState struct {
	RS [MaxThreads]core.VarSet // shared locks held
	WS [MaxThreads]core.VarSet // exclusive locks held
}

// TwoPL is the two-phase locking TM of Algorithm 2. A read first acquires
// a shared lock (extended command rlock, response ⊥) unless a lock is
// already held; a write acquires an exclusive lock (wlock). Lock
// acquisition fails — leaving the command abort enabled — when another
// thread holds a conflicting lock. All locks release at commit or abort.
// The conflict function is constantly false.
type TwoPL struct {
	n, k int
}

// NewTwoPL returns the 2PL TM for n threads and k variables.
func NewTwoPL(n, k int) *TwoPL {
	CheckBounds(n, k)
	return &TwoPL{n: n, k: k}
}

// Name implements Algorithm.
func (p *TwoPL) Name() string { return "2pl" }

// Threads implements Algorithm.
func (p *TwoPL) Threads() int { return p.n }

// Vars implements Algorithm.
func (p *TwoPL) Vars() int { return p.k }

// Initial implements Algorithm: all lock sets empty.
func (p *TwoPL) Initial() State { return p.InitialP() }

// Conflict implements Algorithm: φ is constantly false.
func (p *TwoPL) Conflict(q State, c core.Command, t core.Thread) bool { return false }

// Steps implements Algorithm (the get2PL procedure).
func (p *TwoPL) Steps(q State, c core.Command, t core.Thread) []Step {
	var steps []Step
	p.StepsP(q.(TwoPLState), c, t, func(x XCmd, r Resp, next TwoPLState) {
		steps = append(steps, Step{X: x, R: r, Next: next})
	})
	return steps
}

// AbortStep implements Algorithm: all locks of t release.
func (p *TwoPL) AbortStep(q State, t core.Thread) State {
	return p.AbortStepP(q.(TwoPLState), t)
}

// PackedFor implements Packed.
func (p *TwoPL) PackedFor() string { return "2pl" }

// InitialP implements Packed.
func (p *TwoPL) InitialP() TwoPLState { return TwoPLState{} }

// ConflictP implements Packed: φ is constantly false.
func (p *TwoPL) ConflictP(st TwoPLState, c core.Command, t core.Thread) bool { return false }

// StepsP implements Packed (the get2PL procedure).
func (p *TwoPL) StepsP(st TwoPLState, c core.Command, t core.Thread, yield func(XCmd, Resp, TwoPLState)) int {
	ti := int(t)
	switch c.Op {
	case core.OpRead:
		v := c.V
		if st.RS[ti].Has(v) || st.WS[ti].Has(v) {
			yield(Base(c), Resp1, st)
			return 1
		}
		// Acquire a shared lock unless another thread holds an exclusive
		// lock on v.
		for u := 0; u < p.n; u++ {
			if u != ti && st.WS[u].Has(v) {
				return 0
			}
		}
		next := st
		next.RS[ti] = next.RS[ti].Add(v)
		yield(XCmd{Kind: XRLock, V: v}, RespPending, next)
		return 1
	case core.OpWrite:
		v := c.V
		if st.WS[ti].Has(v) {
			yield(Base(c), Resp1, st)
			return 1
		}
		// Acquire an exclusive lock unless any other thread holds any lock
		// on v. A thread holding only its own shared lock upgrades.
		for u := 0; u < p.n; u++ {
			if u != ti && (st.WS[u].Has(v) || st.RS[u].Has(v)) {
				return 0
			}
		}
		next := st
		next.WS[ti] = next.WS[ti].Add(v)
		yield(XCmd{Kind: XWLock, V: v}, RespPending, next)
		return 1
	case core.OpCommit:
		next := st
		next.RS[ti] = 0
		next.WS[ti] = 0
		yield(Base(c), Resp1, next)
		return 1
	default:
		return 0
	}
}

// AbortStepP implements Packed: all locks of t release.
func (p *TwoPL) AbortStepP(st TwoPLState, t core.Thread) TwoPLState {
	st.RS[t] = 0
	st.WS[t] = 0
	return st
}

// StateBits implements Packed: two k-bit lock sets per live thread.
func (p *TwoPL) StateBits() int { return p.n * 2 * p.k }

// EncodeState implements Packed.
func (p *TwoPL) EncodeState(st TwoPLState, w *pack.Writer) {
	kb := uint(p.k)
	for t := 0; t < p.n; t++ {
		w.Put(uint64(st.RS[t]), kb)
		w.Put(uint64(st.WS[t]), kb)
	}
}

// DecodeState implements Packed.
func (p *TwoPL) DecodeState(r *pack.Reader) TwoPLState {
	var st TwoPLState
	kb := uint(p.k)
	for t := 0; t < p.n; t++ {
		st.RS[t] = core.VarSet(r.Get(kb))
		st.WS[t] = core.VarSet(r.Get(kb))
	}
	return st
}
