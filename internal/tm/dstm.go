package tm

import (
	"tmcheck/internal/core"
)

// DSTM thread statuses (the paper's Status function for Algorithm 3).
const (
	dstmFinished uint8 = iota
	dstmAborted
	dstmValidated
	dstmInvalid
)

// DSTMState is the DSTM state: per-thread status, read set, and ownership
// set.
type DSTMState struct {
	Status [MaxThreads]uint8
	RS     [MaxThreads]core.VarSet
	OS     [MaxThreads]core.VarSet
}

// DSTM is the dynamic software transactional memory of Algorithm 3
// (Herlihy et al., PODC 2003, as modeled in the paper). Writers acquire
// ownership (extended command own), aborting any current owner; a commit
// validates the read set (aborting owners of read variables) and then
// invalidates readers of the committed write set. Conflicts arise when
// writing a variable owned by another thread and when committing with a
// read set intersecting another thread's ownership set; a contention
// manager arbitrates both.
type DSTM struct {
	n, k int
}

// NewDSTM returns the DSTM algorithm for n threads and k variables.
func NewDSTM(n, k int) *DSTM {
	CheckBounds(n, k)
	return &DSTM{n: n, k: k}
}

// Name implements Algorithm.
func (d *DSTM) Name() string { return "dstm" }

// Threads implements Algorithm.
func (d *DSTM) Threads() int { return d.n }

// Vars implements Algorithm.
func (d *DSTM) Vars() int { return d.k }

// Initial implements Algorithm: every status finished, all sets empty.
func (d *DSTM) Initial() State { return DSTMState{} }

// Conflict implements Algorithm: φ(q, (c, t)) is true when c writes a
// variable owned by another thread, or c commits while the thread's read
// set intersects another thread's ownership set. A thread already aborted
// by another thread has no decision left to make — it can only abort — so
// φ is false for it regardless of the command.
func (d *DSTM) Conflict(q State, c core.Command, t core.Thread) bool {
	st := q.(DSTMState)
	ti := int(t)
	if st.Status[ti] == dstmAborted {
		return false
	}
	switch c.Op {
	case core.OpWrite:
		for u := 0; u < d.n; u++ {
			if u != ti && st.OS[u].Has(c.V) {
				return true
			}
		}
	case core.OpCommit:
		if st.Status[ti] != dstmFinished {
			return false
		}
		for u := 0; u < d.n; u++ {
			if u != ti && st.RS[ti].Intersects(st.OS[u]) {
				return true
			}
		}
	}
	return false
}

// Steps implements Algorithm (the getDSTM procedure).
func (d *DSTM) Steps(q State, c core.Command, t core.Thread) []Step {
	st := q.(DSTMState)
	ti := int(t)
	// A thread aborted by another thread can only abort.
	if st.Status[ti] == dstmAborted {
		return nil
	}
	switch c.Op {
	case core.OpRead:
		v := c.V
		if st.OS[ti].Has(v) {
			return []Step{{X: Base(c), R: Resp1, Next: st}}
		}
		if st.Status[ti] == dstmFinished {
			next := st
			next.RS[ti] = next.RS[ti].Add(v)
			return []Step{{X: Base(c), R: Resp1, Next: next}}
		}
		// Status invalid: no global read is possible; the command is abort
		// enabled.
		return nil
	case core.OpWrite:
		v := c.V
		if st.OS[ti].Has(v) {
			return []Step{{X: Base(c), R: Resp1, Next: st}}
		}
		// Acquire ownership, aborting any current owner.
		next := st
		next.OS[ti] = next.OS[ti].Add(v)
		for u := 0; u < d.n; u++ {
			if u != ti && next.OS[u].Has(v) {
				next.Status[u] = dstmAborted
				next.RS[u] = 0
				next.OS[u] = 0
			}
		}
		return []Step{{X: XCmd{Kind: XOwn, V: v}, R: RespPending, Next: next}}
	case core.OpCommit:
		switch st.Status[ti] {
		case dstmFinished:
			// Validate: abort every thread owning a variable this thread
			// has read.
			next := st
			next.Status[ti] = dstmValidated
			for u := 0; u < d.n; u++ {
				if u != ti && st.RS[ti].Intersects(st.OS[u]) {
					next.Status[u] = dstmAborted
					next.RS[u] = 0
					next.OS[u] = 0
				}
			}
			return []Step{{X: XCmd{Kind: XValidate}, R: RespPending, Next: next}}
		case dstmValidated:
			// Commit: invalidate readers of the committed write set.
			next := st
			next.Status[ti] = dstmFinished
			next.RS[ti] = 0
			next.OS[ti] = 0
			for u := 0; u < d.n; u++ {
				if u != ti && st.RS[u].Intersects(st.OS[ti]) {
					next.Status[u] = dstmInvalid
				}
			}
			return []Step{{X: Base(c), R: Resp1, Next: next}}
		default:
			// Invalid: the commit is abort enabled.
			return nil
		}
	default:
		return nil
	}
}

// AbortStep implements Algorithm: the thread resets to finished with empty
// sets.
func (d *DSTM) AbortStep(q State, t core.Thread) State {
	st := q.(DSTMState)
	st.Status[t] = dstmFinished
	st.RS[t] = 0
	st.OS[t] = 0
	return st
}
