package tm

import (
	"tmcheck/internal/core"

	"tmcheck/internal/pack"
)

// DSTM thread statuses (the paper's Status function for Algorithm 3).
const (
	dstmFinished uint8 = iota
	dstmAborted
	dstmValidated
	dstmInvalid
)

// DSTMState is the DSTM state: per-thread status, read set, and ownership
// set.
type DSTMState struct {
	Status [MaxThreads]uint8
	RS     [MaxThreads]core.VarSet
	OS     [MaxThreads]core.VarSet
}

// DSTM is the dynamic software transactional memory of Algorithm 3
// (Herlihy et al., PODC 2003, as modeled in the paper). Writers acquire
// ownership (extended command own), aborting any current owner; a commit
// validates the read set (aborting owners of read variables) and then
// invalidates readers of the committed write set. Conflicts arise when
// writing a variable owned by another thread and when committing with a
// read set intersecting another thread's ownership set; a contention
// manager arbitrates both.
type DSTM struct {
	n, k int
}

// NewDSTM returns the DSTM algorithm for n threads and k variables.
func NewDSTM(n, k int) *DSTM {
	CheckBounds(n, k)
	return &DSTM{n: n, k: k}
}

// Name implements Algorithm.
func (d *DSTM) Name() string { return "dstm" }

// Threads implements Algorithm.
func (d *DSTM) Threads() int { return d.n }

// Vars implements Algorithm.
func (d *DSTM) Vars() int { return d.k }

// Initial implements Algorithm: every status finished, all sets empty.
func (d *DSTM) Initial() State { return d.InitialP() }

// Conflict implements Algorithm: φ(q, (c, t)) is true when c writes a
// variable owned by another thread, or c commits while the thread's read
// set intersects another thread's ownership set. A thread already aborted
// by another thread has no decision left to make — it can only abort — so
// φ is false for it regardless of the command.
func (d *DSTM) Conflict(q State, c core.Command, t core.Thread) bool {
	return d.ConflictP(q.(DSTMState), c, t)
}

// ConflictP implements Packed.
func (d *DSTM) ConflictP(st DSTMState, c core.Command, t core.Thread) bool {
	ti := int(t)
	if st.Status[ti] == dstmAborted {
		return false
	}
	switch c.Op {
	case core.OpWrite:
		for u := 0; u < d.n; u++ {
			if u != ti && st.OS[u].Has(c.V) {
				return true
			}
		}
	case core.OpCommit:
		if st.Status[ti] != dstmFinished {
			return false
		}
		for u := 0; u < d.n; u++ {
			if u != ti && st.RS[ti].Intersects(st.OS[u]) {
				return true
			}
		}
	}
	return false
}

// Steps implements Algorithm (the getDSTM procedure).
func (d *DSTM) Steps(q State, c core.Command, t core.Thread) []Step {
	var steps []Step
	d.StepsP(q.(DSTMState), c, t, func(x XCmd, r Resp, next DSTMState) {
		steps = append(steps, Step{X: x, R: r, Next: next})
	})
	return steps
}

// StepsP implements Packed (the getDSTM procedure).
func (d *DSTM) StepsP(st DSTMState, c core.Command, t core.Thread, yield func(XCmd, Resp, DSTMState)) int {
	ti := int(t)
	// A thread aborted by another thread can only abort.
	if st.Status[ti] == dstmAborted {
		return 0
	}
	switch c.Op {
	case core.OpRead:
		v := c.V
		if st.OS[ti].Has(v) {
			yield(Base(c), Resp1, st)
			return 1
		}
		if st.Status[ti] == dstmFinished {
			next := st
			next.RS[ti] = next.RS[ti].Add(v)
			yield(Base(c), Resp1, next)
			return 1
		}
		// Status invalid: no global read is possible; the command is abort
		// enabled.
		return 0
	case core.OpWrite:
		v := c.V
		if st.OS[ti].Has(v) {
			yield(Base(c), Resp1, st)
			return 1
		}
		// Acquire ownership, aborting any current owner.
		next := st
		next.OS[ti] = next.OS[ti].Add(v)
		for u := 0; u < d.n; u++ {
			if u != ti && next.OS[u].Has(v) {
				next.Status[u] = dstmAborted
				next.RS[u] = 0
				next.OS[u] = 0
			}
		}
		yield(XCmd{Kind: XOwn, V: v}, RespPending, next)
		return 1
	case core.OpCommit:
		switch st.Status[ti] {
		case dstmFinished:
			// Validate: abort every thread owning a variable this thread
			// has read.
			next := st
			next.Status[ti] = dstmValidated
			for u := 0; u < d.n; u++ {
				if u != ti && st.RS[ti].Intersects(st.OS[u]) {
					next.Status[u] = dstmAborted
					next.RS[u] = 0
					next.OS[u] = 0
				}
			}
			yield(XCmd{Kind: XValidate}, RespPending, next)
			return 1
		case dstmValidated:
			// Commit: invalidate readers of the committed write set.
			next := st
			next.Status[ti] = dstmFinished
			next.RS[ti] = 0
			next.OS[ti] = 0
			for u := 0; u < d.n; u++ {
				if u != ti && st.RS[u].Intersects(st.OS[ti]) {
					next.Status[u] = dstmInvalid
				}
			}
			yield(Base(c), Resp1, next)
			return 1
		default:
			// Invalid: the commit is abort enabled.
			return 0
		}
	default:
		return 0
	}
}

// AbortStep implements Algorithm: the thread resets to finished with empty
// sets.
func (d *DSTM) AbortStep(q State, t core.Thread) State {
	return d.AbortStepP(q.(DSTMState), t)
}

// AbortStepP implements Packed.
func (d *DSTM) AbortStepP(st DSTMState, t core.Thread) DSTMState {
	st.Status[t] = dstmFinished
	st.RS[t] = 0
	st.OS[t] = 0
	return st
}

// PackedFor implements Packed.
func (d *DSTM) PackedFor() string { return "dstm" }

// InitialP implements Packed.
func (d *DSTM) InitialP() DSTMState { return DSTMState{} }

// StateBits implements Packed: a 2-bit status and two k-bit sets per
// live thread.
func (d *DSTM) StateBits() int { return d.n * (2 + 2*d.k) }

// EncodeState implements Packed.
func (d *DSTM) EncodeState(st DSTMState, w *pack.Writer) {
	kb := uint(d.k)
	for t := 0; t < d.n; t++ {
		w.Put(uint64(st.Status[t]), 2)
		w.Put(uint64(st.RS[t]), kb)
		w.Put(uint64(st.OS[t]), kb)
	}
}

// DecodeState implements Packed.
func (d *DSTM) DecodeState(r *pack.Reader) DSTMState {
	var st DSTMState
	kb := uint(d.k)
	for t := 0; t < d.n; t++ {
		st.Status[t] = uint8(r.Get(2))
		st.RS[t] = core.VarSet(r.Get(kb))
		st.OS[t] = core.VarSet(r.Get(kb))
	}
	return st
}
