package tm

import (
	"tmcheck/internal/core"

	"tmcheck/internal/pack"
)

// SeqState is the sequential TM's state: the set of threads whose current
// transaction has started (the paper's Status function, with membership
// meaning Status(t) = started).
type SeqState struct {
	Started core.ThreadSet
}

// Seq is the sequential TM of Algorithm 1: a command executes only when
// every other thread's transaction is finished, so transactions run one at
// a time; a thread scheduled while another transaction runs can only
// abort. The conflict function is constantly false — no contention manager
// is ever consulted.
type Seq struct {
	n, k int
}

// NewSeq returns the sequential TM for n threads and k variables.
func NewSeq(n, k int) *Seq {
	CheckBounds(n, k)
	return &Seq{n: n, k: k}
}

// Name implements Algorithm.
func (s *Seq) Name() string { return "seq" }

// Threads implements Algorithm.
func (s *Seq) Threads() int { return s.n }

// Vars implements Algorithm.
func (s *Seq) Vars() int { return s.k }

// Initial implements Algorithm: every thread's status is finished.
func (s *Seq) Initial() State { return s.InitialP() }

// Conflict implements Algorithm: φ is constantly false.
func (s *Seq) Conflict(q State, c core.Command, t core.Thread) bool { return false }

// Steps implements Algorithm (the getSequential procedure).
func (s *Seq) Steps(q State, c core.Command, t core.Thread) []Step {
	var steps []Step
	s.StepsP(q.(SeqState), c, t, func(x XCmd, r Resp, next SeqState) {
		steps = append(steps, Step{X: x, R: r, Next: next})
	})
	return steps
}

// AbortStep implements Algorithm: the thread's status resets to finished.
func (s *Seq) AbortStep(q State, t core.Thread) State {
	return s.AbortStepP(q.(SeqState), t)
}

// PackedFor implements Packed.
func (s *Seq) PackedFor() string { return "seq" }

// InitialP implements Packed.
func (s *Seq) InitialP() SeqState { return SeqState{} }

// ConflictP implements Packed: φ is constantly false.
func (s *Seq) ConflictP(st SeqState, c core.Command, t core.Thread) bool { return false }

// StepsP implements Packed (the getSequential procedure).
func (s *Seq) StepsP(st SeqState, c core.Command, t core.Thread, yield func(XCmd, Resp, SeqState)) int {
	// A command executes only when all other threads are finished.
	if st.Started.Remove(t) != 0 {
		return 0
	}
	next := st
	switch c.Op {
	case core.OpRead, core.OpWrite:
		next.Started = next.Started.Add(t)
	case core.OpCommit:
		next.Started = next.Started.Remove(t)
	}
	yield(Base(c), Resp1, next)
	return 1
}

// AbortStepP implements Packed.
func (s *Seq) AbortStepP(st SeqState, t core.Thread) SeqState {
	st.Started = st.Started.Remove(t)
	return st
}

// StateBits implements Packed: one started bit per live thread.
func (s *Seq) StateBits() int { return s.n }

// EncodeState implements Packed.
func (s *Seq) EncodeState(st SeqState, w *pack.Writer) {
	w.Put(uint64(st.Started), uint(s.n))
}

// DecodeState implements Packed.
func (s *Seq) DecodeState(r *pack.Reader) SeqState {
	return SeqState{Started: core.ThreadSet(r.Get(uint(s.n)))}
}
