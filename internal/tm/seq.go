package tm

import (
	"tmcheck/internal/core"
)

// SeqState is the sequential TM's state: the set of threads whose current
// transaction has started (the paper's Status function, with membership
// meaning Status(t) = started).
type SeqState struct {
	Started core.ThreadSet
}

// Seq is the sequential TM of Algorithm 1: a command executes only when
// every other thread's transaction is finished, so transactions run one at
// a time; a thread scheduled while another transaction runs can only
// abort. The conflict function is constantly false — no contention manager
// is ever consulted.
type Seq struct {
	n, k int
}

// NewSeq returns the sequential TM for n threads and k variables.
func NewSeq(n, k int) *Seq {
	CheckBounds(n, k)
	return &Seq{n: n, k: k}
}

// Name implements Algorithm.
func (s *Seq) Name() string { return "seq" }

// Threads implements Algorithm.
func (s *Seq) Threads() int { return s.n }

// Vars implements Algorithm.
func (s *Seq) Vars() int { return s.k }

// Initial implements Algorithm: every thread's status is finished.
func (s *Seq) Initial() State { return SeqState{} }

// Conflict implements Algorithm: φ is constantly false.
func (s *Seq) Conflict(q State, c core.Command, t core.Thread) bool { return false }

// Steps implements Algorithm (the getSequential procedure).
func (s *Seq) Steps(q State, c core.Command, t core.Thread) []Step {
	st := q.(SeqState)
	// A command executes only when all other threads are finished.
	if st.Started.Remove(t) != 0 {
		return nil
	}
	next := st
	switch c.Op {
	case core.OpRead, core.OpWrite:
		next.Started = next.Started.Add(t)
	case core.OpCommit:
		next.Started = next.Started.Remove(t)
	}
	return []Step{{X: Base(c), R: Resp1, Next: next}}
}

// AbortStep implements Algorithm: the thread's status resets to finished.
func (s *Seq) AbortStep(q State, t core.Thread) State {
	st := q.(SeqState)
	st.Started = st.Started.Remove(t)
	return st
}
