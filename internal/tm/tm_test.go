package tm

import (
	"testing"

	"tmcheck/internal/core"
)

func TestXCmdStrings(t *testing.T) {
	for _, tc := range []struct {
		x    XCmd
		want string
	}{
		{XCmd{Kind: XRead, V: 0}, "(r,1)"},
		{XCmd{Kind: XWrite, V: 1}, "(w,2)"},
		{XCmd{Kind: XCommit}, "c"},
		{XCmd{Kind: XAbort}, "a"},
		{XCmd{Kind: XRLock, V: 0}, "(rl,1)"},
		{XCmd{Kind: XWLock, V: 1}, "(wl,2)"},
		{XCmd{Kind: XOwn, V: 0}, "(o,1)"},
		{XCmd{Kind: XValidate}, "v"},
		{XCmd{Kind: XLock, V: 1}, "(l,2)"},
		{XCmd{Kind: XRValidate}, "rv"},
		{XCmd{Kind: XChkLock}, "k"},
	} {
		if got := tc.x.String(); got != tc.want {
			t.Errorf("String(%v) = %q, want %q", tc.x.Kind, got, tc.want)
		}
	}
}

func TestBaseCommand(t *testing.T) {
	if Base(core.Read(1)) != (XCmd{Kind: XRead, V: 1}) {
		t.Error("Base(read) wrong")
	}
	if Base(core.Write(0)) != (XCmd{Kind: XWrite}) {
		t.Error("Base(write) wrong")
	}
	if Base(core.Commit()) != (XCmd{Kind: XCommit}) {
		t.Error("Base(commit) wrong")
	}
	if Base(core.Abort()) != (XCmd{Kind: XAbort}) {
		t.Error("Base(abort) wrong")
	}
}

func TestRespString(t *testing.T) {
	if RespPending.String() != "⊥" || Resp0.String() != "0" || Resp1.String() != "1" {
		t.Error("Resp strings wrong")
	}
}

func TestCheckBoundsPanics(t *testing.T) {
	for _, tc := range [][2]int{{0, 1}, {5, 1}, {1, 0}, {1, 17}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CheckBounds(%d,%d) did not panic", tc[0], tc[1])
				}
			}()
			CheckBounds(tc[0], tc[1])
		}()
	}
	CheckBounds(1, 1)
	CheckBounds(MaxThreads, 16)
}

// --- Sequential TM ---

func TestSeqMutualExclusion(t *testing.T) {
	s := NewSeq(2, 2)
	q := s.Initial()
	// Thread 1 starts a transaction.
	steps := s.Steps(q, core.Read(0), 0)
	if len(steps) != 1 || steps[0].R != Resp1 {
		t.Fatalf("Steps = %+v", steps)
	}
	q = steps[0].Next
	// Thread 2 cannot do anything while thread 1 runs.
	if got := s.Steps(q, core.Read(0), 1); got != nil {
		t.Errorf("thread 2 should be blocked, got %+v", got)
	}
	if got := s.Steps(q, core.Commit(), 1); got != nil {
		t.Errorf("thread 2 commit should be blocked, got %+v", got)
	}
	// Thread 1 commits; thread 2 may proceed.
	q = s.Steps(q, core.Commit(), 0)[0].Next
	if got := s.Steps(q, core.Write(1), 1); len(got) != 1 {
		t.Errorf("thread 2 should proceed after commit, got %+v", got)
	}
}

func TestSeqAbortResets(t *testing.T) {
	s := NewSeq(2, 1)
	q := s.Steps(s.Initial(), core.Write(0), 0)[0].Next
	q2 := s.AbortStep(q, 0)
	if q2 != s.Initial() {
		t.Errorf("abort should reset to initial, got %+v", q2)
	}
}

func TestSeqNeverConflicts(t *testing.T) {
	s := NewSeq(2, 2)
	if s.Conflict(s.Initial(), core.Write(0), 0) {
		t.Error("sequential TM must never report conflicts")
	}
}

// --- Two-phase locking ---

func TestTwoPLReadLocks(t *testing.T) {
	p := NewTwoPL(2, 2)
	q := p.Initial()
	// First read acquires a shared lock with response ⊥.
	steps := p.Steps(q, core.Read(0), 0)
	if len(steps) != 1 || steps[0].R != RespPending || steps[0].X.Kind != XRLock {
		t.Fatalf("Steps = %+v", steps)
	}
	q = steps[0].Next
	// The pending read then completes.
	steps = p.Steps(q, core.Read(0), 0)
	if len(steps) != 1 || steps[0].R != Resp1 || steps[0].X.Kind != XRead {
		t.Fatalf("continuation = %+v", steps)
	}
	// Both threads can hold shared locks.
	steps2 := p.Steps(q, core.Read(0), 1)
	if len(steps2) != 1 || steps2[0].X.Kind != XRLock {
		t.Errorf("second reader should acquire a shared lock, got %+v", steps2)
	}
	// But no other thread can write-lock a read-locked variable.
	if got := p.Steps(q, core.Write(0), 1); got != nil {
		t.Errorf("writer should be blocked by shared lock, got %+v", got)
	}
}

func TestTwoPLWriteLockExcludes(t *testing.T) {
	p := NewTwoPL(2, 2)
	q := p.Steps(p.Initial(), core.Write(0), 0)[0].Next // wlock v1 by t1
	if got := p.Steps(q, core.Read(0), 1); got != nil {
		t.Errorf("reader should be blocked by exclusive lock, got %+v", got)
	}
	if got := p.Steps(q, core.Write(0), 1); got != nil {
		t.Errorf("writer should be blocked by exclusive lock, got %+v", got)
	}
	// The other variable stays available.
	if got := p.Steps(q, core.Write(1), 1); len(got) != 1 {
		t.Errorf("other variable should be lockable, got %+v", got)
	}
}

func TestTwoPLUpgrade(t *testing.T) {
	p := NewTwoPL(2, 2)
	q := p.Steps(p.Initial(), core.Read(0), 0)[0].Next // rlock
	q = p.Steps(q, core.Read(0), 0)[0].Next            // read completes
	steps := p.Steps(q, core.Write(0), 0)              // upgrade
	if len(steps) != 1 || steps[0].X.Kind != XWLock {
		t.Fatalf("upgrade = %+v", steps)
	}
	// Upgrade is blocked if another thread shares the lock.
	qShared := p.Steps(q, core.Read(0), 1)[0].Next
	if got := p.Steps(qShared, core.Write(0), 0); got != nil {
		t.Errorf("upgrade should block on a second shared holder, got %+v", got)
	}
}

func TestTwoPLCommitReleasesLocks(t *testing.T) {
	p := NewTwoPL(2, 2)
	q := p.Steps(p.Initial(), core.Write(0), 0)[0].Next
	q = p.Steps(q, core.Write(0), 0)[0].Next // write completes
	q = p.Steps(q, core.Commit(), 0)[0].Next
	if q != p.Initial() {
		t.Errorf("commit should release all locks, got %+v", q)
	}
}

// --- DSTM ---

func TestDSTMOwnershipSteal(t *testing.T) {
	d := NewDSTM(2, 2)
	q := d.Initial()
	// t1 owns v1 via a write.
	q = d.Steps(q, core.Write(0), 0)[0].Next // own
	q = d.Steps(q, core.Write(0), 0)[0].Next // write completes
	st := q.(DSTMState)
	if !st.OS[0].Has(0) {
		t.Fatalf("t1 should own v1: %+v", st)
	}
	// t2 writing v1 is a conflict, and the own step aborts t1.
	if !d.Conflict(q, core.Write(0), 1) {
		t.Error("conflicting write should set φ")
	}
	steps := d.Steps(q, core.Write(0), 1)
	if len(steps) != 1 || steps[0].X.Kind != XOwn {
		t.Fatalf("steal = %+v", steps)
	}
	st = steps[0].Next.(DSTMState)
	if st.Status[0] != dstmAborted || st.OS[0] != 0 {
		t.Errorf("victim not aborted: %+v", st)
	}
	if !st.OS[1].Has(0) {
		t.Errorf("thief did not gain ownership: %+v", st)
	}
}

func TestDSTMAbortedThreadCanOnlyAbort(t *testing.T) {
	d := NewDSTM(2, 1)
	q := d.Initial()
	q = d.Steps(q, core.Write(0), 0)[0].Next // t1 owns v1
	q = d.Steps(q, core.Write(0), 1)[0].Next // t2 steals; t1 aborted
	for _, c := range []core.Command{core.Read(0), core.Write(0), core.Commit()} {
		if got := d.Steps(q, c, 0); got != nil {
			t.Errorf("aborted thread should have no %v steps, got %+v", c, got)
		}
	}
	// And φ must be false for it, so the abort is never blocked by a
	// contention manager.
	if d.Conflict(q, core.Write(0), 0) {
		t.Error("φ must be false for an aborted thread")
	}
}

func TestDSTMValidateAbortsOwnersOfReadVars(t *testing.T) {
	d := NewDSTM(2, 2)
	q := d.Initial()
	q = d.Steps(q, core.Read(0), 0)[0].Next  // t1 reads v1
	q = d.Steps(q, core.Write(0), 1)[0].Next // t2 owns v1
	// t1's commit is a conflict; its validate step aborts t2.
	if !d.Conflict(q, core.Commit(), 0) {
		t.Error("commit with read-ownership overlap should conflict")
	}
	steps := d.Steps(q, core.Commit(), 0)
	if len(steps) != 1 || steps[0].X.Kind != XValidate {
		t.Fatalf("commit steps = %+v", steps)
	}
	st := steps[0].Next.(DSTMState)
	if st.Status[1] != dstmAborted {
		t.Errorf("owner of read variable should be aborted: %+v", st)
	}
	if st.Status[0] != dstmValidated {
		t.Errorf("committer should be validated: %+v", st)
	}
}

func TestDSTMCommitInvalidatesReaders(t *testing.T) {
	d := NewDSTM(2, 2)
	q := d.Initial()
	q = d.Steps(q, core.Read(0), 1)[0].Next  // t2 reads v1
	q = d.Steps(q, core.Write(0), 0)[0].Next // t1 owns v1
	q = d.Steps(q, core.Write(0), 0)[0].Next // write completes
	q = d.Steps(q, core.Commit(), 0)[0].Next // validate
	q = d.Steps(q, core.Commit(), 0)[0].Next // commit
	st := q.(DSTMState)
	if st.Status[1] != dstmInvalid {
		t.Errorf("reader should be invalid after overlapping commit: %+v", st)
	}
	// The invalid reader cannot perform new global reads or commit.
	if got := d.Steps(q, core.Read(1), 1); got != nil {
		t.Errorf("invalid thread should not read globally, got %+v", got)
	}
	if got := d.Steps(q, core.Commit(), 1); got != nil {
		t.Errorf("invalid thread should not commit, got %+v", got)
	}
	// But it can still write (acquire ownership).
	if got := d.Steps(q, core.Write(1), 1); len(got) != 1 {
		t.Errorf("invalid thread should still write, got %+v", got)
	}
}

// --- TL2 ---

func TestTL2WritesAreBuffered(t *testing.T) {
	l := NewTL2(2, 2)
	q := l.Steps(l.Initial(), core.Write(0), 0)[0].Next
	st := q.(TL2State)
	if !st.WS[0].Has(0) || st.LS[0] != 0 {
		t.Errorf("write should only extend ws: %+v", st)
	}
	// The writer reads its own buffered value.
	steps := l.Steps(q, core.Read(0), 0)
	if len(steps) != 1 || steps[0].Next.(TL2State).RS[0] != 0 {
		t.Errorf("own-write read should not extend rs: %+v", steps)
	}
}

func TestTL2CommitSequence(t *testing.T) {
	l := NewTL2(2, 2)
	q := l.Initial()
	q = l.Steps(q, core.Write(0), 0)[0].Next
	q = l.Steps(q, core.Write(1), 0)[0].Next
	// Commit: two lock steps (one per write variable), then validate.
	steps := l.Steps(q, core.Commit(), 0)
	if len(steps) != 2 {
		t.Fatalf("want 2 lock steps, got %+v", steps)
	}
	q = steps[0].Next
	steps = l.Steps(q, core.Commit(), 0)
	if len(steps) != 1 || steps[0].X.Kind != XLock {
		t.Fatalf("want second lock step, got %+v", steps)
	}
	q = steps[0].Next
	steps = l.Steps(q, core.Commit(), 0)
	if len(steps) != 1 || steps[0].X.Kind != XValidate {
		t.Fatalf("want validate, got %+v", steps)
	}
	q = steps[0].Next
	steps = l.Steps(q, core.Commit(), 0)
	if len(steps) != 1 || steps[0].X.Kind != XCommit || steps[0].R != Resp1 {
		t.Fatalf("want final commit, got %+v", steps)
	}
	if got := steps[0].Next.(TL2State); got != (TL2State{}) {
		t.Errorf("committer should reset (no other active threads): %+v", got)
	}
}

func TestTL2LockStealingAborts(t *testing.T) {
	l := NewTL2(2, 1)
	q := l.Initial()
	q = l.Steps(q, core.Write(0), 0)[0].Next // t1 buffers write
	q = l.Steps(q, core.Commit(), 0)[0].Next // t1 locks v1
	q = l.Steps(q, core.Write(0), 1)[0].Next // t2 buffers write
	// t2's commit conflicts (v1 locked by t1).
	if !l.Conflict(q, core.Commit(), 1) {
		t.Error("commit against held lock should conflict")
	}
	steps := l.Steps(q, core.Commit(), 1)
	if len(steps) != 1 || steps[0].X.Kind != XLock {
		t.Fatalf("steal = %+v", steps)
	}
	st := steps[0].Next.(TL2State)
	if st.Status[0] != tl2Aborted {
		t.Errorf("victim should be aborted: %+v", st)
	}
}

func TestTL2StaleReadAbortEnabled(t *testing.T) {
	l := NewTL2(2, 2)
	q := l.Initial()
	// t2 becomes active (reads v2), then t1 commits a write to v1.
	q = l.Steps(q, core.Read(1), 1)[0].Next
	q = l.Steps(q, core.Write(0), 0)[0].Next
	q = l.Steps(q, core.Commit(), 0)[0].Next // lock
	q = l.Steps(q, core.Commit(), 0)[0].Next // validate
	q = l.Steps(q, core.Commit(), 0)[0].Next // publish
	st := q.(TL2State)
	if !st.MS[1].Has(0) {
		t.Fatalf("modified set not propagated: %+v", st)
	}
	// t2's read of the modified variable is abort enabled.
	if got := l.Steps(q, core.Read(0), 1); got != nil {
		t.Errorf("stale read should have no steps, got %+v", got)
	}
	// Fresh variables remain readable.
	if got := l.Steps(q, core.Read(1), 1); len(got) != 1 {
		t.Errorf("unmodified variable should be readable, got %+v", got)
	}
}

func TestTL2ReadOfLockedVarAbortEnabled(t *testing.T) {
	l := NewTL2(2, 2)
	q := l.Initial()
	q = l.Steps(q, core.Write(0), 0)[0].Next
	q = l.Steps(q, core.Commit(), 0)[0].Next // t1 locks v1
	if got := l.Steps(q, core.Read(0), 1); got != nil {
		t.Errorf("read of a locked variable should have no steps, got %+v", got)
	}
}

func TestTL2ValidateRequiresUnlockedReadSet(t *testing.T) {
	l := NewTL2(2, 2)
	q := l.Initial()
	q = l.Steps(q, core.Read(1), 0)[0].Next  // t1 reads v2
	q = l.Steps(q, core.Write(1), 1)[0].Next // t2 buffers write to v2
	q = l.Steps(q, core.Commit(), 1)[0].Next // t2 locks v2
	// t1 commits read-only: validation must fail (v2 locked by t2), so the
	// commit is abort enabled.
	if got := l.Steps(q, core.Commit(), 0); got != nil {
		t.Errorf("validate with locked read set should fail, got %+v", got)
	}
}

// --- Modified TL2 ---

func TestTL2ModCommitSequence(t *testing.T) {
	l := NewTL2Mod(2, 2)
	q := l.Initial()
	q = l.Steps(q, core.Write(0), 0)[0].Next
	q = l.Steps(q, core.Commit(), 0)[0].Next // lock
	steps := l.Steps(q, core.Commit(), 0)
	if len(steps) != 1 || steps[0].X.Kind != XRValidate {
		t.Fatalf("want rvalidate, got %+v", steps)
	}
	q = steps[0].Next
	steps = l.Steps(q, core.Commit(), 0)
	if len(steps) != 1 || steps[0].X.Kind != XChkLock {
		t.Fatalf("want chklock, got %+v", steps)
	}
	q = steps[0].Next
	steps = l.Steps(q, core.Commit(), 0)
	if len(steps) != 1 || steps[0].X.Kind != XCommit {
		t.Fatalf("want commit, got %+v", steps)
	}
}

func TestTL2ModWindow(t *testing.T) {
	// The unsafe window: t2 passes rvalidate, then t1 publishes a write to
	// t2's read set and releases its locks, then t2's chklock passes.
	l := NewTL2Mod(2, 2)
	q := l.Initial()
	q = l.Steps(q, core.Read(0), 1)[0].Next  // t2 reads v1
	q = l.Steps(q, core.Write(1), 1)[0].Next // t2 writes v2
	q = l.Steps(q, core.Commit(), 1)[0].Next // t2 locks v2
	q = l.Steps(q, core.Commit(), 1)[0].Next // t2 rvalidates
	q = l.Steps(q, core.Write(0), 0)[0].Next // t1 writes v1
	q = l.Steps(q, core.Commit(), 0)[0].Next // t1 locks v1
	q = l.Steps(q, core.Commit(), 0)[0].Next // t1 rvalidates
	q = l.Steps(q, core.Commit(), 0)[0].Next // t1 chklocks
	q = l.Steps(q, core.Commit(), 0)[0].Next // t1 publishes, releases locks
	// t2's chklock now passes despite its stale read of v1.
	steps := l.Steps(q, core.Commit(), 1)
	if len(steps) != 1 || steps[0].X.Kind != XChkLock {
		t.Fatalf("chklock should pass in the window, got %+v", steps)
	}
	q = steps[0].Next
	steps = l.Steps(q, core.Commit(), 1)
	if len(steps) != 1 || steps[0].X.Kind != XCommit {
		t.Fatalf("unsafe commit should complete, got %+v", steps)
	}
}

// --- Buggy variants ---

func TestTwoPLNoReadLockReadsFreely(t *testing.T) {
	p := NewTwoPLNoReadLock(2, 2)
	q := p.Steps(p.Initial(), core.Write(0), 1)[0].Next // t2 wlocks v1
	steps := p.Steps(q, core.Read(0), 0)
	if len(steps) != 1 || steps[0].R != Resp1 {
		t.Errorf("read should proceed without lock, got %+v", steps)
	}
}

func TestDSTMNoValidateCommitsBlindly(t *testing.T) {
	d := NewDSTMNoValidate(2, 2)
	q := d.Initial()
	q = d.Steps(q, core.Read(0), 0)[0].Next  // t1 reads v1
	q = d.Steps(q, core.Write(0), 1)[0].Next // t2 owns v1
	// t1 commits in one step, without validation.
	steps := d.Steps(q, core.Commit(), 0)
	if len(steps) != 1 || steps[0].X.Kind != XCommit || steps[0].R != Resp1 {
		t.Errorf("commit should be a single unvalidated step, got %+v", steps)
	}
}

// --- Contention managers ---

func TestAggressiveManager(t *testing.T) {
	var cm Aggressive
	p := cm.Initial()
	if _, ok := cm.Step(p, XCmd{Kind: XAbort}, 0); ok {
		t.Error("aggressive manager must not allow aborts")
	}
	if _, ok := cm.Step(p, XCmd{Kind: XOwn}, 0); !ok {
		t.Error("aggressive manager must allow non-aborts")
	}
}

func TestPoliteManager(t *testing.T) {
	var cm Polite
	p := cm.Initial()
	if _, ok := cm.Step(p, XCmd{Kind: XAbort}, 0); !ok {
		t.Error("polite manager must allow aborts")
	}
	if _, ok := cm.Step(p, XCmd{Kind: XOwn}, 0); ok {
		t.Error("polite manager must not allow non-aborts")
	}
}

func TestTimidManagerAlternates(t *testing.T) {
	var cm Timid
	p := cm.Initial()
	// First conflict: only abort allowed.
	if _, ok := cm.Step(p, XCmd{Kind: XOwn}, 0); ok {
		t.Error("timid manager should refuse the first push-through")
	}
	p2, ok := cm.Step(p, XCmd{Kind: XAbort}, 0)
	if !ok {
		t.Fatal("timid manager should allow the abort")
	}
	// Having backed off, the thread may push through once.
	p3, ok := cm.Step(p2, XCmd{Kind: XOwn}, 0)
	if !ok {
		t.Fatal("timid manager should allow push-through after back-off")
	}
	// The credit is spent.
	if _, ok := cm.Step(p3, XCmd{Kind: XOwn}, 0); ok {
		t.Error("push-through credit should be consumed")
	}
	// Credits are per thread.
	if _, ok := cm.Step(p2, XCmd{Kind: XOwn}, 1); ok {
		t.Error("thread 2 has no credit")
	}
}

func TestXCmdHasVar(t *testing.T) {
	for _, tc := range []struct {
		x    XCmd
		want bool
	}{
		{XCmd{Kind: XRead}, true},
		{XCmd{Kind: XWrite}, true},
		{XCmd{Kind: XRLock}, true},
		{XCmd{Kind: XWLock}, true},
		{XCmd{Kind: XOwn}, true},
		{XCmd{Kind: XLock}, true},
		{XCmd{Kind: XCommit}, false},
		{XCmd{Kind: XAbort}, false},
		{XCmd{Kind: XValidate}, false},
		{XCmd{Kind: XRValidate}, false},
		{XCmd{Kind: XChkLock}, false},
	} {
		if got := tc.x.HasVar(); got != tc.want {
			t.Errorf("HasVar(%v) = %v, want %v", tc.x.Kind, got, tc.want)
		}
	}
}

func TestRegistryNames(t *testing.T) {
	names := AlgorithmNames()
	if len(names) < 8 {
		t.Errorf("AlgorithmNames = %v", names)
	}
	for _, n := range names {
		alg, err := NewAlgorithm(n, 2, 2)
		if err != nil || alg.Name() == "" {
			t.Errorf("NewAlgorithm(%q): %v", n, err)
		}
	}
	if _, err := NewAlgorithm("bogus", 2, 2); err == nil {
		t.Error("bogus algorithm should error")
	}
	for _, n := range ManagerNames() {
		cm, err := NewContentionManager(n)
		if err != nil || cm.Name() != n {
			t.Errorf("NewContentionManager(%q): %v", n, err)
		}
	}
	if cm, err := NewContentionManager(""); err != nil || cm != nil {
		t.Error("empty manager name should yield nil, nil")
	}
	if _, err := NewContentionManager("bogus"); err == nil {
		t.Error("bogus manager should error")
	}
}
