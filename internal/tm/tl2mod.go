package tm

import (
	"tmcheck/internal/core"
)

// TL2Mod is the modified TL2 TM algorithm of §5.4: the atomic validate of
// Algorithm 4 is split into two separately atomic extended commands,
// rvalidate (the version-number half: rs(t) ∩ ms(t) = ∅) followed by
// chklock (the lock-bit half: no read variable locked by another thread),
// in that order. The published TL2 stores the version number and the lock
// bit in one memory word, making the combined check atomic; splitting it
// with rvalidate first opens a window — another transaction can commit
// (bumping versions) and release its locks between the two checks — and
// the TM becomes unsafe. The paper's counterexample
//
//	(w,2)1, (w,1)2, (r,2)2, (r,1)1, c2, c1
//
// threads that window.
type TL2Mod struct {
	TL2
}

// NewTL2Mod returns the modified TL2 algorithm for n threads and k
// variables.
func NewTL2Mod(n, k int) *TL2Mod {
	CheckBounds(n, k)
	return &TL2Mod{TL2{n: n, k: k}}
}

// Name implements Algorithm.
func (l *TL2Mod) Name() string { return "modtl2" }

// Steps implements Algorithm: identical to TL2 except for the commit
// sequence lock* · rvalidate · chklock · commit.
func (l *TL2Mod) Steps(q State, c core.Command, t core.Thread) []Step {
	var steps []Step
	l.StepsP(q.(TL2State), c, t, func(x XCmd, r Resp, next TL2State) {
		steps = append(steps, Step{X: x, R: r, Next: next})
	})
	return steps
}

// PackedFor implements Packed: the embedded TL2's typed steppers are
// overridden here, so the packed path is valid for this name too.
func (l *TL2Mod) PackedFor() string { return "modtl2" }

// StepsP implements Packed, mirroring Steps.
func (l *TL2Mod) StepsP(st TL2State, c core.Command, t core.Thread, yield func(XCmd, Resp, TL2State)) int {
	if c.Op != core.OpCommit {
		return l.TL2.StepsP(st, c, t, yield)
	}
	ti := int(t)
	switch st.Status[ti] {
	case tl2Finished:
		count := 0
		for v := core.Var(0); int(v) < l.k; v++ {
			if !st.WS[ti].Has(v) || st.LS[ti].Has(v) {
				continue
			}
			next := st
			next.LS[ti] = next.LS[ti].Add(v)
			for u := 0; u < l.n; u++ {
				if u != ti && st.LS[u].Has(v) {
					next.Status[u] = tl2Aborted
				}
			}
			yield(XCmd{Kind: XLock, V: v}, RespPending, next)
			count++
		}
		// rvalidate: only the version half of TL2's validation.
		if st.WS[ti] == st.LS[ti] && !st.RS[ti].Intersects(st.MS[ti]) {
			next := st
			next.Status[ti] = tl2RValidated
			yield(XCmd{Kind: XRValidate}, RespPending, next)
			count++
		}
		return count
	case tl2RValidated:
		// chklock: the lock half, atomically separate from rvalidate.
		if !tl2ChkLockOnly(l.n, st, ti) {
			return 0
		}
		next := st
		next.Status[ti] = tl2Validated
		yield(XCmd{Kind: XChkLock}, RespPending, next)
		return 1
	case tl2Validated:
		next := st
		tl2Publish(l.n, &next, ti)
		yield(XCmd{Kind: XCommit}, Resp1, next)
		return 1
	default:
		return 0
	}
}

// Conflict implements Algorithm: as in TL2, but a thread caught between
// rvalidate and chklock is also past the contention decision.
func (l *TL2Mod) Conflict(q State, c core.Command, t core.Thread) bool {
	return l.TL2.Conflict(q, c, t)
}
