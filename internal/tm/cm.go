package tm

import "tmcheck/internal/core"

// ContentionManager is the formalism of §3.1: a transition system over
// extended statements (d, t). When the TM algorithm reports a conflict for
// (c, t), only extended commands for which the contention manager has a
// transition may execute; outside conflicts the manager merely observes
// (its state advances when it has a matching transition, and stays put
// otherwise).
type ContentionManager interface {
	// Name identifies the manager (e.g. "aggressive").
	Name() string
	// Initial returns p_init. States must be comparable values.
	Initial() State
	// Step returns the successor state on (x, t) and whether δcm contains
	// such a transition at all.
	Step(p State, x XCmd, t core.Thread) (State, bool)
}

// cmUnit is the single state of the stateless contention managers.
type cmUnit struct{}

// Aggressive is the aggressive contention manager: it has a transition for
// every extended command except abort, so at a conflict the transaction is
// never allowed to abort itself — it must push through (aborting others as
// the TM's transition relation dictates).
type Aggressive struct{}

// Name implements ContentionManager.
func (Aggressive) Name() string { return "aggressive" }

// Initial implements ContentionManager.
func (Aggressive) Initial() State { return cmUnit{} }

// Step implements ContentionManager: every non-abort statement is allowed.
func (Aggressive) Step(p State, x XCmd, t core.Thread) (State, bool) {
	if x.Kind == XAbort {
		return p, false
	}
	return p, true
}

// Polite is the polite contention manager: its only transitions are aborts,
// so at a conflict the transaction must abort itself.
type Polite struct{}

// Name implements ContentionManager.
func (Polite) Name() string { return "polite" }

// Initial implements ContentionManager.
func (Polite) Initial() State { return cmUnit{} }

// Step implements ContentionManager: only abort statements are allowed.
func (Polite) Step(p State, x XCmd, t core.Thread) (State, bool) {
	if x.Kind == XAbort {
		return p, true
	}
	return p, false
}

// karmaState tracks a bounded per-thread work credit. It is a comparable
// value.
type karmaState struct {
	Credit [MaxThreads]uint8
}

// karmaMaxCredit bounds the credit counter so the manager stays finite
// state — the paper notes that unbounded managers (random backoff, true
// Karma priorities) would blow up the state space, which is why safety is
// proved manager-independently.
const karmaMaxCredit = 2

// Karma is a bounded abstraction of the Karma contention manager of
// Scherer and Scott: threads accumulate credit for work performed
// (completed reads, writes and commits, standing in for "objects opened")
// and spend it on the TM's internal acquisition steps (own, lock, rlock,
// wlock, validate, …) — the steps that resolve conflicts. At a conflict a
// thread without credit can only abort; an abort forfeits all credit.
// Unlike the real Karma — which compares priorities between attacker and
// victim — this abstraction consults only the attacker's own credit,
// which is all the formalism's manager interface can see; the bounded
// counter keeps it finite state, as the formalism requires (the paper
// notes unbounded managers would blow up the state space).
type Karma struct{}

// Name implements ContentionManager.
func (Karma) Name() string { return "karma" }

// Initial implements ContentionManager: one credit each, so a fresh
// thread can perform its first acquisition.
func (Karma) Initial() State {
	var s karmaState
	for t := range s.Credit {
		s.Credit[t] = 1
	}
	return s
}

// Step implements ContentionManager. Since the manager's state advances on
// matching statements both at and outside conflicts (the product rule),
// the accounting is uniform: base commands earn, internal steps spend,
// aborts forfeit.
func (Karma) Step(p State, x XCmd, t core.Thread) (State, bool) {
	s := p.(karmaState)
	switch x.Kind {
	case XAbort:
		s.Credit[t] = 0
		return s, true
	case XRead, XWrite, XCommit:
		if s.Credit[t] < karmaMaxCredit {
			s.Credit[t]++
		}
		return s, true
	default:
		if s.Credit[t] == 0 {
			return p, false
		}
		s.Credit[t]--
		return s, true
	}
}

// timidState tracks, per thread, whether the thread backed off (aborted at
// its last conflict). It is a comparable value.
type timidState struct {
	BackedOff core.ThreadSet
}

// Timid is a small stateful contention manager used in the ablation
// experiments: a thread must abort at its first conflict (politeness), but
// having backed off once it may push through the next conflict
// (aggressiveness), after which the cycle repeats. It exercises the
// product construction with a non-trivial manager state.
type Timid struct{}

// Name implements ContentionManager.
func (Timid) Name() string { return "timid" }

// Initial implements ContentionManager.
func (Timid) Initial() State { return timidState{} }

// Step implements ContentionManager.
func (Timid) Step(p State, x XCmd, t core.Thread) (State, bool) {
	s := p.(timidState)
	if x.Kind == XAbort {
		// Always willing to abort; remember the back-off.
		s.BackedOff = s.BackedOff.Add(t)
		return s, true
	}
	if s.BackedOff.Has(t) {
		// Earned the right to push through one conflict.
		s.BackedOff = s.BackedOff.Remove(t)
		return s, true
	}
	return p, false
}
