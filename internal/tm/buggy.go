package tm

import (
	"tmcheck/internal/core"
)

// Deliberately broken TM variants. They exercise the checker's
// counterexample generation and serve as ablations: each removes one
// ingredient of a verified TM and demonstrably loses the safety property.

// TwoPLNoReadLock is two-phase locking with the shared (read) locks
// removed: reads proceed without any lock, writes still take exclusive
// locks. Write-write conflicts remain ordered, but a reader can observe a
// value and then let the writer commit behind its back — the classic
// unserializable read skew.
type TwoPLNoReadLock struct {
	TwoPL
}

// NewTwoPLNoReadLock returns the broken 2PL variant for n threads and k
// variables.
func NewTwoPLNoReadLock(n, k int) *TwoPLNoReadLock {
	CheckBounds(n, k)
	return &TwoPLNoReadLock{TwoPL{n: n, k: k}}
}

// Name implements Algorithm.
func (p *TwoPLNoReadLock) Name() string { return "2pl-noreadlock" }

// Steps implements Algorithm: reads always complete immediately; all other
// commands behave as in 2PL.
func (p *TwoPLNoReadLock) Steps(q State, c core.Command, t core.Thread) []Step {
	var steps []Step
	p.StepsP(q.(TwoPLState), c, t, func(x XCmd, r Resp, next TwoPLState) {
		steps = append(steps, Step{X: x, R: r, Next: next})
	})
	return steps
}

// PackedFor implements Packed: the embedded TwoPL's typed steppers are
// overridden here, keeping the packed path valid for this variant.
func (p *TwoPLNoReadLock) PackedFor() string { return "2pl-noreadlock" }

// StepsP implements Packed, mirroring Steps.
func (p *TwoPLNoReadLock) StepsP(st TwoPLState, c core.Command, t core.Thread, yield func(XCmd, Resp, TwoPLState)) int {
	if c.Op != core.OpRead {
		return p.TwoPL.StepsP(st, c, t, yield)
	}
	// A read never blocks and never locks — the bug.
	yield(Base(c), Resp1, st)
	return 1
}

// DSTMNoValidate is DSTM with read validation removed entirely: a commit
// publishes immediately — without the validate step — and, crucially,
// without invalidating the readers of the published write set. (Removing
// only the validate step is not enough to break DSTM: the invalid marking
// at commit models DSTM's per-open read validation, which is what actually
// protects readers.) A transaction can then keep acting on a stale
// snapshot and commit it.
type DSTMNoValidate struct {
	DSTM
}

// NewDSTMNoValidate returns the broken DSTM variant for n threads and k
// variables.
func NewDSTMNoValidate(n, k int) *DSTMNoValidate {
	CheckBounds(n, k)
	return &DSTMNoValidate{DSTM{n: n, k: k}}
}

// Name implements Algorithm.
func (d *DSTMNoValidate) Name() string { return "dstm-novalidate" }

// Steps implements Algorithm: commit publishes in a single step with no
// validation; reads and writes behave as in DSTM.
func (d *DSTMNoValidate) Steps(q State, c core.Command, t core.Thread) []Step {
	var steps []Step
	d.StepsP(q.(DSTMState), c, t, func(x XCmd, r Resp, next DSTMState) {
		steps = append(steps, Step{X: x, R: r, Next: next})
	})
	return steps
}

// PackedFor implements Packed: the embedded DSTM's typed steppers are
// overridden here, keeping the packed path valid for this variant.
func (d *DSTMNoValidate) PackedFor() string { return "dstm-novalidate" }

// StepsP implements Packed, mirroring Steps.
func (d *DSTMNoValidate) StepsP(st DSTMState, c core.Command, t core.Thread, yield func(XCmd, Resp, DSTMState)) int {
	if c.Op != core.OpCommit {
		return d.DSTM.StepsP(st, c, t, yield)
	}
	ti := int(t)
	if st.Status[ti] == dstmAborted {
		return 0
	}
	if st.Status[ti] != dstmFinished {
		return 0
	}
	next := st
	next.RS[ti] = 0
	next.OS[ti] = 0
	// The bug: readers of the committed write set are left untouched.
	yield(Base(c), Resp1, next)
	return 1
}

// Conflict implements Algorithm: without validation, only the write
// conflict remains.
func (d *DSTMNoValidate) Conflict(q State, c core.Command, t core.Thread) bool {
	return d.ConflictP(q.(DSTMState), c, t)
}

// ConflictP implements Packed, mirroring Conflict.
func (d *DSTMNoValidate) ConflictP(st DSTMState, c core.Command, t core.Thread) bool {
	if c.Op == core.OpCommit {
		return false
	}
	return d.DSTM.ConflictP(st, c, t)
}
