package tm

import (
	"tmcheck/internal/core"
)

// Deliberately broken TM variants. They exercise the checker's
// counterexample generation and serve as ablations: each removes one
// ingredient of a verified TM and demonstrably loses the safety property.

// TwoPLNoReadLock is two-phase locking with the shared (read) locks
// removed: reads proceed without any lock, writes still take exclusive
// locks. Write-write conflicts remain ordered, but a reader can observe a
// value and then let the writer commit behind its back — the classic
// unserializable read skew.
type TwoPLNoReadLock struct {
	TwoPL
}

// NewTwoPLNoReadLock returns the broken 2PL variant for n threads and k
// variables.
func NewTwoPLNoReadLock(n, k int) *TwoPLNoReadLock {
	CheckBounds(n, k)
	return &TwoPLNoReadLock{TwoPL{n: n, k: k}}
}

// Name implements Algorithm.
func (p *TwoPLNoReadLock) Name() string { return "2pl-noreadlock" }

// Steps implements Algorithm: reads always complete immediately; all other
// commands behave as in 2PL.
func (p *TwoPLNoReadLock) Steps(q State, c core.Command, t core.Thread) []Step {
	if c.Op != core.OpRead {
		return p.TwoPL.Steps(q, c, t)
	}
	st := q.(TwoPLState)
	// A read never blocks and never locks — the bug.
	return []Step{{X: Base(c), R: Resp1, Next: st}}
}

// DSTMNoValidate is DSTM with read validation removed entirely: a commit
// publishes immediately — without the validate step — and, crucially,
// without invalidating the readers of the published write set. (Removing
// only the validate step is not enough to break DSTM: the invalid marking
// at commit models DSTM's per-open read validation, which is what actually
// protects readers.) A transaction can then keep acting on a stale
// snapshot and commit it.
type DSTMNoValidate struct {
	DSTM
}

// NewDSTMNoValidate returns the broken DSTM variant for n threads and k
// variables.
func NewDSTMNoValidate(n, k int) *DSTMNoValidate {
	CheckBounds(n, k)
	return &DSTMNoValidate{DSTM{n: n, k: k}}
}

// Name implements Algorithm.
func (d *DSTMNoValidate) Name() string { return "dstm-novalidate" }

// Steps implements Algorithm: commit publishes in a single step with no
// validation; reads and writes behave as in DSTM.
func (d *DSTMNoValidate) Steps(q State, c core.Command, t core.Thread) []Step {
	if c.Op != core.OpCommit {
		return d.DSTM.Steps(q, c, t)
	}
	st := q.(DSTMState)
	ti := int(t)
	if st.Status[ti] == dstmAborted {
		return nil
	}
	if st.Status[ti] != dstmFinished {
		return nil
	}
	next := st
	next.RS[ti] = 0
	next.OS[ti] = 0
	// The bug: readers of the committed write set are left untouched.
	return []Step{{X: Base(c), R: Resp1, Next: next}}
}

// Conflict implements Algorithm: without validation, only the write
// conflict remains.
func (d *DSTMNoValidate) Conflict(q State, c core.Command, t core.Thread) bool {
	if c.Op == core.OpCommit {
		return false
	}
	return d.DSTM.Conflict(q, c, t)
}
