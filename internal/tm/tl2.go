package tm

import (
	"tmcheck/internal/core"

	"tmcheck/internal/pack"
)

// TL2 thread statuses (Algorithm 4, plus rvalidated for the modified
// variant of §5.4).
const (
	tl2Finished uint8 = iota
	tl2Aborted
	tl2Validated
	tl2RValidated // modified TL2 only: version check passed, lock check pending
)

// TL2State is the TL2 state: per-thread status, read set, write set, lock
// set, and modified set (the model of version numbers: a committing
// transaction adds its write set to the modified set of every thread with
// an active transaction).
type TL2State struct {
	Status [MaxThreads]uint8
	RS     [MaxThreads]core.VarSet
	WS     [MaxThreads]core.VarSet
	LS     [MaxThreads]core.VarSet
	MS     [MaxThreads]core.VarSet
}

// TL2 is transactional locking 2 (Dice, Shalev, Shavit, DISC 2006) as
// modeled by Algorithm 4. Writes are buffered; commit locks the write set
// (stealing locks aborts their holders), validates — atomically checking
// that no read variable was modified since the transaction started and
// that no read variable is locked by another thread — and publishes.
//
// Interpretation notes (see DESIGN.md): the paper's validate branch
// mentions an ownership set TL2 does not have; we read the intended check
// as "no read variable is locked by another thread", the lock-bit half of
// TL2's atomic version-and-lock word. The commit branch's "rs(t) ∪ ws(t)"
// guard is read as rs(u) ∪ ws(u): the write set joins the modified set of
// every thread with an active transaction.
type TL2 struct {
	n, k int
}

// NewTL2 returns the TL2 algorithm for n threads and k variables.
func NewTL2(n, k int) *TL2 {
	CheckBounds(n, k)
	return &TL2{n: n, k: k}
}

// Name implements Algorithm.
func (l *TL2) Name() string { return "tl2" }

// Threads implements Algorithm.
func (l *TL2) Threads() int { return l.n }

// Vars implements Algorithm.
func (l *TL2) Vars() int { return l.k }

// Initial implements Algorithm.
func (l *TL2) Initial() State { return l.InitialP() }

// Conflict implements Algorithm: φ(q, (c, t)) is true when c is a commit
// and some write-set variable is locked by another thread — the point
// where a contention manager decides between stealing the lock and
// aborting. A thread already aborted by a lock thief has no decision to
// make (it can only abort), so φ is false for it; the paper's own
// livelock counterexample for DSTM requires this reading.
func (l *TL2) Conflict(q State, c core.Command, t core.Thread) bool {
	return l.ConflictP(q.(TL2State), c, t)
}

// ConflictP implements Packed.
func (l *TL2) ConflictP(st TL2State, c core.Command, t core.Thread) bool {
	ti := int(t)
	if c.Op != core.OpCommit || st.Status[ti] == tl2Aborted {
		return false
	}
	for u := 0; u < l.n; u++ {
		if u != ti && st.WS[ti].Intersects(st.LS[u]) {
			return true
		}
	}
	return false
}

// Steps implements Algorithm (the getTL2 procedure).
func (l *TL2) Steps(q State, c core.Command, t core.Thread) []Step {
	var steps []Step
	l.StepsP(q.(TL2State), c, t, func(x XCmd, r Resp, next TL2State) {
		steps = append(steps, Step{X: x, R: r, Next: next})
	})
	return steps
}

// StepsP implements Packed (the getTL2 procedure).
func (l *TL2) StepsP(st TL2State, c core.Command, t core.Thread, yield func(XCmd, Resp, TL2State)) int {
	ti := int(t)
	switch c.Op {
	case core.OpRead:
		v := c.V
		if st.WS[ti].Has(v) {
			yield(Base(c), Resp1, st)
			return 1
		}
		// A global read checks the variable's version-and-lock word, as in
		// the published TL2: it fails if the variable was modified since
		// the transaction began or if another thread holds its lock (a
		// committer between validation and publication).
		locked := false
		for u := 0; u < l.n; u++ {
			if u != ti && st.LS[u].Has(v) {
				locked = true
				break
			}
		}
		if !st.MS[ti].Has(v) && !locked {
			next := st
			next.RS[ti] = next.RS[ti].Add(v)
			yield(Base(c), Resp1, next)
			return 1
		}
		// The read is abort enabled.
		return 0
	case core.OpWrite:
		next := st
		next.WS[ti] = next.WS[ti].Add(c.V)
		yield(Base(c), Resp1, next)
		return 1
	case core.OpCommit:
		return l.commitStepsP(st, ti, yield)
	default:
		return 0
	}
}

func (l *TL2) commitStepsP(st TL2State, ti int, yield func(XCmd, Resp, TL2State)) int {
	switch st.Status[ti] {
	case tl2Finished:
		count := 0
		// Lock each write-set variable not yet locked, in ascending
		// order, stealing from (and thereby aborting) any current holder.
		for v := core.Var(0); int(v) < l.k; v++ {
			if !st.WS[ti].Has(v) || st.LS[ti].Has(v) {
				continue
			}
			next := st
			next.LS[ti] = next.LS[ti].Add(v)
			for u := 0; u < l.n; u++ {
				if u != ti && st.LS[u].Has(v) {
					next.Status[u] = tl2Aborted
				}
			}
			yield(XCmd{Kind: XLock, V: v}, RespPending, next)
			count++
		}
		// Validate once all locks are held: the read set must be
		// unmodified since the transaction began and unlocked by others.
		if st.WS[ti] == st.LS[ti] && tl2ValidateReads(l.n, st, ti) {
			next := st
			next.Status[ti] = tl2Validated
			yield(XCmd{Kind: XValidate}, RespPending, next)
			count++
		}
		return count
	case tl2Validated:
		next := st
		tl2Publish(l.n, &next, ti)
		yield(XCmd{Kind: XCommit}, Resp1, next)
		return 1
	default:
		// Aborted (or mid-validation in the modified variant): nothing to
		// do here.
		return 0
	}
}

// tl2ValidateReads checks rs(t) ∩ ms(t) = ∅ and that no other thread holds
// a lock on a variable in rs(t).
func tl2ValidateReads(n int, st TL2State, ti int) bool {
	if st.RS[ti].Intersects(st.MS[ti]) {
		return false
	}
	for u := 0; u < n; u++ {
		if u != ti && st.RS[ti].Intersects(st.LS[u]) {
			return false
		}
	}
	return true
}

// tl2ChkLockOnly checks only the lock half of validation: no other thread
// holds a lock on a variable in rs(t). The modified TL2 runs it as a
// separate atomic step after the version half.
func tl2ChkLockOnly(n int, st TL2State, ti int) bool {
	for u := 0; u < n; u++ {
		if u != ti && st.RS[ti].Intersects(st.LS[u]) {
			return false
		}
	}
	return true
}

// tl2Publish performs the d = commit effect: the write set joins the
// modified set of every other thread with an active transaction, and the
// committing thread resets.
func tl2Publish(n int, st *TL2State, ti int) {
	for u := 0; u < n; u++ {
		if u != ti && (st.RS[u] != 0 || st.WS[u] != 0) {
			st.MS[u] = st.MS[u].Union(st.WS[ti])
		}
	}
	st.Status[ti] = tl2Finished
	st.RS[ti] = 0
	st.WS[ti] = 0
	st.LS[ti] = 0
	st.MS[ti] = 0
}

// AbortStep implements Algorithm: the thread resets entirely.
func (l *TL2) AbortStep(q State, t core.Thread) State {
	return l.AbortStepP(q.(TL2State), t)
}

// AbortStepP implements Packed.
func (l *TL2) AbortStepP(st TL2State, t core.Thread) TL2State {
	st.Status[t] = tl2Finished
	st.RS[t] = 0
	st.WS[t] = 0
	st.LS[t] = 0
	st.MS[t] = 0
	return st
}

// PackedFor implements Packed. TL2Mod overrides it (it embeds TL2 and
// must not inherit TL2's typed steppers through promotion unchecked).
func (l *TL2) PackedFor() string { return "tl2" }

// InitialP implements Packed.
func (l *TL2) InitialP() TL2State { return TL2State{} }

// StateBits implements Packed: a 2-bit status and four k-bit sets per
// live thread.
func (l *TL2) StateBits() int { return l.n * (2 + 4*l.k) }

// EncodeState implements Packed.
func (l *TL2) EncodeState(st TL2State, w *pack.Writer) {
	kb := uint(l.k)
	for t := 0; t < l.n; t++ {
		w.Put(uint64(st.Status[t]), 2)
		w.Put(uint64(st.RS[t]), kb)
		w.Put(uint64(st.WS[t]), kb)
		w.Put(uint64(st.LS[t]), kb)
		w.Put(uint64(st.MS[t]), kb)
	}
}

// DecodeState implements Packed.
func (l *TL2) DecodeState(r *pack.Reader) TL2State {
	var st TL2State
	kb := uint(l.k)
	for t := 0; t < l.n; t++ {
		st.Status[t] = uint8(r.Get(2))
		st.RS[t] = core.VarSet(r.Get(kb))
		st.WS[t] = core.VarSet(r.Get(kb))
		st.LS[t] = core.VarSet(r.Get(kb))
		st.MS[t] = core.VarSet(r.Get(kb))
	}
	return st
}
