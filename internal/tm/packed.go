package tm

import (
	"tmcheck/internal/core"

	"tmcheck/internal/pack"
)

// Packed is the opt-in typed extension of Algorithm for the
// zero-allocation state-space core: an algorithm whose concrete state
// type S is known supplies yield-style steppers (no []Step slices, no
// interface boxing) and a bit-packed fixed-width encoding of S. The
// explorer dispatches on this interface and falls back to the generic
// boxed path for registry TMs that don't implement it.
//
// Contract: the typed methods must agree exactly — same transitions in
// the same order — with the untyped Algorithm methods. The built-in
// TMs guarantee this by construction: their untyped Steps/Conflict/
// AbortStep/Initial are thin delegates to the typed forms, so there is
// a single copy of each algorithm's logic. Each Steps spells out the
// collect-into-a-slice adapter inline (rather than through a shared
// generic helper) so the yield closure is passed to a known concrete
// method and stays stack-allocated — the boxed path is still the
// on-the-fly engines' hot loop.
//
// PackedFor returns the Name() of the algorithm the typed methods
// implement. It guards against Go's method promotion: a wrapper that
// embeds a built-in TM and overrides only the untyped Steps would
// silently inherit the parent's typed stepper with the wrong
// semantics. The explorer uses the packed path only when
// PackedFor() == Name(), so such a wrapper degrades to the generic
// path instead of silently exploring the parent's semantics. Every
// embedding variant in this package (TL2Mod, the buggy TMs) overrides
// both forms together.
type Packed[S comparable] interface {
	Algorithm
	// PackedFor names the algorithm the typed methods belong to; the
	// packed path is taken only when it equals Name().
	PackedFor() string
	// InitialP is Initial without boxing.
	InitialP() S
	// StepsP enumerates the transitions of Steps in identical order,
	// calling yield once per step, and returns the number of yields
	// (the abort rule needs the count even when the consumer filters).
	StepsP(q S, c core.Command, t core.Thread, yield func(x XCmd, r Resp, next S)) int
	// ConflictP is Conflict without boxing.
	ConflictP(q S, c core.Command, t core.Thread) bool
	// AbortStepP is AbortStep without boxing.
	AbortStepP(q S, t core.Thread) S
	// StateBits is the exact bit width of the encoding for this
	// instance's bounds (constant per algorithm value).
	StateBits() int
	// EncodeState writes exactly StateBits() bits for q.
	EncodeState(q S, w *pack.Writer)
	// DecodeState inverts EncodeState: DecodeState after EncodeState(q)
	// yields a state == q.
	DecodeState(r *pack.Reader) S
}

// PackedCM is the packed counterpart of ContentionManager: manager
// state is a word of CMBits() ≤ 64 bits. All built-in managers are
// tiny (aggressive and polite are stateless, karma is four 2-bit
// credits, timid one bit per thread), so the packed product keeps the
// manager inline in the state key. StepCM must agree exactly with
// Step, and DecodeCM must reproduce the boxed state Step would have
// produced (the fallback-equality tests check both).
type PackedCM interface {
	// CMBits is the exact encoding width (may be 0 for stateless
	// managers).
	CMBits() int
	// InitialCM encodes the initial state.
	InitialCM() uint64
	// StepCM mirrors ContentionManager.Step on encoded states.
	StepCM(p uint64, x XCmd, t core.Thread) (uint64, bool)
	// DecodeCM returns the boxed state encoded by p.
	DecodeCM(p uint64) State
}

// PackCM returns the packed counterpart of cm. A nil manager packs to
// (nil, true): the product simply has no manager factor. An unknown
// (user-registered) manager returns ok == false, sending the whole
// product to the generic path.
func PackCM(cm ContentionManager) (PackedCM, bool) {
	switch cm.(type) {
	case nil:
		return nil, true
	case Aggressive:
		return aggressivePacked{}, true
	case *Aggressive:
		return aggressivePacked{}, true
	case Polite:
		return politePacked{}, true
	case *Polite:
		return politePacked{}, true
	case Karma:
		return karmaPacked{}, true
	case *Karma:
		return karmaPacked{}, true
	case Timid:
		return timidPacked{}, true
	case *Timid:
		return timidPacked{}, true
	default:
		return nil, false
	}
}

type aggressivePacked struct{}

func (aggressivePacked) CMBits() int       { return 0 }
func (aggressivePacked) InitialCM() uint64 { return 0 }
func (aggressivePacked) StepCM(p uint64, x XCmd, t core.Thread) (uint64, bool) {
	return p, x.Kind != XAbort
}
func (aggressivePacked) DecodeCM(p uint64) State { return cmUnit{} }

type politePacked struct{}

func (politePacked) CMBits() int       { return 0 }
func (politePacked) InitialCM() uint64 { return 0 }
func (politePacked) StepCM(p uint64, x XCmd, t core.Thread) (uint64, bool) {
	return p, x.Kind == XAbort
}
func (politePacked) DecodeCM(p uint64) State { return cmUnit{} }

// karmaPacked packs the four bounded credits at 2 bits each
// (karmaMaxCredit = 2 < 4).
type karmaPacked struct{}

func (karmaPacked) CMBits() int { return 2 * MaxThreads }

func (karmaPacked) InitialCM() uint64 {
	var p uint64
	for t := 0; t < MaxThreads; t++ {
		p |= 1 << (2 * t)
	}
	return p
}

func (karmaPacked) StepCM(p uint64, x XCmd, t core.Thread) (uint64, bool) {
	sh := 2 * uint(t)
	credit := (p >> sh) & 3
	switch x.Kind {
	case XAbort:
		return p &^ (3 << sh), true
	case XRead, XWrite, XCommit:
		if credit < karmaMaxCredit {
			p += 1 << sh
		}
		return p, true
	default:
		if credit == 0 {
			return p, false
		}
		return p - 1<<sh, true
	}
}

func (karmaPacked) DecodeCM(p uint64) State {
	var s karmaState
	for t := 0; t < MaxThreads; t++ {
		s.Credit[t] = uint8((p >> (2 * uint(t))) & 3)
	}
	return s
}

// timidPacked packs the backed-off thread set at 1 bit per thread.
type timidPacked struct{}

func (timidPacked) CMBits() int       { return MaxThreads }
func (timidPacked) InitialCM() uint64 { return 0 }

func (timidPacked) StepCM(p uint64, x XCmd, t core.Thread) (uint64, bool) {
	bit := uint64(1) << uint(t)
	if x.Kind == XAbort {
		return p | bit, true
	}
	if p&bit != 0 {
		return p &^ bit, true
	}
	return p, false
}

func (timidPacked) DecodeCM(p uint64) State {
	return timidState{BackedOff: core.ThreadSet(p)}
}

// opaqueAlg hides everything but the Algorithm interface (embedding an
// interface promotes only its methods), so the explorer cannot see the
// typed extension and must take the generic path. Tests use it to pin
// packed/generic equivalence; it also models a registry TM that never
// opted in.
type opaqueAlg struct{ Algorithm }

// Opaque returns alg stripped to the plain Algorithm interface: the
// packed dispatch will not match it, forcing the generic boxed
// exploration path with identical semantics.
func Opaque(alg Algorithm) Algorithm { return opaqueAlg{alg} }

// opaqueCM hides everything but the ContentionManager interface.
type opaqueCM struct{ ContentionManager }

// OpaqueCM returns cm stripped to the plain ContentionManager
// interface, forcing the generic path for the whole product.
func OpaqueCM(cm ContentionManager) ContentionManager {
	if cm == nil {
		return nil
	}
	return opaqueCM{cm}
}
