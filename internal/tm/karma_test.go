package tm

import "testing"

func TestKarmaEarnSpend(t *testing.T) {
	var cm Karma
	p := cm.Initial()
	// Fresh threads hold one credit: the first acquisition succeeds.
	p2, ok := cm.Step(p, XCmd{Kind: XOwn}, 0)
	if !ok {
		t.Fatal("first acquisition should be allowed")
	}
	// Credit is spent: a second immediate acquisition is refused.
	if _, ok := cm.Step(p2, XCmd{Kind: XLock}, 0); ok {
		t.Fatal("second acquisition without earning should be refused")
	}
	// Completing the write earns the credit back.
	p3, ok := cm.Step(p2, XCmd{Kind: XWrite}, 0)
	if !ok {
		t.Fatal("base command must always be allowed")
	}
	if _, ok := cm.Step(p3, XCmd{Kind: XOwn}, 0); !ok {
		t.Fatal("acquisition after earning should be allowed")
	}
}

func TestKarmaAbortForfeits(t *testing.T) {
	var cm Karma
	p := cm.Initial()
	p, _ = cm.Step(p, XCmd{Kind: XRead}, 0) // credit 2 (capped)
	p, ok := cm.Step(p, XCmd{Kind: XAbort}, 0)
	if !ok {
		t.Fatal("abort must always be allowed")
	}
	// All credit gone: an acquisition is refused until something is
	// earned.
	if _, ok := cm.Step(p, XCmd{Kind: XOwn}, 0); ok {
		t.Fatal("acquisition after abort should be refused")
	}
}

func TestKarmaCreditIsPerThread(t *testing.T) {
	var cm Karma
	p := cm.Initial()
	p, _ = cm.Step(p, XCmd{Kind: XOwn}, 0) // thread 1 spends
	if _, ok := cm.Step(p, XCmd{Kind: XOwn}, 1); !ok {
		t.Fatal("thread 2's credit should be untouched")
	}
}

func TestKarmaCreditBounded(t *testing.T) {
	var cm Karma
	p := cm.Initial()
	for i := 0; i < 10; i++ {
		p, _ = cm.Step(p, XCmd{Kind: XRead}, 0)
	}
	s := p.(karmaState)
	if s.Credit[0] > karmaMaxCredit {
		t.Fatalf("credit %d exceeds bound %d", s.Credit[0], karmaMaxCredit)
	}
}
