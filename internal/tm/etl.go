package tm

import (
	"tmcheck/internal/core"

	"tmcheck/internal/pack"
)

// ETLState is the encounter-time-locking state: per-thread status,
// read/write/modified sets, and per-thread lock sets. Unlike TL2, the
// write lock is taken when the write executes, not at commit.
type ETLState struct {
	Status [MaxThreads]uint8 // reuses the TL2 status values
	RS     [MaxThreads]core.VarSet
	WS     [MaxThreads]core.VarSet
	LS     [MaxThreads]core.VarSet
	MS     [MaxThreads]core.VarSet
}

// ETL models an encounter-time-locking STM in write-back mode (the
// TinySTM family): a write immediately acquires the variable's lock —
// stealing it aborts the holder, a contention-manager decision — and
// buffers the value; reads check the version-and-lock word as in TL2;
// commit only validates the read set and publishes (all locks are already
// held). Version numbers are abstracted by modified sets exactly as in
// the TL2 model.
type ETL struct {
	n, k int
}

// NewETL returns the ETL algorithm for n threads and k variables.
func NewETL(n, k int) *ETL {
	CheckBounds(n, k)
	return &ETL{n: n, k: k}
}

// Name implements Algorithm.
func (e *ETL) Name() string { return "etl" }

// Threads implements Algorithm.
func (e *ETL) Threads() int { return e.n }

// Vars implements Algorithm.
func (e *ETL) Vars() int { return e.k }

// Initial implements Algorithm.
func (e *ETL) Initial() State { return e.InitialP() }

// Conflict implements Algorithm: writing a variable locked by another
// thread is the contention point (steal or abort, the manager decides).
func (e *ETL) Conflict(q State, c core.Command, t core.Thread) bool {
	return e.ConflictP(q.(ETLState), c, t)
}

// ConflictP implements Packed.
func (e *ETL) ConflictP(st ETLState, c core.Command, t core.Thread) bool {
	ti := int(t)
	if st.Status[ti] == tl2Aborted || c.Op != core.OpWrite {
		return false
	}
	for u := 0; u < e.n; u++ {
		if u != ti && st.LS[u].Has(c.V) {
			return true
		}
	}
	return false
}

// Steps implements Algorithm.
func (e *ETL) Steps(q State, c core.Command, t core.Thread) []Step {
	var steps []Step
	e.StepsP(q.(ETLState), c, t, func(x XCmd, r Resp, next ETLState) {
		steps = append(steps, Step{X: x, R: r, Next: next})
	})
	return steps
}

// StepsP implements Packed.
func (e *ETL) StepsP(st ETLState, c core.Command, t core.Thread, yield func(XCmd, Resp, ETLState)) int {
	ti := int(t)
	if st.Status[ti] == tl2Aborted {
		return 0
	}
	switch c.Op {
	case core.OpRead:
		v := c.V
		if st.WS[ti].Has(v) {
			yield(Base(c), Resp1, st)
			return 1
		}
		locked := false
		for u := 0; u < e.n; u++ {
			if u != ti && st.LS[u].Has(v) {
				locked = true
				break
			}
		}
		if st.MS[ti].Has(v) || locked {
			return 0
		}
		next := st
		next.RS[ti] = next.RS[ti].Add(v)
		yield(Base(c), Resp1, next)
		return 1
	case core.OpWrite:
		v := c.V
		if st.WS[ti].Has(v) {
			yield(Base(c), Resp1, st)
			return 1
		}
		// Acquire the lock at encounter, stealing from (and aborting) any
		// current holder.
		next := st
		next.LS[ti] = next.LS[ti].Add(v)
		next.WS[ti] = next.WS[ti].Add(v)
		for u := 0; u < e.n; u++ {
			if u != ti && st.LS[u].Has(v) {
				next.Status[u] = tl2Aborted
			}
		}
		yield(XCmd{Kind: XWLock, V: v}, RespPending, next)
		return 1
	case core.OpCommit:
		switch st.Status[ti] {
		case tl2Finished:
			// Locks are already held; validate the read set.
			if !etlValidate(e.n, st, ti) {
				return 0
			}
			next := st
			next.Status[ti] = tl2Validated
			yield(XCmd{Kind: XValidate}, RespPending, next)
			return 1
		case tl2Validated:
			next := st
			for u := 0; u < e.n; u++ {
				if u != ti && (st.RS[u] != 0 || st.WS[u] != 0) {
					next.MS[u] = next.MS[u].Union(st.WS[ti])
				}
			}
			next.Status[ti] = tl2Finished
			next.RS[ti] = 0
			next.WS[ti] = 0
			next.LS[ti] = 0
			next.MS[ti] = 0
			yield(Base(c), Resp1, next)
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

func etlValidate(n int, st ETLState, ti int) bool {
	if st.RS[ti].Intersects(st.MS[ti]) {
		return false
	}
	for u := 0; u < n; u++ {
		if u != ti && st.RS[ti].Intersects(st.LS[u]) {
			return false
		}
	}
	return true
}

// AbortStep implements Algorithm.
func (e *ETL) AbortStep(q State, t core.Thread) State {
	return e.AbortStepP(q.(ETLState), t)
}

// AbortStepP implements Packed.
func (e *ETL) AbortStepP(st ETLState, t core.Thread) ETLState {
	st.Status[t] = tl2Finished
	st.RS[t] = 0
	st.WS[t] = 0
	st.LS[t] = 0
	st.MS[t] = 0
	return st
}

// PackedFor implements Packed.
func (e *ETL) PackedFor() string { return "etl" }

// InitialP implements Packed.
func (e *ETL) InitialP() ETLState { return ETLState{} }

// StateBits implements Packed: a 2-bit status and four k-bit sets per
// live thread, exactly the TL2 shape.
func (e *ETL) StateBits() int { return e.n * (2 + 4*e.k) }

// EncodeState implements Packed.
func (e *ETL) EncodeState(st ETLState, w *pack.Writer) {
	kb := uint(e.k)
	for t := 0; t < e.n; t++ {
		w.Put(uint64(st.Status[t]), 2)
		w.Put(uint64(st.RS[t]), kb)
		w.Put(uint64(st.WS[t]), kb)
		w.Put(uint64(st.LS[t]), kb)
		w.Put(uint64(st.MS[t]), kb)
	}
}

// DecodeState implements Packed.
func (e *ETL) DecodeState(r *pack.Reader) ETLState {
	var st ETLState
	kb := uint(e.k)
	for t := 0; t < e.n; t++ {
		st.Status[t] = uint8(r.Get(2))
		st.RS[t] = core.VarSet(r.Get(kb))
		st.WS[t] = core.VarSet(r.Get(kb))
		st.LS[t] = core.VarSet(r.Get(kb))
		st.MS[t] = core.VarSet(r.Get(kb))
	}
	return st
}
