package tm

import (
	"tmcheck/internal/core"
)

// NOrec thread statuses.
const (
	norecActive uint8 = iota
	norecCommitLocked
	norecValidated
)

// NOrecState is the NOrec state: per-thread read/write/modified sets, the
// per-thread status, and the identity of the thread holding the single
// global commit lock (none when GlobalLock is MaxThreads).
type NOrecState struct {
	Status     [MaxThreads]uint8
	RS         [MaxThreads]core.VarSet
	WS         [MaxThreads]core.VarSet
	MS         [MaxThreads]core.VarSet
	GlobalLock uint8 // MaxThreads when free
}

// NOrec models the "no ownership records" STM of Dalessandro, Spear and
// Scott (PPoPP 2010): writes are buffered; a single global sequence lock
// serializes commits; readers revalidate their whole read set whenever the
// global version changes. Value-based validation is abstracted the same
// way the paper abstracts TL2's version clock: a committing transaction
// adds its write set to the modified set of every active transaction, and
// a transaction whose read set intersects its modified set can no longer
// read or commit (its snapshot is gone).
//
// The conflict function is true when a thread wants to commit writes while
// another thread holds the commit lock — the only contention point NOrec
// has; a manager decides between waiting out (aborting self) and, in this
// model, there being nothing to steal, so the aggressive manager simply
// never lets the transaction abort itself (it retries from the program's
// perspective).
type NOrec struct {
	n, k int
}

// NewNOrec returns the NOrec algorithm for n threads and k variables.
func NewNOrec(n, k int) *NOrec {
	CheckBounds(n, k)
	return &NOrec{n: n, k: k}
}

// Name implements Algorithm.
func (m *NOrec) Name() string { return "norec" }

// Threads implements Algorithm.
func (m *NOrec) Threads() int { return m.n }

// Vars implements Algorithm.
func (m *NOrec) Vars() int { return m.k }

// Initial implements Algorithm.
func (m *NOrec) Initial() State { return NOrecState{GlobalLock: MaxThreads} }

// Conflict implements Algorithm: committing writes while another thread
// holds the global commit lock.
func (m *NOrec) Conflict(q State, c core.Command, t core.Thread) bool {
	st := q.(NOrecState)
	return c.Op == core.OpCommit &&
		st.Status[t] == norecActive &&
		st.WS[t] != 0 &&
		st.GlobalLock != uint8(MaxThreads) && st.GlobalLock != uint8(t)
}

// Steps implements Algorithm.
func (m *NOrec) Steps(q State, c core.Command, t core.Thread) []Step {
	st := q.(NOrecState)
	ti := int(t)
	switch c.Op {
	case core.OpRead:
		v := c.V
		if st.WS[ti].Has(v) {
			return []Step{{X: Base(c), R: Resp1, Next: st}}
		}
		// A snapshot that saw a concurrent commit over its read set is
		// dead; also, reads wait out a commit in progress (the sequence
		// lock is odd) — modeled as abort enabled while the lock is held
		// by another thread.
		if st.RS[ti].Intersects(st.MS[ti]) {
			return nil
		}
		if st.GlobalLock != uint8(MaxThreads) && st.GlobalLock != uint8(ti) {
			return nil
		}
		// Reading a freshly modified variable is fine only together with
		// revalidation; NOrec revalidates by value, which the set model
		// abstracts as: reading a variable modified since the snapshot
		// kills the transaction (conservative, like the TL2 model).
		if st.MS[ti].Has(v) {
			return nil
		}
		next := st
		next.RS[ti] = next.RS[ti].Add(v)
		return []Step{{X: Base(c), R: Resp1, Next: next}}
	case core.OpWrite:
		next := st
		next.WS[ti] = next.WS[ti].Add(c.V)
		return []Step{{X: Base(c), R: Resp1, Next: next}}
	case core.OpCommit:
		return m.commitSteps(st, ti)
	default:
		return nil
	}
}

func (m *NOrec) commitSteps(st NOrecState, ti int) []Step {
	switch st.Status[ti] {
	case norecActive:
		if st.WS[ti] == 0 {
			// Read-only fast path: valid snapshot ⇒ commit immediately.
			if st.RS[ti].Intersects(st.MS[ti]) {
				return nil
			}
			next := st
			next.RS[ti] = 0
			next.MS[ti] = 0
			return []Step{{X: Base(core.Commit()), R: Resp1, Next: next}}
		}
		// Writer: acquire the global sequence lock.
		if st.GlobalLock != uint8(MaxThreads) {
			return nil // held: abort enabled (φ is true here)
		}
		next := st
		next.GlobalLock = uint8(ti)
		next.Status[ti] = norecCommitLocked
		return []Step{{X: XCmd{Kind: XLock}, R: RespPending, Next: next}}
	case norecCommitLocked:
		// Validate under the lock.
		if st.RS[ti].Intersects(st.MS[ti]) {
			return nil
		}
		next := st
		next.Status[ti] = norecValidated
		return []Step{{X: XCmd{Kind: XValidate}, R: RespPending, Next: next}}
	case norecValidated:
		// Publish, bump every active snapshot's modified set, release.
		next := st
		for u := 0; u < m.n; u++ {
			if u != ti && (st.RS[u] != 0 || st.WS[u] != 0) {
				next.MS[u] = next.MS[u].Union(st.WS[ti])
			}
		}
		next.RS[ti] = 0
		next.WS[ti] = 0
		next.MS[ti] = 0
		next.Status[ti] = norecActive
		next.GlobalLock = uint8(MaxThreads)
		return []Step{{X: Base(core.Commit()), R: Resp1, Next: next}}
	default:
		return nil
	}
}

// AbortStep implements Algorithm: release the commit lock if held, reset
// the thread.
func (m *NOrec) AbortStep(q State, t core.Thread) State {
	st := q.(NOrecState)
	if st.GlobalLock == uint8(t) {
		st.GlobalLock = uint8(MaxThreads)
	}
	st.Status[t] = norecActive
	st.RS[t] = 0
	st.WS[t] = 0
	st.MS[t] = 0
	return st
}
