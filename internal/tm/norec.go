package tm

import (
	"tmcheck/internal/core"

	"tmcheck/internal/pack"
)

// NOrec thread statuses.
const (
	norecActive uint8 = iota
	norecCommitLocked
	norecValidated
)

// NOrecState is the NOrec state: per-thread read/write/modified sets, the
// per-thread status, and the identity of the thread holding the single
// global commit lock (none when GlobalLock is MaxThreads).
type NOrecState struct {
	Status     [MaxThreads]uint8
	RS         [MaxThreads]core.VarSet
	WS         [MaxThreads]core.VarSet
	MS         [MaxThreads]core.VarSet
	GlobalLock uint8 // MaxThreads when free
}

// NOrec models the "no ownership records" STM of Dalessandro, Spear and
// Scott (PPoPP 2010): writes are buffered; a single global sequence lock
// serializes commits; readers revalidate their whole read set whenever the
// global version changes. Value-based validation is abstracted the same
// way the paper abstracts TL2's version clock: a committing transaction
// adds its write set to the modified set of every active transaction, and
// a transaction whose read set intersects its modified set can no longer
// read or commit (its snapshot is gone).
//
// The conflict function is true when a thread wants to commit writes while
// another thread holds the commit lock — the only contention point NOrec
// has; a manager decides between waiting out (aborting self) and, in this
// model, there being nothing to steal, so the aggressive manager simply
// never lets the transaction abort itself (it retries from the program's
// perspective).
type NOrec struct {
	n, k int
}

// NewNOrec returns the NOrec algorithm for n threads and k variables.
func NewNOrec(n, k int) *NOrec {
	CheckBounds(n, k)
	return &NOrec{n: n, k: k}
}

// Name implements Algorithm.
func (m *NOrec) Name() string { return "norec" }

// Threads implements Algorithm.
func (m *NOrec) Threads() int { return m.n }

// Vars implements Algorithm.
func (m *NOrec) Vars() int { return m.k }

// Initial implements Algorithm.
func (m *NOrec) Initial() State { return m.InitialP() }

// Conflict implements Algorithm: committing writes while another thread
// holds the global commit lock.
func (m *NOrec) Conflict(q State, c core.Command, t core.Thread) bool {
	return m.ConflictP(q.(NOrecState), c, t)
}

// ConflictP implements Packed.
func (m *NOrec) ConflictP(st NOrecState, c core.Command, t core.Thread) bool {
	return c.Op == core.OpCommit &&
		st.Status[t] == norecActive &&
		st.WS[t] != 0 &&
		st.GlobalLock != uint8(MaxThreads) && st.GlobalLock != uint8(t)
}

// Steps implements Algorithm.
func (m *NOrec) Steps(q State, c core.Command, t core.Thread) []Step {
	var steps []Step
	m.StepsP(q.(NOrecState), c, t, func(x XCmd, r Resp, next NOrecState) {
		steps = append(steps, Step{X: x, R: r, Next: next})
	})
	return steps
}

// StepsP implements Packed.
func (m *NOrec) StepsP(st NOrecState, c core.Command, t core.Thread, yield func(XCmd, Resp, NOrecState)) int {
	ti := int(t)
	switch c.Op {
	case core.OpRead:
		v := c.V
		if st.WS[ti].Has(v) {
			yield(Base(c), Resp1, st)
			return 1
		}
		// A snapshot that saw a concurrent commit over its read set is
		// dead; also, reads wait out a commit in progress (the sequence
		// lock is odd) — modeled as abort enabled while the lock is held
		// by another thread.
		if st.RS[ti].Intersects(st.MS[ti]) {
			return 0
		}
		if st.GlobalLock != uint8(MaxThreads) && st.GlobalLock != uint8(ti) {
			return 0
		}
		// Reading a freshly modified variable is fine only together with
		// revalidation; NOrec revalidates by value, which the set model
		// abstracts as: reading a variable modified since the snapshot
		// kills the transaction (conservative, like the TL2 model).
		if st.MS[ti].Has(v) {
			return 0
		}
		next := st
		next.RS[ti] = next.RS[ti].Add(v)
		yield(Base(c), Resp1, next)
		return 1
	case core.OpWrite:
		next := st
		next.WS[ti] = next.WS[ti].Add(c.V)
		yield(Base(c), Resp1, next)
		return 1
	case core.OpCommit:
		return m.commitStepsP(st, ti, yield)
	default:
		return 0
	}
}

func (m *NOrec) commitStepsP(st NOrecState, ti int, yield func(XCmd, Resp, NOrecState)) int {
	switch st.Status[ti] {
	case norecActive:
		if st.WS[ti] == 0 {
			// Read-only fast path: valid snapshot ⇒ commit immediately.
			if st.RS[ti].Intersects(st.MS[ti]) {
				return 0
			}
			next := st
			next.RS[ti] = 0
			next.MS[ti] = 0
			yield(Base(core.Commit()), Resp1, next)
			return 1
		}
		// Writer: acquire the global sequence lock.
		if st.GlobalLock != uint8(MaxThreads) {
			return 0 // held: abort enabled (φ is true here)
		}
		next := st
		next.GlobalLock = uint8(ti)
		next.Status[ti] = norecCommitLocked
		yield(XCmd{Kind: XLock}, RespPending, next)
		return 1
	case norecCommitLocked:
		// Validate under the lock.
		if st.RS[ti].Intersects(st.MS[ti]) {
			return 0
		}
		next := st
		next.Status[ti] = norecValidated
		yield(XCmd{Kind: XValidate}, RespPending, next)
		return 1
	case norecValidated:
		// Publish, bump every active snapshot's modified set, release.
		next := st
		for u := 0; u < m.n; u++ {
			if u != ti && (st.RS[u] != 0 || st.WS[u] != 0) {
				next.MS[u] = next.MS[u].Union(st.WS[ti])
			}
		}
		next.RS[ti] = 0
		next.WS[ti] = 0
		next.MS[ti] = 0
		next.Status[ti] = norecActive
		next.GlobalLock = uint8(MaxThreads)
		yield(Base(core.Commit()), Resp1, next)
		return 1
	default:
		return 0
	}
}

// AbortStep implements Algorithm: release the commit lock if held, reset
// the thread.
func (m *NOrec) AbortStep(q State, t core.Thread) State {
	return m.AbortStepP(q.(NOrecState), t)
}

// AbortStepP implements Packed.
func (m *NOrec) AbortStepP(st NOrecState, t core.Thread) NOrecState {
	if st.GlobalLock == uint8(t) {
		st.GlobalLock = uint8(MaxThreads)
	}
	st.Status[t] = norecActive
	st.RS[t] = 0
	st.WS[t] = 0
	st.MS[t] = 0
	return st
}

// PackedFor implements Packed.
func (m *NOrec) PackedFor() string { return "norec" }

// InitialP implements Packed.
func (m *NOrec) InitialP() NOrecState { return NOrecState{GlobalLock: MaxThreads} }

// StateBits implements Packed: a 2-bit status and three k-bit sets per
// live thread, plus the global-lock holder (n live threads or free).
func (m *NOrec) StateBits() int {
	return m.n*(2+3*m.k) + pack.BitsFor(m.n+1)
}

// EncodeState implements Packed. The free GlobalLock value MaxThreads
// is encoded as n, so the field fits BitsFor(n+1) bits for every n.
func (m *NOrec) EncodeState(st NOrecState, w *pack.Writer) {
	kb := uint(m.k)
	for t := 0; t < m.n; t++ {
		w.Put(uint64(st.Status[t]), 2)
		w.Put(uint64(st.RS[t]), kb)
		w.Put(uint64(st.WS[t]), kb)
		w.Put(uint64(st.MS[t]), kb)
	}
	gl := st.GlobalLock
	if gl == MaxThreads {
		gl = uint8(m.n)
	}
	w.Put(uint64(gl), uint(pack.BitsFor(m.n+1)))
}

// DecodeState implements Packed.
func (m *NOrec) DecodeState(r *pack.Reader) NOrecState {
	var st NOrecState
	kb := uint(m.k)
	for t := 0; t < m.n; t++ {
		st.Status[t] = uint8(r.Get(2))
		st.RS[t] = core.VarSet(r.Get(kb))
		st.WS[t] = core.VarSet(r.Get(kb))
		st.MS[t] = core.VarSet(r.Get(kb))
	}
	st.GlobalLock = MaxThreads
	if bits := uint(pack.BitsFor(m.n + 1)); bits > 0 {
		if gl := uint8(r.Get(bits)); int(gl) < m.n {
			st.GlobalLock = gl
		}
	}
	return st
}
