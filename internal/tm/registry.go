package tm

import (
	"fmt"
	"sort"
)

// algorithmFactories maps TM names to constructors.
var algorithmFactories = map[string]func(n, k int) Algorithm{
	"seq":             func(n, k int) Algorithm { return NewSeq(n, k) },
	"2pl":             func(n, k int) Algorithm { return NewTwoPL(n, k) },
	"dstm":            func(n, k int) Algorithm { return NewDSTM(n, k) },
	"tl2":             func(n, k int) Algorithm { return NewTL2(n, k) },
	"modtl2":          func(n, k int) Algorithm { return NewTL2Mod(n, k) },
	"norec":           func(n, k int) Algorithm { return NewNOrec(n, k) },
	"etl":             func(n, k int) Algorithm { return NewETL(n, k) },
	"2pl-noreadlock":  func(n, k int) Algorithm { return NewTwoPLNoReadLock(n, k) },
	"dstm-novalidate": func(n, k int) Algorithm { return NewDSTMNoValidate(n, k) },
}

// managerFactories maps contention-manager names to constructors.
var managerFactories = map[string]func() ContentionManager{
	"aggressive": func() ContentionManager { return Aggressive{} },
	"polite":     func() ContentionManager { return Polite{} },
	"karma":      func() ContentionManager { return Karma{} },
	"timid":      func() ContentionManager { return Timid{} },
}

// NewAlgorithm constructs a TM algorithm by name.
func NewAlgorithm(name string, n, k int) (Algorithm, error) {
	f, ok := algorithmFactories[name]
	if !ok {
		return nil, fmt.Errorf("tm: unknown algorithm %q (have %v)", name, AlgorithmNames())
	}
	return f(n, k), nil
}

// NewContentionManager constructs a contention manager by name; the empty
// name yields nil (no manager).
func NewContentionManager(name string) (ContentionManager, error) {
	if name == "" || name == "none" {
		return nil, nil
	}
	f, ok := managerFactories[name]
	if !ok {
		return nil, fmt.Errorf("tm: unknown contention manager %q (have %v)", name, ManagerNames())
	}
	return f(), nil
}

// AlgorithmNames lists the registered TM algorithms.
func AlgorithmNames() []string {
	var names []string
	for n := range algorithmFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ManagerNames lists the registered contention managers.
func ManagerNames() []string {
	var names []string
	for n := range managerFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
