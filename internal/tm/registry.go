package tm

import (
	"fmt"
	"sort"
	"sync"
)

// regMu guards both factory maps: RegisterAlgorithm lets tests and
// extensions add algorithms at runtime (e.g. deliberately broken TMs
// exercising the panic-isolation path), so lookups must synchronize
// with registration.
var regMu sync.Mutex

// algorithmFactories maps TM names to constructors.
var algorithmFactories = map[string]func(n, k int) Algorithm{
	"seq":             func(n, k int) Algorithm { return NewSeq(n, k) },
	"2pl":             func(n, k int) Algorithm { return NewTwoPL(n, k) },
	"dstm":            func(n, k int) Algorithm { return NewDSTM(n, k) },
	"tl2":             func(n, k int) Algorithm { return NewTL2(n, k) },
	"modtl2":          func(n, k int) Algorithm { return NewTL2Mod(n, k) },
	"norec":           func(n, k int) Algorithm { return NewNOrec(n, k) },
	"etl":             func(n, k int) Algorithm { return NewETL(n, k) },
	"2pl-noreadlock":  func(n, k int) Algorithm { return NewTwoPLNoReadLock(n, k) },
	"dstm-novalidate": func(n, k int) Algorithm { return NewDSTMNoValidate(n, k) },
}

// managerFactories maps contention-manager names to constructors.
var managerFactories = map[string]func() ContentionManager{
	"aggressive": func() ContentionManager { return Aggressive{} },
	"polite":     func() ContentionManager { return Polite{} },
	"karma":      func() ContentionManager { return Karma{} },
	"timid":      func() ContentionManager { return Timid{} },
}

// RegisterAlgorithm adds a TM algorithm constructor under the given
// name, making it reachable from every by-name entry point (the
// -alg flag, fuzzing campaigns, check-all drivers). Registering a name
// that already exists is an error — the built-in registry is not
// overridable.
func RegisterAlgorithm(name string, factory func(n, k int) Algorithm) error {
	if name == "" || factory == nil {
		return fmt.Errorf("tm: RegisterAlgorithm needs a name and a factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, exists := algorithmFactories[name]; exists {
		return fmt.Errorf("tm: algorithm %q already registered", name)
	}
	algorithmFactories[name] = factory
	return nil
}

// NewAlgorithm constructs a TM algorithm by name.
func NewAlgorithm(name string, n, k int) (Algorithm, error) {
	regMu.Lock()
	f, ok := algorithmFactories[name]
	regMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("tm: unknown algorithm %q (have %v)", name, AlgorithmNames())
	}
	return f(n, k), nil
}

// NewContentionManager constructs a contention manager by name; the empty
// name yields nil (no manager).
func NewContentionManager(name string) (ContentionManager, error) {
	if name == "" || name == "none" {
		return nil, nil
	}
	regMu.Lock()
	f, ok := managerFactories[name]
	regMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("tm: unknown contention manager %q (have %v)", name, ManagerNames())
	}
	return f(), nil
}

// AlgorithmNames lists the registered TM algorithms.
func AlgorithmNames() []string {
	regMu.Lock()
	defer regMu.Unlock()
	var names []string
	for n := range algorithmFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ManagerNames lists the registered contention managers.
func ManagerNames() []string {
	regMu.Lock()
	defer regMu.Unlock()
	var names []string
	for n := range managerFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
