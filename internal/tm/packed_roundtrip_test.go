package tm

import (
	"math/rand"
	"testing"

	"tmcheck/internal/core"
	"tmcheck/internal/pack"
)

// roundTrip drives the typed stepper over random walks (including the
// derived abort rule, so aborted shapes are reached too) and checks,
// for every distinct state seen, that EncodeState writes exactly
// StateBits() bits and DecodeState inverts it.
func roundTrip[S comparable](t *testing.T, p Packed[S], n int) {
	t.Helper()
	if got, want := p.PackedFor(), p.Name(); got != want {
		t.Fatalf("PackedFor() = %q, Name() = %q", got, want)
	}
	bits := p.StateBits()
	if bits <= 0 || bits > 64*pack.MaxWords {
		t.Fatalf("StateBits() = %d out of range (0, %d]", bits, 64*pack.MaxWords)
	}
	cmds := core.Alphabet{Threads: n, Vars: p.Vars()}.Commands()
	rng := rand.New(rand.NewSource(int64(bits)))
	states := map[S]bool{p.InitialP(): true}
	var succ []S
	for walk := 0; walk < 60; walk++ {
		cur := p.InitialP()
		for step := 0; step < 60; step++ {
			c := cmds[rng.Intn(len(cmds))]
			th := core.Thread(rng.Intn(n))
			succ = succ[:0]
			cnt := p.StepsP(cur, c, th, func(x XCmd, r Resp, next S) {
				succ = append(succ, next)
			})
			if cnt != len(succ) {
				t.Fatalf("StepsP returned %d but yielded %d", cnt, len(succ))
			}
			// The abort rule of §3: abort is possible exactly when the
			// command is abort enabled (no steps) or φ holds.
			if cnt == 0 || p.ConflictP(cur, c, th) {
				succ = append(succ, p.AbortStepP(cur, th))
			}
			cur = succ[rng.Intn(len(succ))]
			states[cur] = true
		}
	}
	// seq's whole space is 3 states at (2,2); anything below 2 means the
	// walk never left the initial state and the test is vacuous.
	if len(states) < 2 {
		t.Fatalf("random walks reached only %d states", len(states))
	}
	var buf [pack.MaxWords]uint64
	var w pack.Writer
	var r pack.Reader
	for q := range states {
		for i := range buf {
			buf[i] = 0
		}
		w.Reset(buf[:])
		p.EncodeState(q, &w)
		if w.Bits() != bits {
			t.Fatalf("EncodeState(%+v) wrote %d bits, StateBits() = %d", q, w.Bits(), bits)
		}
		r.Reset(buf[:])
		if got := p.DecodeState(&r); got != q {
			t.Fatalf("round trip mismatch:\n encoded %+v\n decoded %+v", q, got)
		}
	}
}

// TestPackingRoundTripAllRegistered quick-checks Decode(Encode(q)) == q
// over random-walk-reachable states for every registered TM: each
// built-in must implement the typed extension for its own name, and its
// encoding must be exact-width and injective on reached states.
func TestPackingRoundTripAllRegistered(t *testing.T) {
	for _, dim := range [][2]int{{2, 2}, {3, 1}, {2, 3}} {
		n, k := dim[0], dim[1]
		for _, name := range AlgorithmNames() {
			alg, err := NewAlgorithm(name, n, k)
			if err != nil {
				t.Fatal(err)
			}
			t.Run(alg.Name()+dimSuffix(n, k), func(t *testing.T) {
				switch p := alg.(type) {
				case Packed[SeqState]:
					roundTrip(t, p, n)
				case Packed[TwoPLState]:
					roundTrip(t, p, n)
				case Packed[DSTMState]:
					roundTrip(t, p, n)
				case Packed[TL2State]:
					roundTrip(t, p, n)
				case Packed[NOrecState]:
					roundTrip(t, p, n)
				case Packed[ETLState]:
					roundTrip(t, p, n)
				default:
					t.Fatalf("registered TM %q implements no packed extension", name)
				}
			})
		}
	}
}

func dimSuffix(n, k int) string {
	return "/" + string(rune('0'+n)) + "t" + string(rune('0'+k)) + "v"
}

// allXCmds enumerates every extended command shape over k variables —
// the full domain the contention managers must agree on.
func allXCmds(k int) []XCmd {
	var out []XCmd
	for kind := XRead; kind <= XChkLock; kind++ {
		x := XCmd{Kind: kind}
		if x.HasVar() {
			for v := 0; v < k; v++ {
				out = append(out, XCmd{Kind: kind, V: core.Var(v)})
			}
		} else {
			out = append(out, x)
		}
	}
	return out
}

// TestPackedCMAgreesWithBoxed checks each registered contention
// manager's packed form against the boxed one on random statement
// sequences: same allowed/blocked verdict at every step, and DecodeCM
// reproduces the boxed state exactly along the whole trajectory.
func TestPackedCMAgreesWithBoxed(t *testing.T) {
	for _, name := range ManagerNames() {
		cm, err := NewContentionManager(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			pcm, ok := PackCM(cm)
			if !ok || pcm == nil {
				t.Fatalf("built-in manager %q has no packed form", name)
			}
			if bits := pcm.CMBits(); bits < 0 || bits > 64 {
				t.Fatalf("CMBits() = %d out of range [0,64]", bits)
			}
			boxed := cm.Initial()
			packed := pcm.InitialCM()
			if got := pcm.DecodeCM(packed); got != boxed {
				t.Fatalf("DecodeCM(InitialCM()) = %+v, boxed Initial() = %+v", got, boxed)
			}
			xcmds := allXCmds(2)
			rng := rand.New(rand.NewSource(23))
			for step := 0; step < 4000; step++ {
				x := xcmds[rng.Intn(len(xcmds))]
				th := core.Thread(rng.Intn(MaxThreads))
				b2, okB := cm.Step(boxed, x, th)
				p2, okP := pcm.StepCM(packed, x, th)
				if okB != okP {
					t.Fatalf("step %d %v t%d: boxed ok=%v packed ok=%v (state %+v)",
						step, x, th, okB, okP, boxed)
				}
				if !okB {
					continue
				}
				boxed, packed = b2, p2
				if bits := pcm.CMBits(); bits < 64 && packed>>uint(bits) != 0 {
					t.Fatalf("step %d: packed state %#x exceeds CMBits %d", step, packed, bits)
				}
				if got := pcm.DecodeCM(packed); got != boxed {
					t.Fatalf("step %d %v t%d: DecodeCM = %+v, boxed = %+v",
						step, x, th, got, boxed)
				}
			}
		})
	}
}

// TestPackCMOpaque pins the fallback contract: a manager hidden behind
// the plain interface (modeling a user-registered manager without a
// packed form) must be rejected by PackCM, and a nil manager packs to
// the empty factor.
func TestPackCMOpaque(t *testing.T) {
	if _, ok := PackCM(OpaqueCM(Karma{})); ok {
		t.Error("PackCM accepted an opaque manager; it must force the generic path")
	}
	pcm, ok := PackCM(nil)
	if !ok || pcm != nil {
		t.Errorf("PackCM(nil) = %v, %v; want nil, true", pcm, ok)
	}
	if OpaqueCM(nil) != nil {
		t.Error("OpaqueCM(nil) must stay nil")
	}
}
