package safety

import (
	"fmt"
	"strings"

	"tmcheck/internal/explore"
	"tmcheck/internal/reduction"
	"tmcheck/internal/spec"
	"tmcheck/internal/tm"
)

// Factory builds a TM algorithm for given instance bounds — the shape the
// reduction methodology needs, since it instantiates the TM at several
// sizes.
type Factory func(n, k int) tm.Algorithm

// MethodologyReport is the outcome of VerifyViaReduction: the paper's full
// recipe applied to one TM.
type MethodologyReport struct {
	// Name is the TM's name.
	Name string
	// Safety holds the (2,2) inclusion results for both properties.
	Safety []Result
	// StructuralViolations lists sampled failures of the structural
	// properties P1–P3 (plus the P4 commutativity conditions) at the
	// instances probed. A non-empty list means the reduction theorem's
	// premises are in doubt and the (2,2) verdict does NOT generalize.
	StructuralViolations []*reduction.Violation
	// Probes records the (n, k) instances sampled.
	Probes [][2]int
}

// Generalizes reports whether the verdicts extend to all programs: the
// (2,2) checks passed and no structural violation was sampled.
func (r *MethodologyReport) Generalizes() bool {
	if len(r.StructuralViolations) > 0 {
		return false
	}
	for _, res := range r.Safety {
		if !res.Holds {
			return false
		}
	}
	return true
}

// String renders the report.
func (r *MethodologyReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s (reduction methodology) ===\n", r.Name)
	for _, res := range r.Safety {
		verdict := "HOLDS"
		if !res.Holds {
			verdict = fmt.Sprintf("FAILS: %s", res.Counterexample)
		}
		fmt.Fprintf(&b, "(2,2) %-24s %s\n", res.Prop.String()+":", verdict)
	}
	if len(r.StructuralViolations) == 0 {
		fmt.Fprintf(&b, "structural properties:        no violation sampled at %v\n", r.Probes)
		if r.Generalizes() {
			fmt.Fprintf(&b, "conclusion:                   safe for ALL programs (Theorem 1)\n")
		}
	} else {
		for _, v := range r.StructuralViolations {
			fmt.Fprintf(&b, "structural property violated: %v\n", v)
		}
		fmt.Fprintf(&b, "conclusion:                   the (2,2) verdict does not generalize\n")
	}
	return b.String()
}

// VerifyViaReduction runs the paper's end-to-end methodology on a TM:
//
//  1. model check (2,2) strict serializability and opacity by language
//     inclusion in the deterministic specifications;
//  2. sample the structural properties P1–P3 and the P4 commutativity
//     conditions at (2,2), (3,2) and (2,3), which the reduction theorem
//     needs to lift the verdict to every program.
//
// Structural sampling is evidence, not proof — exactly as in the paper,
// where the properties are established by manual inspection; the sampler
// automates the refutation direction.
func VerifyViaReduction(name string, factory Factory, seed int64) *MethodologyReport {
	rep := &MethodologyReport{Name: name}
	alg22 := factory(2, 2)
	ts22 := explore.Build(alg22, nil)
	rep.Safety = append(rep.Safety,
		Check(ts22, spec.StrictSerializability),
		Check(ts22, spec.Opacity),
	)
	rep.Probes = [][2]int{{2, 2}, {3, 2}, {2, 3}}
	for _, dims := range rep.Probes {
		ts := ts22
		if dims != [2]int{2, 2} {
			ts = explore.Build(factory(dims[0], dims[1]), nil)
		}
		s := reduction.NewSampler(ts, seed)
		// Fewer samples at the larger instances: membership checks there
		// run on much bigger automata.
		if dims != [2]int{2, 2} {
			s.Samples = 60
		}
		for _, check := range []func() *reduction.Violation{
			s.CheckP1, s.CheckP2, s.CheckP3,
			s.CheckUnfinishedCommutative, s.CheckCommitCommutative,
		} {
			if v := check(); v != nil {
				rep.StructuralViolations = append(rep.StructuralViolations, v)
			}
		}
	}
	return rep
}
