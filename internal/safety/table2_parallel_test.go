package safety

import (
	"reflect"
	"testing"

	"tmcheck/internal/parbfs"
)

// TestTable2ParallelMatchesSequential drives the concurrent Table 2
// path explicitly and checks the rows — verdicts, sizes, and
// counterexamples — against the sequential driver.
func TestTable2ParallelMatchesSequential(t *testing.T) {
	systems := PaperSystems(2, 1)
	seq := table2Seq(systems)
	par := table2Par(systems, 4)
	if len(par) != len(seq) {
		t.Fatalf("row count: parallel %d, sequential %d", len(par), len(seq))
	}
	for i := range seq {
		for _, c := range []struct {
			name     string
			seq, par Result
		}{
			{"ss", seq[i].SS, par[i].SS},
			{"op", seq[i].OP, par[i].OP},
		} {
			if c.par.Holds != c.seq.Holds || c.par.TMStates != c.seq.TMStates ||
				c.par.SpecStates != c.seq.SpecStates {
				t.Errorf("row %d %s: parallel (%v,%d,%d) != sequential (%v,%d,%d)",
					i, c.name, c.par.Holds, c.par.TMStates, c.par.SpecStates,
					c.seq.Holds, c.seq.TMStates, c.seq.SpecStates)
			}
			if !reflect.DeepEqual(c.par.Counterexample, c.seq.Counterexample) {
				t.Errorf("row %d %s: counterexamples diverge:\n  sequential: %v\n  parallel:   %v",
					i, c.name, c.seq.Counterexample, c.par.Counterexample)
			}
		}
	}
}

// TestTable2DispatchesOnWorkerCount checks the public entry point takes
// the parallel path under a multi-worker setting and still returns the
// sequential rows.
func TestTable2DispatchesOnWorkerCount(t *testing.T) {
	defer parbfs.SetWorkers(0)
	systems := PaperSystems(2, 1)
	parbfs.SetWorkers(1)
	seq := Table2(systems)
	parbfs.SetWorkers(3)
	par := Table2(systems)
	for i := range seq {
		if par[i].SS.Holds != seq[i].SS.Holds || par[i].OP.Holds != seq[i].OP.Holds {
			t.Fatalf("row %d: verdicts diverge between worker counts", i)
		}
	}
}
