package safety

import (
	"testing"

	"tmcheck/internal/automata"
	"tmcheck/internal/explore"
	"tmcheck/internal/spec"
	"tmcheck/internal/tm"
)

// Permissiveness: the number of words a TM admits per length, compared to
// the number of safe words. Language inclusion L(A) ⊆ πop implies the
// counts are dominated pointwise; and the known permissiveness folklore —
// DSTM admits more schedules than TL2 and 2PL, the sequential TM the
// fewest — shows up in the counts.
func TestPermissivenessCounts(t *testing.T) {
	const maxLen = 6
	opCounts := automata.CountWords(spec.NewDet(spec.Opacity, 2, 2).Enumerate(), maxLen)
	counts := map[string][]uint64{}
	for _, name := range []string{"seq", "2pl", "dstm", "tl2"} {
		alg, err := tm.NewAlgorithm(name, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		ts := explore.Build(alg, nil)
		c, ok := automata.CountWordsNFA(ts.NFA(), maxLen, 500000)
		if !ok {
			t.Fatalf("%s: subset construction exceeded bound", name)
		}
		counts[name] = c
		for l := 0; l <= maxLen; l++ {
			if c[l] > opCounts[l] {
				t.Errorf("%s admits %d words of length %d, more than the %d opaque ones",
					name, c[l], l, opCounts[l])
			}
		}
	}
	// Folklore ordering at length 6: seq < tl2, seq < 2pl < dstm.
	if !(counts["seq"][maxLen] < counts["2pl"][maxLen] &&
		counts["2pl"][maxLen] < counts["dstm"][maxLen] &&
		counts["seq"][maxLen] < counts["tl2"][maxLen]) {
		t.Errorf("permissiveness ordering unexpected: seq=%d 2pl=%d dstm=%d tl2=%d",
			counts["seq"][maxLen], counts["2pl"][maxLen], counts["dstm"][maxLen], counts["tl2"][maxLen])
	}
}
