package safety

import (
	"math/rand"
	"testing"

	"tmcheck/internal/core"
	"tmcheck/internal/explore"
	"tmcheck/internal/spec"
	"tmcheck/internal/tm"
)

// TestTheorem4 reproduces the paper's Theorem 4 via Table 2: the
// sequential TM, 2PL, DSTM and TL2 ensure (2,2) opacity (hence, by the
// reduction theorem, opacity), while modified TL2 with the polite manager
// is not even strictly serializable.
func TestTheorem4Table2(t *testing.T) {
	rows := Table2(PaperSystems(2, 2))
	wantHolds := []bool{true, true, true, true, false}
	names := []string{"seq", "2pl", "dstm", "tl2", "modtl2+polite"}
	for i, row := range rows {
		if row.SS.System != names[i] {
			t.Errorf("row %d system = %q, want %q", i, row.SS.System, names[i])
		}
		if row.SS.Holds != wantHolds[i] {
			t.Errorf("%s: πss holds = %v, want %v (cex %q)",
				names[i], row.SS.Holds, wantHolds[i], row.SS.Counterexample)
		}
		if row.OP.Holds != wantHolds[i] {
			t.Errorf("%s: πop holds = %v, want %v (cex %q)",
				names[i], row.OP.Holds, wantHolds[i], row.OP.Counterexample)
		}
		if row.SS.TMStates != row.OP.TMStates {
			t.Errorf("%s: inconsistent TM sizes %d vs %d", names[i], row.SS.TMStates, row.OP.TMStates)
		}
		t.Logf("%-14s size=%-6d ss=%v op=%v (ss %v, op %v)",
			names[i], row.SS.TMStates, row.SS.Holds, row.OP.Holds, row.SS.Elapsed, row.OP.Elapsed)
	}
}

// The modified-TL2 counterexample must be a genuine TM word that the
// oracle rejects, with the cross read-write shape of the paper's w1.
func TestModTL2CounterexampleIsGenuine(t *testing.T) {
	ts := explore.Build(tm.NewTL2Mod(2, 2), tm.Polite{})
	res := Check(ts, spec.StrictSerializability)
	if res.Holds {
		t.Fatal("modified TL2 with polite manager must violate strict serializability")
	}
	cex := res.Counterexample
	if len(cex) == 0 {
		t.Fatal("missing counterexample")
	}
	if !ts.InLanguage(cex) {
		t.Errorf("counterexample %q not in the TM's language", cex)
	}
	if core.IsStrictlySerializable(cex) {
		t.Errorf("counterexample %q is strictly serializable", cex)
	}
	// The paper's w1 has six statements: two writes, two reads, two
	// commits, with both transactions committing.
	if len(cex) != 6 {
		t.Errorf("counterexample has %d statements, want 6 as in the paper", len(cex))
	}
}

// The unmodified TL2 must accept the very interleaving that breaks the
// modified variant — the counterexample word is not in TL2's language.
func TestTL2RejectsTheBrokenInterleaving(t *testing.T) {
	modTS := explore.Build(tm.NewTL2Mod(2, 2), tm.Polite{})
	res := Check(modTS, spec.StrictSerializability)
	if res.Holds {
		t.Fatal("expected a counterexample")
	}
	tl2TS := explore.Build(tm.NewTL2(2, 2), tm.Polite{})
	if tl2TS.InLanguage(res.Counterexample) {
		t.Errorf("TL2 proper must not produce the unsafe word %q", res.Counterexample)
	}
}

// Safety is independent of the contention manager: a manager only
// restricts the TM's language (L(A_cm) ⊆ L(A)), so DSTM and TL2 stay safe
// under every manager we have.
func TestSafetyWithContentionManagers(t *testing.T) {
	for _, cm := range []tm.ContentionManager{tm.Aggressive{}, tm.Polite{}, tm.Timid{}, tm.Karma{}} {
		for _, alg := range []tm.Algorithm{tm.NewDSTM(2, 2), tm.NewTL2(2, 2)} {
			res := Verify(alg, cm, spec.Opacity)
			if !res.Holds {
				t.Errorf("%s+%s: opacity fails with cex %q", alg.Name(), cm.Name(), res.Counterexample)
			}
		}
	}
}

// CM languages are included in the unmanaged language on sampled runs: the
// product construction only restricts behaviour.
func TestCMRestrictsLanguage(t *testing.T) {
	base := explore.Build(tm.NewDSTM(2, 2), nil).NFA()
	rng := rand.New(rand.NewSource(77))
	for _, cm := range []tm.ContentionManager{tm.Aggressive{}, tm.Polite{}, tm.Timid{}} {
		managed := explore.Build(tm.NewDSTM(2, 2), cm)
		if managed.NumStates() == 0 {
			t.Fatalf("%s: empty system", cm.Name())
		}
		for i := 0; i < 200; i++ {
			w := randomWalkWord(rng, managed, 12)
			if !base.Accepts(managed.Alphabet.EncodeWord(w)) {
				t.Fatalf("%s: word %q not in unmanaged language", cm.Name(), w)
			}
		}
	}
}

// randomWalkWord walks the transition system randomly and returns the word
// it emits (at most maxEmit letters).
func randomWalkWord(rng *rand.Rand, ts *explore.TS, maxEmit int) core.Word {
	var w core.Word
	cur := int32(0)
	for steps := 0; steps < 4*maxEmit && len(w) < maxEmit; steps++ {
		es := ts.Out[cur]
		if len(es) == 0 {
			break
		}
		e := es[rng.Intn(len(es))]
		if e.Emit >= 0 {
			w = append(w, ts.Alphabet.Decode(int(e.Emit)))
		}
		cur = e.To
	}
	return w
}

// The nondeterministic (antichain) validation path must agree with the
// deterministic pipeline on every paper system.
func TestAntichainPathAgrees(t *testing.T) {
	for _, sys := range PaperSystems(2, 2) {
		ts := explore.Build(sys.Alg, sys.CM)
		for _, prop := range []spec.Property{spec.StrictSerializability, spec.Opacity} {
			det := Check(ts, prop)
			nd := CheckAgainstNondet(ts, prop)
			if det.Holds != nd.Holds {
				t.Errorf("%s %v: det=%v antichain=%v", ts.Name(), prop, det.Holds, nd.Holds)
			}
		}
	}
}

// A deliberately broken TM — 2PL without read locks — must fail opacity
// with a genuine counterexample, exercising counterexample generation on a
// fresh (non-paper) system.
func TestBuggyTMProducesCounterexample(t *testing.T) {
	res := Verify(tm.NewTwoPLNoReadLock(2, 2), nil, spec.StrictSerializability)
	if res.Holds {
		t.Fatal("2PL without read locks should not be strictly serializable")
	}
	if core.IsStrictlySerializable(res.Counterexample) {
		t.Errorf("counterexample %q is actually serializable", res.Counterexample)
	}
}

// Verify on a (2,1) instance: with a single variable, all four paper TMs
// are trivially safe as well.
func TestSafetySingleVariable(t *testing.T) {
	for _, sys := range PaperSystems(2, 1) {
		if sys.Alg.Name() == "modtl2" {
			continue // needs two variables to go wrong
		}
		res := Verify(sys.Alg, sys.CM, spec.Opacity)
		if !res.Holds {
			t.Errorf("%s at (2,1): opacity fails with cex %q", res.System, res.Counterexample)
		}
	}
}
