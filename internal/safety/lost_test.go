package safety

import (
	"testing"

	"tmcheck/internal/core"
	"tmcheck/internal/explore"
	"tmcheck/internal/spec"
	"tmcheck/internal/tm"
)

// Every paper TM gives up some safe concurrency; the witness must be
// opaque yet outside the TM's language.
func TestLostConcurrencyWitnesses(t *testing.T) {
	for _, name := range []string{"seq", "2pl", "dstm", "tl2", "norec", "etl"} {
		alg, err := tm.NewAlgorithm(name, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		ts := explore.Build(alg, nil)
		w, ok := LostConcurrency(ts, spec.Opacity)
		if !ok {
			t.Errorf("%s: no lost-concurrency witness found (maximally permissive?)", name)
			continue
		}
		if !core.IsOpaque(w) {
			t.Errorf("%s: witness %q is not opaque", name, w)
		}
		if ts.InLanguage(w) {
			t.Errorf("%s: witness %q is in the TM's language", name, w)
		}
		t.Logf("%-6s forbids the safe word %q", name, w)
	}
}

// The sequential TM's lost concurrency is the most basic: any overlap of
// two transactions. Its witness must be very short.
func TestSeqLosesOverlapImmediately(t *testing.T) {
	ts := explore.Build(tm.NewSeq(2, 2), nil)
	w, ok := LostConcurrency(ts, spec.Opacity)
	if !ok {
		t.Fatal("no witness")
	}
	if len(w) > 2 {
		t.Errorf("seq witness should be minimal (≤ 2 statements), got %q", w)
	}
}

// WitnessRun reconstructs full extended-command runs for emitted words —
// here for the modified-TL2 counterexample, whose run must pass through
// rvalidate and chklock with a commit in between.
func TestWitnessRunForCounterexample(t *testing.T) {
	ts := explore.Build(tm.NewTL2Mod(2, 2), tm.Polite{})
	res := Check(ts, spec.StrictSerializability)
	if res.Holds {
		t.Fatal("expected counterexample")
	}
	run, ok := ts.WitnessRun(res.Counterexample)
	if !ok {
		t.Fatal("counterexample not realizable — inconsistent checker state")
	}
	// The emitted letters of the run must be exactly the counterexample.
	if got := ts.WordOf(run); !got.Equal(res.Counterexample) {
		t.Errorf("run emits %q, want %q", got, res.Counterexample)
	}
	// The run includes internal steps (locks, rvalidate, chklock).
	if len(run) <= len(res.Counterexample) {
		t.Errorf("run has no internal steps: %s", explore.FormatRun(run))
	}
	kinds := map[tm.XKind]bool{}
	for _, e := range run {
		kinds[e.X.Kind] = true
	}
	for _, want := range []tm.XKind{tm.XLock, tm.XRValidate, tm.XChkLock} {
		if !kinds[want] {
			t.Errorf("run lacks %v step: %s", want, explore.FormatRun(run))
		}
	}
}

func TestWitnessRunRejectsForeignWords(t *testing.T) {
	ts := explore.Build(tm.NewTwoPL(2, 2), nil)
	// 2PL can never emit two commits of overlapping writers to the same
	// variable in this order without releasing locks.
	w := core.MustParseWord("(w,1)1, (w,1)2, c1, c2")
	if _, ok := ts.WitnessRun(w); ok {
		t.Errorf("2PL should not realize %q", w)
	}
	// And accepts the empty word trivially.
	if run, ok := ts.WitnessRun(nil); !ok || len(run) != 0 {
		t.Errorf("empty word: run=%v ok=%v", run, ok)
	}
}
