package safety

import (
	"context"
	"errors"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tmcheck/internal/automata"
	"tmcheck/internal/explore"
	"tmcheck/internal/guard"
	"tmcheck/internal/obs"
	"tmcheck/internal/parbfs"
	"tmcheck/internal/space"
	"tmcheck/internal/spec"
	"tmcheck/internal/tm"
)

// Engine selects how an inclusion check is executed. The type lives in
// internal/space (it is shared with the liveness checker); the aliases
// here keep the original safety API intact. For safety the engines are:
//
//   - EngineMaterialized: explore the full TM system, enumerate the
//     full specification DFA, then run the product inclusion check. Its
//     peak memory is the sum of both full automata even when a
//     counterexample is shallow.
//   - EngineOnTheFly: interleave TM exploration with specification
//     stepping — the product BFS constructs TM and spec states only as
//     the product reaches them and stops at the first violation. It is
//     the default engine of cmd/tmcheck.
type Engine = space.Engine

const (
	EngineMaterialized = space.EngineMaterialized
	EngineOnTheFly     = space.EngineOnTheFly
)

// ParseEngine parses an -engine flag value.
func ParseEngine(s string) (Engine, error) { return space.ParseEngine(s) }

// Options configures VerifyOpts.
type Options struct {
	// Workers is the worker count; <= 0 takes the process-wide
	// parbfs.Workers(). One worker runs the plain sequential engines.
	Workers int
	// MaxStates bounds the total states constructed (see VerifyOpts);
	// <= 0 takes the process-wide space.MaxStates(), where 0 means
	// unbounded.
	MaxStates int
	// MaxMem is the heap cap in bytes; 0 takes the process-wide
	// guard.MaxMem(), where 0 means uncapped.
	MaxMem uint64
	// Engine selects the pipeline; the zero value is EngineMaterialized.
	Engine Engine
	// Ctx carries the check's deadline and cancellation; nil means no
	// deadline. The engines consult it at the same points where they
	// check the state budget.
	Ctx context.Context
	// NoPhases suppresses the obs phase spans (the phase stack assumes a
	// single-threaded spine); counters and bus events still record.
	// Front-ends running checks concurrently (tmcheckd) set it.
	NoPhases bool
	// Persist supplies checkpoint/resume and disk-spill wiring for the
	// TM exploration (see explore.PersistProvider); nil runs plain.
	// Only the materialized engine interns the canonical prefix a
	// snapshot records, so setting this with EngineOnTheFly is an error.
	Persist explore.PersistProvider
}

// guard builds one check's guard from the options, resolving unset
// budgets from the process-wide knobs.
func (opts Options) guard() *guard.Guard {
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = space.MaxStates()
	}
	maxMem := opts.MaxMem
	if maxMem == 0 {
		maxMem = guard.MaxMem()
	}
	return guard.New(opts.Ctx, maxStates, maxMem)
}

// VerifyOpts checks L(alg×cm) ⊆ L(Σd prop) with the selected engine.
//
// A positive state budget (Options.MaxStates or the process-wide
// -maxstates knob) bounds the total number of states constructed — TM
// states + spec states + product pairs for the on-the-fly engine; TM
// states, then the full spec DFA, then inclusion pairs cumulatively for
// the materialized one — and the check stops with a *space.BudgetError
// instead of exhausting memory. The sequential engines trip the budget
// exactly; parallel ones check at BFS level barriers and may overshoot
// by one level.
//
// Both engines return identical verdicts and identical counterexample
// words (the on-the-fly search orders each state's edges ε-first then
// by letter, matching the product order of the materialized inclusion
// check — TestEngineAgreement asserts this across the registry).
func VerifyOpts(alg tm.Algorithm, cm tm.ContentionManager, prop spec.Property, opts Options) (Result, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = parbfs.Workers()
	}
	g := opts.guard()
	if opts.Engine == EngineOnTheFly {
		if opts.Persist != nil {
			return Result{}, errors.New("safety: checkpoint/resume requires the materialized engine (the on-the-fly product does not intern a resumable prefix)")
		}
		return checkOnTheFly(alg, cm, prop, workers, g, !opts.NoPhases)
	}
	return verifyMaterialized(alg, cm, prop, workers, g, !opts.NoPhases, opts.Persist)
}

// CheckOnTheFly verifies the TM with the on-the-fly engine at the
// process-wide worker count and state budget.
func CheckOnTheFly(alg tm.Algorithm, cm tm.ContentionManager, prop spec.Property) (Result, error) {
	return VerifyOpts(alg, cm, prop, Options{Engine: EngineOnTheFly})
}

// checkEvents brackets one inclusion check on the telemetry bus:
// EvCheckStart now, then EvCheckDone (verdict in Detail, product pairs
// in States) — plus an EvViolation when a counterexample was found —
// when the returned func is called with the outcome. With the bus
// disabled it is a no-op closure.
func checkEvents(name string) func(res Result, err error) {
	if !obs.EventsEnabled() {
		return func(Result, error) {}
	}
	obs.Emit(obs.Event{Kind: obs.EvCheckStart, Name: name})
	start := time.Now()
	return func(res Result, err error) {
		e := obs.Event{Kind: obs.EvCheckDone, Name: name, DurNS: time.Since(start).Nanoseconds()}
		switch {
		case err != nil:
			e.Detail = "ERROR: " + err.Error()
		case res.Holds:
			e.Detail = "SAFE"
			e.States = int64(res.Inclusion.PairsVisited)
		default:
			e.Detail = "UNSAFE"
			e.States = int64(res.Inclusion.PairsVisited)
			obs.Emit(obs.Event{Kind: obs.EvViolation, Name: name,
				Detail: "counterexample of length " + strconv.Itoa(res.Inclusion.CexLen)})
		}
		obs.Emit(e)
	}
}

// verifyMaterialized is the classic pipeline with the guard threaded
// through its three stages; the state budget of each stage is charged
// against what the previous stages already constructed (the context
// and heap watchdog are shared across all three unchanged).
// phase=false suppresses the obs span for callers off the
// single-threaded spine.
func verifyMaterialized(alg tm.Algorithm, cm tm.ContentionManager, prop spec.Property, workers int, g *guard.Guard, phase bool, prov explore.PersistProvider) (res Result, err error) {
	fin := checkEvents("dfa:" + systemName(alg, cm) + ":" + prop.Key())
	defer func() { fin(res, err) }()
	maxStates := g.MaxStates()
	buildStart := time.Now()
	ts, err := explore.BuildProviderGuarded(alg, cm, workers, g, prov)
	if err != nil {
		return Result{}, err
	}
	buildElapsed := time.Since(buildStart)

	remaining := 0
	if maxStates > 0 {
		if remaining = maxStates - ts.NumStates(); remaining < 1 {
			return Result{}, &space.BudgetError{Budget: maxStates, Visited: ts.NumStates() + 1}
		}
	}
	det := spec.NewDet(prop, alg.Threads(), alg.Vars())
	specStart := time.Now()
	dfa, err := det.EnumerateGuarded(workers, g.WithStates(remaining))
	if err != nil {
		return Result{}, chargeStates(err, maxStates, ts.NumStates())
	}
	specElapsed := time.Since(specStart)

	if maxStates > 0 {
		if remaining = maxStates - ts.NumStates() - dfa.NumStates(); remaining < 1 {
			return Result{}, &space.BudgetError{Budget: maxStates, Visited: ts.NumStates() + dfa.NumStates() + 1}
		}
	}
	done := func() {}
	if phase {
		done = obs.Phase("inclusion:" + ts.Name() + ":" + prop.Key())
	}
	nfa := ts.DenseNFA()
	start := time.Now()
	ok, cexLetters, st, err := automata.IncludedInDFADenseGuarded(nfa, dfa, g.WithStates(remaining))
	elapsed := time.Since(start)
	done()
	if err != nil {
		return Result{}, chargeStates(err, maxStates, ts.NumStates()+dfa.NumStates())
	}
	res = Result{
		System:           ts.Name(),
		Prop:             prop,
		Threads:          ts.Alg.Threads(),
		Vars:             ts.Alg.Vars(),
		TMStates:         ts.NumStates(),
		SpecStates:       dfa.NumStates(),
		Holds:            ok,
		Elapsed:          elapsed,
		BuildTMElapsed:   buildElapsed,
		BuildSpecElapsed: specElapsed,
		Inclusion:        st,
		Engine:           EngineMaterialized,
		Resumed:          ts.Resumed,
	}
	if !ok {
		res.Counterexample = ts.Alphabet.DecodeWord(cexLetters)
	}
	res.record("dfa")
	return res, nil
}

// chargeStates re-bases a staged state-budget error onto the whole
// pipeline's budget, adding the states the earlier stages already
// constructed; every other limit kind passes through untouched.
func chargeStates(err error, maxStates, already int) error {
	var le *guard.LimitError
	if errors.As(err, &le) && le.Kind == guard.KindStates {
		return &guard.LimitError{Kind: guard.KindStates, Budget: maxStates, Visited: already + le.Visited}
	}
	return err
}

// pairState is a state of the synchronized product: an interned TM
// state and an interned spec state.
type pairState struct {
	tm, spec space.State
}

// errViolationFound stops the parallel product search at the level
// barrier once a violation has been recorded.
var errViolationFound = errors.New("safety: violation found")

// checkOnTheFly runs the on-the-fly product search: a BFS over
// pairState that expands the TM space and steps the lazy specification
// in lockstep, stopping at the first undefined spec transition (the
// inclusion counterexample) or the fixpoint. phase=false suppresses the
// obs span for callers off the single-threaded spine.
func checkOnTheFly(alg tm.Algorithm, cm tm.ContentionManager, prop spec.Property, workers int, g *guard.Guard, phase bool) (Result, error) {
	det := spec.NewDet(prop, alg.Threads(), alg.Vars())
	fin := checkEvents("otf:" + systemName(alg, cm) + ":" + prop.Key())
	var res Result
	start := time.Now()
	err := guard.Capture(func() error {
		var ierr error
		if workers <= 1 {
			res, ierr = otfSeq(alg, cm, det, prop, g, phase)
		} else {
			res, ierr = otfPar(alg, cm, det, prop, workers, g, phase)
		}
		return ierr
	})
	if err != nil {
		fin(Result{}, err)
		return Result{}, err
	}
	// Exploration and checking are interleaved, so the whole search is
	// charged to Elapsed and the build fields stay zero.
	res.Elapsed = time.Since(start)
	res.recordOTF()
	fin(res, nil)
	return res, nil
}

// sortEdgesByEmit stable-sorts a state's edges ε-first, then by letter.
// This is exactly the successor order of the materialized inclusion
// check (which walks ε-successors first and then the letters in
// ascending order, each in edge-insertion order), so the product BFS —
// and hence the counterexample word — is bit-identical across engines.
func sortEdgesByEmit(buf []explore.Edge) {
	sort.SliceStable(buf, func(i, j int) bool { return buf[i].Emit < buf[j].Emit })
}

// expandSorted collects the sorted edges of one TM state into a fresh
// slice.
func expandSorted(tmsp *explore.Space, s space.State) []explore.Edge {
	buf := make([]explore.Edge, 0, 8)
	tmsp.SuccEdges(s, func(e explore.Edge) { buf = append(buf, e) })
	sortEdgesByEmit(buf)
	return buf
}

// otfProgressEvery is the heartbeat granularity of the sequential
// on-the-fly search on the telemetry bus: one EvProgress per this many
// expanded product pairs.
const otfProgressEvery = 4096

// otfSeq is the sequential on-the-fly search.
func otfSeq(alg tm.Algorithm, cm tm.ContentionManager, det *spec.Det, prop spec.Property, g *guard.Guard, phase bool) (Result, error) {
	name := "otf:" + systemName(alg, cm) + ":" + prop.Key()
	if phase {
		done := obs.Phase(name)
		defer done()
	}
	events := obs.EventsEnabled()
	tmsp := explore.NewSpace(alg, cm)
	lz := spec.NewLazy(det)

	type node struct {
		p      pairState
		parent int32
		letter int16 // letter that discovered this pair; -1 for root and ε
	}
	nodes := []node{{p: pairState{}, parent: -1, letter: -1}}
	index := map[pairState]int32{{}: 0}
	push := func(p pairState, parent int32, letter int16) {
		if _, ok := index[p]; ok {
			return
		}
		index[p] = int32(len(nodes))
		nodes = append(nodes, node{p: p, parent: parent, letter: letter})
	}
	buildWord := func(idx int32, last int16) []int {
		rev := []int{int(last)}
		for idx > 0 {
			if nodes[idx].letter >= 0 {
				rev = append(rev, int(nodes[idx].letter))
			}
			idx = nodes[idx].parent
		}
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		return rev
	}

	// Sorted edges are cached per TM state: distinct product pairs
	// sharing a TM state re-use its expansion instead of re-running the
	// TM semantics.
	var edgeCache [][]explore.Edge
	edgesOf := func(s space.State) []explore.Edge {
		for int(s) >= len(edgeCache) {
			edgeCache = append(edgeCache, nil)
		}
		if edgeCache[s] == nil {
			edgeCache[s] = expandSorted(tmsp, s)
		}
		return edgeCache[s]
	}

	frontierPeak := 1
	result := func(holds bool, cexLetters []int) Result {
		res := Result{
			System:       tmsp.Name(),
			Prop:         prop,
			Threads:      alg.Threads(),
			Vars:         alg.Vars(),
			TMStates:     tmsp.NumStates(),
			SpecStates:   lz.NumStates(),
			Holds:        holds,
			Engine:       EngineOnTheFly,
			FrontierPeak: frontierPeak,
			Inclusion:    automata.InclusionStats{PairsVisited: len(nodes), CexLen: len(cexLetters)},
		}
		if !holds {
			res.Counterexample = tmsp.Alphabet.DecodeWord(cexLetters)
		}
		return res
	}

	guarded := g.Active()
	for qi := int32(0); int(qi) < len(nodes); qi++ {
		if guarded {
			if err := g.Check(len(nodes) + tmsp.NumStates() + lz.NumStates()); err != nil {
				return Result{}, err
			}
		}
		if f := len(nodes) - int(qi); f > frontierPeak {
			frontierPeak = f
		}
		if events && qi > 0 && qi%otfProgressEvery == 0 {
			obs.Emit(obs.Event{
				Kind: obs.EvProgress, Name: name,
				States: int64(len(nodes)), Frontier: int64(len(nodes) - int(qi)),
				HeapBytes: obs.SampledHeap(),
			})
		}
		p := nodes[qi].p
		for _, e := range edgesOf(p.tm) {
			if e.Emit < 0 {
				push(pairState{e.To, p.spec}, qi, -1)
				continue
			}
			d2 := lz.Step(p.spec, int(e.Emit))
			if d2 == space.None {
				return result(false, buildWord(qi, e.Emit)), nil
			}
			push(pairState{e.To, d2}, qi, e.Emit)
		}
	}
	return result(true, nil), nil
}

// otfPar is the level-parallel on-the-fly search over product pairs.
// Violations can only occur in the level currently being expanded (the
// barrier hook stops the search at the first level that records one),
// and the canonical winner — minimal (source id, edge index) — is
// exactly the violation the sequential scan hits first, so verdict and
// counterexample word match otfSeq for every worker count. The states
// constructed at the stopping point may differ (trailing same-level
// expansions), so the budget and the reported sizes are
// worker-count-dependent on early exit; verdicts never are.
func otfPar(alg tm.Algorithm, cm tm.ContentionManager, det *spec.Det, prop spec.Property, workers int, g *guard.Guard, phase bool) (Result, error) {
	name := "otf:" + systemName(alg, cm) + ":" + prop.Key()
	if phase {
		done := obs.Phase(name)
		defer done()
	}
	// With the telemetry bus on, every level barrier reports one
	// EvLevelDone — the per-level product-BFS slices of the -trace view.
	var emitLevel func(states int)
	if obs.EventsEnabled() {
		last, level, prev := time.Now(), int32(0), 0
		emitLevel = func(states int) {
			now := time.Now()
			obs.Emit(obs.Event{
				Kind: obs.EvLevelDone, Name: name, Level: level,
				States: int64(states), Frontier: int64(states - prev),
				HeapBytes: obs.SampledHeap(), DurNS: now.Sub(last).Nanoseconds(),
			})
			last, prev = now, states
			level++
		}
	}
	tmsp := explore.NewSpaceSync(alg, cm)
	lz := spec.NewLazySync(det)

	var pairs []pairState
	// parents[id] is the packed minimal discovery key of pair id —
	// srcID<<32 | emission ordinal — min-updated atomically across the
	// racing finish calls; ^0 marks the root/unset.
	var parents []uint64

	var vioMu sync.Mutex
	vioFound := false
	var vioSrc, vioEdge int32
	var vioLetter int16

	pstats, err := parbfs.RunControlled(pairState{}, workers,
		func(states int) error {
			if emitLevel != nil {
				emitLevel(states)
			}
			vioMu.Lock()
			found := vioFound
			vioMu.Unlock()
			if found {
				return errViolationFound
			}
			return g.Check(states + tmsp.NumStates() + lz.NumStates())
		},
		func(id int, emit func(pairState)) {
			p := pairs[id]
			for j, e := range expandSorted(tmsp, p.tm) {
				if e.Emit < 0 {
					emit(pairState{e.To, p.spec})
					continue
				}
				d2 := lz.Step(p.spec, int(e.Emit))
				if d2 == space.None {
					vioMu.Lock()
					if !vioFound || int32(id) < vioSrc || (int32(id) == vioSrc && int32(j) < vioEdge) {
						vioFound, vioSrc, vioEdge, vioLetter = true, int32(id), int32(j), e.Emit
					}
					vioMu.Unlock()
					continue
				}
				emit(pairState{e.To, d2})
			}
		},
		func(id int, p pairState) {
			pairs = append(pairs, p)
			parents = append(parents, ^uint64(0))
		},
		func(id int, succ []int32) {
			for j, to := range succ {
				key := uint64(id)<<32 | uint64(j)
				for {
					old := atomic.LoadUint64(&parents[to])
					if key >= old || atomic.CompareAndSwapUint64(&parents[to], old, key) {
						break
					}
				}
			}
		},
	)

	frontierPeak := 1
	for _, n := range pstats.LevelSizes {
		if n > frontierPeak {
			frontierPeak = n
		}
	}
	result := func(holds bool, cexLetters []int) Result {
		res := Result{
			System:       tmsp.Name(),
			Prop:         prop,
			Threads:      alg.Threads(),
			Vars:         alg.Vars(),
			TMStates:     tmsp.NumStates(),
			SpecStates:   lz.NumStates(),
			Holds:        holds,
			Engine:       EngineOnTheFly,
			FrontierPeak: frontierPeak,
			Inclusion:    automata.InclusionStats{PairsVisited: len(pairs), CexLen: len(cexLetters)},
		}
		if !holds {
			res.Counterexample = tmsp.Alphabet.DecodeWord(cexLetters)
		}
		return res
	}

	switch {
	case err == nil:
		return result(true, nil), nil
	case errors.Is(err, errViolationFound):
		// Reconstruct the word along the parent tree. Every ancestor sits
		// in an earlier level than the violation, and earlier levels have
		// no violating edges (the search would have stopped there), so an
		// ancestor's emission ordinal equals its sorted-edge index and
		// re-expanding it recovers the discovering letter.
		rev := []int{int(vioLetter)}
		for cur := vioSrc; cur != 0; {
			pk := parents[cur]
			src := int32(pk >> 32)
			j := int(uint32(pk))
			if l := expandSorted(tmsp, pairs[src].tm)[j].Emit; l >= 0 {
				rev = append(rev, int(l))
			}
			cur = src
		}
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		return result(false, rev), nil
	default:
		return Result{}, err
	}
}

// systemName names the system without constructing anything.
func systemName(alg tm.Algorithm, cm tm.ContentionManager) string {
	if cm == nil {
		return alg.Name()
	}
	return alg.Name() + "+" + cm.Name()
}

// recordOTF writes the on-the-fly vitals into the obs registry, keyed
// "safety.<system>.<prop>.otf.*": product pairs visited, TM and spec
// states actually constructed (compare spec_states against a full
// "spec.det.*.states" to see the laziness win), peak frontier, and the
// early-exit depth when a counterexample stopped the search.
func (r Result) recordOTF() {
	if !obs.Enabled() {
		return
	}
	key := "safety." + r.System + "." + r.Prop.Key() + ".otf"
	obs.Inc(key+".checks", 1)
	obs.Inc(key+".product_pairs", int64(r.Inclusion.PairsVisited))
	obs.SetGauge(key+".tm_states", int64(r.TMStates))
	obs.SetGauge(key+".spec_states", int64(r.SpecStates))
	obs.MaxGauge(key+".frontier_peak", int64(r.FrontierPeak))
	if !r.Holds {
		obs.SetGauge(key+".early_exit_depth", int64(r.Inclusion.CexLen))
	}
	obs.AddTime(key+".search", r.Elapsed)
}

// Table2OnTheFly is Table2 with the on-the-fly engine. Each check runs
// the sequential search; with the process-wide worker count above one,
// the rows fan out over the pool instead (the coarser parallelism, as
// in Table2) — so rows are bit-identical for every worker count,
// including the early-exit sizes of failing rows, which the
// level-synchronized parallel search would report differently (see
// otfPar). A budget error on any row aborts the table.
func Table2OnTheFly(systems []System) ([]Table2Row, error) {
	maxStates := space.MaxStates()
	if workers := parbfs.Workers(); workers > 1 && len(systems) > 1 {
		return table2OnTheFlyPar(systems, workers, maxStates)
	}
	var rows []Table2Row
	for _, sys := range systems {
		ss, err := checkOnTheFly(sys.Alg, sys.CM, spec.StrictSerializability, 1, guard.Process(nil, maxStates), true)
		if err != nil {
			return nil, err
		}
		op, err := checkOnTheFly(sys.Alg, sys.CM, spec.Opacity, 1, guard.Process(nil, maxStates), true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{SS: ss, OP: op})
	}
	return rows, nil
}

// Table2Materialized is Table2 through the materialized engine. Without
// a global -maxstates budget it is exactly Table2 (shared spec
// enumeration, row fan-out at workers > 1). With a budget set, the rows
// go through the budgeted per-check pipeline instead — each check
// charges its own TM build, spec enumeration, and inclusion against the
// budget, and a typed *space.BudgetError aborts the table, matching the
// on-the-fly driver's contract.
func Table2Materialized(systems []System) ([]Table2Row, error) {
	if space.MaxStates() <= 0 {
		return Table2(systems), nil
	}
	var rows []Table2Row
	for _, sys := range systems {
		ss, err := VerifyOpts(sys.Alg, sys.CM, spec.StrictSerializability, Options{Engine: EngineMaterialized})
		if err != nil {
			return nil, err
		}
		op, err := VerifyOpts(sys.Alg, sys.CM, spec.Opacity, Options{Engine: EngineMaterialized})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{SS: ss, OP: op})
	}
	return rows, nil
}

// table2OnTheFlyPar fans the rows out over the worker pool; per-row obs
// phases are skipped (the phase stack assumes a single-threaded spine)
// but counters and rows match the sequential driver.
func table2OnTheFlyPar(systems []System, workers, maxStates int) ([]Table2Row, error) {
	done := obs.Phase("safety:table2-onthefly-parallel")
	defer done()
	rows := make([]Table2Row, len(systems))
	errs := make([]error, len(systems))
	parbfs.For(len(systems), workers, func(i int) {
		sys := systems[i]
		ss, err := checkOnTheFly(sys.Alg, sys.CM, spec.StrictSerializability, 1, guard.Process(nil, maxStates), false)
		if err != nil {
			errs[i] = err
			return
		}
		op, err := checkOnTheFly(sys.Alg, sys.CM, spec.Opacity, 1, guard.Process(nil, maxStates), false)
		if err != nil {
			errs[i] = err
			return
		}
		rows[i] = Table2Row{SS: ss, OP: op}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}
