package safety

import (
	"math/rand"
	"testing"

	"tmcheck/internal/core"
	"tmcheck/internal/explore"
	"tmcheck/internal/spec"
	"tmcheck/internal/tm"
)

// The reduction theorem says (2,2) verdicts extend to every instance;
// these tests check the premise from the other side on instances the
// checker can still handle directly. They are skipped in -short mode (the
// DSTM (2,3) instance takes a few seconds).
func TestSafetyLargerInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("larger instances are slow")
	}
	type inst struct {
		alg tm.Algorithm
	}
	cases := []inst{
		{tm.NewSeq(3, 2)},
		{tm.NewSeq(2, 3)},
		{tm.NewTwoPL(3, 2)},
		{tm.NewTwoPL(2, 3)},
		{tm.NewDSTM(2, 3)},
	}
	for _, c := range cases {
		res := Verify(c.alg, nil, spec.Opacity)
		if !res.Holds {
			t.Errorf("%s at (%d,%d): opacity fails with cex %q",
				res.System, res.Threads, res.Vars, res.Counterexample)
		}
		t.Logf("%s at (%d,%d): %d TM states vs %d spec states, inclusion in %v",
			res.System, res.Threads, res.Vars, res.TMStates, res.SpecStates, res.Elapsed)
	}
}

// Modified TL2 stays broken on larger instances too.
func TestModTL2BrokenAtLargerInstance(t *testing.T) {
	if testing.Short() {
		t.Skip("larger instances are slow")
	}
	res := Verify(tm.NewTL2Mod(2, 3), tm.Polite{}, spec.StrictSerializability)
	if res.Holds {
		t.Error("modified TL2 should stay broken at (2,3)")
	}
	if core.IsStrictlySerializable(res.Counterexample) {
		t.Errorf("counterexample %q is serializable", res.Counterexample)
	}
}

// 2PL's language is safe under direct-update semantics as well: its locks
// order every conflicting pair of accesses, so the statement-level
// conflict relation is already acyclic. Sampled over random walks.
func TestTwoPLDirectUpdateSafe(t *testing.T) {
	ts := explore.Build(tm.NewTwoPL(2, 2), nil)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 300; i++ {
		w := randomWalkWord(rng, ts, 14)
		if !core.IsOpaqueUnder(w, core.DirectUpdate) {
			t.Fatalf("2PL word not direct-update opaque: %q", w)
		}
	}
}

// DSTM and TL2 buffer writes, so their words need not be direct-update
// safe — and indeed are not: a reader may commit before a writer whose
// write statement preceded the read. Find one witness to show the
// semantics genuinely differ on TM languages.
func TestDeferredTMsNotDirectUpdateSafe(t *testing.T) {
	ts := explore.Build(tm.NewTL2(2, 2), nil)
	rng := rand.New(rand.NewSource(18))
	for i := 0; i < 2000; i++ {
		w := randomWalkWord(rng, ts, 12)
		if core.IsOpaqueUnder(w, core.DeferredUpdate) && !core.IsOpaqueUnder(w, core.DirectUpdate) {
			return // found the expected witness
		}
	}
	t.Error("no witness found: TL2 words seem direct-update safe, which is suspicious")
}
