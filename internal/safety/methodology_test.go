package safety

import (
	"strings"
	"testing"

	"tmcheck/internal/tm"
)

func TestMethodologyVerifiedTMs(t *testing.T) {
	if testing.Short() {
		t.Skip("samples larger instances")
	}
	for _, tc := range []struct {
		name    string
		factory Factory
	}{
		{"2pl", func(n, k int) tm.Algorithm { return tm.NewTwoPL(n, k) }},
		{"dstm", func(n, k int) tm.Algorithm { return tm.NewDSTM(n, k) }},
		{"norec", func(n, k int) tm.Algorithm { return tm.NewNOrec(n, k) }},
	} {
		rep := VerifyViaReduction(tc.name, tc.factory, 11)
		if !rep.Generalizes() {
			t.Errorf("%s should generalize:\n%s", tc.name, rep)
		}
		out := rep.String()
		if !strings.Contains(out, "ALL programs") {
			t.Errorf("%s report missing conclusion:\n%s", tc.name, out)
		}
	}
}

func TestMethodologyBrokenTM(t *testing.T) {
	rep := VerifyViaReduction("2pl-noreadlock",
		func(n, k int) tm.Algorithm { return tm.NewTwoPLNoReadLock(n, k) }, 12)
	if rep.Generalizes() {
		t.Error("broken TM should not generalize")
	}
	if !strings.Contains(rep.String(), "FAILS") {
		t.Errorf("report should show the failure:\n%s", rep)
	}
}
