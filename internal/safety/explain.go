package safety

import (
	"fmt"
	"strings"

	"tmcheck/internal/core"
	"tmcheck/internal/spec"
)

// Explain renders a human-readable account of a failed safety check: the
// counterexample word, its transactions, and the precedence cycle that
// makes it unserializable — which conflicting statements force which
// serialization orders. It returns "" for a passing result.
func Explain(r Result) string {
	if r.Holds || len(r.Counterexample) == 0 {
		return ""
	}
	w := r.Counterexample
	var b strings.Builder
	fmt.Fprintf(&b, "%s violates %v on the word\n    %s\n", r.System, r.Prop, w)

	// For strict serializability the cycle lives in com(w).
	target := w
	if r.Prop == spec.StrictSerializability {
		target = core.Com(w)
	}
	g := core.BuildConflictGraph(target)
	cyc := g.Cycle()
	if cyc == nil {
		fmt.Fprintf(&b, "(no conflict cycle — the violation is a real-time ordering issue)\n")
		return b.String()
	}
	txs := g.Txs
	fmt.Fprintf(&b, "the committed transactions cannot be ordered: ")
	names := make([]string, len(cyc)+1)
	for i, ti := range cyc {
		names[i] = txName(txs[ti])
	}
	names[len(cyc)] = txName(txs[cyc[0]])
	fmt.Fprintf(&b, "%s\n", strings.Join(names, " < "))
	for i := range cyc {
		a, c := txs[cyc[i]], txs[cyc[(i+1)%len(cyc)]]
		fmt.Fprintf(&b, "  %s must precede %s: %s\n", txName(a), txName(c), edgeReason(target, a, c))
	}
	return b.String()
}

func txName(x *core.Transaction) string {
	return fmt.Sprintf("T%d.%d", x.Thread+1, x.Seq+1)
}

// edgeReason reconstructs why transaction a must serialize before c.
func edgeReason(w core.Word, a, c *core.Transaction) string {
	// Conflict-pair reasons.
	for _, p := range core.ConflictPairs(w) {
		owner := core.TxOf(w, core.Transactions(w))
		pa, pc := owner[p.I], owner[p.J]
		if sameTx(pa, a) && sameTx(pc, c) {
			return fmt.Sprintf("statement %s at position %d conflicts with %s at position %d",
				w[p.I], p.I+1, w[p.J], p.J+1)
		}
	}
	// Program order.
	if a.Thread == c.Thread && a.Seq < c.Seq {
		return "program order (same thread)"
	}
	// Real time.
	if a.Precedes(c) && c.Status != core.TxUnfinished {
		return fmt.Sprintf("real-time order: %s finishes (position %d) before %s starts (position %d)",
			txName(a), a.Last()+1, txName(c), c.First()+1)
	}
	return "precedence required by the conflict graph"
}

func sameTx(x, y *core.Transaction) bool {
	return x != nil && y != nil && x.Thread == y.Thread && x.Seq == y.Seq
}
