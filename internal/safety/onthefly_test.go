package safety

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"tmcheck/internal/obs"
	"tmcheck/internal/parbfs"
	"tmcheck/internal/space"
	"tmcheck/internal/spec"
	"tmcheck/internal/tm"
)

// eqSystems is every registry TM without a manager at (n, k), plus the
// paper's managed system modtl2+polite.
func eqSystems(t *testing.T, n, k int) []System {
	t.Helper()
	var systems []System
	for _, name := range tm.AlgorithmNames() {
		alg, err := tm.NewAlgorithm(name, n, k)
		if err != nil {
			t.Fatal(err)
		}
		systems = append(systems, System{Alg: alg})
	}
	systems = append(systems, System{Alg: tm.NewTL2Mod(n, k), CM: tm.Polite{}})
	return systems
}

// TestEngineAgreement checks the tentpole determinism claim: the
// on-the-fly engine agrees with the materialized pipeline on verdict
// AND counterexample word for every registry TM × property, at (2,1)
// and (2,2), sequentially and with four workers.
func TestEngineAgreement(t *testing.T) {
	dims := [][2]int{{2, 1}, {2, 2}}
	if testing.Short() {
		dims = dims[:1]
	}
	for _, d := range dims {
		n, k := d[0], d[1]
		for _, sys := range eqSystems(t, n, k) {
			name := sys.Alg.Name()
			if sys.CM != nil {
				name += "+" + sys.CM.Name()
			}
			for _, prop := range []spec.Property{spec.StrictSerializability, spec.Opacity} {
				mat, err := VerifyOpts(sys.Alg, sys.CM, prop, Options{Workers: 1, Engine: EngineMaterialized})
				if err != nil {
					t.Fatalf("%s (%d,%d) %s materialized: %v", name, n, k, prop.Key(), err)
				}
				for _, workers := range []int{1, 4} {
					otf, err := VerifyOpts(sys.Alg, sys.CM, prop, Options{Workers: workers, Engine: EngineOnTheFly})
					if err != nil {
						t.Fatalf("%s (%d,%d) %s otf w=%d: %v", name, n, k, prop.Key(), workers, err)
					}
					if otf.Holds != mat.Holds {
						t.Errorf("%s (%d,%d) %s w=%d: otf holds=%v, materialized holds=%v",
							name, n, k, prop.Key(), workers, otf.Holds, mat.Holds)
						continue
					}
					if !reflect.DeepEqual(otf.Counterexample, mat.Counterexample) {
						t.Errorf("%s (%d,%d) %s w=%d: counterexamples differ\n otf: %v\n mat: %v",
							name, n, k, prop.Key(), workers, otf.Counterexample, mat.Counterexample)
					}
					if otf.Engine != EngineOnTheFly {
						t.Errorf("%s: otf result reports engine %v", name, otf.Engine)
					}
				}
			}
		}
	}
}

// TestOnTheFlySmoke is the CI -short smoke check: modified TL2 with the
// polite manager must still yield its §5.4 counterexample through the
// on-the-fly engine.
func TestOnTheFlySmoke(t *testing.T) {
	res, err := CheckOnTheFly(tm.NewTL2Mod(2, 2), tm.Polite{}, spec.StrictSerializability)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("modtl2+polite reported strictly serializable; want the §5.4 counterexample")
	}
	if len(res.Counterexample) == 0 {
		t.Fatal("violation without a counterexample word")
	}
	if res.SpecStates == 0 || res.TMStates == 0 {
		t.Errorf("missing construction counts: tm=%d spec=%d", res.TMStates, res.SpecStates)
	}
}

// TestBudgetExceeded checks the -maxstates contract on both engines and
// both parallel modes: a tiny budget yields a typed *space.BudgetError
// carrying the states-visited count, not a crash or a bogus verdict.
func TestBudgetExceeded(t *testing.T) {
	for _, engine := range []Engine{EngineOnTheFly, EngineMaterialized} {
		for _, workers := range []int{1, 4} {
			_, err := VerifyOpts(tm.NewDSTM(2, 2), nil, spec.Opacity,
				Options{Workers: workers, MaxStates: 50, Engine: engine})
			label := fmt.Sprintf("%v w=%d", engine, workers)
			if err == nil {
				t.Fatalf("%s: no error under a 50-state budget", label)
			}
			if !errors.Is(err, space.ErrBudgetExceeded) {
				t.Fatalf("%s: error %v is not ErrBudgetExceeded", label, err)
			}
			var be *space.BudgetError
			if !errors.As(err, &be) {
				t.Fatalf("%s: error %v is not a *BudgetError", label, err)
			}
			if be.Budget != 50 || be.Visited <= 50 {
				t.Errorf("%s: budget error reports budget=%d visited=%d", label, be.Budget, be.Visited)
			}
		}
	}
}

// TestBudgetGlobalKnob checks that VerifyOpts picks up the process-wide
// space.SetMaxStates knob (the cmd/tmcheck -maxstates flag) when no
// explicit option is set.
func TestBudgetGlobalKnob(t *testing.T) {
	space.SetMaxStates(40)
	defer space.SetMaxStates(0)
	_, err := CheckOnTheFly(tm.NewDSTM(2, 2), nil, spec.Opacity)
	if !errors.Is(err, space.ErrBudgetExceeded) {
		t.Fatalf("global -maxstates ignored: err = %v", err)
	}
}

// TestTable2MaterializedBudget checks that the materialized table
// driver honors the global -maxstates knob like the on-the-fly one: a
// tiny budget aborts the table with a typed error, and without a budget
// the rows are exactly Table2's.
func TestTable2MaterializedBudget(t *testing.T) {
	systems := PaperSystems(2, 1)

	space.SetMaxStates(50)
	_, err := Table2Materialized(systems)
	space.SetMaxStates(0)
	if !errors.Is(err, space.ErrBudgetExceeded) {
		t.Fatalf("materialized table under a 50-state budget: err = %v", err)
	}

	rows, err := Table2Materialized(systems)
	if err != nil {
		t.Fatal(err)
	}
	want := Table2(systems)
	for i := range want {
		if rows[i].SS.Holds != want[i].SS.Holds || rows[i].SS.TMStates != want[i].SS.TMStates ||
			!reflect.DeepEqual(rows[i].SS.Counterexample, want[i].SS.Counterexample) {
			t.Errorf("row %d: unbudgeted Table2Materialized differs from Table2", i)
		}
	}
}

// TestOnTheFlyConstructsFewerSpecStates pins the laziness win through
// the obs vitals: the on-the-fly engine reproduces the Table 2
// verdicts at (2,2), and the spec states it constructs never exceed a
// full spec.Enumerate — strictly fewer for every paper TM under strict
// serializability, and strictly fewer under opacity except for the
// permissive dstm and tl2, whose most-general-program product provably
// reaches every opacity spec state (asserted as exact saturation so a
// regression in either direction is caught).
func TestOnTheFlyConstructsFewerSpecStates(t *testing.T) {
	reg := obs.Default()
	wasEnabled := reg.Enabled()
	reg.SetEnabled(true)
	reg.Reset()
	defer func() {
		reg.Reset()
		reg.SetEnabled(wasEnabled)
	}()

	full := map[string]int{
		spec.StrictSerializability.Key(): spec.NewDet(spec.StrictSerializability, 2, 2).Enumerate().NumStates(),
		spec.Opacity.Key():               spec.NewDet(spec.Opacity, 2, 2).Enumerate().NumStates(),
	}
	// saturates marks the opacity checks whose product covers the whole
	// specification (permissive TMs emit every statement order).
	saturates := map[string]bool{"dstm": true, "tl2": true}
	wantHolds := []bool{true, true, true, true, false}
	for i, sys := range PaperSystems(2, 2) {
		for _, prop := range []spec.Property{spec.StrictSerializability, spec.Opacity} {
			res, err := CheckOnTheFly(sys.Alg, sys.CM, prop)
			if err != nil {
				t.Fatal(err)
			}
			if res.Holds != wantHolds[i] {
				t.Errorf("%s %s: holds=%v want %v", res.System, prop.Key(), res.Holds, wantHolds[i])
			}
			key := "safety." + res.System + "." + prop.Key() + ".otf.spec_states"
			constructed, ok := reg.Snapshot("").Gauges[key]
			if !ok {
				t.Fatalf("%s: obs gauge %q not recorded", res.System, key)
			}
			if int(constructed) != res.SpecStates {
				t.Errorf("%s %s: gauge says %d spec states, result says %d",
					res.System, prop.Key(), constructed, res.SpecStates)
			}
			if prop == spec.Opacity && saturates[res.System] {
				if int(constructed) != full[prop.Key()] {
					t.Errorf("%s %s: constructed %d spec states, expected saturation at %d",
						res.System, prop.Key(), constructed, full[prop.Key()])
				}
			} else if int(constructed) >= full[prop.Key()] {
				t.Errorf("%s %s: constructed %d spec states, not fewer than the full %d",
					res.System, prop.Key(), constructed, full[prop.Key()])
			}
		}
	}
}

// TestOnTheFlyBudgetHeadroom pins the budget win on a violating TM: a
// -maxstates budget with headroom for the on-the-fly modtl2+polite
// check — which early-exits at the counterexample, never constructing
// the full spec — that the materialized pipeline cannot fit, because it
// must enumerate the whole specification before checking anything.
func TestOnTheFlyBudgetHeadroom(t *testing.T) {
	sys := System{Alg: tm.NewTL2Mod(2, 2), CM: tm.Polite{}}
	prop := spec.StrictSerializability
	// Size the budget from the engines themselves: strictly between the
	// on-the-fly total (pairs + TM + spec constructed at early exit) and
	// the materialized total (TM + full spec + inclusion pairs).
	otf, err := CheckOnTheFly(sys.Alg, sys.CM, prop)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := VerifyOpts(sys.Alg, sys.CM, prop, Options{Workers: 1, Engine: EngineMaterialized})
	if err != nil {
		t.Fatal(err)
	}
	otfTotal := otf.Inclusion.PairsVisited + otf.TMStates + otf.SpecStates
	matTotal := mat.Inclusion.PairsVisited + mat.TMStates + mat.SpecStates
	if otfTotal >= matTotal {
		t.Fatalf("no laziness win: otf total %d, materialized total %d", otfTotal, matTotal)
	}
	budget := otfTotal + (matTotal-otfTotal)/10

	res, err := VerifyOpts(sys.Alg, sys.CM, prop, Options{Workers: 1, MaxStates: budget, Engine: EngineOnTheFly})
	if err != nil {
		t.Fatalf("on-the-fly failed under budget %d: %v", budget, err)
	}
	if res.Holds {
		t.Fatalf("modtl2+polite verdict flipped under budget: %+v", res)
	}
	_, err = VerifyOpts(sys.Alg, sys.CM, prop, Options{Workers: 1, MaxStates: budget, Engine: EngineMaterialized})
	if !errors.Is(err, space.ErrBudgetExceeded) {
		t.Fatalf("materialized engine fit budget %d; want ErrBudgetExceeded, got %v", budget, err)
	}
}

// TestOnTheFlyBudgetHeadroom23 is the (2,3) version of the headroom
// check: at three variables the full strict-serializability spec has
// ~390k states, so the early-exiting on-the-fly engine completes the
// modtl2+polite check under a budget roughly half of what the
// materialized pipeline needs.
func TestOnTheFlyBudgetHeadroom23(t *testing.T) {
	if testing.Short() {
		t.Skip("(2,3) instance skipped in -short")
	}
	sys := System{Alg: tm.NewTL2Mod(2, 3), CM: tm.Polite{}}
	prop := spec.StrictSerializability
	otf, err := CheckOnTheFly(sys.Alg, sys.CM, prop)
	if err != nil {
		t.Fatal(err)
	}
	if otf.Holds {
		t.Fatal("modtl2+polite unexpectedly strictly serializable at (2,3)")
	}
	budget := otf.Inclusion.PairsVisited + otf.TMStates + otf.SpecStates + 10_000
	res, err := VerifyOpts(sys.Alg, sys.CM, prop, Options{Workers: 1, MaxStates: budget, Engine: EngineOnTheFly})
	if err != nil {
		t.Fatalf("on-the-fly failed under budget %d: %v", budget, err)
	}
	if res.Holds {
		t.Fatal("verdict flipped under budget")
	}
	_, err = VerifyOpts(sys.Alg, sys.CM, prop, Options{Workers: 1, MaxStates: budget, Engine: EngineMaterialized})
	if !errors.Is(err, space.ErrBudgetExceeded) {
		t.Fatalf("materialized engine fit budget %d; want ErrBudgetExceeded, got %v", budget, err)
	}
}

// TestTable2OnTheFly cross-checks the on-the-fly table driver against
// the materialized one on the paper systems.
// TestTable2OnTheFlyWorkerInvariance pins the verify invariant for the
// on-the-fly table driver: every worker count yields bit-identical rows
// — verdicts, counterexamples, AND the reported sizes of the failing
// modtl2+polite row (which is why the parallel driver fans out across
// rows with per-check workers=1 rather than parallelizing inside a
// check, whose early-exit sizes are barrier-dependent).
func TestTable2OnTheFlyWorkerInvariance(t *testing.T) {
	systems := PaperSystems(2, 1)
	parbfsSet := func(n int) {
		t.Helper()
		parbfs.SetWorkers(n)
	}
	defer parbfs.SetWorkers(0)

	parbfsSet(1)
	seqRows, err := Table2OnTheFly(systems)
	if err != nil {
		t.Fatal(err)
	}
	parbfsSet(4)
	parRows, err := Table2OnTheFly(systems)
	if err != nil {
		t.Fatal(err)
	}
	if len(parRows) != len(seqRows) {
		t.Fatalf("row count: %d vs %d", len(parRows), len(seqRows))
	}
	for i := range seqRows {
		for _, pr := range []struct {
			name     string
			seq, par Result
		}{
			{"ss", seqRows[i].SS, parRows[i].SS},
			{"op", seqRows[i].OP, parRows[i].OP},
		} {
			if pr.par.Holds != pr.seq.Holds {
				t.Errorf("row %d %s: Holds %v vs %v", i, pr.name, pr.par.Holds, pr.seq.Holds)
			}
			if pr.par.TMStates != pr.seq.TMStates || pr.par.SpecStates != pr.seq.SpecStates {
				t.Errorf("row %d %s: sizes (%d,%d) vs (%d,%d)", i, pr.name,
					pr.par.TMStates, pr.par.SpecStates, pr.seq.TMStates, pr.seq.SpecStates)
			}
			if pr.par.Inclusion.PairsVisited != pr.seq.Inclusion.PairsVisited ||
				pr.par.FrontierPeak != pr.seq.FrontierPeak {
				t.Errorf("row %d %s: search stats differ: pairs %d vs %d, frontier %d vs %d",
					i, pr.name, pr.par.Inclusion.PairsVisited, pr.seq.Inclusion.PairsVisited,
					pr.par.FrontierPeak, pr.seq.FrontierPeak)
			}
			if !reflect.DeepEqual(pr.par.Counterexample, pr.seq.Counterexample) {
				t.Errorf("row %d %s: counterexamples differ", i, pr.name)
			}
		}
	}
}

func TestTable2OnTheFly(t *testing.T) {
	if testing.Short() {
		t.Skip("full-table comparison skipped in -short")
	}
	matRows := Table2(PaperSystems(2, 2))
	otfRows, err := Table2OnTheFly(PaperSystems(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range matRows {
		if otfRows[i].SS.Holds != matRows[i].SS.Holds || otfRows[i].OP.Holds != matRows[i].OP.Holds {
			t.Errorf("row %d: verdicts differ: otf (%v,%v) vs materialized (%v,%v)", i,
				otfRows[i].SS.Holds, otfRows[i].OP.Holds, matRows[i].SS.Holds, matRows[i].OP.Holds)
		}
		if !reflect.DeepEqual(otfRows[i].SS.Counterexample, matRows[i].SS.Counterexample) ||
			!reflect.DeepEqual(otfRows[i].OP.Counterexample, matRows[i].OP.Counterexample) {
			t.Errorf("row %d: counterexamples differ", i)
		}
	}
}
