// Package safety checks TM algorithms against the safety specifications
// (the paper's §5.4): the language of the TM algorithm applied to the most
// general program must be included in the language of the TM specification
// for strict serializability or opacity.
//
// The standard pipeline checks against the deterministic specification,
// where inclusion is a linear product construction; a slower validation
// path checks against the nondeterministic specification with the
// antichain algorithm. By the reduction theorem (paper Theorem 1), a
// verdict for 2 threads and 2 variables extends to all programs for TMs
// satisfying the structural properties P1–P4, and safety without a
// contention manager implies safety with every contention manager (since a
// manager only restricts the language).
package safety

import (
	"time"

	"tmcheck/internal/automata"
	"tmcheck/internal/core"
	"tmcheck/internal/explore"
	"tmcheck/internal/guard"
	"tmcheck/internal/obs"
	"tmcheck/internal/parbfs"
	"tmcheck/internal/spec"
	"tmcheck/internal/tm"
)

// Result reports one language-inclusion check.
type Result struct {
	// System names the TM (and contention manager, if any).
	System string
	// Prop is the property checked.
	Prop spec.Property
	// Threads and Vars are the instance bounds.
	Threads, Vars int
	// TMStates is the size of the TM transition system (Table 2's "Size").
	TMStates int
	// SpecStates is the size of the specification automaton used.
	SpecStates int
	// Holds reports whether L(TM) ⊆ L(Σ).
	Holds bool
	// Counterexample is a word of the TM outside the specification, when
	// inclusion fails.
	Counterexample core.Word
	// Elapsed is the wall-clock time of the inclusion check itself
	// (excluding construction of the two systems).
	Elapsed time.Duration
	// BuildTMElapsed is the wall-clock time spent exploring the TM
	// transition system, when the checking entry point built it (zero
	// when the caller passed a pre-built system).
	BuildTMElapsed time.Duration
	// BuildSpecElapsed is the wall-clock time spent enumerating the
	// specification automaton; when a shared automaton is reused across
	// checks (Table2), the enumeration is charged to the first check
	// and zero here for the rest. BuildTMElapsed + BuildSpecElapsed +
	// Elapsed then adds up to the total wall-clock of the check.
	BuildSpecElapsed time.Duration
	// Inclusion reports the work counters of the inclusion check. For
	// the on-the-fly engine PairsVisited counts the product pairs the
	// interleaved search constructed.
	Inclusion automata.InclusionStats
	// Engine identifies the pipeline that produced this result.
	Engine Engine
	// FrontierPeak is the peak BFS frontier of the on-the-fly product
	// search (zero for the materialized engine).
	FrontierPeak int
	// Resumed is the number of TM states seeded from a snapshot before
	// this check explored anything (zero for a fresh build).
	Resumed int
	// Limit is non-nil when the check stopped at a resource limit
	// instead of reaching a verdict; Holds is then meaningless and the
	// keep-going table drivers render the row as LIMIT(kind). TMStates
	// reports the states constructed before the stop, when known.
	Limit *guard.LimitError
}

// Check verifies L(ts) ⊆ L(Σd prop) with the deterministic specification,
// in time linear in the product of the two systems.
func Check(ts *explore.TS, prop spec.Property) Result {
	det := spec.NewDet(prop, ts.Alg.Threads(), ts.Alg.Vars())
	specStart := time.Now()
	dfa := det.Enumerate()
	specElapsed := time.Since(specStart)
	res := CheckAgainstDFA(ts, prop, dfa)
	res.BuildSpecElapsed = specElapsed
	return res
}

// CheckAgainstDFA is Check with a pre-built specification automaton, so
// the (comparatively expensive) specification enumeration can be shared
// across many TM checks.
func CheckAgainstDFA(ts *explore.TS, prop spec.Property, dfa *automata.DFA) Result {
	return checkAgainstDFA(ts, prop, dfa, true)
}

// checkAgainstDFA is CheckAgainstDFA with the phase span optional: the
// obs phase stack assumes one single-threaded spine, so concurrent
// table rows must not open spans.
func checkAgainstDFA(ts *explore.TS, prop spec.Property, dfa *automata.DFA, phase bool) Result {
	res, err := checkAgainstDFAGuarded(ts, prop, dfa, nil, phase)
	if err != nil {
		// Unreachable: a nil guard never trips.
		panic(err)
	}
	return res
}

// checkAgainstDFAGuarded is checkAgainstDFA consulting a resource
// guard during the inclusion search, for the keep-going drivers: a
// deadline or cancellation interrupts the product walk itself.
func checkAgainstDFAGuarded(ts *explore.TS, prop spec.Property, dfa *automata.DFA, g *guard.Guard, phase bool) (Result, error) {
	if phase {
		done := obs.Phase("inclusion:" + ts.Name() + ":" + prop.Key())
		defer done()
	}
	nfa := ts.DenseNFA()
	start := time.Now()
	ok, cexLetters, st, err := automata.IncludedInDFADenseGuarded(nfa, dfa, g)
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		System:     ts.Name(),
		Prop:       prop,
		Threads:    ts.Alg.Threads(),
		Vars:       ts.Alg.Vars(),
		TMStates:   ts.NumStates(),
		SpecStates: dfa.NumStates(),
		Holds:      ok,
		Elapsed:    elapsed,
		Inclusion:  st,
		Resumed:    ts.Resumed,
	}
	if !ok {
		res.Counterexample = ts.Alphabet.DecodeWord(cexLetters)
	}
	res.record("dfa")
	return res, nil
}

// record writes the per-system verdict counters and timings into the
// obs registry, keyed "safety.<system>.<prop>.*".
func (r Result) record(pipeline string) {
	if !obs.Enabled() {
		return
	}
	key := "safety." + r.System + "." + r.Prop.Key()
	obs.Inc(key+".checks", 1)
	obs.SetGauge(key+".tm_states", int64(r.TMStates))
	obs.SetGauge(key+".spec_states", int64(r.SpecStates))
	switch pipeline {
	case "dfa":
		obs.Inc(key+".pairs", int64(r.Inclusion.PairsVisited))
	case "antichain":
		obs.Inc(key+".antichain_nodes", int64(r.Inclusion.NodesCreated))
		obs.Inc(key+".antichain_pruned", int64(r.Inclusion.NodesPruned))
	}
	if !r.Holds {
		obs.SetGauge(key+".cex_len", int64(r.Inclusion.CexLen))
	}
	obs.AddTime(key+".inclusion", r.Elapsed)
}

// CheckAgainstNondet verifies L(ts) ⊆ L(Σ prop) directly against the
// nondeterministic specification using the antichain algorithm — the
// validation path for the deterministic pipeline.
func CheckAgainstNondet(ts *explore.TS, prop spec.Property) Result {
	nd := spec.NewNondet(prop, ts.Alg.Threads(), ts.Alg.Vars())
	specStart := time.Now()
	specNFA := nd.Enumerate()
	specElapsed := time.Since(specStart)
	nfa := ts.NFA()
	start := time.Now()
	ok, cexLetters, st := automata.IncludedInNFAStats(nfa, specNFA)
	elapsed := time.Since(start)
	res := Result{
		System:           ts.Name(),
		Prop:             prop,
		Threads:          ts.Alg.Threads(),
		Vars:             ts.Alg.Vars(),
		TMStates:         ts.NumStates(),
		SpecStates:       specNFA.NumStates(),
		Holds:            ok,
		Elapsed:          elapsed,
		BuildSpecElapsed: specElapsed,
		Inclusion:        st,
	}
	if !ok {
		res.Counterexample = ts.Alphabet.DecodeWord(cexLetters)
	}
	res.record("antichain")
	return res
}

// Verify builds the TM transition system for alg (with the optional
// contention manager) and checks it against the deterministic
// specification.
func Verify(alg tm.Algorithm, cm tm.ContentionManager, prop spec.Property) Result {
	buildStart := time.Now()
	ts := explore.Build(alg, cm)
	buildElapsed := time.Since(buildStart)
	res := Check(ts, prop)
	res.BuildTMElapsed = buildElapsed
	return res
}

// Table2Row pairs the two safety verdicts for one TM, as in the paper's
// Table 2.
type Table2Row struct {
	SS Result
	OP Result
}

// Table2 reproduces the paper's Table 2 on the given systems: for each,
// the transition-system size and the verdicts for strict serializability
// and opacity with counterexamples. The deterministic specifications for
// the (n, k) instances involved are built once and shared.
//
// With the process-wide worker count above one, the rows run
// concurrently over a bounded pool (each row's exploration and checks
// stay sequential inside the row — the row fan-out is the coarser and
// cheaper parallelism); results are identical to the sequential driver.
func Table2(systems []System) []Table2Row {
	if workers := parbfs.Workers(); workers > 1 && len(systems) > 1 {
		return table2Par(systems, workers)
	}
	return table2Seq(systems)
}

func table2Seq(systems []System) []Table2Row {
	type key struct {
		prop spec.Property
		n, k int
	}
	dfas := map[key]*automata.DFA{}
	// dfaFor builds (or reuses) the deterministic specification and
	// reports the enumeration time — zero on a cache hit, so the cost
	// is charged exactly once across the table.
	dfaFor := func(prop spec.Property, n, k int) (*automata.DFA, time.Duration) {
		k2 := key{prop, n, k}
		if d, ok := dfas[k2]; ok {
			return d, 0
		}
		done := obs.Phase("build-spec:" + prop.Key())
		start := time.Now()
		d := spec.NewDet(prop, n, k).Enumerate()
		elapsed := time.Since(start)
		done()
		dfas[k2] = d
		return d, elapsed
	}
	var rows []Table2Row
	for _, sys := range systems {
		name := sys.Alg.Name()
		if sys.CM != nil {
			name += "+" + sys.CM.Name()
		}
		doneSys := obs.Phase("safety:" + name)
		doneBuild := obs.Phase("build-tm")
		buildStart := time.Now()
		ts := explore.Build(sys.Alg, sys.CM)
		buildElapsed := time.Since(buildStart)
		doneBuild()
		n, k := sys.Alg.Threads(), sys.Alg.Vars()
		ssDFA, ssSpecElapsed := dfaFor(spec.StrictSerializability, n, k)
		opDFA, opSpecElapsed := dfaFor(spec.Opacity, n, k)
		row := Table2Row{
			SS: CheckAgainstDFA(ts, spec.StrictSerializability, ssDFA),
			OP: CheckAgainstDFA(ts, spec.Opacity, opDFA),
		}
		row.SS.BuildTMElapsed = buildElapsed
		row.SS.BuildSpecElapsed = ssSpecElapsed
		row.OP.BuildSpecElapsed = opSpecElapsed
		rows = append(rows, row)
		doneSys()
	}
	return rows
}

// table2Par is the concurrent Table 2 driver: the distinct deterministic
// specifications are enumerated once up front (their cost charged to the
// first row that uses them, like the sequential driver), then the rows
// fan out over the worker pool. Per-row obs phases are skipped — the
// phase stack assumes a single-threaded spine — but all counters and
// the returned rows are identical to table2Seq.
func table2Par(systems []System, workers int) []Table2Row {
	type key struct {
		prop spec.Property
		n, k int
	}
	type builtDFA struct {
		dfa      *automata.DFA
		elapsed  time.Duration
		firstRow int
	}
	done := obs.Phase("safety:table2-parallel")
	defer done()
	dfas := map[key]*builtDFA{}
	for i, sys := range systems {
		n, k := sys.Alg.Threads(), sys.Alg.Vars()
		for _, prop := range []spec.Property{spec.StrictSerializability, spec.Opacity} {
			k2 := key{prop, n, k}
			if _, ok := dfas[k2]; ok {
				continue
			}
			start := time.Now()
			d := spec.NewDet(prop, n, k).EnumerateWorkers(workers)
			dfas[k2] = &builtDFA{dfa: d, elapsed: time.Since(start), firstRow: i}
		}
	}
	rows := make([]Table2Row, len(systems))
	parbfs.For(len(systems), workers, func(i int) {
		sys := systems[i]
		n, k := sys.Alg.Threads(), sys.Alg.Vars()
		buildStart := time.Now()
		ts := explore.BuildWorkers(sys.Alg, sys.CM, 1)
		buildElapsed := time.Since(buildStart)
		ss := dfas[key{spec.StrictSerializability, n, k}]
		op := dfas[key{spec.Opacity, n, k}]
		row := Table2Row{
			SS: checkAgainstDFA(ts, spec.StrictSerializability, ss.dfa, false),
			OP: checkAgainstDFA(ts, spec.Opacity, op.dfa, false),
		}
		row.SS.BuildTMElapsed = buildElapsed
		if ss.firstRow == i {
			row.SS.BuildSpecElapsed = ss.elapsed
		}
		if op.firstRow == i {
			row.OP.BuildSpecElapsed = op.elapsed
		}
		rows[i] = row
	})
	return rows
}

// System is a TM algorithm with an optional contention manager.
type System struct {
	Alg tm.Algorithm
	CM  tm.ContentionManager
}

// PaperSystems returns the five systems of the paper's Table 2 at (n, k):
// sequential, 2PL, DSTM, TL2, and modified TL2 with the polite manager.
func PaperSystems(n, k int) []System {
	return []System{
		{Alg: tm.NewSeq(n, k)},
		{Alg: tm.NewTwoPL(n, k)},
		{Alg: tm.NewDSTM(n, k)},
		{Alg: tm.NewTL2(n, k)},
		{Alg: tm.NewTL2Mod(n, k), CM: tm.Polite{}},
	}
}
