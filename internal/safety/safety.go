// Package safety checks TM algorithms against the safety specifications
// (the paper's §5.4): the language of the TM algorithm applied to the most
// general program must be included in the language of the TM specification
// for strict serializability or opacity.
//
// The standard pipeline checks against the deterministic specification,
// where inclusion is a linear product construction; a slower validation
// path checks against the nondeterministic specification with the
// antichain algorithm. By the reduction theorem (paper Theorem 1), a
// verdict for 2 threads and 2 variables extends to all programs for TMs
// satisfying the structural properties P1–P4, and safety without a
// contention manager implies safety with every contention manager (since a
// manager only restricts the language).
package safety

import (
	"time"

	"tmcheck/internal/automata"
	"tmcheck/internal/core"
	"tmcheck/internal/explore"
	"tmcheck/internal/spec"
	"tmcheck/internal/tm"
)

// Result reports one language-inclusion check.
type Result struct {
	// System names the TM (and contention manager, if any).
	System string
	// Prop is the property checked.
	Prop spec.Property
	// Threads and Vars are the instance bounds.
	Threads, Vars int
	// TMStates is the size of the TM transition system (Table 2's "Size").
	TMStates int
	// SpecStates is the size of the specification automaton used.
	SpecStates int
	// Holds reports whether L(TM) ⊆ L(Σ).
	Holds bool
	// Counterexample is a word of the TM outside the specification, when
	// inclusion fails.
	Counterexample core.Word
	// Elapsed is the wall-clock time of the inclusion check itself
	// (excluding construction of the two systems).
	Elapsed time.Duration
}

// Check verifies L(ts) ⊆ L(Σd prop) with the deterministic specification,
// in time linear in the product of the two systems.
func Check(ts *explore.TS, prop spec.Property) Result {
	det := spec.NewDet(prop, ts.Alg.Threads(), ts.Alg.Vars())
	dfa := det.Enumerate()
	return CheckAgainstDFA(ts, prop, dfa)
}

// CheckAgainstDFA is Check with a pre-built specification automaton, so
// the (comparatively expensive) specification enumeration can be shared
// across many TM checks.
func CheckAgainstDFA(ts *explore.TS, prop spec.Property, dfa *automata.DFA) Result {
	nfa := ts.NFA()
	start := time.Now()
	ok, cexLetters := automata.IncludedInDFA(nfa, dfa)
	elapsed := time.Since(start)
	res := Result{
		System:     ts.Name(),
		Prop:       prop,
		Threads:    ts.Alg.Threads(),
		Vars:       ts.Alg.Vars(),
		TMStates:   ts.NumStates(),
		SpecStates: dfa.NumStates(),
		Holds:      ok,
		Elapsed:    elapsed,
	}
	if !ok {
		res.Counterexample = ts.Alphabet.DecodeWord(cexLetters)
	}
	return res
}

// CheckAgainstNondet verifies L(ts) ⊆ L(Σ prop) directly against the
// nondeterministic specification using the antichain algorithm — the
// validation path for the deterministic pipeline.
func CheckAgainstNondet(ts *explore.TS, prop spec.Property) Result {
	nd := spec.NewNondet(prop, ts.Alg.Threads(), ts.Alg.Vars())
	specNFA := nd.Enumerate()
	nfa := ts.NFA()
	start := time.Now()
	ok, cexLetters := automata.IncludedInNFA(nfa, specNFA)
	elapsed := time.Since(start)
	res := Result{
		System:     ts.Name(),
		Prop:       prop,
		Threads:    ts.Alg.Threads(),
		Vars:       ts.Alg.Vars(),
		TMStates:   ts.NumStates(),
		SpecStates: specNFA.NumStates(),
		Holds:      ok,
		Elapsed:    elapsed,
	}
	if !ok {
		res.Counterexample = ts.Alphabet.DecodeWord(cexLetters)
	}
	return res
}

// Verify builds the TM transition system for alg (with the optional
// contention manager) and checks it against the deterministic
// specification.
func Verify(alg tm.Algorithm, cm tm.ContentionManager, prop spec.Property) Result {
	return Check(explore.Build(alg, cm), prop)
}

// Table2Row pairs the two safety verdicts for one TM, as in the paper's
// Table 2.
type Table2Row struct {
	SS Result
	OP Result
}

// Table2 reproduces the paper's Table 2 on the given systems: for each,
// the transition-system size and the verdicts for strict serializability
// and opacity with counterexamples. The deterministic specifications for
// the (n, k) instances involved are built once and shared.
func Table2(systems []System) []Table2Row {
	type key struct {
		prop spec.Property
		n, k int
	}
	dfas := map[key]*automata.DFA{}
	dfaFor := func(prop spec.Property, n, k int) *automata.DFA {
		k2 := key{prop, n, k}
		if d, ok := dfas[k2]; ok {
			return d
		}
		d := spec.NewDet(prop, n, k).Enumerate()
		dfas[k2] = d
		return d
	}
	var rows []Table2Row
	for _, sys := range systems {
		ts := explore.Build(sys.Alg, sys.CM)
		n, k := sys.Alg.Threads(), sys.Alg.Vars()
		rows = append(rows, Table2Row{
			SS: CheckAgainstDFA(ts, spec.StrictSerializability, dfaFor(spec.StrictSerializability, n, k)),
			OP: CheckAgainstDFA(ts, spec.Opacity, dfaFor(spec.Opacity, n, k)),
		})
	}
	return rows
}

// System is a TM algorithm with an optional contention manager.
type System struct {
	Alg tm.Algorithm
	CM  tm.ContentionManager
}

// PaperSystems returns the five systems of the paper's Table 2 at (n, k):
// sequential, 2PL, DSTM, TL2, and modified TL2 with the polite manager.
func PaperSystems(n, k int) []System {
	return []System{
		{Alg: tm.NewSeq(n, k)},
		{Alg: tm.NewTwoPL(n, k)},
		{Alg: tm.NewDSTM(n, k)},
		{Alg: tm.NewTL2(n, k)},
		{Alg: tm.NewTL2Mod(n, k), CM: tm.Polite{}},
	}
}
