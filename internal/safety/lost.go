package safety

import (
	"tmcheck/internal/automata"
	"tmcheck/internal/core"
	"tmcheck/internal/explore"
	"tmcheck/internal/spec"
)

// LostConcurrency finds a shortest safe word the TM forbids: a word in the
// property's language (πss or πop over the TM's instance bounds) that is
// not in L(TM). Every safe TM that is not maximally permissive has one —
// the witness shows concretely what concurrency the TM gives up. ok is
// false only if the TM admits every safe word (no known TM does).
//
// Spontaneous aborts make degenerate witnesses (the specification allows
// an abort anywhere, while TMs only abort under duress), so the search is
// restricted to abort-free words — the concurrency a TM user actually
// cares about.
//
// The search runs a BFS over the product of the deterministic
// specification and the subset construction of the TM's NFA, looking for
// a reachable pair where the specification can extend but the TM cannot.
func LostConcurrency(ts *explore.TS, prop spec.Property) (core.Word, bool) {
	dfa := spec.NewDet(prop, ts.Alg.Threads(), ts.Alg.Vars()).Enumerate()
	nfa := ts.NFA()

	type node struct {
		d   int
		set *automata.BitSet
	}
	type key struct {
		d int
		h uint64
	}
	visited := map[key][]*automata.BitSet{}
	seen := func(d int, s *automata.BitSet) bool {
		for _, x := range visited[key{d, s.Hash()}] {
			if x.Equal(s) {
				return true
			}
		}
		return false
	}
	mark := func(d int, s *automata.BitSet) {
		k := key{d, s.Hash()}
		visited[k] = append(visited[k], s)
	}

	type qitem struct {
		n      node
		parent int
		letter int
	}
	var items []qitem
	start := node{d: dfa.Initial(), set: nfa.InitialSet()}
	mark(start.d, start.set)
	items = append(items, qitem{n: start, parent: -1, letter: -1})

	build := func(idx int) core.Word {
		var rev []int
		for idx >= 0 {
			if items[idx].letter >= 0 {
				rev = append(rev, items[idx].letter)
			}
			idx = items[idx].parent
		}
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		return ts.Alphabet.DecodeWord(rev)
	}

	for qi := 0; qi < len(items); qi++ {
		cur := items[qi].n
		for l := 0; l < dfa.Alphabet(); l++ {
			if ts.Alphabet.Decode(l).Cmd.Op == core.OpAbort {
				continue // abort-free witnesses only
			}
			d2 := dfa.Succ(cur.d, l)
			if d2 < 0 {
				continue // not a safe extension
			}
			set2 := nfa.Step(cur.set, l)
			if set2.Empty() {
				// Safe word the TM cannot produce.
				w := build(qi)
				return append(w, ts.Alphabet.Decode(l)), true
			}
			n2 := node{d: d2, set: set2}
			if seen(n2.d, n2.set) {
				continue
			}
			mark(n2.d, n2.set)
			items = append(items, qitem{n: n2, parent: qi, letter: l})
		}
	}
	return nil, false
}
