package safety

import (
	"context"
	"errors"
	"time"

	"tmcheck/internal/automata"
	"tmcheck/internal/explore"
	"tmcheck/internal/guard"
	"tmcheck/internal/obs"
	"tmcheck/internal/parbfs"
	"tmcheck/internal/space"
	"tmcheck/internal/spec"
	"tmcheck/internal/tm"
)

// Table2Resilient is the keep-going Table 2 driver of cmd/tmcheck:
// every check runs under ctx (deadline and Ctrl-C) plus the
// process-wide -maxstates and -maxmem limits, and a check that hits a
// limit — or panics inside the TM algorithm — yields a Result whose
// Limit field carries the *guard.LimitError instead of aborting the
// table. The remaining checks still run, so one oversized or broken
// system costs its own rows and nothing else.
func Table2Resilient(ctx context.Context, systems []System, engine Engine) []Table2Row {
	return Table2ResilientOpts(systems, engine, Options{Ctx: ctx})
}

// Table2ResilientOpts is Table2Resilient with explicit options: unset
// budgets resolve from the process-wide knobs (so the CLI path is
// unchanged), while a fully-specified Options scopes every limit to
// this table — the tmcheckd path, which also sets NoPhases because it
// runs tables concurrently.
func Table2ResilientOpts(systems []System, engine Engine, opts Options) []Table2Row {
	workers := opts.Workers
	if workers <= 0 {
		workers = parbfs.Workers()
	}
	if engine == EngineOnTheFly {
		if workers > 1 && len(systems) > 1 {
			return table2ResilientOTFPar(systems, workers, opts)
		}
		return table2ResilientOTFSeq(systems, opts)
	}
	return table2ResilientMat(systems, workers, opts)
}

// limitedResult wraps a check-stopping error into a row-renderable
// Result. Every error on these paths is a *guard.LimitError already;
// anything else (defensively) is reported as an isolated panic.
func limitedResult(alg tm.Algorithm, cm tm.ContentionManager, prop spec.Property, engine Engine, elapsed time.Duration, err error) Result {
	var le *guard.LimitError
	if !errors.As(err, &le) {
		le = &guard.LimitError{Kind: guard.KindPanic, Value: err}
	}
	return Result{
		System:   systemName(alg, cm),
		Prop:     prop,
		Threads:  alg.Threads(),
		Vars:     alg.Vars(),
		TMStates: le.Visited,
		Elapsed:  elapsed,
		Engine:   engine,
		Limit:    le,
	}
}

// recordDriverRow writes one keep-going row's vitals under
// "driver.<table>.<system>.<prop>.*": a limit_<label> counter when the
// check was stopped, plus its elapsed time and the states it reached.
func recordDriverRow(table string, r Result) {
	if !obs.Enabled() {
		return
	}
	key := "driver." + table + "." + r.System + "." + r.Prop.Key()
	if r.Limit != nil {
		obs.Inc(key+".limit_"+r.Limit.Kind.Label(), 1)
	} else {
		obs.Inc(key+".completed", 1)
	}
	obs.SetGauge(key+".states", int64(r.TMStates))
	obs.AddTime(key+".elapsed", r.Elapsed)
}

// resilientCheck runs one guarded check and converts a limit into a
// Limit-carrying Result.
func resilientCheck(run func() (Result, error), alg tm.Algorithm, cm tm.ContentionManager, prop spec.Property, engine Engine) Result {
	start := time.Now()
	res, err := run()
	if err != nil {
		res = limitedResult(alg, cm, prop, engine, time.Since(start), err)
	}
	recordDriverRow("table2", res)
	return res
}

// table2ResilientOTFSeq checks the systems with the sequential
// on-the-fly engine, one guarded check at a time, with the same obs
// phase names as the fail-fast driver.
func table2ResilientOTFSeq(systems []System, opts Options) []Table2Row {
	rows := make([]Table2Row, 0, len(systems))
	for _, sys := range systems {
		row := Table2Row{}
		for _, prop := range []spec.Property{spec.StrictSerializability, spec.Opacity} {
			prop := prop
			res := resilientCheck(func() (Result, error) {
				return checkOnTheFly(sys.Alg, sys.CM, prop, 1, opts.guard(), !opts.NoPhases)
			}, sys.Alg, sys.CM, prop, EngineOnTheFly)
			if prop == spec.StrictSerializability {
				row.SS = res
			} else {
				row.OP = res
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// table2ResilientOTFPar fans the rows out over the worker pool;
// per-row obs phases are skipped (the phase stack assumes a
// single-threaded spine), matching the fail-fast parallel driver.
func table2ResilientOTFPar(systems []System, workers int, opts Options) []Table2Row {
	if !opts.NoPhases {
		done := obs.Phase("safety:table2-onthefly-parallel")
		defer done()
	}
	rows := make([]Table2Row, len(systems))
	parbfs.For(len(systems), workers, func(i int) {
		sys := systems[i]
		ss := resilientCheck(func() (Result, error) {
			return checkOnTheFly(sys.Alg, sys.CM, spec.StrictSerializability, 1, opts.guard(), false)
		}, sys.Alg, sys.CM, spec.StrictSerializability, EngineOnTheFly)
		op := resilientCheck(func() (Result, error) {
			return checkOnTheFly(sys.Alg, sys.CM, spec.Opacity, 1, opts.guard(), false)
		}, sys.Alg, sys.CM, spec.Opacity, EngineOnTheFly)
		rows[i] = Table2Row{SS: ss, OP: op}
	})
	return rows
}

// table2ResilientMat is the keep-going materialized driver. Without a
// state budget it replicates the classic Table2 shape — one TM build
// per row under "safety:<name>" / "build-tm" phases, deterministic
// specifications enumerated once per (prop, n, k) under "build-spec:*"
// and shared across rows, inclusions under "inclusion:*" — with the
// guard threaded through every stage. With a budget set the rows go
// through the per-check staged pipeline instead (each check charges
// its own TM build, spec enumeration, and inclusion), matching the
// historical budgeted semantics.
func table2ResilientMat(systems []System, workers int, opts Options) []Table2Row {
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = space.MaxStates()
	}
	if maxStates > 0 {
		perCheck := opts
		perCheck.Engine = EngineMaterialized
		rows := make([]Table2Row, 0, len(systems))
		for _, sys := range systems {
			ss := resilientCheck(func() (Result, error) {
				return VerifyOpts(sys.Alg, sys.CM, spec.StrictSerializability, perCheck)
			}, sys.Alg, sys.CM, spec.StrictSerializability, EngineMaterialized)
			op := resilientCheck(func() (Result, error) {
				return VerifyOpts(sys.Alg, sys.CM, spec.Opacity, perCheck)
			}, sys.Alg, sys.CM, spec.Opacity, EngineMaterialized)
			rows = append(rows, Table2Row{SS: ss, OP: op})
		}
		return rows
	}
	// Unbudgeted from here on: opts.guard() carries a zero state budget
	// (plus the context and heap watchdog) through every stage.
	pf := func(name string) func() {
		if opts.NoPhases {
			return func() {}
		}
		return obs.Phase(name)
	}

	type dfaKey struct {
		prop spec.Property
		n, k int
	}
	dfas := map[dfaKey]*automata.DFA{}
	// dfaFor builds (or reuses) the deterministic specification under
	// the guard, reporting the enumeration time — zero on a cache hit,
	// so the cost is charged exactly once across the table.
	dfaFor := func(prop spec.Property, n, k int) (*automata.DFA, time.Duration, error) {
		k2 := dfaKey{prop, n, k}
		if d, ok := dfas[k2]; ok {
			return d, 0, nil
		}
		done := pf("build-spec:" + prop.Key())
		defer done()
		start := time.Now()
		d, err := spec.NewDet(prop, n, k).EnumerateGuarded(workers, opts.guard())
		if err != nil {
			return nil, time.Since(start), err
		}
		dfas[k2] = d
		return d, time.Since(start), nil
	}

	rows := make([]Table2Row, 0, len(systems))
	for _, sys := range systems {
		name := systemName(sys.Alg, sys.CM)
		doneSys := pf("safety:" + name)
		doneBuild := pf("build-tm")
		buildStart := time.Now()
		ts, buildErr := explore.BuildProviderGuarded(sys.Alg, sys.CM, workers, opts.guard(), opts.Persist)
		buildElapsed := time.Since(buildStart)
		doneBuild()
		if buildErr != nil {
			// The row's TM never materialized: both checks are limited.
			row := Table2Row{
				SS: limitedResult(sys.Alg, sys.CM, spec.StrictSerializability, EngineMaterialized, buildElapsed, buildErr),
				OP: limitedResult(sys.Alg, sys.CM, spec.Opacity, EngineMaterialized, 0, buildErr),
			}
			recordDriverRow("table2", row.SS)
			recordDriverRow("table2", row.OP)
			rows = append(rows, row)
			doneSys()
			continue
		}
		n, k := sys.Alg.Threads(), sys.Alg.Vars()
		check := func(prop spec.Property) Result {
			return resilientCheck(func() (Result, error) {
				dfa, specElapsed, err := dfaFor(prop, n, k)
				if err != nil {
					return Result{}, err
				}
				res, err := checkAgainstDFAGuarded(ts, prop, dfa, opts.guard(), !opts.NoPhases)
				if err != nil {
					return Result{}, err
				}
				res.BuildSpecElapsed = specElapsed
				return res, nil
			}, sys.Alg, sys.CM, prop, EngineMaterialized)
		}
		row := Table2Row{SS: check(spec.StrictSerializability), OP: check(spec.Opacity)}
		row.SS.BuildTMElapsed = buildElapsed
		rows = append(rows, row)
		doneSys()
	}
	return rows
}
