package safety

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"tmcheck/internal/core"
	"tmcheck/internal/guard"
	"tmcheck/internal/space"
	"tmcheck/internal/spec"
	"tmcheck/internal/tm"
)

// panicAfter wraps a TM algorithm and panics on the Nth Steps call,
// modelling a buggy TM implementation crashing mid-exploration.
type panicAfter struct {
	tm.Algorithm
	calls *atomic.Int64
	after int64
}

func (p panicAfter) Name() string { return "panicky" }

func (p panicAfter) Steps(q tm.State, c core.Command, t core.Thread) []tm.Step {
	if p.calls.Add(1) > p.after {
		panic("injected TM fault")
	}
	return p.Algorithm.Steps(q, c, t)
}

// TestTable2ResilientMatchesFailFast checks the keep-going driver is a
// strict generalization: without limits it reproduces the fail-fast
// drivers' verdicts exactly, in both engines, with no Limit set.
func TestTable2ResilientMatchesFailFast(t *testing.T) {
	systems := PaperSystems(2, 2)
	for _, engine := range []Engine{EngineOnTheFly, EngineMaterialized} {
		got := Table2Resilient(context.Background(), systems, engine)
		var want []Table2Row
		var err error
		if engine == EngineOnTheFly {
			want, err = Table2OnTheFly(systems)
		} else {
			want, err = Table2Materialized(systems)
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("engine %v: %d rows, want %d", engine, len(got), len(want))
		}
		for i := range got {
			for _, pair := range [][2]Result{{got[i].SS, want[i].SS}, {got[i].OP, want[i].OP}} {
				g, w := pair[0], pair[1]
				if g.Limit != nil {
					t.Errorf("engine %v: %s %v unexpectedly limited: %v", engine, g.System, g.Prop, g.Limit)
				}
				gc, wc := fmt.Sprint(g.Counterexample), fmt.Sprint(w.Counterexample)
				if g.Holds != w.Holds || gc != wc || g.TMStates != w.TMStates {
					t.Errorf("engine %v: %s %v = (%v, %q, %d states), fail-fast (%v, %q, %d states)",
						engine, g.System, g.Prop, g.Holds, gc, g.TMStates, w.Holds, wc, w.TMStates)
				}
			}
		}
	}
}

// TestTable2ResilientKeepsGoing runs the paper systems under a budget
// that stops the big TMs: the small ones must still resolve, the
// stopped ones must carry a typed states limit, and no error escapes.
func TestTable2ResilientKeepsGoing(t *testing.T) {
	prev := space.MaxStates()
	defer space.SetMaxStates(prev)
	// The materialized pipeline charges the full deterministic spec
	// (5614 ss states at (2,2)) to every check, so it needs a larger
	// budget than the lazy engine for the small systems to fit.
	budgets := map[Engine]int{EngineOnTheFly: 200, EngineMaterialized: 8000}
	for _, engine := range []Engine{EngineOnTheFly, EngineMaterialized} {
		space.SetMaxStates(budgets[engine])
		rows := Table2Resilient(context.Background(), PaperSystems(2, 2), engine)
		resolved, limited := 0, 0
		for _, row := range rows {
			for _, r := range []Result{row.SS, row.OP} {
				if r.Limit == nil {
					resolved++
					continue
				}
				limited++
				if r.Limit.Kind != guard.KindStates {
					t.Errorf("engine %v: %s %v limited by %v, want states", engine, r.System, r.Prop, r.Limit.Kind)
				}
			}
		}
		if resolved == 0 || limited == 0 {
			t.Errorf("engine %v: resolved %d, limited %d — keep-going needs both", engine, resolved, limited)
		}
	}
}

// TestTable2ResilientCancelled hands the driver an expired deadline:
// every check reports a time limit, none crashes or hangs.
func TestTable2ResilientCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows := Table2Resilient(ctx, PaperSystems(2, 2), EngineOnTheFly)
	for _, row := range rows {
		for _, r := range []Result{row.SS, row.OP} {
			if r.Limit == nil || r.Limit.Kind != guard.KindCancelled {
				t.Errorf("%s %v: limit = %v, want cancelled", r.System, r.Prop, r.Limit)
			}
		}
	}
}

// TestTable2ResilientIsolatesPanicTM registers a deliberately crashing
// TM through the public registry — the way an extension TM reaches the
// drivers — and checks the keep-going table isolates the panic into
// LimitError{Kind: panic} rows while the healthy systems still resolve.
func TestTable2ResilientIsolatesPanicTM(t *testing.T) {
	if err := tm.RegisterAlgorithm("panicky-safety", func(n, k int) tm.Algorithm {
		return panicAfter{Algorithm: tm.NewDSTM(n, k), calls: new(atomic.Int64), after: 50}
	}); err != nil {
		t.Fatal(err)
	}
	broken, err := tm.NewAlgorithm("panicky-safety", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	systems := []System{{Alg: tm.NewSeq(2, 2)}, {Alg: broken}}
	for _, engine := range []Engine{EngineOnTheFly, EngineMaterialized} {
		rows := Table2Resilient(context.Background(), systems, engine)
		if len(rows) != 2 {
			t.Fatalf("engine %v: %d rows, want 2", engine, len(rows))
		}
		for _, r := range []Result{rows[0].SS, rows[0].OP} {
			if r.Limit != nil {
				t.Errorf("engine %v: healthy seq limited: %v", engine, r.Limit)
			}
		}
		for _, r := range []Result{rows[1].SS, rows[1].OP} {
			if r.Limit == nil || r.Limit.Kind != guard.KindPanic {
				t.Fatalf("engine %v: broken TM limit = %v, want isolated panic", engine, r.Limit)
			}
			if r.Limit.Value == nil {
				t.Errorf("engine %v: panic limit lost its value", engine)
			}
		}
	}
}

// TestVerifyOptsCtx threads a cancelled context through the one-shot
// safety entry point: the typed cancellation surfaces via the error,
// in both engines.
func TestVerifyOptsCtx(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, engine := range []Engine{EngineOnTheFly, EngineMaterialized} {
		_, err := VerifyOpts(tm.NewDSTM(2, 2), nil, spec.Opacity, Options{Engine: engine, Ctx: ctx})
		var le *guard.LimitError
		if !errors.As(err, &le) || le.Kind != guard.KindCancelled {
			t.Errorf("engine %v: err = %v, want cancellation limit", engine, err)
		}
	}
}
