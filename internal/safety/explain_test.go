package safety

import (
	"strings"
	"testing"

	"tmcheck/internal/core"
	"tmcheck/internal/spec"
	"tmcheck/internal/tm"
)

func TestExplainOnFailure(t *testing.T) {
	res := Verify(tm.NewTL2Mod(2, 2), tm.Polite{}, spec.StrictSerializability)
	if res.Holds {
		t.Fatal("expected failure")
	}
	msg := Explain(res)
	if msg == "" {
		t.Fatal("Explain returned empty string for a failure")
	}
	for _, want := range []string{
		"violates strict serializability",
		"cannot be ordered",
		"must precede",
		"conflicts with",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("Explain output missing %q:\n%s", want, msg)
		}
	}
	// The cycle mentions both threads' transactions.
	if !strings.Contains(msg, "T1.") || !strings.Contains(msg, "T2.") {
		t.Errorf("Explain output missing transaction names:\n%s", msg)
	}
}

func TestExplainOnSuccess(t *testing.T) {
	res := Verify(tm.NewSeq(2, 2), nil, spec.Opacity)
	if !res.Holds {
		t.Fatal("expected success")
	}
	if msg := Explain(res); msg != "" {
		t.Errorf("Explain on success = %q, want empty", msg)
	}
}

// TestExplainEmptyCounterexample: a failing result that carries no
// counterexample word has nothing to explain and must render empty
// rather than panic or fabricate a cycle.
func TestExplainEmptyCounterexample(t *testing.T) {
	res := Result{
		System: "broken",
		Prop:   spec.Opacity,
		Holds:  false,
	}
	if msg := Explain(res); msg != "" {
		t.Errorf("Explain with empty counterexample = %q, want empty", msg)
	}
}

// TestExplainHoldingResultWithWord: a holding result renders empty even
// if a counterexample word was (wrongly) left populated — Holds wins.
func TestExplainHoldingResultWithWord(t *testing.T) {
	res := Verify(tm.NewSeq(2, 2), nil, spec.StrictSerializability)
	if !res.Holds {
		t.Fatal("expected seq to hold")
	}
	res.Counterexample = core.MustParseWord("(r,1)1, c1")
	if msg := Explain(res); msg != "" {
		t.Errorf("Explain on holding result = %q, want empty", msg)
	}
}

// TestExplainAcyclicWord covers the branch where the counterexample's
// committed projection has no conflict cycle, so the explanation can
// only point at a real-time ordering issue.
func TestExplainAcyclicWord(t *testing.T) {
	res := Result{
		System:         "synthetic",
		Prop:           spec.StrictSerializability,
		Holds:          false,
		Counterexample: core.MustParseWord("(r,1)1, c1"),
	}
	msg := Explain(res)
	for _, want := range []string{"violates strict serializability", "no conflict cycle", "real-time ordering"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Explain output missing %q:\n%s", want, msg)
		}
	}
	if strings.Contains(msg, "must precede") {
		t.Errorf("acyclic explanation should not list precedence edges:\n%s", msg)
	}
}

func TestExplainOpacityCycle(t *testing.T) {
	res := Verify(tm.NewDSTMNoValidate(2, 2), nil, spec.Opacity)
	if res.Holds {
		t.Fatal("expected failure for dstm-novalidate")
	}
	msg := Explain(res)
	if !strings.Contains(msg, "violates opacity") {
		t.Errorf("Explain output wrong:\n%s", msg)
	}
}
