package safety

import (
	"strings"
	"testing"

	"tmcheck/internal/spec"
	"tmcheck/internal/tm"
)

func TestExplainOnFailure(t *testing.T) {
	res := Verify(tm.NewTL2Mod(2, 2), tm.Polite{}, spec.StrictSerializability)
	if res.Holds {
		t.Fatal("expected failure")
	}
	msg := Explain(res)
	if msg == "" {
		t.Fatal("Explain returned empty string for a failure")
	}
	for _, want := range []string{
		"violates strict serializability",
		"cannot be ordered",
		"must precede",
		"conflicts with",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("Explain output missing %q:\n%s", want, msg)
		}
	}
	// The cycle mentions both threads' transactions.
	if !strings.Contains(msg, "T1.") || !strings.Contains(msg, "T2.") {
		t.Errorf("Explain output missing transaction names:\n%s", msg)
	}
}

func TestExplainOnSuccess(t *testing.T) {
	res := Verify(tm.NewSeq(2, 2), nil, spec.Opacity)
	if !res.Holds {
		t.Fatal("expected success")
	}
	if msg := Explain(res); msg != "" {
		t.Errorf("Explain on success = %q, want empty", msg)
	}
}

func TestExplainOpacityCycle(t *testing.T) {
	res := Verify(tm.NewDSTMNoValidate(2, 2), nil, spec.Opacity)
	if res.Holds {
		t.Fatal("expected failure for dstm-novalidate")
	}
	msg := Explain(res)
	if !strings.Contains(msg, "violates opacity") {
		t.Errorf("Explain output wrong:\n%s", msg)
	}
}
