package safety

import (
	"testing"

	"tmcheck/internal/explore"
	"tmcheck/internal/liveness"
	"tmcheck/internal/reduction"
	"tmcheck/internal/spec"
	"tmcheck/internal/tm"
)

// Beyond the paper's four TMs: NOrec (single global sequence lock,
// value-based validation abstracted by modified sets) and encounter-time
// locking (TinySTM-style write-back) both verify opaque at (2,2) — so by
// the reduction theorem (their structural properties sampled below) they
// are opaque for all programs.
func TestNewTMsSafety(t *testing.T) {
	for _, alg := range []tm.Algorithm{tm.NewNOrec(2, 2), tm.NewETL(2, 2)} {
		ts := explore.Build(alg, nil)
		for _, prop := range []spec.Property{spec.StrictSerializability, spec.Opacity} {
			res := Check(ts, prop)
			if !res.Holds {
				t.Errorf("%s: %v fails with cex %q", alg.Name(), prop, res.Counterexample)
			}
		}
		t.Logf("%s: %d states", alg.Name(), ts.NumStates())
	}
}

func TestNewTMsSafetyWithManagers(t *testing.T) {
	for _, cm := range []tm.ContentionManager{tm.Aggressive{}, tm.Polite{}, tm.Karma{}} {
		for _, mk := range []func() tm.Algorithm{
			func() tm.Algorithm { return tm.NewNOrec(2, 2) },
			func() tm.Algorithm { return tm.NewETL(2, 2) },
		} {
			res := Verify(mk(), cm, spec.Opacity)
			if !res.Holds {
				t.Errorf("%s: opacity fails with cex %q", res.System, res.Counterexample)
			}
		}
	}
}

// Neither NOrec nor ETL is obstruction free, even with the aggressive
// manager: a preempted commit-lock holder (NOrec) or lock holder (ETL)
// blocks a lone reader forever, and reads cannot steal.
func TestNewTMsLiveness(t *testing.T) {
	for _, mk := range []func() tm.Algorithm{
		func() tm.Algorithm { return tm.NewNOrec(2, 1) },
		func() tm.Algorithm { return tm.NewETL(2, 1) },
	} {
		ts := explore.Build(mk(), tm.Aggressive{})
		if res := liveness.CheckObstructionFreedom(ts); res.Holds {
			t.Errorf("%s: unexpectedly obstruction free", ts.Name())
		}
		if res := liveness.CheckLivelockFreedom(ts); res.Holds {
			t.Errorf("%s: unexpectedly livelock free", ts.Name())
		}
	}
}

// The structural properties P1–P3 hold on samples, so the reduction
// theorem applies to the new TMs as well.
func TestNewTMsStructuralProperties(t *testing.T) {
	for _, alg := range []tm.Algorithm{tm.NewNOrec(2, 2), tm.NewETL(2, 2)} {
		ts := explore.Build(alg, nil)
		s := reduction.NewSampler(ts, 51)
		if v := s.CheckAll(); v != nil {
			t.Errorf("%s: %v", alg.Name(), v)
		}
	}
}
