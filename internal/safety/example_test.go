package safety_test

import (
	"fmt"

	"tmcheck/internal/safety"
	"tmcheck/internal/spec"
	"tmcheck/internal/tm"
)

func ExampleVerify() {
	// Verify DSTM against opacity on the most general program with two
	// threads and two variables; the reduction theorem extends the verdict
	// to all programs.
	res := safety.Verify(tm.NewDSTM(2, 2), nil, spec.Opacity)
	fmt.Println(res.System, "ensures opacity:", res.Holds)
	// Output: dstm ensures opacity: true
}

func ExampleVerify_counterexample() {
	// The modified TL2 of the paper's §5.4 — validate split into rvalidate
	// before chklock — is unsafe; the checker produces a witness.
	res := safety.Verify(tm.NewTL2Mod(2, 2), tm.Polite{}, spec.StrictSerializability)
	fmt.Println("safe:", res.Holds)
	fmt.Println("counterexample:", res.Counterexample)
	// Output:
	// safe: false
	// counterexample: (r,1)1, (w,2)1, (r,2)2, (w,1)2, c1, c2
}
