package parbfs

import (
	"math/bits"
	"slices"
	"sync"

	"tmcheck/internal/pack"
)

// The packed engine: the same level-synchronized BFS as RunControlled,
// but over fixed-width bit-packed state keys interned into sharded
// open-addressing tables (pack.Map) instead of Go maps over comparable
// state values. The determinism argument is identical — new states are
// ordered at each level barrier by their minimal (frontier position,
// emission ordinal) discovery key, which is unique per state — so the
// numbering is bit-identical to a sequential scan-order BFS for every
// worker count. Shard assignment uses the seedless pack.Hash, so it is
// deterministic too, though nothing downstream depends on it.

// pcand is a candidate discovered during the current level: its minimal
// discovery key and, after the barrier, its assigned id. The candidate's
// key lives in the shard's cands table at the same dense index.
type pcand struct {
	fi, di int32
	id     int32
}

// pshard is one partition of the packed intern table. known is read
// without locking during level expansion (it is only written at level
// barriers, with the worker pool joined); cands and candList are locked.
type pshard struct {
	mu       sync.Mutex
	known    *pack.Map
	cands    *pack.Map
	candList []pcand
}

// candidate records a discovery of the key with discovery key (fi, di),
// keeping the minimum, and returns the candidate's ref: ^(sh<<32 | idx).
func (sh *pshard) candidate(shIdx int64, key []uint64, fi, di int32) int64 {
	sh.mu.Lock()
	idx, fresh := sh.cands.Intern(key)
	if fresh {
		sh.candList = append(sh.candList, pcand{fi: fi, di: di, id: -1})
	} else {
		c := &sh.candList[idx]
		if fi < c.fi || (fi == c.fi && di < c.di) {
			c.fi, c.di = fi, di
		}
	}
	sh.mu.Unlock()
	return ^(shIdx<<32 | int64(idx))
}

// pworker is one worker's expansion context. The emit closure is built
// once per worker (capturing only the context), so the hot loop creates
// no closures and the per-state ref buffers are reused across levels
// through outs.
type pworker struct {
	eng  *pengine
	fi   int32
	di   int32
	refs []int64
	emit func(key []uint64)
}

type pengine struct {
	shards []pshard
	shift  uint
}

func (e *pengine) shardOf(key []uint64) int64 {
	return int64(pack.Hash(key) >> e.shift)
}

func newPworker(eng *pengine) *pworker {
	pw := &pworker{eng: eng}
	pw.emit = func(key []uint64) {
		sh := pw.eng.shardOf(key)
		s := &pw.eng.shards[sh]
		if kid, ok := s.known.Get(key); ok {
			pw.refs = append(pw.refs, int64(kid))
		} else {
			pw.refs = append(pw.refs, s.candidate(sh, key, pw.fi, pw.di))
		}
		pw.di++
	}
	return pw
}

// gathered is one fresh candidate at a level barrier, flattened for the
// canonical (fi, di) sort.
type gathered struct {
	fi, di  int32
	sh, idx int32
}

// PackedSeed resumes the engine from an already-interned canonical
// prefix: Keys holds the packed keys of states 0..N-1 flat at stride
// kw, and ids [Frontier, N) form the BFS level the run continues from
// (Frontier == N resumes a completed scan: the engine returns without
// expanding anything). The seeded states enter the visited tables but
// place is not called for them — the caller already holds their keys.
type PackedSeed struct {
	Keys     []uint64
	Frontier int
}

// PackedOpts are the optional knobs of RunPackedOpts. KeyBacking, when
// set, supplies a per-shard allocator for the visited tables' flat key
// storage (the disk-spill path); each shard index is requested once.
type PackedOpts struct {
	Seed       *PackedSeed
	KeyBacking func(shard int) pack.GrowFunc
}

// RunPackedControlled is RunControlled over bit-packed state keys of kw
// words. The hooks mirror RunControlled's, with two differences: they
// receive the executing worker's index (so callers keep per-worker
// scratch without locking), and states are identified by their packed
// key. place(id, key) is called once per state in id order — the key
// aliases engine storage and must be copied; expand(w, id, emit) must
// enumerate the successors of state id (whose key the caller stored at
// place time), calling emit once per edge with a key buffer the engine
// copies before returning; finish(w, id, succ) delivers successor ids
// aligned with the emit calls, in a buffer valid only during the call.
func RunPackedControlled(
	kw int,
	init []uint64,
	workers int,
	control func(states int) error,
	expand func(w, id int, emit func(key []uint64)),
	place func(id int, key []uint64),
	finish func(w, id int, succ []int32),
) (Stats, error) {
	return RunPackedOpts(kw, init, workers, PackedOpts{}, control, expand, place, finish)
}

// RunPackedOpts is RunPackedControlled with seeding and spill options.
// A seeded run continues the level-synchronized BFS from the given
// prefix; because new states are still ordered by their minimal
// discovery key at every barrier, the numbering it assigns from
// Frontier onward is bit-identical to an uninterrupted run at any
// worker count.
func RunPackedOpts(
	kw int,
	init []uint64,
	workers int,
	opts PackedOpts,
	control func(states int) error,
	expand func(w, id int, emit func(key []uint64)),
	place func(id int, key []uint64),
	finish func(w, id int, succ []int32),
) (Stats, error) {
	if workers < 1 {
		workers = 1
	}
	nshards := shardCount(workers)
	eng := &pengine{shards: make([]pshard, nshards), shift: uint(64 - bits.TrailingZeros(uint(nshards)))}
	for i := range eng.shards {
		eng.shards[i].known = pack.NewMap(kw, 0)
		eng.shards[i].cands = pack.NewMap(kw, 0)
		if opts.KeyBacking != nil {
			eng.shards[i].known.SetKeyBacking(opts.KeyBacking(i))
		}
	}
	pws := make([]*pworker, workers)
	succScratch := make([][]int32, workers)
	for w := range pws {
		pws[w] = newPworker(eng)
	}

	st := Stats{Shards: nshards}
	var panics panicBox
	var level []int32
	var nextID int32
	if seed := opts.Seed; seed != nil {
		n := len(seed.Keys) / kw
		for id := 0; id < n; id++ {
			key := seed.Keys[id*kw : (id+1)*kw]
			eng.shards[eng.shardOf(key)].known.Put(key, int32(id))
		}
		for id := seed.Frontier; id < n; id++ {
			level = append(level, int32(id))
		}
		nextID = int32(n)
	} else {
		place(0, init)
		eng.shards[eng.shardOf(init)].known.Put(init, 0)
		level = []int32{0}
		nextID = 1
	}
	startID := nextID
	var nextLevel []int32
	var emissions int64
	var outs [][]int64
	var fresh []gathered

	for len(level) > 0 {
		st.Levels++
		st.LevelSizes = append(st.LevelSizes, len(level))
		for len(outs) < len(level) {
			outs = append(outs, nil)
		}
		outs = outs[:len(level)]

		ForWorker(len(level), workers, panics.protectW(func(w, fi int) {
			pw := pws[w]
			pw.fi, pw.di, pw.refs = int32(fi), 0, outs[fi][:0]
			expand(w, int(level[fi]), pw.emit)
			outs[fi] = pw.refs
		}))
		if err := panics.limit(); err != nil {
			finalizePacked(eng, &st, emissions, nextID-startID)
			return st, err
		}

		// Barrier: order this level's discoveries by their minimal
		// discovery key and assign the canonical ids.
		fresh = fresh[:0]
		for si := range eng.shards {
			for i := range eng.shards[si].candList {
				c := &eng.shards[si].candList[i]
				fresh = append(fresh, gathered{fi: c.fi, di: c.di, sh: int32(si), idx: int32(i)})
			}
		}
		slices.SortFunc(fresh, func(a, b gathered) int {
			if a.fi != b.fi {
				return int(a.fi) - int(b.fi)
			}
			return int(a.di) - int(b.di)
		})
		nextLevel = nextLevel[:0]
		for _, g := range fresh {
			eng.shards[g.sh].candList[g.idx].id = nextID
			place(int(nextID), eng.shards[g.sh].cands.KeyAt(g.idx))
			nextLevel = append(nextLevel, nextID)
			nextID++
		}

		ForWorker(len(level), workers, panics.protectW(func(w, fi int) {
			refs := outs[fi]
			succ := succScratch[w]
			if cap(succ) < len(refs) {
				succ = make([]int32, len(refs))
			}
			succ = succ[:len(refs)]
			for j, r := range refs {
				if r >= 0 {
					succ[j] = int32(r)
				} else {
					r = ^r
					succ[j] = eng.shards[r>>32].candList[int32(r)].id
				}
			}
			succScratch[w] = succ
			finish(w, int(level[fi]), succ)
		}))
		if err := panics.limit(); err != nil {
			finalizePacked(eng, &st, emissions, nextID-startID)
			return st, err
		}
		for _, refs := range outs {
			emissions += int64(len(refs))
		}

		// Promote candidates into the known tables (the finish pass above
		// still resolved ids through candList, so this must come after).
		for si := range eng.shards {
			s := &eng.shards[si]
			for i := range s.candList {
				s.known.Put(s.cands.KeyAt(int32(i)), s.candList[i].id)
			}
			s.candList = s.candList[:0]
			s.cands.Reset()
		}
		level, nextLevel = nextLevel, level

		if control != nil {
			if err := control(int(nextID)); err != nil {
				finalizePacked(eng, &st, emissions, nextID-startID)
				return st, err
			}
		}
	}

	finalizePacked(eng, &st, emissions, nextID-startID)
	return st, nil
}

// finalizePacked fills in the run-wide intern-table statistics.
// discovered counts the states this run itself assigned ids to (a
// seeded resume excludes the snapshot prefix, whose emissions it never
// saw), so DupHits stays the rediscovery count of the emissions made.
func finalizePacked(eng *pengine, st *Stats, emissions int64, discovered int32) {
	for i := range eng.shards {
		if l := eng.shards[i].known.Len(); l > st.MaxShardLoad {
			st.MaxShardLoad = l
		}
	}
	st.DupHits = emissions - int64(discovered)
}
