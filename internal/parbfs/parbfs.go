// Package parbfs is the parallel state-space engine shared by the
// explorers of this repository: a level-synchronized breadth-first
// search over an implicitly defined graph whose states are interned
// into a sharded (hash-partitioned) table, with state numbering
// canonicalized per level so the result is bit-identical to a
// sequential scan-order BFS.
//
// The determinism argument: a sequential BFS that processes states in
// id order and interns successors on first sight assigns, within each
// distance level, ids in lexicographic order of (position of the
// discovering parent in the level, ordinal of the discovering emission
// within that parent's expansion). The engine expands a whole level in
// parallel, records for every newly discovered state the minimum such
// discovery key across all racing discoverers, sorts the new states by
// that key at the level barrier, and only then assigns ids — exactly
// the sequential numbering, independent of scheduling. Per-state edge
// order is deterministic too, because a single worker expands each
// state and emissions are resolved positionally.
//
// The package also owns the process-wide worker-count knob surfaced as
// the -workers flag of cmd/tmcheck: Workers() defaults to GOMAXPROCS
// and SetWorkers overrides it; one worker selects the callers' plain
// sequential code paths.
package parbfs

import (
	"hash/maphash"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tmcheck/internal/guard"
	"tmcheck/internal/obs"
)

// defaultWorkers is the process-wide worker count; 0 means "use
// GOMAXPROCS".
var defaultWorkers atomic.Int32

// Workers returns the process-wide worker count for the parallel
// engines: the value installed by SetWorkers, or GOMAXPROCS.
func Workers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers installs the process-wide worker count. n < 1 resets to
// the GOMAXPROCS default. One worker makes every engine take its exact
// sequential code path.
func SetWorkers(n int) {
	if n < 1 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// Stats reports the work profile of one Run, for the observability
// layer. Levels, LevelSizes and DupHits are deterministic for a given
// graph; Shards and MaxShardLoad depend on the per-process hash seed
// (like wall-clock timers, they vary between runs but not within one).
type Stats struct {
	// Levels is the number of BFS levels (the initial state is level 0).
	Levels int
	// LevelSizes is the number of states first discovered per level.
	LevelSizes []int
	// DupHits counts emissions that hit an already-interned state — the
	// intern-table collisions that produce no new state.
	DupHits int64
	// Shards is the number of intern-table shards used.
	Shards int
	// MaxShardLoad is the largest number of states interned into a
	// single shard (hash-seed dependent).
	MaxShardLoad int
}

// cand is a state discovered during the current level, before its id is
// assigned at the barrier. fi/di form the discovery key: the minimum
// (frontier position, emission ordinal) over all events that reached
// the state this level.
type cand[S comparable] struct {
	s  S
	fi int32
	di int32
	id int32
}

// succRef is one emission: either an already-known id or a pointer to a
// same-level candidate whose id is assigned at the barrier.
type succRef[S comparable] struct {
	id int32
	c  *cand[S]
}

// shard is one partition of the intern table. known is read without
// locking during level expansion (it is only written at level barriers,
// with the worker pool joined); cands is locked.
type shard[S comparable] struct {
	mu    sync.Mutex
	known map[S]int32
	cands map[S]*cand[S]
}

func (sh *shard[S]) candidate(s S, fi, di int32) *cand[S] {
	sh.mu.Lock()
	c, ok := sh.cands[s]
	if !ok {
		c = &cand[S]{s: s, fi: fi, di: di}
		sh.cands[s] = c
	} else if fi < c.fi || (fi == c.fi && di < c.di) {
		c.fi, c.di = fi, di
	}
	sh.mu.Unlock()
	return c
}

// Run explores the graph reachable from init with the given number of
// workers and returns the work profile. The caller supplies three
// hooks:
//
//   - place(id, s) is called exactly once per reachable state, in id
//     order (starting with place(0, init)), before the state is ever
//     expanded — append the state to caller-side storage here;
//   - expand(id, emit) enumerates the successors of the already-placed
//     state id, calling emit once per outgoing edge (self-loops and
//     duplicates included). It runs concurrently with other expand
//     calls of the same level;
//   - finish(id, succ) delivers the successor ids of state id, aligned
//     one-to-one with that state's emit calls. It runs concurrently
//     with other finish calls of the same level.
//
// The assigned numbering, and hence the succ slices, are bit-identical
// to a sequential scan-order BFS using the same expand enumeration
// order, for any worker count and schedule.
func Run[S comparable](
	init S,
	workers int,
	expand func(id int, emit func(S)),
	place func(id int, s S),
	finish func(id int, succ []int32),
) Stats {
	st, err := RunControlled(init, workers, nil, expand, place, finish)
	if err != nil {
		// With a nil control the only possible error is an isolated
		// worker panic; Run has no error channel, so re-panic with the
		// *guard.LimitError — guard.Capture in the engine entry points
		// converts it back into the error, unwrapped.
		panic(err)
	}
	return st
}

// panicBox records the first panic of a run's worker pool. parbfs
// converts it into a *guard.LimitError carrying the recovered value
// and the crashing worker's stack, so one broken user-supplied TM
// degrades that search instead of killing the whole process.
type panicBox struct {
	mu  sync.Mutex
	err *guard.LimitError
}

// protect wraps a worker task with a recover that files the panic.
func (b *panicBox) protect(f func(int)) func(int) {
	return func(i int) {
		defer func() {
			if v := recover(); v != nil {
				le := &guard.LimitError{Kind: guard.KindPanic, Value: v, Stack: debug.Stack()}
				b.mu.Lock()
				first := b.err == nil
				if first {
					b.err = le
				}
				b.mu.Unlock()
				if first && obs.EventsEnabled() {
					obs.Emit(obs.Event{Kind: obs.EvPanicRecovered, Detail: le.Error()})
				}
			}
		}()
		f(i)
	}
}

// protectW is protect for worker-indexed tasks (ForWorker bodies).
func (b *panicBox) protectW(f func(w, i int)) func(w, i int) {
	return func(w, i int) {
		defer func() {
			if v := recover(); v != nil {
				le := &guard.LimitError{Kind: guard.KindPanic, Value: v, Stack: debug.Stack()}
				b.mu.Lock()
				first := b.err == nil
				if first {
					b.err = le
				}
				b.mu.Unlock()
				if first && obs.EventsEnabled() {
					obs.Emit(obs.Event{Kind: obs.EvPanicRecovered, Detail: le.Error()})
				}
			}
		}()
		f(w, i)
	}
}

// limit returns the filed error, if any.
func (b *panicBox) limit() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return b.err
	}
	return nil
}

// RunControlled is Run with a stopping hook for searches that may end
// before the fixpoint: control(states) is called at every level barrier
// — after the level's finish calls, with the number of states placed so
// far — and a non-nil return stops the search cleanly. The error is
// returned verbatim, with the stats of the truncated run. The on-the-fly
// safety engine uses this for early exit on a found counterexample and
// for state budgets; because the check sits at the barrier, a truncated
// run still carries the exact canonical numbering of its completed
// levels.
func RunControlled[S comparable](
	init S,
	workers int,
	control func(states int) error,
	expand func(id int, emit func(S)),
	place func(id int, s S),
	finish func(id int, succ []int32),
) (Stats, error) {
	if workers < 1 {
		workers = 1
	}
	nshards := shardCount(workers)
	shards := make([]shard[S], nshards)
	for i := range shards {
		shards[i].known = map[S]int32{}
		shards[i].cands = map[S]*cand[S]{}
	}
	seed := maphash.MakeSeed()
	shardOf := func(s S) *shard[S] {
		return &shards[maphash.Comparable(seed, s)&uint64(nshards-1)]
	}

	st := Stats{Shards: nshards}
	var panics panicBox
	place(0, init)
	shardOf(init).known[init] = 0
	level := []int32{0}
	nextID := int32(1)
	var emissions int64

	for len(level) > 0 {
		st.Levels++
		st.LevelSizes = append(st.LevelSizes, len(level))
		outs := make([][]succRef[S], len(level))

		For(len(level), workers, panics.protect(func(fi int) {
			id := level[fi]
			var refs []succRef[S]
			di := int32(0)
			expand(int(id), func(s S) {
				sh := shardOf(s)
				if kid, ok := sh.known[s]; ok {
					refs = append(refs, succRef[S]{id: kid})
				} else {
					refs = append(refs, succRef[S]{c: sh.candidate(s, int32(fi), di)})
				}
				di++
			})
			outs[fi] = refs
		}))
		// A crashed worker poisons the level (its discoveries may be
		// incomplete): stop at this barrier with the isolated panic
		// instead of assigning ids from partial expansions.
		if err := panics.limit(); err != nil {
			finalize(shards, &st, emissions, nextID)
			return st, err
		}

		// Barrier: gather this level's discoveries, order them by their
		// minimal discovery key, and assign the canonical ids.
		var fresh []*cand[S]
		for i := range shards {
			for _, c := range shards[i].cands {
				fresh = append(fresh, c)
			}
		}
		sort.Slice(fresh, func(i, j int) bool {
			if fresh[i].fi != fresh[j].fi {
				return fresh[i].fi < fresh[j].fi
			}
			return fresh[i].di < fresh[j].di
		})
		newLevel := make([]int32, 0, len(fresh))
		for _, c := range fresh {
			c.id = nextID
			place(int(nextID), c.s)
			newLevel = append(newLevel, nextID)
			nextID++
		}
		for i := range shards {
			for s, c := range shards[i].cands {
				shards[i].known[s] = c.id
			}
			clear(shards[i].cands)
		}

		For(len(level), workers, panics.protect(func(fi int) {
			refs := outs[fi]
			succ := make([]int32, len(refs))
			for j, r := range refs {
				if r.c != nil {
					succ[j] = r.c.id
				} else {
					succ[j] = r.id
				}
			}
			finish(int(level[fi]), succ)
		}))
		if err := panics.limit(); err != nil {
			finalize(shards, &st, emissions, nextID)
			return st, err
		}
		for _, refs := range outs {
			emissions += int64(len(refs))
		}
		level = newLevel

		if control != nil {
			if err := control(int(nextID)); err != nil {
				finalize(shards, &st, emissions, nextID)
				return st, err
			}
		}
	}

	finalize(shards, &st, emissions, nextID)
	return st, nil
}

// finalize fills in the run-wide intern-table statistics.
func finalize[S comparable](shards []shard[S], st *Stats, emissions int64, nextID int32) {
	for i := range shards {
		if l := len(shards[i].known); l > st.MaxShardLoad {
			st.MaxShardLoad = l
		}
	}
	// Every emission either discovers a new state or collides with an
	// interned one, so collisions = emissions − (states − 1).
	st.DupHits = emissions - (int64(nextID) - 1)
}

// shardCount picks a power-of-two shard count comfortably above the
// worker count, capped so the per-build footprint stays small.
func shardCount(workers int) int {
	n := 16
	for n < 8*workers && n < 256 {
		n <<= 1
	}
	return n
}

// For runs f(0..n-1) on the given number of workers, in chunks, and
// returns when every call has completed. With one worker (or n ≤ 1) it
// runs inline, preserving the caller's sequential behavior exactly.
func For(n, workers int, f func(i int)) {
	ForWorker(n, workers, func(_, i int) { f(i) })
}

// ForWorker is For passing each call the index of the worker goroutine
// executing it (0 when running inline), so callers can keep per-worker
// scratch without locking.
func ForWorker(n, workers int, f func(w, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	chunk := n / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	if chunk > 64 {
		chunk = 64
	}
	// With the telemetry bus on, each worker reports its activity window
	// as one EvWorkerSpan — the per-worker tracks of the -trace view.
	// Disabled (the common case), the loop body is untouched.
	spans := obs.EventsEnabled()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var start time.Time
			items := 0
			if spans {
				start = time.Now()
			}
			for {
				end := int(next.Add(int64(chunk)))
				begin := end - chunk
				if begin >= n {
					break
				}
				if end > n {
					end = n
				}
				for i := begin; i < end; i++ {
					f(w, i)
				}
				items += end - begin
			}
			if spans && items > 0 {
				obs.Emit(obs.Event{
					Kind: obs.EvWorkerSpan, Worker: int32(w),
					States: int64(items), DurNS: time.Since(start).Nanoseconds(),
				})
			}
		}(w)
	}
	wg.Wait()
}
