package parbfs

import (
	"reflect"
	"testing"
)

// succsOf defines a deterministic synthetic graph over uint32 states:
// each state has a pseudo-random fan-out with duplicates and back-edges,
// bounded so the reachable set stays finite.
func succsOf(s uint32) []uint32 {
	x := s*2654435761 + 1
	deg := int(x % 5)
	out := make([]uint32, 0, deg+1)
	for i := 0; i < deg; i++ {
		x = x*1664525 + 1013904223
		out = append(out, x%4096)
	}
	if deg == 0 {
		out = append(out, (s+1)%4096)
	}
	return out
}

// refBFS is the sequential scan-order BFS the engine must reproduce
// bit-identically: states interned on first sight, processed in id
// order.
func refBFS(init uint32) (states []uint32, edges [][]int32) {
	index := map[uint32]int32{init: 0}
	states = []uint32{init}
	edges = [][]int32{nil}
	for qi := 0; qi < len(states); qi++ {
		for _, t := range succsOf(states[qi]) {
			id, ok := index[t]
			if !ok {
				id = int32(len(states))
				index[t] = id
				states = append(states, t)
				edges = append(edges, nil)
			}
			edges[qi] = append(edges[qi], id)
		}
	}
	return states, edges
}

func runEngine(init uint32, workers int) (states []uint32, edges [][]int32, st Stats) {
	st = Run(init, workers,
		func(id int, emit func(uint32)) {
			for _, t := range succsOf(states[id]) {
				emit(t)
			}
		},
		func(id int, s uint32) {
			states = append(states, s)
			edges = append(edges, nil)
		},
		func(id int, succ []int32) {
			edges[id] = succ
		},
	)
	return states, edges, st
}

func TestRunMatchesSequentialBFS(t *testing.T) {
	wantStates, wantEdges := refBFS(7)
	if len(wantStates) < 100 {
		t.Fatalf("synthetic graph too small (%d states) to exercise the engine", len(wantStates))
	}
	for _, workers := range []int{1, 2, 3, 8} {
		states, edges, st := runEngine(7, workers)
		if !reflect.DeepEqual(states, wantStates) {
			t.Fatalf("workers=%d: state numbering diverges from sequential BFS", workers)
		}
		if !reflect.DeepEqual(edges, wantEdges) {
			t.Fatalf("workers=%d: edge resolution diverges from sequential BFS", workers)
		}
		var emitted int64
		for _, e := range edges {
			emitted += int64(len(e))
		}
		if got := st.DupHits; got != emitted-int64(len(states)-1) {
			t.Errorf("workers=%d: DupHits = %d, want %d", workers, got, emitted-int64(len(states)-1))
		}
		var levelTotal int
		for _, n := range st.LevelSizes {
			levelTotal += n
		}
		if levelTotal != len(states) || st.Levels != len(st.LevelSizes) {
			t.Errorf("workers=%d: level sizes %v inconsistent with %d states", workers, st.LevelSizes, len(states))
		}
	}
}

func TestSetWorkers(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("Workers() = %d after reset", Workers())
	}
}

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		seen := make([]int32, 1000)
		For(len(seen), workers, func(i int) { seen[i]++ })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}
