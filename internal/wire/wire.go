// Package wire is the compact binary protocol between tmcheck and
// tmcheckd: length-prefixed frames of ULEB128 varints carrying job
// specs, results, progress events, cancels and heartbeats.
//
// A frame on the wire is
//
//	uvarint(len(payload)) | payload
//
// and a payload is
//
//	version(1 byte) | type(1 byte) | uvarint(reqID) | body
//
// Request ids multiplex many jobs over one connection: the client
// allocates them, the server echoes them on every frame belonging to
// the job. Id 0 is the connection itself (heartbeats, protocol
// errors). All integers are ULEB128 varints — unsigned directly,
// signed zig-zag — and strings are length-prefixed bytes, so a frame
// costs a few bytes plus its strings. Encoders append into reused
// buffers; decoding aliases nothing and returns typed errors
// (ErrTruncated, ErrCorrupt, ErrVersion, ErrTooBig) that the fuzz
// harness and the corrupt-frame tests pin.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Version is the protocol version byte every payload leads with.
// Version 2 added the checkpoint/resume fields (Spec.Checkpoint,
// Spec.Resume, Spec.Spill, Limit.Snapshot, Check.Resumed) at the end
// of their messages.
const Version = 2

// MaxFrame bounds a frame's payload; a peer announcing more is corrupt
// (or hostile) and the connection is dropped rather than buffered.
const MaxFrame = 16 << 20

var (
	// ErrTruncated reports a payload that ended mid-field.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrCorrupt reports a structurally invalid payload: overlong
	// varint, a length running past the frame, an unknown type byte.
	ErrCorrupt = errors.New("wire: corrupt frame")
	// ErrVersion reports a payload of an unsupported protocol version.
	ErrVersion = errors.New("wire: unsupported protocol version")
	// ErrTooBig reports a frame longer than MaxFrame.
	ErrTooBig = errors.New("wire: frame exceeds size limit")
)

// appendUvarint appends v as ULEB128.
func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// appendVarint appends v zig-zag encoded.
func appendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// appendString appends a length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendBool appends one byte, 0 or 1.
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// dec is a cursor over one payload. The first failed read latches err;
// subsequent reads return zero values, so decoders read straight
// through and check once.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(ErrTruncated)
		} else {
			d.fail(ErrCorrupt)
		}
		return 0
	}
	d.off += n
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(ErrTruncated)
		} else {
			d.fail(ErrCorrupt)
		}
		return 0
	}
	d.off += n
	return v
}

func (d *dec) byte_() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail(ErrTruncated)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) bool_() bool {
	switch d.byte_() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(ErrCorrupt)
		return false
	}
}

func (d *dec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail(ErrCorrupt)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// int_ decodes a zig-zag varint into an int, rejecting values outside
// the platform int range.
func (d *dec) int_() int {
	v := d.varint()
	if int64(int(v)) != v {
		d.fail(ErrCorrupt)
		return 0
	}
	return int(v)
}

// Conn frames messages over one reliable byte stream. Writes are
// serialized by an internal mutex (many job goroutines share the
// connection); the encode buffer is reused across writes and the read
// buffer across reads, so steady-state framing does not allocate.
type Conn struct {
	br *bufio.Reader
	w  io.Writer

	wmu  sync.Mutex
	wbuf []byte

	rbuf []byte
}

// NewConn wraps a reliable byte stream (a net.Conn, a pipe).
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{br: bufio.NewReader(rw), w: rw}
}

// Write frames and sends one message for request id reqID.
func (c *Conn) Write(reqID uint64, m Msg) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	payload := c.wbuf[:0]
	payload = append(payload, Version, m.msgType())
	payload = appendUvarint(payload, reqID)
	payload = m.appendBody(payload)
	c.wbuf = payload
	if len(payload) > MaxFrame {
		return ErrTooBig
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := c.w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := c.w.Write(payload)
	return err
}

// Read blocks for the next frame and decodes it. io.EOF surfaces
// unchanged when the peer closed between frames.
func (c *Conn) Read() (reqID uint64, m Msg, err error) {
	size, err := binary.ReadUvarint(c.br)
	if err != nil {
		return 0, nil, err
	}
	if size > MaxFrame {
		return 0, nil, ErrTooBig
	}
	if uint64(cap(c.rbuf)) < size {
		c.rbuf = make([]byte, size)
	}
	buf := c.rbuf[:size]
	if _, err := io.ReadFull(c.br, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		return 0, nil, err
	}
	return DecodePayload(buf)
}

// DecodePayload decodes one frame payload (everything after the length
// prefix). It is the entry point the fuzz harness drives.
func DecodePayload(b []byte) (reqID uint64, m Msg, err error) {
	d := &dec{b: b}
	if v := d.byte_(); d.err == nil && v != Version {
		return 0, nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, v, Version)
	}
	t := d.byte_()
	reqID = d.uvarint()
	if d.err != nil {
		return 0, nil, d.err
	}
	switch t {
	case tSubmit:
		m = decodeSubmit(d)
	case tCancel:
		m = Cancel{}
	case tHeartbeat:
		m = Heartbeat{SentNS: d.varint()}
	case tHeartbeatAck:
		m = HeartbeatAck{SentNS: d.varint()}
	case tAccepted:
		m = Accepted{Running: d.int_()}
	case tProgress:
		m = decodeProgress(d)
	case tResult:
		m = decodeResult(d)
	case tError:
		m = ErrorMsg{Msg: d.str()}
	default:
		return 0, nil, fmt.Errorf("%w: unknown message type %d", ErrCorrupt, t)
	}
	if d.err != nil {
		return 0, nil, d.err
	}
	if d.off != len(b) {
		return 0, nil, fmt.Errorf("%w: %d trailing byte(s)", ErrCorrupt, len(b)-d.off)
	}
	return reqID, m, nil
}
