package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"tmcheck/internal/job"
)

// encodePayload builds the payload bytes for one message the way
// Conn.Write does — the form DecodePayload consumes.
func encodePayload(reqID uint64, m Msg) []byte {
	b := []byte{Version, m.msgType()}
	b = appendUvarint(b, reqID)
	return m.appendBody(b)
}

// sampleSpec exercises every Spec field, including negative-looking
// and zero values.
func sampleSpec() job.Spec {
	return job.Spec{
		Kind:      job.KindTable2,
		TM:        "dstm",
		CM:        "aggressive",
		Prop:      "op",
		Engine:    "onthefly",
		Threads:   3,
		Vars:      2,
		Ext:       true,
		Workers:   4,
		MaxStates: 100000,
		Timeout:   90 * time.Second,
		MaxMem:    512 << 20,
	}
}

// sampleResult exercises nested Checks with and without limits.
func sampleResult() *job.Result {
	return &job.Result{
		Spec: sampleSpec(),
		Checks: []job.Check{
			{
				System: "dstm", Prop: "ss", Engine: "onthefly",
				Threads: 2, Vars: 2, TMStates: 2864, SpecStates: 131,
				Holds: true, ElapsedNS: 1234567, Pairs: 9000, FrontierPeak: 77,
			},
			{
				System: "modtl2+polite", Prop: "op", Engine: "materialized",
				Threads: 2, Vars: 2, TMStates: 1210, SpecStates: 2208,
				Holds: false, Counterexample: "(w,2)1, (w,1)2, c2, c1",
				ElapsedNS: 7654321, BuildTMNS: 111, BuildSpecNS: 222, CexLen: 4,
			},
			{
				System: "tl2", Prop: "obstruction", Engine: "onthefly",
				Threads: 2, Vars: 1, TMStates: 50, LoopWord: "(a1)ω",
				Expanded: 40, Probes: 12,
				Limit: &job.Limit{Kind: 0, Budget: 50, Visited: 51, ElapsedNS: 5000},
			},
		},
	}
}

// goldenMessages is one of every frame type with its request id.
func goldenMessages() []struct {
	reqID uint64
	m     Msg
} {
	return []struct {
		reqID uint64
		m     Msg
	}{
		{1, Submit{Spec: sampleSpec()}},
		{2, Cancel{}},
		{0, Heartbeat{SentNS: 123456789}},
		{0, HeartbeatAck{SentNS: 123456789}},
		{3, Accepted{Running: 7}},
		{3, Progress{Name: "safety:dstm", States: 1 << 20, Frontier: 4096, Level: 12, HeapBytes: 1 << 30, Detail: "otf"}},
		{4, ResultMsg{Result: sampleResult()}},
		{5, ResultMsg{ErrMsg: "state budget exhausted at 51 states; rerun with -maxstates 100",
			Limit: &job.Limit{Kind: 0, Budget: 50, Visited: 51}}},
		{6, ErrorMsg{Msg: "tmcheckd: draining, not accepting jobs"}},
	}
}

// TestRoundTripEveryType encodes one of every message type through a
// Conn pair and checks the decoded value is deeply equal.
func TestRoundTripEveryType(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	msgs := goldenMessages()
	for _, g := range msgs {
		if err := c.Write(g.reqID, g.m); err != nil {
			t.Fatalf("Write(%T): %v", g.m, err)
		}
	}
	for _, g := range msgs {
		reqID, m, err := c.Read()
		if err != nil {
			t.Fatalf("Read(%T): %v", g.m, err)
		}
		if reqID != g.reqID {
			t.Errorf("%T: reqID = %d, want %d", g.m, reqID, g.reqID)
		}
		if !reflect.DeepEqual(m, g.m) {
			t.Errorf("%T round trip:\n got %+v\nwant %+v", g.m, m, g.m)
		}
	}
	if _, _, err := c.Read(); err != io.EOF {
		t.Errorf("drained conn: err = %v, want io.EOF", err)
	}
}

// TestGoldenCancelBytes pins the exact wire bytes of the simplest
// frame, so accidental format changes fail loudly instead of silently
// breaking cross-version daemons.
func TestGoldenCancelBytes(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.Write(7, Cancel{}); err != nil {
		t.Fatal(err)
	}
	want := []byte{3, Version, tCancel, 7} // len=3 | version | type | reqID
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("cancel frame = %v, want %v", buf.Bytes(), want)
	}
}

// TestTruncatedPayloads checks every strict prefix of every valid
// payload fails with a typed error — never a panic, never a bogus
// success.
func TestTruncatedPayloads(t *testing.T) {
	for _, g := range goldenMessages() {
		full := encodePayload(g.reqID, g.m)
		for n := 0; n < len(full); n++ {
			_, _, err := DecodePayload(full[:n])
			if err == nil {
				t.Fatalf("%T: prefix %d/%d decoded successfully", g.m, n, len(full))
			}
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Errorf("%T: prefix %d/%d: untyped error %v", g.m, n, len(full), err)
			}
		}
	}
}

func TestCorruptPayloads(t *testing.T) {
	valid := encodePayload(2, Heartbeat{SentNS: 42})
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"bad version", append([]byte{Version + 1}, valid[1:]...), ErrVersion},
		{"unknown type", []byte{Version, 99, 0}, ErrCorrupt},
		{"trailing bytes", append(append([]byte{}, valid...), 0xFF), ErrCorrupt},
		{"overlong varint", append([]byte{Version, tHeartbeat, 0},
			0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80)[:14], ErrCorrupt},
		{"bad bool", func() []byte {
			// ResultMsg: empty ErrMsg, then limit-presence byte 2.
			return []byte{Version, tResult, 1, 0, 2}
		}(), ErrCorrupt},
		{"string overrun", func() []byte {
			// ErrorMsg declaring a 100-byte string with 3 bytes present.
			b := []byte{Version, tError, 0}
			b = appendUvarint(b, 100)
			return append(b, 'a', 'b', 'c')
		}(), ErrCorrupt},
	}
	for _, c := range cases {
		_, _, err := DecodePayload(c.b)
		if !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

// TestCorruptCheckCount rejects a Result declaring an absurd number of
// checks instead of allocating for it.
func TestCorruptCheckCount(t *testing.T) {
	b := []byte{Version, tResult, 1}
	b = appendString(b, "")  // ErrMsg
	b = appendBool(b, false) // no limit
	b = appendBool(b, true)  // result present
	b = appendSpec(b, job.Spec{})
	b = appendUvarint(b, maxChecks+1)
	_, _, err := DecodePayload(b)
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized check count: err = %v, want ErrCorrupt", err)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	big := ErrorMsg{Msg: strings.Repeat("x", MaxFrame)}
	if err := c.Write(0, big); !errors.Is(err, ErrTooBig) {
		t.Errorf("oversized write: err = %v, want ErrTooBig", err)
	}
	// A header announcing more than MaxFrame is rejected before any
	// buffering.
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], MaxFrame+1)
	rc := NewConn(bytes.NewBuffer(hdr[:n]))
	if _, _, err := rc.Read(); !errors.Is(err, ErrTooBig) {
		t.Errorf("oversized read: err = %v, want ErrTooBig", err)
	}
}

// TestReadTruncatedStream covers a peer dying mid-frame: the header
// promises more bytes than arrive.
func TestReadTruncatedStream(t *testing.T) {
	payload := encodePayload(1, Heartbeat{SentNS: 9})
	var buf bytes.Buffer
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	buf.Write(hdr[:n])
	buf.Write(payload[:len(payload)-2])
	c := NewConn(&buf)
	if _, _, err := c.Read(); !errors.Is(err, ErrTruncated) {
		t.Errorf("mid-frame EOF: err = %v, want ErrTruncated", err)
	}
}

// lockedBuffer serializes reads/writes so a bytes.Buffer can stand in
// for a socket under concurrent writers.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.Write(p)
}

func (l *lockedBuffer) Read(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.Read(p)
}

// TestConcurrentWrites hammers one Conn from many goroutines — the
// writer mutex must keep frames intact.
func TestConcurrentWrites(t *testing.T) {
	var lb lockedBuffer
	c := NewConn(&lb)
	const writers, frames = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < frames; i++ {
				if err := c.Write(uint64(w+1), Progress{Name: "p", States: int64(i)}); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	got := 0
	for {
		reqID, m, err := c.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("read after %d frames: %v", got, err)
		}
		if reqID < 1 || reqID > writers {
			t.Fatalf("frame %d: bad reqID %d", got, reqID)
		}
		if _, ok := m.(Progress); !ok {
			t.Fatalf("frame %d: type %T", got, m)
		}
		got++
	}
	if got != writers*frames {
		t.Errorf("read %d frames, want %d", got, writers*frames)
	}
}

// FuzzDecodePayload throws arbitrary bytes at the decoder: it must
// never panic, and whatever decodes must re-encode and re-decode to
// the same message (encode/decode is a retraction).
func FuzzDecodePayload(f *testing.F) {
	for _, g := range goldenMessages() {
		f.Add(encodePayload(g.reqID, g.m))
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add([]byte{Version, tResult, 1, 0, 2})
	f.Add([]byte{Version + 1, tCancel, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		reqID, m, err := DecodePayload(b)
		if err != nil {
			return
		}
		again := encodePayload(reqID, m)
		reqID2, m2, err := DecodePayload(again)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if reqID2 != reqID || !reflect.DeepEqual(m2, m) {
			t.Fatalf("unstable round trip:\n first %d %+v\nsecond %d %+v", reqID, m, reqID2, m2)
		}
	})
}
