package wire

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tmcheck/internal/job"
)

// TestHeartbeatTimeoutDetectsSilentServer pins the dead-server
// detector: a server that accepts the submit and then goes silent —
// no result, no heartbeats, connection still open — must surface the
// typed connection-lost error instead of hanging forever.
func TestHeartbeatTimeoutDetectsSilentServer(t *testing.T) {
	clientEnd, serverEnd := net.Pipe()
	defer serverEnd.Close()
	c := NewClient(clientEnd)
	defer c.Close()
	c.MonitorHeartbeat(100 * time.Millisecond)

	errCh := make(chan error, 1)
	go func() {
		_, err := c.Run(context.Background(), job.Spec{Kind: job.KindTable2}, nil)
		errCh <- err
	}()
	srv := NewConn(serverEnd)
	if _, _, err := srv.Read(); err != nil {
		t.Fatalf("server read: %v", err)
	}
	// Silence. The monitor must kill the connection.
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrLost) {
			t.Fatalf("err = %v, does not match ErrLost", err)
		}
		for _, want := range []string{"connection lost", "no server traffic", "heartbeat timeout"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %q does not mention %q", err, want)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client hung on a silent server despite the heartbeat monitor")
	}
}

// TestHeartbeatIdleConnectionSurvives pins the no-false-positive rule:
// a connection with no requests in flight owes us nothing and must not
// be torn down, however long it idles.
func TestHeartbeatIdleConnectionSurvives(t *testing.T) {
	clientEnd, serverEnd := net.Pipe()
	defer serverEnd.Close()
	c := NewClient(clientEnd)
	defer c.Close()
	c.MonitorHeartbeat(50 * time.Millisecond)
	time.Sleep(300 * time.Millisecond) // 6x the timeout, zero traffic, idle

	// The connection must still work end to end.
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Run(context.Background(), job.Spec{Kind: job.KindTable2}, nil)
		errCh <- err
	}()
	srv := NewConn(serverEnd)
	id, _, err := srv.Read()
	if err != nil {
		t.Fatalf("server read after idle: %v (idle connection was torn down?)", err)
	}
	if err := srv.Write(id, ResultMsg{Result: &job.Result{}}); err != nil {
		t.Fatalf("server write: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("Run after idle: %v", err)
	}
}

// TestRunRetryResubmitsWithResume pins the self-healing path: when the
// first connection dies mid-job, the retry dials again and resubmits
// with Resume set to the checkpoint, so the server continues from the
// snapshot prefix it already persisted.
func TestRunRetryResubmitsWithResume(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	resumes := make(chan string, 2)
	go func() {
		// Connection 1: take the submit, then die (a killed daemon).
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		sc := NewConn(nc)
		if _, m, err := sc.Read(); err == nil {
			resumes <- m.(Submit).Spec.Resume
		}
		nc.Close()
		// Connection 2: serve the resubmission.
		nc2, err := ln.Accept()
		if err != nil {
			return
		}
		sc2 := NewConn(nc2)
		id, m, err := sc2.Read()
		if err != nil {
			return
		}
		sub := m.(Submit)
		resumes <- sub.Spec.Resume
		_ = sc2.Write(id, ResultMsg{Result: &job.Result{Spec: sub.Spec}})
	}()

	var logged atomic.Int32
	res, err := RunRetry(context.Background(), ln.Addr().String(),
		job.Spec{Kind: job.KindTable2, Threads: 2, Vars: 2, Checkpoint: "job.snap"},
		RetryConfig{
			Attempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond,
			Jitter: func() float64 { return 0 },
			Logf:   func(string, ...any) { logged.Add(1) },
		}, nil)
	if err != nil {
		t.Fatalf("RunRetry: %v", err)
	}
	if res == nil {
		t.Fatal("RunRetry returned nil result")
	}
	if got := <-resumes; got != "" {
		t.Errorf("first submit Resume = %q, want empty (fresh job)", got)
	}
	if got := <-resumes; got != "job.snap" {
		t.Errorf("resubmit Resume = %q, want %q (resume from the persisted snapshot)", got, "job.snap")
	}
	if logged.Load() == 0 {
		t.Error("retry was silent: Logf never called")
	}
}

// TestRunRetryJobErrorIsFinal pins the classification: a job-level
// refusal from the server is returned immediately, not retried.
func TestRunRetryJobErrorIsFinal(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var accepts atomic.Int32
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			accepts.Add(1)
			sc := NewConn(nc)
			if id, _, err := sc.Read(); err == nil {
				_ = sc.Write(id, ErrorMsg{Msg: "tmcheckd: bad spec"})
			}
		}
	}()
	_, err = RunRetry(context.Background(), ln.Addr().String(),
		job.Spec{Kind: job.KindTable2}, RetryConfig{
			Attempts: 5, BaseDelay: time.Millisecond, Jitter: func() float64 { return 0 },
		}, nil)
	if err == nil || !strings.Contains(err.Error(), "bad spec") {
		t.Fatalf("err = %v, want the server's refusal", err)
	}
	if errors.Is(err, ErrLost) {
		t.Fatalf("job-level error classified as connection loss: %v", err)
	}
	if n := accepts.Load(); n != 1 {
		t.Errorf("server saw %d connection(s), want 1 (no retry on job errors)", n)
	}
}

// TestRunRetryGivesUp pins the budget: with nothing listening, the
// retry loop stops after its configured attempts with a dial error.
func TestRunRetryGivesUp(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here anymore
	_, err = RunRetry(context.Background(), addr, job.Spec{Kind: job.KindTable2},
		RetryConfig{Attempts: 2, BaseDelay: time.Millisecond, Jitter: func() float64 { return 0 }}, nil)
	if err == nil || !strings.Contains(err.Error(), "giving up after 2 attempt(s)") {
		t.Fatalf("err = %v, want a giving-up error after 2 attempts", err)
	}
}
