package wire

import (
	"time"

	"tmcheck/internal/job"
)

// Message type bytes. The zero byte is reserved (it is the most likely
// corruption value).
const (
	tSubmit       = 1 // client → server: run this Spec
	tCancel       = 2 // client → server: stop the request's job
	tHeartbeat    = 3 // server → client: liveness probe
	tHeartbeatAck = 4 // client → server: heartbeat echo
	tAccepted     = 5 // server → client: job admitted to the pool
	tProgress     = 6 // server → client: throttled engine vitals
	tResult       = 7 // server → client: the job's Result (or error)
	tError        = 8 // server → client: protocol-level failure
)

// Msg is one protocol message; the concrete types below are the full
// vocabulary.
type Msg interface {
	msgType() byte
	appendBody(b []byte) []byte
}

// Submit asks the server to run one job.
type Submit struct {
	Spec job.Spec
}

// Cancel asks the server to stop the request's running job; the server
// still answers with a Result (carrying the cancelled limit).
type Cancel struct{}

// Heartbeat is the server's liveness probe; clients echo it back as
// HeartbeatAck. SentNS is an opaque timestamp the server chose.
type Heartbeat struct {
	SentNS int64
}

// HeartbeatAck echoes a Heartbeat.
type HeartbeatAck struct {
	SentNS int64
}

// Accepted acknowledges a Submit: the job is admitted (it may still
// wait for a pool slot). Running reports the jobs running or queued
// ahead of it at admission.
type Accepted struct {
	Running int
}

// Progress is one throttled vitals frame from the engines' event bus:
// Name identifies the check phase emitting it, States/Frontier/Level
// mirror the bus event, HeapBytes samples the server heap.
type Progress struct {
	Name      string
	States    int64
	Frontier  int64
	Level     int32
	HeapBytes uint64
	Detail    string
}

// ResultMsg closes a request: the job's Result when it ran (even
// cancelled or limited table jobs carry one), ErrMsg when it failed
// fail-fast, and Limit the typed limit behind ErrMsg when there is
// one, so the client reconstructs errors.Is-compatible errors.
type ResultMsg struct {
	Result *job.Result
	ErrMsg string
	Limit  *job.Limit
}

// ErrorMsg reports a request-independent protocol failure (malformed
// spec, server draining); the connection stays usable.
type ErrorMsg struct {
	Msg string
}

func (Submit) msgType() byte       { return tSubmit }
func (Cancel) msgType() byte       { return tCancel }
func (Heartbeat) msgType() byte    { return tHeartbeat }
func (HeartbeatAck) msgType() byte { return tHeartbeatAck }
func (Accepted) msgType() byte     { return tAccepted }
func (Progress) msgType() byte     { return tProgress }
func (ResultMsg) msgType() byte    { return tResult }
func (ErrorMsg) msgType() byte     { return tError }

func (m Submit) appendBody(b []byte) []byte {
	return appendSpec(b, m.Spec)
}

func (Cancel) appendBody(b []byte) []byte { return b }

func (m Heartbeat) appendBody(b []byte) []byte {
	return appendVarint(b, m.SentNS)
}

func (m HeartbeatAck) appendBody(b []byte) []byte {
	return appendVarint(b, m.SentNS)
}

func (m Accepted) appendBody(b []byte) []byte {
	return appendVarint(b, int64(m.Running))
}

func (m Progress) appendBody(b []byte) []byte {
	b = appendString(b, m.Name)
	b = appendVarint(b, m.States)
	b = appendVarint(b, m.Frontier)
	b = appendVarint(b, int64(m.Level))
	b = appendUvarint(b, m.HeapBytes)
	return appendString(b, m.Detail)
}

func decodeProgress(d *dec) Progress {
	var m Progress
	m.Name = d.str()
	m.States = d.varint()
	m.Frontier = d.varint()
	m.Level = int32(d.varint())
	m.HeapBytes = d.uvarint()
	m.Detail = d.str()
	return m
}

func (m ResultMsg) appendBody(b []byte) []byte {
	b = appendString(b, m.ErrMsg)
	b = appendLimit(b, m.Limit)
	if m.Result == nil {
		return appendBool(b, false)
	}
	b = appendBool(b, true)
	return appendResult(b, m.Result)
}

func decodeResult(d *dec) ResultMsg {
	var m ResultMsg
	m.ErrMsg = d.str()
	m.Limit = decodeLimit(d)
	if d.bool_() {
		m.Result = decodeResultBody(d)
	}
	return m
}

func (m ErrorMsg) appendBody(b []byte) []byte {
	return appendString(b, m.Msg)
}

// ---- job.Spec ----

func appendSpec(b []byte, s job.Spec) []byte {
	b = append(b, byte(s.Kind))
	b = appendString(b, s.TM)
	b = appendString(b, s.CM)
	b = appendString(b, s.Prop)
	b = appendString(b, s.Engine)
	b = appendVarint(b, int64(s.Threads))
	b = appendVarint(b, int64(s.Vars))
	b = appendBool(b, s.Ext)
	b = appendVarint(b, int64(s.Workers))
	b = appendVarint(b, int64(s.MaxStates))
	b = appendVarint(b, int64(s.Timeout))
	b = appendUvarint(b, s.MaxMem)
	b = appendString(b, s.Checkpoint)
	b = appendString(b, s.Resume)
	return appendString(b, s.Spill)
}

func decodeSpec(d *dec) job.Spec {
	var s job.Spec
	s.Kind = job.Kind(d.byte_())
	s.TM = d.str()
	s.CM = d.str()
	s.Prop = d.str()
	s.Engine = d.str()
	s.Threads = d.int_()
	s.Vars = d.int_()
	s.Ext = d.bool_()
	s.Workers = d.int_()
	s.MaxStates = d.int_()
	s.Timeout = time.Duration(d.varint())
	s.MaxMem = d.uvarint()
	s.Checkpoint = d.str()
	s.Resume = d.str()
	s.Spill = d.str()
	return s
}

func decodeSubmit(d *dec) Submit {
	return Submit{Spec: decodeSpec(d)}
}

// ---- job.Limit ----

// appendLimit writes a presence flag then the limit fields.
func appendLimit(b []byte, l *job.Limit) []byte {
	if l == nil {
		return appendBool(b, false)
	}
	b = appendBool(b, true)
	b = append(b, l.Kind)
	b = appendVarint(b, int64(l.Budget))
	b = appendVarint(b, int64(l.Visited))
	b = appendVarint(b, l.ElapsedNS)
	b = appendUvarint(b, l.MaxMemBytes)
	b = appendUvarint(b, l.HeapBytes)
	b = appendString(b, l.Panic)
	return appendString(b, l.Snapshot)
}

func decodeLimit(d *dec) *job.Limit {
	if !d.bool_() || d.err != nil {
		return nil
	}
	var l job.Limit
	l.Kind = d.byte_()
	l.Budget = d.int_()
	l.Visited = d.int_()
	l.ElapsedNS = d.varint()
	l.MaxMemBytes = d.uvarint()
	l.HeapBytes = d.uvarint()
	l.Panic = d.str()
	l.Snapshot = d.str()
	return &l
}

// ---- job.Result ----

func appendResult(b []byte, r *job.Result) []byte {
	b = appendSpec(b, r.Spec)
	b = appendUvarint(b, uint64(len(r.Checks)))
	for i := range r.Checks {
		b = appendCheck(b, &r.Checks[i])
	}
	return b
}

// maxChecks bounds the declared check count of a decoded Result: a
// table job yields a few dozen checks, so anything beyond this is a
// corrupt length, not data.
const maxChecks = 1 << 16

func decodeResultBody(d *dec) *job.Result {
	var r job.Result
	r.Spec = decodeSpec(d)
	n := d.uvarint()
	if d.err != nil {
		return &r
	}
	if n > maxChecks {
		d.fail(ErrCorrupt)
		return &r
	}
	r.Checks = make([]job.Check, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		r.Checks = append(r.Checks, decodeCheck(d))
	}
	return &r
}

func appendCheck(b []byte, c *job.Check) []byte {
	b = appendString(b, c.System)
	b = appendString(b, c.Prop)
	b = appendString(b, c.Engine)
	b = appendVarint(b, int64(c.Threads))
	b = appendVarint(b, int64(c.Vars))
	b = appendVarint(b, int64(c.TMStates))
	b = appendVarint(b, int64(c.SpecStates))
	b = appendBool(b, c.Holds)
	b = appendString(b, c.Counterexample)
	b = appendString(b, c.LoopWord)
	b = appendVarint(b, c.ElapsedNS)
	b = appendVarint(b, c.BuildTMNS)
	b = appendVarint(b, c.BuildSpecNS)
	b = appendVarint(b, int64(c.Pairs))
	b = appendVarint(b, int64(c.CexLen))
	b = appendVarint(b, int64(c.FrontierPeak))
	b = appendVarint(b, int64(c.Expanded))
	b = appendVarint(b, int64(c.Probes))
	b = appendLimit(b, c.Limit)
	return appendVarint(b, int64(c.Resumed))
}

func decodeCheck(d *dec) job.Check {
	var c job.Check
	c.System = d.str()
	c.Prop = d.str()
	c.Engine = d.str()
	c.Threads = d.int_()
	c.Vars = d.int_()
	c.TMStates = d.int_()
	c.SpecStates = d.int_()
	c.Holds = d.bool_()
	c.Counterexample = d.str()
	c.LoopWord = d.str()
	c.ElapsedNS = d.varint()
	c.BuildTMNS = d.varint()
	c.BuildSpecNS = d.varint()
	c.Pairs = d.int_()
	c.CexLen = d.int_()
	c.FrontierPeak = d.int_()
	c.Expanded = d.int_()
	c.Probes = d.int_()
	c.Limit = decodeLimit(d)
	c.Resumed = d.int_()
	return c
}
