package wire

import (
	"context"
	"net"
	"strings"
	"testing"

	"tmcheck/internal/job"
)

// TestClientConnectionLostReportsLastProgress kills the server side of
// a connection mid-job and asserts the client's error carries the last
// progress frame — the only trace of how far the lost job had gotten.
func TestClientConnectionLostReportsLastProgress(t *testing.T) {
	clientEnd, serverEnd := net.Pipe()
	c := NewClient(clientEnd)
	defer c.Close()
	srv := NewConn(serverEnd)

	sawProgress := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Run(context.Background(), job.Spec{Kind: job.KindTable2}, func(Progress) {
			close(sawProgress)
		})
		errCh <- err
	}()

	id, m, err := srv.Read()
	if err != nil {
		t.Fatalf("server read: %v", err)
	}
	if _, ok := m.(Submit); !ok {
		t.Fatalf("server read %T, want Submit", m)
	}
	if err := srv.Write(id, Progress{Name: "tl2:op", States: 4242, Frontier: 99, Level: 17}); err != nil {
		t.Fatalf("server write progress: %v", err)
	}
	// The reader records the frame before invoking onProgress, so once
	// the callback fired the death report must include it.
	<-sawProgress
	serverEnd.Close()

	runErr := <-errCh
	if runErr == nil {
		t.Fatal("Run returned nil after connection death")
	}
	for _, want := range []string{"connection lost", "last progress", "tl2:op", "level 17", "4242 states"} {
		if !strings.Contains(runErr.Error(), want) {
			t.Errorf("error %q does not mention %q", runErr, want)
		}
	}
}

// TestClientConnectionLostBeforeProgress asserts the death report stays
// a plain "connection lost" when no progress frame ever arrived.
func TestClientConnectionLostBeforeProgress(t *testing.T) {
	clientEnd, serverEnd := net.Pipe()
	c := NewClient(clientEnd)
	defer c.Close()
	srv := NewConn(serverEnd)

	errCh := make(chan error, 1)
	go func() {
		_, err := c.Run(context.Background(), job.Spec{Kind: job.KindTable2}, nil)
		errCh <- err
	}()
	if _, _, err := srv.Read(); err != nil {
		t.Fatalf("server read: %v", err)
	}
	serverEnd.Close()

	runErr := <-errCh
	if runErr == nil {
		t.Fatal("Run returned nil after connection death")
	}
	if !strings.Contains(runErr.Error(), "connection lost") {
		t.Errorf("error %q does not mention the lost connection", runErr)
	}
	if strings.Contains(runErr.Error(), "last progress") {
		t.Errorf("error %q invents a progress frame that never arrived", runErr)
	}
}
