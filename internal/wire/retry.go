package wire

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"tmcheck/internal/job"
)

// RetryConfig shapes the self-healing submit loop of RunRetry.
type RetryConfig struct {
	// Attempts is the total number of tries (dial + run); <= 0 takes 5.
	Attempts int
	// BaseDelay is the first backoff; <= 0 takes 200ms. Each retry
	// doubles it up to MaxDelay (<= 0 takes 10s), plus up to 50%
	// jitter so a fleet of clients doesn't thunder back in step.
	BaseDelay, MaxDelay time.Duration
	// HeartbeatTimeout arms the client-side dead-server detector on
	// every connection; <= 0 disables it (see Client.MonitorHeartbeat).
	HeartbeatTimeout time.Duration
	// Jitter returns a uniform float in [0,1) for the backoff jitter;
	// nil uses math/rand (tests inject a deterministic source).
	Jitter func() float64
	// Logf receives one line per reconnect attempt; nil discards.
	Logf func(format string, args ...any)
}

func (cfg *RetryConfig) defaults() {
	if cfg.Attempts <= 0 {
		cfg.Attempts = 5
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 200 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 10 * time.Second
	}
	if cfg.Jitter == nil {
		cfg.Jitter = rand.Float64
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
}

// retryable reports whether err is a transport death worth a
// reconnect: a dial failure or a connection loss (ErrLost). Job-level
// errors — validation refusals, reconstructed limits — are final.
func retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrLost) {
		return true
	}
	// Dial errors carry no wire sentinel; they arrive wrapped by the
	// dial step below, marked with errDial.
	return errors.Is(err, errDial)
}

var errDial = errors.New("wire: dial failed")

// RunRetry submits sp to the tmcheckd at addr, reconnecting with
// capped exponential backoff + jitter when the connection dies and the
// server remains reachable in principle. When sp names a -checkpoint,
// a resubmitted job sets Resume to the same snapshot, so the server
// continues the job from the prefix it already persisted instead of
// restarting — the self-healing path a killed daemon or a dropped
// connection takes. The last transport error is returned when every
// attempt fails; a job-level error returns immediately.
func RunRetry(ctx context.Context, addr string, sp job.Spec, cfg RetryConfig, onProgress func(Progress)) (*job.Result, error) {
	cfg.defaults()
	delay := cfg.BaseDelay
	var lastErr error
	for attempt := 1; attempt <= cfg.Attempts; attempt++ {
		if attempt > 1 {
			// Resubmissions resume from the server-side snapshot the
			// interrupted run persisted (same base name: the daemon
			// resolves both into its -snap-dir).
			if sp.Checkpoint != "" {
				sp.Resume = sp.Checkpoint
			}
			d := delay + time.Duration(cfg.Jitter()*float64(delay)/2)
			cfg.Logf("wire: %v; retrying in %v (attempt %d/%d)", lastErr, d.Round(time.Millisecond), attempt, cfg.Attempts)
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, fmt.Errorf("%w (after %d attempt(s))", lastErr, attempt-1)
			}
			if delay *= 2; delay > cfg.MaxDelay {
				delay = cfg.MaxDelay
			}
		}
		client, err := Dial(addr)
		if err != nil {
			lastErr = fmt.Errorf("%w: %v", errDial, err)
			continue
		}
		client.MonitorHeartbeat(cfg.HeartbeatTimeout)
		res, err := client.Run(ctx, sp, onProgress)
		client.Close()
		if err == nil || !retryable(err) {
			return res, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("wire: giving up after %d attempt(s): %w", cfg.Attempts, lastErr)
}
