package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tmcheck/internal/chaos"
	"tmcheck/internal/job"
)

// ErrLost matches (via errors.Is) every error a Client returns because
// its connection died — read failure, silent-peer heartbeat timeout,
// or plain close — so callers (the retry layer, the soak oracle) can
// tell a transport death from a job-level error.
var ErrLost = errors.New("wire: connection lost")

// Client multiplexes job submissions over one connection to tmcheckd.
// A background reader demultiplexes frames by request id, auto-acks
// server heartbeats, and fans progress frames out to the submitting
// calls; Run is safe to call from many goroutines.
type Client struct {
	conn   *Conn
	closer io.Closer

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*pendingReq
	readErr error
	hbErr   error // set by the heartbeat monitor before it kills the conn
	done    chan struct{}

	// lastReadNS is the wall clock of the last frame read — any frame,
	// heartbeats included — which the dead-server detector compares
	// against the heartbeat timeout.
	lastReadNS atomic.Int64
	hbStop     chan struct{}
	hbOnce     sync.Once
}

// pendingReq is one in-flight Run call. The reader records the last
// progress frame under the client mutex, so a connection death can
// report how far the job had gotten instead of a bare "connection
// lost".
type pendingReq struct {
	onProgress   func(Progress)
	result       chan ResultMsg
	lastProgress Progress
	hasProgress  bool
}

// Dial connects to a tmcheckd at addr (TCP). With a chaos plan
// installed the connection is wrapped in the fault-injecting conn, so
// mid-frame resets, torn writes and read stalls are exercised through
// the client's real error paths.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	var rwc io.ReadWriteCloser = nc
	if chaos.Enabled() {
		rwc = chaos.WrapConn(nc)
	}
	return NewClient(rwc), nil
}

// NewClient wraps an established connection and starts the reader.
func NewClient(rwc io.ReadWriteCloser) *Client {
	c := &Client{
		conn:    NewConn(rwc),
		closer:  rwc,
		pending: make(map[uint64]*pendingReq),
		done:    make(chan struct{}),
		hbStop:  make(chan struct{}),
	}
	c.lastReadNS.Store(time.Now().UnixNano())
	go c.readLoop()
	return c
}

// MonitorHeartbeat starts the client-side dead-server detector: if no
// frame (heartbeats count) arrives for longer than timeout while a
// request is in flight, the connection is declared lost and torn down,
// surfacing the usual "connection lost (last progress: …)" error
// instead of hanging forever on a silent peer. timeout <= 0 disables
// the monitor. Idle connections are never timed out — a server only
// owes traffic while it holds our jobs.
func (c *Client) MonitorHeartbeat(timeout time.Duration) {
	if timeout <= 0 {
		return
	}
	tick := timeout / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	go func() {
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-c.hbStop:
				return
			case <-c.done:
				return
			case <-t.C:
			}
			c.mu.Lock()
			waiting := len(c.pending) > 0
			c.mu.Unlock()
			if !waiting {
				c.lastReadNS.Store(time.Now().UnixNano())
				continue
			}
			silent := time.Duration(time.Now().UnixNano() - c.lastReadNS.Load())
			if silent > timeout {
				c.mu.Lock()
				c.hbErr = fmt.Errorf("no server traffic for %v (heartbeat timeout %v)",
					silent.Round(time.Millisecond), timeout)
				c.mu.Unlock()
				c.closer.Close() // wakes the read loop, which resolves pending Runs
				return
			}
		}
	}()
}

// Close tears the connection down; in-flight Runs return the read
// error. The server cancels this connection's running jobs.
func (c *Client) Close() error {
	c.hbOnce.Do(func() { close(c.hbStop) })
	return c.closer.Close()
}

// readLoop demultiplexes incoming frames until the connection dies.
func (c *Client) readLoop() {
	for {
		reqID, m, err := c.conn.Read()
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			c.mu.Unlock()
			close(c.done)
			return
		}
		c.lastReadNS.Store(time.Now().UnixNano())
		switch m := m.(type) {
		case Heartbeat:
			// Ack on the shared writer; a failed ack will surface as a
			// read error when the server drops us.
			_ = c.conn.Write(0, HeartbeatAck{SentNS: m.SentNS})
		case Progress:
			c.mu.Lock()
			req := c.pending[reqID]
			if req != nil {
				req.lastProgress, req.hasProgress = m, true
			}
			c.mu.Unlock()
			if req != nil && req.onProgress != nil {
				req.onProgress(m)
			}
		case ResultMsg:
			c.deliver(reqID, m)
		case ErrorMsg:
			c.deliver(reqID, ResultMsg{ErrMsg: m.Msg})
		case Accepted:
			// Admission is informational; Run only waits for the Result.
		}
	}
}

// deliver resolves one pending request.
func (c *Client) deliver(reqID uint64, m ResultMsg) {
	c.mu.Lock()
	req := c.pending[reqID]
	delete(c.pending, reqID)
	c.mu.Unlock()
	if req != nil {
		req.result <- m
	}
}

// lostError is a connection-death error: it renders the familiar
// "connection lost (last progress: …)" message, unwraps to the
// transport cause, and matches ErrLost so the retry layer can classify
// it without string inspection.
type lostError struct {
	verb  string // "lost" or "closed"
	at    string // " (last progress: …)" or ""
	cause error  // nil for a plain close
}

func (e *lostError) Error() string {
	if e.cause != nil {
		return fmt.Sprintf("wire: connection %s%s: %v", e.verb, e.at, e.cause)
	}
	return fmt.Sprintf("wire: connection %s%s", e.verb, e.at)
}

func (e *lostError) Unwrap() error        { return e.cause }
func (e *lostError) Is(target error) bool { return target == ErrLost }

// err reports why the connection died, annotated with the request's
// last progress frame when one arrived — the only trace of how far the
// lost job had gotten. The heartbeat monitor's verdict, when it fired,
// names the silence instead of the secondary close error it provoked.
func (c *Client) err(req *pendingReq) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	at := ""
	if req != nil && req.hasProgress {
		p := req.lastProgress
		at = fmt.Sprintf(" (last progress: %s at level %d, %d states)", p.Name, p.Level, p.States)
	}
	cause := c.readErr
	if c.hbErr != nil {
		cause = c.hbErr
	}
	if cause != nil {
		return &lostError{verb: "lost", at: at, cause: cause}
	}
	return &lostError{verb: "closed", at: at}
}

// Run submits sp and blocks until the server answers with the job's
// Result. onProgress (optional) receives each streamed progress frame
// on the reader goroutine. Cancelling ctx sends a Cancel and still
// waits for the Result — the server stops the job at its next guard
// barrier and reports what it reached, so a cancelled Run returns the
// partial Result plus the reconstructed cancellation error.
func (c *Client) Run(ctx context.Context, sp job.Spec, onProgress func(Progress)) (*job.Result, error) {
	c.mu.Lock()
	if c.readErr != nil {
		c.mu.Unlock()
		return nil, c.err(nil)
	}
	c.nextID++
	id := c.nextID
	req := &pendingReq{onProgress: onProgress, result: make(chan ResultMsg, 1)}
	c.pending[id] = req
	c.mu.Unlock()

	if err := c.conn.Write(id, Submit{Spec: sp}); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		// A failed submit write is a transport death, not a job error.
		return nil, &lostError{verb: "lost", cause: err}
	}
	cancelSent := false
	for {
		select {
		case m := <-req.result:
			var err error
			if m.ErrMsg != "" {
				err = job.ReconstructError(m.ErrMsg, m.Limit)
			}
			return m.Result, err
		case <-ctx.Done():
			if !cancelSent {
				cancelSent = true
				// Best effort: if the write fails the connection is dying
				// and c.done fires next.
				_ = c.conn.Write(id, Cancel{})
			}
			// Keep waiting for the Result the cancel provokes.
			ctx = context.Background()
		case <-c.done:
			c.mu.Lock()
			delete(c.pending, id)
			c.mu.Unlock()
			return nil, c.err(req)
		}
	}
}
