package wire

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"

	"tmcheck/internal/job"
)

// Client multiplexes job submissions over one connection to tmcheckd.
// A background reader demultiplexes frames by request id, auto-acks
// server heartbeats, and fans progress frames out to the submitting
// calls; Run is safe to call from many goroutines.
type Client struct {
	conn   *Conn
	closer io.Closer

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*pendingReq
	readErr error
	done    chan struct{}
}

// pendingReq is one in-flight Run call. The reader records the last
// progress frame under the client mutex, so a connection death can
// report how far the job had gotten instead of a bare "connection
// lost".
type pendingReq struct {
	onProgress   func(Progress)
	result       chan ResultMsg
	lastProgress Progress
	hasProgress  bool
}

// Dial connects to a tmcheckd at addr (TCP).
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection and starts the reader.
func NewClient(rwc io.ReadWriteCloser) *Client {
	c := &Client{
		conn:    NewConn(rwc),
		closer:  rwc,
		pending: make(map[uint64]*pendingReq),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Close tears the connection down; in-flight Runs return the read
// error. The server cancels this connection's running jobs.
func (c *Client) Close() error {
	return c.closer.Close()
}

// readLoop demultiplexes incoming frames until the connection dies.
func (c *Client) readLoop() {
	for {
		reqID, m, err := c.conn.Read()
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			c.mu.Unlock()
			close(c.done)
			return
		}
		switch m := m.(type) {
		case Heartbeat:
			// Ack on the shared writer; a failed ack will surface as a
			// read error when the server drops us.
			_ = c.conn.Write(0, HeartbeatAck{SentNS: m.SentNS})
		case Progress:
			c.mu.Lock()
			req := c.pending[reqID]
			if req != nil {
				req.lastProgress, req.hasProgress = m, true
			}
			c.mu.Unlock()
			if req != nil && req.onProgress != nil {
				req.onProgress(m)
			}
		case ResultMsg:
			c.deliver(reqID, m)
		case ErrorMsg:
			c.deliver(reqID, ResultMsg{ErrMsg: m.Msg})
		case Accepted:
			// Admission is informational; Run only waits for the Result.
		}
	}
}

// deliver resolves one pending request.
func (c *Client) deliver(reqID uint64, m ResultMsg) {
	c.mu.Lock()
	req := c.pending[reqID]
	delete(c.pending, reqID)
	c.mu.Unlock()
	if req != nil {
		req.result <- m
	}
}

// err reports why the connection died, annotated with the request's
// last progress frame when one arrived — the only trace of how far the
// lost job had gotten.
func (c *Client) err(req *pendingReq) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	at := ""
	if req != nil && req.hasProgress {
		p := req.lastProgress
		at = fmt.Sprintf(" (last progress: %s at level %d, %d states)", p.Name, p.Level, p.States)
	}
	if c.readErr != nil {
		return fmt.Errorf("wire: connection lost%s: %w", at, c.readErr)
	}
	return fmt.Errorf("wire: connection closed%s", at)
}

// Run submits sp and blocks until the server answers with the job's
// Result. onProgress (optional) receives each streamed progress frame
// on the reader goroutine. Cancelling ctx sends a Cancel and still
// waits for the Result — the server stops the job at its next guard
// barrier and reports what it reached, so a cancelled Run returns the
// partial Result plus the reconstructed cancellation error.
func (c *Client) Run(ctx context.Context, sp job.Spec, onProgress func(Progress)) (*job.Result, error) {
	c.mu.Lock()
	if c.readErr != nil {
		c.mu.Unlock()
		return nil, c.err(nil)
	}
	c.nextID++
	id := c.nextID
	req := &pendingReq{onProgress: onProgress, result: make(chan ResultMsg, 1)}
	c.pending[id] = req
	c.mu.Unlock()

	if err := c.conn.Write(id, Submit{Spec: sp}); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}
	cancelSent := false
	for {
		select {
		case m := <-req.result:
			var err error
			if m.ErrMsg != "" {
				err = job.ReconstructError(m.ErrMsg, m.Limit)
			}
			return m.Result, err
		case <-ctx.Done():
			if !cancelSent {
				cancelSent = true
				// Best effort: if the write fails the connection is dying
				// and c.done fires next.
				_ = c.conn.Write(id, Cancel{})
			}
			// Keep waiting for the Result the cancel provokes.
			ctx = context.Background()
		case <-c.done:
			c.mu.Lock()
			delete(c.pending, id)
			c.mu.Unlock()
			return nil, c.err(req)
		}
	}
}
