package explore

import (
	"tmcheck/internal/core"
	"tmcheck/internal/space"
	"tmcheck/internal/tm"
)

// Space is the lazy view of the TM×CM×most-general-program unfolding:
// the implicit transition system whose states are interned product
// states and whose successor generator runs the TM semantics on demand.
// It implements space.Space; the materialized TS is one consumer (a
// scan to the fixpoint) and the on-the-fly safety engine is another
// that never expands states the product search does not reach.
//
// Both the materialized builders and the lazy consumers funnel through
// the same forEachEnabled/forEachStep enumerators, so per-state edge
// order — and hence every canonical numbering and every counterexample
// downstream — is bit-identical across engines by construction.
type Space struct {
	Alg      tm.Algorithm
	CM       tm.ContentionManager // nil when the TM runs without a manager
	Alphabet core.Alphabet

	commands []core.Command
	in       *space.Interner[prodState]
}

// NewSpace returns the lazy unfolding of the TM algorithm (with an
// optional contention manager) applied to the most general program, for
// single-goroutine consumers.
func NewSpace(alg tm.Algorithm, cm tm.ContentionManager) *Space {
	return newSpace(alg, cm, false)
}

// NewSpaceSync is NewSpace with a concurrency-safe intern table, for
// consumers that expand states from several goroutines (the parallel
// on-the-fly product search).
func NewSpaceSync(alg tm.Algorithm, cm tm.ContentionManager) *Space {
	return newSpace(alg, cm, true)
}

func newSpace(alg tm.Algorithm, cm tm.ContentionManager, shared bool) *Space {
	ab := core.Alphabet{Threads: alg.Threads(), Vars: alg.Vars()}
	sp := &Space{Alg: alg, CM: cm, Alphabet: ab, commands: ab.Commands()}
	if shared {
		sp.in = space.NewSyncInterner[prodState]()
	} else {
		sp.in = space.NewInterner[prodState]()
	}
	var cmInit tm.State
	if cm != nil {
		cmInit = cm.Initial()
	}
	sp.in.Intern(prodState{TM: alg.Initial(), CM: cmInit})
	return sp
}

// Name describes the unfolded system, e.g. "dstm" or "tl2+polite".
func (sp *Space) Name() string {
	if sp.CM == nil {
		return sp.Alg.Name()
	}
	return sp.Alg.Name() + "+" + sp.CM.Name()
}

// Init implements space.Space.
func (sp *Space) Init() space.State { return 0 }

// NumStates implements space.Space: the number of product states
// constructed so far (it grows as successors are expanded).
func (sp *Space) NumStates() int { return sp.in.Len() }

// Succ implements space.Space: the emitted letter is the alphabet code
// of the completed statement, or space.Eps for internal ⊥-steps.
func (sp *Space) Succ(s space.State, emit func(l space.Letter, to space.State)) {
	sp.SuccEdges(s, func(e Edge) { emit(e.Emit, e.To) })
}

// SuccEdges enumerates the outgoing edges of the already-interned state
// s with full TM detail (command, thread, extended command, response),
// interning each successor. Edge order is the canonical enumeration
// order shared by every engine.
func (sp *Space) SuccEdges(s space.State, yield func(Edge)) {
	q := sp.in.At(s)
	sp.expand(q, func(next prodState, e Edge) {
		e.To = sp.in.Intern(next)
		yield(e)
	})
}

// expand enumerates the successors of product state q without touching
// the intern table: the edge templates are yielded with To unset. The
// parallel materializer uses this directly (parbfs owns the interning
// there).
func (sp *Space) expand(q prodState, yield func(next prodState, e Edge)) {
	sp.forEachEnabled(q, func(c core.Command, t core.Thread) {
		sp.forEachStep(q, c, t, yield)
	})
}

// forEachEnabled calls yield for every (command, thread) pair the most
// general program may issue from q: everything when the thread has no
// pending command, only the pending command otherwise.
func (sp *Space) forEachEnabled(q prodState, yield func(core.Command, core.Thread)) {
	n := sp.Alg.Threads()
	for t := core.Thread(0); int(t) < n; t++ {
		if q.Pending[t].Active {
			yield(q.Pending[t].C, t)
			continue
		}
		for _, c := range sp.commands {
			yield(c, t)
		}
	}
}

// forEachStep enumerates every transition for command c by thread t from
// state q, calling yield with the successor product state and the edge
// template (To left unset — the caller interns the successor). Every
// engine funnels through this single enumerator, so their edge order
// agrees by construction.
func (sp *Space) forEachStep(q prodState, c core.Command, t core.Thread, yield func(next prodState, e Edge)) {
	steps := sp.Alg.Steps(q.TM, c, t)
	conflict := sp.Alg.Conflict(q.TM, c, t)

	// cmStep resolves the contention-manager product for extended command
	// x: allowed reports whether the transition survives, and next is the
	// manager's state afterwards.
	cmStep := func(x tm.XCmd) (next tm.State, allowed bool) {
		if sp.CM == nil {
			return q.CM, true
		}
		p2, has := sp.CM.Step(q.CM, x, t)
		if conflict && !has {
			return nil, false
		}
		if has {
			return p2, true
		}
		return q.CM, true
	}

	for _, step := range steps {
		cmNext, ok := cmStep(step.X)
		if !ok {
			continue
		}
		next := prodState{TM: step.Next, Pending: q.Pending, CM: cmNext}
		emit := int16(-1)
		if step.R == tm.RespPending {
			next.Pending[t] = pending{Active: true, C: c}
		} else {
			next.Pending[t] = pending{}
			if step.R == tm.Resp1 {
				emit = int16(sp.Alphabet.Encode(core.St(c, t)))
			}
		}
		yield(next, Edge{Cmd: c, T: t, X: step.X, R: step.R, Emit: emit})
	}

	// Abort transitions exist when the command is abort enabled (no
	// extended-command step) or the conflict function is true.
	if len(steps) == 0 || conflict {
		if cmNext, ok := cmStep(tm.XCmd{Kind: tm.XAbort}); ok {
			next := prodState{TM: sp.Alg.AbortStep(q.TM, t), Pending: q.Pending, CM: cmNext}
			next.Pending[t] = pending{}
			emit := int16(sp.Alphabet.Encode(core.St(core.Abort(), t)))
			yield(next, Edge{
				Cmd: c, T: t,
				X: tm.XCmd{Kind: tm.XAbort}, R: tm.Resp0, Emit: emit,
			})
		}
	}
}
