// Package explore unfolds a TM algorithm — optionally in product with a
// contention manager — applied to the most general program with n threads
// and k variables into an explicit finite transition system (§3.2).
//
// The most general program lets every thread issue every command whenever
// no command of that thread is pending. The explorer supplies the generic
// parts of the TM-algorithm formalism:
//
//   - pending-command bookkeeping (the function γ): a command answered
//     with response ⊥ stays pending and is the only command the thread may
//     continue with;
//   - abort transitions: an abort of thread t is possible exactly when the
//     enabled command is abort enabled (no extended-command transition
//     exists) or the conflict function is true;
//   - the contention-manager product of §3.1: at a conflict only extended
//     commands the manager has a transition for may execute; elsewhere the
//     manager merely observes.
//
// The resulting transition system is the common substrate of the safety
// checker (via its NFA view: completed commands and aborts are letters,
// ⊥-responses are ε-moves) and of the liveness checker (which inspects its
// loops).
package explore

import (
	"fmt"
	"time"

	"tmcheck/internal/automata"
	"tmcheck/internal/core"
	"tmcheck/internal/obs"
	"tmcheck/internal/tm"
)

// pending is a thread's pending command, if any. The zero value means no
// command is pending.
type pending struct {
	Active bool
	C      core.Command
}

// prodState is an explored state: the TM-algorithm state, each thread's
// pending command, and the contention-manager state (nil when exploring
// without a manager).
type prodState struct {
	TM      tm.State
	Pending [tm.MaxThreads]pending
	CM      tm.State
}

// Edge is one transition of the explicit system.
type Edge struct {
	To int32
	// Cmd is the program command being executed and T the thread.
	Cmd core.Command
	T   core.Thread
	// X and R are the extended command executed and the TM's response.
	// Aborts appear as X.Kind == XAbort with R == Resp0.
	X tm.XCmd
	R tm.Resp
	// Emit is the letter of the emitted statement (completed command or
	// abort) in the instance alphabet, or -1 for internal ⊥-steps.
	Emit int16
}

// TS is the explicit transition system of a TM algorithm applied to the
// most general program.
type TS struct {
	Alg      tm.Algorithm
	CM       tm.ContentionManager // nil when the TM runs without a manager
	Alphabet core.Alphabet
	States   []prodState
	Out      [][]Edge // outgoing edges per state; state 0 is initial
}

// Name describes the explored system, e.g. "dstm" or "tl2+polite".
func (ts *TS) Name() string {
	if ts.CM == nil {
		return ts.Alg.Name()
	}
	return ts.Alg.Name() + "+" + ts.CM.Name()
}

// NumStates returns the number of reachable states — the "Size" column of
// the paper's Table 2.
func (ts *TS) NumStates() int { return len(ts.States) }

// NumEdges returns the total number of transitions.
func (ts *TS) NumEdges() int {
	n := 0
	for _, es := range ts.Out {
		n += len(es)
	}
	return n
}

// Build explores the TM algorithm applied to the most general program on
// the algorithm's own thread and variable bounds. cm may be nil.
//
// The exploration records its vitals into the obs registry under
// "explore.<system>.*": reachable states, edges, ε-steps (pending ⊥
// responses), abort transitions, the maximum BFS frontier, and the
// build wall-clock (from which states/sec follows).
func Build(alg tm.Algorithm, cm tm.ContentionManager) *TS {
	start := time.Now()
	n := alg.Threads()
	ab := core.Alphabet{Threads: n, Vars: alg.Vars()}
	ts := &TS{Alg: alg, CM: cm, Alphabet: ab}

	var cmInit tm.State
	if cm != nil {
		cmInit = cm.Initial()
	}
	init := prodState{TM: alg.Initial(), CM: cmInit}

	index := map[prodState]int32{init: 0}
	ts.States = append(ts.States, init)
	ts.Out = append(ts.Out, nil)

	intern := func(s prodState) int32 {
		if id, ok := index[s]; ok {
			return id
		}
		id := int32(len(ts.States))
		index[s] = id
		ts.States = append(ts.States, s)
		ts.Out = append(ts.Out, nil)
		return id
	}

	commands := ab.Commands()
	maxFrontier := 1
	for qi := 0; qi < len(ts.States); qi++ {
		if f := len(ts.States) - qi; f > maxFrontier {
			maxFrontier = f
		}
		q := ts.States[qi]
		for t := core.Thread(0); int(t) < n; t++ {
			enabled := commands
			if q.Pending[t].Active {
				enabled = []core.Command{q.Pending[t].C}
			}
			for _, c := range enabled {
				ts.expand(qi, q, c, t, intern)
			}
		}
	}
	ts.record(start, maxFrontier)
	return ts
}

// record batches the exploration statistics into the obs registry, so
// the hot loop above carries no per-edge instrumentation cost.
func (ts *TS) record(start time.Time, maxFrontier int) {
	if !obs.Enabled() {
		return
	}
	eps, aborts := 0, 0
	for _, es := range ts.Out {
		for _, e := range es {
			if e.Emit < 0 {
				eps++
			}
			if e.X.Kind == tm.XAbort {
				aborts++
			}
		}
	}
	key := "explore." + ts.Name()
	obs.Inc(key+".builds", 1)
	obs.Inc(key+".states", int64(ts.NumStates()))
	obs.Inc(key+".edges", int64(ts.NumEdges()))
	obs.Inc(key+".eps_steps", int64(eps))
	obs.Inc(key+".abort_edges", int64(aborts))
	obs.MaxGauge(key+".frontier_max", int64(maxFrontier))
	obs.AddTime(key+".build", time.Since(start))
}

// expand appends every transition for command c by thread t from state q.
func (ts *TS) expand(qi int, q prodState, c core.Command, t core.Thread, intern func(prodState) int32) {
	steps := ts.Alg.Steps(q.TM, c, t)
	conflict := ts.Alg.Conflict(q.TM, c, t)

	// cmStep resolves the contention-manager product for extended command
	// x: allowed reports whether the transition survives, and next is the
	// manager's state afterwards.
	cmStep := func(x tm.XCmd) (next tm.State, allowed bool) {
		if ts.CM == nil {
			return q.CM, true
		}
		p2, has := ts.CM.Step(q.CM, x, t)
		if conflict && !has {
			return nil, false
		}
		if has {
			return p2, true
		}
		return q.CM, true
	}

	for _, step := range steps {
		cmNext, ok := cmStep(step.X)
		if !ok {
			continue
		}
		next := prodState{TM: step.Next, Pending: q.Pending, CM: cmNext}
		emit := int16(-1)
		if step.R == tm.RespPending {
			next.Pending[t] = pending{Active: true, C: c}
		} else {
			next.Pending[t] = pending{}
			if step.R == tm.Resp1 {
				emit = int16(ts.Alphabet.Encode(core.St(c, t)))
			}
		}
		ts.addEdge(qi, Edge{To: intern(next), Cmd: c, T: t, X: step.X, R: step.R, Emit: emit})
	}

	// Abort transitions exist when the command is abort enabled (no
	// extended-command step) or the conflict function is true.
	if len(steps) == 0 || conflict {
		if cmNext, ok := cmStep(tm.XCmd{Kind: tm.XAbort}); ok {
			next := prodState{TM: ts.Alg.AbortStep(q.TM, t), Pending: q.Pending, CM: cmNext}
			next.Pending[t] = pending{}
			emit := int16(ts.Alphabet.Encode(core.St(core.Abort(), t)))
			ts.addEdge(qi, Edge{
				To: intern(next), Cmd: c, T: t,
				X: tm.XCmd{Kind: tm.XAbort}, R: tm.Resp0, Emit: emit,
			})
		}
	}
}

func (ts *TS) addEdge(from int, e Edge) {
	ts.Out[from] = append(ts.Out[from], e)
}

// NFA views the transition system as an automaton over the instance
// alphabet: emitting edges become letter transitions, internal ⊥-steps
// become ε-transitions. Its language is L(A), the language of the TM
// algorithm (§3.2).
func (ts *TS) NFA() *automata.NFA {
	a := automata.NewNFA(ts.Alphabet.Size())
	for i := 1; i < len(ts.States); i++ {
		a.AddState()
	}
	for s, es := range ts.Out {
		for _, e := range es {
			if e.Emit >= 0 {
				a.AddEdge(s, int(e.Emit), int(e.To))
			} else {
				a.AddEps(s, int(e.To))
			}
		}
	}
	return a
}

// InLanguage reports whether the word is in L(A), by NFA simulation.
func (ts *TS) InLanguage(w core.Word) bool {
	return ts.NFA().Accepts(ts.Alphabet.EncodeWord(w))
}

// Run replays a scheduler (a sequence of thread choices) from the initial
// state, resolving nondeterminism by taking the first enabled transition of
// the scheduled thread whose extended command is not an abort, falling
// back to an abort when nothing else is enabled. It returns the sequence
// of executed edges, mirroring the runs of the paper's Table 1. The replay
// stops early if the scheduled thread has no transition at all.
func (ts *TS) Run(schedule []core.Thread) []Edge {
	var out []Edge
	cur := int32(0)
	for _, t := range schedule {
		var chosen *Edge
		for i := range ts.Out[cur] {
			e := &ts.Out[cur][i]
			if e.T != t {
				continue
			}
			if e.X.Kind != tm.XAbort {
				chosen = e
				break
			}
			if chosen == nil {
				chosen = e
			}
		}
		if chosen == nil {
			return out
		}
		out = append(out, *chosen)
		cur = chosen.To
	}
	return out
}

// WordOf extracts the emitted word of a sequence of edges.
func (ts *TS) WordOf(run []Edge) core.Word {
	var w core.Word
	for _, e := range run {
		if e.Emit >= 0 {
			w = append(w, ts.Alphabet.Decode(int(e.Emit)))
		}
	}
	return w
}

// FormatRun renders a run in the paper's Table 1 notation, e.g.
// "(rl,1)1, (r,1)1, (wl,2)1, ...".
func FormatRun(run []Edge) string {
	s := ""
	for i, e := range run {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s%d", e.X, e.T+1)
	}
	return s
}
