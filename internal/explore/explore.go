// Package explore unfolds a TM algorithm — optionally in product with a
// contention manager — applied to the most general program with n threads
// and k variables into an explicit finite transition system (§3.2).
//
// The most general program lets every thread issue every command whenever
// no command of that thread is pending. The explorer supplies the generic
// parts of the TM-algorithm formalism:
//
//   - pending-command bookkeeping (the function γ): a command answered
//     with response ⊥ stays pending and is the only command the thread may
//     continue with;
//   - abort transitions: an abort of thread t is possible exactly when the
//     enabled command is abort enabled (no extended-command transition
//     exists) or the conflict function is true;
//   - the contention-manager product of §3.1: at a conflict only extended
//     commands the manager has a transition for may execute; elsewhere the
//     manager merely observes.
//
// The resulting transition system is the common substrate of the safety
// checker (via its NFA view: completed commands and aborts are letters,
// ⊥-responses are ε-moves) and of the liveness checker (which inspects its
// loops).
package explore

import (
	"fmt"
	"sync"
	"time"

	"tmcheck/internal/automata"
	"tmcheck/internal/core"
	"tmcheck/internal/guard"
	"tmcheck/internal/obs"
	"tmcheck/internal/parbfs"
	"tmcheck/internal/space"
	"tmcheck/internal/tm"
)

// pending is a thread's pending command, if any. The zero value means no
// command is pending.
type pending struct {
	Active bool
	C      core.Command
}

// prodState is an explored state: the TM-algorithm state, each thread's
// pending command, and the contention-manager state (nil when exploring
// without a manager).
type prodState struct {
	TM      tm.State
	Pending [tm.MaxThreads]pending
	CM      tm.State
}

// Edge is one transition of the explicit system.
type Edge struct {
	To int32
	// Cmd is the program command being executed and T the thread.
	Cmd core.Command
	T   core.Thread
	// X and R are the extended command executed and the TM's response.
	// Aborts appear as X.Kind == XAbort with R == Resp0.
	X tm.XCmd
	R tm.Resp
	// Emit is the letter of the emitted statement (completed command or
	// abort) in the instance alphabet, or -1 for internal ⊥-steps.
	Emit int16
}

// stateTable is the id-indexed product-state storage of a TS. The
// generic engines keep boxed states (boxedStates); the packed engines
// keep bit-packed keys and decode on demand (packedStates), so
// materializing a system never boxes every state.
type stateTable interface {
	Len() int
	At(i int32) prodState
}

// boxedStates is the boxed state table of the generic engines.
type boxedStates []prodState

func (b boxedStates) Len() int             { return len(b) }
func (b boxedStates) At(i int32) prodState { return b[i] }

// TS is the explicit transition system of a TM algorithm applied to the
// most general program.
type TS struct {
	Alg      tm.Algorithm
	CM       tm.ContentionManager // nil when the TM runs without a manager
	Alphabet core.Alphabet
	Out      [][]Edge // outgoing edges per state; state 0 is initial

	// Resumed is the number of states seeded from a snapshot when the
	// build was resumed (0 for a fresh build). It does not affect the
	// constructed system — numbering and adjacency are bit-identical to
	// an uninterrupted build — only the reporting.
	Resumed int

	// states holds the product states by id; access through StateAt.
	states stateTable

	// nfa caches the NFA view: TS is immutable after Build, so the view
	// is computed at most once and shared by every caller.
	nfaOnce sync.Once
	nfa     *automata.NFA

	// dense caches the CSR automaton view the DFA-inclusion checks walk.
	denseOnce sync.Once
	dense     *automata.DenseNFA
}

// StateAt returns the product state with the given id. Packed systems
// decode it on demand, so treat this as a cold-path accessor (tests,
// witnesses, diagnostics) — the hot analyses walk Out and the NFA view.
func (ts *TS) StateAt(i int32) prodState { return ts.states.At(i) }

// Name describes the explored system, e.g. "dstm" or "tl2+polite".
func (ts *TS) Name() string {
	if ts.CM == nil {
		return ts.Alg.Name()
	}
	return ts.Alg.Name() + "+" + ts.CM.Name()
}

// NumStates returns the number of reachable states — the "Size" column of
// the paper's Table 2.
func (ts *TS) NumStates() int {
	if ts.states == nil {
		return 0
	}
	return ts.states.Len()
}

// NumEdges returns the total number of transitions.
func (ts *TS) NumEdges() int {
	n := 0
	for _, es := range ts.Out {
		n += len(es)
	}
	return n
}

// Build explores the TM algorithm applied to the most general program on
// the algorithm's own thread and variable bounds, with the process-wide
// worker count (the -workers flag of cmd/tmcheck; GOMAXPROCS by
// default). cm may be nil.
//
// The exploration records its vitals into the obs registry under
// "explore.<system>.*": reachable states, edges, ε-steps (pending ⊥
// responses), abort transitions, BFS frontier shape, intern-table
// collisions, and the build wall-clock (from which states/sec follows).
func Build(alg tm.Algorithm, cm tm.ContentionManager) *TS {
	return BuildWorkers(alg, cm, parbfs.Workers())
}

// BuildWorkers is Build with an explicit worker count. One worker runs
// the plain sequential exploration; more run the level-synchronized
// parallel engine of internal/parbfs. The resulting transition system —
// state numbering, edge order, and every downstream verdict — is
// bit-identical for every worker count (see the parbfs package comment
// for the argument; TestEngineEquivalence checks it on the registry).
func BuildWorkers(alg tm.Algorithm, cm tm.ContentionManager, workers int) *TS {
	ts, err := BuildBudget(alg, cm, workers, 0) // unbounded: only a TM panic can fail it
	if err != nil {
		// Preserve the historical contract of the unbudgeted builder —
		// a panicking TM algorithm panics through — instead of
		// returning a nil system. Guarded callers use BuildBudget or
		// BuildGuarded and receive the error.
		panic(err)
	}
	return ts
}

// BuildBudget is BuildWorkers with a state budget: when maxStates > 0
// and the reachable system has more states, the exploration stops with
// a *space.BudgetError instead of materializing it (the parallel engine
// checks at level barriers, so it may overshoot by one BFS level).
// maxStates <= 0 means unbounded.
func BuildBudget(alg tm.Algorithm, cm tm.ContentionManager, workers, maxStates int) (*TS, error) {
	return BuildGuarded(alg, cm, workers, guard.New(nil, maxStates, 0))
}

// BuildGuarded is the fully guarded builder: the exploration honors
// the guard's context (deadline and cancellation), state budget, and
// heap watchdog — consulted per state by the sequential scan and at
// level barriers by the parallel engine — and a panic in the TM
// algorithm is isolated into a *guard.LimitError instead of crashing.
func BuildGuarded(alg tm.Algorithm, cm tm.ContentionManager, workers int, g *guard.Guard) (*TS, error) {
	start := time.Now()
	ts := &TS{Alg: alg, CM: cm, Alphabet: core.Alphabet{Threads: alg.Threads(), Vars: alg.Vars()}}
	out, states, pstats, err := scanControlled(alg, cm, workers, g, nil)
	if err != nil {
		return nil, err
	}
	ts.Out, ts.states = out, states
	ts.record(start, workers, pstats)
	return ts, nil
}

// Barrier is the level-boundary hook of ScanLevels. It fires once per
// BFS level with the adjacency constructed so far: states with ids
// below expanded have their outgoing edges resolved in out, states in
// [expanded, interned) are discovered but not yet expanded (their out
// entry is nil or absent — len(out) may be either expanded or interned,
// so treat missing tails as edgeless). Every edge target is below
// interned. The final call of a completed scan has expanded == interned
// == the total state count. A non-nil return stops the scan and is
// returned verbatim.
//
// Both the sequential scan and the level-synchronized parallel engine
// produce the identical barrier sequence — (cum(0), cum(1)), (cum(1),
// cum(2)), …, (total, total), where cum(L) counts the states in BFS
// levels 0..L — because the numbering is canonical; this is what lets
// the on-the-fly liveness engine promise bit-identical verdicts at any
// worker count.
type Barrier func(out [][]Edge, interned, expanded int) error

// ScanLevels lazily unfolds the TM×CM product in canonical scan order,
// calling barrier at every BFS level boundary, without materializing a
// TS. The on-the-fly liveness engine drives its lasso probes from this.
// A positive maxStates bounds the states interned, failing with a
// *space.BudgetError; the sequential scan trips it exactly, the
// parallel one at level barriers (budget is checked before the barrier
// hook runs, so a blown budget is reported in preference to whatever
// the hook would have found at that boundary).
func ScanLevels(alg tm.Algorithm, cm tm.ContentionManager, workers, maxStates int, barrier Barrier) error {
	return ScanLevelsGuarded(alg, cm, workers, guard.New(nil, maxStates, 0), barrier)
}

// ScanLevelsGuarded is ScanLevels under a full resource guard: the
// context, state budget, and heap watchdog are all consulted at the
// points the budget alone used to be — per state in the sequential
// scan and at level barriers in the parallel engine, always before the
// barrier hook at the same boundary — so a cancelled or timed-out scan
// still observes a prefix of the identical canonical barrier sequence
// at every worker count.
func ScanLevelsGuarded(alg tm.Algorithm, cm tm.ContentionManager, workers int, g *guard.Guard, barrier Barrier) error {
	_, _, _, err := scanControlled(alg, cm, workers, g, barrier)
	return err
}

// scanControlled is the exploration engine under BuildGuarded and
// ScanLevelsGuarded: scan-order BFS to the fixpoint (sequential for
// one worker, parbfs for more), with an optional guard and an optional
// per-level barrier hook, inside a panic-isolation capture. Products
// whose TM and manager both pack (packedFor) run on the bit-packed
// open-addressing core; everything else takes the generic boxed path.
// All four engines produce bit-identical adjacency and numbering.
func scanControlled(alg tm.Algorithm, cm tm.ContentionManager, workers int, g *guard.Guard, barrier Barrier) (out [][]Edge, states stateTable, pstats parbfs.Stats, err error) {
	out, states, pstats, _, err = scanPersistControlled(alg, cm, workers, g, barrier, nil)
	return out, states, pstats, err
}

// scanPersistControlled is scanControlled with optional persistence
// hooks. Checkpoint/resume and spill exist only on the packed engines
// (the boxed paths have no canonical byte representation to persist),
// so a persisting build of an unpackable product fails loudly instead
// of silently discarding the work it was asked to keep.
func scanPersistControlled(alg tm.Algorithm, cm tm.ContentionManager, workers int, g *guard.Guard, barrier Barrier, p *Persist) (out [][]Edge, states stateTable, pstats parbfs.Stats, resumed int, err error) {
	pc := packedFor(alg, cm)
	if p != nil && pc == nil && (p.Resume != nil || p.Sink != nil || p.Grow != nil || p.GrowShard != nil) {
		return nil, nil, pstats, 0, errNotPackable(alg, cm)
	}
	err = guard.Capture(func() error {
		var ierr error
		if workers <= 1 {
			if pc != nil {
				out, states, resumed, ierr = scanSeqPacked(pc, alg, cm, g, barrier, p)
			} else {
				out, states, ierr = scanSeq(alg, cm, g, barrier)
			}
			return ierr
		}
		if pc != nil {
			out, states, pstats, resumed, ierr = scanParPacked(pc, alg, cm, workers, g, barrier, p)
		} else {
			out, states, pstats, ierr = scanPar(alg, cm, workers, g, barrier)
		}
		return ierr
	})
	if err != nil {
		out, states = nil, nil
	}
	return out, states, pstats, resumed, err
}

// scanSeq is the sequential scan-order BFS: a scan of the lazy Space to
// its fixpoint, recording the resolved edges per state. The numbering
// is first-sight scan order, exactly as the pre-Space builder
// hand-rolled it. The guard is exact (checked per state, before the
// barrier at the same boundary).
func scanSeq(alg tm.Algorithm, cm tm.ContentionManager, g *guard.Guard, barrier Barrier) ([][]Edge, stateTable, error) {
	sp := newSpace(alg, cm, false)
	var out [][]Edge
	// The yield closure is hoisted out of the scan loop (capturing qi) so
	// the hot path allocates none per state.
	var qi space.State
	yield := func(e Edge) { out[qi] = append(out[qi], e) }
	guarded := g.Active()
	// With the telemetry bus on, every level boundary additionally
	// publishes an EvLevelDone; disabled, the boundary bookkeeping is
	// only kept when a barrier hook needs it, exactly as before.
	emit := newLevelEmitter(systemLabel(alg, cm))
	levelEnd := 1
	for qi = 0; int(qi) < sp.NumStates(); qi++ {
		if guarded {
			if err := g.Check(sp.NumStates()); err != nil {
				return nil, nil, err
			}
		}
		if (barrier != nil || emit != nil) && int(qi) == levelEnd {
			if emit != nil {
				emit(sp.NumStates(), levelEnd)
			}
			if barrier != nil {
				if err := barrier(out, sp.NumStates(), levelEnd); err != nil {
					return nil, nil, err
				}
			}
			levelEnd = sp.NumStates()
		}
		out = append(out, nil)
		sp.SuccEdges(qi, yield)
	}
	if emit != nil {
		emit(sp.NumStates(), sp.NumStates())
	}
	if barrier != nil {
		if err := barrier(out, sp.NumStates(), sp.NumStates()); err != nil {
			return nil, nil, err
		}
	}
	return out, boxedStates(sp.in.Snapshot()), nil
}

// systemLabel names the system without constructing a TS.
func systemLabel(alg tm.Algorithm, cm tm.ContentionManager) string {
	if cm == nil {
		return alg.Name()
	}
	return alg.Name() + "+" + cm.Name()
}

// newLevelEmitter returns the per-barrier telemetry publisher for one
// scan — nil when the bus is disabled, so callers pay a single branch.
// The returned function is called with (interned, expanded) at each
// level boundary and publishes an EvLevelDone carrying the cumulative
// states, the unexpanded frontier, the sampled heap, and the time since
// the previous boundary.
func newLevelEmitter(name string) func(interned, expanded int) {
	if !obs.EventsEnabled() {
		return nil
	}
	last := time.Now()
	level := int32(0)
	return func(interned, expanded int) {
		now := time.Now()
		obs.Emit(obs.Event{
			Kind:      obs.EvLevelDone,
			Name:      name,
			Level:     level,
			States:    int64(interned),
			Frontier:  int64(interned - expanded),
			HeapBytes: obs.SampledHeap(),
			DurNS:     now.Sub(last).Nanoseconds(),
		})
		last = now
		level++
	}
}

// scanPar is the frontier-parallel exploration: each BFS level is
// expanded by a worker pool interning into parbfs's sharded table, and
// state numbering is canonicalized at every level barrier so the result
// matches scanSeq bit for bit. The guard and barrier hook both run at
// the level barriers (guard first), where the canonical numbering of
// all completed levels is already assigned.
func scanPar(alg tm.Algorithm, cm tm.ContentionManager, workers int, g *guard.Guard, barrier Barrier) ([][]Edge, stateTable, parbfs.Stats, error) {
	// The Space supplies only the successor enumeration here — parbfs
	// owns the interning, so the Space's own table stays at the initial
	// state.
	sp := newSpace(alg, cm, false)
	var out [][]Edge
	var states []prodState
	var control func(n int) error
	emit := newLevelEmitter(systemLabel(alg, cm))
	if g.Active() || barrier != nil || emit != nil {
		// prevInterned is the interned count at the previous barrier —
		// exactly the states already expanded when this one fires.
		prevInterned := 1
		control = func(n int) error {
			if err := g.Check(n); err != nil {
				return err
			}
			if emit != nil {
				emit(n, prevInterned)
			}
			if barrier != nil {
				if err := barrier(out, n, prevInterned); err != nil {
					return err
				}
			}
			prevInterned = n
			return nil
		}
	}
	// pendEdges[id] buffers state id's edge templates (To unresolved)
	// between the expand and finish passes of its level.
	var pendEdges [][]Edge
	pstats, err := parbfs.RunControlled(sp.in.At(0), workers, control,
		func(id int, emit func(prodState)) {
			q := states[id]
			var buf []Edge
			sp.expand(q, func(next prodState, e Edge) {
				buf = append(buf, e)
				emit(next)
			})
			pendEdges[id] = buf
		},
		func(id int, s prodState) {
			states = append(states, s)
			out = append(out, nil)
			pendEdges = append(pendEdges, nil)
		},
		func(id int, succ []int32) {
			edges := pendEdges[id]
			for j := range edges {
				edges[j].To = succ[j]
			}
			out[id] = edges
			pendEdges[id] = nil
		},
	)
	if err != nil {
		return nil, nil, pstats, err
	}
	return out, boxedStates(states), pstats, nil
}

// record batches the exploration statistics into the obs registry, so
// the hot loops above carry no per-edge instrumentation cost. All
// counter and gauge values except the intern-shard load are derived
// from the final graph, so they are identical for every worker count.
func (ts *TS) record(start time.Time, workers int, pstats parbfs.Stats) {
	if !obs.Enabled() {
		return
	}
	eps, aborts := 0, 0
	for _, es := range ts.Out {
		for _, e := range es {
			if e.Emit < 0 {
				eps++
			}
			if e.X.Kind == tm.XAbort {
				aborts++
			}
		}
	}
	// Reconstruct the sequential engine's queue-backlog peak from the
	// canonical numbering: when state qi is dequeued, the states known
	// so far are exactly those with ids below the largest successor id
	// seen while processing 0..qi-1.
	maxFrontier, known := 1, 1
	for qi := range ts.Out {
		if f := known - qi; f > maxFrontier {
			maxFrontier = f
		}
		for _, e := range ts.Out[qi] {
			if int(e.To) >= known {
				known = int(e.To) + 1
			}
		}
	}
	key := "explore." + ts.Name()
	obs.Inc(key+".builds", 1)
	obs.Inc(key+".states", int64(ts.NumStates()))
	obs.Inc(key+".edges", int64(ts.NumEdges()))
	obs.Inc(key+".eps_steps", int64(eps))
	obs.Inc(key+".abort_edges", int64(aborts))
	obs.Inc(key+".intern.dup_hits", int64(ts.NumEdges()-(ts.NumStates()-1)))
	obs.MaxGauge(key+".frontier_max", int64(maxFrontier))
	obs.SetGauge(key+".workers", int64(workers))
	recordFrontierHist(key, ts.LevelSizes())
	if pstats.Shards > 0 {
		obs.SetGauge(key+".intern.shards", int64(pstats.Shards))
		obs.MaxGauge(key+".intern.max_shard_load", int64(pstats.MaxShardLoad))
	}
	obs.AddTime(key+".build", time.Since(start))
}

// LevelSizes returns the BFS level populations of the final graph
// (identical to the per-level frontiers of the parallel engine, and
// engine independent since both numberings are canonical). Because the
// numbering is first-sight scan order, level L occupies the contiguous
// id range [cum(L-1), cum(L)); the materialized liveness checks use
// these prefix boundaries to replay the on-the-fly probe schedule.
func (ts *TS) LevelSizes() []int {
	dist := make([]int32, len(ts.Out))
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	sizes := []int{1}
	queue := []int32{0}
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		for _, e := range ts.Out[s] {
			if dist[e.To] < 0 {
				dist[e.To] = dist[s] + 1
				for int(dist[e.To]) >= len(sizes) {
					sizes = append(sizes, 0)
				}
				sizes[dist[e.To]]++
				queue = append(queue, e.To)
			}
		}
	}
	return sizes
}

// frontierBounds are the level-population histogram buckets recorded
// under "<key>.frontier.le_<bound>" (plus a final gt_4096 bucket).
var frontierBounds = []int{1, 4, 16, 64, 256, 1024, 4096}

// recordFrontierHist records the per-level frontier histogram: how many
// BFS levels had ≤ bound newly discovered states.
func recordFrontierHist(key string, sizes []int) {
	obs.Inc(key+".frontier.levels", int64(len(sizes)))
	peak := 0
	for _, n := range sizes {
		if n > peak {
			peak = n
		}
		bucket := key + ".frontier.gt_4096"
		for _, b := range frontierBounds {
			if n <= b {
				bucket = fmt.Sprintf("%s.frontier.le_%d", key, b)
				break
			}
		}
		obs.Inc(bucket, 1)
	}
	obs.MaxGauge(key+".frontier_peak", int64(peak))
}

// addEdge appends one resolved edge; the sequential restricted explorer
// (restricted.go) still interns inline and uses this directly.
func (ts *TS) addEdge(from int, e Edge) {
	ts.Out[from] = append(ts.Out[from], e)
}

// NFA views the transition system as an automaton over the instance
// alphabet: emitting edges become letter transitions, internal ⊥-steps
// become ε-transitions. Its language is L(A), the language of the TM
// algorithm (§3.2). The view is built once and cached — TS is immutable
// after Build — so repeated safety checks against different properties
// share it.
func (ts *TS) NFA() *automata.NFA {
	ts.nfaOnce.Do(func() { ts.nfa = ts.buildNFA() })
	return ts.nfa
}

func (ts *TS) buildNFA() *automata.NFA {
	a := automata.NewNFA(ts.Alphabet.Size())
	for i := 1; i < ts.NumStates(); i++ {
		a.AddState()
	}
	for s, es := range ts.Out {
		for _, e := range es {
			if e.Emit >= 0 {
				a.AddEdge(s, int(e.Emit), int(e.To))
			} else {
				a.AddEps(s, int(e.To))
			}
		}
	}
	return a
}

// DenseNFA views the transition system as a CSR automaton — the same
// language and per-state successor order as NFA(), flattened into the
// arrays the deterministic inclusion walk iterates. Built once and
// cached, like the boxed view, and built directly from the edge lists
// (not via NFA()), so the safety pipeline never materializes the boxed
// per-state-per-letter slices.
func (ts *TS) DenseNFA() *automata.DenseNFA {
	ts.denseOnce.Do(func() { ts.dense = ts.buildDenseNFA() })
	return ts.dense
}

func (ts *TS) buildDenseNFA() *automata.DenseNFA {
	b := automata.NewDenseBuilder(ts.Alphabet.Size())
	for s := range ts.Out {
		b.StartState()
		for _, e := range ts.Out[s] {
			if e.Emit >= 0 {
				b.Edge(int(e.Emit), int(e.To))
			} else {
				b.Eps(int(e.To))
			}
		}
	}
	return b.Finish(0)
}

// InLanguage reports whether the word is in L(A), by NFA simulation.
func (ts *TS) InLanguage(w core.Word) bool {
	return ts.NFA().Accepts(ts.Alphabet.EncodeWord(w))
}

// Run replays a scheduler (a sequence of thread choices) from the initial
// state, resolving nondeterminism by taking the first enabled transition of
// the scheduled thread whose extended command is not an abort, falling
// back to an abort when nothing else is enabled. It returns the sequence
// of executed edges, mirroring the runs of the paper's Table 1. The replay
// stops early if the scheduled thread has no transition at all.
func (ts *TS) Run(schedule []core.Thread) []Edge {
	var out []Edge
	cur := int32(0)
	for _, t := range schedule {
		var chosen *Edge
		for i := range ts.Out[cur] {
			e := &ts.Out[cur][i]
			if e.T != t {
				continue
			}
			if e.X.Kind != tm.XAbort {
				chosen = e
				break
			}
			if chosen == nil {
				chosen = e
			}
		}
		if chosen == nil {
			return out
		}
		out = append(out, *chosen)
		cur = chosen.To
	}
	return out
}

// WordOf extracts the emitted word of a sequence of edges.
func (ts *TS) WordOf(run []Edge) core.Word {
	var w core.Word
	for _, e := range run {
		if e.Emit >= 0 {
			w = append(w, ts.Alphabet.Decode(int(e.Emit)))
		}
	}
	return w
}

// FormatRun renders a run in the paper's Table 1 notation, e.g.
// "(rl,1)1, (r,1)1, (wl,2)1, ...".
func FormatRun(run []Edge) string {
	s := ""
	for i, e := range run {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s%d", e.X, e.T+1)
	}
	return s
}
