package explore

import (
	"tmcheck/internal/core"
	"tmcheck/internal/tm"
)

// Program assigns each thread a list of commands to issue in order. A
// command that completes (response 1) or aborts is consumed; an aborted
// command is not retried — the thread's next command begins a fresh
// transaction, matching the runs of the paper's Table 1.
type Program map[core.Thread][]core.Command

// RunProgram replays a schedule (a sequence of thread choices) against the
// transition system, each thread issuing its program's commands in order.
// At each step the scheduled thread executes one extended command of its
// current program command, resolving nondeterminism in favour of the first
// non-abort edge and falling back to an abort edge. The replay stops early
// when the scheduled thread has no matching transition or its program is
// exhausted.
func (ts *TS) RunProgram(schedule []core.Thread, prog Program) []Edge {
	var out []Edge
	cur := int32(0)
	next := map[core.Thread]int{}
	pendingOf := map[core.Thread]bool{}
	for _, t := range schedule {
		idx := next[t]
		if idx >= len(prog[t]) {
			return out
		}
		cmd := prog[t][idx]
		var chosen *Edge
		for i := range ts.Out[cur] {
			e := &ts.Out[cur][i]
			if e.T != t || e.Cmd != cmd {
				continue
			}
			if e.X.Kind != tm.XAbort {
				chosen = e
				break
			}
			if chosen == nil {
				chosen = e
			}
		}
		if chosen == nil {
			return out
		}
		out = append(out, *chosen)
		cur = chosen.To
		switch {
		case chosen.X.Kind == tm.XAbort, chosen.R == tm.Resp1:
			next[t] = idx + 1
			pendingOf[t] = false
		default:
			pendingOf[t] = true
		}
	}
	return out
}
