package explore

import (
	"fmt"
	"io"

	"tmcheck/internal/tm"
)

// WriteDOT renders the transition system in Graphviz DOT format:
// emitting edges are solid and labeled with the emitted statement,
// internal ⊥-steps are dashed and labeled with the extended command,
// aborts are red. For systems beyond a few hundred states the output is
// better piped through sfdp than dot.
func (ts *TS) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n", ts.Name()); err != nil {
		return err
	}
	fmt.Fprintf(w, "  rankdir=LR;\n  node [shape=circle, fontsize=10];\n")
	fmt.Fprintf(w, "  q0 [shape=doublecircle];\n")
	for s := range ts.Out {
		for _, e := range ts.Out[s] {
			attr := ""
			label := fmt.Sprintf("%s%d", e.X, e.T+1)
			switch {
			case e.X.Kind == tm.XAbort:
				attr = ", color=red, fontcolor=red"
			case e.R == tm.RespPending:
				attr = ", style=dashed"
			}
			fmt.Fprintf(w, "  q%d -> q%d [label=%q%s];\n", s, e.To, label, attr)
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
