package explore

import (
	"math/rand"
	"testing"

	"tmcheck/internal/core"
	"tmcheck/internal/tm"
)

func TestRestrictedWithAnyProgramMatchesBuild(t *testing.T) {
	for _, alg := range []func() tm.Algorithm{
		func() tm.Algorithm { return tm.NewSeq(2, 2) },
		func() tm.Algorithm { return tm.NewTwoPL(2, 2) },
		func() tm.Algorithm { return tm.NewDSTM(2, 1) },
	} {
		general := Build(alg(), nil)
		restricted := BuildRestricted(alg(), nil, nil)
		if general.NumStates() != restricted.NumStates() ||
			general.NumEdges() != restricted.NumEdges() {
			t.Errorf("%s: general %d/%d vs restricted-any %d/%d states/edges",
				general.Alg.Name(), general.NumStates(), general.NumEdges(),
				restricted.NumStates(), restricted.NumEdges())
		}
	}
}

func TestRestrictedLanguageIsIncluded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	general := Build(tm.NewDSTM(2, 2), nil).NFA()
	restricted := BuildRestricted(tm.NewDSTM(2, 2), nil,
		[]ThreadProgram{ReadOnlyProgram{}, nil})
	ab := restricted.Alphabet
	for i := 0; i < 200; i++ {
		var w core.Word
		cur := int32(0)
		for steps := 0; steps < 30 && len(w) < 8; steps++ {
			es := restricted.Out[cur]
			if len(es) == 0 {
				break
			}
			e := es[rng.Intn(len(es))]
			if e.Emit >= 0 {
				w = append(w, ab.Decode(int(e.Emit)))
			}
			cur = e.To
		}
		if !general.Accepts(ab.EncodeWord(w)) {
			t.Fatalf("restricted word %q not in general language", w)
		}
		// Thread 1 is read-only: it must never emit a write.
		for _, s := range w {
			if s.T == 0 && s.Cmd.Op == core.OpWrite {
				t.Fatalf("read-only thread wrote: %q", w)
			}
		}
	}
}

func TestFixedProgramRunsToCompletion(t *testing.T) {
	prog := &FixedProgram{Commands: []core.Command{
		core.Read(0), core.Write(1), core.Commit(),
	}}
	ts := BuildRestricted(tm.NewTwoPL(2, 2), nil,
		[]ThreadProgram{prog, &FixedProgram{}})
	// Thread 1 executes its three commands; thread 2 does nothing. The
	// longest emitted word is exactly the program.
	nfa := ts.NFA()
	want := core.MustParseWord("(r,1)1, (w,2)1, c1")
	if !nfa.Accepts(ts.Alphabet.EncodeWord(want)) {
		t.Errorf("fixed program's word %q not accepted", want)
	}
	tooMuch := append(want.Clone(), core.St(core.Read(0), 0))
	if nfa.Accepts(ts.Alphabet.EncodeWord(tooMuch)) {
		t.Errorf("program should stop after its commands")
	}
}

func TestFixedProgramRetriesAfterAbort(t *testing.T) {
	// Under the sequential TM, thread 2's single-write program aborts
	// while thread 1 is mid-transaction, then retries and succeeds.
	prog2 := &FixedProgram{Commands: []core.Command{core.Write(0), core.Commit()}}
	ts := BuildRestricted(tm.NewSeq(2, 1), nil, []ThreadProgram{nil, prog2})
	w := core.MustParseWord("(r,1)1, a2, c1, (w,1)2, c2")
	if !ts.NFA().Accepts(ts.Alphabet.EncodeWord(w)) {
		t.Errorf("retry word %q not accepted", w)
	}
}

// The headline use: DSTM is not obstruction free in general, but for
// read-only workloads nothing ever aborts, so every liveness property
// holds. (Checked here structurally: the restricted system has no abort
// edges at all.)
func TestDSTMReadOnlyWorkloadNeverAborts(t *testing.T) {
	ts := BuildRestricted(tm.NewDSTM(2, 2), nil,
		[]ThreadProgram{ReadOnlyProgram{}, ReadOnlyProgram{}})
	for s := range ts.Out {
		for _, e := range ts.Out[s] {
			if e.X.Kind == tm.XAbort {
				t.Fatalf("read-only DSTM workload has an abort edge at state %d", s)
			}
		}
	}
}
