package explore

import (
	"fmt"
	"time"

	"tmcheck/internal/core"
	"tmcheck/internal/guard"
	"tmcheck/internal/pack"
	"tmcheck/internal/tm"
)

// The checkpoint/resume vocabulary of the packed engines. The
// persistence layer itself (internal/snap) lives above explore; this
// file defines only what the scans need to see: a canonical prefix to
// seed from, a sink to stream level deltas into, and optional
// spill-backed allocators for the flat key storage. Because the
// per-level numbering is bit-identical across engines and worker
// counts, the interned prefix at any level barrier is canonical — a
// snapshot taken there resumes to the same states, edges, and verdicts
// no matter which engine continues it.

// ResumeState is a canonical exploration prefix captured at a level
// barrier: all interned keys in id order (flat, stride = key words),
// the resolved adjacency of the expanded states, and the two barrier
// coordinates. Interned == Expanded means the scan had completed.
// The slices are owned by the snapshot layer and must not be mutated.
type ResumeState struct {
	Keys               []uint64
	Out                [][]Edge
	Interned, Expanded int
}

// LevelSink receives the delta of one level barrier: the keys of the
// states interned since the previous barrier (flat, id order) and the
// full adjacency slice, of which [prevExpanded, expanded) is new. The
// edge slices obey the Barrier stability contract (they never move),
// so a sink may retain them. AppendLevel is called with barriers in
// order; an error stops the scan and is returned verbatim.
type LevelSink interface {
	AppendLevel(newKeys []uint64, out [][]Edge, prevInterned, interned, prevExpanded, expanded int) error
}

// Persist bundles the checkpoint/resume/spill hooks of one build. Any
// field may be nil: Resume seeds the scan from a canonical prefix,
// Sink streams level deltas out, Grow rebacks the flat key storage
// (sequential intern table, parallel key slice), and GrowShard rebacks
// the parallel engine's per-shard visited tables.
type Persist struct {
	Resume    *ResumeState
	Sink      LevelSink
	Grow      pack.GrowFunc
	GrowShard func(shard int) pack.GrowFunc
}

// PersistProvider resolves the persistence hooks for one system of a
// run — the indirection that lets safety/liveness drivers thread
// checkpointing through without importing the snapshot layer.
type PersistProvider func(alg tm.Algorithm, cm tm.ContentionManager) (*Persist, error)

// PackedInfo reports the packed-key geometry of the product — key
// width in words and in bits — or ok == false when the system cannot
// run on the packed engines (and therefore cannot checkpoint or
// spill).
func PackedInfo(alg tm.Algorithm, cm tm.ContentionManager) (kw, keyBits int, ok bool) {
	pc := packedFor(alg, cm)
	if pc == nil {
		return 0, 0, false
	}
	return pc.keyWords(), pc.keyBits(), true
}

// errNotPackable is the loud refusal for checkpoint/spill on a system
// outside the packed engines (user-registered TM/CM or an oversized
// product key): silently exploring without persistence would discard
// exactly the work the caller asked to keep.
func errNotPackable(alg tm.Algorithm, cm tm.ContentionManager) error {
	return fmt.Errorf("explore: %s is not bit-packable; -checkpoint/-resume/-spill require a packed system", systemLabel(alg, cm))
}

// BuildProviderGuarded is BuildGuarded with an optional persistence
// provider: nil runs a plain guarded build, non-nil resolves the hooks
// for this system and runs a checkpointing build.
func BuildProviderGuarded(alg tm.Algorithm, cm tm.ContentionManager, workers int, g *guard.Guard, prov PersistProvider) (*TS, error) {
	if prov == nil {
		return BuildGuarded(alg, cm, workers, g)
	}
	p, err := prov(alg, cm)
	if err != nil {
		return nil, err
	}
	return BuildPersistGuarded(alg, cm, workers, g, p)
}

// BuildPersistGuarded is BuildGuarded under persistence hooks: the
// scan seeds from p.Resume, streams level deltas into p.Sink, and
// allocates its flat key storage through the spill growers. The
// resulting system — numbering, adjacency, verdicts — is bit-identical
// to an uninterrupted unpersisted build; TS.Resumed reports how many
// states came from the snapshot.
func BuildPersistGuarded(alg tm.Algorithm, cm tm.ContentionManager, workers int, g *guard.Guard, p *Persist) (*TS, error) {
	start := time.Now()
	ts := &TS{Alg: alg, CM: cm, Alphabet: core.Alphabet{Threads: alg.Threads(), Vars: alg.Vars()}}
	out, states, pstats, resumed, err := scanPersistControlled(alg, cm, workers, g, nil, p)
	if err != nil {
		return nil, err
	}
	ts.Out, ts.states, ts.Resumed = out, states, resumed
	ts.record(start, workers, pstats)
	return ts, nil
}

// sinkFlusher tracks the barrier coordinates already persisted and
// appends each new delta exactly once; no-progress barriers are
// skipped so an idempotent sink never sees empty records.
type sinkFlusher struct {
	sink         LevelSink
	prevI, prevE int
	keyBuf       []uint64
}

func newSinkFlusher(p *Persist) *sinkFlusher {
	if p == nil || p.Sink == nil {
		return nil
	}
	f := &sinkFlusher{sink: p.Sink}
	if p.Resume != nil {
		f.prevI, f.prevE = p.Resume.Interned, p.Resume.Expanded
	}
	return f
}

// flush persists the delta up to (interned, expanded); keyAt yields
// the key of one interned state (the flusher copies it immediately).
func (f *sinkFlusher) flush(keyAt func(i int32) []uint64, out [][]Edge, interned, expanded int) error {
	if f == nil || (interned == f.prevI && expanded == f.prevE) {
		return nil
	}
	f.keyBuf = f.keyBuf[:0]
	for i := f.prevI; i < interned; i++ {
		f.keyBuf = append(f.keyBuf, keyAt(int32(i))...)
	}
	if err := f.sink.AppendLevel(f.keyBuf, out, f.prevI, interned, f.prevE, expanded); err != nil {
		return err
	}
	f.prevI, f.prevE = interned, expanded
	return nil
}
