package explore

import (
	"fmt"

	"tmcheck/internal/chaos"
	"tmcheck/internal/core"
	"tmcheck/internal/guard"
	"tmcheck/internal/pack"
	"tmcheck/internal/parbfs"
	"tmcheck/internal/tm"
)

// The packed exploration core: when the TM algorithm implements
// tm.Packed[S] for its own name and the contention manager packs
// (tm.PackCM), the whole product state — TM state, per-thread pending
// commands, manager state — is encoded into a fixed-width key of a few
// uint64 words, interned into open-addressing pack.Map tables, and
// expanded through the typed yield-style steppers. No interface values,
// no map of structs, no per-step []Step slices: the hot loop's only
// amortized allocations are the growth of the dense tables and the
// edge arena.
//
// The enumeration order mirrors forEachEnabled/forEachStep exactly
// (same command order, same contention-manager product rule, same
// abort rule on the pre-filter step count), so the canonical numbering,
// every edge list, and every downstream verdict are bit-identical to
// the generic boxed path — TestPackedFallbackEquivalence pins this.

// pendBits is the fixed per-thread width of the pending-command field:
// 1 active bit, 2 op bits, 4 variable bits (k ≤ 16). An inactive entry
// is all zeros, matching the zero pending value the generic path keeps.
const pendBits = 7

// packedIface is the non-generic view of packedCore[S] the scan loops
// drive; one value is single-goroutine, clone() makes per-worker copies.
type packedIface interface {
	keyWords() int
	// keyBits is the exact bit width of the product key — part of the
	// snapshot section identity, so a resume with a different encoding
	// fails loudly.
	keyBits() int
	// writeInit writes the initial product key into key (len keyWords).
	writeInit(key []uint64)
	// expandKey enumerates the outgoing edge templates of the state with
	// the given key, calling yield with each successor's key (a scratch
	// buffer overwritten by the next yield — consumers intern or copy
	// immediately) and the edge with To unset.
	expandKey(key []uint64, yield func(next []uint64, e Edge))
	// clone returns a core sharing the immutable configuration with
	// fresh expansion scratch, for one parallel worker.
	clone() packedIface
	// stateAt decodes a key into the boxed product state (cold path:
	// state-table reads by tests, witnesses, and the restricted builder).
	stateAt(key []uint64) prodState
}

// packedFor returns the packed core for the product, or nil when either
// factor cannot pack: an algorithm outside the typed registry, a
// wrapper whose PackedFor does not match its Name (method promotion
// guard), a user-registered contention manager, or a product key wider
// than pack.MaxWords. Callers fall back to the generic boxed path.
func packedFor(alg tm.Algorithm, cm tm.ContentionManager) packedIface {
	pcm, ok := tm.PackCM(cm)
	if !ok {
		return nil
	}
	switch a := alg.(type) {
	case tm.Packed[tm.TL2State]:
		return newPackedCore(a, pcm)
	case tm.Packed[tm.TwoPLState]:
		return newPackedCore(a, pcm)
	case tm.Packed[tm.DSTMState]:
		return newPackedCore(a, pcm)
	case tm.Packed[tm.NOrecState]:
		return newPackedCore(a, pcm)
	case tm.Packed[tm.ETLState]:
		return newPackedCore(a, pcm)
	case tm.Packed[tm.SeqState]:
		return newPackedCore(a, pcm)
	default:
		return nil
	}
}

// packedCore is the typed implementation. The expansion scratch fields
// make the hot path closure-allocation free: stepYield is built once
// per core and reads the current (command, thread, conflict) from the
// receiver instead of capturing per-call locals.
type packedCore[S comparable] struct {
	alg      tm.Packed[S]
	pcm      tm.PackedCM // nil: no manager factor in the product
	ab       core.Alphabet
	commands []core.Command
	n        int
	kw       int
	bits     int
	cmBits   int

	// Expansion scratch (one goroutine per core; clone() for workers).
	q         S
	pend      [tm.MaxThreads]pending
	cmw       uint64
	c         core.Command
	t         core.Thread
	conflict  bool
	nextKey   [pack.MaxWords]uint64
	wtr       pack.Writer
	rdr       pack.Reader
	yield     func(next []uint64, e Edge)
	stepYield func(x tm.XCmd, r tm.Resp, next S)
}

func newPackedCore[S comparable](alg tm.Packed[S], pcm tm.PackedCM) packedIface {
	if alg.PackedFor() != alg.Name() {
		return nil
	}
	n := alg.Threads()
	cmBits := 0
	if pcm != nil {
		cmBits = pcm.CMBits()
	}
	bits := alg.StateBits() + n*pendBits + cmBits
	if bits > 64*pack.MaxWords {
		return nil
	}
	pc := &packedCore[S]{
		alg: alg, pcm: pcm,
		ab:       core.Alphabet{Threads: n, Vars: alg.Vars()},
		n:        n,
		kw:       pack.WordsFor(bits),
		bits:     bits,
		cmBits:   cmBits,
		commands: core.Alphabet{Threads: n, Vars: alg.Vars()}.Commands(),
	}
	pc.initStepYield()
	return pc
}

func (pc *packedCore[S]) initStepYield() {
	pc.stepYield = func(x tm.XCmd, r tm.Resp, next S) {
		cmNext, ok := pc.cmStep(x)
		if !ok {
			return
		}
		np := pc.pend
		emit := int16(-1)
		if r == tm.RespPending {
			np[pc.t] = pending{Active: true, C: pc.c}
		} else {
			np[pc.t] = pending{}
			if r == tm.Resp1 {
				emit = int16(pc.ab.Encode(core.St(pc.c, pc.t)))
			}
		}
		pc.encode(next, &np, cmNext)
		pc.yield(pc.nextKey[:pc.kw], Edge{Cmd: pc.c, T: pc.t, X: x, R: r, Emit: emit})
	}
}

func (pc *packedCore[S]) keyWords() int { return pc.kw }

func (pc *packedCore[S]) keyBits() int { return pc.bits }

func (pc *packedCore[S]) clone() packedIface {
	c := &packedCore[S]{
		alg: pc.alg, pcm: pc.pcm, ab: pc.ab, commands: pc.commands,
		n: pc.n, kw: pc.kw, bits: pc.bits, cmBits: pc.cmBits,
	}
	c.initStepYield()
	return c
}

// cmStep resolves the contention-manager product for extended command x
// from the current scratch state: exactly forEachStep's cmStep on
// packed manager words.
func (pc *packedCore[S]) cmStep(x tm.XCmd) (uint64, bool) {
	if pc.pcm == nil {
		return pc.cmw, true
	}
	p2, has := pc.pcm.StepCM(pc.cmw, x, pc.t)
	if pc.conflict && !has {
		return 0, false
	}
	if has {
		return p2, true
	}
	return pc.cmw, true
}

// encode packs (q, pend, cmw) into pc.nextKey. Layout: TM state bits,
// then n fixed-width pending fields, then the manager word.
func (pc *packedCore[S]) encode(q S, pend *[tm.MaxThreads]pending, cmw uint64) {
	for i := 0; i < pc.kw; i++ {
		pc.nextKey[i] = 0
	}
	pc.wtr.Reset(pc.nextKey[:pc.kw])
	pc.alg.EncodeState(q, &pc.wtr)
	for t := 0; t < pc.n; t++ {
		p := &pend[t]
		if p.Active {
			pc.wtr.Put(1|uint64(p.C.Op)<<1|uint64(p.C.V)<<3, pendBits)
		} else {
			pc.wtr.Put(0, pendBits)
		}
	}
	if pc.cmBits > 0 {
		pc.wtr.Put(cmw, uint(pc.cmBits))
	}
}

// decodeKey unpacks key into the expansion scratch.
func (pc *packedCore[S]) decodeKey(key []uint64) {
	pc.rdr.Reset(key)
	pc.q = pc.alg.DecodeState(&pc.rdr)
	for t := 0; t < pc.n; t++ {
		b := pc.rdr.Get(pendBits)
		if b&1 != 0 {
			pc.pend[t] = pending{Active: true, C: core.Command{Op: core.Op((b >> 1) & 3), V: core.Var(b >> 3)}}
		} else {
			pc.pend[t] = pending{}
		}
	}
	pc.cmw = 0
	if pc.cmBits > 0 {
		pc.cmw = pc.rdr.Get(uint(pc.cmBits))
	}
}

func (pc *packedCore[S]) writeInit(key []uint64) {
	pc.pend = [tm.MaxThreads]pending{}
	var cmw uint64
	if pc.pcm != nil {
		cmw = pc.pcm.InitialCM()
	}
	pc.encode(pc.alg.InitialP(), &pc.pend, cmw)
	copy(key, pc.nextKey[:pc.kw])
}

func (pc *packedCore[S]) expandKey(key []uint64, yield func(next []uint64, e Edge)) {
	pc.yield = yield
	pc.decodeKey(key)
	for t := core.Thread(0); int(t) < pc.n; t++ {
		if pc.pend[t].Active {
			pc.stepKey(pc.pend[t].C, t)
			continue
		}
		for _, c := range pc.commands {
			pc.stepKey(c, t)
		}
	}
}

// stepKey mirrors forEachStep for one (command, thread) pair: typed
// steps through the manager product, then the abort transition when the
// command is abort enabled (zero pre-filter steps) or in conflict.
func (pc *packedCore[S]) stepKey(c core.Command, t core.Thread) {
	pc.c, pc.t = c, t
	pc.conflict = pc.alg.ConflictP(pc.q, c, t)
	count := pc.alg.StepsP(pc.q, c, t, pc.stepYield)
	if count == 0 || pc.conflict {
		if cmNext, ok := pc.cmStep(tm.XCmd{Kind: tm.XAbort}); ok {
			np := pc.pend
			np[t] = pending{}
			emit := int16(pc.ab.Encode(core.St(core.Abort(), t)))
			pc.encode(pc.alg.AbortStepP(pc.q, t), &np, cmNext)
			pc.yield(pc.nextKey[:pc.kw], Edge{
				Cmd: c, T: t,
				X: tm.XCmd{Kind: tm.XAbort}, R: tm.Resp0, Emit: emit,
			})
		}
	}
}

// stateAt decodes a key into the boxed product state. It uses its own
// cursors so state-table reads never race the expansion scratch.
func (pc *packedCore[S]) stateAt(key []uint64) prodState {
	var rdr pack.Reader
	rdr.Reset(key)
	ps := prodState{TM: pc.alg.DecodeState(&rdr)}
	for t := 0; t < pc.n; t++ {
		b := rdr.Get(pendBits)
		if b&1 != 0 {
			ps.Pending[t] = pending{Active: true, C: core.Command{Op: core.Op((b >> 1) & 3), V: core.Var(b >> 3)}}
		}
	}
	if pc.pcm != nil {
		var cmw uint64
		if pc.cmBits > 0 {
			cmw = rdr.Get(uint(pc.cmBits))
		}
		ps.CM = pc.pcm.DecodeCM(cmw)
	}
	return ps
}

// edgeArena allocates Edge storage in chunks: place copies a scratch
// edge list into the current chunk (opening a fresh chunk when it
// would not fit) and returns a stable full-capacity slice, so
// per-state adjacency costs no per-state allocation and never moves —
// the Barrier contract's stability requirement. Chunks grow
// geometrically from chunkSize up to maxChunk, so tiny systems (a
// 3-state seq build, the liveness probes at (2,1)) don't pay a
// 100-KB-class fixed cost while large builds still amortize to a
// handful of chunks.
type edgeArena struct {
	chunkSize int
	cur       []Edge
}

// maxChunk caps the arena chunk growth (edges per chunk).
const maxChunk = 8192

func (a *edgeArena) place(es []Edge) []Edge {
	if len(es) == 0 {
		return nil
	}
	if len(a.cur)+len(es) > cap(a.cur) {
		size := a.chunkSize
		if size < len(es) {
			size = len(es)
		}
		if next := a.chunkSize * 2; next <= maxChunk {
			a.chunkSize = next
		}
		a.cur = make([]Edge, 0, size)
	}
	start := len(a.cur)
	a.cur = append(a.cur, es...)
	return a.cur[start:len(a.cur):len(a.cur)]
}

// packedStates is the packed state table: keys stay bit-packed (either
// still inside the sequential scan's intern table or in the parallel
// scan's flat word slice) and decode to boxed product states on demand.
type packedStates struct {
	pc    packedIface
	kw    int
	in    *pack.Map // sequential path
	words []uint64  // parallel path
}

func (p *packedStates) Len() int {
	if p.in != nil {
		return p.in.Len()
	}
	return len(p.words) / p.kw
}

func (p *packedStates) At(i int32) prodState {
	if p.in != nil {
		return p.pc.stateAt(p.in.KeyAt(i))
	}
	off := int(i) * p.kw
	return p.pc.stateAt(p.words[off : off+p.kw])
}

// scanSeqPacked is scanSeq over packed keys: one open-addressing intern
// table, a reused per-state edge scratch, and the chunked edge arena.
// Barrier and guard semantics match scanSeq exactly. Under persistence
// hooks the scan seeds from the snapshot prefix (re-interning the keys
// in id order, so the numbering continues canonically), streams each
// level delta into the sink before consulting the guard at the same
// boundary (a tripped limit keeps the prefix it just persisted), and
// rebacks the intern table's key storage through the spill grower.
func scanSeqPacked(pc packedIface, alg tm.Algorithm, cm tm.ContentionManager, g *guard.Guard, barrier Barrier, p *Persist) ([][]Edge, stateTable, int, error) {
	kw := pc.keyWords()
	in := pack.NewMap(kw, 0)
	if p != nil && p.Grow != nil {
		in.SetKeyBacking(p.Grow)
	}
	var keyBuf [pack.MaxWords]uint64
	pc.writeInit(keyBuf[:kw])

	var out [][]Edge
	arena := &edgeArena{chunkSize: 64}
	resumed := 0
	startQi := int32(0)
	levelEnd := 1
	if p != nil && p.Resume != nil && p.Resume.Interned > 0 {
		r := p.Resume
		for i := 0; i < r.Interned; i++ {
			in.Intern(r.Keys[i*kw : (i+1)*kw])
		}
		if id, ok := in.Get(keyBuf[:kw]); !ok || id != 0 || in.Len() != r.Interned {
			return nil, nil, 0, fmt.Errorf("explore: snapshot prefix for %s does not match this system's initial state", systemLabel(alg, cm))
		}
		out = append(out, r.Out...)
		startQi = int32(r.Expanded)
		levelEnd = r.Interned
		resumed = r.Interned
	} else {
		in.Intern(keyBuf[:kw])
	}

	flush := newSinkFlusher(p)
	var scratch []Edge
	yield := func(next []uint64, e Edge) {
		id, _ := in.Intern(next)
		e.To = id
		scratch = append(scratch, e)
	}
	guarded := g.Active()
	emit := newLevelEmitter(systemLabel(alg, cm))
	track := barrier != nil || emit != nil || flush != nil
	var cur [pack.MaxWords]uint64
	for qi := startQi; int(qi) < in.Len(); qi++ {
		atBoundary := track && int(qi) == levelEnd
		if atBoundary {
			if err := flush.flush(in.KeyAt, out, in.Len(), levelEnd); err != nil {
				return nil, nil, resumed, err
			}
		}
		if guarded {
			if err := g.Check(in.Len()); err != nil {
				return nil, nil, resumed, err
			}
		}
		if atBoundary {
			if emit != nil {
				emit(in.Len(), levelEnd)
			}
			if barrier != nil {
				if err := barrier(out, in.Len(), levelEnd); err != nil {
					return nil, nil, resumed, err
				}
			}
			levelEnd = in.Len()
		}
		if chaos.Fire(chaos.SiteWorkerPanic) {
			// Isolated by guard.Capture on the scan spine into a
			// LIMIT(panic); the sink flushed the prefix at the last
			// barrier, so the injected crash loses at most one level.
			panic(fmt.Errorf("%w: worker panic expanding state %d", chaos.ErrInjected, qi))
		}
		// KeyAt aliases the table; interning successors may grow it, so
		// expand from a copy.
		copy(cur[:kw], in.KeyAt(qi))
		scratch = scratch[:0]
		pc.expandKey(cur[:kw], yield)
		out = append(out, arena.place(scratch))
	}
	if err := flush.flush(in.KeyAt, out, in.Len(), in.Len()); err != nil {
		return nil, nil, resumed, err
	}
	if emit != nil {
		emit(in.Len(), in.Len())
	}
	if barrier != nil {
		if err := barrier(out, in.Len(), in.Len()); err != nil {
			return nil, nil, resumed, err
		}
	}
	return out, &packedStates{pc: pc, kw: kw, in: in}, resumed, nil
}

// parCtx is one parallel worker's expansion context; its yield closure
// is built once (capturing only the context), mirroring scanPar's
// buffered two-pass edge resolution without per-state closures.
type parCtx struct {
	buf     []Edge
	emitKey func([]uint64)
	yield   func([]uint64, Edge)
}

func newParCtx() *parCtx {
	ctx := &parCtx{}
	ctx.yield = func(next []uint64, e Edge) {
		ctx.buf = append(ctx.buf, e)
		ctx.emitKey(next)
	}
	return ctx
}

// scanParPacked is scanPar over packed keys: parbfs owns the sharded
// open-addressing interning, per-worker cores expand decoded keys, and
// per-worker arenas hold the edge storage. Under persistence hooks it
// seeds the engine's visited tables and frontier from the snapshot
// prefix (the canonical numbering makes the seeded ids identical to
// what an uninterrupted run would have assigned), streams level deltas
// into the sink at each barrier before the guard, and rebacks both the
// flat key slice and the per-shard tables through the spill growers.
func scanParPacked(pc packedIface, alg tm.Algorithm, cm tm.ContentionManager, workers int, g *guard.Guard, barrier Barrier, p *Persist) ([][]Edge, stateTable, parbfs.Stats, int, error) {
	kw := pc.keyWords()
	var words []uint64
	var out [][]Edge
	var pendEdges [][]Edge
	var grow pack.GrowFunc
	var opts parbfs.PackedOpts
	resumed := 0
	if p != nil {
		grow = p.Grow
		opts.KeyBacking = p.GrowShard
	}
	var initKey [pack.MaxWords]uint64
	pc.writeInit(initKey[:kw])
	keyAt := func(i int32) []uint64 {
		off := int(i) * kw
		return words[off : off+kw]
	}

	expandedAtBarrier := 1
	if p != nil && p.Resume != nil && p.Resume.Interned > 0 {
		r := p.Resume
		for j := 0; j < kw; j++ {
			if r.Keys[j] != initKey[j] {
				return nil, nil, parbfs.Stats{}, 0, fmt.Errorf("explore: snapshot prefix for %s does not match this system's initial state", systemLabel(alg, cm))
			}
		}
		if grow != nil {
			words = grow(len(r.Keys), words)
		}
		words = append(words, r.Keys...)
		out = append(out, r.Out...)
		for len(out) < r.Interned {
			out = append(out, nil)
		}
		pendEdges = make([][]Edge, r.Interned)
		opts.Seed = &parbfs.PackedSeed{Keys: r.Keys, Frontier: r.Expanded}
		resumed = r.Interned
		expandedAtBarrier = r.Interned
	}

	flush := newSinkFlusher(p)
	var control func(n int) error
	emit := newLevelEmitter(systemLabel(alg, cm))
	if g.Active() || barrier != nil || emit != nil || flush != nil {
		// prevInterned is the interned count at the previous barrier —
		// exactly the states already expanded when this one fires.
		prevInterned := expandedAtBarrier
		control = func(n int) error {
			if err := flush.flush(keyAt, out, n, prevInterned); err != nil {
				return err
			}
			if err := g.Check(n); err != nil {
				return err
			}
			if emit != nil {
				emit(n, prevInterned)
			}
			if barrier != nil {
				if err := barrier(out, n, prevInterned); err != nil {
					return err
				}
			}
			prevInterned = n
			return nil
		}
	}

	cores := make([]packedIface, workers)
	arenas := make([]*edgeArena, workers)
	ctxs := make([]*parCtx, workers)
	for w := 0; w < workers; w++ {
		cores[w] = pc.clone()
		arenas[w] = &edgeArena{chunkSize: 64}
		ctxs[w] = newParCtx()
	}

	pstats, err := parbfs.RunPackedOpts(kw, initKey[:kw], workers, opts, control,
		func(w, id int, emitKey func(key []uint64)) {
			if chaos.Fire(chaos.SiteWorkerPanic) {
				// The parbfs pool recovers worker panics into a
				// LIMIT(panic) at the level barrier, exactly like a
				// crashing registry TM.
				panic(fmt.Errorf("%w: worker %d panic expanding state %d", chaos.ErrInjected, w, id))
			}
			ctx := ctxs[w]
			ctx.buf = ctx.buf[:0]
			ctx.emitKey = emitKey
			cores[w].expandKey(words[id*kw:(id+1)*kw], ctx.yield)
			pendEdges[id] = arenas[w].place(ctx.buf)
		},
		func(id int, key []uint64) {
			if grow != nil {
				if need := len(words) + kw; need > cap(words) {
					words = grow(need, words)
				}
			}
			words = append(words, key...)
			out = append(out, nil)
			pendEdges = append(pendEdges, nil)
		},
		func(w, id int, succ []int32) {
			edges := pendEdges[id]
			for j := range edges {
				edges[j].To = succ[j]
			}
			out[id] = edges
			pendEdges[id] = nil
		},
	)
	if err != nil {
		return nil, nil, pstats, resumed, err
	}
	// A fully expanded snapshot never enters the engine loop; its final
	// (total, total) barrier state is already persisted, so there is
	// nothing left to flush.
	if flush != nil {
		n := len(words) / kw
		if err := flush.flush(keyAt, out, n, n); err != nil {
			return nil, nil, pstats, resumed, err
		}
	}
	return out, &packedStates{pc: pc, kw: kw, words: words}, pstats, resumed, nil
}
