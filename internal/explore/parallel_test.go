// Engine-equivalence cross-check: the parallel explorer must reproduce
// the sequential one bit for bit — state numbering, edge lists, and
// every downstream safety verdict and counterexample — on every TM in
// the registry. It lives in an external test package so it can drive
// the safety checker without an import cycle.
package explore_test

import (
	"fmt"
	"reflect"
	"testing"

	"tmcheck/internal/explore"
	"tmcheck/internal/safety"
	"tmcheck/internal/spec"
	"tmcheck/internal/tm"
)

// eqDims are the instance sizes the reduction theorems of §4 rely on.
var eqDims = []struct{ n, k int }{{2, 1}, {2, 2}}

// eqSystems returns every registry TM without a manager at (n, k), plus
// the paper's modified-TL2-with-polite-manager product system.
func eqSystems(t *testing.T, n, k int) []safety.System {
	var systems []safety.System
	for _, name := range tm.AlgorithmNames() {
		alg, err := tm.NewAlgorithm(name, n, k)
		if err != nil {
			t.Fatalf("NewAlgorithm(%q): %v", name, err)
		}
		systems = append(systems, safety.System{Alg: alg})
	}
	modtl2, err := tm.NewAlgorithm("modtl2", n, k)
	if err != nil {
		t.Fatalf("NewAlgorithm(modtl2): %v", err)
	}
	systems = append(systems, safety.System{Alg: modtl2, CM: tm.Polite{}})
	return systems
}

func TestEngineEquivalence(t *testing.T) {
	for _, d := range eqDims {
		for _, sys := range eqSystems(t, d.n, d.k) {
			name := sys.Alg.Name()
			if sys.CM != nil {
				name += "+" + sys.CM.Name()
			}
			t.Run(fmt.Sprintf("%s-n%dk%d", name, d.n, d.k), func(t *testing.T) {
				seq := explore.BuildWorkers(sys.Alg, sys.CM, 1)
				par := explore.BuildWorkers(sys.Alg, sys.CM, 4)

				if par.NumStates() != seq.NumStates() {
					t.Fatalf("parallel engine: %d states, sequential %d",
						par.NumStates(), seq.NumStates())
				}
				for i := int32(0); int(i) < seq.NumStates(); i++ {
					if !reflect.DeepEqual(par.StateAt(i), seq.StateAt(i)) {
						t.Fatalf("parallel engine: state %d diverges", i)
					}
				}
				if !reflect.DeepEqual(par.Out, seq.Out) {
					t.Fatal("parallel engine: edge lists diverge")
				}

				for _, prop := range []spec.Property{spec.StrictSerializability, spec.Opacity} {
					rs := safety.Check(seq, prop)
					rp := safety.Check(par, prop)
					if rs.Holds != rp.Holds {
						t.Fatalf("%s: verdicts diverge: sequential %v, parallel %v",
							prop.Key(), rs.Holds, rp.Holds)
					}
					if !reflect.DeepEqual(rs.Counterexample, rp.Counterexample) {
						t.Fatalf("%s: counterexamples diverge:\n  sequential: %v\n  parallel:   %v",
							prop.Key(), rs.Counterexample, rp.Counterexample)
					}
				}
			})
		}
	}
}
