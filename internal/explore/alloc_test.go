//go:build !race

package explore

import (
	"testing"

	"tmcheck/internal/tm"
)

// TestBuildAllocsPerState pins the zero-allocation core: building the
// tl2 (2,2) system must amortize to (well under) one heap allocation
// per interned state. Before the packed core this build allocated ~12
// per state (boxed states, map interner, per-level frontier churn); the
// packed path interns bit-packed keys into a flat open-addressing table
// and reuses pooled buffers, so the whole build is a few hundred
// allocations for ~20k states. The 0.1 bound keeps an order of
// magnitude of headroom while still tripping on any return to boxing.
//
// Race builds skip this file: the detector instruments allocations and
// the count is not meaningful there.
func TestBuildAllocsPerState(t *testing.T) {
	alg := tm.NewTL2(2, 2)
	warm := BuildWorkers(alg, nil, 1) // warm the frontier and key pools
	n := warm.NumStates()
	if n < 1000 {
		t.Fatalf("tl2 (2,2) has %d states; expected thousands", n)
	}
	allocs := testing.AllocsPerRun(3, func() {
		ts := BuildWorkers(alg, nil, 1)
		if ts.NumStates() != n {
			t.Fatalf("state count drifted: %d vs %d", ts.NumStates(), n)
		}
	})
	if perState := allocs / float64(n); perState > 0.1 {
		t.Errorf("build allocated %.0f times for %d states (%.4f/state), want ≤ 0.1/state",
			allocs, n, perState)
	}
}
