package explore

import (
	"fmt"
	"reflect"
	"testing"

	"tmcheck/internal/tm"
)

// buildFallbackSystems enumerates the products the fallback test pins:
// every registered TM without a manager, plus modtl2 with every
// registered manager (the CM factor has its own packed form to bypass).
func buildFallbackSystems(t *testing.T) []struct {
	alg func() tm.Algorithm
	cm  tm.ContentionManager
} {
	t.Helper()
	var systems []struct {
		alg func() tm.Algorithm
		cm  tm.ContentionManager
	}
	for _, name := range tm.AlgorithmNames() {
		name := name
		systems = append(systems, struct {
			alg func() tm.Algorithm
			cm  tm.ContentionManager
		}{alg: func() tm.Algorithm {
			alg, err := tm.NewAlgorithm(name, 2, 2)
			if err != nil {
				t.Fatal(err)
			}
			return alg
		}})
	}
	for _, mname := range tm.ManagerNames() {
		cm, err := tm.NewContentionManager(mname)
		if err != nil {
			t.Fatal(err)
		}
		systems = append(systems, struct {
			alg func() tm.Algorithm
			cm  tm.ContentionManager
		}{alg: func() tm.Algorithm { return tm.NewTL2Mod(2, 2) }, cm: cm})
	}
	return systems
}

// TestOpaqueFallbackMatchesPacked pins the opt-in contract of the
// packed core: a registry TM (or manager) without an encoder — modeled
// by tm.Opaque/tm.OpaqueCM, which strip the typed extension — must take
// the generic boxed path and produce the identical table: same states
// in the same canonical order, same edges edge for edge, at one worker
// and at four.
func TestOpaqueFallbackMatchesPacked(t *testing.T) {
	for _, sys := range buildFallbackSystems(t) {
		alg := sys.alg()
		name := alg.Name()
		if sys.cm != nil {
			name += "+" + sys.cm.Name()
		}
		t.Run(name, func(t *testing.T) {
			// The non-opaque product must actually take the packed path and
			// the opaque one must not, or the comparison is vacuous.
			if packedFor(alg, sys.cm) == nil {
				t.Fatalf("%s: packed core not selected for the typed product", name)
			}
			if packedFor(tm.Opaque(alg), sys.cm) != nil {
				t.Fatal("Opaque algorithm still matched the packed dispatch")
			}
			if sys.cm != nil && packedFor(alg, tm.OpaqueCM(sys.cm)) != nil {
				t.Fatal("OpaqueCM manager still matched the packed dispatch")
			}
			for _, workers := range []int{1, 4} {
				packed := BuildWorkers(sys.alg(), sys.cm, workers)
				generic := BuildWorkers(tm.Opaque(sys.alg()), tm.OpaqueCM(sys.cm), workers)
				compareTables(t, fmt.Sprintf("workers=%d", workers), packed, generic)
			}
		})
	}
}

// compareTables asserts two transition systems are bit-identical:
// canonical numbering, edges, and decoded product states.
func compareTables(t *testing.T, label string, a, b *TS) {
	t.Helper()
	if a.NumStates() != b.NumStates() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("%s: %d states/%d edges vs %d/%d",
			label, a.NumStates(), a.NumEdges(), b.NumStates(), b.NumEdges())
	}
	if !reflect.DeepEqual(a.Out, b.Out) {
		for s := range a.Out {
			if !reflect.DeepEqual(a.Out[s], b.Out[s]) {
				t.Fatalf("%s: state %d edges differ:\n packed  %v\n generic %v",
					label, s, a.Out[s], b.Out[s])
			}
		}
		t.Fatalf("%s: edge tables differ", label)
	}
	for s := 0; s < a.NumStates(); s++ {
		if sa, sb := a.StateAt(int32(s)), b.StateAt(int32(s)); sa != sb {
			t.Fatalf("%s: state %d decodes differently:\n packed  %+v\n generic %+v",
				label, s, sa, sb)
		}
	}
}
