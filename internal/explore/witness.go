package explore

import (
	"tmcheck/internal/core"
)

// WitnessRun finds a run of the transition system that emits exactly the
// given word: the sequence of edges — including the internal
// extended-command steps — realizing it. It returns ok = false when the
// word is not in the TM's language. The search is a BFS over (state, word
// position) pairs, so the run found has the fewest internal steps.
func (ts *TS) WitnessRun(w core.Word) ([]Edge, bool) {
	letters := ts.Alphabet.EncodeWord(w)
	type node struct {
		state int32
		pos   int
	}
	type pred struct {
		prev node
		ref  edgeIdx
		ok   bool
	}
	preds := map[node]pred{{state: 0, pos: 0}: {}}
	queue := []node{{state: 0, pos: 0}}
	var goal *node
	for len(queue) > 0 && goal == nil {
		cur := queue[0]
		queue = queue[1:]
		if cur.pos == len(letters) {
			g := cur
			goal = &g
			break
		}
		for i, e := range ts.Out[cur.state] {
			var next node
			switch {
			case e.Emit < 0:
				next = node{state: e.To, pos: cur.pos}
			case int(e.Emit) == letters[cur.pos]:
				next = node{state: e.To, pos: cur.pos + 1}
			default:
				continue
			}
			if _, seen := preds[next]; seen {
				continue
			}
			preds[next] = pred{prev: cur, ref: edgeIdx{from: cur.state, idx: i}, ok: true}
			queue = append(queue, next)
		}
	}
	if goal == nil {
		// The empty word is always realizable at the initial state.
		if len(letters) == 0 {
			return nil, true
		}
		return nil, false
	}
	var rev []Edge
	cur := *goal
	for {
		p := preds[cur]
		if !p.ok {
			break
		}
		rev = append(rev, ts.Out[p.ref.from][p.ref.idx])
		cur = p.prev
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

type edgeIdx struct {
	from int32
	idx  int
}
