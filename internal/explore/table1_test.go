package explore

import (
	"testing"

	"tmcheck/internal/core"
)

func TestTable1Runs(t *testing.T) {
	for _, tc := range Table1Scenarios {
		ts := Build(tc.Alg(), nil)
		run := ts.RunProgram(tc.Schedule, tc.Programs)
		if got := FormatRun(run); got != tc.WantRun {
			t.Errorf("%s: run = %q, want %q", tc.Name, got, tc.WantRun)
		}
		if got := ts.WordOf(run).String(); got != tc.WantWord {
			t.Errorf("%s: word = %q, want %q", tc.Name, got, tc.WantWord)
		}
	}
}

// Every Table 1 word must be in the corresponding TM's language under the
// NFA view as well.
func TestTable1WordsInLanguage(t *testing.T) {
	for _, tc := range Table1Scenarios {
		ts := Build(tc.Alg(), nil)
		w := core.MustParseWord(tc.WantWord)
		if !ts.InLanguage(w) {
			t.Errorf("%s: word %q not in language", tc.Name, w)
		}
	}
}
