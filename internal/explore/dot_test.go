package explore

import (
	"strings"
	"testing"

	"tmcheck/internal/tm"
)

func TestWriteDOT(t *testing.T) {
	ts := Build(tm.NewSeq(2, 1), nil)
	var b strings.Builder
	if err := ts.WriteDOT(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`digraph "seq"`,
		"q0 [shape=doublecircle]",
		"q0 -> q1",
		"color=red", // abort edges exist in seq's system
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Edge count: one line per edge plus the header/footer lines.
	lines := strings.Count(out, "->")
	if lines != ts.NumEdges() {
		t.Errorf("DOT has %d edges, TS has %d", lines, ts.NumEdges())
	}
}

func TestWriteDOTInternalEdgesDashed(t *testing.T) {
	ts := Build(tm.NewTwoPL(2, 1), nil)
	var b strings.Builder
	if err := ts.WriteDOT(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "style=dashed") {
		t.Error("2PL's lock acquisitions should render dashed")
	}
}
