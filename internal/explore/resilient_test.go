package explore

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"tmcheck/internal/core"
	"tmcheck/internal/guard"
	"tmcheck/internal/tm"
)

// cancelTrace scans dstm at (2,2) with the given worker count,
// recording each barrier's (expanded, interned) pair, and cancels
// the context from inside barrier number cancelAt (0 = never).
func cancelTrace(t *testing.T, workers, cancelAt int) ([][2]int, error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var trace [][2]int
	err := ScanLevelsGuarded(tm.NewDSTM(2, 2), nil, workers, guard.New(ctx, 0, 0),
		func(out [][]Edge, interned, expanded int) error {
			trace = append(trace, [2]int{expanded, interned})
			if len(trace) == cancelAt {
				cancel()
			}
			return nil
		})
	return trace, err
}

// TestCancellationDeterminism is the determinism contract of guarded
// stops: cancelling at a fixed barrier yields the identical barrier
// trace — the same (expanded, interned) prefix of the uncancelled scan
// — at every worker count, with the typed cancellation error. A limited
// run is a prefix of the full run, never a different run.
func TestCancellationDeterminism(t *testing.T) {
	full, err := cancelTrace(t, 1, 0)
	if err != nil {
		t.Fatalf("uncancelled scan failed: %v", err)
	}
	const cancelAt = 4
	if len(full) <= cancelAt {
		t.Fatalf("scan has only %d barriers, need > %d", len(full), cancelAt)
	}
	for _, workers := range []int{1, 2, 4} {
		trace, err := cancelTrace(t, workers, cancelAt)
		if !errors.Is(err, guard.ErrCancelled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want cancellation", workers, err)
		}
		var le *guard.LimitError
		if !errors.As(err, &le) || le.Kind != guard.KindCancelled {
			t.Fatalf("workers=%d: err = %v, want *guard.LimitError{KindCancelled}", workers, err)
		}
		if len(trace) != cancelAt {
			t.Errorf("workers=%d: %d barriers ran after cancelling at %d", workers, len(trace), cancelAt)
			continue
		}
		for i, pair := range trace {
			if pair != full[i] {
				t.Errorf("workers=%d: barrier %d = %v, full run has %v", workers, i, pair, full[i])
			}
		}
	}
}

// panicAfter wraps a TM algorithm and panics on the Nth Steps call,
// modelling a buggy TM implementation crashing mid-exploration.
type panicAfter struct {
	tm.Algorithm
	calls *atomic.Int64
	after int64
}

func (p panicAfter) Steps(q tm.State, c core.Command, t core.Thread) []tm.Step {
	if p.calls.Add(1) > p.after {
		panic(fmt.Sprintf("injected TM fault after %d steps", p.after))
	}
	return p.Algorithm.Steps(q, c, t)
}

// TestBuildGuardedIsolatesPanics crashes the TM mid-exploration at
// several worker counts: the build must return a typed
// *guard.LimitError carrying the panic value and a stack trace instead
// of crashing the process (workers > 1 exercises the parbfs worker
// recovery; workers = 1 the sequential Capture path).
func TestBuildGuardedIsolatesPanics(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		var calls atomic.Int64
		alg := panicAfter{Algorithm: tm.NewDSTM(2, 2), calls: &calls, after: 100}
		ts, err := BuildGuarded(alg, nil, workers, nil)
		if ts != nil {
			t.Errorf("workers=%d: got a transition system from a crashed build", workers)
		}
		if !errors.Is(err, guard.ErrPanic) {
			t.Fatalf("workers=%d: err = %v, want panic limit", workers, err)
		}
		var le *guard.LimitError
		if !errors.As(err, &le) {
			t.Fatalf("workers=%d: err = %v, want *guard.LimitError", workers, err)
		}
		if le.Kind != guard.KindPanic || le.Value == nil || len(le.Stack) == 0 {
			t.Errorf("workers=%d: limit = kind %v value %v stack %d bytes, want isolated panic with stack",
				workers, le.Kind, le.Value, len(le.Stack))
		}
	}
}
