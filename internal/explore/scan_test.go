package explore

import (
	"errors"
	"testing"

	"tmcheck/internal/space"
	"tmcheck/internal/tm"
)

// barrierTrace records the (expanded, interned) pairs and the resolved
// prefix adjacency a ScanLevels run presents at its barriers.
type barrierTrace struct {
	expanded, interned []int
	edges              [][]int32 // successor ids of each expanded state, in order
}

func traceScan(t *testing.T, alg tm.Algorithm, cm tm.ContentionManager, workers int) barrierTrace {
	t.Helper()
	var tr barrierTrace
	err := ScanLevels(alg, cm, workers, 0, func(out [][]Edge, interned, expanded int) error {
		tr.expanded = append(tr.expanded, expanded)
		tr.interned = append(tr.interned, interned)
		if len(tr.edges) == 0 { // capture the final adjacency once at the fixpoint
			if expanded == interned {
				for s := 0; s < expanded; s++ {
					var succ []int32
					for _, e := range out[s] {
						succ = append(succ, e.To)
					}
					tr.edges = append(tr.edges, succ)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ScanLevels(workers=%d): %v", workers, err)
	}
	return tr
}

// TestScanLevelsBarrierSequence checks the cross-engine contract the
// on-the-fly liveness engine builds on: the sequential and parallel
// scans fire the identical (expanded, interned) barrier sequence and
// resolve the identical adjacency, for any worker count.
func TestScanLevelsBarrierSequence(t *testing.T) {
	cases := []struct {
		alg tm.Algorithm
		cm  tm.ContentionManager
	}{
		{tm.NewDSTM(2, 1), tm.Aggressive{}},
		{tm.NewTL2(2, 1), tm.Polite{}},
		{tm.NewSeq(2, 1), nil},
	}
	for _, c := range cases {
		ref := traceScan(t, c.alg, c.cm, 1)
		ts := Build(c.alg, c.cm)
		if last := ref.expanded[len(ref.expanded)-1]; last != ts.NumStates() {
			t.Errorf("%s: final barrier expanded %d, want %d states", ts.Name(), last, ts.NumStates())
		}
		for _, workers := range []int{2, 4} {
			got := traceScan(t, c.alg, c.cm, workers)
			if len(got.expanded) != len(ref.expanded) {
				t.Fatalf("%s workers=%d: %d barriers, sequential fired %d",
					ts.Name(), workers, len(got.expanded), len(ref.expanded))
			}
			for i := range ref.expanded {
				if got.expanded[i] != ref.expanded[i] || got.interned[i] != ref.interned[i] {
					t.Errorf("%s workers=%d barrier %d: (%d, %d), sequential (%d, %d)",
						ts.Name(), workers, i, got.expanded[i], got.interned[i],
						ref.expanded[i], ref.interned[i])
				}
			}
			if len(got.edges) != len(ref.edges) {
				t.Fatalf("%s workers=%d: fixpoint adjacency has %d states, sequential %d",
					ts.Name(), workers, len(got.edges), len(ref.edges))
			}
			for s := range ref.edges {
				if len(got.edges[s]) != len(ref.edges[s]) {
					t.Fatalf("%s workers=%d state %d: edge counts differ", ts.Name(), workers, s)
				}
				for j := range ref.edges[s] {
					if got.edges[s][j] != ref.edges[s][j] {
						t.Errorf("%s workers=%d state %d edge %d: to %d, sequential %d",
							ts.Name(), workers, s, j, got.edges[s][j], ref.edges[s][j])
					}
				}
			}
		}
	}
}

// TestScanLevelsBarrierError checks that a barrier's error stops the
// scan and surfaces verbatim, from both engines.
func TestScanLevelsBarrierError(t *testing.T) {
	sentinel := errors.New("stop here")
	for _, workers := range []int{1, 4} {
		calls := 0
		err := ScanLevels(tm.NewDSTM(2, 1), tm.Aggressive{}, workers, 0, func(out [][]Edge, interned, expanded int) error {
			calls++
			if calls == 2 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("workers=%d: err = %v, want sentinel", workers, err)
		}
		if calls != 2 {
			t.Errorf("workers=%d: %d barrier calls after stop, want 2", workers, calls)
		}
	}
}

// TestScanLevelsBudgetBeforeBarrier checks the ordering contract: a
// blown budget is reported even when a barrier hook would also have
// stopped the scan at the same boundary.
func TestScanLevelsBudgetBeforeBarrier(t *testing.T) {
	sentinel := errors.New("barrier ran")
	for _, workers := range []int{1, 4} {
		err := ScanLevels(tm.NewDSTM(2, 1), tm.Aggressive{}, workers, 2, func(out [][]Edge, interned, expanded int) error {
			if interned > 2 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, space.ErrBudgetExceeded) {
			t.Errorf("workers=%d: err = %v, want budget error before the barrier", workers, err)
		}
	}
}
