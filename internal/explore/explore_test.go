package explore

import (
	"math/rand"
	"testing"

	"tmcheck/internal/core"
	"tmcheck/internal/tm"
)

func TestBuildDeterministicAndNamed(t *testing.T) {
	a := Build(tm.NewDSTM(2, 2), nil)
	b := Build(tm.NewDSTM(2, 2), nil)
	if a.NumStates() != b.NumStates() || a.NumEdges() != b.NumEdges() {
		t.Errorf("nondeterministic build: %d/%d vs %d/%d states/edges",
			a.NumStates(), a.NumEdges(), b.NumStates(), b.NumEdges())
	}
	if a.Name() != "dstm" {
		t.Errorf("Name = %q", a.Name())
	}
	c := Build(tm.NewDSTM(2, 2), tm.Polite{})
	if c.Name() != "dstm+polite" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestSeqTransitionSystemExact(t *testing.T) {
	ts := Build(tm.NewSeq(2, 2), nil)
	// The paper's Table 2: the sequential TM's most general program for
	// (2,2) has exactly 3 states.
	if ts.NumStates() != 3 {
		t.Errorf("seq states = %d, want 3", ts.NumStates())
	}
	// From the initial state, each thread can issue 2 reads, 2 writes and
	// a commit; nothing is abort enabled (commit of an idle thread is an
	// empty transaction).
	var aborts int
	for _, e := range ts.Out[0] {
		if e.X.Kind == tm.XAbort {
			aborts++
		}
	}
	if aborts != 0 {
		t.Errorf("initial state has %d abort edges, want 0", aborts)
	}
}

func TestPendingIsExclusive(t *testing.T) {
	// While a command is pending for a thread, the explorer must only
	// offer continuations of that command for that thread.
	ts := Build(tm.NewTwoPL(2, 2), nil)
	for s := range ts.Out {
		// Find the pending command per thread by looking at the state.
		st := ts.StateAt(int32(s))
		for _, e := range ts.Out[s] {
			p := st.Pending[e.T]
			if p.Active && e.Cmd != p.C {
				t.Fatalf("state %d: edge %v executes %v while %v is pending",
					s, e, e.Cmd, p.C)
			}
		}
	}
}

func TestEmittedLettersMatchResponses(t *testing.T) {
	ts := Build(tm.NewTL2(2, 2), nil)
	for s := range ts.Out {
		for _, e := range ts.Out[s] {
			switch {
			case e.R == tm.Resp1 && e.Emit < 0:
				t.Fatalf("completing edge without letter: %+v", e)
			case e.R == tm.RespPending && e.Emit >= 0:
				t.Fatalf("internal edge with letter: %+v", e)
			case e.X.Kind == tm.XAbort && (e.R != tm.Resp0 || e.Emit < 0):
				t.Fatalf("abort edge malformed: %+v", e)
			}
			if e.Emit >= 0 {
				dec := ts.Alphabet.Decode(int(e.Emit))
				if dec.T != e.T {
					t.Fatalf("letter thread mismatch: %+v", e)
				}
				if e.X.Kind == tm.XAbort && dec.Cmd.Op != core.OpAbort {
					t.Fatalf("abort letter mismatch: %+v", e)
				}
				if e.X.Kind != tm.XAbort && dec.Cmd != e.Cmd {
					t.Fatalf("letter command mismatch: %+v", e)
				}
			}
		}
	}
}

func TestRunPrefersNonAbort(t *testing.T) {
	ts := Build(tm.NewSeq(2, 1), nil)
	run := ts.Run([]core.Thread{0, 0})
	if len(run) != 2 {
		t.Fatalf("run length = %d", len(run))
	}
	for _, e := range run {
		if e.X.Kind == tm.XAbort {
			t.Errorf("run chose abort needlessly: %v", e)
		}
	}
	// Thread 2 scheduled under thread 1's transaction can only abort.
	run = ts.Run([]core.Thread{0, 1})
	if len(run) != 2 || run[1].X.Kind != tm.XAbort {
		t.Errorf("expected forced abort, got %v", FormatRun(run))
	}
}

func TestRunStopsWhenStuck(t *testing.T) {
	// A program that exhausts a thread's commands stops the replay early.
	ts := Build(tm.NewSeq(2, 1), nil)
	run := ts.RunProgram([]core.Thread{0, 0, 0}, Program{0: {core.Commit()}})
	if len(run) != 1 {
		t.Errorf("run = %v, want single commit", FormatRun(run))
	}
}

func TestInLanguageOnRandomWalks(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, alg := range []tm.Algorithm{tm.NewTwoPL(2, 2), tm.NewDSTM(2, 2)} {
		ts := Build(alg, nil)
		for i := 0; i < 100; i++ {
			var w core.Word
			cur := int32(0)
			for steps := 0; steps < 30 && len(w) < 8; steps++ {
				es := ts.Out[cur]
				if len(es) == 0 {
					break
				}
				e := es[rng.Intn(len(es))]
				if e.Emit >= 0 {
					w = append(w, ts.Alphabet.Decode(int(e.Emit)))
				}
				cur = e.To
			}
			if !ts.InLanguage(w) {
				t.Fatalf("%s: emitted word %q not accepted by own NFA", alg.Name(), w)
			}
		}
	}
}

func TestNFAStateCountMatchesTS(t *testing.T) {
	ts := Build(tm.NewTwoPL(2, 1), nil)
	nfa := ts.NFA()
	if nfa.NumStates() != ts.NumStates() {
		t.Errorf("NFA states = %d, TS states = %d", nfa.NumStates(), ts.NumStates())
	}
}

// Words of every TM are opacity-shaped: thread projections alternate
// accesses with at most one finishing statement per transaction, and no
// thread has two finishing statements in a row without intervening
// accesses... more precisely, the projection is well formed: aborts and
// commits only ever close a transaction.
func TestEmittedWordsAreWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ts := Build(tm.NewDSTM(2, 2), nil)
	for i := 0; i < 200; i++ {
		var w core.Word
		cur := int32(0)
		for steps := 0; steps < 40 && len(w) < 12; steps++ {
			es := ts.Out[cur]
			if len(es) == 0 {
				break
			}
			e := es[rng.Intn(len(es))]
			if e.Emit >= 0 {
				w = append(w, ts.Alphabet.Decode(int(e.Emit)))
			}
			cur = e.To
		}
		// Verify DSTM's emitted words are opaque — Theorem 4, sampled.
		if !core.IsOpaque(w) {
			t.Fatalf("DSTM emitted non-opaque word %q", w)
		}
	}
}
