package explore

import (
	"tmcheck/internal/core"
	"tmcheck/internal/tm"
)

// Table1Scenario is one row of the paper's Table 1: a TM, a scheduler
// output, the per-thread programs implied by the paper's run, the run of
// extended statements, and the emitted word.
type Table1Scenario struct {
	Name     string
	TM       string
	Alg      func() tm.Algorithm
	Schedule []core.Thread
	Programs Program
	WantRun  string
	WantWord string
}

// Table1Scenarios reproduces the paper's Table 1 verbatim. Threads and
// variables are 1-based in the strings, as in the paper.
var Table1Scenarios = []Table1Scenario{
	{
		Name:     "seq/11122",
		TM:       "seq",
		Alg:      func() tm.Algorithm { return tm.NewSeq(2, 2) },
		Schedule: []core.Thread{0, 0, 0, 1, 1},
		Programs: Program{
			0: {core.Read(0), core.Write(1), core.Commit()},
			1: {core.Write(0), core.Commit()},
		},
		WantRun:  "(r,1)1, (w,2)1, c1, (w,1)2, c2",
		WantWord: "(r,1)1, (w,2)1, c1, (w,1)2, c2",
	},
	{
		Name:     "seq/112122",
		TM:       "seq",
		Alg:      func() tm.Algorithm { return tm.NewSeq(2, 2) },
		Schedule: []core.Thread{0, 0, 1, 0, 1, 1},
		Programs: Program{
			0: {core.Read(0), core.Write(1), core.Commit()},
			1: {core.Write(0), core.Write(0), core.Commit()},
		},
		WantRun:  "(r,1)1, (w,2)1, a2, c1, (w,1)2, c2",
		WantWord: "(r,1)1, (w,2)1, a2, c1, (w,1)2, c2",
	},
	{
		Name:     "2pl/111112",
		TM:       "2pl",
		Alg:      func() tm.Algorithm { return tm.NewTwoPL(2, 2) },
		Schedule: []core.Thread{0, 0, 0, 0, 0, 1},
		Programs: Program{
			0: {core.Read(0), core.Write(1), core.Commit()},
			1: {core.Write(1)},
		},
		WantRun:  "(rl,1)1, (r,1)1, (wl,2)1, (w,2)1, c1, (wl,2)2",
		WantWord: "(r,1)1, (w,2)1, c1",
	},
	{
		Name:     "2pl/1211112",
		TM:       "2pl",
		Alg:      func() tm.Algorithm { return tm.NewTwoPL(2, 2) },
		Schedule: []core.Thread{0, 1, 0, 0, 0, 0, 1},
		Programs: Program{
			0: {core.Read(0), core.Write(1), core.Commit()},
			1: {core.Write(0), core.Write(1)},
		},
		WantRun:  "(rl,1)1, a2, (r,1)1, (wl,2)1, (w,2)1, c1, (wl,2)2",
		WantWord: "a2, (r,1)1, (w,2)1, c1",
	},
	{
		Name:     "dstm/12211112",
		TM:       "dstm",
		Alg:      func() tm.Algorithm { return tm.NewDSTM(2, 2) },
		Schedule: []core.Thread{0, 1, 1, 0, 0, 0, 0, 1},
		Programs: Program{
			0: {core.Read(0), core.Write(1), core.Commit()},
			1: {core.Write(0), core.Commit()},
		},
		WantRun:  "(r,1)1, (o,1)2, (w,1)2, (o,2)1, (w,2)1, v1, c1, a2",
		WantWord: "(r,1)1, (w,1)2, (w,2)1, c1, a2",
	},
	{
		Name:     "dstm/12222111",
		TM:       "dstm",
		Alg:      func() tm.Algorithm { return tm.NewDSTM(2, 2) },
		Schedule: []core.Thread{0, 1, 1, 1, 1, 0, 0, 0},
		Programs: Program{
			0: {core.Read(0), core.Write(1), core.Commit()},
			1: {core.Write(0), core.Commit()},
		},
		WantRun:  "(r,1)1, (o,1)2, (w,1)2, v2, c2, (o,2)1, (w,2)1, a1",
		WantWord: "(r,1)1, (w,1)2, c2, (w,2)1, a1",
	},
	{
		Name:     "tl2/112112212",
		TM:       "tl2",
		Alg:      func() tm.Algorithm { return tm.NewTL2(2, 2) },
		Schedule: []core.Thread{0, 0, 1, 0, 0, 1, 1, 0, 1},
		Programs: Program{
			0: {core.Read(0), core.Write(1), core.Commit()},
			1: {core.Write(0), core.Commit()},
		},
		WantRun:  "(r,1)1, (w,2)1, (w,1)2, (l,2)1, v1, (l,1)2, v2, c1, c2",
		WantWord: "(r,1)1, (w,2)1, (w,1)2, c1, c2",
	},
	{
		Name:     "tl2/11212122",
		TM:       "tl2",
		Alg:      func() tm.Algorithm { return tm.NewTL2(2, 2) },
		Schedule: []core.Thread{0, 0, 1, 0, 1, 0, 1, 1},
		Programs: Program{
			0: {core.Read(0), core.Write(1), core.Commit()},
			1: {core.Write(0), core.Commit()},
		},
		WantRun:  "(r,1)1, (w,2)1, (w,1)2, (l,2)1, (l,1)2, a1, v2, c2",
		WantWord: "(r,1)1, (w,2)1, (w,1)2, a1, c2",
	},
}
