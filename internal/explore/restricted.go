package explore

import (
	"tmcheck/internal/core"
	"tmcheck/internal/tm"
)

// ThreadProgram restricts the commands one thread may issue: a finite
// automaton over commands. The most general program is the one-state
// automaton allowing everything; restricted programs model real workload
// classes — read-only threads, fixed transaction shapes, bounded
// transaction counts.
type ThreadProgram interface {
	// Initial returns the program's start state. States must be
	// comparable values.
	Initial() tm.State
	// Next returns the successor state if the command is allowed in p,
	// or ok = false if the program never issues c here.
	Next(p tm.State, c core.Command) (next tm.State, ok bool)
	// OnAbort returns the program state after the TM aborts the thread's
	// transaction — typically rewinding to the transaction's start to
	// model a retry loop.
	OnAbort(p tm.State) tm.State
}

// AnyProgram allows every command — the most general program.
type AnyProgram struct{}

type anyState struct{}

// Initial implements ThreadProgram.
func (AnyProgram) Initial() tm.State { return anyState{} }

// Next implements ThreadProgram.
func (AnyProgram) Next(p tm.State, c core.Command) (tm.State, bool) { return p, true }

// OnAbort implements ThreadProgram.
func (AnyProgram) OnAbort(p tm.State) tm.State { return p }

// ReadOnlyProgram allows reads and commits only.
type ReadOnlyProgram struct{}

// Initial implements ThreadProgram.
func (ReadOnlyProgram) Initial() tm.State { return anyState{} }

// Next implements ThreadProgram.
func (ReadOnlyProgram) Next(p tm.State, c core.Command) (tm.State, bool) {
	return p, c.Op != core.OpWrite
}

// OnAbort implements ThreadProgram.
func (ReadOnlyProgram) OnAbort(p tm.State) tm.State { return p }

// seqProgState tracks progress through a fixed command list, plus the
// index the current transaction started at (for retry after abort).
type seqProgState struct {
	At      uint8
	TxStart uint8
}

// FixedProgram issues a fixed command sequence, transaction by
// transaction, then stops. Aborted transactions are retried from their
// first command.
type FixedProgram struct {
	Commands []core.Command
}

// Initial implements ThreadProgram.
func (f *FixedProgram) Initial() tm.State { return seqProgState{} }

// Next implements ThreadProgram.
func (f *FixedProgram) Next(p tm.State, c core.Command) (tm.State, bool) {
	st := p.(seqProgState)
	if int(st.At) >= len(f.Commands) || f.Commands[st.At] != c {
		return p, false
	}
	st.At++
	if c.Op == core.OpCommit {
		st.TxStart = st.At
	}
	return st, true
}

// OnAbort implements ThreadProgram: rewind to the transaction's start.
func (f *FixedProgram) OnAbort(p tm.State) tm.State {
	st := p.(seqProgState)
	st.At = st.TxStart
	return st
}

// rstate is a restricted-exploration state: the TM product state plus the
// per-thread program states.
type rstate struct {
	Prod prodState
	Prog [tm.MaxThreads]tm.State
}

// BuildRestricted unfolds the TM against per-thread programs instead of
// the most general program. progs[t] restricts thread t; a nil entry means
// AnyProgram. The resulting transition system supports exactly the same
// analyses (safety inclusion, liveness loops) as Build's, so one can ask
// whether a TM is, say, obstruction free for read-only workloads even
// though it is not in general.
func BuildRestricted(alg tm.Algorithm, cm tm.ContentionManager, progs []ThreadProgram) *TS {
	n := alg.Threads()
	ab := core.Alphabet{Threads: n, Vars: alg.Vars()}
	ts := &TS{Alg: alg, CM: cm, Alphabet: ab}

	filled := make([]ThreadProgram, n)
	for t := 0; t < n; t++ {
		if t < len(progs) && progs[t] != nil {
			filled[t] = progs[t]
		} else {
			filled[t] = AnyProgram{}
		}
	}

	var init rstate
	init.Prod = prodState{TM: alg.Initial()}
	if cm != nil {
		init.Prod.CM = cm.Initial()
	}
	for t := 0; t < n; t++ {
		init.Prog[t] = filled[t].Initial()
	}

	index := map[rstate]int32{init: 0}
	states := []rstate{init}
	prods := boxedStates{init.Prod}
	ts.Out = append(ts.Out, nil)
	intern := func(s rstate) int32 {
		if id, ok := index[s]; ok {
			return id
		}
		id := int32(len(states))
		index[s] = id
		states = append(states, s)
		prods = append(prods, s.Prod)
		ts.Out = append(ts.Out, nil)
		return id
	}

	commands := ab.Commands()
	for qi := 0; qi < len(states); qi++ {
		q := states[qi]
		for t := core.Thread(0); int(t) < n; t++ {
			var enabled []core.Command
			if q.Prod.Pending[t].Active {
				enabled = []core.Command{q.Prod.Pending[t].C}
			} else {
				for _, c := range commands {
					if _, ok := filled[t].Next(q.Prog[t], c); ok {
						enabled = append(enabled, c)
					}
				}
			}
			for _, c := range enabled {
				ts.expandRestricted(filled[t], qi, q, c, t, intern)
			}
		}
	}
	ts.states = prods
	return ts
}

// expandRestricted mirrors TS.expand with program-state tracking: the
// program advances when its command completes and rewinds on aborts.
func (ts *TS) expandRestricted(prog ThreadProgram, qi int, q rstate, c core.Command, t core.Thread, intern func(rstate) int32) {
	steps := ts.Alg.Steps(q.Prod.TM, c, t)
	conflict := ts.Alg.Conflict(q.Prod.TM, c, t)

	cmStep := func(x tm.XCmd) (tm.State, bool) {
		if ts.CM == nil {
			return q.Prod.CM, true
		}
		p2, has := ts.CM.Step(q.Prod.CM, x, t)
		if conflict && !has {
			return nil, false
		}
		if has {
			return p2, true
		}
		return q.Prod.CM, true
	}

	for _, step := range steps {
		cmNext, ok := cmStep(step.X)
		if !ok {
			continue
		}
		next := rstate{Prod: prodState{TM: step.Next, Pending: q.Prod.Pending, CM: cmNext}, Prog: q.Prog}
		emit := int16(-1)
		if step.R == tm.RespPending {
			next.Prod.Pending[t] = pending{Active: true, C: c}
		} else {
			next.Prod.Pending[t] = pending{}
			if step.R == tm.Resp1 {
				emit = int16(ts.Alphabet.Encode(core.St(c, t)))
				p2, ok := prog.Next(q.Prog[t], c)
				if !ok {
					continue // unreachable: c was enabled by the program
				}
				next.Prog[t] = p2
			}
		}
		ts.addEdge(qi, Edge{To: intern(next), Cmd: c, T: t, X: step.X, R: step.R, Emit: emit})
	}

	if len(steps) == 0 || conflict {
		if cmNext, ok := cmStep(tm.XCmd{Kind: tm.XAbort}); ok {
			next := rstate{
				Prod: prodState{TM: ts.Alg.AbortStep(q.Prod.TM, t), Pending: q.Prod.Pending, CM: cmNext},
				Prog: q.Prog,
			}
			next.Prod.Pending[t] = pending{}
			next.Prog[t] = prog.OnAbort(q.Prog[t])
			emit := int16(ts.Alphabet.Encode(core.St(core.Abort(), t)))
			ts.addEdge(qi, Edge{
				To: intern(next), Cmd: c, T: t,
				X: tm.XCmd{Kind: tm.XAbort}, R: tm.Resp0, Emit: emit,
			})
		}
	}
}
