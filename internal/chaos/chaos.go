// Package chaos is the deterministic fault-injection layer: a
// seed-driven Plan of per-site "fail the Nth operation" counters that
// the persistence, network and engine layers consult at their existing
// seams. Every injected failure is replayable — the same -chaos-seed
// arms the same counters, and the engines' deterministic barriers make
// the Nth operation the same operation on every run — so a fault found
// by the soak runner reproduces under a debugger with one flag.
//
// The layer follows the obs event-bus zero-cost contract: with no plan
// installed, every injection site is one atomic pointer load that
// returns false, proven allocation-free by TestChaosDisabledZeroAlloc;
// the packed engines' alloc gate (TestBuildAllocsPerState) keeps it
// honest on the hot path.
package chaos

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync/atomic"
	"time"

	"tmcheck/internal/obs"
)

// Site names one injection point. Each site has its own decrementing
// counter in the Plan, so faults at different layers arm independently.
type Site uint8

const (
	// SiteSnapWrite is a snapshot record append (internal/snap): the
	// armed operation writes only a prefix of the frame — a torn tail
	// at an arbitrary byte offset — and reports a write error.
	SiteSnapWrite Site = iota
	// SiteSnapSync is a snapshot fsync: the armed operation reports an
	// fsync error after the data was handed to the kernel.
	SiteSnapSync
	// SiteSpillGrow is a spill-arena growth (mmap remap): the armed
	// operation fails as if the disk filled mid-remap.
	SiteSpillGrow
	// SiteConnRead is a client connection read (internal/wire): the
	// armed operation resets the connection mid-frame.
	SiteConnRead
	// SiteConnWrite is a client connection write: the armed operation
	// transmits only a prefix of the frame, then resets.
	SiteConnWrite
	// SiteConnStall is a bounded read stall (a peer that stops talking
	// without closing), exercising the heartbeat-timeout detector.
	SiteConnStall
	// SiteWorkerPanic is a panic inside a packed exploration scan —
	// sequential spine or parbfs worker — isolated by the engines'
	// existing guard.Capture machinery into a LIMIT(panic).
	SiteWorkerPanic
	// SiteGuardMem is a spurious memory-watchdog trip inside
	// guard.Check, exercising the KindMemory limit path.
	SiteGuardMem

	numSites
)

// String names the site for plan dumps and injected-error messages.
func (s Site) String() string {
	switch s {
	case SiteSnapWrite:
		return "snap-write"
	case SiteSnapSync:
		return "snap-sync"
	case SiteSpillGrow:
		return "spill-grow"
	case SiteConnRead:
		return "conn-read"
	case SiteConnWrite:
		return "conn-write"
	case SiteConnStall:
		return "conn-stall"
	case SiteWorkerPanic:
		return "worker-panic"
	case SiteGuardMem:
		return "guard-mem"
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// siteNames is indexed by Site for allocation-free vitals keys.
var siteNames = [numSites]string{
	"chaos.injected.snap-write", "chaos.injected.snap-sync",
	"chaos.injected.spill-grow", "chaos.injected.conn-read",
	"chaos.injected.conn-write", "chaos.injected.conn-stall",
	"chaos.injected.worker-panic", "chaos.injected.guard-mem",
}

// ErrInjected is the sentinel every injected I/O failure wraps, so
// tests and the soak runner can tell a planted fault from a real one
// with errors.Is.
var ErrInjected = errors.New("chaos: injected fault")

// Plan is one armed fault plan: a per-site counter of operations until
// the fault fires (one-shot), plus the parameters of the partial-write
// faults. Counters are atomic — the packed parallel engines fire from
// many goroutines.
type Plan struct {
	// Seed is the PRNG seed the plan was derived from (0 for a
	// hand-armed plan); it names the plan in logs.
	Seed uint64

	counters [numSites]atomic.Int64
	// shortLen is how many payload bytes an injected short write keeps
	// (SiteSnapWrite / SiteConnWrite); clamped to the payload.
	shortLen atomic.Int64
	// stall is the injected read-stall duration in nanoseconds.
	stall atomic.Int64
}

// NewPlan derives a fault plan from seed with an xorshift64* stream:
// each site is independently armed with probability ~1/2 to fire on
// the Nth operation, N in [1, 24]; short writes keep a small random
// prefix and stalls are bounded at tens of milliseconds. The same seed
// always arms the same plan.
func NewPlan(seed uint64) *Plan {
	p := &Plan{Seed: seed}
	x := seed
	if x == 0 {
		x = 0x9e3779b97f4a7c15
	}
	next := func() uint64 {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		return x * 0x2545f4914f6cdd1d
	}
	for s := Site(0); s < numSites; s++ {
		if next()&1 == 0 {
			continue
		}
		p.counters[s].Store(int64(next()%24) + 1)
	}
	p.shortLen.Store(int64(next() % 64))
	p.stall.Store(int64(time.Duration(next()%50+1) * time.Millisecond))
	return p
}

// Manual returns an empty plan: nothing fires until Arm is called.
func Manual() *Plan { return &Plan{} }

// Arm sets site to fire on its nth operation from now (one-shot);
// nth <= 0 disarms it.
func (p *Plan) Arm(site Site, nth int) {
	if nth < 0 {
		nth = 0
	}
	p.counters[site].Store(int64(nth))
}

// SetShortWrite sets how many payload bytes an injected short write
// keeps before failing — the knob the torn-tail tests sweep across
// every byte offset of a record.
func (p *Plan) SetShortWrite(keep int) { p.shortLen.Store(int64(keep)) }

// SetStall sets the injected read-stall duration.
func (p *Plan) SetStall(d time.Duration) { p.stall.Store(int64(d)) }

// Armed reports the sites the plan will still fire, for logging.
func (p *Plan) Armed() []Site {
	var sites []Site
	for s := Site(0); s < numSites; s++ {
		if p.counters[s].Load() > 0 {
			sites = append(sites, s)
		}
	}
	return sites
}

// String renders the plan for logs: seed and still-armed sites.
func (p *Plan) String() string {
	return fmt.Sprintf("chaos plan seed=%d armed=%v", p.Seed, p.Armed())
}

// active is the process-wide installed plan; nil means chaos is off
// and every Fire is one atomic load returning false.
var active atomic.Pointer[Plan]

// Install makes p the process-wide fault plan (nil uninstalls).
func Install(p *Plan) { active.Store(p) }

// Uninstall disables fault injection.
func Uninstall() { active.Store(nil) }

// Current returns the installed plan (nil when chaos is off) — with
// its live counter state, so a caller can suspend injection and
// reinstall the plan without rearming consumed sites.
func Current() *Plan { return active.Load() }

// Enabled reports whether a plan is installed — the wrap-or-not
// decision the seams make once at setup time.
func Enabled() bool { return active.Load() != nil }

// Fire consults the installed plan for one operation at site: it
// decrements the site's counter and reports true exactly when the
// counter reaches zero — the armed Nth operation. With no plan
// installed it is a single atomic load, allocation-free.
func Fire(site Site) bool {
	p := active.Load()
	if p == nil {
		return false
	}
	return p.fire(site)
}

func (p *Plan) fire(site Site) bool {
	c := &p.counters[site]
	for {
		v := c.Load()
		if v <= 0 {
			return false
		}
		if c.CompareAndSwap(v, v-1) {
			if v == 1 {
				obs.Inc(siteNames[site], 1)
				return true
			}
			return false
		}
	}
}

// shortWriteLen returns the installed plan's short-write prefix,
// clamped to n.
func shortWriteLen(n int) int {
	p := active.Load()
	if p == nil {
		return 0
	}
	keep := int(p.shortLen.Load())
	if keep > n {
		keep = n
	}
	if keep < 0 {
		keep = 0
	}
	return keep
}

// stallFor returns the installed plan's read-stall duration.
func stallFor() time.Duration {
	p := active.Load()
	if p == nil {
		return 0
	}
	return time.Duration(p.stall.Load())
}

// File is the slice of *os.File the snapshot store writes through;
// WrapFile interposes the snap-write and snap-sync faults on it.
type File interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
	Stat() (os.FileInfo, error)
	Close() error
}

// WrapFile interposes the installed plan's file faults on f: an armed
// SiteSnapWrite writes only a prefix of the buffer (a torn record tail
// on disk) and reports an injected error; an armed SiteSnapSync fails
// the fsync after the write went through. All other operations pass
// straight through.
func WrapFile(f File) File { return &chaosFile{f: f} }

type chaosFile struct{ f File }

func (c *chaosFile) Write(p []byte) (int, error) {
	if Fire(SiteSnapWrite) {
		keep := shortWriteLen(len(p))
		n, err := c.f.Write(p[:keep])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("%w: short write (%d of %d bytes)", ErrInjected, keep, len(p))
	}
	return c.f.Write(p)
}

func (c *chaosFile) Sync() error {
	if Fire(SiteSnapSync) {
		// The data was written; only durability is lost — exactly the
		// crash window a real fsync failure opens.
		_ = c.f.Sync()
		return fmt.Errorf("%w: fsync failed", ErrInjected)
	}
	return c.f.Sync()
}

func (c *chaosFile) Read(p []byte) (int, error)                { return c.f.Read(p) }
func (c *chaosFile) Truncate(size int64) error                 { return c.f.Truncate(size) }
func (c *chaosFile) Seek(off int64, whence int) (int64, error) { return c.f.Seek(off, whence) }
func (c *chaosFile) Stat() (os.FileInfo, error)                { return c.f.Stat() }
func (c *chaosFile) Close() error                              { return c.f.Close() }

// WrapConn interposes the installed plan's connection faults on nc: an
// armed SiteConnRead resets the connection mid-frame, an armed
// SiteConnWrite transmits a prefix of the frame then resets, and an
// armed SiteConnStall holds a read for the plan's bounded stall first
// (a peer gone silent without closing).
func WrapConn(nc net.Conn) net.Conn { return &chaosConn{Conn: nc} }

type chaosConn struct{ net.Conn }

func (c *chaosConn) Read(p []byte) (int, error) {
	if Fire(SiteConnStall) {
		time.Sleep(stallFor())
	}
	if Fire(SiteConnRead) {
		c.Conn.Close()
		return 0, fmt.Errorf("%w: connection reset mid-read", ErrInjected)
	}
	return c.Conn.Read(p)
}

func (c *chaosConn) Write(p []byte) (int, error) {
	if Fire(SiteConnWrite) {
		keep := shortWriteLen(len(p))
		n, _ := c.Conn.Write(p[:keep])
		c.Conn.Close()
		return n, fmt.Errorf("%w: connection reset mid-write (%d of %d bytes sent)", ErrInjected, keep, len(p))
	}
	return c.Conn.Write(p)
}
