package chaos

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestChaosDisabledZeroAlloc pins the zero-cost contract: with no plan
// installed, every injection site's Fire — and the parameter lookups
// the wrappers make — is allocation-free. The packed engines' alloc
// gate (TestBuildAllocsPerState) rides on this.
func TestChaosDisabledZeroAlloc(t *testing.T) {
	Uninstall()
	for s := Site(0); s < numSites; s++ {
		s := s
		if n := testing.AllocsPerRun(1000, func() { Fire(s) }); n != 0 {
			t.Errorf("Fire(%v) disabled: %.1f allocs/op, want 0", s, n)
		}
	}
	if n := testing.AllocsPerRun(1000, func() { Enabled() }); n != 0 {
		t.Errorf("Enabled() disabled: %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { shortWriteLen(64) }); n != 0 {
		t.Errorf("shortWriteLen disabled: %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { stallFor() }); n != 0 {
		t.Errorf("stallFor disabled: %.1f allocs/op, want 0", n)
	}
}

// TestChaosUnarmedSiteZeroAlloc pins the other hot path: a plan IS
// installed but the site's counter is spent or never armed — what the
// packed scan loops see on every state while a fault waits elsewhere.
func TestChaosUnarmedSiteZeroAlloc(t *testing.T) {
	Install(Manual())
	defer Uninstall()
	for s := Site(0); s < numSites; s++ {
		s := s
		if n := testing.AllocsPerRun(1000, func() { Fire(s) }); n != 0 {
			t.Errorf("Fire(%v) unarmed: %.1f allocs/op, want 0", s, n)
		}
	}
}

// TestPlanDeterministic pins replayability: the same seed derives the
// same counters and parameters.
func TestPlanDeterministic(t *testing.T) {
	for _, seed := range []uint64{0, 1, 7, 42, 1 << 40} {
		a, b := NewPlan(seed), NewPlan(seed)
		for s := Site(0); s < numSites; s++ {
			if av, bv := a.counters[s].Load(), b.counters[s].Load(); av != bv {
				t.Errorf("seed %d site %v: counters %d vs %d", seed, s, av, bv)
			}
		}
		if a.shortLen.Load() != b.shortLen.Load() || a.stall.Load() != b.stall.Load() {
			t.Errorf("seed %d: parameters differ", seed)
		}
	}
}

// TestFireOneShot pins the Nth-operation contract: the armed site
// fires on exactly the Nth Fire and never again.
func TestFireOneShot(t *testing.T) {
	p := Manual()
	p.Arm(SiteGuardMem, 3)
	Install(p)
	defer Uninstall()
	want := []bool{false, false, true, false, false}
	for i, w := range want {
		if got := Fire(SiteGuardMem); got != w {
			t.Errorf("Fire #%d = %v, want %v", i+1, got, w)
		}
	}
	if sites := p.Armed(); len(sites) != 0 {
		t.Errorf("after firing, Armed() = %v, want empty", sites)
	}
}

// TestWrapFileTornWrite drives the snapshot file wrapper: the armed
// write persists exactly the configured prefix — a torn tail on disk —
// and reports the injected sentinel; the armed sync fails after
// writing through.
func TestWrapFileTornWrite(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "x"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := Manual()
	p.Arm(SiteSnapWrite, 2)
	p.SetShortWrite(3)
	Install(p)
	defer Uninstall()

	w := WrapFile(f)
	if _, err := w.Write([]byte("hello")); err != nil {
		t.Fatalf("write 1 (unarmed): %v", err)
	}
	n, err := w.Write([]byte("world!"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2: err = %v, want ErrInjected", err)
	}
	if n != 3 {
		t.Fatalf("write 2 kept %d bytes, want 3", n)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hellowor" {
		t.Fatalf("file = %q, want %q", data, "hellowor")
	}

	p.Arm(SiteSnapSync, 1)
	if err := w.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync: err = %v, want ErrInjected", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("sync after one-shot: %v", err)
	}
}
