package snap

import (
	"fmt"
	"os"
	"sync"
	"unsafe"

	"tmcheck/internal/chaos"
	"tmcheck/internal/obs"
	"tmcheck/internal/pack"
)

// Spill hands out mmap-backed growable word arenas for the visited
// set's flat key storage (the dominant memory of a packed build), so
// state spaces larger than RAM stay checkable: the kernel pages cold
// key regions out to the backing files instead of the heap holding
// every key resident. Each Grow() call returns an independent
// pack.GrowFunc (one per intern table or flat key slice); regions are
// backed by temp files under dir, grown by remap-after-truncate, and
// removed on Close.
//
// A grow failure (mmap unsupported, disk full, injected chaos) on a
// non-strict spill degrades the region to plain heap allocation with a
// loud DEGRADED(spill) warning — the check continues, merely without
// disk backing for that region. A strict spill panics with a plain
// error; the scans run under guard.Capture, which isolates it into a
// LimitError instead of crashing the process.
type Spill struct {
	dir     string
	strict  bool
	mu      sync.Mutex
	regions []*spillRegion
	warn    sync.Once
}

// NewSpill returns a spill arena allocating under dir ("" means the
// system temp directory).
func NewSpill(dir string) *Spill {
	if dir == "" {
		dir = os.TempDir()
	}
	return &Spill{dir: dir}
}

// SetStrict makes grow failures fail the check (-strict-persist)
// instead of degrading to heap allocation.
func (s *Spill) SetStrict(v bool) { s.strict = v }

// minSpillBytes is the initial region size (1 MiB): small enough that
// tiny builds waste little, large enough to amortize remaps.
const minSpillBytes = 1 << 20

// Grow returns a fresh spill-backed allocator. The returned function
// follows the pack.GrowFunc contract: it reallocates to capacity ≥
// need words preserving contents and length. Safe to call Grow
// concurrently; each returned func is single-goroutine like the table
// it backs.
func (s *Spill) Grow() pack.GrowFunc {
	r := &spillRegion{}
	s.mu.Lock()
	s.regions = append(s.regions, r)
	s.mu.Unlock()
	return func(need int, cur []uint64) []uint64 {
		if !r.heap {
			var w []uint64
			var err error
			if chaos.Fire(chaos.SiteSpillGrow) {
				err = fmt.Errorf("%w: spill grow to %d words failed", chaos.ErrInjected, need)
			} else {
				w, err = r.grow(s.dir, need, cur)
			}
			if err == nil {
				return w
			}
			if s.strict {
				panic(fmt.Errorf("snap: spill: %w", err))
			}
			// grow is failure-atomic (the old mapping survives any
			// error), so cur is still readable and the region can fall
			// back to the heap mid-run.
			s.warn.Do(func() {
				obs.Inc("snap.spill.degraded", 1)
				fmt.Fprintf(os.Stderr,
					"tmcheck: DEGRADED(spill): %v — falling back to heap allocation for this region (rerun with -strict-persist to fail instead)\n",
					err)
			})
			r.heap = true
		}
		c := cap(cur)
		if c < minSpillBytes/8 {
			c = minSpillBytes / 8
		}
		for c < need {
			c *= 2
		}
		buf := make([]uint64, len(cur), c)
		copy(buf, cur)
		return buf
	}
}

// Close unmaps every region and removes the backing files.
func (s *Spill) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, r := range s.regions {
		if err := r.close(); err != nil && first == nil {
			first = err
		}
	}
	s.regions = nil
	return first
}

// spillRegion is one growable file-backed mapping. heap marks a region
// that degraded to plain heap allocation after a grow failure.
type spillRegion struct {
	f    *os.File
	data []byte
	heap bool
}

// grow (re)maps the region to at least need words. Growth remaps after
// extending the file — the data already written persists through the
// file, so only the first migration (heap → region) copies. The new
// mapping is established before the old one is released, so any error
// leaves the caller's current slice fully valid (the degradation path
// relies on this to migrate contents back to the heap).
func (r *spillRegion) grow(dir string, need int, cur []uint64) ([]uint64, error) {
	size := len(r.data)
	if size == 0 {
		size = minSpillBytes
	}
	for size < need*8 {
		size *= 2
	}
	if r.f == nil {
		f, err := os.CreateTemp(dir, "tmspill-*.keys")
		if err != nil {
			return nil, err
		}
		r.f = f
	}
	if err := r.f.Truncate(int64(size)); err != nil {
		return nil, err
	}
	data, err := mmapFile(r.f, size)
	if err != nil {
		return nil, err
	}
	old := r.data
	r.data = data
	words := unsafe.Slice((*uint64)(unsafe.Pointer(&data[0])), size/8)
	if old == nil {
		copy(words, cur) // first migration: heap → region
	} else {
		// The old and new mappings share the backing file, so the
		// contents are already visible; release the old view. A failed
		// munmap leaks that view rather than failing the grow — the new
		// mapping is already the region's state.
		_ = munmapBytes(old)
	}
	return words[:len(cur)], nil
}

func (r *spillRegion) close() error {
	var first error
	if r.data != nil {
		if err := munmapBytes(r.data); err != nil {
			first = err
		}
		r.data = nil
	}
	if r.f != nil {
		name := r.f.Name()
		if err := r.f.Close(); err != nil && first == nil {
			first = err
		}
		if err := os.Remove(name); err != nil && first == nil {
			first = err
		}
		r.f = nil
	}
	return first
}
